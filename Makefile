# Tier-1 gate: build + vet + tests + race. `make ci` is what a PR must
# keep green; `make quick` is the short edit loop (-short skips the
# figure-shape sweep).

GO ?= go

.PHONY: ci quick build vet test race bench benchsmoke fanout-oracle fuzz fuzz-smoke figures cover golden chaos-smoke vuln clean

ci: build vet test race cover benchsmoke fanout-oracle fuzz-smoke chaos-smoke vuln

quick: build vet
	$(GO) test -short ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 ./...

# Statement-coverage gate over the service and taxonomy layers. Atomic
# mode so the gate composes with concurrent handler code; fails ci when
# either package drops below COVER_MIN%.
COVER_MIN ?= 80
cover:
	$(GO) test -short -covermode=atomic -coverprofile=cover.out \
		-coverpkg=loopapalooza/internal/serve,loopapalooza/internal/core \
		./internal/serve ./internal/core
	@$(GO) tool cover -func=cover.out | awk -v min=$(COVER_MIN) \
		'/^total:/ { pct = $$3 + 0; printf "coverage: %s (gate %d%%)\n", $$3, min; \
		  if (pct < min) { print "FAIL: coverage below gate"; exit 1 } }'
	@rm -f cover.out

# Regenerate the golden report fixtures after an intentional engine
# change, then review the diff like any other code change.
golden:
	$(GO) test ./internal/bench -run TestGolden -update

# One iteration of every benchmark — catches bit-rot in benchmark code
# without paying for stable measurements. Includes the fan-out smoke:
# BenchmarkSweepFanout runs the full paper grid through core.MultiRun and
# fails outright if any cell of the shared-execution sweep diverges.
# The run is then gated against the newest checked-in BENCH_*.json:
# benchjson -compare fails on >20% regression of the gated series. At
# 1x iteration only the deterministic work censuses (instruction counts,
# opcode mix) are gated — per-op costs fold one-time warm-up into the
# single op; a full multi-iteration run gates time and allocations too.
BENCH_BASE ?= $(shell ls BENCH_PR*.json 2>/dev/null | sort -V | tail -1)
benchsmoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -benchmem ./... | tee benchsmoke.out
	@if [ -n "$(BENCH_BASE)" ]; then \
		$(GO) run ./cmd/benchjson -compare $(BENCH_BASE) benchsmoke.out; \
	else \
		echo "benchsmoke: no BENCH_*.json baseline; skipping regression gate"; \
	fi
	@rm -f benchsmoke.out

# The fan-out differential oracles under both a single-core and the
# default scheduler: GOMAXPROCS changes the auto fan-out plan (chunked
# serial replay vs the class-affinity worker pool), so both legs must
# produce bit-identical reports. `make test`/`make race` already cover
# the default; the GOMAXPROCS=1 leg pins the serial plan explicitly.
fanout-oracle:
	GOMAXPROCS=1 $(GO) test -count=1 \
		-run='TestFanoutDifferentialOracle|TestMultiRun|TestParallelDeterminism|TestPlanFanout' \
		./internal/core ./internal/bench
	$(GO) test -count=1 \
		-run='TestFanoutDifferentialOracle|TestParallelDeterminism' \
		./internal/core ./internal/bench

# Short coverage-guided runs of every fuzz target (go test allows one
# -fuzz per invocation, hence the separate lines). Part of `make ci`:
# ~10s per target catches shallow regressions in the crash-proofing
# without a dedicated fuzz box.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzLexer$$' -fuzztime=$(FUZZTIME) ./internal/lang
	$(GO) test -run='^$$' -fuzz='^FuzzParse$$' -fuzztime=$(FUZZTIME) ./internal/lang
	$(GO) test -run='^$$' -fuzz='^FuzzCompile$$' -fuzztime=$(FUZZTIME) ./internal/lang
	$(GO) test -run='^$$' -fuzz='^FuzzCompileAndRun$$' -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz='^FuzzBytecodeDifferential$$' -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz='^FuzzTrackerDifferential$$' -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz='^FuzzWALReplay$$' -fuzztime=$(FUZZTIME) ./internal/wal

# Longer fuzzing session (override FUZZTIME for overnight runs).
fuzz:
	$(MAKE) fuzz-smoke FUZZTIME=2m

# ~45 seconds of seeded fault waves (panic, crash, hang, corrupt, slow,
# dropped heartbeats) through a live worker fleet, every wave checked
# against the chaos contract: jobs terminate, no cell is lost or
# double-committed, completed cells are bit-identical to a single-process
# run. The Restart variant additionally SIGKILLs the durable coordinator
# mid-wave (with torn WAL tails injected) and recovers it from its
# journal. See internal/cluster/chaos.
chaos-smoke:
	LPD_CHAOS_SMOKE=1 $(GO) test -run='^TestChaosSmoke(Restart)?$$' -count=1 -v \
		-timeout 300s ./internal/cluster/chaos

# Known-vulnerability scan. govulncheck is not vendored with the
# toolchain, so the target degrades to a warning where it is missing
# rather than failing ci on a tool gap.
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "vuln: govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# Full measurement run: the perf suite (engine hot path, interpreter
# dispatch, end-to-end sweep; shadow vs legacy-map, fanout vs per-config,
# bytecode vs treewalk, batched vs per-event, and parallel vs serial
# sub-benchmarks, plus the bytecode compiler's opcode-mix census) and the
# root interpreter benchmark, rendered to BENCH_PR10.json with the
# speedup-ratio tables.
bench:
	$(GO) test -run='^$$' -bench='EngineLoadStore|EngineNestedLoadStore|EngineEnterExit|InterpDispatch|SweepSuite|SweepFanout|SweepBatched|SweepParallel|SweepEngines|BytecodeLowering' \
		-benchmem -count=1 ./internal/core ./internal/interp ./internal/bench | tee bench.out
	$(GO) test -run='^$$' -bench='^BenchmarkInterpreter$$' -benchmem -count=1 . | tee -a bench.out
	$(GO) run ./cmd/benchjson -o BENCH_PR10.json bench.out
	rm -f bench.out

figures:
	$(GO) run ./cmd/lpbench

# Remove stray run artifacts: recorded traces, journal generations and
# snapshots left by local lpd -data-dir runs, and coverage/bench scratch.
clean:
	find . -name '*.lptrace' -delete -o -name '*.wal' -delete -o -name '*.snap' -delete
	rm -f cover.out bench.out benchsmoke.out
