# Tier-1 gate: build + vet + tests + race. `make ci` is what a PR must
# keep green; `make quick` is the short edit loop (-short skips the
# figure-shape sweep).

GO ?= go

.PHONY: ci quick build vet test race bench figures

ci: build vet test race

quick: build vet
	$(GO) test -short ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

figures:
	$(GO) run ./cmd/lpbench
