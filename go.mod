module loopapalooza

go 1.22
