package predict

import (
	"testing"
	"testing/quick"
)

func feed(p Predictor, vals ...uint64) {
	for _, v := range vals {
		p.Train(v)
	}
}

func TestLastValue(t *testing.T) {
	p := &LastValue{}
	if _, ok := p.Predict(); ok {
		t.Error("untrained predictor claims readiness")
	}
	feed(p, 7)
	if v, ok := p.Predict(); !ok || v != 7 {
		t.Errorf("predict = %d,%v want 7,true", v, ok)
	}
	feed(p, 9)
	if v, _ := p.Predict(); v != 9 {
		t.Errorf("predict = %d, want 9", v)
	}
}

func TestStride(t *testing.T) {
	p := &Stride{}
	feed(p, 10, 13)
	if v, ok := p.Predict(); !ok || v != 16 {
		t.Errorf("predict = %d,%v want 16,true", v, ok)
	}
	feed(p, 16, 19)
	if v, _ := p.Predict(); v != 22 {
		t.Errorf("predict = %d, want 22", v)
	}
	// Negative strides via wraparound arithmetic.
	q := &Stride{}
	feed(q, 100, 90)
	if v, _ := q.Predict(); v != 80 {
		t.Errorf("negative stride predict = %d, want 80", v)
	}
}

func TestTwoDeltaFiltersOneOffJump(t *testing.T) {
	p := &TwoDeltaStride{}
	feed(p, 10, 20, 30) // committed stride 10
	if v, _ := p.Predict(); v != 40 {
		t.Fatalf("predict = %d, want 40", v)
	}
	feed(p, 1000) // one-off jump; stride must stay 10
	if v, _ := p.Predict(); v != 1010 {
		t.Errorf("after jump predict = %d, want 1010 (stride kept)", v)
	}
	// Plain stride would have committed the jump delta instead.
	s := &Stride{}
	feed(s, 10, 20, 30, 1000)
	if v, _ := s.Predict(); v == 1010 {
		t.Error("plain stride unexpectedly filtered the jump")
	}
}

func TestFCMLearnsRepeatingSequence(t *testing.T) {
	p := &FCM{}
	seq := []uint64{3, 1, 4, 1, 5, 9, 2, 6}
	// Two warm-up passes, then it must predict every element.
	for pass := 0; pass < 2; pass++ {
		for _, v := range seq {
			p.Train(v)
		}
	}
	hits := 0
	for _, v := range seq {
		if pred, ok := p.Predict(); ok && pred == v {
			hits++
		}
		p.Train(v)
	}
	if hits != len(seq) {
		t.Errorf("FCM hits = %d/%d on learned periodic sequence", hits, len(seq))
	}
}

func TestHybridCoversComponents(t *testing.T) {
	// Constant sequence: last-value catches it.
	h := NewHybrid()
	h.Observe(5)
	for i := 0; i < 10; i++ {
		if !h.Observe(5) {
			t.Fatal("hybrid missed constant value")
		}
	}
	// Arithmetic sequence: stride catches it.
	h2 := NewHybrid()
	h2.Observe(0)
	h2.Observe(3)
	for i := uint64(2); i < 12; i++ {
		if !h2.Observe(i * 3) {
			t.Fatalf("hybrid missed stride value %d", i*3)
		}
	}
}

func TestHybridHitRate(t *testing.T) {
	h := NewHybrid()
	for i := 0; i < 100; i++ {
		h.Observe(uint64(i))
	}
	if r := h.HitRate(); r < 0.9 {
		t.Errorf("hit rate on counter = %f, want >= 0.9", r)
	}
	c, total := h.Stats()
	if total != 100 || c < 90 {
		t.Errorf("stats = %d/%d", c, total)
	}
}

func TestHybridOnRandomIsPoor(t *testing.T) {
	h := NewHybrid()
	x := uint64(0x9E3779B97F4A7C15)
	hits := 0
	for i := 0; i < 2000; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if h.Observe(x) {
			hits++
		}
	}
	if hits > 200 {
		t.Errorf("hybrid 'predicted' %d/2000 random values", hits)
	}
}

func TestPerfect(t *testing.T) {
	var p Perfect
	if !p.Observe(123) || p.HitRate() != 1 {
		t.Error("Perfect must always hit")
	}
}

// Property: for any sequence, a Hybrid hit on step i implies at least one
// component predictor (trained on the prefix) predicted the value.
func TestHybridPropertyConsistency(t *testing.T) {
	f := func(seq []uint64) bool {
		h := NewHybrid()
		shadow := []Predictor{&LastValue{}, &Stride{}, &TwoDeltaStride{}, &FCM{}}
		for _, v := range seq {
			anyHit := false
			for _, p := range shadow {
				if pred, ok := p.Predict(); ok && pred == v {
					anyHit = true
				}
			}
			got := h.Observe(v)
			if got != anyHit {
				return false
			}
			for _, p := range shadow {
				p.Train(v)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: stride predictor is exact on any affine sequence a + i*d after
// two observations.
func TestStrideAffineProperty(t *testing.T) {
	f := func(a, d uint64) bool {
		p := &Stride{}
		p.Train(a)
		p.Train(a + d)
		for i := uint64(2); i < 10; i++ {
			want := a + i*d
			got, ok := p.Predict()
			if !ok || got != want {
				return false
			}
			p.Train(want)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
