// Package predict implements the value predictors of Loopapalooza §III-C:
// last-value, stride, 2-delta stride, and a Finite Context Method (FCM)
// predictor, combined under the paper's "perfect hybridization" assumption
// (a value counts as predicted when any component predictor is correct).
package predict

// Predictor predicts the next value of a 64-bit sequence. Predict returns
// the prediction for the next value and whether the predictor is ready to
// predict at all; Train feeds the actual observed value.
type Predictor interface {
	// Predict returns the predicted next value.
	Predict() (uint64, bool)
	// Train records the actual next value.
	Train(v uint64)
	// Name identifies the predictor.
	Name() string
}

// LastValue predicts that the next value repeats the previous one.
type LastValue struct {
	last  uint64
	ready bool
}

// Name implements Predictor.
func (p *LastValue) Name() string { return "last-value" }

// Predict implements Predictor.
func (p *LastValue) Predict() (uint64, bool) { return p.last, p.ready }

// Train implements Predictor.
func (p *LastValue) Train(v uint64) { p.last, p.ready = v, true }

// Stride predicts last + (last - previous).
type Stride struct {
	last   uint64
	stride uint64
	seen   int
}

// Name implements Predictor.
func (p *Stride) Name() string { return "stride" }

// Predict implements Predictor.
func (p *Stride) Predict() (uint64, bool) { return p.last + p.stride, p.seen >= 2 }

// Train implements Predictor.
func (p *Stride) Train(v uint64) {
	if p.seen > 0 {
		p.stride = v - p.last
	}
	p.last = v
	p.seen++
}

// TwoDeltaStride updates its stride only when the same delta is observed
// twice in a row, which filters one-off jumps (Sazeides & Smith).
type TwoDeltaStride struct {
	last    uint64
	stride  uint64 // committed stride
	lastDel uint64 // most recent delta
	seen    int
}

// Name implements Predictor.
func (p *TwoDeltaStride) Name() string { return "2-delta" }

// Predict implements Predictor.
func (p *TwoDeltaStride) Predict() (uint64, bool) { return p.last + p.stride, p.seen >= 2 }

// Train implements Predictor.
func (p *TwoDeltaStride) Train(v uint64) {
	if p.seen > 0 {
		d := v - p.last
		if d == p.lastDel {
			p.stride = d
		}
		p.lastDel = d
	}
	p.last = v
	p.seen++
}

// fcmOrder is the context length of the FCM predictor.
const fcmOrder = 4

// fcmTableBits sizes the FCM value table (2^bits entries).
const fcmTableBits = 12

// FCM is an order-4 Finite Context Method predictor: a hash of the last
// four values indexes a table of "value seen next in this context".
type FCM struct {
	hist  [fcmOrder]uint64
	n     int
	table [1 << fcmTableBits]fcmEntry
}

type fcmEntry struct {
	value uint64
	valid bool
}

// Name implements Predictor.
func (p *FCM) Name() string { return "fcm" }

func (p *FCM) index() uint64 {
	h := uint64(14695981039346656037)
	for _, v := range p.hist {
		h ^= v
		h *= 1099511628211
	}
	return h & (1<<fcmTableBits - 1)
}

// Predict implements Predictor.
func (p *FCM) Predict() (uint64, bool) {
	if p.n < fcmOrder {
		return 0, false
	}
	e := p.table[p.index()]
	return e.value, e.valid
}

// Train implements Predictor.
func (p *FCM) Train(v uint64) {
	if p.n >= fcmOrder {
		idx := p.index()
		p.table[idx] = fcmEntry{value: v, valid: true}
	}
	copy(p.hist[:], p.hist[1:])
	p.hist[fcmOrder-1] = v
	if p.n < fcmOrder {
		p.n++
	}
}

// Hybrid combines the four component predictors under perfect
// hybridization: an observation counts as correctly predicted if any ready
// component predicted it (paper §III-C).
type Hybrid struct {
	parts   []Predictor
	correct int64
	total   int64
}

// NewHybrid returns the paper's four-way hybrid.
func NewHybrid() *Hybrid {
	return &Hybrid{parts: []Predictor{
		&LastValue{}, &Stride{}, &TwoDeltaStride{}, &FCM{},
	}}
}

// Observe feeds the next actual value and reports whether the hybrid
// predicted it.
func (h *Hybrid) Observe(v uint64) bool {
	hit := false
	for _, p := range h.parts {
		if pred, ok := p.Predict(); ok && pred == v {
			hit = true
			break
		}
	}
	for _, p := range h.parts {
		p.Train(v)
	}
	h.total++
	if hit {
		h.correct++
	}
	return hit
}

// HitRate returns the fraction of observations predicted correctly.
func (h *Hybrid) HitRate() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.correct) / float64(h.total)
}

// Stats returns (correct, total) observation counts.
func (h *Hybrid) Stats() (int64, int64) { return h.correct, h.total }

// Perfect is a predictor stand-in for the dep3 configuration: every value is
// "predicted". It satisfies the same Observe interface as Hybrid.
type Perfect struct{ total int64 }

// Observe always reports a hit.
func (p *Perfect) Observe(uint64) bool { p.total++; return true }

// HitRate is always 1 once observations were made.
func (p *Perfect) HitRate() float64 { return 1 }

// Observer is the common interface of Hybrid and Perfect.
type Observer interface {
	// Observe feeds the next value, reporting a correct prediction.
	Observe(v uint64) bool
	// HitRate is the fraction predicted.
	HitRate() float64
}
