// Package wal is the durability substrate of the coordinator: an
// append-only, length-prefixed, CRC32C-checksummed record log with
// explicit fsync points, periodic snapshots with log compaction, and a
// reader that tolerates torn tails.
//
// A Log is a directory holding at most one active generation: a
// snapshot file (snapshot-<gen>.snap, the full state at compaction
// time) and a journal file (journal-<gen>.wal, every record appended
// since). Open recovers the newest complete generation, validates the
// journal record by record, and truncates at the first corrupt record —
// a torn tail from a crash mid-write loses only the unsynced suffix and
// never resurrects anything past the corruption. Recovery never panics
// on hostile bytes: any framing violation is a truncation point, and an
// unreadable snapshot falls back to the previous generation when one
// still exists.
//
// Compaction is crash-safe by ordering: the new snapshot is written to
// a temp file, fsynced, and renamed before the new journal is created,
// and the old generation is deleted only after the new one is complete.
// A crash at any point leaves either the old generation intact or the
// new one complete.
//
// The content of records and snapshots is opaque to this package; the
// cluster layer stores JSON state transitions, and the same chunked
// framing (chunks.go) protects .lptrace files in the trace store.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Framing constants. Each record is a 4-byte little-endian payload
// length, a 4-byte CRC32C (Castagnoli) of the payload, then the payload.
const (
	journalMagic = "lpwal01\n"
	snapMagic    = "lpsnap1\n"
	headerSize   = 8 // per-record: uint32 length + uint32 crc
	// MaxRecord bounds a single record; a corrupt length field past it is
	// a truncation point rather than an allocation bomb.
	MaxRecord = 64 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed (or crashed) log.
var ErrClosed = errors.New("wal: log closed")

// Stats counts a log's traffic since Open.
type Stats struct {
	// Appended counts records appended; BytesWritten their framed bytes.
	Appended     uint64
	BytesWritten uint64
	// Syncs counts explicit fsync points.
	Syncs uint64
	// Compactions counts snapshot+truncate cycles.
	Compactions uint64
	// RecoveredRecords counts journal records replayed at Open;
	// TornBytes the tail bytes truncated at the first corrupt record.
	RecoveredRecords uint64
	TornBytes        uint64
	// SnapshotBytes is the size of the last written (or recovered)
	// snapshot payload.
	SnapshotBytes uint64
	// SizeBytes is the current journal file size.
	SizeBytes uint64
}

// Log is one open write-ahead log directory.
type Log struct {
	dir string

	mu      sync.Mutex
	f       *os.File
	buf     []byte // appended, not yet written to the file (lost by Crash)
	gen     uint64
	closed  bool
	crashed bool
	stats   Stats

	snapshot []byte
	records  [][]byte
}

// Open recovers (or creates) the log in dir. The recovered snapshot and
// journal records are available from Snapshot and Records until the
// first Compact.
func Open(dir string) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	gens, err := listGenerations(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir}

	// Newest generation with a loadable snapshot wins; generation 0 needs
	// no snapshot (the empty state). A generation whose snapshot is
	// unreadable is skipped entirely — its journal is meaningless without
	// the state it appends to.
	chosen := uint64(0)
	for i := len(gens) - 1; i >= 0; i-- {
		g := gens[i]
		if g == 0 {
			chosen = 0
			break
		}
		snap, err := readSnapshot(snapshotPath(dir, g))
		if err != nil {
			continue
		}
		l.snapshot = snap
		l.stats.SnapshotBytes = uint64(len(snap))
		chosen = g
		break
	}
	l.gen = chosen

	jp := journalPath(dir, chosen)
	records, validLen, torn, err := readJournal(jp)
	if err != nil {
		return nil, err
	}
	l.records = records
	l.stats.RecoveredRecords = uint64(len(records))
	l.stats.TornBytes = uint64(torn)

	f, err := os.OpenFile(jp, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if torn > 0 {
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
	}
	if validLen == 0 {
		if _, err := f.Write([]byte(journalMagic)); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: %w", err)
		}
		validLen = int64(len(journalMagic))
	}
	if _, err := f.Seek(validLen, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.stats.SizeBytes = uint64(validLen)
	// Drop generations other than the chosen one: leftovers from a crash
	// mid-compaction.
	for _, g := range gens {
		if g != chosen {
			os.Remove(snapshotPath(dir, g))
			os.Remove(journalPath(dir, g))
		}
	}
	return l, nil
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Snapshot returns the snapshot payload recovered at Open (nil when the
// log started from the empty state).
func (l *Log) Snapshot() []byte { return l.snapshot }

// Records returns the journal records recovered at Open, in append
// order, ending at the first corruption.
func (l *Log) Records() [][]byte { return l.records }

// Stats snapshots the log counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Append buffers one record. It is not durable until Sync returns; a
// crash in between loses the record, never corrupts the log.
func (l *Log) Append(rec []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if len(rec) > MaxRecord {
		return fmt.Errorf("wal: record of %d bytes exceeds MaxRecord", len(rec))
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(rec)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(rec, castagnoli))
	l.buf = append(l.buf, hdr[:]...)
	l.buf = append(l.buf, rec...)
	l.stats.Appended++
	l.stats.BytesWritten += uint64(headerSize + len(rec))
	return nil
}

// Sync writes the buffered records and fsyncs the journal: the explicit
// durability point. Records appended before a returned nil survive a
// crash.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.closed {
		return ErrClosed
	}
	if len(l.buf) > 0 {
		if _, err := l.f.Write(l.buf); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		l.stats.SizeBytes += uint64(len(l.buf))
		l.buf = l.buf[:0]
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.stats.Syncs++
	return nil
}

// Compact writes snapshot as the new generation's base state and starts
// an empty journal, deleting the old generation afterwards. Pending
// appends are folded into the snapshot by the caller (it serializes the
// live state), so they are dropped rather than carried over.
func (l *Log) Compact(snapshot []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	next := l.gen + 1

	// 1. New snapshot: temp file, fsync, rename. Complete-or-absent.
	sp := snapshotPath(l.dir, next)
	if err := writeFileSync(sp, append([]byte(snapMagic), frame(snapshot)...)); err != nil {
		return err
	}
	// 2. New journal with just the magic header.
	jp := journalPath(l.dir, next)
	nf, err := os.OpenFile(jp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := nf.Write([]byte(journalMagic)); err != nil {
		nf.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := nf.Sync(); err != nil {
		nf.Close()
		return fmt.Errorf("wal: %w", err)
	}
	syncDir(l.dir)
	// 3. Switch, then drop the old generation.
	old := l.gen
	l.f.Close()
	l.f, l.gen, l.buf = nf, next, l.buf[:0]
	os.Remove(journalPath(l.dir, old))
	os.Remove(snapshotPath(l.dir, old))
	l.snapshot, l.records = nil, nil
	l.stats.Compactions++
	l.stats.Syncs++
	l.stats.SnapshotBytes = uint64(len(snapshot))
	l.stats.SizeBytes = uint64(len(journalMagic))
	return nil
}

// Close syncs and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	err := l.syncLocked()
	l.closed = true
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Crash abandons the log the way SIGKILL would: buffered records that
// were never synced are dropped and the file is closed without a final
// flush. Chaos and recovery tests use it to simulate coordinator death;
// everything synced before the crash must survive a subsequent Open.
func (l *Log) Crash() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed, l.crashed = true, true
	l.buf = nil
	l.f.Close()
}

// frame wraps one payload in the record framing.
func frame(payload []byte) []byte {
	out := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(out[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:], crc32.Checksum(payload, castagnoli))
	copy(out[headerSize:], payload)
	return out
}

// readJournal validates path record by record, returning the valid
// records, the byte length of the valid prefix, and how many torn tail
// bytes follow it. A missing file is an empty journal.
func readJournal(path string) (records [][]byte, validLen int64, torn int64, err error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, 0, nil
	}
	if err != nil {
		return nil, 0, 0, fmt.Errorf("wal: %w", err)
	}
	if len(data) < len(journalMagic) || string(data[:len(journalMagic)]) != journalMagic {
		// Header torn or foreign: the whole file is tail.
		return nil, 0, int64(len(data)), nil
	}
	off := int64(len(journalMagic))
	rest := data[off:]
	for {
		rec, n, ok := nextRecord(rest)
		if !ok {
			return records, off, int64(len(rest)), nil
		}
		records = append(records, rec)
		off += n
		rest = rest[n:]
	}
}

// nextRecord decodes one framed record from b, returning its payload
// and consumed length. ok is false at a clean end AND at any framing
// violation — the caller cannot tell a torn tail from an end-of-log,
// which is exactly the truncate-at-first-corruption contract.
func nextRecord(b []byte) (payload []byte, n int64, ok bool) {
	if len(b) < headerSize {
		return nil, 0, false
	}
	length := binary.LittleEndian.Uint32(b[0:4])
	crc := binary.LittleEndian.Uint32(b[4:8])
	if length > MaxRecord || int64(length) > int64(len(b)-headerSize) {
		return nil, 0, false
	}
	payload = b[headerSize : headerSize+int(length)]
	if crc32.Checksum(payload, castagnoli) != crc {
		return nil, 0, false
	}
	// Copy out: the caller retains records past the backing file buffer.
	out := make([]byte, len(payload))
	copy(out, payload)
	return out, headerSize + int64(length), true
}

// readSnapshot loads and verifies one snapshot file.
func readSnapshot(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(snapMagic) || string(data[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("wal: %s: bad snapshot magic", path)
	}
	payload, n, ok := nextRecord(data[len(snapMagic):])
	if !ok || int(n) != len(data)-len(snapMagic) {
		return nil, fmt.Errorf("wal: %s: corrupt snapshot", path)
	}
	return payload, nil
}

func journalPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("journal-%08d.wal", gen))
}

func snapshotPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snapshot-%08d.snap", gen))
}

// listGenerations returns every generation number present in dir (from
// either file kind), ascending.
func listGenerations(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	seen := map[uint64]bool{}
	for _, e := range ents {
		name := e.Name()
		var num string
		switch {
		case strings.HasPrefix(name, "journal-") && strings.HasSuffix(name, ".wal"):
			num = strings.TrimSuffix(strings.TrimPrefix(name, "journal-"), ".wal")
		case strings.HasPrefix(name, "snapshot-") && strings.HasSuffix(name, ".snap"):
			num = strings.TrimSuffix(strings.TrimPrefix(name, "snapshot-"), ".snap")
		default:
			continue
		}
		g, err := strconv.ParseUint(num, 10, 64)
		if err != nil {
			continue
		}
		seen[g] = true
	}
	gens := make([]uint64, 0, len(seen))
	for g := range seen {
		gens = append(gens, g)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// writeFileSync writes data to path atomically: temp file, fsync,
// rename, directory fsync.
func writeFileSync(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	syncDir(filepath.Dir(path))
	return nil
}

// syncDir fsyncs a directory so renames and creations are durable.
// Best-effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// Info describes a log directory for inspection (lpd -wal-dump).
type Info struct {
	// Gen is the active generation.
	Gen uint64
	// SnapshotBytes is the snapshot payload size (0 = empty base state).
	SnapshotBytes int
	// Records are the valid journal record payloads, in order.
	Records [][]byte
	// TornBytes counts journal tail bytes past the first corruption.
	TornBytes int64
}

// Inspect reads a log directory without opening it for writing (and
// without truncating a torn tail), so a live or crashed journal can be
// examined in place.
func Inspect(dir string) (*Info, error) {
	gens, err := listGenerations(dir)
	if err != nil {
		return nil, err
	}
	info := &Info{}
	for i := len(gens) - 1; i >= 0; i-- {
		g := gens[i]
		if g == 0 {
			info.Gen = 0
			break
		}
		snap, err := readSnapshot(snapshotPath(dir, g))
		if err != nil {
			continue
		}
		info.Gen, info.SnapshotBytes = g, len(snap)
		break
	}
	records, _, torn, err := readJournal(journalPath(dir, info.Gen))
	if err != nil {
		return nil, err
	}
	info.Records, info.TornBytes = records, torn
	return info, nil
}
