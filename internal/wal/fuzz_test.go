package wal

import (
	"bytes"
	"os"
	"testing"
)

// FuzzWALReplay builds a valid journal from fuzz-chosen records, damages
// it with a fuzz-chosen corruption, and asserts the recovery invariants:
// Open never panics or errors on hostile bytes, and the recovered
// records are exactly a prefix of the originals — corruption may cost
// records from the tail, but can never invent, reorder, or resurrect
// one past the first bad byte.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte("one\x00two\x00three"), uint8(0), uint16(3))
	f.Add([]byte("commit:job-000001:fft:a1"), uint8(1), uint16(1))
	f.Add([]byte(""), uint8(2), uint16(0))
	f.Add([]byte("\x00\x00\x00"), uint8(3), uint16(50))
	f.Fuzz(func(t *testing.T, raw []byte, mode uint8, arg uint16) {
		dir := t.TempDir()
		l, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		records := bytes.Split(raw, []byte{0})
		for _, r := range records {
			if err := l.Append(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
		l.Close()

		path := journalPath(dir, 0)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		switch mode % 4 {
		case 0: // truncate
			if len(data) > 0 {
				data = data[:int(arg)%(len(data)+1)]
			}
		case 1: // flip a bit
			if len(data) > 0 {
				data[int(arg)%len(data)] ^= 1 << (arg % 8)
			}
		case 2: // append garbage derived from arg
			for i := 0; i < int(arg%64); i++ {
				data = append(data, byte(arg>>uint(i%9)))
			}
		case 3: // overwrite a run with a repeated byte
			if len(data) > 0 {
				start := int(arg) % len(data)
				for i := start; i < len(data) && i < start+9; i++ {
					data[i] = byte(arg)
				}
			}
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}

		l2, err := Open(dir) // must not panic or error, whatever the bytes
		if err != nil {
			t.Fatalf("Open on damaged journal: %v", err)
		}
		got := l2.Records()
		if len(got) > len(records) {
			t.Fatalf("recovered %d records from %d originals", len(got), len(records))
		}
		for i, g := range got {
			if !bytes.Equal(g, records[i]) {
				t.Fatalf("record %d = %q, want prefix of originals (%q)", i, g, records[i])
			}
		}
		// The repaired log must accept appends and survive a clean reopen.
		if err := l2.Append([]byte("post-repair")); err != nil {
			t.Fatal(err)
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
		l3, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer l3.Close()
		final := l3.Records()
		if len(final) != len(got)+1 || !bytes.Equal(final[len(final)-1], []byte("post-repair")) {
			t.Fatalf("post-repair reopen: %d records, want %d ending in post-repair", len(final), len(got)+1)
		}
	})
}
