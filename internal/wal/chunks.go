package wal

// Chunked checksummed files: the same length+CRC32C framing as journal
// records, applied per chunk to a whole file. The trace store writes
// .lptrace payloads this way so bit-rot anywhere in a file is detected
// on read (and by the scrubber) instead of surfacing as a garbled
// replay.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

const (
	chunkMagic = "lpchnk1\n"
	// DefaultChunkSize is the per-chunk payload size WriteChunked uses
	// when size <= 0.
	DefaultChunkSize = 64 << 10
)

// ErrCorruptChunk reports a chunked file that failed validation.
type ErrCorruptChunk struct {
	Path  string
	Chunk int
	Cause string
}

func (e *ErrCorruptChunk) Error() string {
	return fmt.Sprintf("wal: %s: corrupt chunk %d: %s", e.Path, e.Chunk, e.Cause)
}

// WriteChunked writes data to path as a chunked checksummed file,
// atomically (temp file + fsync + rename).
func WriteChunked(path string, data []byte, chunkSize int) error {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	var buf bytes.Buffer
	buf.Grow(len(chunkMagic) + len(data) + headerSize*(len(data)/chunkSize+1))
	buf.WriteString(chunkMagic)
	for len(data) > 0 {
		n := chunkSize
		if n > len(data) {
			n = len(data)
		}
		var hdr [headerSize]byte
		binary.LittleEndian.PutUint32(hdr[0:], uint32(n))
		binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(data[:n], castagnoli))
		buf.Write(hdr[:])
		buf.Write(data[:n])
		data = data[n:]
	}
	return writeFileSync(path, buf.Bytes())
}

// ReadChunked reads and validates a chunked file, returning the
// concatenated payload. Any framing or checksum violation returns an
// *ErrCorruptChunk — unlike a journal, a data file has no legal torn
// tail, so a partial file is corrupt, not short.
func ReadChunked(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(chunkMagic) || string(data[:len(chunkMagic)]) != chunkMagic {
		return nil, &ErrCorruptChunk{Path: path, Chunk: 0, Cause: "bad magic"}
	}
	rest := data[len(chunkMagic):]
	var out []byte
	for i := 0; len(rest) > 0; i++ {
		if len(rest) < headerSize {
			return nil, &ErrCorruptChunk{Path: path, Chunk: i, Cause: "truncated header"}
		}
		length := binary.LittleEndian.Uint32(rest[0:4])
		crc := binary.LittleEndian.Uint32(rest[4:8])
		if length > MaxRecord || int64(length) > int64(len(rest)-headerSize) {
			return nil, &ErrCorruptChunk{Path: path, Chunk: i, Cause: "truncated payload"}
		}
		payload := rest[headerSize : headerSize+int(length)]
		if crc32.Checksum(payload, castagnoli) != crc {
			return nil, &ErrCorruptChunk{Path: path, Chunk: i, Cause: "checksum mismatch"}
		}
		out = append(out, payload...)
		rest = rest[headerSize+int(length):]
	}
	return out, nil
}

// VerifyChunked validates a chunked file without retaining its payload.
func VerifyChunked(path string) error {
	_, err := ReadChunked(path)
	return err
}
