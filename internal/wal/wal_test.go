package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func mustOpen(t *testing.T, dir string) *Log {
	t.Helper()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func appendAll(t *testing.T, l *Log, recs ...string) {
	t.Helper()
	for _, r := range recs {
		if err := l.Append([]byte(r)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
}

func wantRecords(t *testing.T, l *Log, want ...string) {
	t.Helper()
	got := l.Records()
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d: %q", len(got), len(want), got)
	}
	for i := range want {
		if string(got[i]) != want[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir)
	appendAll(t, l, "one", "two", "", "four with some length")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := mustOpen(t, dir)
	defer l2.Close()
	wantRecords(t, l2, "one", "two", "", "four with some length")
	if s := l2.Stats(); s.RecoveredRecords != 4 || s.TornBytes != 0 {
		t.Fatalf("stats %+v, want 4 recovered, 0 torn", s)
	}
}

func TestCrashDropsUnsynced(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir)
	appendAll(t, l, "durable")
	if err := l.Append([]byte("buffered, never synced")); err != nil {
		t.Fatal(err)
	}
	l.Crash()
	l2 := mustOpen(t, dir)
	defer l2.Close()
	wantRecords(t, l2, "durable")
}

func TestTornTailTruncated(t *testing.T) {
	// Every kind of tail damage must truncate at the first bad record and
	// keep everything before it.
	cases := []struct {
		name string
		keep []string // records surviving the tear
		tear func(t *testing.T, path string)
	}{
		{"garbage appended", []string{"alpha", "beta", "gamma"}, func(t *testing.T, path string) {
			f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			f.Write([]byte{0x13, 0x37, 0xde, 0xad, 0xbe, 0xef})
			f.Close()
		}},
		{"partial record", []string{"alpha", "beta", "gamma"}, func(t *testing.T, path string) {
			f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			// Claims 100 payload bytes, delivers 3.
			f.Write([]byte{100, 0, 0, 0, 1, 2, 3, 4, 9, 9, 9})
			f.Close()
		}},
		{"bit flip in last record", []string{"alpha", "beta"}, func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)-1] ^= 0x40
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated mid-record", []string{"alpha", "beta"}, func(t *testing.T, path string) {
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, fi.Size()-2); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l := mustOpen(t, dir)
			appendAll(t, l, "alpha", "beta", "gamma")
			l.Close()
			tc.tear(t, journalPath(dir, 0))

			l2 := mustOpen(t, dir)
			wantRecords(t, l2, tc.keep...)
			if s := l2.Stats(); s.TornBytes == 0 {
				t.Fatalf("stats %+v: torn tail not counted", s)
			}
			// The log must be appendable after truncation, and the repair
			// must stick.
			appendAll(t, l2, "delta")
			l2.Close()
			l3 := mustOpen(t, dir)
			defer l3.Close()
			wantRecords(t, l3, append(append([]string{}, tc.keep...), "delta")...)
		})
	}
}

func TestTornHeaderIsEmptyLog(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(journalPath(dir, 0), []byte("lpw"), 0o644); err != nil {
		t.Fatal(err)
	}
	l := mustOpen(t, dir)
	defer l.Close()
	wantRecords(t, l)
	appendAll(t, l, "fresh")
}

func TestCompactAndRecover(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir)
	appendAll(t, l, "a", "b")
	if err := l.Compact([]byte("state-after-ab")); err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "c")
	l.Close()

	l2 := mustOpen(t, dir)
	defer l2.Close()
	if got := string(l2.Snapshot()); got != "state-after-ab" {
		t.Fatalf("snapshot %q, want state-after-ab", got)
	}
	wantRecords(t, l2, "c")
	// Exactly one generation remains on disk.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	if len(names) != 2 {
		t.Fatalf("dir holds %v, want one snapshot + one journal", names)
	}
}

func TestCompactCrashWindows(t *testing.T) {
	// A crash between snapshot creation and journal creation must recover
	// the new snapshot with an empty journal; a crash before the old
	// generation is deleted must still pick the newest complete one.
	dir := t.TempDir()
	l := mustOpen(t, dir)
	appendAll(t, l, "a")
	if err := l.Compact([]byte("snap1")); err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "b")
	l.Close()

	// Simulate the crash window: snapshot-2 exists, journal-2 does not,
	// and generation 1 was not yet deleted.
	if err := writeFileSync(snapshotPath(dir, 2), append([]byte(snapMagic), frame([]byte("snap2"))...)); err != nil {
		t.Fatal(err)
	}
	l2 := mustOpen(t, dir)
	if got := string(l2.Snapshot()); got != "snap2" {
		t.Fatalf("snapshot %q, want snap2", got)
	}
	wantRecords(t, l2)
	l2.Close()

	// A corrupt newest snapshot falls back to the previous complete
	// generation.
	dir2 := t.TempDir()
	l3 := mustOpen(t, dir2)
	appendAll(t, l3, "x")
	if err := l3.Compact([]byte("good")); err != nil {
		t.Fatal(err)
	}
	appendAll(t, l3, "y")
	l3.Close()
	if err := os.WriteFile(snapshotPath(dir2, 2), []byte("lpsnap1\ngarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	l4 := mustOpen(t, dir2)
	defer l4.Close()
	if got := string(l4.Snapshot()); got != "good" {
		t.Fatalf("snapshot %q, want fallback to good", got)
	}
	wantRecords(t, l4, "y")
}

func TestInspect(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir)
	appendAll(t, l, "a", "b")
	if err := l.Compact([]byte("snapshot")); err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, `{"k":"commit"}`)
	l.Close()
	// Tear the tail; Inspect must report it without repairing the file.
	f, err := os.OpenFile(journalPath(dir, 1), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{9, 9, 9})
	f.Close()
	before, _ := os.Stat(journalPath(dir, 1))

	info, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Gen != 1 || info.SnapshotBytes != len("snapshot") || len(info.Records) != 1 || info.TornBytes != 3 {
		t.Fatalf("info %+v, want gen 1, 8-byte snapshot, 1 record, 3 torn bytes", info)
	}
	after, _ := os.Stat(journalPath(dir, 1))
	if before.Size() != after.Size() {
		t.Fatal("Inspect modified the journal")
	}
}

func TestChunkedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.lptrace")
	data := bytes.Repeat([]byte("0123456789abcdef"), 1000)
	if err := WriteChunked(path, data, 100); err != nil {
		t.Fatal(err)
	}
	got, err := ReadChunked(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch: %d bytes, want %d", len(got), len(data))
	}
	if err := VerifyChunked(path); err != nil {
		t.Fatal(err)
	}
	// Empty payloads are legal.
	if err := WriteChunked(path, nil, 0); err != nil {
		t.Fatal(err)
	}
	if got, err := ReadChunked(path); err != nil || len(got) != 0 {
		t.Fatalf("empty round trip: %v, %d bytes", err, len(got))
	}
}

func TestChunkedDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.lptrace")
	data := bytes.Repeat([]byte("payload "), 512)
	if err := WriteChunked(path, data, 256); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{0, len(chunkMagic) + 2, len(raw) / 2, len(raw) - 1} {
		bad := append([]byte(nil), raw...)
		bad[pos] ^= 0x01
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := VerifyChunked(path); err == nil {
			t.Fatalf("flip at %d: corruption not detected", pos)
		}
	}
	// Truncation is corruption too (no legal torn tail for data files).
	if err := os.WriteFile(path, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	var ce *ErrCorruptChunk
	if err := VerifyChunked(path); err == nil {
		t.Fatal("truncation not detected")
	} else if !errorsAs(err, &ce) {
		t.Fatalf("error %T, want *ErrCorruptChunk", err)
	}
}

// errorsAs avoids importing errors for one call site.
func errorsAs(err error, target **ErrCorruptChunk) bool {
	ce, ok := err.(*ErrCorruptChunk)
	if ok {
		*target = ce
	}
	return ok
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir)
	l.Close()
	if err := l.Append([]byte("x")); err == nil {
		t.Fatal("append after close succeeded")
	}
	if err := l.Sync(); err == nil {
		t.Fatal("sync after close succeeded")
	}
}

func TestManyCompactions(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir)
	for i := 0; i < 10; i++ {
		appendAll(t, l, fmt.Sprintf("rec-%d", i))
		if err := l.Compact([]byte(fmt.Sprintf("snap-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	l2 := mustOpen(t, dir)
	defer l2.Close()
	if got := string(l2.Snapshot()); got != "snap-9" {
		t.Fatalf("snapshot %q, want snap-9", got)
	}
	wantRecords(t, l2)
}
