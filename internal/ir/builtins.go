package ir

// BuiltinInfo describes a runtime-provided function: its signature and the
// attributes the limit study's fn0..fn3 call classification needs
// (paper §II-E, Table II).
type BuiltinInfo struct {
	// Params are the parameter types.
	Params []Type
	// Ret is the return type.
	Ret Type
	// Pure means read-only with no side effects (the fn1 class).
	Pure bool
	// ThreadSafe means re-entrant library code: callable from parallel
	// iterations without ordering (the fn2 class). Every Pure builtin is
	// implicitly thread-safe.
	ThreadSafe bool
	// IO means the builtin performs observable output and must retain
	// strict sequential order under every configuration except fn3.
	IO bool
	// Cost is the dynamic IR-instruction-count charge for one call,
	// standing in for the uninstrumented library body (paper §III-D).
	Cost int64
}

// Builtins is the registry of runtime-provided functions available to LPC
// programs. The interpreter implements exactly this set.
var Builtins = map[string]BuiltinInfo{
	// Math: pure, thread-safe.
	"sqrt":  {Params: []Type{Float}, Ret: Float, Pure: true, ThreadSafe: true, Cost: 4},
	"sin":   {Params: []Type{Float}, Ret: Float, Pure: true, ThreadSafe: true, Cost: 8},
	"cos":   {Params: []Type{Float}, Ret: Float, Pure: true, ThreadSafe: true, Cost: 8},
	"exp":   {Params: []Type{Float}, Ret: Float, Pure: true, ThreadSafe: true, Cost: 8},
	"log":   {Params: []Type{Float}, Ret: Float, Pure: true, ThreadSafe: true, Cost: 8},
	"pow":   {Params: []Type{Float, Float}, Ret: Float, Pure: true, ThreadSafe: true, Cost: 12},
	"floor": {Params: []Type{Float}, Ret: Float, Pure: true, ThreadSafe: true, Cost: 2},
	"fabs":  {Params: []Type{Float}, Ret: Float, Pure: true, ThreadSafe: true, Cost: 1},
	"fmin":  {Params: []Type{Float, Float}, Ret: Float, Pure: true, ThreadSafe: true, Cost: 1},
	"fmax":  {Params: []Type{Float, Float}, Ret: Float, Pure: true, ThreadSafe: true, Cost: 1},
	"abs":   {Params: []Type{Int}, Ret: Int, Pure: true, ThreadSafe: true, Cost: 1},
	"min":   {Params: []Type{Int, Int}, Ret: Int, Pure: true, ThreadSafe: true, Cost: 1},
	"max":   {Params: []Type{Int, Int}, Ret: Int, Pure: true, ThreadSafe: true, Cost: 1},

	// Heap allocation: stateful but re-entrant (the fn2 class).
	"alloc":  {Params: []Type{Int}, Ret: PtrTo(Int), ThreadSafe: true, Cost: 16},
	"allocf": {Params: []Type{Int}, Ret: PtrTo(Float), ThreadSafe: true, Cost: 16},

	// Pseudo-random numbers: hidden global state, not re-entrant.
	"rand":  {Ret: Int, Cost: 6},
	"srand": {Params: []Type{Int}, Ret: Void, Cost: 2},

	// Output: observable side effects, strictly ordered.
	"print_i64": {Params: []Type{Int}, Ret: Void, IO: true, Cost: 32},
	"print_f64": {Params: []Type{Float}, Ret: Void, IO: true, Cost: 32},
}

// BuiltinAttr returns the registry entry for name.
func BuiltinAttr(name string) (BuiltinInfo, bool) {
	bi, ok := Builtins[name]
	return bi, ok
}
