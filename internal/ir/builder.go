package ir

import "fmt"

// Builder provides a convenient, position-based API for emitting
// instructions. It is used by the front end's code generator and by tests
// that construct IR by hand.
type Builder struct {
	// Func is the function being built.
	Func *Function
	// Block is the current insertion block; new instructions are
	// appended to its end.
	Block *Block
}

// NewBuilder returns a builder positioned at the entry block of f (creating
// the entry block if the function has none).
func NewBuilder(f *Function) *Builder {
	if len(f.Blocks) == 0 {
		f.NewBlock("entry")
	}
	return &Builder{Func: f, Block: f.Entry()}
}

// SetBlock moves the insertion point to the end of b.
func (bld *Builder) SetBlock(b *Block) { bld.Block = b }

// emit appends an instruction to the current block and returns it.
func (bld *Builder) emit(i *Instr) *Instr {
	if bld.Block == nil {
		panic("ir.Builder: no insertion block")
	}
	if t := bld.Block.Terminator(); t != nil {
		panic(fmt.Sprintf("ir.Builder: emitting %s after terminator in .%s", i.Op, bld.Block.Name))
	}
	bld.Block.Append(i)
	return i
}

func (bld *Builder) named(op Op, ty Type, hint string, args ...Value) *Instr {
	return bld.emit(&Instr{Op: op, Ty: ty, Nm: bld.Func.NextName(hint), Args: args})
}

// Binary emits a two-operand arithmetic/bitwise instruction. The result type
// follows the left operand.
func (bld *Builder) Binary(op Op, a, b Value) *Instr {
	if !op.IsBinaryArith() {
		panic("ir.Builder.Binary: " + op.String() + " is not binary arithmetic")
	}
	return bld.named(op, a.Type(), op.String(), a, b)
}

// Compare emits a comparison producing a Bool.
func (bld *Builder) Compare(op Op, a, b Value) *Instr {
	if !op.IsCompare() {
		panic("ir.Builder.Compare: " + op.String() + " is not a comparison")
	}
	return bld.named(op, Bool, "cmp", a, b)
}

// Neg emits integer negation.
func (bld *Builder) Neg(a Value) *Instr { return bld.named(OpNeg, Int, "neg", a) }

// FNeg emits float negation.
func (bld *Builder) FNeg(a Value) *Instr { return bld.named(OpFNeg, Float, "fneg", a) }

// Not emits boolean negation.
func (bld *Builder) Not(a Value) *Instr { return bld.named(OpNot, Bool, "not", a) }

// IntToFloat emits an int-to-float conversion.
func (bld *Builder) IntToFloat(a Value) *Instr { return bld.named(OpIntToFloat, Float, "itof", a) }

// FloatToInt emits a float-to-int conversion (truncation toward zero).
func (bld *Builder) FloatToInt(a Value) *Instr { return bld.named(OpFloatToInt, Int, "ftoi", a) }

// Alloca emits a stack allocation of size words whose cells have kind elem.
func (bld *Builder) Alloca(elem Type, size Value, hint string) *Instr {
	return bld.named(OpAlloca, PtrTo(elem), hint, size)
}

// Load emits a load through addr.
func (bld *Builder) Load(addr Value) *Instr {
	t := addr.Type()
	if !t.IsPtr() {
		panic("ir.Builder.Load: address is not a pointer")
	}
	return bld.named(OpLoad, t.Elem(), "ld", addr)
}

// Store emits a store of v through addr.
func (bld *Builder) Store(addr, v Value) *Instr {
	if !addr.Type().IsPtr() {
		panic("ir.Builder.Store: address is not a pointer")
	}
	return bld.emit(&Instr{Op: OpStore, Ty: Void, Args: []Value{addr, v}})
}

// AddPtr emits pointer arithmetic: base + idx words.
func (bld *Builder) AddPtr(base, idx Value) *Instr {
	t := base.Type()
	if !t.IsPtr() {
		panic("ir.Builder.AddPtr: base is not a pointer")
	}
	return bld.named(OpAddPtr, t, "p", base, idx)
}

// PtrCast reinterprets a pointer as pointing at cells of a different kind.
// It is a zero-cost operation realized as AddPtr base, 0 with a retyped
// result; a dedicated instruction keeps the IR honest about the cast.
func (bld *Builder) PtrCast(base Value, elem Type) *Instr {
	i := bld.named(OpAddPtr, PtrTo(elem), "cast", base, ConstInt(0))
	return i
}

// Call emits a call to a user function defined in the module.
func (bld *Builder) Call(callee *Function, args ...Value) *Instr {
	i := bld.emit(&Instr{Op: OpCall, Ty: callee.Ret, Args: args, Callee: callee})
	if callee.Ret.Kind() != KVoid {
		i.Nm = bld.Func.NextName("call")
	}
	return i
}

// CallBuiltin emits a call to a named builtin with the given return type.
func (bld *Builder) CallBuiltin(name string, ret Type, args ...Value) *Instr {
	i := bld.emit(&Instr{Op: OpCall, Ty: ret, Args: args, Builtin: name})
	if ret.Kind() != KVoid {
		i.Nm = bld.Func.NextName("call")
	}
	return i
}

// Br emits a conditional branch.
func (bld *Builder) Br(cond Value, then, els *Block) *Instr {
	return bld.emit(&Instr{Op: OpBr, Ty: Void, Args: []Value{cond}, Blocks: []*Block{then, els}})
}

// Jmp emits an unconditional branch.
func (bld *Builder) Jmp(target *Block) *Instr {
	return bld.emit(&Instr{Op: OpJmp, Ty: Void, Blocks: []*Block{target}})
}

// Ret emits a return. v may be nil for void functions.
func (bld *Builder) Ret(v Value) *Instr {
	i := &Instr{Op: OpRet, Ty: Void}
	if v != nil {
		i.Args = []Value{v}
	}
	return bld.emit(i)
}

// Phi emits a phi node at the start of the current block. Incoming edges are
// added with Instr.SetPhiIncoming.
func (bld *Builder) Phi(ty Type, hint string) *Instr {
	i := &Instr{Op: OpPhi, Ty: ty, Nm: bld.Func.NextName(hint)}
	bld.Block.InsertBefore(bld.Block.FirstNonPhi(), i)
	return i
}
