package ir

import (
	"fmt"
	"strings"
)

// Block is a basic block: a straight-line sequence of instructions ending in
// exactly one terminator. Phi instructions, if any, appear first.
type Block struct {
	// Name is unique within the function.
	Name string
	// Instrs are the instructions, terminator last.
	Instrs []*Instr
	// Parent is the containing function.
	Parent *Function
	// Index is the position of the block in Parent.Blocks. It is kept
	// up to date by Function.Renumber and used as a dense key by analyses.
	Index int
}

// Terminator returns the block's terminator, or nil if the block is
// unterminated (only during construction).
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	t := b.Instrs[len(b.Instrs)-1]
	if !t.Op.IsTerminator() {
		return nil
	}
	return t
}

// Succs returns the successor blocks in terminator order.
func (b *Block) Succs() []*Block {
	t := b.Terminator()
	if t == nil {
		return nil
	}
	return t.Blocks
}

// Phis returns the leading phi instructions of the block.
func (b *Block) Phis() []*Instr {
	n := 0
	for n < len(b.Instrs) && b.Instrs[n].Op == OpPhi {
		n++
	}
	return b.Instrs[:n]
}

// FirstNonPhi returns the index of the first non-phi instruction.
func (b *Block) FirstNonPhi() int {
	n := 0
	for n < len(b.Instrs) && b.Instrs[n].Op == OpPhi {
		n++
	}
	return n
}

// Append adds an instruction to the end of the block and sets its parent.
func (b *Block) Append(i *Instr) {
	i.Parent = b
	b.Instrs = append(b.Instrs, i)
}

// InsertBefore inserts instruction i at position idx.
func (b *Block) InsertBefore(idx int, i *Instr) {
	i.Parent = b
	b.Instrs = append(b.Instrs, nil)
	copy(b.Instrs[idx+1:], b.Instrs[idx:])
	b.Instrs[idx] = i
}

// RemoveAt deletes the instruction at position idx.
func (b *Block) RemoveAt(idx int) {
	b.Instrs = append(b.Instrs[:idx], b.Instrs[idx+1:]...)
}

// String returns the block label.
func (b *Block) String() string { return "." + b.Name }

// Function is a user-defined function: a parameter list, a return type, and
// a CFG of basic blocks (entry first).
type Function struct {
	// Name is the function's name, unique within the module.
	Name string
	// Params are the formal parameters.
	Params []*Param
	// Ret is the return type (Void for procedures).
	Ret Type
	// Blocks are the basic blocks; Blocks[0] is the entry.
	Blocks []*Block
	// Module is the containing module.
	Module *Module

	// numRegs is the register-frame size assigned by NumberValues
	// (params + result-producing instructions); 0 until numbered.
	numRegs  int
	numbered bool

	nameSeq int
}

// NumberValues assigns dense register slots to the function's values:
// parameters occupy slots [0, len(Params)) (their existing Index), and every
// result-producing instruction receives the next free slot (Instr.Slot;
// resultless instructions get -1). It returns the total register count and
// is idempotent. Call it once the IR is final — after all transformation
// passes — since later instruction insertion would invalidate the numbering.
func (f *Function) NumberValues() int {
	n := len(f.Params)
	for _, b := range f.Blocks {
		for _, i := range b.Instrs {
			if i.Op.HasResult() && i.Ty.Kind() != KVoid {
				i.Slot = n
				n++
			} else {
				i.Slot = -1
			}
		}
	}
	f.numRegs = n
	f.numbered = true
	return n
}

// NumRegs returns the register-frame size assigned by NumberValues.
func (f *Function) NumRegs() int { return f.numRegs }

// Numbered reports whether NumberValues has run on this function.
func (f *Function) Numbered() bool { return f.numbered }

// Entry returns the entry block.
func (f *Function) Entry() *Block { return f.Blocks[0] }

// NewBlock appends a fresh block with the given name hint to the function.
func (f *Function) NewBlock(name string) *Block {
	b := &Block{Name: f.uniqueBlockName(name), Parent: f, Index: len(f.Blocks)}
	f.Blocks = append(f.Blocks, b)
	return b
}

func (f *Function) uniqueBlockName(hint string) string {
	if hint == "" {
		hint = "bb"
	}
	name := hint
	for n := 1; ; n++ {
		found := false
		for _, b := range f.Blocks {
			if b.Name == name {
				found = true
				break
			}
		}
		if !found {
			return name
		}
		name = fmt.Sprintf("%s%d", hint, n)
	}
}

// NextName returns a fresh SSA value name with the given hint.
func (f *Function) NextName(hint string) string {
	if hint == "" {
		hint = "t"
	}
	f.nameSeq++
	return fmt.Sprintf("%s%d", hint, f.nameSeq)
}

// Renumber refreshes Block.Index after blocks have been added or removed.
func (f *Function) Renumber() {
	for i, b := range f.Blocks {
		b.Index = i
	}
}

// Preds returns, for every block, its predecessor blocks. The result is
// indexed by Block.Index; call Renumber first if the block list changed.
func (f *Function) Preds() [][]*Block {
	preds := make([][]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			preds[s.Index] = append(preds[s.Index], b)
		}
	}
	return preds
}

// RemoveBlock deletes block b from the function and renumbers.
// The caller is responsible for having removed all edges into b.
func (f *Function) RemoveBlock(b *Block) {
	for i, x := range f.Blocks {
		if x == b {
			f.Blocks = append(f.Blocks[:i], f.Blocks[i+1:]...)
			break
		}
	}
	f.Renumber()
}

// InstrCount returns the static number of instructions in the function.
func (f *Function) InstrCount() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// String renders the function in an LLVM-flavoured text form.
func (f *Function) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s @%s(", f.Ret, f.Name)
	for i, p := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s %s", p.Ty, p.Name())
	}
	sb.WriteString(") {\n")
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, ".%s:\n", b.Name)
		for _, ins := range b.Instrs {
			fmt.Fprintf(&sb, "\t%s\n", ins)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// Module is a compilation unit: globals plus functions.
type Module struct {
	// Name identifies the module (usually the source file or benchmark).
	Name string
	// Globals are module-level allocations in declaration order.
	Globals []*Global
	// Funcs are the functions in declaration order.
	Funcs []*Function
}

// NewModule returns an empty module with the given name.
func NewModule(name string) *Module { return &Module{Name: name} }

// AddFunction creates an empty function (no blocks yet) in the module.
func (m *Module) AddFunction(name string, ret Type, params ...*Param) *Function {
	for i, p := range params {
		p.Index = i
	}
	f := &Function{Name: name, Ret: ret, Params: params, Module: m}
	m.Funcs = append(m.Funcs, f)
	return f
}

// AddGlobal creates a module-level allocation of size words.
func (m *Module) AddGlobal(name string, elem Type, size int64) *Global {
	g := &Global{Nm: name, Elem: elem, Size: size}
	m.Globals = append(m.Globals, g)
	return g
}

// Func returns the function with the given name, or nil.
func (m *Module) Func(name string) *Function {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Global returns the global with the given name, or nil.
func (m *Module) Global(name string) *Global {
	for _, g := range m.Globals {
		if g.Nm == name {
			return g
		}
	}
	return nil
}

// String renders the whole module.
func (m *Module) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s\n", m.Name)
	for _, g := range m.Globals {
		sb.WriteString(g.String())
		sb.WriteString("\n")
	}
	for _, f := range m.Funcs {
		sb.WriteString(f.String())
	}
	return sb.String()
}
