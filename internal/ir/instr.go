package ir

import (
	"fmt"
	"strings"
)

// Op enumerates the instruction opcodes of the IR.
type Op uint8

// Instruction opcodes.
const (
	OpInvalid Op = iota

	// Integer arithmetic (operands KInt, result KInt).
	OpAdd
	OpSub
	OpMul
	OpDiv // signed division; division by zero traps
	OpRem // signed remainder; division by zero traps
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr // arithmetic shift right

	// Float arithmetic (operands KFloat, result KFloat).
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv

	// Unary.
	OpNeg  // integer negation
	OpFNeg // float negation
	OpNot  // boolean not

	// Comparisons (result KBool). Operands are both KInt, both KFloat,
	// or both KPtr (equality/ordering on addresses).
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe

	// Conversions.
	OpIntToFloat // KInt -> KFloat
	OpFloatToInt // KFloat -> KInt (truncation toward zero)

	// Memory.
	OpAlloca // operand 0: size in words (KInt); result KPtr
	OpLoad   // operand 0: address (KPtr); result Elem kind of the pointer
	OpStore  // operand 0: address (KPtr), operand 1: value; no result
	OpAddPtr // operand 0: base (KPtr), operand 1: index (KInt); result KPtr

	// Calls.
	OpCall // Callee set; operands are arguments; result = callee return type

	// Control flow (block terminators).
	OpBr  // operand 0: condition (KBool); Blocks[0] = then, Blocks[1] = else
	OpJmp // Blocks[0] = target
	OpRet // operand 0: return value (absent for void)

	// SSA.
	OpPhi // operands are incoming values; Blocks are incoming blocks
)

var opNames = [...]string{
	OpInvalid: "invalid",
	OpAdd:     "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpNeg: "neg", OpFNeg: "fneg", OpNot: "not",
	OpEq: "eq", OpNe: "ne", OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge",
	OpIntToFloat: "itof", OpFloatToInt: "ftoi",
	OpAlloca: "alloca", OpLoad: "load", OpStore: "store", OpAddPtr: "addptr",
	OpCall: "call",
	OpBr:   "br", OpJmp: "jmp", OpRet: "ret",
	OpPhi: "phi",
}

// String returns the mnemonic of the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsTerminator reports whether the opcode ends a basic block.
func (o Op) IsTerminator() bool { return o == OpBr || o == OpJmp || o == OpRet }

// IsBinaryArith reports whether the opcode is a two-operand arithmetic or
// bitwise operation.
func (o Op) IsBinaryArith() bool {
	switch o {
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpFAdd, OpFSub, OpFMul, OpFDiv:
		return true
	}
	return false
}

// IsCompare reports whether the opcode is a comparison.
func (o Op) IsCompare() bool {
	switch o {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return true
	}
	return false
}

// HasResult reports whether an instruction with this opcode produces a value.
// OpCall produces a value only when the callee returns non-void; callers must
// check Instr.Ty.
func (o Op) HasResult() bool {
	switch o {
	case OpStore, OpBr, OpJmp, OpRet:
		return false
	}
	return true
}

// Instr is a single IR instruction. Instructions are Values: the result of
// an instruction is named after the instruction itself.
type Instr struct {
	// Op is the opcode.
	Op Op
	// Ty is the result type (Void for instructions without results).
	Ty Type
	// Nm is the SSA name of the result, unique within its function.
	Nm string
	// Args are the value operands.
	Args []Value
	// Blocks are the block operands: branch targets for OpBr/OpJmp,
	// incoming blocks for OpPhi (parallel to Args).
	Blocks []*Block
	// Callee is the called function for OpCall when calling a user
	// function defined in the module.
	Callee *Function
	// Builtin is the called builtin's name for OpCall when Callee is nil.
	Builtin string
	// Parent is the containing basic block.
	Parent *Block
	// Slot is the dense register index of the instruction's result within
	// its function, assigned by Function.NumberValues after the IR is
	// final. It is -1 for instructions without a result. Interpreters use
	// it to index flat register frames instead of probing a map.
	Slot int
}

// Type implements Value.
func (i *Instr) Type() Type { return i.Ty }

// Name implements Value.
func (i *Instr) Name() string { return "%" + i.Nm }

// CalleeName returns the printable name of the call target.
func (i *Instr) CalleeName() string {
	if i.Callee != nil {
		return i.Callee.Name
	}
	return i.Builtin
}

// String renders the instruction in an LLVM-flavoured syntax.
func (i *Instr) String() string {
	var b strings.Builder
	if i.Op.HasResult() && i.Ty.Kind() != KVoid {
		fmt.Fprintf(&b, "%s = ", i.Name())
	}
	b.WriteString(i.Op.String())
	if i.Op == OpCall {
		fmt.Fprintf(&b, " %s @%s", i.Ty, i.CalleeName())
	} else if i.Op.HasResult() && i.Ty.Kind() != KVoid {
		fmt.Fprintf(&b, " %s", i.Ty)
	}
	switch i.Op {
	case OpPhi:
		for k, a := range i.Args {
			if k > 0 {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, " [%s, .%s]", a.Name(), i.Blocks[k].Name)
		}
	case OpBr:
		fmt.Fprintf(&b, " %s, .%s, .%s", i.Args[0].Name(), i.Blocks[0].Name, i.Blocks[1].Name)
	case OpJmp:
		fmt.Fprintf(&b, " .%s", i.Blocks[0].Name)
	case OpCall:
		b.WriteString("(")
		for k, a := range i.Args {
			if k > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.Name())
		}
		b.WriteString(")")
	default:
		for k, a := range i.Args {
			if k > 0 {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, " %s", a.Name())
		}
	}
	return b.String()
}

// PhiIncoming returns the incoming value of a phi for the given predecessor
// block, or nil if the block is not an incoming edge.
func (i *Instr) PhiIncoming(pred *Block) Value {
	for k, b := range i.Blocks {
		if b == pred {
			return i.Args[k]
		}
	}
	return nil
}

// SetPhiIncoming replaces the incoming value for pred, adding the edge if it
// does not exist yet.
func (i *Instr) SetPhiIncoming(pred *Block, v Value) {
	for k, b := range i.Blocks {
		if b == pred {
			i.Args[k] = v
			return
		}
	}
	i.Blocks = append(i.Blocks, pred)
	i.Args = append(i.Args, v)
}

// ReplaceUses rewrites every operand equal to old with new across the whole
// function containing i's parent. It is a convenience for rewriting passes.
func ReplaceUses(f *Function, old, new Value) {
	for _, b := range f.Blocks {
		for _, ins := range b.Instrs {
			for k, a := range ins.Args {
				if a == old {
					ins.Args[k] = new
				}
			}
		}
	}
}
