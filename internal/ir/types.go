// Package ir defines the typed, SSA-style intermediate representation that
// the Loopapalooza limit-study framework analyzes and executes.
//
// The IR deliberately mirrors the subset of LLVM IR that the original paper's
// compile-time component relies on: functions of basic blocks, explicit
// control flow (conditional/unconditional branches and returns), phi nodes,
// loads/stores against an addressable memory, pointer arithmetic (a GEP-like
// AddPtr instruction), calls, and scalar arithmetic over 64-bit integers and
// floats.
//
// Memory is word-addressed: every addressable cell holds one 64-bit value and
// pointer arithmetic advances in cells, not bytes. This keeps dynamic
// dependence tracking exact (no partial-overlap aliasing cases) without
// changing anything the limit study measures.
package ir

import (
	"fmt"
	"strings"
)

// Kind enumerates the scalar type kinds of the IR.
type Kind uint8

// The IR type kinds.
const (
	// KVoid is the type of functions that return nothing. No value has
	// kind KVoid.
	KVoid Kind = iota
	// KBool is the type of comparison results and branch conditions.
	KBool
	// KInt is a 64-bit signed integer.
	KInt
	// KFloat is a 64-bit IEEE-754 float.
	KFloat
	// KPtr is a pointer: a word address into the simulated memory.
	KPtr
)

// Type describes the type of an IR value: a scalar kind plus an indirection
// depth. Types are small values and are compared with ==.
//
//	{Base: KInt, Ptr: 0}  is i64
//	{Base: KInt, Ptr: 1}  is i64*
//	{Base: KInt, Ptr: 2}  is i64**
type Type struct {
	// Base is the ultimate scalar kind.
	Base Kind
	// Ptr is the indirection depth (0 for scalars).
	Ptr uint8
}

// Predefined scalar types.
var (
	Void  = Type{Base: KVoid}
	Bool  = Type{Base: KBool}
	Int   = Type{Base: KInt}
	Float = Type{Base: KFloat}
)

// Kind returns the effective kind of the value: KPtr for pointers, else the
// base scalar kind.
func (t Type) Kind() Kind {
	if t.Ptr > 0 {
		return KPtr
	}
	return t.Base
}

// PtrTo returns the pointer type whose cells hold values of type elem.
func PtrTo(elem Type) Type { return Type{Base: elem.Base, Ptr: elem.Ptr + 1} }

// Elem returns the type of the cells a pointer type points at.
// It panics for non-pointer types.
func (t Type) Elem() Type {
	if t.Ptr == 0 {
		panic("ir.Type.Elem of non-pointer " + t.String())
	}
	return Type{Base: t.Base, Ptr: t.Ptr - 1}
}

// IsPtr reports whether t is a pointer type.
func (t Type) IsPtr() bool { return t.Ptr > 0 }

// IsNumeric reports whether t is the scalar KInt or KFloat.
func (t Type) IsNumeric() bool {
	return t.Ptr == 0 && (t.Base == KInt || t.Base == KFloat)
}

// String returns an LLVM-flavoured spelling of the type.
func (t Type) String() string {
	var base string
	switch t.Base {
	case KVoid:
		base = "void"
	case KBool:
		base = "i1"
	case KInt:
		base = "i64"
	case KFloat:
		base = "f64"
	default:
		base = fmt.Sprintf("type(%d)", t.Base)
	}
	return base + strings.Repeat("*", int(t.Ptr))
}

// String returns the spelling of the scalar kind.
func (k Kind) String() string {
	if k == KPtr {
		return "ptr"
	}
	return Type{Base: k}.String()
}
