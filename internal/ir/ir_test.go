package ir

import (
	"strings"
	"testing"
)

// buildCountdown builds: func i64 @count(n) { loop { i = phi(n, i-1); if i>0 continue } return 0 }
func buildCountdown(t *testing.T) (*Module, *Function) {
	t.Helper()
	m := NewModule("test")
	f := m.AddFunction("count", Int, &Param{Nm: "n", Ty: Int})
	b := NewBuilder(f)
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	b.Jmp(head)

	b.SetBlock(head)
	phi := b.Phi(Int, "i")
	cmp := b.Compare(OpGt, phi, ConstInt(0))
	b.Br(cmp, body, exit)

	b.SetBlock(body)
	dec := b.Binary(OpSub, phi, ConstInt(1))
	b.Jmp(head)

	phi.SetPhiIncoming(f.Entry(), f.Params[0])
	phi.SetPhiIncoming(body, dec)

	b.SetBlock(exit)
	b.Ret(ConstInt(0))
	return m, f
}

func TestVerifyAcceptsWellFormed(t *testing.T) {
	m, _ := buildCountdown(t)
	if err := Verify(m); err != nil {
		t.Fatalf("Verify: %v\n%s", err, m)
	}
}

func TestVerifyCatchesMissingTerminator(t *testing.T) {
	m, f := buildCountdown(t)
	exit := f.Blocks[3]
	exit.Instrs = nil
	if err := Verify(m); err == nil || !strings.Contains(err.Error(), "lacks a terminator") {
		t.Fatalf("want missing-terminator error, got %v", err)
	}
}

func TestVerifyCatchesPhiMismatch(t *testing.T) {
	m, f := buildCountdown(t)
	head := f.Blocks[1]
	phi := head.Phis()[0]
	phi.Blocks = phi.Blocks[:1]
	phi.Args = phi.Args[:1]
	if err := Verify(m); err == nil || !strings.Contains(err.Error(), "missing incoming") {
		t.Fatalf("want phi-mismatch error, got %v", err)
	}
}

func TestVerifyCatchesTypeErrors(t *testing.T) {
	m := NewModule("bad")
	f := m.AddFunction("f", Void)
	b := NewBuilder(f)
	b.Binary(OpFAdd, ConstInt(1), ConstInt(2)) // int operands to fadd
	b.Ret(nil)
	if err := Verify(m); err == nil || !strings.Contains(err.Error(), "fadd") {
		t.Fatalf("want fadd type error, got %v", err)
	}
}

func TestVerifyCatchesDuplicates(t *testing.T) {
	m := NewModule("dup")
	for i := 0; i < 2; i++ {
		f := m.AddFunction("same", Void)
		bld := NewBuilder(f)
		bld.Ret(nil)
	}
	if err := Verify(m); err == nil || !strings.Contains(err.Error(), "duplicate function") {
		t.Fatalf("want duplicate error, got %v", err)
	}
}

func TestPredsAndSuccs(t *testing.T) {
	_, f := buildCountdown(t)
	f.Renumber()
	preds := f.Preds()
	head := f.Blocks[1]
	if got := len(preds[head.Index]); got != 2 {
		t.Fatalf("head preds = %d, want 2", got)
	}
	if got := len(head.Succs()); got != 2 {
		t.Fatalf("head succs = %d, want 2", got)
	}
	if f.Entry().Succs()[0] != head {
		t.Fatalf("entry successor is %v, want head", f.Entry().Succs()[0])
	}
}

func TestPhiIncomingLookup(t *testing.T) {
	_, f := buildCountdown(t)
	head := f.Blocks[1]
	body := f.Blocks[2]
	phi := head.Phis()[0]
	if v := phi.PhiIncoming(f.Entry()); v != f.Params[0] {
		t.Fatalf("incoming from entry = %v, want param n", v)
	}
	if v := phi.PhiIncoming(body); v == nil {
		t.Fatal("incoming from body missing")
	}
	if v := phi.PhiIncoming(f.Blocks[3]); v != nil {
		t.Fatalf("incoming from exit = %v, want nil", v)
	}
}

func TestReplaceUses(t *testing.T) {
	_, f := buildCountdown(t)
	old := f.Params[0]
	ReplaceUses(f, old, ConstInt(7))
	head := f.Blocks[1]
	phi := head.Phis()[0]
	if v, ok := ConstIntValue(phi.PhiIncoming(f.Entry())); !ok || v != 7 {
		t.Fatalf("phi incoming after ReplaceUses = %v", phi.PhiIncoming(f.Entry()))
	}
}

func TestPrinterRoundTrips(t *testing.T) {
	m, _ := buildCountdown(t)
	s := m.String()
	for _, want := range []string{"func i64 @count", "phi", "br %cmp", "ret 0", ".head:"} {
		if !strings.Contains(s, want) {
			t.Errorf("printed module missing %q:\n%s", want, s)
		}
	}
}

func TestTypeStrings(t *testing.T) {
	cases := map[Type]string{
		Int:          "i64",
		Float:        "f64",
		Bool:         "i1",
		Void:         "void",
		PtrTo(Int):   "i64*",
		PtrTo(Float): "f64*",
	}
	for ty, want := range cases {
		if got := ty.String(); got != want {
			t.Errorf("%#v.String() = %q, want %q", ty, got, want)
		}
	}
}

func TestBuilderPanicsAfterTerminator(t *testing.T) {
	m := NewModule("p")
	f := m.AddFunction("f", Void)
	b := NewBuilder(f)
	b.Ret(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic emitting after terminator")
		}
	}()
	b.Ret(nil)
}

func TestInstrCountAndRemove(t *testing.T) {
	_, f := buildCountdown(t)
	n := f.InstrCount()
	if n != 7 {
		t.Fatalf("InstrCount = %d, want 7", n)
	}
	body := f.Blocks[2]
	body.RemoveAt(0)
	if f.InstrCount() != 6 {
		t.Fatalf("InstrCount after remove = %d, want 6", f.InstrCount())
	}
}

func TestGlobalsAndLookup(t *testing.T) {
	m := NewModule("g")
	g := m.AddGlobal("table", Int, 16)
	if m.Global("table") != g {
		t.Fatal("Global lookup failed")
	}
	if m.Global("absent") != nil {
		t.Fatal("Global lookup of absent name should be nil")
	}
	if g.Type() != PtrTo(Int) {
		t.Fatalf("global type = %v", g.Type())
	}
	f := m.AddFunction("f", Void)
	if m.Func("f") != f || m.Func("nope") != nil {
		t.Fatal("Func lookup failed")
	}
}
