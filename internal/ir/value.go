package ir

import (
	"fmt"
	"strconv"
)

// Value is anything that can appear as an instruction operand: constants,
// function parameters, globals, and the results of instructions.
type Value interface {
	// Type returns the static type of the value.
	Type() Type
	// Name returns the printable name of the value (e.g. "%x", "42").
	Name() string
}

// IntConst is a 64-bit integer constant.
type IntConst struct{ V int64 }

// Type implements Value.
func (c *IntConst) Type() Type { return Int }

// Name implements Value.
func (c *IntConst) Name() string { return strconv.FormatInt(c.V, 10) }

// FloatConst is a 64-bit float constant.
type FloatConst struct{ V float64 }

// Type implements Value.
func (c *FloatConst) Type() Type { return Float }

// Name implements Value.
func (c *FloatConst) Name() string { return strconv.FormatFloat(c.V, 'g', -1, 64) }

// BoolConst is a boolean constant.
type BoolConst struct{ V bool }

// Type implements Value.
func (c *BoolConst) Type() Type { return Bool }

// Name implements Value.
func (c *BoolConst) Name() string { return strconv.FormatBool(c.V) }

// ConstInt returns a new integer constant value.
func ConstInt(v int64) *IntConst { return &IntConst{V: v} }

// ConstFloat returns a new float constant value.
func ConstFloat(v float64) *FloatConst { return &FloatConst{V: v} }

// ConstBool returns a new boolean constant value.
func ConstBool(v bool) *BoolConst { return &BoolConst{V: v} }

// NullConst is the null pointer constant of a given pointer type.
type NullConst struct{ Ty Type }

// Type implements Value.
func (c *NullConst) Type() Type { return c.Ty }

// Name implements Value.
func (c *NullConst) Name() string { return "null" }

// ConstNull returns the null pointer of type ty (which must be a pointer).
func ConstNull(ty Type) *NullConst { return &NullConst{Ty: ty} }

// IsConst reports whether v is a constant of any kind.
func IsConst(v Value) bool {
	switch v.(type) {
	case *IntConst, *FloatConst, *BoolConst, *NullConst:
		return true
	}
	return false
}

// ConstIntValue returns the integer payload of v and whether v is an
// integer constant.
func ConstIntValue(v Value) (int64, bool) {
	c, ok := v.(*IntConst)
	if !ok {
		return 0, false
	}
	return c.V, true
}

// Param is a function parameter.
type Param struct {
	// Nm is the source-level parameter name.
	Nm string
	// Ty is the parameter type.
	Ty Type
	// Index is the zero-based position in the parameter list.
	Index int
}

// Type implements Value.
func (p *Param) Type() Type { return p.Ty }

// Name implements Value.
func (p *Param) Name() string { return "%" + p.Nm }

// Global is a module-level allocation of Size words, optionally initialized.
// Its value is the address of its first word; the address is assigned by the
// interpreter at load time.
type Global struct {
	// Nm is the global's name.
	Nm string
	// Size is the allocation size in words (>= 1).
	Size int64
	// Elem is the type of the stored cells.
	Elem Type
	// InitInt holds initial values for integer/pointer cells
	// (len <= Size; remaining cells are zero).
	InitInt []int64
	// InitFloat holds initial values for float cells.
	InitFloat []float64
}

// Type implements Value: a global evaluates to the address of its storage.
func (g *Global) Type() Type { return PtrTo(g.Elem) }

// Name implements Value.
func (g *Global) Name() string { return "@" + g.Nm }

func (g *Global) String() string {
	return fmt.Sprintf("%s = global [%d x %s]", g.Name(), g.Size, g.Elem)
}
