package ir

import (
	"errors"
	"fmt"
)

// Verify checks structural well-formedness of a module:
//
//   - every block has exactly one terminator, at the end;
//   - phi nodes are grouped at block heads and their incoming blocks match
//     the block's predecessors exactly;
//   - branch targets belong to the same function;
//   - value operands are defined in the function (params, globals,
//     constants, or instructions of the same function);
//   - operand types are consistent with opcodes;
//   - the module has no two functions or globals with the same name.
//
// Verify returns an error describing the first few problems found.
func Verify(m *Module) error {
	var errs []error
	add := func(format string, args ...any) {
		if len(errs) < 20 {
			errs = append(errs, fmt.Errorf(format, args...))
		}
	}

	seenFn := map[string]bool{}
	for _, f := range m.Funcs {
		if seenFn[f.Name] {
			add("duplicate function @%s", f.Name)
		}
		seenFn[f.Name] = true
	}
	seenG := map[string]bool{}
	for _, g := range m.Globals {
		if seenG[g.Nm] {
			add("duplicate global @%s", g.Nm)
		}
		seenG[g.Nm] = true
		if g.Size < 1 {
			add("global @%s has non-positive size %d", g.Nm, g.Size)
		}
	}

	for _, f := range m.Funcs {
		verifyFunc(f, add)
	}
	return errors.Join(errs...)
}

func verifyFunc(f *Function, add func(string, ...any)) {
	if len(f.Blocks) == 0 {
		add("@%s: function has no blocks", f.Name)
		return
	}
	f.Renumber()

	inFunc := map[*Block]bool{}
	for _, b := range f.Blocks {
		inFunc[b] = true
	}
	defined := map[Value]bool{}
	for _, p := range f.Params {
		defined[p] = true
	}
	names := map[string]bool{}
	for _, b := range f.Blocks {
		for _, i := range b.Instrs {
			if i.Op.HasResult() && i.Ty.Kind() != KVoid {
				if names[i.Nm] {
					add("@%s: duplicate value name %%%s", f.Name, i.Nm)
				}
				names[i.Nm] = true
				defined[i] = true
			}
		}
	}

	preds := f.Preds()
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t == nil {
			add("@%s.%s: block lacks a terminator", f.Name, b.Name)
			continue
		}
		for k, i := range b.Instrs {
			if i.Op.IsTerminator() && k != len(b.Instrs)-1 {
				add("@%s.%s: terminator %s not at block end", f.Name, b.Name, i.Op)
			}
			if i.Op == OpPhi && k > b.FirstNonPhi() {
				add("@%s.%s: phi %%%s after non-phi instruction", f.Name, b.Name, i.Nm)
			}
			if i.Parent != b {
				add("@%s.%s: instruction %s has wrong parent", f.Name, b.Name, i.Op)
			}
			for _, tgt := range i.Blocks {
				if !inFunc[tgt] {
					add("@%s.%s: %s targets block outside function", f.Name, b.Name, i.Op)
				}
			}
			for _, a := range i.Args {
				switch a.(type) {
				case *IntConst, *FloatConst, *BoolConst, *NullConst, *Global:
				case *Param, *Instr:
					if !defined[a] {
						add("@%s.%s: operand %s of %s not defined in function", f.Name, b.Name, a.Name(), i.Op)
					}
				case nil:
					add("@%s.%s: nil operand of %s", f.Name, b.Name, i.Op)
				default:
					add("@%s.%s: unknown operand kind %T", f.Name, b.Name, a)
				}
			}
			verifyTypes(f, b, i, add)
		}
		// Phi incoming blocks must match predecessors exactly.
		for _, phi := range b.Phis() {
			if len(phi.Args) != len(phi.Blocks) {
				add("@%s.%s: phi %%%s has %d values but %d blocks", f.Name, b.Name, phi.Nm, len(phi.Args), len(phi.Blocks))
				continue
			}
			for _, p := range preds[b.Index] {
				if phi.PhiIncoming(p) == nil {
					add("@%s.%s: phi %%%s missing incoming for pred .%s", f.Name, b.Name, phi.Nm, p.Name)
				}
			}
			for _, in := range phi.Blocks {
				found := false
				for _, p := range preds[b.Index] {
					if p == in {
						found = true
						break
					}
				}
				if !found {
					add("@%s.%s: phi %%%s has incoming from non-pred .%s", f.Name, b.Name, phi.Nm, in.Name)
				}
			}
		}
	}
}

func verifyTypes(f *Function, b *Block, i *Instr, add func(string, ...any)) {
	at := func(k int) Type {
		if k < len(i.Args) && i.Args[k] != nil {
			return i.Args[k].Type()
		}
		return Void
	}
	want := func(n int) bool {
		if len(i.Args) != n {
			add("@%s.%s: %s wants %d operands, has %d", f.Name, b.Name, i.Op, n, len(i.Args))
			return false
		}
		return true
	}
	switch {
	case i.Op.IsBinaryArith():
		if !want(2) {
			return
		}
		isFloatOp := i.Op == OpFAdd || i.Op == OpFSub || i.Op == OpFMul || i.Op == OpFDiv
		wantK := KInt
		if isFloatOp {
			wantK = KFloat
		}
		if at(0).Kind() != wantK || at(1).Kind() != wantK {
			add("@%s.%s: %s operand kinds %s,%s (want %s)", f.Name, b.Name, i.Op, at(0), at(1), Type{Base: wantK})
		}
	case i.Op.IsCompare():
		if !want(2) {
			return
		}
		if at(0).Kind() != at(1).Kind() {
			add("@%s.%s: %s compares %s with %s", f.Name, b.Name, i.Op, at(0), at(1))
		}
		if i.Ty != Bool {
			add("@%s.%s: %s result is %s, want i1", f.Name, b.Name, i.Op, i.Ty)
		}
	case i.Op == OpLoad:
		if want(1) && !at(0).IsPtr() {
			add("@%s.%s: load address has type %s", f.Name, b.Name, at(0))
		}
	case i.Op == OpStore:
		if want(2) && !at(0).IsPtr() {
			add("@%s.%s: store address has type %s", f.Name, b.Name, at(0))
		}
	case i.Op == OpAddPtr:
		if want(2) {
			if !at(0).IsPtr() {
				add("@%s.%s: addptr base has type %s", f.Name, b.Name, at(0))
			}
			if at(1).Kind() != KInt {
				add("@%s.%s: addptr index has type %s", f.Name, b.Name, at(1))
			}
		}
	case i.Op == OpAlloca:
		if want(1) && at(0).Kind() != KInt {
			add("@%s.%s: alloca size has type %s", f.Name, b.Name, at(0))
		}
	case i.Op == OpBr:
		if want(1) && at(0) != Bool {
			add("@%s.%s: branch condition has type %s", f.Name, b.Name, at(0))
		}
		if len(i.Blocks) != 2 {
			add("@%s.%s: br wants 2 targets, has %d", f.Name, b.Name, len(i.Blocks))
		}
	case i.Op == OpJmp:
		if len(i.Blocks) != 1 {
			add("@%s.%s: jmp wants 1 target, has %d", f.Name, b.Name, len(i.Blocks))
		}
	case i.Op == OpRet:
		if f.Ret.Kind() == KVoid {
			if len(i.Args) != 0 {
				add("@%s.%s: ret with value in void function", f.Name, b.Name)
			}
		} else {
			if len(i.Args) != 1 || at(0).Kind() != f.Ret.Kind() {
				add("@%s.%s: ret value/type mismatch (fn returns %s)", f.Name, b.Name, f.Ret)
			}
		}
	case i.Op == OpCall:
		if i.Callee != nil {
			if len(i.Args) != len(i.Callee.Params) {
				add("@%s.%s: call @%s with %d args, want %d", f.Name, b.Name, i.Callee.Name, len(i.Args), len(i.Callee.Params))
			} else {
				for k, p := range i.Callee.Params {
					if at(k).Kind() != p.Ty.Kind() {
						add("@%s.%s: call @%s arg %d has type %s, want %s", f.Name, b.Name, i.Callee.Name, k, at(k), p.Ty)
					}
				}
			}
		} else if i.Builtin == "" {
			add("@%s.%s: call with neither callee nor builtin", f.Name, b.Name)
		}
	case i.Op == OpPhi:
		for k := range i.Args {
			if at(k).Kind() != i.Ty.Kind() {
				add("@%s.%s: phi %%%s incoming %d has type %s, want %s", f.Name, b.Name, i.Nm, k, at(k), i.Ty)
			}
		}
	}
}
