package analysis

import (
	"fmt"
	"sync"

	"loopapalooza/internal/ir"
)

// LoopMeta is the per-loop output of the compile-time component: everything
// the run-time limit study needs to know about one canonical loop.
type LoopMeta struct {
	// Loop is the canonical loop (preheader + unique latch).
	Loop *Loop
	// Seq is a stable per-module sequence number.
	Seq int
	// SCEV is the scalar-evolution classification of the header phis.
	SCEV *ScalarEvolution
	// Computable are header phis with an add-recurrence evolution
	// (IVs and MIVs): never a parallelization constraint.
	Computable []*ir.Instr
	// Reductions are recognized reduction recurrences among the
	// non-computable phis.
	Reductions []*Reduction
	// NonComputable are the remaining header phis: true register LCDs
	// that are neither computable nor reductions.
	NonComputable []*ir.Instr
	// Observed is NonComputable followed by the reduction phis: the
	// phis whose per-iteration values the run-time observes. The engine
	// selects the subset that constrains parallelism per configuration
	// (reduc0 adds the reduction phis to the constraint set).
	Observed []*ir.Instr
	// ObservedLatch are the latch incoming values of Observed, in the
	// same order: the per-iteration producers.
	ObservedLatch []ir.Value
	// HasCall reports whether any block of the loop contains a call.
	HasCall bool
	// HasNonPureCall reports whether the loop contains a call that is
	// not compiler-proven pure (constrains fn1).
	HasNonPureCall bool
	// HasUnsafeOrIOCall reports whether the loop contains a call that
	// transitively reaches I/O or non-re-entrant library state
	// (constrains fn2).
	HasUnsafeOrIOCall bool
}

// ID returns the loop's stable identifier.
func (lm *LoopMeta) ID() string { return lm.Loop.ID() }

// NumObservedNonComputable returns how many leading entries of Observed are
// plain non-computable LCDs (the rest are reduction phis).
func (lm *LoopMeta) NumObservedNonComputable() int { return len(lm.NonComputable) }

// FuncInfo is the analysis result for one function.
type FuncInfo struct {
	// Fn is the analyzed function.
	Fn *ir.Function
	// Dom is the dominator tree after canonicalization.
	Dom *DomTree
	// Forest is the loop forest after canonicalization.
	Forest *LoopForest
	// Metas are the loop metadata records, outer loops first.
	Metas []*LoopMeta
	// HeaderMeta maps a loop header block to its metadata.
	HeaderMeta map[*ir.Block]*LoopMeta
	// MetaByBlock is HeaderMeta as a dense slice indexed by Block.Index
	// (nil entries for non-header blocks): the interpreter's per-transfer
	// loop-event lookup without a map probe.
	MetaByBlock []*LoopMeta
}

// ModuleInfo is the full compile-time analysis of a module.
type ModuleInfo struct {
	// Mod is the analyzed (and canonicalized) module.
	Mod *ir.Module
	// Funcs maps each function to its analysis.
	Funcs map[*ir.Function]*FuncInfo
	// Purity is the module-wide call classification.
	Purity *Purity
	// Loops lists every loop meta in the module, in a stable order.
	Loops []*LoopMeta

	// Lowered memoizes the bytecode compilation of this module: the
	// bytecode engine lowers each function exactly once per ModuleInfo
	// (concurrent runs share the result through Once) and caches it here.
	// Prog's concrete type is owned by internal/bytecode; hosting the
	// slot on the analysis ties the lowering's lifetime to the analysis
	// it was derived from instead of leaking through a global map.
	Lowered struct {
		Once sync.Once
		Prog any
		Err  error
	}
}

// AnalyzeModule runs the full compile-time pipeline on m, mutating it:
// loop simplification (canonical preheaders/latches), SSA promotion
// (mem2reg), scalar evolution, reduction recognition, purity analysis, and
// per-loop call classification. The module must verify before and after.
func AnalyzeModule(m *ir.Module) (*ModuleInfo, error) {
	return analyzeModule(m, false)
}

// AnalyzeModuleStrict is AnalyzeModule with the verifier run after every
// individual pass, so a pass that breaks an IR invariant is named in the
// error instead of being discovered (or masked) passes later. It is the
// pipeline entry point of the metamorphic test suite and the fuzzing
// harness; production callers use AnalyzeModule, which verifies only at
// the pipeline boundaries.
func AnalyzeModuleStrict(m *ir.Module) (*ModuleInfo, error) {
	return analyzeModule(m, true)
}

func analyzeModule(m *ir.Module, strict bool) (*ModuleInfo, error) {
	if err := ir.Verify(m); err != nil {
		return nil, fmt.Errorf("analysis: input module invalid: %w", err)
	}
	check := func(pass string, f *ir.Function) error {
		if !strict {
			return nil
		}
		if err := ir.Verify(m); err != nil {
			return fmt.Errorf("analysis: module invalid after %s on %s: %w", pass, f.Name, err)
		}
		return nil
	}
	info := &ModuleInfo{Mod: m, Funcs: map[*ir.Function]*FuncInfo{}}
	for _, f := range m.Funcs {
		RemoveUnreachable(f)
		if err := check("unreachable-elimination", f); err != nil {
			return nil, err
		}
		Mem2Reg(f)
		if err := check("mem2reg", f); err != nil {
			return nil, err
		}
		DeadCodeElim(f)
		if err := check("dce", f); err != nil {
			return nil, err
		}
		dt, forest := LoopSimplify(f)
		if err := check("loop-simplify", f); err != nil {
			return nil, err
		}
		// mem2reg before simplify handles straight-line code;
		// a second promotion pass after loop canonicalization catches
		// slots whose loads/stores were rearranged by edge splitting.
		if Mem2Reg(f) > 0 {
			if err := check("mem2reg (second pass)", f); err != nil {
				return nil, err
			}
			DeadCodeElim(f)
			if err := check("dce (second pass)", f); err != nil {
				return nil, err
			}
			dt, forest = LoopSimplify(f)
			if err := check("loop-simplify (second pass)", f); err != nil {
				return nil, err
			}
		}
		info.Funcs[f] = &FuncInfo{Fn: f, Dom: dt, Forest: forest, HeaderMeta: map[*ir.Block]*LoopMeta{}}
	}
	info.Purity = AnalyzePurity(m)

	seq := 0
	for _, f := range m.Funcs {
		fi := info.Funcs[f]
		for _, l := range fi.Forest.All {
			lm := buildLoopMeta(l, info.Purity)
			lm.Seq = seq
			seq++
			fi.Metas = append(fi.Metas, lm)
			fi.HeaderMeta[l.Header] = lm
			info.Loops = append(info.Loops, lm)
		}
		f.Renumber()
		fi.MetaByBlock = make([]*LoopMeta, len(f.Blocks))
		for hdr, lm := range fi.HeaderMeta {
			fi.MetaByBlock[hdr.Index] = lm
		}
		// The IR is final: freeze the dense register numbering the
		// interpreter's flat frames index by.
		f.NumberValues()
	}
	if err := ir.Verify(m); err != nil {
		return nil, fmt.Errorf("analysis: module invalid after canonicalization: %w", err)
	}
	return info, nil
}

func buildLoopMeta(l *Loop, pur *Purity) *LoopMeta {
	lm := &LoopMeta{Loop: l}
	lm.SCEV = ComputeSCEV(l)
	lm.Computable = lm.SCEV.ComputablePhis()
	lm.Reductions = FindReductions(l, lm.SCEV)
	isRed := map[*ir.Instr]bool{}
	for _, r := range lm.Reductions {
		isRed[r.Phi] = true
	}
	for _, p := range lm.SCEV.NonComputablePhis() {
		if !isRed[p] {
			lm.NonComputable = append(lm.NonComputable, p)
		}
	}

	lm.Observed = append(lm.Observed, lm.NonComputable...)
	for _, r := range lm.Reductions {
		lm.Observed = append(lm.Observed, r.Phi)
	}
	if l.Latch != nil {
		for _, p := range lm.Observed {
			lm.ObservedLatch = append(lm.ObservedLatch, p.PhiIncoming(l.Latch))
		}
	}

	for _, b := range blocksInOrder(l) {
		for _, i := range b.Instrs {
			if i.Op != ir.OpCall {
				continue
			}
			lm.HasCall = true
			class := pur.ClassifyCall(i)
			if class != CallPure {
				lm.HasNonPureCall = true
			}
			switch class {
			case CallIO, CallUnsafe:
				lm.HasUnsafeOrIOCall = true
			case CallInstrumented:
				if i.Callee != nil && (pur.CallsUnsafe(i.Callee) || pur.DoesIO(i.Callee)) {
					lm.HasUnsafeOrIOCall = true
				}
			}
		}
	}
	return lm
}
