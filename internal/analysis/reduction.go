package analysis

import (
	"loopapalooza/internal/ir"
)

// ReductionKind identifies the operation of a recognized reduction.
type ReductionKind uint8

// Recognized reduction operations.
const (
	RedNone ReductionKind = iota
	RedAdd                // integer sum
	RedFAdd               // float sum
	RedMul                // integer product
	RedFMul               // float product
	RedAnd
	RedOr
	RedXor
	RedMin // via builtin min/fmin
	RedMax // via builtin max/fmax
)

var redNames = [...]string{
	RedNone: "none", RedAdd: "add", RedFAdd: "fadd", RedMul: "mul",
	RedFMul: "fmul", RedAnd: "and", RedOr: "or", RedXor: "xor",
	RedMin: "min", RedMax: "max",
}

// String returns the reduction mnemonic.
func (k ReductionKind) String() string { return redNames[k] }

// Reduction describes a recognized reduction recurrence rooted at a loop
// header phi: an exclusively accumulate-style update chain, as detected by
// LLVM's RecurrenceDescriptor (paper §II-A).
type Reduction struct {
	// Phi is the header phi carrying the accumulator.
	Phi *ir.Instr
	// Kind is the accumulate operation.
	Kind ReductionKind
	// Chain is the in-loop instruction chain from the phi to the latch
	// value, each applying the accumulate operation once.
	Chain []*ir.Instr
}

// reductionOp maps an instruction to its reduction kind, or RedNone.
func reductionOp(i *ir.Instr) ReductionKind {
	switch i.Op {
	case ir.OpAdd:
		return RedAdd
	case ir.OpFAdd:
		return RedFAdd
	case ir.OpMul:
		return RedMul
	case ir.OpFMul:
		return RedFMul
	case ir.OpAnd:
		return RedAnd
	case ir.OpOr:
		return RedOr
	case ir.OpXor:
		return RedXor
	case ir.OpCall:
		switch i.Builtin {
		case "min", "fmin":
			return RedMin
		case "max", "fmax":
			return RedMax
		}
	}
	return RedNone
}

// FindReductions recognizes reduction recurrences among the non-computable
// header phis of a canonical loop. A phi qualifies when:
//
//   - its latch incoming is reached from the phi through a chain of
//     instructions that all apply the same reduction operation;
//   - every link of the chain (including the phi) has exactly one use
//     inside the loop — the next link — so the running value never feeds
//     other computation and the reduction can be decoupled from the loop's
//     critical path (paper §II-A);
//   - the phi and the chain live entirely inside the loop.
func FindReductions(l *Loop, se *ScalarEvolution) []*Reduction {
	if l.Latch == nil || l.Preheader == nil {
		return nil
	}
	// Count in-loop uses of every value.
	uses := map[ir.Value]int{}
	userOf := map[ir.Value]*ir.Instr{}
	for b := range l.Blocks {
		for _, i := range b.Instrs {
			if i.Op == ir.OpPhi && b == l.Header {
				// The latch incoming of a header phi closes the
				// cycle; do not count it as a "use" that blocks
				// decoupling.
				continue
			}
			for _, a := range i.Args {
				uses[a]++
				userOf[a] = i
			}
		}
	}

	var out []*Reduction
	for _, phi := range se.NonComputablePhis() {
		if phi.Parent != l.Header {
			continue
		}
		r := matchReduction(l, phi, uses, userOf)
		if r != nil {
			out = append(out, r)
		}
	}
	return out
}

func matchReduction(l *Loop, phi *ir.Instr, uses map[ir.Value]int, userOf map[ir.Value]*ir.Instr) *Reduction {
	latchVal := phi.PhiIncoming(l.Latch)
	cur := ir.Value(phi)
	kind := RedNone
	var chain []*ir.Instr
	for cur != latchVal {
		if uses[cur] != 1 {
			return nil // value escapes into other in-loop computation
		}
		next := userOf[cur]
		if next == nil || !l.Contains(next.Parent) {
			return nil
		}
		k := reductionOp(next)
		if k == RedNone {
			return nil
		}
		if kind == RedNone {
			kind = k
		} else if kind != k {
			return nil // mixed operations: not a recognizable pattern
		}
		// The accumulator must be an operand; the other operand(s) must
		// not be the accumulator again (e.g. x = x + x doubles, which
		// is a computable recurrence anyway, but reject for safety).
		seen := 0
		for _, a := range next.Args {
			if a == cur {
				seen++
			}
		}
		if seen != 1 {
			return nil
		}
		chain = append(chain, next)
		cur = next
		if len(chain) > 64 {
			return nil // defensive bound
		}
	}
	if kind == RedNone || len(chain) == 0 {
		return nil
	}
	// The final link feeds only the phi's back edge (which is not counted
	// as a use); any other in-loop consumer means the running value
	// escapes and the reduction cannot be decoupled.
	if uses[latchVal] != 0 {
		return nil
	}
	return &Reduction{Phi: phi, Kind: kind, Chain: chain}
}
