package analysis

import (
	"loopapalooza/internal/ir"
)

// DeadCodeElim removes instructions whose results are never used and that
// have no side effects (everything except stores, calls, and terminators).
// It iterates to a fixed point, so cyclic groups of dead phis — the
// artifacts of non-pruned SSA construction — disappear, matching the effect
// of LLVM's -O pipeline after mem2reg. It returns the number of
// instructions removed.
func DeadCodeElim(f *ir.Function) int {
	// Mark-and-sweep: roots are side-effecting instructions; liveness
	// propagates through operands. Cyclic groups of dead phis are never
	// marked and are swept together.
	live := map[*ir.Instr]bool{}
	var work []*ir.Instr
	mark := func(v ir.Value) {
		if i, ok := v.(*ir.Instr); ok && !live[i] {
			live[i] = true
			work = append(work, i)
		}
	}
	for _, b := range f.Blocks {
		for _, i := range b.Instrs {
			switch i.Op {
			case ir.OpStore, ir.OpCall, ir.OpBr, ir.OpJmp, ir.OpRet:
				mark(i)
			}
		}
	}
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		for _, a := range i.Args {
			mark(a)
		}
	}
	removed := 0
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for _, i := range b.Instrs {
			if live[i] {
				kept = append(kept, i)
			} else {
				removed++
			}
		}
		b.Instrs = append([]*ir.Instr(nil), kept...)
	}
	return removed
}

// RemoveUnreachable deletes blocks not reachable from the entry and prunes
// phi incomings that referenced them. It returns the number of blocks
// removed. Run before SSA construction: unreachable code would otherwise
// keep references to promoted allocas alive.
func RemoveUnreachable(f *ir.Function) int {
	f.Renumber()
	reach := make([]bool, len(f.Blocks))
	stack := []*ir.Block{f.Entry()}
	reach[f.Entry().Index] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs() {
			if !reach[s.Index] {
				reach[s.Index] = true
				stack = append(stack, s)
			}
		}
	}
	removed := 0
	var kept []*ir.Block
	dead := map[*ir.Block]bool{}
	for _, b := range f.Blocks {
		if reach[b.Index] {
			kept = append(kept, b)
		} else {
			dead[b] = true
			removed++
		}
	}
	if removed == 0 {
		return 0
	}
	f.Blocks = kept
	f.Renumber()
	for _, b := range f.Blocks {
		for _, phi := range b.Phis() {
			var args []ir.Value
			var blocks []*ir.Block
			for k, in := range phi.Blocks {
				if !dead[in] {
					args = append(args, phi.Args[k])
					blocks = append(blocks, in)
				}
			}
			phi.Args, phi.Blocks = args, blocks
		}
	}
	return removed
}
