package analysis

import (
	"testing"

	"loopapalooza/internal/ir"
)

// sumLoop builds: for(i=0;i<n;i++) s += tab[i]  (a classic add reduction).
func sumLoop(t *testing.T, op ir.Op, twoLinks bool) (*Loop, *ScalarEvolution) {
	t.Helper()
	m := ir.NewModule("red")
	elem := ir.Int
	if op == ir.OpFAdd || op == ir.OpFMul {
		elem = ir.Float
	}
	g := m.AddGlobal("tab", elem, 64)
	f := m.AddFunction("f", ir.Int, &ir.Param{Nm: "n", Ty: ir.Int})
	bld := ir.NewBuilder(f)
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	bld.Jmp(head)
	bld.SetBlock(head)
	i := bld.Phi(ir.Int, "i")
	sTy := ir.Int
	if elem == ir.Float {
		sTy = ir.Float
	}
	s := bld.Phi(sTy, "s")
	cond := bld.Compare(ir.OpLt, i, f.Params[0])
	bld.Br(cond, body, exit)
	bld.SetBlock(body)
	v := bld.Load(bld.AddPtr(g, i))
	ns := bld.Binary(op, s, v)
	if twoLinks {
		v2 := bld.Load(bld.AddPtr(g, bld.Binary(ir.OpAdd, i, ir.ConstInt(1))))
		ns = bld.Binary(op, ns, v2)
	}
	ni := bld.Binary(ir.OpAdd, i, ir.ConstInt(1))
	bld.Jmp(head)
	i.SetPhiIncoming(f.Entry(), ir.ConstInt(0))
	i.SetPhiIncoming(body, ni)
	if elem == ir.Float {
		s.SetPhiIncoming(f.Entry(), ir.ConstFloat(0))
	} else {
		s.SetPhiIncoming(f.Entry(), ir.ConstInt(0))
	}
	s.SetPhiIncoming(body, ns)
	bld.SetBlock(exit)
	bld.Ret(i)
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	_, forest := LoopSimplify(f)
	l := forest.All[0]
	return l, ComputeSCEV(l)
}

func TestReductionAdd(t *testing.T) {
	l, se := sumLoop(t, ir.OpAdd, false)
	reds := FindReductions(l, se)
	if len(reds) != 1 {
		t.Fatalf("reductions = %d, want 1", len(reds))
	}
	if reds[0].Kind != RedAdd {
		t.Errorf("kind = %s, want add", reds[0].Kind)
	}
	if len(reds[0].Chain) != 1 {
		t.Errorf("chain length = %d, want 1", len(reds[0].Chain))
	}
}

func TestReductionFloatChain(t *testing.T) {
	l, se := sumLoop(t, ir.OpFAdd, true)
	reds := FindReductions(l, se)
	if len(reds) != 1 || reds[0].Kind != RedFAdd {
		t.Fatalf("reductions = %v", reds)
	}
	if len(reds[0].Chain) != 2 {
		t.Errorf("chain length = %d, want 2", len(reds[0].Chain))
	}
}

func TestReductionKinds(t *testing.T) {
	for _, op := range []ir.Op{ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpFMul} {
		l, se := sumLoop(t, op, false)
		reds := FindReductions(l, se)
		if len(reds) != 1 {
			t.Errorf("%s: reductions = %d, want 1", op, len(reds))
		}
	}
}

func TestReductionMinMaxBuiltin(t *testing.T) {
	m := ir.NewModule("mm")
	g := m.AddGlobal("tab", ir.Int, 64)
	f := m.AddFunction("f", ir.Int, &ir.Param{Nm: "n", Ty: ir.Int})
	bld := ir.NewBuilder(f)
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	bld.Jmp(head)
	bld.SetBlock(head)
	i := bld.Phi(ir.Int, "i")
	mx := bld.Phi(ir.Int, "mx")
	cond := bld.Compare(ir.OpLt, i, f.Params[0])
	bld.Br(cond, body, exit)
	bld.SetBlock(body)
	v := bld.Load(bld.AddPtr(g, i))
	nmx := bld.CallBuiltin("max", ir.Int, mx, v)
	ni := bld.Binary(ir.OpAdd, i, ir.ConstInt(1))
	bld.Jmp(head)
	i.SetPhiIncoming(f.Entry(), ir.ConstInt(0))
	i.SetPhiIncoming(body, ni)
	mx.SetPhiIncoming(f.Entry(), ir.ConstInt(-1))
	mx.SetPhiIncoming(body, nmx)
	bld.SetBlock(exit)
	bld.Ret(mx)
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	_, forest := LoopSimplify(f)
	l := forest.All[0]
	reds := FindReductions(l, ComputeSCEV(l))
	if len(reds) != 1 || reds[0].Kind != RedMax {
		t.Fatalf("reductions = %v, want one max", reds)
	}
}

// TestReductionRejectedWhenValueEscapes: s is also used by other in-loop
// computation, so the accumulator cannot be decoupled.
func TestReductionRejectedWhenValueEscapes(t *testing.T) {
	m := ir.NewModule("escr")
	g := m.AddGlobal("tab", ir.Int, 64)
	f := m.AddFunction("f", ir.Int, &ir.Param{Nm: "n", Ty: ir.Int})
	bld := ir.NewBuilder(f)
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	bld.Jmp(head)
	bld.SetBlock(head)
	i := bld.Phi(ir.Int, "i")
	s := bld.Phi(ir.Int, "s")
	cond := bld.Compare(ir.OpLt, i, f.Params[0])
	bld.Br(cond, body, exit)
	bld.SetBlock(body)
	v := bld.Load(bld.AddPtr(g, i))
	ns := bld.Binary(ir.OpAdd, s, v)
	// Escape: the running sum feeds a store each iteration.
	bld.Store(bld.AddPtr(g, i), ns)
	ni := bld.Binary(ir.OpAdd, i, ir.ConstInt(1))
	bld.Jmp(head)
	i.SetPhiIncoming(f.Entry(), ir.ConstInt(0))
	i.SetPhiIncoming(body, ni)
	s.SetPhiIncoming(f.Entry(), ir.ConstInt(0))
	s.SetPhiIncoming(body, ns)
	bld.SetBlock(exit)
	bld.Ret(s)
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	_, forest := LoopSimplify(f)
	l := forest.All[0]
	reds := FindReductions(l, ComputeSCEV(l))
	if len(reds) != 0 {
		t.Fatalf("reductions = %d, want 0 (value escapes)", len(reds))
	}
}

// TestReductionRejectsMixedOps: s = (s + v) * w is not a single-op pattern.
func TestReductionRejectsMixedOps(t *testing.T) {
	m := ir.NewModule("mix")
	g := m.AddGlobal("tab", ir.Int, 64)
	f := m.AddFunction("f", ir.Int, &ir.Param{Nm: "n", Ty: ir.Int})
	bld := ir.NewBuilder(f)
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	bld.Jmp(head)
	bld.SetBlock(head)
	i := bld.Phi(ir.Int, "i")
	s := bld.Phi(ir.Int, "s")
	cond := bld.Compare(ir.OpLt, i, f.Params[0])
	bld.Br(cond, body, exit)
	bld.SetBlock(body)
	v := bld.Load(bld.AddPtr(g, i))
	t1 := bld.Binary(ir.OpAdd, s, v)
	ns := bld.Binary(ir.OpMul, t1, ir.ConstInt(3))
	ni := bld.Binary(ir.OpAdd, i, ir.ConstInt(1))
	bld.Jmp(head)
	i.SetPhiIncoming(f.Entry(), ir.ConstInt(0))
	i.SetPhiIncoming(body, ni)
	s.SetPhiIncoming(f.Entry(), ir.ConstInt(0))
	s.SetPhiIncoming(body, ns)
	bld.SetBlock(exit)
	bld.Ret(s)
	_, forest := LoopSimplify(f)
	l := forest.All[0]
	reds := FindReductions(l, ComputeSCEV(l))
	if len(reds) != 0 {
		t.Fatalf("reductions = %d, want 0 (mixed ops)", len(reds))
	}
}
