package analysis

import (
	"loopapalooza/internal/ir"
)

// Mem2Reg promotes single-cell stack allocations whose address never escapes
// into SSA values, inserting phi nodes at iterated dominance frontiers
// (Cytron et al.). This mirrors LLVM's mem2reg and is what turns the front
// end's variable slots into the register loop-carried dependencies the limit
// study classifies.
//
// It returns the number of allocas promoted.
func Mem2Reg(f *ir.Function) int {
	dt := BuildDomTree(f)
	promotable := collectPromotable(f, dt)
	if len(promotable) == 0 {
		return 0
	}

	df := dt.Frontiers()

	// Insert phis at the iterated dominance frontier of the stores.
	phiFor := map[*ir.Instr]*ir.Instr{} // phi -> alloca
	for _, a := range promotable {
		elem := a.Ty.Elem()
		defBlocks := map[*ir.Block]bool{}
		for _, b := range f.Blocks {
			for _, i := range b.Instrs {
				if i.Op == ir.OpStore && i.Args[0] == a {
					defBlocks[b] = true
				}
			}
		}
		work := make([]*ir.Block, 0, len(defBlocks))
		for b := range defBlocks {
			work = append(work, b)
		}
		hasPhi := map[*ir.Block]bool{}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, fb := range df[b.Index] {
				if hasPhi[fb] {
					continue
				}
				hasPhi[fb] = true
				phi := &ir.Instr{Op: ir.OpPhi, Ty: elem, Nm: f.NextName(a.Nm + ".phi")}
				fb.InsertBefore(fb.FirstNonPhi(), phi)
				phi.Parent = fb
				phiFor[phi] = a
				if !defBlocks[fb] {
					defBlocks[fb] = true
					work = append(work, fb)
				}
			}
		}
	}

	// Rename along the dominator tree.
	cur := map[*ir.Instr][]ir.Value{} // alloca -> value stack
	zero := func(a *ir.Instr) ir.Value {
		switch a.Ty.Elem().Kind() {
		case ir.KFloat:
			return ir.ConstFloat(0)
		case ir.KBool:
			return ir.ConstBool(false)
		case ir.KPtr:
			return ir.ConstNull(a.Ty.Elem())
		default:
			return ir.ConstInt(0)
		}
	}
	top := func(a *ir.Instr) ir.Value {
		s := cur[a]
		if len(s) == 0 {
			return zero(a)
		}
		return s[len(s)-1]
	}
	isPromoted := map[ir.Value]bool{}
	for _, a := range promotable {
		isPromoted[a] = true
	}

	var rename func(b *ir.Block)
	rename = func(b *ir.Block) {
		pushed := map[*ir.Instr]int{}
		kept := b.Instrs[:0]
		for _, i := range b.Instrs {
			switch {
			case i.Op == ir.OpPhi && phiFor[i] != nil:
				a := phiFor[i]
				cur[a] = append(cur[a], i)
				pushed[a]++
				kept = append(kept, i)
			case i.Op == ir.OpAlloca && isPromoted[i]:
				// drop
			case i.Op == ir.OpLoad && isPromoted[i.Args[0]]:
				a := i.Args[0].(*ir.Instr)
				ir.ReplaceUses(f, i, top(a))
			case i.Op == ir.OpStore && isPromoted[i.Args[0]]:
				a := i.Args[0].(*ir.Instr)
				cur[a] = append(cur[a], i.Args[1])
				pushed[a]++
			default:
				kept = append(kept, i)
			}
		}
		b.Instrs = append([]*ir.Instr(nil), kept...)

		// Fill phi incomings of successors.
		for _, s := range b.Succs() {
			for _, phi := range s.Phis() {
				if a := phiFor[phi]; a != nil {
					phi.SetPhiIncoming(b, top(a))
				}
			}
		}
		for _, c := range dt.Children(b) {
			rename(c)
		}
		for a, n := range pushed {
			cur[a] = cur[a][:len(cur[a])-n]
		}
	}
	rename(f.Entry())

	// A load that was replaced by another load's value chain can leave
	// phis with self-references only; leave cleanup to SimplifyPhis.
	SimplifyPhis(f)
	return len(promotable)
}

// collectPromotable returns allocas of constant size 1 whose only uses are
// direct loads and stores of the slot (the address never escapes).
func collectPromotable(f *ir.Function, dt *DomTree) []*ir.Instr {
	var allocas []*ir.Instr
	bad := map[*ir.Instr]bool{}
	for _, b := range f.Blocks {
		if !dt.Reachable(b) {
			continue
		}
		for _, i := range b.Instrs {
			if i.Op == ir.OpAlloca {
				if n, ok := ir.ConstIntValue(i.Args[0]); ok && n == 1 && b == f.Entry() {
					allocas = append(allocas, i)
				} else {
					bad[i] = true
				}
			}
		}
	}
	for _, b := range f.Blocks {
		for _, i := range b.Instrs {
			for k, arg := range i.Args {
				a, ok := arg.(*ir.Instr)
				if !ok || a.Op != ir.OpAlloca {
					continue
				}
				switch {
				case i.Op == ir.OpLoad && k == 0:
				case i.Op == ir.OpStore && k == 0:
				default:
					bad[a] = true // address escapes
				}
			}
		}
	}
	var out []*ir.Instr
	for _, a := range allocas {
		if !bad[a] {
			out = append(out, a)
		}
	}
	return out
}

// SimplifyPhis removes trivial phis: a phi whose incoming values are all
// equal (or equal to the phi itself) is replaced by that value. It iterates
// to a fixed point and returns the number of phis removed.
func SimplifyPhis(f *ir.Function) int {
	removed := 0
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			for idx := 0; idx < len(b.Instrs); idx++ {
				i := b.Instrs[idx]
				if i.Op != ir.OpPhi {
					break
				}
				var uniq ir.Value
				trivial := true
				for _, a := range i.Args {
					if a == i {
						continue
					}
					if uniq == nil {
						uniq = a
					} else if !sameValue(uniq, a) {
						trivial = false
						break
					}
				}
				if trivial && uniq != nil {
					ir.ReplaceUses(f, i, uniq)
					b.RemoveAt(idx)
					idx--
					removed++
					changed = true
				}
			}
		}
	}
	return removed
}

func sameValue(a, b ir.Value) bool {
	if a == b {
		return true
	}
	if x, ok := ir.ConstIntValue(a); ok {
		if y, ok2 := ir.ConstIntValue(b); ok2 {
			return x == y
		}
	}
	if x, ok := a.(*ir.FloatConst); ok {
		if y, ok2 := b.(*ir.FloatConst); ok2 {
			return x.V == y.V
		}
	}
	if x, ok := a.(*ir.BoolConst); ok {
		if y, ok2 := b.(*ir.BoolConst); ok2 {
			return x.V == y.V
		}
	}
	if x, ok := a.(*ir.NullConst); ok {
		if y, ok2 := b.(*ir.NullConst); ok2 {
			return x.Ty == y.Ty
		}
	}
	return false
}
