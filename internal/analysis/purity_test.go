package analysis

import (
	"testing"

	"loopapalooza/internal/ir"
)

func TestPurityClasses(t *testing.T) {
	m := ir.NewModule("pur")
	g := m.AddGlobal("state", ir.Int, 1)

	// pureFn: arithmetic only.
	pureFn := m.AddFunction("pure_fn", ir.Int, &ir.Param{Nm: "x", Ty: ir.Int})
	b1 := ir.NewBuilder(pureFn)
	b1.Ret(b1.Binary(ir.OpAdd, pureFn.Params[0], ir.ConstInt(1)))

	// localStore: writes only its own alloca'd scratch: still pure.
	localStore := m.AddFunction("local_store", ir.Int)
	b2 := ir.NewBuilder(localStore)
	buf := b2.Alloca(ir.Int, ir.ConstInt(4), "buf")
	b2.Store(b2.AddPtr(buf, ir.ConstInt(2)), ir.ConstInt(7))
	b2.Ret(b2.Load(b2.AddPtr(buf, ir.ConstInt(2))))

	// globalStore: writes a global: impure but instrumented.
	globalStore := m.AddFunction("global_store", ir.Void)
	b3 := ir.NewBuilder(globalStore)
	b3.Store(g, ir.ConstInt(1))
	b3.Ret(nil)

	// printer: I/O.
	printer := m.AddFunction("printer", ir.Void)
	b4 := ir.NewBuilder(printer)
	b4.CallBuiltin("print_i64", ir.Void, ir.ConstInt(42))
	b4.Ret(nil)

	// roller: calls rand (non-re-entrant library state).
	roller := m.AddFunction("roller", ir.Int)
	b5 := ir.NewBuilder(roller)
	b5.Ret(b5.CallBuiltin("rand", ir.Int))

	// indirectPrinter: calls printer, inherits I/O transitively.
	indirect := m.AddFunction("indirect", ir.Void)
	b6 := ir.NewBuilder(indirect)
	b6.Call(printer)
	b6.Ret(nil)

	// callsPure: calls only pure functions, remains pure.
	callsPure := m.AddFunction("calls_pure", ir.Int)
	b7 := ir.NewBuilder(callsPure)
	b7.Ret(b7.Call(pureFn, ir.ConstInt(2)))

	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	p := AnalyzePurity(m)

	cases := []struct {
		fn     *ir.Function
		pure   bool
		io     bool
		unsafe bool
	}{
		{pureFn, true, false, false},
		{localStore, true, false, false},
		{globalStore, false, false, false},
		{printer, false, true, false},
		{roller, false, false, true},
		{indirect, false, true, false},
		{callsPure, true, false, false},
	}
	for _, c := range cases {
		if p.Pure(c.fn) != c.pure {
			t.Errorf("Pure(%s) = %v, want %v", c.fn.Name, p.Pure(c.fn), c.pure)
		}
		if p.DoesIO(c.fn) != c.io {
			t.Errorf("DoesIO(%s) = %v, want %v", c.fn.Name, p.DoesIO(c.fn), c.io)
		}
		if p.CallsUnsafe(c.fn) != c.unsafe {
			t.Errorf("CallsUnsafe(%s) = %v, want %v", c.fn.Name, p.CallsUnsafe(c.fn), c.unsafe)
		}
	}
}

func TestPurityRecursionOptimistic(t *testing.T) {
	m := ir.NewModule("rec")
	// Mutually recursive pure functions must stay pure.
	a := m.AddFunction("a", ir.Int, &ir.Param{Nm: "x", Ty: ir.Int})
	b := m.AddFunction("b", ir.Int, &ir.Param{Nm: "x", Ty: ir.Int})

	ba := ir.NewBuilder(a)
	done := a.NewBlock("done")
	rec := a.NewBlock("rec")
	cond := ba.Compare(ir.OpLe, a.Params[0], ir.ConstInt(0))
	ba.Br(cond, done, rec)
	ba.SetBlock(done)
	ba.Ret(ir.ConstInt(0))
	ba.SetBlock(rec)
	ba.Ret(ba.Call(b, ba.Binary(ir.OpSub, a.Params[0], ir.ConstInt(1))))

	bb := ir.NewBuilder(b)
	bb.Ret(bb.Call(a, b.Params[0]))

	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	p := AnalyzePurity(m)
	if !p.Pure(a) || !p.Pure(b) {
		t.Error("mutually recursive arithmetic functions should be pure")
	}
}

func TestClassifyCall(t *testing.T) {
	m := ir.NewModule("cc")
	pure := m.AddFunction("p", ir.Int)
	ir.NewBuilder(pure).Ret(ir.ConstInt(1))
	impure := m.AddFunction("imp", ir.Void)
	bi := ir.NewBuilder(impure)
	g := m.AddGlobal("g", ir.Int, 1)
	bi.Store(g, ir.ConstInt(1))
	bi.Ret(nil)

	caller := m.AddFunction("caller", ir.Void)
	bc := ir.NewBuilder(caller)
	c1 := bc.Call(pure)
	_ = c1
	c2 := bc.Call(impure)
	c3 := bc.CallBuiltin("sqrt", ir.Float, ir.ConstFloat(2))
	c4 := bc.CallBuiltin("alloc", ir.PtrTo(ir.Int), ir.ConstInt(8))
	c5 := bc.CallBuiltin("rand", ir.Int)
	c6 := bc.CallBuiltin("print_i64", ir.Void, ir.ConstInt(1))
	bc.Ret(nil)
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	p := AnalyzePurity(m)

	find := func(i *ir.Instr) CallClass { return p.ClassifyCall(i) }
	calls := caller.Entry().Instrs
	if got := find(calls[0]); got != CallPure {
		t.Errorf("pure user call = %s", got)
	}
	if got := find(c2); got != CallInstrumented {
		t.Errorf("impure user call = %s, want instrumented", got)
	}
	if got := find(c3); got != CallPure {
		t.Errorf("sqrt = %s, want pure", got)
	}
	if got := find(c4); got != CallThreadSafe {
		t.Errorf("alloc = %s, want thread-safe", got)
	}
	if got := find(c5); got != CallUnsafe {
		t.Errorf("rand = %s, want unsafe", got)
	}
	if got := find(c6); got != CallIO {
		t.Errorf("print = %s, want io", got)
	}
}
