package analysis

import (
	"loopapalooza/internal/ir"
)

// CallClass is the fn-level classification of a callable, per Table II.
type CallClass uint8

// Call classes, ordered from most to least restrictive.
const (
	// CallPure: read-only with no side effects (fn1 admits these).
	CallPure CallClass = iota
	// CallInstrumented: a user function compiled by this framework; its
	// memory accesses are tracked and attributed to the calling
	// iteration (fn2 admits these).
	CallInstrumented
	// CallThreadSafe: a re-entrant library (builtin) function without
	// observable ordering requirements (fn2 admits these).
	CallThreadSafe
	// CallUnsafe: stateful, non-re-entrant library code (only fn3
	// admits these).
	CallUnsafe
	// CallIO: observable output; strictly sequential (only fn3 admits
	// these).
	CallIO
)

var callClassNames = [...]string{
	CallPure: "pure", CallInstrumented: "instrumented",
	CallThreadSafe: "thread-safe", CallUnsafe: "unsafe", CallIO: "io",
}

// String returns the class mnemonic.
func (c CallClass) String() string { return callClassNames[c] }

// Purity is the module-wide function purity and call classification
// analysis backing the fn0..fn3 configurations.
type Purity struct {
	mod *ir.Module
	// pure[f] reports whether user function f is pure: it performs no
	// stores outside its own stack frame, no impure builtin calls, and
	// calls only pure functions.
	pure map[*ir.Function]bool
	// io[f] reports whether f transitively performs I/O.
	io map[*ir.Function]bool
	// unsafe[f] reports whether f transitively calls a builtin that is
	// neither pure nor re-entrant (hidden library state, e.g. rand).
	unsafe map[*ir.Function]bool
}

// AnalyzePurity computes purity for every function of m with an optimistic
// fixed point (recursive cycles start pure and are demoted on evidence).
func AnalyzePurity(m *ir.Module) *Purity {
	p := &Purity{
		mod:    m,
		pure:   map[*ir.Function]bool{},
		io:     map[*ir.Function]bool{},
		unsafe: map[*ir.Function]bool{},
	}
	for _, f := range m.Funcs {
		p.pure[f] = true
	}
	for changed := true; changed; {
		changed = false
		for _, f := range m.Funcs {
			if p.pure[f] && !p.funcLooksPure(f) {
				p.pure[f] = false
				changed = true
			}
			if !p.io[f] && p.funcDoesIO(f) {
				p.io[f] = true
				changed = true
			}
			if !p.unsafe[f] && p.funcCallsUnsafe(f) {
				p.unsafe[f] = true
				changed = true
			}
		}
	}
	return p
}

func (p *Purity) funcCallsUnsafe(f *ir.Function) bool {
	for _, b := range f.Blocks {
		for _, i := range b.Instrs {
			if i.Op != ir.OpCall {
				continue
			}
			if i.Callee != nil {
				if p.unsafe[i.Callee] {
					return true
				}
			} else if bi, ok := ir.BuiltinAttr(i.Builtin); !ok || (!bi.Pure && !bi.ThreadSafe && !bi.IO) {
				return true
			}
		}
	}
	return false
}

// CallsUnsafe reports whether f transitively calls a non-re-entrant builtin.
func (p *Purity) CallsUnsafe(f *ir.Function) bool { return p.unsafe[f] }

// funcLooksPure checks f's body against the current pure set.
func (p *Purity) funcLooksPure(f *ir.Function) bool {
	local := localAllocas(f)
	for _, b := range f.Blocks {
		for _, i := range b.Instrs {
			switch i.Op {
			case ir.OpStore:
				if !addressIsLocal(i.Args[0], local) {
					return false
				}
			case ir.OpCall:
				if i.Callee != nil {
					if !p.pure[i.Callee] {
						return false
					}
				} else {
					bi, ok := ir.BuiltinAttr(i.Builtin)
					if !ok || !bi.Pure {
						return false
					}
				}
			}
		}
	}
	return true
}

func (p *Purity) funcDoesIO(f *ir.Function) bool {
	for _, b := range f.Blocks {
		for _, i := range b.Instrs {
			if i.Op != ir.OpCall {
				continue
			}
			if i.Callee != nil {
				if p.io[i.Callee] {
					return true
				}
			} else if bi, ok := ir.BuiltinAttr(i.Builtin); ok && bi.IO {
				return true
			}
		}
	}
	return false
}

// localAllocas collects the alloca instructions of f.
func localAllocas(f *ir.Function) map[*ir.Instr]bool {
	out := map[*ir.Instr]bool{}
	for _, b := range f.Blocks {
		for _, i := range b.Instrs {
			if i.Op == ir.OpAlloca {
				out[i] = true
			}
		}
	}
	return out
}

// addressIsLocal reports whether addr provably derives from one of f's own
// allocas through pointer arithmetic only. Anything else (globals, params,
// loaded pointers, allocation builtins) is treated as escaping.
func addressIsLocal(addr ir.Value, local map[*ir.Instr]bool) bool {
	for depth := 0; depth < 64; depth++ {
		i, ok := addr.(*ir.Instr)
		if !ok {
			return false
		}
		if local[i] {
			return true
		}
		if i.Op == ir.OpAddPtr {
			addr = i.Args[0]
			continue
		}
		return false
	}
	return false
}

// Pure reports whether user function f is pure (fn1 class).
func (p *Purity) Pure(f *ir.Function) bool { return p.pure[f] }

// DoesIO reports whether f transitively performs I/O.
func (p *Purity) DoesIO(f *ir.Function) bool { return p.io[f] }

// ClassifyCall classifies one call instruction for the fn0..fn3 policy.
func (p *Purity) ClassifyCall(call *ir.Instr) CallClass {
	if call.Callee != nil {
		f := call.Callee
		switch {
		case p.io[f]:
			return CallIO
		case p.pure[f]:
			return CallPure
		default:
			return CallInstrumented
		}
	}
	bi, ok := ir.BuiltinAttr(call.Builtin)
	switch {
	case !ok:
		return CallUnsafe
	case bi.IO:
		return CallIO
	case bi.Pure:
		return CallPure
	case bi.ThreadSafe:
		return CallThreadSafe
	default:
		return CallUnsafe
	}
}
