package analysis

import (
	"testing"

	"loopapalooza/internal/ir"
)

// nestedLoops builds a doubly nested counted loop with allocas (pre-SSA):
//
//	for (i = 0; i < n; i++) { for (j = 0; j < n; j++) { s += j } }
func nestedLoops(t *testing.T) (*ir.Module, *ir.Function) {
	t.Helper()
	m := ir.NewModule("nest")
	f := m.AddFunction("f", ir.Int, &ir.Param{Nm: "n", Ty: ir.Int})
	bld := ir.NewBuilder(f)

	i := bld.Alloca(ir.Int, ir.ConstInt(1), "i")
	j := bld.Alloca(ir.Int, ir.ConstInt(1), "j")
	s := bld.Alloca(ir.Int, ir.ConstInt(1), "s")
	bld.Store(i, ir.ConstInt(0))
	bld.Store(s, ir.ConstInt(0))

	oHead := f.NewBlock("ohead")
	oBody := f.NewBlock("obody")
	iHead := f.NewBlock("ihead")
	iBody := f.NewBlock("ibody")
	oLatch := f.NewBlock("olatch")
	exit := f.NewBlock("exit")

	bld.Jmp(oHead)
	bld.SetBlock(oHead)
	iv := bld.Load(i)
	c := bld.Compare(ir.OpLt, iv, f.Params[0])
	bld.Br(c, oBody, exit)

	bld.SetBlock(oBody)
	bld.Store(j, ir.ConstInt(0))
	bld.Jmp(iHead)

	bld.SetBlock(iHead)
	jv := bld.Load(j)
	c2 := bld.Compare(ir.OpLt, jv, f.Params[0])
	bld.Br(c2, iBody, oLatch)

	bld.SetBlock(iBody)
	sv := bld.Load(s)
	jv2 := bld.Load(j)
	bld.Store(s, bld.Binary(ir.OpAdd, sv, jv2))
	bld.Store(j, bld.Binary(ir.OpAdd, jv2, ir.ConstInt(1)))
	bld.Jmp(iHead)

	bld.SetBlock(oLatch)
	iv2 := bld.Load(i)
	bld.Store(i, bld.Binary(ir.OpAdd, iv2, ir.ConstInt(1)))
	bld.Jmp(oHead)

	bld.SetBlock(exit)
	bld.Ret(bld.Load(s))

	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	return m, f
}

func TestFindLoopsNested(t *testing.T) {
	_, f := nestedLoops(t)
	dt := BuildDomTree(f)
	forest := FindLoops(f, dt)
	if len(forest.All) != 2 {
		t.Fatalf("found %d loops, want 2", len(forest.All))
	}
	outer := forest.Top[0]
	if len(forest.Top) != 1 || len(outer.Children) != 1 {
		t.Fatalf("nesting wrong: top=%d children=%d", len(forest.Top), len(outer.Children))
	}
	inner := outer.Children[0]
	if outer.Depth != 1 || inner.Depth != 2 {
		t.Errorf("depths = %d,%d want 1,2", outer.Depth, inner.Depth)
	}
	if outer.Header.Name != "ohead" || inner.Header.Name != "ihead" {
		t.Errorf("headers = %s,%s", outer.Header.Name, inner.Header.Name)
	}
	if !outer.Contains(inner.Header) || inner.Contains(outer.Header) {
		t.Error("containment wrong")
	}
}

func TestLoopSimplifyCanonicalizes(t *testing.T) {
	_, f := nestedLoops(t)
	_, forest := LoopSimplify(f)
	for _, l := range forest.All {
		if l.Preheader == nil {
			t.Errorf("loop %s lacks preheader", l.ID())
		}
		if l.Latch == nil {
			t.Errorf("loop %s lacks unique latch", l.ID())
		}
	}
	if err := ir.Verify(f.Module); err != nil {
		t.Fatalf("module invalid after simplify: %v\n%s", err, f)
	}
}

// TestLoopSimplifyMultiLatch exercises latch merging: a loop with two back
// edges (continue-style) must get a single merged latch, with phis fixed.
func TestLoopSimplifyMultiLatch(t *testing.T) {
	m := ir.NewModule("ml")
	f := m.AddFunction("f", ir.Int, &ir.Param{Nm: "n", Ty: ir.Int}, &ir.Param{Nm: "c", Ty: ir.Bool})
	bld := ir.NewBuilder(f)
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	alt := f.NewBlock("alt")
	exit := f.NewBlock("exit")
	bld.Jmp(head)

	bld.SetBlock(head)
	phi := bld.Phi(ir.Int, "i")
	cond := bld.Compare(ir.OpLt, phi, f.Params[0])
	bld.Br(cond, body, exit)

	bld.SetBlock(body)
	inc1 := bld.Binary(ir.OpAdd, phi, ir.ConstInt(1))
	bld.Br(f.Params[1], head, alt) // back edge 1

	bld.SetBlock(alt)
	inc2 := bld.Binary(ir.OpAdd, phi, ir.ConstInt(2))
	bld.Jmp(head) // back edge 2

	phi.SetPhiIncoming(f.Entry(), ir.ConstInt(0))
	phi.SetPhiIncoming(body, inc1)
	phi.SetPhiIncoming(alt, inc2)

	bld.SetBlock(exit)
	bld.Ret(phi)
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}

	_, forest := LoopSimplify(f)
	if err := ir.Verify(m); err != nil {
		t.Fatalf("invalid after simplify: %v\n%s", err, f)
	}
	if len(forest.All) != 1 {
		t.Fatalf("loops = %d, want 1", len(forest.All))
	}
	l := forest.All[0]
	if l.Latch == nil || l.Preheader == nil {
		t.Fatalf("loop not canonical: latch=%v preheader=%v", l.Latch, l.Preheader)
	}
	// The merged latch must carry a phi merging inc1/inc2, and the header
	// phi must now have exactly two incomings (preheader + latch).
	if got := len(l.Header.Phis()[0].Blocks); got != 2 {
		t.Errorf("header phi has %d incomings, want 2", got)
	}
	if got := len(l.Latch.Phis()); got != 1 {
		t.Errorf("latch has %d phis, want 1 (merged)", got)
	}
}

func TestLoopExits(t *testing.T) {
	_, f := nestedLoops(t)
	_, forest := LoopSimplify(f)
	for _, l := range forest.All {
		exits := l.Exits()
		if len(exits) != 1 {
			t.Errorf("loop %s exits = %d, want 1", l.ID(), len(exits))
		}
		for _, e := range exits {
			if l.Contains(e) {
				t.Errorf("exit %s inside loop", e.Name)
			}
		}
	}
}

func TestLoopOf(t *testing.T) {
	_, f := nestedLoops(t)
	dt, forest := LoopSimplify(f)
	_ = dt
	inner := forest.Top[0].Children[0]
	if got := forest.LoopOf(inner.Header); got != inner {
		t.Errorf("LoopOf(inner header) = %v, want inner", got)
	}
	if got := forest.LoopOf(f.Entry()); got != nil {
		t.Errorf("LoopOf(entry) = %v, want nil", got)
	}
}
