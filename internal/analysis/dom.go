// Package analysis implements the compile-time component of Loopapalooza:
// the CFG analyses (dominators, natural loops), the canonicalization passes
// (loop simplification, SSA promotion), and the dependence-classification
// analyses (scalar evolution, reduction recognition, function purity) that
// the paper obtains from LLVM's loopsimplify, indvars, SCEV and
// induction-variable-users passes.
package analysis

import (
	"loopapalooza/internal/ir"
)

// DomTree is a dominator tree of a function's CFG, built with the
// Cooper-Harvey-Kennedy iterative algorithm. Blocks unreachable from the
// entry have Idom == nil and are excluded from dominance queries.
type DomTree struct {
	fn *ir.Function
	// idom[i] is the immediate dominator of block with Index i
	// (nil for the entry and for unreachable blocks).
	idom []*ir.Block
	// children[i] are the blocks immediately dominated by block i.
	children [][]*ir.Block
	// rpo is the reverse post-order of reachable blocks.
	rpo []*ir.Block
	// rpoNum[i] is the position of block i in rpo (-1 if unreachable).
	rpoNum []int
	preds  [][]*ir.Block
}

// BuildDomTree computes the dominator tree of f. It renumbers f's blocks.
func BuildDomTree(f *ir.Function) *DomTree {
	f.Renumber()
	n := len(f.Blocks)
	t := &DomTree{
		fn:       f,
		idom:     make([]*ir.Block, n),
		children: make([][]*ir.Block, n),
		rpoNum:   make([]int, n),
		preds:    f.Preds(),
	}
	for i := range t.rpoNum {
		t.rpoNum[i] = -1
	}

	// Depth-first post-order from the entry.
	visited := make([]bool, n)
	var post []*ir.Block
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		visited[b.Index] = true
		for _, s := range b.Succs() {
			if !visited[s.Index] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(f.Entry())
	for i := len(post) - 1; i >= 0; i-- {
		t.rpoNum[post[i].Index] = len(t.rpo)
		t.rpo = append(t.rpo, post[i])
	}

	// Cooper-Harvey-Kennedy iteration.
	entry := f.Entry()
	t.idom[entry.Index] = entry // temporary self-idom sentinel
	for changed := true; changed; {
		changed = false
		for _, b := range t.rpo[1:] {
			var newIdom *ir.Block
			for _, p := range t.preds[b.Index] {
				if t.rpoNum[p.Index] < 0 || t.idom[p.Index] == nil {
					continue // unreachable or unprocessed
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = t.intersect(p, newIdom)
				}
			}
			if newIdom != nil && t.idom[b.Index] != newIdom {
				t.idom[b.Index] = newIdom
				changed = true
			}
		}
	}
	t.idom[entry.Index] = nil
	for _, b := range t.rpo {
		if d := t.idom[b.Index]; d != nil {
			t.children[d.Index] = append(t.children[d.Index], b)
		}
	}
	return t
}

func (t *DomTree) intersect(a, b *ir.Block) *ir.Block {
	for a != b {
		for t.rpoNum[a.Index] > t.rpoNum[b.Index] {
			a = t.idom[a.Index]
		}
		for t.rpoNum[b.Index] > t.rpoNum[a.Index] {
			b = t.idom[b.Index]
		}
	}
	return a
}

// Idom returns the immediate dominator of b (nil for the entry).
func (t *DomTree) Idom(b *ir.Block) *ir.Block { return t.idom[b.Index] }

// Children returns the blocks whose immediate dominator is b.
func (t *DomTree) Children(b *ir.Block) []*ir.Block { return t.children[b.Index] }

// Reachable reports whether b is reachable from the entry.
func (t *DomTree) Reachable(b *ir.Block) bool { return t.rpoNum[b.Index] >= 0 }

// RPO returns the reachable blocks in reverse post-order.
func (t *DomTree) RPO() []*ir.Block { return t.rpo }

// Dominates reports whether a dominates b (every block dominates itself).
func (t *DomTree) Dominates(a, b *ir.Block) bool {
	if !t.Reachable(a) || !t.Reachable(b) {
		return false
	}
	for x := b; x != nil; x = t.idom[x.Index] {
		if x == a {
			return true
		}
	}
	return false
}

// Frontiers computes the dominance frontier of every block
// (Cytron et al.), indexed by Block.Index.
func (t *DomTree) Frontiers() [][]*ir.Block {
	n := len(t.fn.Blocks)
	df := make([][]*ir.Block, n)
	seen := make([]map[*ir.Block]bool, n)
	for _, b := range t.rpo {
		if len(t.preds[b.Index]) < 2 {
			continue
		}
		for _, p := range t.preds[b.Index] {
			if !t.Reachable(p) {
				continue
			}
			runner := p
			for runner != nil && runner != t.idom[b.Index] {
				if seen[runner.Index] == nil {
					seen[runner.Index] = map[*ir.Block]bool{}
				}
				if !seen[runner.Index][b] {
					seen[runner.Index][b] = true
					df[runner.Index] = append(df[runner.Index], b)
				}
				runner = t.idom[runner.Index]
			}
		}
	}
	return df
}

// Preds returns the predecessor lists captured when the tree was built.
func (t *DomTree) Preds() [][]*ir.Block { return t.preds }
