package analysis

import (
	"strings"
	"testing"

	"loopapalooza/internal/ir"
)

// loopWithPhis builds a canonical single loop whose header phis are supplied
// by the caller: mk is invoked with (builder-in-body, header phis) and must
// return the latch incoming for each phi. The loop runs while p0 < n.
func loopWithPhis(t *testing.T, tys []ir.Type, starts []ir.Value,
	mk func(bld *ir.Builder, phis []*ir.Instr) []ir.Value) (*ir.Function, *Loop, []*ir.Instr) {
	t.Helper()
	m := ir.NewModule("scev")
	f := m.AddFunction("f", ir.Int, &ir.Param{Nm: "n", Ty: ir.Int})
	bld := ir.NewBuilder(f)
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	bld.Jmp(head)

	bld.SetBlock(head)
	phis := make([]*ir.Instr, len(tys))
	for i, ty := range tys {
		phis[i] = bld.Phi(ty, "v")
	}
	cond := bld.Compare(ir.OpLt, phis[0], f.Params[0])
	bld.Br(cond, body, exit)

	bld.SetBlock(body)
	nexts := mk(bld, phis)
	bld.Jmp(head)

	for i, p := range phis {
		p.SetPhiIncoming(f.Entry(), starts[i])
		p.SetPhiIncoming(body, nexts[i])
	}
	bld.SetBlock(exit)
	bld.Ret(phis[0])
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	_, forest := LoopSimplify(f)
	if len(forest.All) != 1 {
		t.Fatalf("loops = %d, want 1", len(forest.All))
	}
	l := forest.All[0]
	return f, l, l.Header.Phis()
}

func TestSCEVBasicIV(t *testing.T) {
	_, l, phis := loopWithPhis(t, []ir.Type{ir.Int}, []ir.Value{ir.ConstInt(0)},
		func(bld *ir.Builder, phis []*ir.Instr) []ir.Value {
			return []ir.Value{bld.Binary(ir.OpAdd, phis[0], ir.ConstInt(1))}
		})
	se := ComputeSCEV(l)
	rec, ok := se.Evo[phis[0]].(*SCAddRec)
	if !ok {
		t.Fatalf("iv not an addrec: %v", se.Evo[phis[0]])
	}
	if rec.String() != "{0,+,1}" {
		t.Errorf("addrec = %s, want {0,+,1}", rec)
	}
	if len(se.ComputablePhis()) != 1 || len(se.NonComputablePhis()) != 0 {
		t.Error("classification wrong")
	}
}

func TestSCEVStrideAndInvariantStep(t *testing.T) {
	_, l, phis := loopWithPhis(t,
		[]ir.Type{ir.Int, ir.Int},
		[]ir.Value{ir.ConstInt(0), ir.ConstInt(10)},
		func(bld *ir.Builder, phis []*ir.Instr) []ir.Value {
			// i += 3; k += n (loop-invariant step)
			n := bld.Func.Params[0]
			return []ir.Value{
				bld.Binary(ir.OpAdd, phis[0], ir.ConstInt(3)),
				bld.Binary(ir.OpAdd, phis[1], n),
			}
		})
	se := ComputeSCEV(l)
	if got := se.Evo[phis[0]].String(); got != "{0,+,3}" {
		t.Errorf("i = %s, want {0,+,3}", got)
	}
	if got := se.Evo[phis[1]].String(); got != "{10,+,%n}" {
		t.Errorf("k = %s, want {10,+,%%n}", got)
	}
}

func TestSCEVMutualInduction(t *testing.T) {
	// i++; j += i  => j is a second-order recurrence (MIV), computable.
	_, l, phis := loopWithPhis(t,
		[]ir.Type{ir.Int, ir.Int},
		[]ir.Value{ir.ConstInt(0), ir.ConstInt(0)},
		func(bld *ir.Builder, phis []*ir.Instr) []ir.Value {
			return []ir.Value{
				bld.Binary(ir.OpAdd, phis[0], ir.ConstInt(1)),
				bld.Binary(ir.OpAdd, phis[1], phis[0]),
			}
		})
	se := ComputeSCEV(l)
	if len(se.ComputablePhis()) != 2 {
		t.Fatalf("computable = %v", se.SortedEvoStrings())
	}
	if got := se.Evo[phis[1]].String(); !strings.Contains(got, "rec(") {
		t.Errorf("MIV evolution = %s, want reference to other recurrence", got)
	}
}

func TestSCEVSubAndScaledSteps(t *testing.T) {
	// d -= 2; s = s + 4*i  (linear combo with another IV)
	_, l, phis := loopWithPhis(t,
		[]ir.Type{ir.Int, ir.Int, ir.Int},
		[]ir.Value{ir.ConstInt(0), ir.ConstInt(100), ir.ConstInt(0)},
		func(bld *ir.Builder, phis []*ir.Instr) []ir.Value {
			i4 := bld.Binary(ir.OpMul, phis[0], ir.ConstInt(4))
			return []ir.Value{
				bld.Binary(ir.OpAdd, phis[0], ir.ConstInt(1)),
				bld.Binary(ir.OpSub, phis[1], ir.ConstInt(2)),
				bld.Binary(ir.OpAdd, phis[2], i4),
			}
		})
	se := ComputeSCEV(l)
	if len(se.ComputablePhis()) != 3 {
		t.Fatalf("computable phis = %d, want 3: %v", len(se.ComputablePhis()), se.SortedEvoStrings())
	}
	if got := se.Evo[phis[1]].String(); got != "{100,+,-2}" {
		t.Errorf("d = %s, want {100,+,-2}", got)
	}
}

func TestSCEVNonComputableThroughLoad(t *testing.T) {
	m := ir.NewModule("nc")
	g := m.AddGlobal("tab", ir.Int, 64)
	f := m.AddFunction("f", ir.Int, &ir.Param{Nm: "n", Ty: ir.Int})
	bld := ir.NewBuilder(f)
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	bld.Jmp(head)
	bld.SetBlock(head)
	i := bld.Phi(ir.Int, "i")
	x := bld.Phi(ir.Int, "x")
	cond := bld.Compare(ir.OpLt, i, f.Params[0])
	bld.Br(cond, body, exit)
	bld.SetBlock(body)
	addr := bld.AddPtr(g, x)
	nx := bld.Load(addr) // x = tab[x]: pointer-chase, non-computable
	ni := bld.Binary(ir.OpAdd, i, ir.ConstInt(1))
	bld.Jmp(head)
	i.SetPhiIncoming(f.Entry(), ir.ConstInt(0))
	i.SetPhiIncoming(body, ni)
	x.SetPhiIncoming(f.Entry(), ir.ConstInt(0))
	x.SetPhiIncoming(body, nx)
	bld.SetBlock(exit)
	bld.Ret(x)
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	_, forest := LoopSimplify(f)
	se := ComputeSCEV(forest.All[0])
	if len(se.ComputablePhis()) != 1 {
		t.Errorf("computable = %d, want 1 (only i)", len(se.ComputablePhis()))
	}
	if len(se.NonComputablePhis()) != 1 {
		t.Errorf("non-computable = %d, want 1 (x)", len(se.NonComputablePhis()))
	}
}

func TestSCEVGeometricNotComputable(t *testing.T) {
	// x *= 2 is not an add-recurrence (LLVM SCEV cannot express it).
	_, l, _ := loopWithPhis(t,
		[]ir.Type{ir.Int, ir.Int},
		[]ir.Value{ir.ConstInt(0), ir.ConstInt(1)},
		func(bld *ir.Builder, phis []*ir.Instr) []ir.Value {
			return []ir.Value{
				bld.Binary(ir.OpAdd, phis[0], ir.ConstInt(1)),
				bld.Binary(ir.OpMul, phis[1], ir.ConstInt(2)),
			}
		})
	se := ComputeSCEV(l)
	if len(se.NonComputablePhis()) != 1 {
		t.Errorf("x*=2 should be non-computable: %v", se.SortedEvoStrings())
	}
}

func TestSCEVFloatPhiNotComputable(t *testing.T) {
	_, l, _ := loopWithPhis(t,
		[]ir.Type{ir.Int, ir.Float},
		[]ir.Value{ir.ConstInt(0), ir.ConstFloat(0)},
		func(bld *ir.Builder, phis []*ir.Instr) []ir.Value {
			return []ir.Value{
				bld.Binary(ir.OpAdd, phis[0], ir.ConstInt(1)),
				bld.Binary(ir.OpFAdd, phis[1], ir.ConstFloat(0.5)),
			}
		})
	se := ComputeSCEV(l)
	if len(se.NonComputablePhis()) != 1 {
		t.Errorf("float recurrence should be non-computable (no float SCEV): %v", se.SortedEvoStrings())
	}
}

func TestSCEVMutualDemotion(t *testing.T) {
	// a depends on b, b depends on a load: both must demote.
	m := ir.NewModule("md")
	g := m.AddGlobal("tab", ir.Int, 8)
	f := m.AddFunction("f", ir.Int, &ir.Param{Nm: "n", Ty: ir.Int})
	bld := ir.NewBuilder(f)
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	bld.Jmp(head)
	bld.SetBlock(head)
	i := bld.Phi(ir.Int, "i")
	a := bld.Phi(ir.Int, "a")
	b := bld.Phi(ir.Int, "b")
	cond := bld.Compare(ir.OpLt, i, f.Params[0])
	bld.Br(cond, body, exit)
	bld.SetBlock(body)
	na := bld.Binary(ir.OpAdd, a, b) // a += b
	ld := bld.Load(bld.AddPtr(g, i))
	nb := bld.Binary(ir.OpAdd, b, ld) // b += tab[i]
	ni := bld.Binary(ir.OpAdd, i, ir.ConstInt(1))
	bld.Jmp(head)
	i.SetPhiIncoming(f.Entry(), ir.ConstInt(0))
	i.SetPhiIncoming(body, ni)
	a.SetPhiIncoming(f.Entry(), ir.ConstInt(0))
	a.SetPhiIncoming(body, na)
	b.SetPhiIncoming(f.Entry(), ir.ConstInt(0))
	b.SetPhiIncoming(body, nb)
	bld.SetBlock(exit)
	bld.Ret(a)
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	_, forest := LoopSimplify(f)
	se := ComputeSCEV(forest.All[0])
	if got := len(se.ComputablePhis()); got != 1 {
		t.Errorf("computable = %d, want 1 (only i): %v", got, se.SortedEvoStrings())
	}
}
