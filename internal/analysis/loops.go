package analysis

import (
	"fmt"
	"sort"

	"loopapalooza/internal/ir"
)

// Loop is a natural loop of the CFG. After LoopSimplify the loop is in
// canonical form: it has a dedicated Preheader (the unique edge into the
// header from outside the loop) and a unique Latch (the unique back edge).
type Loop struct {
	// Header is the loop header (the target of the back edge; it
	// dominates every block in the loop).
	Header *ir.Block
	// Latch is the unique in-loop predecessor of the header after
	// LoopSimplify; nil before simplification if there are several.
	Latch *ir.Block
	// Preheader is the unique out-of-loop predecessor of the header
	// after LoopSimplify.
	Preheader *ir.Block
	// Blocks is the set of blocks in the loop, header included.
	Blocks map[*ir.Block]bool
	// Parent is the innermost enclosing loop, nil for top-level loops.
	Parent *Loop
	// Children are the immediately nested loops.
	Children []*Loop
	// Depth is the nesting depth (1 for top-level loops).
	Depth int
}

// Contains reports whether b belongs to the loop.
func (l *Loop) Contains(b *ir.Block) bool { return l.Blocks[b] }

// ID returns a stable identifier for the loop within its module:
// "function:header".
func (l *Loop) ID() string {
	return fmt.Sprintf("%s:%s", l.Header.Parent.Name, l.Header.Name)
}

// Exits returns the out-of-loop blocks that have a predecessor inside the
// loop, in deterministic order.
func (l *Loop) Exits() []*ir.Block {
	seen := map[*ir.Block]bool{}
	var exits []*ir.Block
	for _, b := range blocksInOrder(l) {
		for _, s := range b.Succs() {
			if !l.Blocks[s] && !seen[s] {
				seen[s] = true
				exits = append(exits, s)
			}
		}
	}
	return exits
}

func blocksInOrder(l *Loop) []*ir.Block {
	var bs []*ir.Block
	for _, b := range l.Header.Parent.Blocks {
		if l.Blocks[b] {
			bs = append(bs, b)
		}
	}
	return bs
}

// LoopForest is the set of loops of one function, as a nesting forest.
type LoopForest struct {
	// Top are the outermost loops in header order.
	Top []*Loop
	// All lists every loop, outer loops before their children.
	All []*Loop
	// ByHeader maps a header block to its loop.
	ByHeader map[*ir.Block]*Loop
}

// LoopOf returns the innermost loop containing b, or nil.
func (fst *LoopForest) LoopOf(b *ir.Block) *Loop {
	var best *Loop
	for _, l := range fst.All {
		if l.Blocks[b] && (best == nil || l.Depth > best.Depth) {
			best = l
		}
	}
	return best
}

// FindLoops discovers the natural loops of f using back edges in the
// dominator tree, merging loops that share a header.
func FindLoops(f *ir.Function, dt *DomTree) *LoopForest {
	forest := &LoopForest{ByHeader: map[*ir.Block]*Loop{}}

	// A back edge is a->h where h dominates a.
	for _, a := range dt.RPO() {
		for _, h := range a.Succs() {
			if !dt.Dominates(h, a) {
				continue
			}
			l := forest.ByHeader[h]
			if l == nil {
				l = &Loop{Header: h, Blocks: map[*ir.Block]bool{h: true}}
				forest.ByHeader[h] = l
				forest.All = append(forest.All, l)
			}
			// Grow the body: everything that reaches the latch
			// without passing through the header.
			stack := []*ir.Block{a}
			for len(stack) > 0 {
				b := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if l.Blocks[b] {
					continue
				}
				l.Blocks[b] = true
				for _, p := range dt.Preds()[b.Index] {
					if dt.Reachable(p) {
						stack = append(stack, p)
					}
				}
			}
		}
	}

	// Nesting: sort by body size ascending so the innermost enclosing
	// loop of each loop is the smallest strict superset.
	sorted := append([]*Loop(nil), forest.All...)
	sort.Slice(sorted, func(i, j int) bool {
		if len(sorted[i].Blocks) != len(sorted[j].Blocks) {
			return len(sorted[i].Blocks) < len(sorted[j].Blocks)
		}
		return sorted[i].Header.Index < sorted[j].Header.Index
	})
	for i, l := range sorted {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j].Blocks[l.Header] {
				l.Parent = sorted[j]
				sorted[j].Children = append(sorted[j].Children, l)
				break
			}
		}
	}
	for _, l := range sorted {
		if l.Parent == nil {
			forest.Top = append(forest.Top, l)
		}
	}
	sort.Slice(forest.Top, func(i, j int) bool { return forest.Top[i].Header.Index < forest.Top[j].Header.Index })
	var setDepth func(l *Loop, d int)
	setDepth = func(l *Loop, d int) {
		l.Depth = d
		sort.Slice(l.Children, func(i, j int) bool { return l.Children[i].Header.Index < l.Children[j].Header.Index })
		for _, c := range l.Children {
			setDepth(c, d+1)
		}
	}
	// Re-list All outer-first.
	forest.All = forest.All[:0]
	var list func(l *Loop)
	list = func(l *Loop) {
		forest.All = append(forest.All, l)
		for _, c := range l.Children {
			list(c)
		}
	}
	for _, l := range forest.Top {
		setDepth(l, 1)
		list(l)
	}

	// Record latch/preheader when already unique.
	for _, l := range forest.All {
		fillCanonical(l, dt)
	}
	return forest
}

func fillCanonical(l *Loop, dt *DomTree) {
	var inside, outside []*ir.Block
	for _, p := range dt.Preds()[l.Header.Index] {
		if l.Blocks[p] {
			inside = append(inside, p)
		} else {
			outside = append(outside, p)
		}
	}
	if len(inside) == 1 {
		l.Latch = inside[0]
	}
	if len(outside) == 1 && len(outside[0].Succs()) == 1 {
		l.Preheader = outside[0]
	}
}

// LoopSimplify canonicalizes every loop of f, mirroring LLVM's loopsimplify
// pass: it guarantees a dedicated preheader and a unique latch for every
// natural loop, splitting edges and rewriting header phis as needed.
// It returns the recomputed dominator tree and loop forest.
func LoopSimplify(f *ir.Function) (*DomTree, *LoopForest) {
	splitEntryIfNeeded(f)
	for {
		dt := BuildDomTree(f)
		forest := FindLoops(f, dt)
		changed := false
		for _, l := range forest.All {
			var inside, outside []*ir.Block
			for _, p := range dt.Preds()[l.Header.Index] {
				if l.Blocks[p] {
					inside = append(inside, p)
				} else {
					outside = append(outside, p)
				}
			}
			if l.Preheader == nil && len(outside) > 0 {
				mergeEdges(f, outside, l.Header, l.Header.Name+".pre")
				changed = true
				break // CFG changed: recompute and restart
			}
			if l.Latch == nil && len(inside) > 1 {
				mergeEdges(f, inside, l.Header, l.Header.Name+".latch")
				changed = true
				break
			}
		}
		if !changed {
			return dt, forest
		}
	}
}

// splitEntryIfNeeded gives f a predecessor-free entry block (an LLVM
// invariant this IR does not enforce): if anything branches to the current
// entry, a fresh entry that jumps to it is prepended, so the old entry can
// be a canonical loop header with a preheader.
func splitEntryIfNeeded(f *ir.Function) {
	f.Renumber()
	old := f.Entry()
	if len(f.Preds()[old.Index]) == 0 {
		return
	}
	ne := &ir.Block{Name: f.NextName("entry"), Parent: f}
	ne.Append(&ir.Instr{Op: ir.OpJmp, Ty: ir.Void, Blocks: []*ir.Block{old}})
	// Phis in the old entry (if any) need an incoming for the new edge:
	// on the function-start path the value is undefined, i.e. zero.
	for _, phi := range old.Phis() {
		var zero ir.Value
		switch phi.Ty.Kind() {
		case ir.KFloat:
			zero = ir.ConstFloat(0)
		case ir.KBool:
			zero = ir.ConstBool(false)
		case ir.KPtr:
			zero = ir.ConstNull(phi.Ty)
		default:
			zero = ir.ConstInt(0)
		}
		phi.SetPhiIncoming(ne, zero)
	}
	f.Blocks = append([]*ir.Block{ne}, f.Blocks...)
	f.Renumber()
}

// mergeEdges splits the edges preds->target through a fresh block that jumps
// to target, updating target's phis. When several preds are merged, the new
// block receives phis combining their incoming values.
func mergeEdges(f *ir.Function, preds []*ir.Block, target *ir.Block, name string) *ir.Block {
	nb := f.NewBlock(name)
	// Build replacement phis in nb for each phi in target.
	for _, phi := range target.Phis() {
		var merged ir.Value
		if len(preds) == 1 {
			merged = phi.PhiIncoming(preds[0])
		} else {
			np := &ir.Instr{Op: ir.OpPhi, Ty: phi.Ty, Nm: f.NextName(phi.Nm + ".m")}
			for _, p := range preds {
				np.SetPhiIncoming(p, phi.PhiIncoming(p))
			}
			nb.InsertBefore(nb.FirstNonPhi(), np)
			merged = np
		}
		// Remove old incomings, add one from nb.
		var keepArgs []ir.Value
		var keepBlocks []*ir.Block
		for k, in := range phi.Blocks {
			drop := false
			for _, p := range preds {
				if in == p {
					drop = true
					break
				}
			}
			if !drop {
				keepArgs = append(keepArgs, phi.Args[k])
				keepBlocks = append(keepBlocks, phi.Blocks[k])
			}
		}
		phi.Args, phi.Blocks = keepArgs, keepBlocks
		phi.SetPhiIncoming(nb, merged)
	}
	nb.Append(&ir.Instr{Op: ir.OpJmp, Ty: ir.Void, Blocks: []*ir.Block{target}})
	// Redirect the edges.
	for _, p := range preds {
		t := p.Terminator()
		for k, tgt := range t.Blocks {
			if tgt == target {
				t.Blocks[k] = nb
			}
		}
	}
	f.Renumber()
	return nb
}
