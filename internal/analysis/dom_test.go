package analysis

import (
	"testing"

	"loopapalooza/internal/ir"
)

// diamond builds:
//
//	entry -> a -> {b, c} -> d -> exit
func diamond(t *testing.T) *ir.Function {
	t.Helper()
	m := ir.NewModule("dom")
	f := m.AddFunction("f", ir.Void, &ir.Param{Nm: "c", Ty: ir.Bool})
	bld := ir.NewBuilder(f)
	a := f.NewBlock("a")
	b := f.NewBlock("b")
	c := f.NewBlock("c")
	d := f.NewBlock("d")
	bld.Jmp(a)
	bld.SetBlock(a)
	bld.Br(f.Params[0], b, c)
	bld.SetBlock(b)
	bld.Jmp(d)
	bld.SetBlock(c)
	bld.Jmp(d)
	bld.SetBlock(d)
	bld.Ret(nil)
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestDomTreeDiamond(t *testing.T) {
	f := diamond(t)
	dt := BuildDomTree(f)
	entry, a, b, c, d := f.Blocks[0], f.Blocks[1], f.Blocks[2], f.Blocks[3], f.Blocks[4]

	if dt.Idom(entry) != nil {
		t.Errorf("idom(entry) = %v, want nil", dt.Idom(entry))
	}
	if dt.Idom(a) != entry {
		t.Errorf("idom(a) = %v, want entry", dt.Idom(a))
	}
	if dt.Idom(b) != a || dt.Idom(c) != a {
		t.Errorf("idom(b)=%v idom(c)=%v, want a", dt.Idom(b), dt.Idom(c))
	}
	if dt.Idom(d) != a {
		t.Errorf("idom(d) = %v, want a (join point)", dt.Idom(d))
	}
	if !dt.Dominates(a, d) || dt.Dominates(b, d) || !dt.Dominates(d, d) {
		t.Error("Dominates answers wrong on diamond")
	}
}

func TestDomFrontiersDiamond(t *testing.T) {
	f := diamond(t)
	dt := BuildDomTree(f)
	df := dt.Frontiers()
	b, c, d := f.Blocks[2], f.Blocks[3], f.Blocks[4]
	if len(df[b.Index]) != 1 || df[b.Index][0] != d {
		t.Errorf("DF(b) = %v, want [d]", df[b.Index])
	}
	if len(df[c.Index]) != 1 || df[c.Index][0] != d {
		t.Errorf("DF(c) = %v, want [d]", df[c.Index])
	}
	if len(df[d.Index]) != 0 {
		t.Errorf("DF(d) = %v, want empty", df[d.Index])
	}
}

func TestDomTreeUnreachable(t *testing.T) {
	m := ir.NewModule("u")
	f := m.AddFunction("f", ir.Void)
	bld := ir.NewBuilder(f)
	dead := f.NewBlock("dead")
	bld.Ret(nil)
	bld.SetBlock(dead)
	bld.Ret(nil)
	dt := BuildDomTree(f)
	if dt.Reachable(dead) {
		t.Error("dead block reported reachable")
	}
	if dt.Dominates(dead, f.Entry()) || dt.Dominates(f.Entry(), dead) {
		t.Error("dominance involving unreachable block should be false")
	}
}

func TestDomTreeLoopBack(t *testing.T) {
	// entry -> head <-> body; head -> exit. head dominates body.
	m := ir.NewModule("l")
	f := m.AddFunction("f", ir.Void, &ir.Param{Nm: "c", Ty: ir.Bool})
	bld := ir.NewBuilder(f)
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	bld.Jmp(head)
	bld.SetBlock(head)
	bld.Br(f.Params[0], body, exit)
	bld.SetBlock(body)
	bld.Jmp(head)
	bld.SetBlock(exit)
	bld.Ret(nil)
	dt := BuildDomTree(f)
	if dt.Idom(body) != head {
		t.Errorf("idom(body) = %v, want head", dt.Idom(body))
	}
	if !dt.Dominates(head, body) || dt.Dominates(body, head) {
		t.Error("loop dominance wrong")
	}
	// RPO has entry first.
	if dt.RPO()[0] != f.Entry() {
		t.Error("RPO does not start with entry")
	}
}
