package analysis

import (
	"fmt"
	"sort"
	"strings"

	"loopapalooza/internal/ir"
)

// SCEV is a scalar-evolution expression: a symbolic description of how a
// value evolves across the iterations of one loop. Following LLVM, the only
// recurrences recognized are add-recurrences {start,+,step}; steps may
// themselves be add-recurrences, which covers polynomial and mutual
// induction variables (the paper's IVs and MIVs).
type SCEV interface {
	// String renders the expression in LLVM's {a,+,b} notation.
	String() string
	// scev is a marker.
	scev()
}

// SCConst is a compile-time constant.
type SCConst struct{ V int64 }

// SCInvariant is a value that does not change across the analyzed loop's
// iterations (defined outside the loop).
type SCInvariant struct{ V ir.Value }

// SCAddRec is an add-recurrence {Start, +, Step} on the analyzed loop.
type SCAddRec struct {
	Start SCEV
	Step  SCEV
}

// SCAdd is a sum of operands.
type SCAdd struct{ Ops []SCEV }

// SCMulConst is Scale * Op.
type SCMulConst struct {
	Scale int64
	Op    SCEV
}

// SCPhiRef refers to the add-recurrence of another computable header phi of
// the same loop. It is how mutual induction variables (MIVs) are expressed:
// j = {j0,+,i} where i is itself an add-recurrence.
type SCPhiRef struct{ Phi *ir.Instr }

// SCUnknown marks a value whose evolution cannot be expressed: any phi
// classified through SCUnknown is a non-computable register LCD.
type SCUnknown struct{ V ir.Value }

func (*SCConst) scev()     {}
func (*SCInvariant) scev() {}
func (*SCAddRec) scev()    {}
func (*SCAdd) scev()       {}
func (*SCMulConst) scev()  {}
func (*SCPhiRef) scev()    {}
func (*SCUnknown) scev()   {}

func (s *SCConst) String() string     { return fmt.Sprintf("%d", s.V) }
func (s *SCInvariant) String() string { return s.V.Name() }
func (s *SCAddRec) String() string    { return fmt.Sprintf("{%s,+,%s}", s.Start, s.Step) }
func (s *SCMulConst) String() string  { return fmt.Sprintf("(%d * %s)", s.Scale, s.Op) }
func (s *SCPhiRef) String() string    { return "rec(" + s.Phi.Name() + ")" }
func (s *SCUnknown) String() string   { return "unknown(" + s.V.Name() + ")" }
func (s *SCAdd) String() string {
	parts := make([]string, len(s.Ops))
	for i, o := range s.Ops {
		parts[i] = o.String()
	}
	return "(" + strings.Join(parts, " + ") + ")"
}

// HasUnknown reports whether the expression contains an SCUnknown node.
func HasUnknown(s SCEV) bool {
	switch x := s.(type) {
	case *SCUnknown:
		return true
	case *SCAddRec:
		return HasUnknown(x.Start) || HasUnknown(x.Step)
	case *SCAdd:
		for _, o := range x.Ops {
			if HasUnknown(o) {
				return true
			}
		}
	case *SCMulConst:
		return HasUnknown(x.Op)
	}
	return false
}

// ScalarEvolution analyzes the header phis of a single canonical loop
// (preheader and latch required) and assigns each an evolution expression.
type ScalarEvolution struct {
	Loop *Loop
	// Evo maps each header phi to its evolution; computable phis get an
	// *SCAddRec, non-computable ones an expression containing SCUnknown.
	Evo map[*ir.Instr]SCEV
}

// ComputeSCEV classifies every header phi of l. The loop must be in
// canonical form (LoopSimplify has run).
func ComputeSCEV(l *Loop) *ScalarEvolution {
	se := &ScalarEvolution{Loop: l, Evo: map[*ir.Instr]SCEV{}}
	if l.Latch == nil || l.Preheader == nil {
		for _, phi := range l.Header.Phis() {
			se.Evo[phi] = &SCUnknown{V: phi}
		}
		return se
	}

	phis := l.Header.Phis()
	// Optimistically assume every phi is an add-recurrence; iterate,
	// demoting phis whose latch value cannot be written as phi + step
	// with a step built only from constants, loop invariants, and other
	// still-computable phis. Deterministic order for reproducibility.
	computable := map[*ir.Instr]bool{}
	for _, p := range phis {
		if p.Ty.Kind() == ir.KInt || p.Ty.Kind() == ir.KPtr {
			computable[p] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, p := range phis {
			if !computable[p] {
				continue
			}
			step, ok := se.stepOf(p, computable)
			if !ok || HasUnknown(step) {
				computable[p] = false
				changed = true
			}
		}
	}
	for _, p := range phis {
		if computable[p] {
			step, _ := se.stepOf(p, computable)
			se.Evo[p] = &SCAddRec{
				Start: se.outsideExpr(p.PhiIncoming(l.Preheader)),
				Step:  step,
			}
		} else {
			se.Evo[p] = &SCUnknown{V: p}
		}
	}
	return se
}

// ComputablePhis returns the header phis with a pure add-recurrence
// evolution, in block order.
func (se *ScalarEvolution) ComputablePhis() []*ir.Instr {
	var out []*ir.Instr
	for _, p := range se.Loop.Header.Phis() {
		if _, ok := se.Evo[p].(*SCAddRec); ok {
			out = append(out, p)
		}
	}
	return out
}

// NonComputablePhis returns the header phis that are not add-recurrences,
// in block order.
func (se *ScalarEvolution) NonComputablePhis() []*ir.Instr {
	var out []*ir.Instr
	for _, p := range se.Loop.Header.Phis() {
		if _, ok := se.Evo[p].(*SCAddRec); !ok {
			out = append(out, p)
		}
	}
	return out
}

// stepOf expresses the latch incoming of p as p + step and returns step.
// ok is false if the latch value is not linear in p with coefficient 1.
func (se *ScalarEvolution) stepOf(p *ir.Instr, computable map[*ir.Instr]bool) (SCEV, bool) {
	next := p.PhiIncoming(se.Loop.Latch)
	lin := se.linearize(next, computable)
	if lin.bad || lin.coef[p] != 1 {
		return nil, false
	}
	// Other computable phis may contribute to the step: that is a mutual
	// induction variable. Reference their recurrences symbolically, in
	// deterministic (block) order.
	for _, q := range se.Loop.Header.Phis() {
		if q == p {
			continue
		}
		if c := lin.coef[q]; c != 0 {
			lin.terms = append(lin.terms, scaled(c, &SCPhiRef{Phi: q}))
		}
	}
	return lin.rest(), true
}

// linear is c0 + sum(coef[phi] * phi) + sum(restTerms).
type linear struct {
	c0    int64
	coef  map[*ir.Instr]int64
	terms []SCEV
	bad   bool
}

func (l *linear) rest() SCEV {
	var ops []SCEV
	if l.c0 != 0 {
		ops = append(ops, &SCConst{V: l.c0})
	}
	ops = append(ops, l.terms...)
	switch len(ops) {
	case 0:
		return &SCConst{V: 0}
	case 1:
		return ops[0]
	default:
		return &SCAdd{Ops: ops}
	}
}

// linearize decomposes v into a linear form over the loop's header phis.
// Terms that are loop-invariant become SCInvariant; computable phis that
// appear scaled (not the analyzed one) become addrec references via
// SCUnknown demotion handled by the caller's fixed point.
func (se *ScalarEvolution) linearize(v ir.Value, computable map[*ir.Instr]bool) linear {
	out := linear{coef: map[*ir.Instr]int64{}}
	se.accumulate(v, 1, computable, &out)
	return out
}

func (se *ScalarEvolution) accumulate(v ir.Value, scale int64, computable map[*ir.Instr]bool, out *linear) {
	if out.bad {
		return
	}
	switch x := v.(type) {
	case *ir.IntConst:
		out.c0 += scale * x.V
		return
	case *ir.Param, *ir.Global:
		out.terms = append(out.terms, scaled(scale, &SCInvariant{V: v}))
		return
	case *ir.Instr:
		if !se.Loop.Contains(x.Parent) {
			out.terms = append(out.terms, scaled(scale, &SCInvariant{V: v}))
			return
		}
		if x.Op == ir.OpPhi && x.Parent == se.Loop.Header {
			if computable[x] {
				out.coef[x] += scale
			} else {
				out.bad = true
			}
			return
		}
		switch x.Op {
		case ir.OpAdd:
			se.accumulate(x.Args[0], scale, computable, out)
			se.accumulate(x.Args[1], scale, computable, out)
			return
		case ir.OpSub:
			se.accumulate(x.Args[0], scale, computable, out)
			se.accumulate(x.Args[1], -scale, computable, out)
			return
		case ir.OpNeg:
			se.accumulate(x.Args[0], -scale, computable, out)
			return
		case ir.OpMul:
			if c, ok := ir.ConstIntValue(x.Args[0]); ok {
				se.accumulate(x.Args[1], scale*c, computable, out)
				return
			}
			if c, ok := ir.ConstIntValue(x.Args[1]); ok {
				se.accumulate(x.Args[0], scale*c, computable, out)
				return
			}
		case ir.OpShl:
			if c, ok := ir.ConstIntValue(x.Args[1]); ok && c >= 0 && c < 63 {
				se.accumulate(x.Args[0], scale<<uint(c), computable, out)
				return
			}
		case ir.OpAddPtr:
			se.accumulate(x.Args[0], scale, computable, out)
			se.accumulate(x.Args[1], scale, computable, out)
			return
		}
	}
	out.bad = true
}

func scaled(scale int64, s SCEV) SCEV {
	if scale == 1 {
		return s
	}
	return &SCMulConst{Scale: scale, Op: s}
}

// outsideExpr describes a loop-invariant start value.
func (se *ScalarEvolution) outsideExpr(v ir.Value) SCEV {
	if c, ok := ir.ConstIntValue(v); ok {
		return &SCConst{V: c}
	}
	return &SCInvariant{V: v}
}

// SortedEvoStrings returns "phi = evolution" lines in deterministic order,
// for diagnostics and tests.
func (se *ScalarEvolution) SortedEvoStrings() []string {
	var out []string
	for p, e := range se.Evo {
		out = append(out, fmt.Sprintf("%s = %s", p.Name(), e))
	}
	sort.Strings(out)
	return out
}
