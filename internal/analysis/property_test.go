package analysis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"loopapalooza/internal/ir"
)

// randomCFG builds a function with n blocks and pseudo-random conditional
// branches (deterministic in seed). Every block ends in a br to two targets
// or a ret, so the CFG is well formed by construction.
func randomCFG(seed int64, n int) *ir.Function {
	rng := rand.New(rand.NewSource(seed))
	m := ir.NewModule("rand")
	f := m.AddFunction("f", ir.Void, &ir.Param{Nm: "c", Ty: ir.Bool})
	bld := ir.NewBuilder(f)
	blocks := []*ir.Block{f.Entry()}
	for i := 1; i < n; i++ {
		blocks = append(blocks, f.NewBlock("b"))
	}
	for i, b := range blocks {
		bld.SetBlock(b)
		switch rng.Intn(4) {
		case 0:
			bld.Ret(nil)
		default:
			// Bias edges forward so most blocks are reachable, with
			// occasional back edges forming loops.
			t1 := blocks[rng.Intn(n)]
			t2 := blocks[rng.Intn(n)]
			if i+1 < n && rng.Intn(3) > 0 {
				t1 = blocks[i+1]
			}
			bld.Br(f.Params[0], t1, t2)
		}
	}
	f.Renumber()
	return f
}

// naiveDominates computes dominance by definition: a dominates b iff
// removing a makes b unreachable from the entry.
func naiveDominates(f *ir.Function, a, b *ir.Block) bool {
	if a == b {
		return true
	}
	seen := map[*ir.Block]bool{a: true} // block a is "removed"
	var stack []*ir.Block
	if f.Entry() != a {
		stack = append(stack, f.Entry())
		seen[f.Entry()] = true
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x == b {
			return false
		}
		for _, s := range x.Succs() {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return true
}

func reachableFromEntry(f *ir.Function, b *ir.Block) bool {
	seen := map[*ir.Block]bool{f.Entry(): true}
	stack := []*ir.Block{f.Entry()}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x == b {
			return true
		}
		for _, s := range x.Succs() {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// TestDominatorsMatchNaive cross-checks the Cooper-Harvey-Kennedy tree
// against the by-definition algorithm on random CFGs.
func TestDominatorsMatchNaive(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz%12) + 2
		fn := randomCFG(seed, n)
		dt := BuildDomTree(fn)
		for _, a := range fn.Blocks {
			for _, b := range fn.Blocks {
				if !reachableFromEntry(fn, a) || !reachableFromEntry(fn, b) {
					continue
				}
				if dt.Dominates(a, b) != naiveDominates(fn, a, b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Error(err)
	}
}

// TestLoopsWellFormedOnRandomCFGs: after LoopSimplify, every loop of every
// random CFG is canonical and the module still verifies.
func TestLoopsWellFormedOnRandomCFGs(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz%12) + 2
		fn := randomCFG(seed, n)
		RemoveUnreachable(fn)
		_, forest := LoopSimplify(fn)
		if err := ir.Verify(fn.Module); err != nil {
			return false
		}
		for _, l := range forest.All {
			if l.Preheader == nil || l.Latch == nil {
				return false
			}
			if !l.Contains(l.Header) || !l.Contains(l.Latch) || l.Contains(l.Preheader) {
				return false
			}
			// The header must dominate every block of the loop.
			dt := BuildDomTree(fn)
			for b := range l.Blocks {
				if !dt.Dominates(l.Header, b) {
					return false
				}
			}
			// Nesting is consistent.
			for _, c := range l.Children {
				if c.Parent != l || c.Depth != l.Depth+1 {
					return false
				}
				for b := range c.Blocks {
					if !l.Contains(b) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Error(err)
	}
}

// TestSCEVAffineProperty: for arbitrary (start, step), a loop i' = i + step
// classifies as {start,+,step}.
func TestSCEVAffineProperty(t *testing.T) {
	f := func(start, step int32) bool {
		m := ir.NewModule("aff")
		fn := m.AddFunction("f", ir.Int, &ir.Param{Nm: "n", Ty: ir.Int})
		bld := ir.NewBuilder(fn)
		head := fn.NewBlock("head")
		body := fn.NewBlock("body")
		exit := fn.NewBlock("exit")
		bld.Jmp(head)
		bld.SetBlock(head)
		iv := bld.Phi(ir.Int, "i")
		cond := bld.Compare(ir.OpLt, iv, fn.Params[0])
		bld.Br(cond, body, exit)
		bld.SetBlock(body)
		next := bld.Binary(ir.OpAdd, iv, ir.ConstInt(int64(step)))
		bld.Jmp(head)
		iv.SetPhiIncoming(fn.Entry(), ir.ConstInt(int64(start)))
		iv.SetPhiIncoming(body, next)
		bld.SetBlock(exit)
		bld.Ret(iv)
		_, forest := LoopSimplify(fn)
		if len(forest.All) != 1 {
			return false
		}
		se := ComputeSCEV(forest.All[0])
		rec, ok := se.Evo[forest.All[0].Header.Phis()[0]].(*SCAddRec)
		if !ok {
			return false
		}
		s0, ok0 := rec.Start.(*SCConst)
		s1, ok1 := rec.Step.(*SCConst)
		return ok0 && ok1 && s0.V == int64(start) && s1.V == int64(step)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
