package analysis

import (
	"testing"

	"loopapalooza/internal/ir"
)

func countOps(f *ir.Function, op ir.Op) int {
	n := 0
	for _, b := range f.Blocks {
		for _, i := range b.Instrs {
			if i.Op == op {
				n++
			}
		}
	}
	return n
}

func TestMem2RegPromotesNestedLoopVars(t *testing.T) {
	m, f := nestedLoops(t)
	n := Mem2Reg(f)
	if n != 3 {
		t.Fatalf("promoted %d allocas, want 3", n)
	}
	if got := countOps(f, ir.OpAlloca); got != 0 {
		t.Errorf("%d allocas remain", got)
	}
	if got := countOps(f, ir.OpLoad); got != 0 {
		t.Errorf("%d loads remain", got)
	}
	if got := countOps(f, ir.OpStore); got != 0 {
		t.Errorf("%d stores remain", got)
	}
	if got := countOps(f, ir.OpPhi); got == 0 {
		t.Error("no phis inserted")
	}
	if err := ir.Verify(m); err != nil {
		t.Fatalf("invalid after mem2reg: %v\n%s", err, f)
	}
}

func TestMem2RegSkipsEscapingAlloca(t *testing.T) {
	m := ir.NewModule("esc")
	callee := m.AddFunction("sink", ir.Void, &ir.Param{Nm: "p", Ty: ir.PtrTo(ir.Int)})
	bc := ir.NewBuilder(callee)
	bc.Ret(nil)

	f := m.AddFunction("f", ir.Int)
	bld := ir.NewBuilder(f)
	a := bld.Alloca(ir.Int, ir.ConstInt(1), "a")
	bld.Store(a, ir.ConstInt(5))
	bld.Call(callee, a) // address escapes
	v := bld.Load(a)
	bld.Ret(v)
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	if n := Mem2Reg(f); n != 0 {
		t.Fatalf("promoted %d, want 0 (escaping)", n)
	}
	if countOps(f, ir.OpAlloca) != 1 {
		t.Error("escaping alloca removed")
	}
}

func TestMem2RegSkipsArrays(t *testing.T) {
	m := ir.NewModule("arr")
	f := m.AddFunction("f", ir.Int)
	bld := ir.NewBuilder(f)
	a := bld.Alloca(ir.Int, ir.ConstInt(8), "buf")
	bld.Store(a, ir.ConstInt(1))
	bld.Ret(bld.Load(a))
	if n := Mem2Reg(f); n != 0 {
		t.Fatalf("promoted %d, want 0 (multi-cell)", n)
	}
}

func TestMem2RegUninitializedLoadGetsZero(t *testing.T) {
	m := ir.NewModule("z")
	f := m.AddFunction("f", ir.Int)
	bld := ir.NewBuilder(f)
	a := bld.Alloca(ir.Int, ir.ConstInt(1), "a")
	v := bld.Load(a)
	bld.Ret(v)
	Mem2Reg(f)
	ret := f.Entry().Terminator()
	if c, ok := ir.ConstIntValue(ret.Args[0]); !ok || c != 0 {
		t.Fatalf("ret arg = %v, want 0", ret.Args[0])
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
}

func TestMem2RegDiamondPhi(t *testing.T) {
	// x = 1; if (c) x = 2; return x  =>  phi at the join.
	m := ir.NewModule("d")
	f := m.AddFunction("f", ir.Int, &ir.Param{Nm: "c", Ty: ir.Bool})
	bld := ir.NewBuilder(f)
	x := bld.Alloca(ir.Int, ir.ConstInt(1), "x")
	bld.Store(x, ir.ConstInt(1))
	thenB := f.NewBlock("then")
	join := f.NewBlock("join")
	bld.Br(f.Params[0], thenB, join)
	bld.SetBlock(thenB)
	bld.Store(x, ir.ConstInt(2))
	bld.Jmp(join)
	bld.SetBlock(join)
	bld.Ret(bld.Load(x))

	Mem2Reg(f)
	if err := ir.Verify(m); err != nil {
		t.Fatalf("invalid: %v\n%s", err, f)
	}
	phis := join.Phis()
	if len(phis) != 1 {
		t.Fatalf("join has %d phis, want 1\n%s", len(phis), f)
	}
	vals := map[int64]bool{}
	for _, a := range phis[0].Args {
		c, ok := ir.ConstIntValue(a)
		if !ok {
			t.Fatalf("phi arg not const: %v", a)
		}
		vals[c] = true
	}
	if !vals[1] || !vals[2] {
		t.Errorf("phi merges %v, want {1,2}", vals)
	}
}

func TestSimplifyPhisRemovesTrivial(t *testing.T) {
	m := ir.NewModule("tp")
	f := m.AddFunction("f", ir.Int, &ir.Param{Nm: "c", Ty: ir.Bool})
	bld := ir.NewBuilder(f)
	a := f.NewBlock("a")
	b := f.NewBlock("b")
	j := f.NewBlock("j")
	bld.Br(f.Params[0], a, b)
	bld.SetBlock(a)
	bld.Jmp(j)
	bld.SetBlock(b)
	bld.Jmp(j)
	bld.SetBlock(j)
	phi := bld.Phi(ir.Int, "p")
	phi.SetPhiIncoming(a, ir.ConstInt(9))
	phi.SetPhiIncoming(b, ir.ConstInt(9))
	bld.Ret(phi)

	if n := SimplifyPhis(f); n != 1 {
		t.Fatalf("removed %d phis, want 1", n)
	}
	ret := j.Terminator()
	if c, ok := ir.ConstIntValue(ret.Args[0]); !ok || c != 9 {
		t.Fatalf("ret arg = %v, want 9", ret.Args[0])
	}
}
