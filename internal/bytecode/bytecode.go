// Package bytecode compiles analyzed IR modules into a flat, register-
// based bytecode and executes it with a virtual machine that fires the
// exact same interp.Hooks event stream — tick batches, loop
// enter/iterate/exit, memory addresses, LCD observations, definition
// ticks, error taxonomy and messages — as the tree-walking interpreter.
// The tree-walker remains the differential oracle; the VM is the
// production engine.
//
// Each ir.Function lowers once per analysis (memoized on
// analysis.ModuleInfo.Lowered) into a contiguous []Inst of fixed-width
// instructions. The lowering resolves everything the tree-walker decides
// per step at compile time:
//
//   - operands become register indices into a flat frame (the dense
//     ir.Instr.Slot numbering, extended with preloaded constant slots and
//     phi staging temporaries), so there is no ir.Value dispatch;
//   - opcodes are type-specialized (opAddI vs opAddF), so there is no
//     runtime kind dispatch;
//   - branch targets are instruction indices, so there is no block
//     chasing;
//   - loop events are resolved per CFG edge: after LoopSimplify the
//     dynamic loop stack at a block equals the set of loops containing
//     it, so each edge statically knows which exits, which back-edge
//     iteration, or which entry it fires — the VM keeps no loop stack;
//   - dominant instruction pairs fuse into superinstructions
//     (compare+branch, addptr+load, addptr+store, load+add, phi-copy
//     runs), each charging its components' ticks individually so budget
//     trip points stay bit-identical.
package bytecode

import (
	"fmt"
	"strings"

	"loopapalooza/internal/analysis"
	"loopapalooza/internal/interp"
	"loopapalooza/internal/ir"
)

// Op enumerates the bytecode opcodes.
type Op uint8

// The opcodes. Unless noted, A is the destination register, B and C are
// operand registers, and the instruction charges one tick.
const (
	opInvalid Op = iota

	// Integer arithmetic (also covers bool/pointer payloads in Val.I).
	opAddI
	opSubI
	opMulI
	opDivI
	opRemI
	opAndI
	opOrI
	opXorI
	opShlI
	opShrI

	// Float arithmetic.
	opAddF
	opSubF
	opMulF
	opDivF

	// Unary.
	opNegI
	opNegF
	opNotB

	// Comparisons, specialized on the operands' static kind (pointers
	// and bools compare on the integer payload).
	opEqI
	opNeI
	opLtI
	opLeI
	opGtI
	opGeI
	opEqF
	opNeF
	opLtF
	opLeF
	opGtF
	opGeF

	// Conversions.
	opItoF
	opFtoI

	// Memory. opLoad carries the pointee kind in K for the
	// uninitialized-cell retag.
	opAlloca // A=dst, B=size
	opLoad   // A=dst, B=addr, K=pointee kind
	opStore  // A=value, B=addr
	opAddPtr // A=dst, B=base, C=index

	// Superinstructions. Each charges its components' ticks one
	// component at a time, so step-limit trip points match the
	// tree-walker exactly.
	opLoadIdx  // addptr+load: A=dst, B=base, C=index, K=pointee kind (2 ticks)
	opStoreIdx // addptr+store: A=value, B=base, C=index (2 ticks)
	opLoadAddI // load+add: A=dst, B=addr, C=other operand (2 ticks)
	opLoadAddF // load+fadd: A=dst, B=addr, C=other operand (2 ticks)

	// Fused compare+branch: A=taken target, B/C=operands; the not-taken
	// path falls through (2 ticks: compare, then branch).
	opBrEqI
	opBrNeI
	opBrLtI
	opBrLeI
	opBrGtI
	opBrGeI
	opBrEqF
	opBrNeF
	opBrLtF
	opBrLeF
	opBrGtF
	opBrGeF

	// Control flow.
	opBr   // A=then target, B=condition; else falls through (1 tick)
	opJmp  // A=target: an IR jmp whose edge needs no trampoline (1 tick)
	opGoto // A=target: internal trampoline exit, charges nothing
	opTick // A=n: charge n ticks (the IR jmp ahead of its trampoline)
	opRet  // A=result (-1 void), B=exit table base, C=count (1 tick)

	// Calls.
	opCall  // A=dst (-1 void), B=callee index, C=argument table base (1 tick)
	opCallB // A=dst (-1 void), B=builtin index, C=arg base, K=arity (1 tick + Cost)

	// Loop events (no ticks; flush before firing).
	opLoopExit  // A=exit table base, B=count: ExitLoop innermost-first
	opLoopEnter // A=enter descriptor index
	opLoopIter  // A=iter descriptor index

	// Phi parallel moves. Copy/Commit charge one tick per move with the
	// definition tick recorded before the charge, like the tree-walker.
	opPhiCopy   // A=move table base, B=count: conflict-free direct run
	opPhiStage  // A=move base, B=count, C=tmp base: stage sources, no ticks
	opPhiCommit // A=move base, B=count, C=tmp base: commit staged values

	opCount // sentinel
)

var opNames = [opCount]string{
	opInvalid: "invalid",
	opAddI:    "add.i", opSubI: "sub.i", opMulI: "mul.i", opDivI: "div.i",
	opRemI: "rem.i", opAndI: "and.i", opOrI: "or.i", opXorI: "xor.i",
	opShlI: "shl.i", opShrI: "shr.i",
	opAddF: "add.f", opSubF: "sub.f", opMulF: "mul.f", opDivF: "div.f",
	opNegI: "neg.i", opNegF: "neg.f", opNotB: "not.b",
	opEqI: "eq.i", opNeI: "ne.i", opLtI: "lt.i", opLeI: "le.i",
	opGtI: "gt.i", opGeI: "ge.i",
	opEqF: "eq.f", opNeF: "ne.f", opLtF: "lt.f", opLeF: "le.f",
	opGtF: "gt.f", opGeF: "ge.f",
	opItoF: "itof", opFtoI: "ftoi",
	opAlloca: "alloca", opLoad: "load", opStore: "store", opAddPtr: "addptr",
	opLoadIdx: "load.idx", opStoreIdx: "store.idx",
	opLoadAddI: "load.add.i", opLoadAddF: "load.add.f",
	opBrEqI: "br.eq.i", opBrNeI: "br.ne.i", opBrLtI: "br.lt.i",
	opBrLeI: "br.le.i", opBrGtI: "br.gt.i", opBrGeI: "br.ge.i",
	opBrEqF: "br.eq.f", opBrNeF: "br.ne.f", opBrLtF: "br.lt.f",
	opBrLeF: "br.le.f", opBrGtF: "br.gt.f", opBrGeF: "br.ge.f",
	opBr: "br", opJmp: "jmp", opGoto: "goto", opTick: "tick", opRet: "ret",
	opCall: "call", opCallB: "call.b",
	opLoopExit: "loop.exit", opLoopEnter: "loop.enter", opLoopIter: "loop.iter",
	opPhiCopy: "phi.copy", opPhiStage: "phi.stage", opPhiCommit: "phi.commit",
}

// String returns the opcode mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// isFused reports whether the opcode is a superinstruction covering more
// than one IR instruction.
func (o Op) isFused() bool {
	switch o {
	case opLoadIdx, opStoreIdx, opLoadAddI, opLoadAddF, opPhiCopy:
		return true
	}
	return o >= opBrEqI && o <= opBrGeF
}

// hasPCTarget reports whether A holds an instruction index.
func (o Op) hasPCTarget() bool {
	switch o {
	case opBr, opJmp, opGoto:
		return true
	}
	return o >= opBrEqI && o <= opBrGeF
}

// Inst is one fixed-width bytecode instruction.
type Inst struct {
	// Op is the opcode.
	Op Op
	// K is the auxiliary kind/arity operand (an ir.Kind for loads, the
	// argument count for builtin calls).
	K uint8
	// A, B, C are register indices, instruction indices, or table
	// bases, per opcode.
	A, B, C int32
}

// phiMove is one entry of a phi parallel-move run.
type phiMove struct{ dst, src int32 }

// loopEnter describes one statically-resolved EnterLoop event: the
// registers holding the iteration-zero values of the observed phis along
// this edge (-1 reads as the zero value, matching the tree-walker's
// cleared init buffer).
type loopEnter struct {
	lm   *analysis.LoopMeta
	srcs []int32
}

// loopIter describes one statically-resolved IterLoop event: the
// registers holding the latch incomings of the observed phis, and the
// register slots whose definition ticks accompany them (-1 reports -1,
// the "available at iteration start" marker).
type loopIter struct {
	lm    *analysis.LoopMeta
	srcs  []int32
	ticks []int32
}

// builtinRef is one interned builtin call target.
type builtinRef struct {
	name string
	cost int64
}

// funcCode is the lowered form of one ir.Function.
type funcCode struct {
	fn    *ir.Function
	arity int
	code  []Inst

	// Frame layout: [0,numRegs) are the dense ir slots (params first),
	// [tmpBase,constBase) the phi staging temporaries, and
	// [constBase,frameSize) the preloaded constant pool.
	numRegs   int
	tmpBase   int
	constBase int
	frameSize int
	consts    []interp.Val

	moves   []phiMove
	argRegs []int32
	exits   []*analysis.LoopMeta
	enters  []loopEnter
	iters   []loopIter
}

// Program is a compiled module: one funcCode per function plus the
// interned builtin table. Programs are immutable after Compile and shared
// by every VM executing the module.
type Program struct {
	info       *analysis.ModuleInfo
	mod        *ir.Module
	funcs      []*funcCode
	byName     map[string]*funcCode
	funcIdx    map[*ir.Function]int32
	builtins   []builtinRef
	builtinIdx map[string]int32

	opCounts [opCount]int64
}

// Module returns the compiled module.
func (p *Program) Module() *ir.Module { return p.mod }

// OpCounts returns the static per-opcode lowering histogram, keyed by
// mnemonic — the superinstruction-coverage record benchjson publishes.
func (p *Program) OpCounts() map[string]int64 {
	m := make(map[string]int64)
	for op, n := range p.opCounts {
		if n > 0 {
			m[Op(op).String()] = n
		}
	}
	return m
}

// StaticInsts returns the total number of lowered instructions.
func (p *Program) StaticInsts() int64 {
	var n int64
	for _, c := range p.opCounts {
		n += c
	}
	return n
}

// FusedInsts returns how many lowered instructions are superinstructions
// (each standing in for two or more IR steps).
func (p *Program) FusedInsts() int64 {
	var n int64
	for op, c := range p.opCounts {
		if Op(op).isFused() {
			n += c
		}
	}
	return n
}

// Disasm renders the program's bytecode in a line-per-instruction text
// form (tests and debugging; not a stable format).
func (p *Program) Disasm() string {
	var sb strings.Builder
	for _, fc := range p.funcs {
		fmt.Fprintf(&sb, "func @%s (regs %d, frame %d, consts %d):\n",
			fc.fn.Name, fc.numRegs, fc.frameSize, len(fc.consts))
		for pc, in := range fc.code {
			fmt.Fprintf(&sb, "  %4d  %-12s A=%d B=%d C=%d", pc, in.Op, in.A, in.B, in.C)
			if in.K != 0 {
				fmt.Fprintf(&sb, " K=%d", in.K)
			}
			sb.WriteString("\n")
		}
	}
	return sb.String()
}

// For returns the compiled program for an analyzed module, lowering it on
// first use and memoizing the result on the ModuleInfo (concurrent
// callers share one compilation).
func For(info *analysis.ModuleInfo) (*Program, error) {
	info.Lowered.Once.Do(func() {
		p, err := Compile(info)
		info.Lowered.Prog, info.Lowered.Err = p, err
	})
	if info.Lowered.Err != nil {
		return nil, info.Lowered.Err
	}
	return info.Lowered.Prog.(*Program), nil
}
