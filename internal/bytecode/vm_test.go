package bytecode

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"loopapalooza/internal/analysis"
	"loopapalooza/internal/interp"
	"loopapalooza/internal/lang"
)

// recorder captures the full hook event stream as comparable strings. It
// copies everything out of the scratch slices the engines hand it.
type recorder struct {
	events []string
}

func (r *recorder) Tick(n int64) { r.events = append(r.events, fmt.Sprintf("tick %d", n)) }

func (r *recorder) EnterLoop(lm *analysis.LoopMeta, sp int64, init []interp.Val) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "enter %s sp=%d init=[", lm.ID(), sp)
	for _, v := range init {
		fmt.Fprintf(&sb, " %d:%#x", v.K, v.Bits())
	}
	sb.WriteString(" ]")
	r.events = append(r.events, sb.String())
}

func (r *recorder) IterLoop(lm *analysis.LoopMeta, sp int64, obs []interp.LCDObs) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "iter %s sp=%d obs=[", lm.ID(), sp)
	for _, o := range obs {
		fmt.Fprintf(&sb, " %d:%#x@%d", o.Val.K, o.Val.Bits(), o.DefTick)
	}
	sb.WriteString(" ]")
	r.events = append(r.events, sb.String())
}

func (r *recorder) ExitLoop(lm *analysis.LoopMeta) {
	r.events = append(r.events, "exit "+lm.ID())
}

func (r *recorder) Load(addr int64)  { r.events = append(r.events, fmt.Sprintf("load %#x", addr)) }
func (r *recorder) Store(addr int64) { r.events = append(r.events, fmt.Sprintf("store %#x", addr)) }

func analyze(t *testing.T, src string) *analysis.ModuleInfo {
	t.Helper()
	m, err := lang.Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := analysis.AnalyzeModule(m)
	if err != nil {
		t.Fatal(err)
	}
	return info
}

// runBoth executes main under both engines with recording hooks and full
// print capture, and requires bit-identical results, errors, output, and
// hook event streams.
func runBoth(t *testing.T, src string, cfg interp.Config) (interp.Result, error) {
	t.Helper()
	info := analyze(t, src)
	return runBothAnalyzed(t, info, cfg)
}

func runBothAnalyzed(t *testing.T, info *analysis.ModuleInfo, cfg interp.Config) (interp.Result, error) {
	t.Helper()
	twRec, vmRec := &recorder{}, &recorder{}
	var twOut, vmOut bytes.Buffer

	twCfg := cfg
	twCfg.Hooks, twCfg.Out = twRec, &twOut
	twRes, twErr := interp.New(info, twCfg).Run("main")

	prog, err := For(info)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	vmCfg := cfg
	vmCfg.Hooks, vmCfg.Out = vmRec, &vmOut
	vmRes, vmErr := NewVM(prog, vmCfg).Run("main")

	if (twErr == nil) != (vmErr == nil) {
		t.Fatalf("error divergence:\n  treewalk: %v\n  bytecode: %v", twErr, vmErr)
	}
	if twErr != nil && twErr.Error() != vmErr.Error() {
		t.Fatalf("error text divergence:\n  treewalk: %v\n  bytecode: %v", twErr, vmErr)
	}
	if twRes != vmRes {
		t.Fatalf("result divergence:\n  treewalk: %+v\n  bytecode: %+v", twRes, vmRes)
	}
	if twOut.String() != vmOut.String() {
		t.Fatalf("output divergence:\n  treewalk: %q\n  bytecode: %q", twOut.String(), vmOut.String())
	}
	if len(twRec.events) != len(vmRec.events) {
		t.Fatalf("event count divergence: treewalk %d, bytecode %d\nfirst treewalk: %v\nfirst bytecode: %v",
			len(twRec.events), len(vmRec.events), head(twRec.events, 12), head(vmRec.events, 12))
	}
	for i := range twRec.events {
		if twRec.events[i] != vmRec.events[i] {
			t.Fatalf("event %d divergence:\n  treewalk: %s\n  bytecode: %s\ncontext: %v vs %v",
				i, twRec.events[i], vmRec.events[i],
				head(twRec.events[max(0, i-3):], 6), head(vmRec.events[max(0, i-3):], 6))
		}
	}
	return vmRes, vmErr
}

func head(s []string, n int) []string {
	if len(s) > n {
		return s[:n]
	}
	return s
}

func TestVMLoopReduction(t *testing.T) {
	res, err := runBoth(t, `
func main() int {
	var a [64]int;
	var i int;
	var s int;
	for (i = 0; i < 64; i = i + 1) { a[i] = i * 3; }
	for (i = 0; i < 64; i = i + 1) { s = s + a[i]; }
	return s;
}`, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(64 * 63 / 2 * 3); res.Ret.I != want {
		t.Errorf("ret = %d, want %d", res.Ret.I, want)
	}
}

func TestVMNestedLoopsAndCalls(t *testing.T) {
	res, err := runBoth(t, `
func mix(a int, b int) int {
	if (a < b) { return b - a; }
	return a - b;
}
func main() int {
	var i int; var j int; var acc int;
	for (i = 0; i < 20; i = i + 1) {
		for (j = 0; j < 20; j = j + 1) {
			acc = acc + mix(i * j, acc % 97);
		}
	}
	return acc;
}`, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret.I == 0 {
		t.Error("expected nonzero accumulator")
	}
}

func TestVMLCDChain(t *testing.T) {
	// A true loop-carried dependence: s feeds the next iteration through a
	// non-affine recurrence, so IterLoop observations carry real payloads.
	if _, err := runBoth(t, `
func main() int {
	var s int = 7;
	var i int;
	for (i = 0; i < 100; i = i + 1) {
		s = (s * 31 + i) % 1000003;
	}
	return s;
}`, interp.Config{}); err != nil {
		t.Fatal(err)
	}
}

func TestVMFloatKernels(t *testing.T) {
	if _, err := runBoth(t, `
func main() float {
	var x [32]float;
	var i int;
	var s float;
	for (i = 0; i < 32; i = i + 1) { x[i] = float(i) * 0.5; }
	for (i = 0; i < 32; i = i + 1) { s = s + x[i] * x[i]; }
	return sqrt(s) + sin(s) * cos(s);
}`, interp.Config{}); err != nil {
		t.Fatal(err)
	}
}

func TestVMFloatNaNCompares(t *testing.T) {
	// 0/0 is NaN; the tree-walker's composed compares report gt/ge as true
	// on NaN operands, and the VM must reproduce that exactly.
	res, err := runBoth(t, `
func main() int {
	var zero float;
	var nan float = zero / zero;
	var r int;
	if (nan > 1.0)  { r = r + 1; }
	if (nan >= 1.0) { r = r + 10; }
	if (nan < 1.0)  { r = r + 100; }
	if (nan <= 1.0) { r = r + 1000; }
	if (nan == nan) { r = r + 10000; }
	if (nan != nan) { r = r + 100000; }
	return r;
}`, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret.I != 100011 {
		t.Errorf("NaN compare pattern = %d, want 100011", res.Ret.I)
	}
}

func TestVMPhiSwap(t *testing.T) {
	// Fibonacci's (a, b) = (b, a+b) is the classic parallel-move conflict:
	// the staged phi path must not let the first copy clobber the second's
	// source.
	res, err := runBoth(t, `
func main() int {
	var a int = 0;
	var b int = 1;
	var i int;
	for (i = 0; i < 30; i = i + 1) {
		var tmp int = a + b;
		a = b;
		b = tmp;
	}
	return a;
}`, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret.I != 832040 {
		t.Errorf("fib(30) = %d, want 832040", res.Ret.I)
	}
}

func TestVMRecursionAndDepthLimit(t *testing.T) {
	if _, err := runBoth(t, `
func fib(n int) int {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
func main() int { return fib(15); }`, interp.Config{}); err != nil {
		t.Fatal(err)
	}
	// Unbounded recursion trips the call-depth budget identically.
	_, err := runBoth(t, `
func down(n int) int { return down(n + 1); }
func main() int { return down(0); }`, interp.Config{})
	if err == nil || !strings.Contains(err.Error(), "budget 10000") {
		t.Errorf("want call-depth budget error, got %v", err)
	}
}

func TestVMBuiltinsAndPrints(t *testing.T) {
	if _, err := runBoth(t, `
func main() int {
	srand(42);
	var i int;
	var s int;
	for (i = 0; i < 10; i = i + 1) { s = s + rand() % 100; }
	print_i64(s);
	print_f64(pow(2.0, 10.0));
	print_i64(min(3, max(s, 7)));
	print_i64(abs(0 - s));
	return s;
}`, interp.Config{}); err != nil {
		t.Fatal(err)
	}
}

func TestVMHeapAndGlobals(t *testing.T) {
	if _, err := runBoth(t, `
var table [16]int;
var seed int = 3;
var scale float = 0.25;
func main() float {
	var p *int = alloc(32);
	var i int;
	for (i = 0; i < 32; i = i + 1) { p[i] = i + seed * (i % 4); }
	for (i = 0; i < 16; i = i + 1) { table[i] = p[i * 2]; }
	var s float;
	for (i = 0; i < 16; i = i + 1) { s = s + float(table[i]) * scale; }
	return s;
}`, interp.Config{}); err != nil {
		t.Fatal(err)
	}
}

func TestVMTrapParity(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"div-zero", `func main() int { var d int; return 7 / d; }`, "division by zero"},
		{"rem-zero", `func main() int { var d int; return 7 % d; }`, "remainder by zero"},
		{"null-load", `func main() int { var p *int; return *p; }`, "null pointer"},
		{"null-store", `func main() int { var p *int; *p = 1; return 0; }`, "null pointer"},
		{"unmapped", `
var a [4]int;
func main() int {
	var p *int = a;
	p = p + 1000000;
	return *p;
}`, "unmapped"},
		{"neg-alloc", `func main() int { var n int = 0 - 5; var p *int = alloc(n); return *p; }`, "negative"},
		{"stack-overflow", `
func grow(n int) int {
	var pad [4096]int;
	pad[0] = n;
	if (n <= 0) { return pad[0]; }
	return grow(n - 1) + pad[0];
}
func main() int { return grow(100000); }`, "stack overflow"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := runBoth(t, tc.src, interp.Config{})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

func TestVMTrapInsideLoop(t *testing.T) {
	// The trap fires mid-iteration: both engines must agree on the step
	// count embedded in the error (same ticks charged up to the fault).
	_, err := runBoth(t, `
func main() int {
	var i int;
	var s int;
	for (i = 0; i < 100; i = i + 1) {
		s = s + 1000 / (50 - i);
	}
	return s;
}`, interp.Config{})
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("want division by zero, got %v", err)
	}
}

func TestVMStepLimitParity(t *testing.T) {
	src := `
func main() int {
	var i int;
	var s int;
	for (i = 0; i < 1000000; i = i + 1) { s = s + i * i; }
	return s;
}`
	// Sweep budgets so the limit trips at different instruction positions
	// (mid-block, on a phi copy, on a branch); the LimitError carries the
	// trip step, so any tick-accounting drift fails the text comparison.
	for _, budget := range []int64{1, 2, 3, 7, 50, 51, 52, 53, 54, 55, 500, 5001} {
		_, err := runBoth(t, src, interp.Config{MaxSteps: budget})
		if err == nil || !strings.Contains(err.Error(), "step limit") &&
			!strings.Contains(err.Error(), fmt.Sprint(budget)) {
			t.Errorf("budget %d: want step-limit error, got %v", budget, err)
		}
	}
}

func TestVMHeapExhaustionParity(t *testing.T) {
	_, err := runBoth(t, `
func main() int {
	var i int;
	var p *int;
	for (i = 0; i < 100000; i = i + 1) { p = alloc(1 << 20); }
	return *p;
}`, interp.Config{MaxHeapCells: 1 << 22})
	if err == nil || !strings.Contains(err.Error(), "heap exhausted") {
		t.Errorf("want heap exhaustion, got %v", err)
	}
}

func TestVMEarlyReturnExitsNestedLoops(t *testing.T) {
	if _, err := runBoth(t, `
func find(limit int) int {
	var i int; var j int;
	for (i = 0; i < 50; i = i + 1) {
		for (j = 0; j < 50; j = j + 1) {
			if (i * j > limit) { return i * 100 + j; }
		}
	}
	return 0 - 1;
}
func main() int { return find(1000); }`, interp.Config{}); err != nil {
		t.Fatal(err)
	}
}

func TestVMBreakAndContinue(t *testing.T) {
	if _, err := runBoth(t, `
func main() int {
	var i int; var s int;
	for (i = 0; i < 1000; i = i + 1) {
		if (i % 3 == 0) { continue; }
		if (i > 500) { break; }
		s = s + i;
	}
	return s;
}`, interp.Config{}); err != nil {
		t.Fatal(err)
	}
}

func TestVMWhileLoopLCDThroughMemory(t *testing.T) {
	if _, err := runBoth(t, `
var hist [8]int;
func main() int {
	var i int = 1;
	while (i < 512) {
		hist[i % 8] = hist[(i - 1) % 8] + i;
		i = i * 2;
	}
	return hist[7] + hist[0];
}`, interp.Config{}); err != nil {
		t.Fatal(err)
	}
}

func TestVMResetReproducesRun(t *testing.T) {
	info := analyze(t, `
func main() int {
	srand(7);
	var i int; var s int;
	for (i = 0; i < 50; i = i + 1) { s = s + rand() % 10; }
	return s;
}`)
	prog, err := For(info)
	if err != nil {
		t.Fatal(err)
	}
	vm := NewVM(prog, interp.Config{})
	first, err := vm.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		vm.Reset()
		again, err := vm.Run("main")
		if err != nil {
			t.Fatal(err)
		}
		if again != first {
			t.Fatalf("run %d after Reset: %+v, want %+v", i, again, first)
		}
	}
}

func TestVMResetZeroAllocSteadyState(t *testing.T) {
	info := analyze(t, `
func inner(x int) int { return x * x + 1; }
func main() int {
	var a [32]int;
	var i int; var s int;
	for (i = 0; i < 32; i = i + 1) { a[i] = inner(i); }
	for (i = 0; i < 32; i = i + 1) { s = s + a[i]; }
	return s;
}`)
	prog, err := For(info)
	if err != nil {
		t.Fatal(err)
	}
	vm := NewVM(prog, interp.Config{})
	if _, err := vm.Run("main"); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		vm.Reset()
		if _, err := vm.Run("main"); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Run allocates %v objects/op, want 0", allocs)
	}
}

func TestVMRunErrors(t *testing.T) {
	info := analyze(t, `func main() int { return 1; }`)
	prog, err := For(info)
	if err != nil {
		t.Fatal(err)
	}
	vm := NewVM(prog, interp.Config{})
	if _, err := vm.Run("nope"); err == nil || !strings.Contains(err.Error(), `no function "nope"`) {
		t.Errorf("want no-function error, got %v", err)
	}
	if _, err := vm.Run("main", interp.IntVal(1)); err == nil || !strings.Contains(err.Error(), "takes 0 args, got 1") {
		t.Errorf("want arity error, got %v", err)
	}
}

func TestForMemoizesCompilation(t *testing.T) {
	info := analyze(t, `func main() int { return 41 + 1; }`)
	p1, err := For(info)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := For(info)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("For recompiled instead of memoizing")
	}
}

func TestLoweringStats(t *testing.T) {
	info := analyze(t, `
func main() int {
	var a [64]int;
	var i int; var s int;
	for (i = 0; i < 64; i = i + 1) { a[i] = i; }
	for (i = 0; i < 64; i = i + 1) { s = s + a[i]; }
	return s;
}`)
	prog, err := For(info)
	if err != nil {
		t.Fatal(err)
	}
	if prog.StaticInsts() == 0 {
		t.Fatal("no instructions lowered")
	}
	counts := prog.OpCounts()
	if counts["store.idx"] == 0 {
		t.Errorf("expected fused addptr+store, got %v", counts)
	}
	if counts["br.lt.i"] == 0 && counts["br.ge.i"] == 0 {
		t.Errorf("expected fused compare+branch, got %v", counts)
	}
	if prog.FusedInsts() == 0 {
		t.Error("no superinstructions recorded")
	}
	if !strings.Contains(prog.Disasm(), "func @main") {
		t.Error("Disasm missing function header")
	}
}

func TestVMGlobalBudgetParity(t *testing.T) {
	// The global segment alone exceeds the memory budget: both engines
	// defer the fault to Run with identical text.
	_, err := runBoth(t, `
var huge [100000]int;
func main() int { return huge[0]; }`, interp.Config{MaxHeapCells: 1024})
	if err == nil || !strings.Contains(err.Error(), "globals exceed the memory budget") {
		t.Errorf("want global budget error, got %v", err)
	}
}
