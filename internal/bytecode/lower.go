package bytecode

import (
	"fmt"

	"loopapalooza/internal/analysis"
	"loopapalooza/internal/interp"
	"loopapalooza/internal/ir"
)

// Compile lowers every function of an analyzed module to bytecode. The
// module must be in the analysis pipeline's canonical form (or loop-free):
// loop events are resolved statically per CFG edge, which is only sound
// when every loop entry runs through its header and all back edges run
// through the unique latch — exactly what LoopSimplify guarantees.
func Compile(info *analysis.ModuleInfo) (*Program, error) {
	p := &Program{
		info:       info,
		mod:        info.Mod,
		byName:     make(map[string]*funcCode, len(info.Mod.Funcs)),
		funcIdx:    make(map[*ir.Function]int32, len(info.Mod.Funcs)),
		builtinIdx: map[string]int32{},
	}
	// Global addresses replicate the interpreter's deterministic layout
	// (declaration order from GlobalBase). The budget check stays in NewVM:
	// it depends on the per-run heap configuration, not the module.
	gaddr := make(map[*ir.Global]int64, len(p.mod.Globals))
	total := int64(0)
	for _, g := range p.mod.Globals {
		gaddr[g] = interp.GlobalBase + total
		total += g.Size
	}
	for i, f := range p.mod.Funcs {
		p.funcIdx[f] = int32(i)
	}
	for _, f := range p.mod.Funcs {
		// The analysis pipeline numbers every function; cover hand-built
		// modules that skip it (same as interp.New).
		if !f.Numbered() {
			f.NumberValues()
		}
		fc, err := lowerFunc(p, f, gaddr)
		if err != nil {
			return nil, fmt.Errorf("bytecode: @%s: %w", f.Name, err)
		}
		p.funcs = append(p.funcs, fc)
		p.byName[f.Name] = fc
	}
	for _, fc := range p.funcs {
		for _, in := range fc.code {
			p.opCounts[in.Op]++
		}
	}
	return p, nil
}

// constKey identifies a constant for pool dedup. Floats key on their bit
// pattern so -0.0 and 0.0 stay distinct and NaNs never merge.
type constKey struct {
	k    ir.Kind
	bits uint64
}

// pendingTarget marks an instruction whose A operand is a block (by
// position in blockStart) awaiting resolution to a pc.
type pendingTarget struct {
	pc  int32
	blk *ir.Block
}

type lowerer struct {
	p     *Program
	fi    *analysis.FuncInfo // nil for functions outside the analysis
	fn    *ir.Function
	gaddr map[*ir.Global]int64
	fc    *funcCode

	code       []Inst
	constSlots map[constKey]int32
	constPool  []interp.Val
	uses       map[*ir.Instr]int
	blockStart map[*ir.Block]int32
	patches    []pendingTarget
	iterDesc   map[*analysis.LoopMeta]int32
}

func lowerFunc(p *Program, fn *ir.Function, gaddr map[*ir.Global]int64) (*funcCode, error) {
	lw := &lowerer{
		p:          p,
		fi:         p.info.Funcs[fn],
		fn:         fn,
		gaddr:      gaddr,
		fc:         &funcCode{fn: fn},
		constSlots: map[constKey]int32{},
		uses:       map[*ir.Instr]int{},
		blockStart: make(map[*ir.Block]int32, len(fn.Blocks)),
		iterDesc:   map[*analysis.LoopMeta]int32{},
	}
	fc := lw.fc
	fc.arity = len(fn.Params)
	fc.numRegs = fn.NumRegs()
	// Frame layout: ir slots, then phi staging temporaries (enough for the
	// widest phi run), then the constant pool (appended during lowering).
	maxPhis := 0
	for _, b := range fn.Blocks {
		if n := b.FirstNonPhi(); n > maxPhis {
			maxPhis = n
		}
		for _, i := range b.Instrs {
			for _, a := range i.Args {
				if d, ok := a.(*ir.Instr); ok {
					lw.uses[d]++
				}
			}
		}
	}
	fc.tmpBase = fc.numRegs
	fc.constBase = fc.numRegs + maxPhis

	if len(fn.Blocks) == 0 {
		return nil, fmt.Errorf("function has no blocks")
	}
	entry := fn.Entry()
	// Function start is an arrival at the entry block with no predecessor:
	// when the entry is itself a loop header, the tree-walker fires
	// EnterLoop with a cleared init buffer before executing it.
	if lm := lw.metaOf(entry); lm != nil {
		srcs := make([]int32, len(lm.Observed))
		for k := range srcs {
			srcs[k] = -1
		}
		fc.enters = append(fc.enters, loopEnter{lm: lm, srcs: srcs})
		lw.code = append(lw.code, Inst{Op: opLoopEnter, A: int32(len(fc.enters) - 1)})
	}
	for _, b := range fn.Blocks {
		if err := lw.lowerBlock(b); err != nil {
			return nil, fmt.Errorf("block .%s: %w", b.Name, err)
		}
	}
	for _, pt := range lw.patches {
		start, ok := lw.blockStart[pt.blk]
		if !ok {
			return nil, fmt.Errorf("jump to unknown block .%s", pt.blk.Name)
		}
		lw.code[pt.pc].A = start
	}
	fc.code = optimize(lw.code)
	fc.consts = lw.constPool
	fc.frameSize = fc.constBase + len(fc.consts)
	return fc, nil
}

// reg resolves an ir.Value to a frame register index: params and
// instruction results use their dense slots, constants and globals intern
// into the per-function constant pool.
func (lw *lowerer) reg(v ir.Value) (int32, error) {
	switch x := v.(type) {
	case *ir.Param:
		return int32(x.Index), nil
	case *ir.Instr:
		if x.Slot < 0 {
			return 0, fmt.Errorf("instruction %%%s has no register slot", x.Nm)
		}
		return int32(x.Slot), nil
	case *ir.IntConst:
		return lw.constSlot(interp.IntVal(x.V)), nil
	case *ir.FloatConst:
		return lw.constSlot(interp.FloatVal(x.V)), nil
	case *ir.BoolConst:
		return lw.constSlot(interp.BoolVal(x.V)), nil
	case *ir.NullConst:
		return lw.constSlot(interp.PtrVal(interp.NullAddr)), nil
	case *ir.Global:
		return lw.constSlot(interp.PtrVal(lw.gaddr[x])), nil
	}
	return 0, fmt.Errorf("unknown value %T", v)
}

func (lw *lowerer) constSlot(v interp.Val) int32 {
	key := constKey{k: v.K, bits: v.Bits()}
	if s, ok := lw.constSlots[key]; ok {
		return s
	}
	s := int32(lw.fc.constBase + len(lw.constPool))
	lw.constSlots[key] = s
	lw.constPool = append(lw.constPool, v)
	return s
}

// metaOf mirrors the tree-walker's header lookup: the dense MetaByBlock
// index when it covers the block, the HeaderMeta map otherwise.
func (lw *lowerer) metaOf(b *ir.Block) *analysis.LoopMeta {
	if lw.fi == nil {
		return nil
	}
	if mb := lw.fi.MetaByBlock; b.Index < len(mb) {
		return mb[b.Index]
	}
	return lw.fi.HeaderMeta[b]
}

func (lw *lowerer) emit(in Inst) { lw.code = append(lw.code, in) }

// emitPending emits a control transfer whose A target is the start of blk,
// resolved after all blocks are laid out.
func (lw *lowerer) emitPending(op Op, blk *ir.Block) {
	lw.patches = append(lw.patches, pendingTarget{pc: int32(len(lw.code)), blk: blk})
	lw.emit(Inst{Op: op})
}

func (lw *lowerer) lowerBlock(b *ir.Block) error {
	lw.blockStart[b] = int32(len(lw.code))
	ins := b.Instrs
	for k := b.FirstNonPhi(); k < len(ins); k++ {
		i := ins[k]
		switch i.Op {
		case ir.OpJmp:
			return lw.lowerJmp(b, i)
		case ir.OpBr:
			cond, err := lw.reg(i.Args[0])
			if err != nil {
				return err
			}
			return lw.lowerBr(b, i, Inst{Op: opBr, B: cond})
		case ir.OpRet:
			return lw.lowerRet(b, i)
		case ir.OpPhi:
			return fmt.Errorf("phi %%%s after the phi prefix", i.Nm)
		}
		if k+1 < len(ins) {
			next := ins[k+1]
			if brOp, ok := fuseCmpBr(i, next, lw.uses[i]); ok {
				x, err := lw.reg(i.Args[0])
				if err != nil {
					return err
				}
				y, err := lw.reg(i.Args[1])
				if err != nil {
					return err
				}
				return lw.lowerBr(b, next, Inst{Op: brOp, B: x, C: y})
			}
			if fused, err := lw.tryFusePair(i, next); err != nil {
				return err
			} else if fused {
				k++
				continue
			}
		}
		if err := lw.emitInstr(i); err != nil {
			return err
		}
	}
	return fmt.Errorf("no terminator")
}

// fuseCmpBr reports whether cmp+br lower to a single fused branch: the
// compare immediately precedes the branch, feeds its condition, and has no
// other use (so skipping its register write is unobservable).
func fuseCmpBr(cmp, br *ir.Instr, cmpUses int) (Op, bool) {
	if !cmp.Op.IsCompare() || br.Op != ir.OpBr || cmpUses != 1 || br.Args[0] != cmp {
		return opInvalid, false
	}
	isF := cmp.Args[0].Type().Kind() == ir.KFloat
	var op Op
	switch cmp.Op {
	case ir.OpEq:
		op = opBrEqI
	case ir.OpNe:
		op = opBrNeI
	case ir.OpLt:
		op = opBrLtI
	case ir.OpLe:
		op = opBrLeI
	case ir.OpGt:
		op = opBrGtI
	case ir.OpGe:
		op = opBrGeI
	default:
		return opInvalid, false
	}
	if isF {
		op += opBrEqF - opBrEqI
	}
	return op, true
}

// tryFusePair lowers addptr+load, addptr+store, and load+add pairs into
// superinstructions when the intermediate value is single-use and adjacent.
func (lw *lowerer) tryFusePair(i, next *ir.Instr) (bool, error) {
	if lw.uses[i] != 1 {
		return false, nil
	}
	switch {
	case i.Op == ir.OpAddPtr && next.Op == ir.OpLoad && next.Args[0] == i:
		base, err := lw.reg(i.Args[0])
		if err != nil {
			return false, err
		}
		idx, err := lw.reg(i.Args[1])
		if err != nil {
			return false, err
		}
		lw.emit(Inst{Op: opLoadIdx, K: uint8(next.Ty.Kind()), A: int32(next.Slot), B: base, C: idx})
		return true, nil
	case i.Op == ir.OpAddPtr && next.Op == ir.OpStore && next.Args[0] == i:
		base, err := lw.reg(i.Args[0])
		if err != nil {
			return false, err
		}
		idx, err := lw.reg(i.Args[1])
		if err != nil {
			return false, err
		}
		val, err := lw.reg(next.Args[1])
		if err != nil {
			return false, err
		}
		lw.emit(Inst{Op: opStoreIdx, A: val, B: base, C: idx})
		return true, nil
	case i.Op == ir.OpLoad && (next.Op == ir.OpAdd || next.Op == ir.OpFAdd) && next.Args[0] == i:
		addr, err := lw.reg(i.Args[0])
		if err != nil {
			return false, err
		}
		other, err := lw.reg(next.Args[1])
		if err != nil {
			return false, err
		}
		op := opLoadAddI
		if next.Op == ir.OpFAdd {
			op = opLoadAddF
		}
		lw.emit(Inst{Op: op, A: int32(next.Slot), B: addr, C: other})
		return true, nil
	}
	return false, nil
}

// lowerJmp lowers an unconditional terminator: the jump's tick, the edge
// trampoline (loop events + phi moves), and the transfer. An empty
// trampoline collapses to a single ticking jump.
func (lw *lowerer) lowerJmp(b *ir.Block, i *ir.Instr) error {
	tgt := i.Blocks[0]
	mark := len(lw.code)
	lw.emit(Inst{Op: opTick, A: 1})
	if err := lw.emitEdge(b, tgt); err != nil {
		return err
	}
	if len(lw.code) == mark+1 {
		lw.code = lw.code[:mark]
		lw.emitPending(opJmp, tgt)
		return nil
	}
	lw.emitPending(opGoto, tgt)
	return nil
}

// lowerBr lowers a conditional terminator (plain or compare-fused): the
// branch instruction with the taken path as its target, then the
// fall-through (else) edge region, then the taken (then) edge region.
func (lw *lowerer) lowerBr(b *ir.Block, br *ir.Instr, brInst Inst) error {
	brPC := len(lw.code)
	lw.emit(brInst)
	if err := lw.emitEdge(b, br.Blocks[1]); err != nil {
		return err
	}
	lw.emitPending(opGoto, br.Blocks[1])
	lw.code[brPC].A = int32(len(lw.code))
	if err := lw.emitEdge(b, br.Blocks[0]); err != nil {
		return err
	}
	lw.emitPending(opGoto, br.Blocks[0])
	return nil
}

// lowerRet lowers a return: leaving the function exits every loop
// containing the returning block, innermost first.
func (lw *lowerer) lowerRet(b *ir.Block, i *ir.Instr) error {
	ret := int32(-1)
	if len(i.Args) == 1 {
		r, err := lw.reg(i.Args[0])
		if err != nil {
			return err
		}
		ret = r
	}
	base := int32(len(lw.fc.exits))
	n := int32(0)
	if lw.fi != nil && lw.fi.Forest != nil {
		for l := lw.fi.Forest.LoopOf(b); l != nil; l = l.Parent {
			if lm := lw.fi.HeaderMeta[l.Header]; lm != nil {
				lw.fc.exits = append(lw.fc.exits, lm)
				n++
			}
		}
	}
	lw.emit(Inst{Op: opRet, A: ret, B: base, C: n})
	return nil
}

// emitEdge lowers the trampoline for a control transfer p->c: loop exits
// (innermost first), then the loop enter/iterate event when c is a header,
// then the phi parallel moves — the tree-walker's exact event order.
func (lw *lowerer) emitEdge(p, c *ir.Block) error {
	if lw.fi != nil {
		// Exits: loops containing p but not c. The dynamic loop stack at p
		// holds exactly the loops containing p (canonical form: every loop
		// entry runs through its header), so popping non-containing loops
		// equals walking the nest from the innermost until one contains c.
		if lw.fi.Forest != nil {
			base, n := int32(len(lw.fc.exits)), int32(0)
			for l := lw.fi.Forest.LoopOf(p); l != nil && !l.Contains(c); l = l.Parent {
				if lm := lw.fi.HeaderMeta[l.Header]; lm != nil {
					lw.fc.exits = append(lw.fc.exits, lm)
					n++
				}
			}
			if n > 0 {
				lw.emit(Inst{Op: opLoopExit, A: base, B: n})
			}
		}
		if lm := lw.metaOf(c); lm != nil {
			if lm.Loop.Contains(p) {
				// Back edge: the iteration observation reads the latch
				// incomings, one descriptor per loop.
				idx, ok := lw.iterDesc[lm]
				if !ok {
					d := loopIter{lm: lm}
					for _, inc := range lm.ObservedLatch {
						if inc == nil {
							return fmt.Errorf("loop %s: observed phi has no latch incoming", lm.ID())
						}
						s, err := lw.reg(inc)
						if err != nil {
							return err
						}
						ts := int32(-1)
						if ii, ok := inc.(*ir.Instr); ok {
							ts = int32(ii.Slot)
						}
						d.srcs = append(d.srcs, s)
						d.ticks = append(d.ticks, ts)
					}
					idx = int32(len(lw.fc.iters))
					lw.fc.iters = append(lw.fc.iters, d)
					lw.iterDesc[lm] = idx
				}
				lw.emit(Inst{Op: opLoopIter, A: idx})
			} else {
				// Loop entry: iteration-zero values are the phi incomings
				// along this edge (-1 = no incoming, reads as zero).
				d := loopEnter{lm: lm, srcs: make([]int32, len(lm.Observed))}
				for k, phi := range lm.Observed {
					d.srcs[k] = -1
					if inc := phi.PhiIncoming(p); inc != nil {
						s, err := lw.reg(inc)
						if err != nil {
							return err
						}
						d.srcs[k] = s
					}
				}
				lw.emit(Inst{Op: opLoopEnter, A: int32(len(lw.fc.enters))})
				lw.fc.enters = append(lw.fc.enters, d)
			}
		}
	}
	nPhi := c.FirstNonPhi()
	if nPhi == 0 {
		return nil
	}
	base := len(lw.fc.moves)
	direct := true
	for k := 0; k < nPhi; k++ {
		phi := c.Instrs[k]
		inc := phi.PhiIncoming(p)
		if inc == nil {
			return fmt.Errorf("phi %%%s has no incoming from .%s", phi.Nm, p.Name)
		}
		src, err := lw.reg(inc)
		if err != nil {
			return err
		}
		// A source that an earlier move in the run overwrites forces the
		// stage-then-commit form (parallel assignment semantics).
		for j := base; j < len(lw.fc.moves); j++ {
			if lw.fc.moves[j].dst == src {
				direct = false
			}
		}
		lw.fc.moves = append(lw.fc.moves, phiMove{dst: int32(phi.Slot), src: src})
	}
	if direct {
		lw.emit(Inst{Op: opPhiCopy, A: int32(base), B: int32(nPhi)})
	} else {
		lw.emit(Inst{Op: opPhiStage, A: int32(base), B: int32(nPhi), C: int32(lw.fc.tmpBase)})
		lw.emit(Inst{Op: opPhiCommit, A: int32(base), B: int32(nPhi), C: int32(lw.fc.tmpBase)})
	}
	return nil
}

// emitInstr lowers one non-fused body instruction.
func (lw *lowerer) emitInstr(i *ir.Instr) error {
	bin := func(op Op) error {
		x, err := lw.reg(i.Args[0])
		if err != nil {
			return err
		}
		y, err := lw.reg(i.Args[1])
		if err != nil {
			return err
		}
		lw.emit(Inst{Op: op, A: int32(i.Slot), B: x, C: y})
		return nil
	}
	un := func(op Op) error {
		x, err := lw.reg(i.Args[0])
		if err != nil {
			return err
		}
		lw.emit(Inst{Op: op, A: int32(i.Slot), B: x})
		return nil
	}
	switch i.Op {
	case ir.OpAdd:
		return bin(opAddI)
	case ir.OpSub:
		return bin(opSubI)
	case ir.OpMul:
		return bin(opMulI)
	case ir.OpDiv:
		return bin(opDivI)
	case ir.OpRem:
		return bin(opRemI)
	case ir.OpAnd:
		return bin(opAndI)
	case ir.OpOr:
		return bin(opOrI)
	case ir.OpXor:
		return bin(opXorI)
	case ir.OpShl:
		return bin(opShlI)
	case ir.OpShr:
		return bin(opShrI)
	case ir.OpFAdd:
		return bin(opAddF)
	case ir.OpFSub:
		return bin(opSubF)
	case ir.OpFMul:
		return bin(opMulF)
	case ir.OpFDiv:
		return bin(opDivF)
	case ir.OpNeg:
		return un(opNegI)
	case ir.OpFNeg:
		return un(opNegF)
	case ir.OpNot:
		return un(opNotB)
	case ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
		// Specialize on the operands' static kind: bools and pointers
		// compare on the integer payload, like the tree-walker's dynamic
		// dispatch (which can only differ under type punning the frontend
		// never produces).
		op := opEqI + Op(i.Op-ir.OpEq)
		if i.Args[0].Type().Kind() == ir.KFloat {
			op = opEqF + Op(i.Op-ir.OpEq)
		}
		return bin(op)
	case ir.OpIntToFloat:
		return un(opItoF)
	case ir.OpFloatToInt:
		return un(opFtoI)
	case ir.OpAlloca:
		return un(opAlloca)
	case ir.OpLoad:
		x, err := lw.reg(i.Args[0])
		if err != nil {
			return err
		}
		lw.emit(Inst{Op: opLoad, K: uint8(i.Ty.Kind()), A: int32(i.Slot), B: x})
		return nil
	case ir.OpStore:
		addr, err := lw.reg(i.Args[0])
		if err != nil {
			return err
		}
		val, err := lw.reg(i.Args[1])
		if err != nil {
			return err
		}
		lw.emit(Inst{Op: opStore, A: val, B: addr})
		return nil
	case ir.OpAddPtr:
		return bin(opAddPtr)
	case ir.OpCall:
		return lw.emitCall(i)
	}
	return fmt.Errorf("unhandled opcode %s", i.Op)
}

func (lw *lowerer) emitCall(i *ir.Instr) error {
	dst := int32(-1)
	if i.Ty.Kind() != ir.KVoid {
		dst = int32(i.Slot)
	}
	argBase := int32(len(lw.fc.argRegs))
	for _, a := range i.Args {
		s, err := lw.reg(a)
		if err != nil {
			return err
		}
		lw.fc.argRegs = append(lw.fc.argRegs, s)
	}
	if i.Callee != nil {
		fidx, ok := lw.p.funcIdx[i.Callee]
		if !ok {
			return fmt.Errorf("call to unknown function @%s", i.Callee.Name)
		}
		if len(i.Args) != len(i.Callee.Params) {
			return fmt.Errorf("call to @%s passes %d args, want %d",
				i.Callee.Name, len(i.Args), len(i.Callee.Params))
		}
		lw.emit(Inst{Op: opCall, A: dst, B: fidx, C: argBase})
		return nil
	}
	bi, ok := ir.BuiltinAttr(i.Builtin)
	if !ok {
		return fmt.Errorf("unknown builtin %q", i.Builtin)
	}
	// The tree-walker evaluates at most two arguments (no registered
	// builtin takes more); mirror the clamp.
	n := len(i.Args)
	if n > 2 {
		n = 2
	}
	bidx := lw.p.internBuiltin(i.Builtin, bi.Cost)
	lw.emit(Inst{Op: opCallB, K: uint8(n), A: dst, B: bidx, C: argBase})
	return nil
}

func (p *Program) internBuiltin(name string, cost int64) int32 {
	if idx, ok := p.builtinIdx[name]; ok {
		return idx
	}
	idx := int32(len(p.builtins))
	p.builtins = append(p.builtins, builtinRef{name: name, cost: cost})
	p.builtinIdx[name] = idx
	return idx
}

// optimize threads jumps through goto chains, elides untargeted
// goto-to-next instructions, and compacts the stream, iterating to a
// fixpoint (bounded — each round strictly shrinks the code).
func optimize(code []Inst) []Inst {
	for round := 0; round < len(code); round++ {
		// Thread every pc target through chains of internal gotos: landing
		// on a goto just redirects, so jump straight to its destination.
		for pc := range code {
			if !code[pc].Op.hasPCTarget() {
				continue
			}
			t := code[pc].A
			for hops := 0; hops < len(code) && code[t].Op == opGoto && code[t].A != t; hops++ {
				t = code[t].A
			}
			code[pc].A = t
		}
		// A goto that transfers to the next instruction and is not itself
		// a jump target is a no-op: remove it. (Threading above retargeted
		// everything that pointed at a goto, so targets survive removal.)
		targeted := make([]bool, len(code))
		for pc := range code {
			if code[pc].Op.hasPCTarget() {
				targeted[code[pc].A] = true
			}
		}
		newPC := make([]int32, len(code))
		kept := code[:0]
		removed := false
		for pc := range code {
			newPC[pc] = int32(len(kept))
			if code[pc].Op == opGoto && code[pc].A == int32(pc+1) && !targeted[pc] {
				removed = true
				continue
			}
			kept = append(kept, code[pc])
		}
		code = kept
		for pc := range code {
			if code[pc].Op.hasPCTarget() {
				code[pc].A = newPC[code[pc].A]
			}
		}
		if !removed {
			break
		}
	}
	return code
}
