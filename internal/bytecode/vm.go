package bytecode

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"loopapalooza/internal/interp"
	"loopapalooza/internal/ir"
)

// VM executes a compiled Program. One VM is one execution context (like
// one Interp): it owns the simulated memory, the clock, and the frame
// pool, and is not safe for concurrent use. The Program it runs is shared
// and immutable.
//
// Semantics are bit-for-bit the tree-walking interpreter's: the same tick
// accounting (and therefore the same step-limit trip points), the same
// hook event order and payloads, the same error taxonomy and messages.
// The differential oracle in internal/bench holds the two engines to
// that contract over the full benchmark corpus.
type VM struct {
	prog  *Program
	hooks interp.Hooks
	out   io.Writer
	mem   *interp.Memory

	clock    int64
	flushed  int64 // clock value at the last hooks.Tick flush
	maxSteps int64
	limitAt  int64 // first clock value over the step budget (saturated)
	checkAt  int64 // min(limitAt, nextPoll): single hot-path comparison
	nextPoll int64
	ctx      context.Context
	deadline time.Time
	depth    int

	randState uint64

	// initErr defers module-shape faults found during NewVM (which cannot
	// fail) to the first Run call, like interp.New.
	initErr     error
	globalImage []interp.Val

	// Zero-allocation steady state: frames pool, scratch event buffers,
	// and a fixed builtin argument buffer.
	frames  []*frame
	obsBuf  []interp.LCDObs
	initBuf []interp.Val
	biBuf   [2]interp.Val
}

// frame is one activation record over the flat register file: ir slots,
// phi staging temporaries, then the preloaded constant pool.
type frame struct {
	regs    []interp.Val
	ticks   []int64
	savedSP int64
}

// vmErr carries execution errors through panic/recover.
type vmErr struct{ err error }

// NewVM prepares an execution context for a compiled program: it lays out
// and initializes the global segment under the configured memory budget
// (identically to interp.New) and arms the amortized poll schedule.
func NewVM(p *Program, cfg interp.Config) *VM {
	vm := &VM{
		prog:      p,
		hooks:     cfg.Hooks,
		out:       cfg.Out,
		maxSteps:  cfg.MaxSteps,
		ctx:       cfg.Ctx,
		deadline:  cfg.Deadline,
		randState: interp.RandSeed,
	}
	if vm.hooks == nil {
		vm.hooks = interp.NopHooks{}
	}
	if vm.out == nil {
		vm.out = io.Discard
	}
	if vm.maxSteps == 0 {
		vm.maxSteps = interp.DefaultMaxSteps
	}
	vm.limitAt = math.MaxInt64
	if vm.maxSteps < math.MaxInt64 {
		vm.limitAt = vm.maxSteps + 1
	}
	if vm.ctx != nil || !vm.deadline.IsZero() {
		vm.nextPoll = interp.PollInterval
	} else {
		vm.nextPoll = math.MaxInt64
	}
	vm.checkAt = min(vm.limitAt, vm.nextPoll)

	globalCap := cfg.MaxHeapCells
	if globalCap <= 0 {
		globalCap = interp.DefaultHeapWords
	}
	total := int64(0)
	for _, g := range p.mod.Globals {
		if g.Size < 0 || total > globalCap-g.Size {
			vm.initErr = fmt.Errorf("globals exceed the memory budget: %w",
				&interp.LimitError{Kind: interp.ErrMemLimit, Limit: globalCap})
			vm.mem = interp.NewMemory(0, cfg.MaxHeapCells)
			return vm
		}
		total += g.Size
	}
	img := make([]interp.Val, total)
	base := int64(0)
	for _, g := range p.mod.Globals {
		k := g.Elem.Kind()
		for i, v := range g.InitInt {
			img[base+int64(i)] = interp.Val{K: k, I: v}
		}
		for i, v := range g.InitFloat {
			img[base+int64(i)] = interp.FloatVal(v)
		}
		base += g.Size
	}
	vm.globalImage = img
	vm.mem = interp.NewMemory(total, cfg.MaxHeapCells)
	vm.mem.Reset(img)
	return vm
}

// Reset returns the VM to its initial state, keeping the pooled frames,
// scratch buffers, and memory segments for reuse: repeated executions of
// the same program reach a zero-allocation steady state.
func (vm *VM) Reset() {
	vm.clock, vm.flushed, vm.depth = 0, 0, 0
	vm.randState = interp.RandSeed
	if vm.ctx != nil || !vm.deadline.IsZero() {
		vm.nextPoll = interp.PollInterval
	} else {
		vm.nextPoll = math.MaxInt64
	}
	vm.checkAt = min(vm.limitAt, vm.nextPoll)
	if vm.initErr == nil {
		vm.mem.Reset(vm.globalImage)
	}
}

// Clock returns the current dynamic instruction count.
func (vm *VM) Clock() int64 { return vm.clock }

// Run executes fn ("main" by convention) with the given arguments and
// returns its result and the dynamic instruction count.
func (vm *VM) Run(fnName string, args ...interp.Val) (res interp.Result, err error) {
	if vm.initErr != nil {
		return interp.Result{}, fmt.Errorf("interp: %w", vm.initErr)
	}
	fc := vm.prog.byName[fnName]
	if fc == nil {
		return interp.Result{}, fmt.Errorf("interp: no function %q", fnName)
	}
	if len(args) != fc.arity {
		return interp.Result{}, fmt.Errorf("interp: %s takes %d args, got %d", fnName, fc.arity, len(args))
	}
	defer func() {
		if r := recover(); r != nil {
			re, ok := r.(vmErr)
			if !ok {
				panic(r)
			}
			// The unwind skipped the call-site decrements; reset so a
			// reused VM starts from a clean depth.
			vm.depth = 0
			err = fmt.Errorf("interp: %w", re.err)
		}
	}()
	if vm.depth++; vm.depth > interp.MaxCallDepth {
		vm.failErr(&interp.LimitError{Kind: interp.ErrMemLimit, Limit: interp.MaxCallDepth, Step: vm.clock})
	}
	fr := vm.newFrame(fc)
	copy(fr.regs, args)
	ret := vm.exec(fc, fr)
	vm.freeFrame(fr)
	vm.depth--
	vm.flushTicks()
	return interp.Result{Ret: ret, Steps: vm.clock}, nil
}

// fail aborts the run with a guest-program fault (ErrRuntime class).
func (vm *VM) fail(format string, args ...any) {
	vm.failErr(&interp.RuntimeError{Msg: fmt.Sprintf(format, args...), Step: vm.clock})
}

// failErr aborts the run with an already-classified error.
func (vm *VM) failErr(err error) { panic(vmErr{err: err}) }

// failMem aborts the run with a memory-subsystem error, preserving the
// budget classification when present and downgrading everything else to a
// runtime fault.
func (vm *VM) failMem(err error) {
	if errors.Is(err, interp.ErrMemLimit) {
		vm.failErr(fmt.Errorf("%w (at step %d)", err, vm.clock))
	}
	vm.fail("%v", err)
}

// flushTicks forwards the instruction count accumulated since the last
// flush to the hooks, so every non-tick event observes an exact clock.
func (vm *VM) flushTicks() {
	if d := vm.clock - vm.flushed; d != 0 {
		vm.hooks.Tick(d)
		vm.flushed = vm.clock
	}
}

// tickN charges n dynamic instructions in one step (bulk charges keep the
// step-limit trip clock identical to the tree-walker's tick(n)).
func (vm *VM) tickN(n int64) {
	vm.clock += n
	if vm.clock >= vm.checkAt {
		vm.slowTick()
	}
}

// slowTick is the cold path of the clock check: the hot loop compares the
// clock against a single fused threshold; this resolves which budget the
// threshold stood for.
func (vm *VM) slowTick() {
	if vm.clock > vm.maxSteps {
		vm.failErr(&interp.LimitError{Kind: interp.ErrStepLimit, Limit: vm.maxSteps, Step: vm.clock})
	}
	if vm.clock >= vm.nextPoll {
		vm.poll()
	}
	vm.checkAt = min(vm.limitAt, vm.nextPoll)
}

// poll performs the amortized cancellation and deadline checks.
func (vm *VM) poll() {
	vm.nextPoll = vm.clock + interp.PollInterval
	vm.flushTicks()
	if vm.ctx != nil {
		if err := vm.ctx.Err(); err != nil {
			kind := interp.ErrCanceled
			if errors.Is(err, context.DeadlineExceeded) {
				kind = interp.ErrDeadline
			}
			vm.failErr(&interp.LimitError{Kind: kind, Step: vm.clock})
		}
	}
	if !vm.deadline.IsZero() && time.Now().After(vm.deadline) {
		vm.failErr(&interp.LimitError{Kind: interp.ErrDeadline, Step: vm.clock})
	}
}

// newFrame readies an activation record, reusing a pooled frame when one
// is available. The ir-slot region and definition ticks are zeroed; the
// constant pool is copied into its slots.
func (vm *VM) newFrame(fc *funcCode) *frame {
	var fr *frame
	if l := len(vm.frames); l > 0 {
		fr = vm.frames[l-1]
		vm.frames = vm.frames[:l-1]
		if cap(fr.regs) < fc.frameSize {
			fr.regs = make([]interp.Val, fc.frameSize)
		} else {
			fr.regs = fr.regs[:fc.frameSize]
			clear(fr.regs[:fc.numRegs])
		}
		if cap(fr.ticks) < fc.numRegs {
			fr.ticks = make([]int64, fc.numRegs)
		} else {
			fr.ticks = fr.ticks[:fc.numRegs]
			clear(fr.ticks)
		}
	} else {
		fr = &frame{
			regs:  make([]interp.Val, fc.frameSize),
			ticks: make([]int64, fc.numRegs),
		}
	}
	copy(fr.regs[fc.constBase:], fc.consts)
	fr.savedSP = vm.mem.SP
	return fr
}

// freeFrame returns a finished frame to the pool.
func (vm *VM) freeFrame(fr *frame) { vm.frames = append(vm.frames, fr) }

// exec runs fc to completion in fr and returns its result.
func (vm *VM) exec(fc *funcCode, fr *frame) interp.Val {
	code := fc.code
	regs := fr.regs
	ticks := fr.ticks
	pc := 0
	for {
		in := &code[pc]
		switch in.Op {
		case opAddI:
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			regs[in.A] = interp.Val{K: ir.KInt, I: regs[in.B].I + regs[in.C].I}
			ticks[in.A] = vm.clock
			pc++
		case opSubI:
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			regs[in.A] = interp.Val{K: ir.KInt, I: regs[in.B].I - regs[in.C].I}
			ticks[in.A] = vm.clock
			pc++
		case opMulI:
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			regs[in.A] = interp.Val{K: ir.KInt, I: regs[in.B].I * regs[in.C].I}
			ticks[in.A] = vm.clock
			pc++
		case opDivI:
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			a, b := regs[in.B].I, regs[in.C].I
			if b == 0 {
				vm.fail("integer division by zero")
			}
			if a == -1<<63 && b == -1 {
				regs[in.A] = interp.Val{K: ir.KInt, I: -1 << 63}
			} else {
				regs[in.A] = interp.Val{K: ir.KInt, I: a / b}
			}
			ticks[in.A] = vm.clock
			pc++
		case opRemI:
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			a, b := regs[in.B].I, regs[in.C].I
			if b == 0 {
				vm.fail("integer remainder by zero")
			}
			if a == -1<<63 && b == -1 {
				regs[in.A] = interp.Val{K: ir.KInt}
			} else {
				regs[in.A] = interp.Val{K: ir.KInt, I: a % b}
			}
			ticks[in.A] = vm.clock
			pc++
		case opAndI:
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			regs[in.A] = interp.Val{K: ir.KInt, I: regs[in.B].I & regs[in.C].I}
			ticks[in.A] = vm.clock
			pc++
		case opOrI:
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			regs[in.A] = interp.Val{K: ir.KInt, I: regs[in.B].I | regs[in.C].I}
			ticks[in.A] = vm.clock
			pc++
		case opXorI:
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			regs[in.A] = interp.Val{K: ir.KInt, I: regs[in.B].I ^ regs[in.C].I}
			ticks[in.A] = vm.clock
			pc++
		case opShlI:
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			regs[in.A] = interp.Val{K: ir.KInt, I: regs[in.B].I << (uint64(regs[in.C].I) & 63)}
			ticks[in.A] = vm.clock
			pc++
		case opShrI:
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			regs[in.A] = interp.Val{K: ir.KInt, I: regs[in.B].I >> (uint64(regs[in.C].I) & 63)}
			ticks[in.A] = vm.clock
			pc++
		case opAddF:
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			regs[in.A] = interp.Val{K: ir.KFloat, F: regs[in.B].F + regs[in.C].F}
			ticks[in.A] = vm.clock
			pc++
		case opSubF:
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			regs[in.A] = interp.Val{K: ir.KFloat, F: regs[in.B].F - regs[in.C].F}
			ticks[in.A] = vm.clock
			pc++
		case opMulF:
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			regs[in.A] = interp.Val{K: ir.KFloat, F: regs[in.B].F * regs[in.C].F}
			ticks[in.A] = vm.clock
			pc++
		case opDivF:
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			regs[in.A] = interp.Val{K: ir.KFloat, F: regs[in.B].F / regs[in.C].F}
			ticks[in.A] = vm.clock
			pc++
		case opNegI:
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			regs[in.A] = interp.Val{K: ir.KInt, I: -regs[in.B].I}
			ticks[in.A] = vm.clock
			pc++
		case opNegF:
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			regs[in.A] = interp.Val{K: ir.KFloat, F: -regs[in.B].F}
			ticks[in.A] = vm.clock
			pc++
		case opNotB:
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			regs[in.A] = interp.BoolVal(regs[in.B].I == 0)
			ticks[in.A] = vm.clock
			pc++
		case opEqI:
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			regs[in.A] = interp.BoolVal(regs[in.B].I == regs[in.C].I)
			ticks[in.A] = vm.clock
			pc++
		case opNeI:
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			regs[in.A] = interp.BoolVal(regs[in.B].I != regs[in.C].I)
			ticks[in.A] = vm.clock
			pc++
		case opLtI:
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			regs[in.A] = interp.BoolVal(regs[in.B].I < regs[in.C].I)
			ticks[in.A] = vm.clock
			pc++
		case opLeI:
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			regs[in.A] = interp.BoolVal(regs[in.B].I <= regs[in.C].I)
			ticks[in.A] = vm.clock
			pc++
		case opGtI:
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			regs[in.A] = interp.BoolVal(regs[in.B].I > regs[in.C].I)
			ticks[in.A] = vm.clock
			pc++
		case opGeI:
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			regs[in.A] = interp.BoolVal(regs[in.B].I >= regs[in.C].I)
			ticks[in.A] = vm.clock
			pc++
		case opEqF:
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			regs[in.A] = interp.BoolVal(regs[in.B].F == regs[in.C].F)
			ticks[in.A] = vm.clock
			pc++
		case opNeF:
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			regs[in.A] = interp.BoolVal(regs[in.B].F != regs[in.C].F)
			ticks[in.A] = vm.clock
			pc++
		case opLtF:
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			regs[in.A] = interp.BoolVal(regs[in.B].F < regs[in.C].F)
			ticks[in.A] = vm.clock
			pc++
		case opLeF:
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			regs[in.A] = interp.BoolVal(regs[in.B].F <= regs[in.C].F)
			ticks[in.A] = vm.clock
			pc++
		case opGtF:
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			// !(a<b) && !(a==b), the tree-walker's composition: true when
			// either operand is NaN, unlike the > operator.
			x, y := regs[in.B].F, regs[in.C].F
			regs[in.A] = interp.BoolVal(!(x < y) && x != y)
			ticks[in.A] = vm.clock
			pc++
		case opGeF:
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			// !(a<b): true when either operand is NaN (see opGtF).
			regs[in.A] = interp.BoolVal(!(regs[in.B].F < regs[in.C].F))
			ticks[in.A] = vm.clock
			pc++
		case opItoF:
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			regs[in.A] = interp.Val{K: ir.KFloat, F: float64(regs[in.B].I)}
			ticks[in.A] = vm.clock
			pc++
		case opFtoI:
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			regs[in.A] = interp.Val{K: ir.KInt, I: int64(regs[in.B].F)}
			ticks[in.A] = vm.clock
			pc++
		case opAlloca:
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			addr, err := vm.mem.Alloca(regs[in.B].I)
			if err != nil {
				vm.failMem(err)
			}
			regs[in.A] = interp.PtrVal(addr)
			ticks[in.A] = vm.clock
			pc++
		case opLoad:
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			addr := regs[in.B].I
			vm.flushTicks()
			vm.hooks.Load(addr)
			v, err := vm.mem.Load(addr)
			if err != nil {
				vm.failMem(err)
			}
			if v.K == ir.KVoid && in.K != 0 {
				v.K = ir.Kind(in.K)
			}
			regs[in.A] = v
			ticks[in.A] = vm.clock
			pc++
		case opStore:
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			addr := regs[in.B].I
			vm.flushTicks()
			vm.hooks.Store(addr)
			if err := vm.mem.Store(addr, regs[in.A]); err != nil {
				vm.failMem(err)
			}
			pc++
		case opAddPtr:
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			regs[in.A] = interp.PtrVal(regs[in.B].I + regs[in.C].I)
			ticks[in.A] = vm.clock
			pc++
		case opLoadIdx:
			// addptr tick, then load tick, then the load event — the
			// component order of the unfused pair.
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			addr := regs[in.B].I + regs[in.C].I
			vm.flushTicks()
			vm.hooks.Load(addr)
			v, err := vm.mem.Load(addr)
			if err != nil {
				vm.failMem(err)
			}
			if v.K == ir.KVoid && in.K != 0 {
				v.K = ir.Kind(in.K)
			}
			regs[in.A] = v
			ticks[in.A] = vm.clock
			pc++
		case opStoreIdx:
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			addr := regs[in.B].I + regs[in.C].I
			vm.flushTicks()
			vm.hooks.Store(addr)
			if err := vm.mem.Store(addr, regs[in.A]); err != nil {
				vm.failMem(err)
			}
			pc++
		case opLoadAddI:
			// Load tick and event first, then the add's tick: the fused
			// result carries the add's definition tick.
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			addr := regs[in.B].I
			vm.flushTicks()
			vm.hooks.Load(addr)
			v, err := vm.mem.Load(addr)
			if err != nil {
				vm.failMem(err)
			}
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			regs[in.A] = interp.Val{K: ir.KInt, I: v.I + regs[in.C].I}
			ticks[in.A] = vm.clock
			pc++
		case opLoadAddF:
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			addr := regs[in.B].I
			vm.flushTicks()
			vm.hooks.Load(addr)
			v, err := vm.mem.Load(addr)
			if err != nil {
				vm.failMem(err)
			}
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			regs[in.A] = interp.Val{K: ir.KFloat, F: v.F + regs[in.C].F}
			ticks[in.A] = vm.clock
			pc++
		case opBrEqI, opBrNeI, opBrLtI, opBrLeI, opBrGtI, opBrGeI,
			opBrEqF, opBrNeF, opBrLtF, opBrLeF, opBrGtF, opBrGeF:
			// Compare tick, then branch tick (the fused compare's register
			// write is elided: lowering proved it single-use).
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			var taken bool
			switch in.Op {
			case opBrEqI:
				taken = regs[in.B].I == regs[in.C].I
			case opBrNeI:
				taken = regs[in.B].I != regs[in.C].I
			case opBrLtI:
				taken = regs[in.B].I < regs[in.C].I
			case opBrLeI:
				taken = regs[in.B].I <= regs[in.C].I
			case opBrGtI:
				taken = regs[in.B].I > regs[in.C].I
			case opBrGeI:
				taken = regs[in.B].I >= regs[in.C].I
			case opBrEqF:
				taken = regs[in.B].F == regs[in.C].F
			case opBrNeF:
				taken = regs[in.B].F != regs[in.C].F
			case opBrLtF:
				taken = regs[in.B].F < regs[in.C].F
			case opBrLeF:
				taken = regs[in.B].F <= regs[in.C].F
			case opBrGtF:
				x, y := regs[in.B].F, regs[in.C].F
				taken = !(x < y) && x != y
			case opBrGeF:
				taken = !(regs[in.B].F < regs[in.C].F)
			}
			if taken {
				pc = int(in.A)
			} else {
				pc++
			}
		case opBr:
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			if regs[in.B].I != 0 {
				pc = int(in.A)
			} else {
				pc++
			}
		case opJmp:
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			pc = int(in.A)
		case opGoto:
			pc = int(in.A)
		case opTick:
			vm.tickN(int64(in.A))
			pc++
		case opRet:
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			if in.C > 0 {
				vm.flushTicks()
				for _, lm := range fc.exits[in.B : in.B+in.C] {
					vm.hooks.ExitLoop(lm)
				}
			}
			vm.mem.SP = fr.savedSP
			if in.A >= 0 {
				return regs[in.A]
			}
			return interp.Val{}
		case opCall:
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			if vm.depth++; vm.depth > interp.MaxCallDepth {
				vm.failErr(&interp.LimitError{Kind: interp.ErrMemLimit, Limit: interp.MaxCallDepth, Step: vm.clock})
			}
			callee := vm.prog.funcs[in.B]
			nf := vm.newFrame(callee)
			for k, s := range fc.argRegs[in.C : int(in.C)+callee.arity] {
				nf.regs[k] = regs[s]
			}
			ret := vm.exec(callee, nf)
			vm.freeFrame(nf)
			vm.depth--
			if in.A >= 0 {
				regs[in.A] = ret
				ticks[in.A] = vm.clock
			}
			pc++
		case opCallB:
			vm.clock++
			if vm.clock >= vm.checkAt {
				vm.slowTick()
			}
			b := &vm.prog.builtins[in.B]
			// The call instruction itself already cost 1 tick; add the
			// registry Cost standing in for the uninstrumented body.
			vm.tickN(b.cost)
			n := int(in.K)
			for k := 0; k < n; k++ {
				vm.biBuf[k] = regs[fc.argRegs[int(in.C)+k]]
			}
			ret, err := interp.EvalBuiltin(b.name, vm.biBuf[:n], vm.mem, vm.out, &vm.randState)
			if err != nil {
				vm.failMem(err)
			}
			if in.A >= 0 {
				regs[in.A] = ret
				ticks[in.A] = vm.clock
			}
			pc++
		case opLoopExit:
			vm.flushTicks()
			for _, lm := range fc.exits[in.A : in.A+in.B] {
				vm.hooks.ExitLoop(lm)
			}
			pc++
		case opLoopEnter:
			d := &fc.enters[in.A]
			if cap(vm.initBuf) < len(d.srcs) {
				vm.initBuf = make([]interp.Val, len(d.srcs))
			}
			init := vm.initBuf[:len(d.srcs)]
			clear(init)
			for k, s := range d.srcs {
				if s >= 0 {
					init[k] = regs[s]
				}
			}
			vm.flushTicks()
			vm.hooks.EnterLoop(d.lm, vm.mem.SP, init)
			pc++
		case opLoopIter:
			d := &fc.iters[in.A]
			if cap(vm.obsBuf) < len(d.lm.Observed) {
				vm.obsBuf = make([]interp.LCDObs, len(d.lm.Observed))
			}
			obs := vm.obsBuf[:len(d.lm.Observed)]
			for k, s := range d.srcs {
				t := int64(-1)
				if ts := d.ticks[k]; ts >= 0 {
					t = ticks[ts]
				}
				obs[k] = interp.LCDObs{Val: regs[s], DefTick: t}
			}
			vm.flushTicks()
			vm.hooks.IterLoop(d.lm, vm.mem.SP, obs)
			pc++
		case opPhiCopy:
			for _, m := range fc.moves[in.A : in.A+in.B] {
				regs[m.dst] = regs[m.src]
				ticks[m.dst] = vm.clock
				vm.clock++
				if vm.clock >= vm.checkAt {
					vm.slowTick()
				}
			}
			pc++
		case opPhiStage:
			tmp := int(in.C)
			for k, m := range fc.moves[in.A : in.A+in.B] {
				regs[tmp+k] = regs[m.src]
			}
			pc++
		case opPhiCommit:
			tmp := int(in.C)
			for k, m := range fc.moves[in.A : in.A+in.B] {
				regs[m.dst] = regs[tmp+k]
				ticks[m.dst] = vm.clock
				vm.clock++
				if vm.clock >= vm.checkAt {
					vm.slowTick()
				}
			}
			pc++
		default:
			vm.fail("bad opcode %s at pc %d", in.Op, pc)
		}
	}
}
