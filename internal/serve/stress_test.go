package serve

// The concurrency stress leg: many goroutines hammer one server with a
// mixed request stream. Run under -race (make ci's race leg), it asserts
// no race, no panic (a handler panic would surface as a 500), and that
// the cache actually absorbed repeated traffic.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestStressConcurrentMix(t *testing.T) {
	s, err := New(Options{MaxConcurrent: 4, CacheEntries: 256})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	const goroutines = 64
	const perG = 12
	client := ts.Client()
	client.Transport = &http.Transport{MaxIdleConnsPerHost: goroutines}

	post := func(req AnalyzeRequest) (int, []byte, error) {
		b, _ := json.Marshal(req)
		resp, err := client.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(b))
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		var body json.RawMessage
		_ = json.NewDecoder(resp.Body).Decode(&body)
		return resp.StatusCode, body, nil
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Per-goroutine unique program: same shape, distinct constant,
			// so its first request is a guaranteed cache miss.
			unique := fmt.Sprintf(`
func main() int {
	var i int;
	var s int = 0;
	for (i = 0; i < 500; i = i + 1) { s = s + i %% %d; }
	return s;
}`, g+3)
			for n := 0; n < perG; n++ {
				var status int
				var err error
				switch n % 4 {
				case 0: // shared program: one miss process-wide, then hits
					status, _, err = post(AnalyzeRequest{Name: "shared", Source: okSrc, Config: "reduc1-dep0-fn0 DOALL"})
					if err == nil && status != http.StatusOK {
						err = fmt.Errorf("shared: status %d", status)
					}
				case 1: // unique program
					status, _, err = post(AnalyzeRequest{Name: fmt.Sprintf("g%d", g), Source: unique})
					if err == nil && status != http.StatusOK {
						err = fmt.Errorf("unique: status %d", status)
					}
				case 2: // malformed source
					status, _, err = post(AnalyzeRequest{Name: "bad", Source: badSrc})
					if err == nil && status != http.StatusBadRequest {
						err = fmt.Errorf("malformed: status %d", status)
					}
				case 3: // budget trip
					status, _, err = post(AnalyzeRequest{
						Name: "budget", Source: slowSrc,
						Budgets: &Budgets{MaxSteps: 5_000},
					})
					if err == nil && status != http.StatusUnprocessableEntity {
						err = fmt.Errorf("budget: status %d", status)
					}
				}
				if err != nil {
					errs <- fmt.Errorf("goroutine %d request %d: %w", g, n, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := s.cache.Stats()
	total := st.Hits + st.Misses + st.Coalesced
	if st.Hits+st.Coalesced == 0 {
		t.Fatalf("cache absorbed nothing: %+v", st)
	}
	hitRatio := float64(st.Hits+st.Coalesced) / float64(total)
	t.Logf("cache: %+v (shared-ratio %.2f)", st, hitRatio)
	if hitRatio <= 0 {
		t.Errorf("cache-hit ratio %.2f, want > 0", hitRatio)
	}
	// The mix repeats 3 cacheable keys (shared, per-g unique after first,
	// budget) heavily; misses should stay far below total traffic.
	if st.Misses > uint64(goroutines)*3 {
		t.Errorf("%d misses for %d goroutines — cache not deduplicating", st.Misses, goroutines)
	}
}
