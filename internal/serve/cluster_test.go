package serve

// Coverage of the cluster surface: the async job API over real HTTP, a
// remote worker fleet speaking the mounted /v1/cluster/* transport, the
// liveness/readiness split, and cluster metrics on /metrics.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"loopapalooza/internal/bench"
	"loopapalooza/internal/cluster"
	"loopapalooza/internal/core"
)

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestJobAPIWithRemoteFleet(t *testing.T) {
	coord := cluster.NewCoordinator(cluster.CoordinatorOptions{Lease: 5 * time.Second, Seed: 1})
	defer coord.Close()
	_, ts := newTestServer(t, Options{Cluster: coord})

	// A remote fleet speaks the mounted transport.
	client := cluster.NewClient(ts.URL, nil)
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	defer func() { cancel(); wg.Wait() }()
	for i := 0; i < 2; i++ {
		w, err := cluster.NewWorker(cluster.WorkerOptions{
			ID: fmt.Sprintf("w%d", i), Coordinator: client, Poll: 5 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() { defer wg.Done(); w.Run(ctx) }()
	}

	bs := bench.BySuite(bench.SuiteEEMBC)[:2]
	status, body := postJSON(t, ts.URL+"/v1/jobs", JobRequest{
		Tenant:     "acme",
		Benchmarks: []string{bs[0].Name, bs[1].Name},
		Configs:    []string{"reduc1-dep2-fn2 PDOALL", "reduc1-dep1-fn2 HELIX"},
	})
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d body %s", status, body)
	}
	var sub JobSubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.Cells != 4 || !strings.HasPrefix(sub.StatusURL, "/v1/jobs/") {
		t.Fatalf("submit response %+v", sub)
	}

	deadline := time.Now().Add(30 * time.Second)
	var st cluster.JobStatus
	for {
		if code := getJSON(t, ts.URL+sub.StatusURL, &st); code != http.StatusOK {
			t.Fatalf("status poll: %d", code)
		}
		if st.State == cluster.JobDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st.Counts[core.OutcomeOK] != 4 {
		t.Fatalf("job counts %v, want 4 ok", st.Counts)
	}
	if !strings.HasPrefix(st.Summary, "4/4 cells ok") {
		t.Fatalf("summary %q", st.Summary)
	}

	// Fleet observability.
	var workers []cluster.WorkerInfo
	if code := getJSON(t, ts.URL+"/v1/cluster/workers", &workers); code != http.StatusOK || len(workers) != 2 {
		t.Fatalf("workers: code %d list %+v", code, workers)
	}

	// Cluster series are on /metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := readAll(t, resp)
	for _, series := range []string{
		"lpd_cluster_queue_depth", "lpd_cluster_jobs_done_total 1",
		`lpd_cluster_breaker_state{worker="w0"} 0`,
		`lpd_cluster_committed_cells_total{outcome="ok"} 4`,
	} {
		if !strings.Contains(metrics, series) {
			t.Errorf("metrics missing %q", series)
		}
	}

	if err := coord.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestJobAPIRejections(t *testing.T) {
	coord := cluster.NewCoordinator(cluster.CoordinatorOptions{MaxQueuedJobs: 1, Seed: 1})
	defer coord.Close()
	_, ts := newTestServer(t, Options{Cluster: coord})

	if status, body := postJSON(t, ts.URL+"/v1/jobs", JobRequest{Benchmarks: []string{"no-such-kernel"}}); status != http.StatusBadRequest {
		t.Fatalf("unknown benchmark: status %d body %s", status, body)
	}
	if status, body := postJSON(t, ts.URL+"/v1/jobs", JobRequest{Configs: []string{"not a config"}}); status != http.StatusBadRequest {
		t.Fatalf("bad config: status %d body %s", status, body)
	}
	if status := getJSON(t, ts.URL+"/v1/jobs/job-999999", nil); status != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", status)
	}

	// Admission control surfaces as 429.
	if status, body := postJSON(t, ts.URL+"/v1/jobs", JobRequest{Tenant: "t"}); status != http.StatusAccepted {
		t.Fatalf("first submit: status %d body %s", status, body)
	}
	if status, _ := postJSON(t, ts.URL+"/v1/jobs", JobRequest{Tenant: "t"}); status != http.StatusTooManyRequests {
		t.Fatalf("over-cap submit: status %d, want 429", status)
	}
}

func TestReadyzSplitFromHealthz(t *testing.T) {
	failing := fmt.Errorf("breaker quarantine")
	var gate error
	s, ts := newTestServer(t, Options{
		ReadyChecks: []ReadyCheck{func() error { return gate }},
	})

	var ready ReadyzResponse
	if code := getJSON(t, ts.URL+"/readyz", &ready); code != http.StatusOK || ready.Status != "ready" {
		t.Fatalf("fresh server readyz: %d %+v", code, ready)
	}

	// A failing ready check flips readiness but not liveness.
	gate = failing
	if code := getJSON(t, ts.URL+"/readyz", &ready); code != http.StatusServiceUnavailable {
		t.Fatalf("failing check readyz: %d", code)
	}
	if len(ready.Reasons) != 1 || ready.Reasons[0] != "breaker quarantine" {
		t.Fatalf("reasons %v", ready.Reasons)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz during quarantine: %d, want 200", code)
	}
	gate = nil

	// Drain flips readiness too (checked via the handler because
	// Shutdown also closes the listener).
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz after shutdown: %d, want 503", rec.Code)
	}
	if body := rec.Body.String(); !strings.Contains(body, "draining") {
		t.Fatalf("readyz body %q missing drain reason", body)
	}
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz after shutdown: %d, want 200 (liveness)", rec.Code)
	}
}

func TestClusterSurfaceAbsentWithoutCoordinator(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	if status, _ := postJSON(t, ts.URL+"/v1/jobs", JobRequest{}); status != http.StatusNotFound {
		t.Fatalf("jobs without cluster: status %d, want 404", status)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if m := readAll(t, resp); strings.Contains(m, "lpd_cluster_") {
		t.Fatal("cluster series exported without a coordinator")
	}
}

// TestCoordinatorDrainReleasesInFlight exercises the shutdown-timeout
// path end to end: a worker holding a task is canceled mid-execution,
// its cells come back canceled, and the coordinator refunds them.
func TestCoordinatorDrainReleasesInFlight(t *testing.T) {
	coord := cluster.NewCoordinator(cluster.CoordinatorOptions{Lease: 5 * time.Second, Seed: 1})
	defer coord.Close()
	_, ts := newTestServer(t, Options{Cluster: coord})

	claimed := make(chan struct{})
	var once sync.Once
	runCtx, cancelRun := context.WithCancel(context.Background())
	defer cancelRun()
	w, err := cluster.NewWorker(cluster.WorkerOptions{
		ID: "drainee", Coordinator: cluster.NewClient(ts.URL, nil), Poll: 5 * time.Millisecond,
		Hooks: cluster.Hooks{BeforeExecute: func(ctx context.Context, task *cluster.Task) error {
			once.Do(func() { close(claimed) })
			<-ctx.Done()
			return nil
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); w.Run(runCtx) }()

	status, body := postJSON(t, ts.URL+"/v1/jobs", JobRequest{
		Benchmarks: []string{bench.BySuite(bench.SuiteEEMBC)[0].Name},
		Configs:    []string{"reduc1-dep2-fn2 PDOALL"},
	})
	if status != http.StatusAccepted {
		t.Fatalf("submit: %d %s", status, body)
	}
	var sub JobSubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	<-claimed
	cancelRun() // the shutdown-timeout expiring on the worker
	<-done

	deadline := time.Now().Add(5 * time.Second)
	for {
		var st cluster.JobStatus
		getJSON(t, ts.URL+sub.StatusURL, &st)
		if st.Cells[0].State == cluster.CellQueued && st.Cells[0].Attempts == 0 {
			break // refunded, nothing lost, budget uncharged
		}
		if time.Now().After(deadline) {
			t.Fatalf("canceled cell never refunded: %+v", st.Cells[0])
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := coord.Stats().RefundedCells; got != 1 {
		t.Fatalf("refunded %d, want 1", got)
	}
	if err := coord.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
