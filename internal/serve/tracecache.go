package serve

// The trace tier of the result cache. The full result cache (cache.go) is
// keyed by (name, source, config, budgets): a novel configuration of an
// already-seen program misses it and, without this tier, re-interprets the
// program from scratch. The trace tier is keyed by (name, source, budgets)
// only — the recorded event stream is configuration-independent — so a
// cached trace serves ANY configuration by replay, which costs decode +
// engine work instead of interpretation.
//
// Entries are (module analysis, trace bytes) pairs under a byte-budget
// LRU. Traces are recorded into a capped in-memory buffer during the
// (single) live run of a program; a run whose trace outgrows the per-entry
// cap still completes normally — the trace is simply not cached.

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"io"
	"sync"

	"loopapalooza/internal/analysis"
)

// DefaultTraceCacheBytes bounds the trace tier when Options leave it zero.
const DefaultTraceCacheBytes = 64 << 20

// TraceKey computes the trace tier's content address: like Key, but
// configuration-independent.
func TraceKey(name, source string, b Budgets) string {
	h := sha256.New()
	for _, s := range []string{name, source} {
		io.WriteString(h, s)
		h.Write([]byte{0})
	}
	var buf [24]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(b.MaxSteps))
	binary.LittleEndian.PutUint64(buf[8:], uint64(b.MaxHeapCells))
	binary.LittleEndian.PutUint64(buf[16:], uint64(b.TimeoutMs))
	h.Write(buf[:])
	return hex.EncodeToString(h.Sum(nil))
}

// TraceCacheStats is a monotonic snapshot of trace-tier traffic.
type TraceCacheStats struct {
	// Hits counts analyze fills served by trace replay.
	Hits uint64
	// Misses counts trace-tier lookups that fell through to a live run.
	Misses uint64
	// Evictions counts entries dropped by the byte budget.
	Evictions uint64
	// Skipped counts traces not stored because they outgrew the per-entry
	// cap.
	Skipped uint64
	// Entries and Bytes describe the current store (not monotonic).
	Entries int
	Bytes   int64
}

// TraceCache is the byte-budget LRU of recorded traces.
type TraceCache struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	ll     *list.List // front = most recently used; values are *traceItem
	items  map[string]*list.Element
	stats  TraceCacheStats
}

type traceItem struct {
	key   string
	info  *analysis.ModuleInfo
	trace []byte
}

// NewTraceCache returns a trace tier bounded to budget bytes of stored
// traces (budget <= 0 = DefaultTraceCacheBytes).
func NewTraceCache(budget int64) *TraceCache {
	if budget <= 0 {
		budget = DefaultTraceCacheBytes
	}
	return &TraceCache{
		budget: budget,
		ll:     list.New(),
		items:  map[string]*list.Element{},
	}
}

// EntryCap is the largest trace the cache will store: a quarter of the
// budget, so a hot set of at least four programs always fits.
func (tc *TraceCache) EntryCap() int64 { return tc.budget / 4 }

// Get returns the stored trace and its module analysis, counting the
// lookup either way.
func (tc *TraceCache) Get(key string) (*analysis.ModuleInfo, []byte, bool) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	el, ok := tc.items[key]
	if !ok {
		tc.stats.Misses++
		return nil, nil, false
	}
	tc.ll.MoveToFront(el)
	tc.stats.Hits++
	it := el.Value.(*traceItem)
	return it.info, it.trace, true
}

// Put stores one recorded trace, evicting least-recently-used entries past
// the byte budget. Traces over the per-entry cap are skipped (counted, not
// an error).
func (tc *TraceCache) Put(key string, info *analysis.ModuleInfo, trace []byte) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if int64(len(trace)) > tc.EntryCap() {
		tc.stats.Skipped++
		return
	}
	if el, ok := tc.items[key]; ok {
		it := el.Value.(*traceItem)
		tc.bytes += int64(len(trace)) - int64(len(it.trace))
		it.info, it.trace = info, trace
		tc.ll.MoveToFront(el)
	} else {
		tc.items[key] = tc.ll.PushFront(&traceItem{key: key, info: info, trace: trace})
		tc.bytes += int64(len(trace))
	}
	for tc.bytes > tc.budget {
		tail := tc.ll.Back()
		it := tail.Value.(*traceItem)
		tc.ll.Remove(tail)
		delete(tc.items, it.key)
		tc.bytes -= int64(len(it.trace))
		tc.stats.Evictions++
	}
}

// Drop removes one entry (a trace that failed to replay — corrupt or
// recorded by a different build).
func (tc *TraceCache) Drop(key string) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if el, ok := tc.items[key]; ok {
		it := el.Value.(*traceItem)
		tc.ll.Remove(el)
		delete(tc.items, it.key)
		tc.bytes -= int64(len(it.trace))
	}
}

// Stats returns a traffic snapshot.
func (tc *TraceCache) Stats() TraceCacheStats {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	s := tc.stats
	s.Entries = tc.ll.Len()
	s.Bytes = tc.bytes
	return s
}

// cappedBuffer is the trace sink of a live run: it accepts writes up to
// cap bytes and silently discards the rest (recording a trace must never
// fail the run it rides on), flagging the overflow so the truncated trace
// is not cached.
type cappedBuffer struct {
	cap      int64
	buf      []byte
	overflow bool
}

func (b *cappedBuffer) Write(p []byte) (int, error) {
	if room := b.cap - int64(len(b.buf)); room < int64(len(p)) {
		b.overflow = true
		if room > 0 {
			b.buf = append(b.buf, p[:room]...)
		}
	} else {
		b.buf = append(b.buf, p...)
	}
	return len(p), nil
}
