package serve

import (
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"loopapalooza/internal/core"
	"loopapalooza/internal/wal"
)

// TestTraceStoreRoundTrip: bytes in, identical verified bytes out, and
// a missing key is a plain miss.
func TestTraceStoreRoundTrip(t *testing.T) {
	ts, err := NewTraceStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	trace := []byte("trace-bytes-go-here")
	if err := ts.Put("k1", trace); err != nil {
		t.Fatal(err)
	}
	got, err := ts.Get("k1")
	if err != nil || !bytes.Equal(got, trace) {
		t.Fatalf("Get = %q, %v; want the stored trace", got, err)
	}
	if got, err := ts.Get("absent"); got != nil || err != nil {
		t.Fatalf("missing key = %q, %v; want nil, nil", got, err)
	}
	st := ts.Stats()
	if st.Puts != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats after round trip: %+v", st)
	}
}

// TestTraceStoreScrubQuarantines: a scrub pass detects a bit flip in a
// stored trace, moves the file into quarantine/, and subsequent reads
// miss cleanly instead of returning damaged bytes.
func TestTraceStoreScrubQuarantines(t *testing.T) {
	dir := t.TempDir()
	ts, err := NewTraceStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Put("good", bytes.Repeat([]byte("g"), 512)); err != nil {
		t.Fatal(err)
	}
	if err := ts.Put("bad", bytes.Repeat([]byte("b"), 512)); err != nil {
		t.Fatal(err)
	}
	flipByte(t, filepath.Join(dir, "bad"+traceExt))

	res := ts.Scrub(nil)
	if res.Files != 2 || res.Corrupt != 1 {
		t.Fatalf("scrub = %+v, want 2 files, 1 corrupt", res)
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, "bad"+traceExt)); err != nil {
		t.Fatalf("corrupt trace not quarantined: %v", err)
	}
	if got, err := ts.Get("bad"); got != nil || err != nil {
		t.Fatalf("quarantined key = %q, %v; want a clean miss", got, err)
	}
	if got, err := ts.Get("good"); err != nil || len(got) != 512 {
		t.Fatalf("healthy trace damaged by scrub: %q, %v", got, err)
	}
	st := ts.Stats()
	if st.ScrubRuns != 1 || st.ScrubCorrupt != 1 || st.Quarantined != 1 {
		t.Fatalf("stats after scrub: %+v", st)
	}
}

// TestTraceStoreGetQuarantinesCorrupt: corruption found on the read
// path (not just by the scrubber) also quarantines the file.
func TestTraceStoreGetQuarantinesCorrupt(t *testing.T) {
	dir := t.TempDir()
	ts, err := NewTraceStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Put("k", bytes.Repeat([]byte("x"), 256)); err != nil {
		t.Fatal(err)
	}
	flipByte(t, filepath.Join(dir, "k"+traceExt))
	if got, err := ts.Get("k"); got != nil || err == nil {
		t.Fatalf("corrupt read = %q, %v; want nil + corruption error", got, err)
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, "k"+traceExt)); err != nil {
		t.Fatalf("corrupt trace not quarantined on read: %v", err)
	}
}

// TestAnalyzeDiskTierSurvivesRestart: a trace recorded by one server is
// replayed by a fresh server over the same directory — the whole point
// of the durable tier — and the replayed report matches a live run.
func TestAnalyzeDiskTierSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	opts := Options{TraceDir: dir, ScrubInterval: -1}

	s1, front1 := newTestServer(t, opts)
	if status, body := postJSON(t, front1.URL+"/v1/analyze",
		AnalyzeRequest{Name: "durable", Source: okSrc, Config: "reduc1-dep2-fn2 PDOALL"}); status != http.StatusOK {
		t.Fatalf("recording run: %d\n%s", status, body)
	}
	if st := s1.store.Stats(); st.Puts != 1 {
		t.Fatalf("store after first run: %+v, want 1 put", st)
	}

	// "Restart": a new server, empty memory tiers, same disk.
	s2, front2 := newTestServer(t, opts)
	status, body := postJSON(t, front2.URL+"/v1/analyze",
		AnalyzeRequest{Name: "durable", Source: okSrc, Config: "reduc1-dep1-fn2 HELIX"})
	if status != http.StatusOK {
		t.Fatalf("post-restart analyze: %d\n%s", status, body)
	}
	if st := s2.store.Stats(); st.Hits != 1 {
		t.Fatalf("store after restart: %+v, want a disk hit", st)
	}
	if st := s2.harness.Stats(); st.Executions != 0 {
		t.Fatalf("restarted server re-interpreted despite a stored trace")
	}
	want, err := core.RunSource("durable", okSrc, core.BestHELIX(), core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ar := decodeAnalyze(t, body); !reflect.DeepEqual(want, ar.Report) {
		t.Errorf("disk-replayed report differs from live run:\nlive:   %+v\nreplay: %+v", want, ar.Report)
	}
	// The disk hit was promoted into the new server's memory tier.
	if st := s2.traces.Stats(); st.Entries != 1 {
		t.Errorf("disk hit not promoted to memory tier: %+v", st)
	}
}

// TestAnalyzeStartupScrubRepairsByReExecution: the acceptance path —
// a stored trace rots on disk, a restarted server's startup scrub
// quarantines it, and the next demand recomputes the cell live and
// re-records a healthy trace.
func TestAnalyzeStartupScrubRepairsByReExecution(t *testing.T) {
	dir := t.TempDir()
	opts := Options{TraceDir: dir, ScrubInterval: -1}

	s1, front1 := newTestServer(t, opts)
	req := AnalyzeRequest{Name: "rotting", Source: okSrc}
	if status, body := postJSON(t, front1.URL+"/v1/analyze", req); status != http.StatusOK {
		t.Fatalf("recording run: %d\n%s", status, body)
	}
	tkey := TraceKey("rotting", okSrc, s1.effectiveBudgets(nil))
	flipByte(t, filepath.Join(dir, tkey+traceExt))

	s2, front2 := newTestServer(t, opts)
	if st := s2.store.Stats(); st.ScrubRuns != 1 || st.ScrubCorrupt != 1 || st.Quarantined != 1 {
		t.Fatalf("startup scrub missed the rot: %+v", st)
	}
	status, body := postJSON(t, front2.URL+"/v1/analyze", req)
	if status != http.StatusOK {
		t.Fatalf("analyze after quarantine: %d\n%s", status, body)
	}
	if ar := decodeAnalyze(t, body); ar.Report == nil || ar.Report.Speedup() <= 0 {
		t.Fatalf("recomputed report unusable: %+v", ar.Report)
	}
	// The live recomputation re-recorded the trace: healthy bytes back
	// on disk, corpse still in quarantine for inspection.
	if err := wal.VerifyChunked(filepath.Join(dir, tkey+traceExt)); err != nil {
		t.Fatalf("repaired trace file not rewritten: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, tkey+traceExt)); err != nil {
		t.Fatalf("quarantined corpse missing: %v", err)
	}
}

// TestAnalyzeDiskTierQuarantinesUnreplayable: a file whose checksums
// hold but whose contents no replay can decode (recorded by another
// build, say) is quarantined on demand and the request served live.
func TestAnalyzeDiskTierQuarantinesUnreplayable(t *testing.T) {
	dir := t.TempDir()
	s, front := newTestServer(t, Options{TraceDir: dir, ScrubInterval: -1})
	tkey := TraceKey("liar", okSrc, s.effectiveBudgets(nil))
	if err := s.store.Put(tkey, []byte("checksummed but not a trace")); err != nil {
		t.Fatal(err)
	}

	status, body := postJSON(t, front.URL+"/v1/analyze",
		AnalyzeRequest{Name: "liar", Source: okSrc})
	if status != http.StatusOK {
		t.Fatalf("fallback after unreplayable disk trace: %d\n%s", status, body)
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, tkey+traceExt)); err != nil {
		t.Fatalf("unreplayable trace not quarantined: %v", err)
	}
	if st := s.store.Stats(); st.Quarantined != 1 {
		t.Fatalf("stats after unreplayable trace: %+v", st)
	}
	// The live run healed the slot.
	if err := wal.VerifyChunked(filepath.Join(dir, tkey+traceExt)); err != nil {
		t.Fatalf("slot not re-recorded after fallback: %v", err)
	}
}

// TestAnalyzeMemoryPoisonQuarantinesDiskCopy: when the memory tier's
// copy fails replay, the matching disk file is quarantined too — the
// disk copy is the same bytes, so serving it after a restart would
// repeat the failure.
func TestAnalyzeMemoryPoisonQuarantinesDiskCopy(t *testing.T) {
	dir := t.TempDir()
	s, front := newTestServer(t, Options{TraceDir: dir, ScrubInterval: -1})
	tkey := TraceKey("poison", okSrc, s.effectiveBudgets(nil))
	info, err := core.AnalyzeSource("poison", okSrc)
	if err != nil {
		t.Fatal(err)
	}
	s.traces.Put(tkey, info, []byte("not a trace"))
	if err := s.store.Put(tkey, []byte("not a trace")); err != nil {
		t.Fatal(err)
	}

	status, body := postJSON(t, front.URL+"/v1/analyze",
		AnalyzeRequest{Name: "poison", Source: okSrc})
	if status != http.StatusOK {
		t.Fatalf("fallback after poisoned tiers: %d\n%s", status, body)
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, tkey+traceExt)); err != nil {
		t.Fatalf("disk copy of poisoned trace not quarantined: %v", err)
	}
}

// flipByte corrupts one payload byte of a chunked file in place.
func flipByte(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
