package serve

// The Prometheus instrumentation layer moved to internal/metrics when the
// sweep cluster (internal/cluster) started exporting its own series; these
// aliases keep the serve package's historical names working for the server
// code and its tests.

import "loopapalooza/internal/metrics"

// Registry holds the registered instruments and renders them.
type Registry = metrics.Registry

// Counter is a monotonically increasing family, optionally labeled.
type Counter = metrics.Counter

// Gauge is a settable gauge family, optionally labeled.
type Gauge = metrics.Gauge

// GaugeFunc is an unlabeled gauge whose value is sampled at scrape time.
type GaugeFunc = metrics.GaugeFunc

// CounterFunc is an unlabeled counter sampled at scrape time.
type CounterFunc = metrics.CounterFunc

// Histogram is a cumulative histogram family, optionally labeled.
type Histogram = metrics.Histogram

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return metrics.NewRegistry() }

// DefaultLatencyBuckets cover 1ms to 10s, the range an analyze request
// spans between a cache hit and a budget-bounded run.
var DefaultLatencyBuckets = metrics.DefaultLatencyBuckets
