package serve

import (
	"errors"
	"net/http"

	"loopapalooza/internal/bench"
	"loopapalooza/internal/cluster"
	"loopapalooza/internal/core"
)

// The cluster surface of the server: the async job API backed by a
// cluster.Coordinator (POST /v1/jobs, GET /v1/jobs/{id}), the
// worker-facing lease endpoints (POST /v1/cluster/*), and fleet
// observability (GET /v1/cluster/workers). Mounted only when
// Options.Cluster is set — a standalone analysis service carries none
// of it.

// JobRequest is the POST /v1/jobs body. Benchmarks and Configs select
// cells exactly as in a synchronous sweep; the job executes on the
// worker fleet and is polled via GET /v1/jobs/{id}.
type JobRequest struct {
	// Tenant names the submitting tenant for queueing, admission
	// control, and rate limiting ("" = "default").
	Tenant string `json:"tenant,omitempty"`
	// Benchmarks names registered kernels (empty = every kernel).
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Configs are paper configuration strings (empty = the fourteen
	// paper configurations).
	Configs []string `json:"configs,omitempty"`
	// IncludeReports attaches full reports to completed cells in status
	// responses.
	IncludeReports bool `json:"includeReports,omitempty"`
}

// JobSubmitResponse is the POST /v1/jobs success body.
type JobSubmitResponse struct {
	// Job is the job id.
	Job string `json:"job"`
	// StatusURL polls the job.
	StatusURL string `json:"statusUrl"`
	// Cells is the job's cell count.
	Cells int `json:"cells"`
}

// resolveSelection maps benchmark names and configuration strings to
// their registered values, defaulting to every kernel and the paper
// grid. Shared by the synchronous sweep and the async job API.
func (s *Server) resolveSelection(names, cfgStrs []string) ([]*bench.Benchmark, []core.Config, error) {
	benches := bench.All()
	if len(names) > 0 {
		benches = benches[:0:0]
		for _, name := range names {
			b := bench.ByName(name)
			if b == nil {
				return nil, nil, &selectionError{msg: "unknown benchmark " + name}
			}
			benches = append(benches, b)
		}
	}
	cfgs := core.PaperConfigs()
	if len(cfgStrs) > 0 {
		cfgs = cfgs[:0:0]
		for _, cs := range cfgStrs {
			cfg, err := core.ParseConfig(cs)
			if err != nil {
				return nil, nil, err
			}
			cfgs = append(cfgs, cfg)
		}
	}
	return benches, cfgs, nil
}

type selectionError struct{ msg string }

func (e *selectionError) Error() string { return e.msg }

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := decodeJSON(w, r, s.opts.MaxSourceBytes, &req); err != nil {
		s.badRequest(w, "decoding request: %v", err)
		return
	}
	benches, cfgs, err := s.resolveSelection(req.Benchmarks, req.Configs)
	if err != nil {
		s.badRequest(w, "%v", err)
		return
	}
	id, err := s.opts.Cluster.Submit(req.Tenant, benches, cfgs, req.IncludeReports)
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, cluster.ErrQueueFull), errors.Is(err, cluster.ErrRateLimited):
			status = http.StatusTooManyRequests
		case errors.Is(err, cluster.ErrDraining):
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, ErrorResponse{
			Error:    err.Error(),
			Outcome:  core.OutcomeError,
			ExitCode: core.OutcomeError.ExitCode(),
		})
		return
	}
	writeJSON(w, http.StatusAccepted, JobSubmitResponse{
		Job: id, StatusURL: "/v1/jobs/" + id, Cells: len(benches) * len(cfgs),
	})
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.opts.Cluster.Status(r.PathValue("id"))
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, cluster.ErrUnknownJob) {
			status = http.StatusNotFound
		}
		writeJSON(w, status, ErrorResponse{
			Error:    err.Error(),
			Outcome:  core.OutcomeError,
			ExitCode: core.OutcomeError.ExitCode(),
		})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleClusterWorkers(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.opts.Cluster.Workers())
}
