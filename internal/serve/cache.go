package serve

// The content-addressed result cache. A request's identity is the SHA-256
// of its program name, source, configuration, and effective budgets —
// identical submissions from any number of clients share one compile+run.
// Three mechanisms stack:
//
//   - LRU store: completed, deterministic outcomes are kept up to a
//     capacity; a hit costs a map lookup and a list splice.
//   - Singleflight: concurrent requests for the same key wait on the one
//     in-flight fill instead of running their own.
//   - Outcome filter: wall-clock- or environment-dependent failures
//     (timeout, cancellation, recovered panics) are never cached, so a
//     transient failure cannot poison the key.

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"io"
	"sync"

	"loopapalooza/internal/core"
)

// Entry is one completed analysis outcome: a report or a classified error.
type Entry struct {
	// Report is the completed report (nil on failure).
	Report *core.Report
	// Err is the per-run error (nil on success).
	Err error
	// Outcome classifies Err.
	Outcome core.Outcome
}

// CacheStats is a monotonic snapshot of cache traffic.
type CacheStats struct {
	// Hits counts requests served from a stored entry.
	Hits uint64
	// Misses counts requests that ran their own fill.
	Misses uint64
	// Coalesced counts requests that waited on another request's fill.
	Coalesced uint64
	// Evictions counts entries dropped by the LRU bound.
	Evictions uint64
	// Entries is the current stored-entry count (not monotonic).
	Entries int
}

// Cache is the LRU-bounded, singleflight-deduplicated result store.
type Cache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used; values are *cacheItem
	items   map[string]*list.Element
	flights map[string]*flight
	stats   CacheStats
}

type cacheItem struct {
	key   string
	entry Entry
}

// flight is one in-progress fill; waiters block on done.
type flight struct {
	done  chan struct{}
	entry Entry
}

// DefaultCacheEntries bounds the cache when Options leave it zero.
const DefaultCacheEntries = 1024

// NewCache returns a cache bounded to capacity entries
// (capacity <= 0 = DefaultCacheEntries).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheEntries
	}
	return &Cache{
		cap:     capacity,
		ll:      list.New(),
		items:   map[string]*list.Element{},
		flights: map[string]*flight{},
	}
}

// Key computes the content address of one analyze request.
func Key(name, source string, cfg core.Config, b Budgets) string {
	h := sha256.New()
	for _, s := range []string{name, source, cfg.String()} {
		io.WriteString(h, s)
		h.Write([]byte{0})
	}
	var buf [24]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(b.MaxSteps))
	binary.LittleEndian.PutUint64(buf[8:], uint64(b.MaxHeapCells))
	binary.LittleEndian.PutUint64(buf[16:], uint64(b.TimeoutMs))
	h.Write(buf[:])
	return hex.EncodeToString(h.Sum(nil))
}

// cacheable reports whether an outcome is deterministic for a fixed
// (source, config, budgets) key and therefore safe to store.
func cacheable(o core.Outcome) bool {
	switch o {
	case core.OutcomeOK, core.OutcomeStepLimit, core.OutcomeMemLimit,
		core.OutcomeRuntimeError, core.OutcomeError:
		return true
	default:
		// Timeouts depend on machine load, cancellations on the client,
		// panics on whatever environmental bug triggered them.
		return false
	}
}

// Do returns the entry for key, running fill at most once across all
// concurrent callers. The boolean reports whether this caller was served
// without running fill (stored hit or coalesced wait). The error is
// non-nil only when ctx ended while waiting on another caller's fill; the
// fill itself always completes and publishes its entry.
func (c *Cache) Do(ctx context.Context, key string, fill func() (*core.Report, error)) (Entry, bool, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.stats.Hits++
		e := el.Value.(*cacheItem).entry
		c.mu.Unlock()
		return e, true, nil
	}
	if f, ok := c.flights[key]; ok {
		c.stats.Coalesced++
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.entry, true, nil
		case <-ctx.Done():
			return Entry{}, false, ctx.Err()
		}
	}
	c.stats.Misses++
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()

	rep, err := fill()
	f.entry = Entry{Report: rep, Err: err, Outcome: core.Classify(err)}

	c.mu.Lock()
	delete(c.flights, key)
	if cacheable(f.entry.Outcome) {
		c.insertLocked(key, f.entry)
	}
	c.mu.Unlock()
	close(f.done)
	return f.entry, false, nil
}

// insertLocked stores an entry at the LRU front, evicting the tail past
// capacity. Callers hold c.mu.
func (c *Cache) insertLocked(key string, e Entry) {
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheItem).entry = e
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheItem{key: key, entry: e})
	for c.ll.Len() > c.cap {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.items, tail.Value.(*cacheItem).key)
		c.stats.Evictions++
	}
}

// Stats returns a traffic snapshot.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.ll.Len()
	return s
}
