package serve

import (
	"context"
	"testing"
	"time"
)

func TestLimiterBounds(t *testing.T) {
	l := NewLimiter(2)
	if l.Cap() != 2 {
		t.Fatalf("cap %d", l.Cap())
	}
	ctx := context.Background()
	if err := l.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := l.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if l.InUse() != 2 {
		t.Errorf("in use %d, want 2", l.InUse())
	}

	// A third acquire blocks until a release.
	acquired := make(chan struct{})
	go func() {
		if err := l.Acquire(ctx); err == nil {
			close(acquired)
		}
	}()
	select {
	case <-acquired:
		t.Fatal("third acquire succeeded while full")
	case <-time.After(20 * time.Millisecond):
	}
	l.Release()
	select {
	case <-acquired:
	case <-time.After(2 * time.Second):
		t.Fatal("acquire never unblocked after release")
	}
}

func TestLimiterContextCancel(t *testing.T) {
	l := NewLimiter(1)
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := l.Acquire(ctx); err == nil {
		t.Fatal("acquire succeeded on a full limiter with expired context")
	}
	l.Release()
	if l.InUse() != 0 {
		t.Errorf("in use %d after release", l.InUse())
	}
}

func TestLimiterDefaultCap(t *testing.T) {
	if NewLimiter(0).Cap() <= 0 {
		t.Error("default capacity not positive")
	}
}
