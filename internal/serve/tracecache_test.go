package serve

import (
	"bytes"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"loopapalooza/internal/core"
)

// TestTraceCacheLRUByteBudget exercises the byte-budget store directly:
// updates, evictions in LRU order, oversize skips, and drops.
func TestTraceCacheLRUByteBudget(t *testing.T) {
	tc := NewTraceCache(100)
	if tc.EntryCap() != 25 {
		t.Fatalf("entry cap = %d, want 25", tc.EntryCap())
	}
	blob := func(n int) []byte { return make([]byte, n) }
	tc.Put("a", nil, blob(20))
	tc.Put("b", nil, blob(20))
	tc.Put("c", nil, blob(20))
	if _, _, ok := tc.Get("a"); !ok { // a is now most recently used
		t.Fatal("a missing")
	}
	tc.Put("d", nil, blob(25))
	tc.Put("e", nil, blob(25)) // 110 bytes: evicts the LRU entry (b)
	st := tc.Stats()
	if st.Evictions != 1 || st.Bytes != 90 || st.Entries != 4 {
		t.Fatalf("after eviction: %+v, want 1 eviction, 90 bytes, 4 entries", st)
	}
	if _, _, ok := tc.Get("b"); ok {
		t.Error("b should have been evicted (least recently used)")
	}
	if _, _, ok := tc.Get("a"); !ok {
		t.Error("a should have survived (recently used)")
	}
	// Oversize entries are skipped, not stored.
	tc.Put("big", nil, blob(26))
	if st := tc.Stats(); st.Skipped != 1 {
		t.Errorf("skipped = %d, want 1", st.Skipped)
	}
	if _, _, ok := tc.Get("big"); ok {
		t.Error("oversize trace stored")
	}
	// Updating a key in place adjusts the byte account.
	tc.Put("a", nil, blob(10))
	if st := tc.Stats(); st.Bytes != 80 {
		t.Errorf("bytes after update = %d, want 80", st.Bytes)
	}
	tc.Drop("a")
	if st := tc.Stats(); st.Bytes != 70 || st.Entries != 3 {
		t.Errorf("after drop: %+v, want 70 bytes, 3 entries", st)
	}
}

// TestTraceCacheConcurrentDropDuringReplay: Drop removes an entry while
// other goroutines are replaying the trace they just Got. Get hands out
// the stored byte slice, so an in-flight replay must keep working on its
// snapshot while the entry disappears (and reappears) under it — the
// poisoned-trace fallback (Get → failed replay → Drop) races exactly
// like this in production. Run with -race.
func TestTraceCacheConcurrentDropDuringReplay(t *testing.T) {
	info, err := core.AnalyzeSource("race", okSrc)
	if err != nil {
		t.Fatal(err)
	}
	sink := &cappedBuffer{cap: 1 << 20}
	want, err := core.Run(info, core.BestHELIX(), core.RunOptions{Trace: sink})
	if err != nil || sink.overflow {
		t.Fatalf("recording run: err=%v overflow=%v", err, sink.overflow)
	}
	tc := NewTraceCache(1 << 20)
	tc.Put("k", info, sink.buf)

	// The dropper cycles Drop/Put until every reader has replayed its
	// quota, so a Get always eventually wins no matter how the goroutines
	// are scheduled — then one final Drop empties the store.
	start := make(chan struct{})
	var readers, dropper sync.WaitGroup
	var stopDrop atomic.Bool
	for i := 0; i < 4; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			<-start
			for replayed := 0; replayed < 10; {
				mi, trace, ok := tc.Get("k")
				if !ok {
					continue // dropped from under us: a legal miss
				}
				rep, err := core.ReplayTrace("race", mi, core.BestHELIX(), core.RunOptions{}, bytes.NewReader(trace))
				if err != nil {
					t.Errorf("replay during concurrent drops: %v", err)
					return
				}
				if !reflect.DeepEqual(want, rep) {
					t.Error("replay under concurrent drops diverged from the recording run")
					return
				}
				replayed++
			}
		}()
	}
	dropper.Add(1)
	go func() {
		defer dropper.Done()
		<-start
		for !stopDrop.Load() {
			tc.Drop("k")
			tc.Put("k", info, sink.buf)
		}
		tc.Drop("k")
	}()
	close(start)
	readers.Wait()
	stopDrop.Store(true)
	dropper.Wait()

	if st := tc.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("after final drop: %+v, want an empty, zero-byte store", st)
	}
}

// TestTraceCacheAccountingAfterFailedFill: fills that cannot produce a
// cacheable trace — recording overflow, failed run — must leave the byte
// account untouched, and Drop must stay idempotent so a failed replay
// can never double-subtract.
func TestTraceCacheAccountingAfterFailedFill(t *testing.T) {
	// A tier so small every recorded trace overflows the per-entry cap:
	// the analyze succeeds, the trace is discarded, the account stays 0.
	s, ts := newTestServer(t, Options{TraceCacheBytes: 40})
	status, body := postJSON(t, ts.URL+"/v1/analyze",
		AnalyzeRequest{Name: "big", Source: okSrc})
	if status != http.StatusOK {
		t.Fatalf("analyze with tiny trace tier: %d\n%s", status, body)
	}
	if st := s.traces.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("overflowed recording leaked into the store: %+v", st)
	}

	// A fill that fails outright must not store its partial trace.
	s2, ts2 := newTestServer(t, Options{})
	status, body = postJSON(t, ts2.URL+"/v1/analyze",
		AnalyzeRequest{Name: "doomed", Source: okSrc, Budgets: &Budgets{MaxSteps: 10}})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("step-limited analyze: %d, want 422\n%s", status, body)
	}
	if st := s2.traces.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("failed fill leaked a trace into the store: %+v", st)
	}

	// Drop is idempotent: ghosts and double drops leave the account exact.
	tc := NewTraceCache(100)
	tc.Put("x", nil, make([]byte, 10))
	tc.Put("y", nil, make([]byte, 7))
	tc.Drop("ghost")
	tc.Drop("x")
	tc.Drop("x")
	if st := tc.Stats(); st.Bytes != 7 || st.Entries != 1 {
		t.Fatalf("after ghost/double drops: %+v, want exactly y's 7 bytes", st)
	}
}

// TestTraceKeyConfigIndependent: the trace key ignores the configuration
// (that's the point of the tier) but separates budgets and sources.
func TestTraceKeyConfigIndependent(t *testing.T) {
	b := Budgets{MaxSteps: 100}
	k := TraceKey("p", okSrc, b)
	if k != TraceKey("p", okSrc, b) {
		t.Error("key not deterministic")
	}
	if k == TraceKey("p", okSrc, Budgets{MaxSteps: 101}) {
		t.Error("budgets not keyed")
	}
	if k == TraceKey("p", slowSrc, b) {
		t.Error("source not keyed")
	}
	if k == Key("p", okSrc, core.Config{Model: core.DOALL}, b) {
		t.Error("trace key collided with a result-cache key")
	}
}

// TestCappedBuffer: writes past the cap are discarded without error and
// flagged, so a huge trace cannot fail or bloat the run that records it.
func TestCappedBuffer(t *testing.T) {
	b := &cappedBuffer{cap: 10}
	for i := 0; i < 5; i++ {
		n, err := b.Write([]byte("abcd"))
		if n != 4 || err != nil {
			t.Fatalf("write %d: (%d, %v), want (4, nil)", i, n, err)
		}
	}
	if !b.overflow || len(b.buf) != 10 {
		t.Errorf("overflow=%v len=%d, want flagged overflow holding 10 bytes", b.overflow, len(b.buf))
	}
}

// TestAnalyzeTraceTier: the second configuration of an already-analyzed
// program is served by trace replay — no second interpretation — and the
// replayed report is identical to a live run's.
func TestAnalyzeTraceTier(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	req := AnalyzeRequest{Name: "tiered", Source: okSrc, Config: "reduc1-dep2-fn2 PDOALL"}
	status, body := postJSON(t, ts.URL+"/v1/analyze", req)
	if status != http.StatusOK {
		t.Fatalf("first config: %d\n%s", status, body)
	}
	if st := s.traces.Stats(); st.Hits != 0 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("after first run: %+v, want 1 miss recording 1 trace", st)
	}

	req.Config = "reduc1-dep1-fn2 HELIX"
	status, body = postJSON(t, ts.URL+"/v1/analyze", req)
	if status != http.StatusOK {
		t.Fatalf("second config: %d\n%s", status, body)
	}
	ar := decodeAnalyze(t, body)
	if ar.Cached {
		t.Error("novel config reported as a full-cache hit")
	}
	if st := s.traces.Stats(); st.Hits != 1 {
		t.Fatalf("after second config: %+v, want a trace hit", st)
	}
	want, err := core.RunSource("tiered", okSrc, core.BestHELIX(), core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, ar.Report) {
		t.Errorf("replayed report differs from live run:\nlive:   %+v\nreplay: %+v", want, ar.Report)
	}

	// Different budgets are a different execution: no trace hit.
	req.Config = ""
	req.Budgets = &Budgets{MaxSteps: 1 << 30}
	if status, body := postJSON(t, ts.URL+"/v1/analyze", req); status != http.StatusOK {
		t.Fatalf("budgeted request: %d\n%s", status, body)
	}
	if st := s.traces.Stats(); st.Hits != 1 || st.Entries != 2 {
		t.Errorf("budgets must partition the trace tier: %+v", st)
	}
}

// TestAnalyzeTraceTierCorruptFallback: a poisoned cache entry is dropped
// and the request is served by a live run, not an error.
func TestAnalyzeTraceTierCorruptFallback(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	tkey := TraceKey("victim", okSrc, s.effectiveBudgets(nil))
	info, err := core.AnalyzeSource("victim", okSrc)
	if err != nil {
		t.Fatal(err)
	}
	s.traces.Put(tkey, info, []byte("not a trace"))

	status, body := postJSON(t, ts.URL+"/v1/analyze",
		AnalyzeRequest{Name: "victim", Source: okSrc})
	if status != http.StatusOK {
		t.Fatalf("fallback failed: %d\n%s", status, body)
	}
	ar := decodeAnalyze(t, body)
	if ar.Report == nil || ar.Report.Speedup() <= 0 {
		t.Fatalf("no usable report after fallback: %+v", ar.Report)
	}
	// The poisoned entry was replaced by the live run's fresh trace.
	if _, trace, ok := s.traces.Get(tkey); !ok || strings.HasPrefix(string(trace), "not a trace") {
		t.Error("poisoned trace entry not replaced")
	}
}

// TestAnalyzeTraceTierDisabled: a negative budget turns the tier off and
// analyze still works.
func TestAnalyzeTraceTierDisabled(t *testing.T) {
	s, ts := newTestServer(t, Options{TraceCacheBytes: -1})
	if s.traces != nil {
		t.Fatal("trace tier should be disabled")
	}
	status, body := postJSON(t, ts.URL+"/v1/analyze",
		AnalyzeRequest{Source: okSrc})
	if status != http.StatusOK {
		t.Fatalf("analyze without trace tier: %d\n%s", status, body)
	}
}

// TestSweepSharesExecutions: /v1/sweep over several configurations runs
// each program once (the harness fan-out), visible through Stats.
func TestSweepSharesExecutions(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	status, body := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Benchmarks: []string{"181.mcf", "164.gzip"},
		Configs:    []string{"reduc0-dep0-fn0 DOALL", "reduc1-dep2-fn2 PDOALL", "reduc1-dep1-fn2 HELIX"},
	})
	if status != http.StatusOK {
		t.Fatalf("sweep: %d\n%s", status, body)
	}
	st := s.harness.Stats()
	if st.Executions != 2 || st.Cells != 6 || st.Saved != 4 {
		t.Errorf("harness stats = %+v, want 2 executions serving 6 cells (4 saved)", st)
	}
}
