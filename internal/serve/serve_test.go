package serve

// End-to-end coverage of the analysis service over real HTTP: round trips,
// the cache-hit fast path, budget rejections with taxonomy codes,
// positioned diagnostics for malformed programs, and graceful drain.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"loopapalooza/internal/bench"
	"loopapalooza/internal/core"
)

// okSrc is a small program whose outer loops parallelize under reduc1.
const okSrc = `
const N = 500;
var tab [N]int;
func main() int {
	var i int;
	for (i = 0; i < N; i = i + 1) { tab[i] = i * 3 % 17; }
	var sum int = 0;
	for (i = 0; i < N; i = i + 1) { sum = sum + tab[i]; }
	return sum;
}`

// slowSrc runs ~9M IR instructions (~150ms): long enough that a cache hit
// is measurably (>=10x) faster than the first run.
const slowSrc = `
func main() int {
	var i int;
	var s int = 0;
	for (i = 0; i < 1000000; i = i + 1) { s = s + i % 7; }
	return s;
}`

// badSrc does not parse.
const badSrc = "func main( int { return 0; }"

// faultSrc divides by a runtime zero.
const faultSrc = `
func main() int {
	var z int = 0;
	var i int;
	for (i = 0; i < 10; i = i + 1) { z = z + 0; }
	return 1 / z;
}`

// newTestServer builds a Server and an httptest front end around it.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

// postJSON posts v and returns the status and body.
func postJSON(t *testing.T, url string, v any) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func decodeAnalyze(t *testing.T, body []byte) AnalyzeResponse {
	t.Helper()
	var ar AnalyzeResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatalf("decoding analyze response: %v\n%s", err, body)
	}
	return ar
}

func decodeError(t *testing.T, body []byte) ErrorResponse {
	t.Helper()
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("decoding error response: %v\n%s", err, body)
	}
	return er
}

func TestAnalyzeRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	status, body := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{
		Name:   "roundtrip",
		Source: okSrc,
		Config: "reduc1-dep0-fn0 DOALL",
	})
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, body)
	}
	ar := decodeAnalyze(t, body)
	if ar.Cached {
		t.Error("first request reported cached")
	}
	if ar.Outcome != core.OutcomeOK {
		t.Errorf("outcome %v", ar.Outcome)
	}
	r := ar.Report
	if r == nil {
		t.Fatal("nil report")
	}
	if r.Benchmark != "roundtrip" {
		t.Errorf("benchmark %q", r.Benchmark)
	}
	if r.Config.String() != "reduc1-dep0-fn0 DOALL" {
		t.Errorf("config %v", r.Config)
	}
	if r.Speedup() <= 1 {
		t.Errorf("speedup %.2f, want > 1 (both loops are DOALL under reduc1)", r.Speedup())
	}
	if len(r.Loops) == 0 {
		t.Error("no loops in report")
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var hr HealthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "ok" {
		t.Errorf("status %q", hr.Status)
	}
}

// TestAnalyzeCacheHit is the acceptance gate: the second identical request
// must be served from the cache, at least 10x faster than the run that
// filled it.
func TestAnalyzeCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	req := AnalyzeRequest{Name: "slow", Source: slowSrc, Config: "reduc1-dep1-fn2 HELIX"}

	t0 := time.Now()
	status, body := postJSON(t, ts.URL+"/v1/analyze", req)
	missDur := time.Since(t0)
	if status != http.StatusOK {
		t.Fatalf("first request: status %d, body %s", status, body)
	}
	first := decodeAnalyze(t, body)
	if first.Cached {
		t.Error("first request reported cached")
	}

	t1 := time.Now()
	status, body = postJSON(t, ts.URL+"/v1/analyze", req)
	hitDur := time.Since(t1)
	if status != http.StatusOK {
		t.Fatalf("second request: status %d, body %s", status, body)
	}
	second := decodeAnalyze(t, body)
	if !second.Cached {
		t.Error("second identical request was not served from the cache")
	}
	if first.Report.SerialCost != second.Report.SerialCost {
		t.Errorf("cached report drifted: serial cost %d vs %d",
			first.Report.SerialCost, second.Report.SerialCost)
	}
	if hitDur*10 > missDur {
		t.Errorf("cache hit not >=10x faster: miss %v, hit %v", missDur, hitDur)
	}
	if st := s.cache.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("cache stats %+v, want 1 hit / 1 miss", st)
	}

	// A different configuration is a different content address.
	status, body = postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{
		Name: "slow", Source: slowSrc, Config: "reduc0-dep0-fn0 PDOALL",
	})
	if status != http.StatusOK {
		t.Fatalf("third request: status %d, body %s", status, body)
	}
	if decodeAnalyze(t, body).Cached {
		t.Error("different config was served from the cache")
	}
}

func TestAnalyzeBudgetExceeded(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	status, body := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{
		Name:    "tiny-budget",
		Source:  slowSrc,
		Config:  "reduc1-dep1-fn2 HELIX",
		Budgets: &Budgets{MaxSteps: 10_000},
	})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422; body %s", status, body)
	}
	er := decodeError(t, body)
	if er.Outcome != core.OutcomeStepLimit {
		t.Errorf("outcome %v, want step-limit", er.Outcome)
	}
	if er.ExitCode != 4 {
		t.Errorf("exit code %d, want 4", er.ExitCode)
	}
	if er.Error == "" {
		t.Error("empty error message")
	}
}

func TestAnalyzeBudgetClamped(t *testing.T) {
	// The server caps steps at 10k; a request asking for billions still
	// trips the cap.
	_, ts := newTestServer(t, Options{
		DefaultBudgets: Budgets{MaxSteps: 10_000},
		MaxBudgets:     Budgets{MaxSteps: 10_000},
	})
	status, body := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{
		Source:  slowSrc,
		Budgets: &Budgets{MaxSteps: 2_000_000_000},
	})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422; body %s", status, body)
	}
	if er := decodeError(t, body); er.Outcome != core.OutcomeStepLimit {
		t.Errorf("outcome %v, want step-limit", er.Outcome)
	}
}

func TestAnalyzeRuntimeFault(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	status, body := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{
		Name: "fault", Source: faultSrc,
	})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422; body %s", status, body)
	}
	er := decodeError(t, body)
	if er.Outcome != core.OutcomeRuntimeError {
		t.Errorf("outcome %v, want runtime-error", er.Outcome)
	}
	if er.ExitCode != 3 {
		t.Errorf("exit code %d, want 3", er.ExitCode)
	}
}

// syncBuffer is a race-safe log sink.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestAnalyzeMalformedSource(t *testing.T) {
	logBuf := &syncBuffer{}
	_, ts := newTestServer(t, Options{
		Log: slog.New(slog.NewJSONHandler(logBuf, nil)),
	})
	status, body := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{
		Name: "bad.lpc", Source: badSrc,
	})
	if status != http.StatusBadRequest {
		t.Fatalf("status %d, want 400; body %s", status, body)
	}
	er := decodeError(t, body)
	if er.Outcome != core.OutcomeError {
		t.Errorf("outcome %v, want error", er.Outcome)
	}
	if len(er.Diagnostics) == 0 {
		t.Fatalf("no diagnostics in error body: %s", body)
	}
	d := er.Diagnostics[0]
	if d.File != "bad.lpc" || d.Line <= 0 || d.Col <= 0 || d.Message == "" {
		t.Errorf("diagnostic not positioned: %+v", d)
	}
	if d.Severity != "error" {
		t.Errorf("severity %q", d.Severity)
	}
	// The structured request log carries the positions.
	if log := logBuf.String(); !strings.Contains(log, "rejected program") ||
		!strings.Contains(log, fmt.Sprintf("bad.lpc:%d:%d", d.Line, d.Col)) {
		t.Errorf("request log missing rejected-program positions:\n%s", log)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, tt := range []struct {
		name string
		req  AnalyzeRequest
	}{
		{"empty source", AnalyzeRequest{Config: "reduc0-dep0-fn0 DOALL"}},
		{"bad config", AnalyzeRequest{Source: okSrc, Config: "reduc9 WARP"}},
		{"invalid combination", AnalyzeRequest{Source: okSrc, Config: "reduc0-dep2-fn0 DOALL"}},
	} {
		status, body := postJSON(t, ts.URL+"/v1/analyze", tt.req)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400; body %s", tt.name, status, body)
		}
	}
	// Invalid JSON body.
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid JSON: status %d, want 400", resp.StatusCode)
	}
	// Wrong method.
	resp, err = http.Get(ts.URL + "/v1/analyze")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET analyze: status %d, want 405", resp.StatusCode)
	}
}

func TestSweepEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep endpoint runs real benchmark cells")
	}
	_, ts := newTestServer(t, Options{})
	names := []string{}
	for _, b := range bench.BySuite(bench.SuiteEEMBC)[:2] {
		names = append(names, b.Name)
	}
	status, body := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Benchmarks: names,
		Configs:    []string{"reduc0-dep0-fn0 DOALL", "reduc1-dep1-fn2 HELIX"},
	})
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, body)
	}
	var sr SweepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("decoding sweep response: %v\n%s", err, body)
	}
	if len(sr.Cells) != 4 {
		t.Fatalf("%d cells, want 4", len(sr.Cells))
	}
	if sr.Counts[core.OutcomeOK] != 4 {
		t.Errorf("counts %v, want 4 ok; summary %q", sr.Counts, sr.Summary)
	}
	for _, c := range sr.Cells {
		if c.Speedup <= 0 {
			t.Errorf("cell %s %v: speedup %v", c.Bench, c.Config, c.Speedup)
		}
	}

	// Unknown benchmark and bad config reject with 400.
	if status, _ := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{Benchmarks: []string{"999.vapor"}}); status != http.StatusBadRequest {
		t.Errorf("unknown benchmark: status %d, want 400", status)
	}
	if status, _ := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{Configs: []string{"warp9"}}); status != http.StatusBadRequest {
		t.Errorf("bad config: status %d, want 400", status)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := AnalyzeRequest{Name: "m", Source: okSrc, Config: "reduc1-dep0-fn0 DOALL"}
	postJSON(t, ts.URL+"/v1/analyze", req)
	postJSON(t, ts.URL+"/v1/analyze", req) // cache hit

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	fanout := core.PlanFanout(len(core.PaperConfigs()), core.RunOptions{}).String()
	for _, want := range []string{
		`lpd_requests_total{path="/v1/analyze",code="200"} 2`,
		"lpd_cache_hits_total 1",
		"lpd_cache_misses_total 1",
		`lpd_analyze_outcomes_total{outcome="ok"} 2`,
		`lpd_request_seconds_bucket{path="/v1/analyze",le="+Inf"} 2`,
		"lpd_request_seconds_count", // histogram family rendered
		"lpd_ticks_simulated_total",
		"lpd_cache_entries 1",
		fmt.Sprintf(`lpd_engine_info{engine="bytecode",fanout=%q} 1`, fanout),
		"# TYPE lpd_requests_total counter",
		"# TYPE lpd_cache_entries gauge",
		"# TYPE lpd_request_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestEngineOption: a server pinned to the treewalk oracle serves the
// same reports as the default bytecode server and advertises its engine
// on /metrics.
func TestEngineOption(t *testing.T) {
	_, tsB := newTestServer(t, Options{})
	_, tsT := newTestServer(t, Options{Engine: core.EngineTreewalk})
	req := AnalyzeRequest{Name: "e", Source: okSrc, Config: "reduc1-dep1-fn2 HELIX"}
	stB, bodyB := postJSON(t, tsB.URL+"/v1/analyze", req)
	stT, bodyT := postJSON(t, tsT.URL+"/v1/analyze", req)
	if stB != http.StatusOK || stT != http.StatusOK {
		t.Fatalf("status %d / %d, want 200", stB, stT)
	}
	var respB, respT AnalyzeResponse
	if err := json.Unmarshal(bodyB, &respB); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(bodyT, &respT); err != nil {
		t.Fatal(err)
	}
	if err := core.CompareReports(respB.Report, respT.Report); err != nil {
		t.Errorf("engines serve diverging reports: %v", err)
	}
	resp, err := http.Get(tsT.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if want := `lpd_engine_info{engine="treewalk"`; !strings.Contains(string(body), want) {
		t.Errorf("metrics missing %q", want)
	}
}

// TestParallelismOption: a server pinned to a serial fan-out pool serves
// reports bit-identical to the default width and advertises the resolved
// plan on /metrics.
func TestParallelismOption(t *testing.T) {
	_, tsD := newTestServer(t, Options{})
	_, tsS := newTestServer(t, Options{Parallelism: 1})
	req := SweepRequest{
		Benchmarks:     []string{"181.mcf"},
		Configs:        []string{"reduc1-dep0-fn0 DOALL", "reduc1-dep1-fn2 HELIX", "reduc1-dep2-fn2 PDOALL", "reduc0-dep0-fn0 DOALL"},
		IncludeReports: true,
	}
	stD, bodyD := postJSON(t, tsD.URL+"/v1/sweep", req)
	stS, bodyS := postJSON(t, tsS.URL+"/v1/sweep", req)
	if stD != http.StatusOK || stS != http.StatusOK {
		t.Fatalf("status %d / %d, want 200", stD, stS)
	}
	var respD, respS SweepResponse
	if err := json.Unmarshal(bodyD, &respD); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(bodyS, &respS); err != nil {
		t.Fatal(err)
	}
	if len(respD.Cells) != len(respS.Cells) {
		t.Fatalf("cell count %d vs %d", len(respD.Cells), len(respS.Cells))
	}
	for i := range respD.Cells {
		if err := core.CompareReports(respD.Cells[i].Report, respS.Cells[i].Report); err != nil {
			t.Errorf("cell %d: pool widths serve diverging reports: %v", i, err)
		}
	}
	resp, err := http.Get(tsS.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	fanout := core.PlanFanout(len(core.PaperConfigs()), core.RunOptions{Parallelism: 1}).String()
	if want := fmt.Sprintf(`lpd_engine_info{engine="bytecode",fanout=%q} 1`, fanout); !strings.Contains(string(body), want) {
		t.Errorf("metrics missing %q", want)
	}
}

// TestGracefulShutdownDrains checks Shutdown waits for an in-flight
// analysis to finish and the client still receives its 200.
func TestGracefulShutdownDrains(t *testing.T) {
	s, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(l) }()
	url := "http://" + l.Addr().String()

	// Use the 2M-iteration program (~300ms) so the request is reliably
	// in flight when Shutdown begins.
	bigSrc := strings.Replace(slowSrc, "1000000", "2000000", 1)
	type result struct {
		status int
		body   []byte
		err    error
	}
	resc := make(chan result, 1)
	go func() {
		b, _ := json.Marshal(AnalyzeRequest{Name: "drain", Source: bigSrc})
		resp, err := http.Post(url+"/v1/analyze", "application/json", bytes.NewReader(b))
		if err != nil {
			resc <- result{err: err}
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		resc <- result{status: resp.StatusCode, body: body}
	}()

	// Wait until the run actually holds a limiter slot.
	deadline := time.Now().Add(5 * time.Second)
	for s.lim.InUse() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}

	// Generous guard: under -race with the whole suite saturating the
	// machine, the ~300ms in-flight run can stretch well past its
	// unloaded time; the contract under test is only that Shutdown
	// waits for it.
	shutCtx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Shutdown(shutCtx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	s.Close()

	res := <-resc
	if res.err != nil {
		t.Fatalf("in-flight request failed across shutdown: %v", res.err)
	}
	if res.status != http.StatusOK {
		t.Fatalf("in-flight request: status %d, body %s", res.status, res.body)
	}
	ar := decodeAnalyze(t, res.body)
	if ar.Report == nil || ar.Report.SerialCost == 0 {
		t.Error("drained request returned an empty report")
	}
	if err := <-serveDone; err != nil {
		t.Errorf("serve returned %v after shutdown", err)
	}
	// New connections are refused after drain.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Error("server still accepting connections after shutdown")
	}
}
