package serve

// The durable trace tier: a directory of chunk-checksummed .lptrace
// files keyed by the same content address as the in-memory TraceCache.
// Where the memory tier dies with the process, the store survives
// restarts — a recycled server replays yesterday's traces instead of
// re-interpreting every program from scratch.
//
// The store is self-healing. Every file carries per-chunk CRC32C
// checksums (wal.WriteChunked), so silent disk corruption is detected
// on read; a scrubber walks the directory at startup and on a timer,
// moving files that fail verification into quarantine/ beside the
// store. A quarantined or missing trace is simply a miss: the next
// demand for that program runs live and re-records the trace — repair
// by re-execution, never by trusting damaged bytes.

import (
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"loopapalooza/internal/wal"
)

// DefaultScrubInterval is the scrubber period when Options leave it
// zero.
const DefaultScrubInterval = 5 * time.Minute

// traceExt is the on-disk suffix of one stored trace.
const traceExt = ".lptrace"

// quarantineDir is the subdirectory corrupt traces are moved into.
const quarantineDir = "quarantine"

// TraceStoreStats is a monotonic snapshot of disk-tier traffic.
type TraceStoreStats struct {
	// Hits counts reads that returned a verified trace.
	Hits uint64
	// Misses counts reads with no stored (or no readable) trace.
	Misses uint64
	// Puts counts traces written.
	Puts uint64
	// WriteErrors counts failed writes (the fill still succeeds).
	WriteErrors uint64
	// Quarantined counts files moved to quarantine/ — corrupt on read
	// or scrub, or unreplayable on demand.
	Quarantined uint64
	// ScrubRuns counts scrubber passes; ScrubFiles the traces they
	// verified; ScrubCorrupt the ones that failed verification.
	ScrubRuns    uint64
	ScrubFiles   uint64
	ScrubCorrupt uint64
}

// TraceStore is the durable trace tier rooted at one directory.
type TraceStore struct {
	dir  string
	qdir string

	mu    sync.Mutex
	stats TraceStoreStats
}

// NewTraceStore opens (creating if needed) the trace store in dir.
func NewTraceStore(dir string) (*TraceStore, error) {
	qdir := filepath.Join(dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: trace store: %w", err)
	}
	return &TraceStore{dir: dir, qdir: qdir}, nil
}

// Dir returns the store's root directory.
func (ts *TraceStore) Dir() string { return ts.dir }

func (ts *TraceStore) path(key string) string {
	return filepath.Join(ts.dir, key+traceExt)
}

// Get returns the stored trace for key, checksum-verified. A missing
// file is (nil, nil) — a plain miss. A file that fails verification is
// quarantined and returned as a miss alongside the corruption error,
// so the caller can log what the scrubber would have found.
func (ts *TraceStore) Get(key string) ([]byte, error) {
	data, err := wal.ReadChunked(ts.path(key))
	switch {
	case err == nil:
		ts.bump(func(s *TraceStoreStats) { s.Hits++ })
		return data, nil
	case errors.Is(err, os.ErrNotExist):
		ts.bump(func(s *TraceStoreStats) { s.Misses++ })
		return nil, nil
	default:
		ts.bump(func(s *TraceStoreStats) { s.Misses++ })
		ts.Quarantine(key)
		return nil, err
	}
}

// Put stores one recorded trace under key, atomically.
func (ts *TraceStore) Put(key string, trace []byte) error {
	if err := wal.WriteChunked(ts.path(key), trace, 0); err != nil {
		ts.bump(func(s *TraceStoreStats) { s.WriteErrors++ })
		return fmt.Errorf("serve: trace store: %w", err)
	}
	ts.bump(func(s *TraceStoreStats) { s.Puts++ })
	return nil
}

// Quarantine moves key's file into quarantine/ (keeping the evidence
// for inspection instead of deleting it), so the next demand for the
// program re-executes and re-records. Quarantining an absent file is a
// no-op: a concurrent reader may have already moved it.
func (ts *TraceStore) Quarantine(key string) error {
	err := os.Rename(ts.path(key), filepath.Join(ts.qdir, key+traceExt))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("serve: quarantining trace: %w", err)
	}
	ts.bump(func(s *TraceStoreStats) { s.Quarantined++ })
	return nil
}

// ScrubResult reports one scrubber pass.
type ScrubResult struct {
	// Files is how many stored traces were verified.
	Files int
	// Corrupt is how many failed verification and were quarantined.
	Corrupt int
}

// Scrub verifies every stored trace's checksums and quarantines the
// failures. Run at startup and periodically; log receives one warning
// per corrupt file (nil = silent).
func (ts *TraceStore) Scrub(log *slog.Logger) ScrubResult {
	var res ScrubResult
	ents, err := os.ReadDir(ts.dir)
	if err != nil {
		if log != nil {
			log.Warn("trace scrub: reading store", "dir", ts.dir, "err", err.Error())
		}
		return res
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, traceExt) {
			continue
		}
		res.Files++
		if verr := wal.VerifyChunked(filepath.Join(ts.dir, name)); verr != nil {
			res.Corrupt++
			key := strings.TrimSuffix(name, traceExt)
			if qerr := ts.Quarantine(key); qerr != nil && log != nil {
				log.Warn("trace scrub: quarantine failed", "file", name, "err", qerr.Error())
			} else if log != nil {
				log.Warn("trace scrub: quarantined corrupt trace", "file", name, "err", verr.Error())
			}
		}
	}
	ts.bump(func(s *TraceStoreStats) {
		s.ScrubRuns++
		s.ScrubFiles += uint64(res.Files)
		s.ScrubCorrupt += uint64(res.Corrupt)
	})
	return res
}

// Stats returns a traffic snapshot.
func (ts *TraceStore) Stats() TraceStoreStats {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.stats
}

func (ts *TraceStore) bump(f func(*TraceStoreStats)) {
	ts.mu.Lock()
	f(&ts.stats)
	ts.mu.Unlock()
}
