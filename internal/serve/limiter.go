package serve

import (
	"context"
	"runtime"
)

// Limiter bounds how many analysis executions run simultaneously. Cache
// hits bypass it entirely; only cache fills and sweeps take a slot, so a
// hot cache keeps serving while the CPUs are saturated with misses.
type Limiter struct {
	sem chan struct{}
}

// NewLimiter returns a limiter admitting n concurrent holders
// (n <= 0 = GOMAXPROCS).
func NewLimiter(n int) *Limiter {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Limiter{sem: make(chan struct{}, n)}
}

// Acquire blocks until a slot frees or ctx is done.
func (l *Limiter) Acquire(ctx context.Context) error {
	select {
	case l.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release frees a slot taken by Acquire.
func (l *Limiter) Release() { <-l.sem }

// InUse returns the number of currently held slots.
func (l *Limiter) InUse() int { return len(l.sem) }

// Cap returns the limiter's capacity.
func (l *Limiter) Cap() int { return cap(l.sem) }
