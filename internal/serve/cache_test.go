package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"loopapalooza/internal/core"
)

func mkReport(cost int64) *core.Report {
	return &core.Report{Benchmark: "r", SerialCost: cost, ParallelCost: 1}
}

// TestCacheSingleflight checks concurrent requests for one key share a
// single fill.
func TestCacheSingleflight(t *testing.T) {
	c := NewCache(8)
	var fills atomic.Int64
	fill := func() (*core.Report, error) {
		fills.Add(1)
		time.Sleep(50 * time.Millisecond)
		return mkReport(42), nil
	}
	const waiters = 16
	var wg sync.WaitGroup
	reports := make([]*core.Report, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, _, err := c.Do(context.Background(), "k", fill)
			if err != nil {
				t.Errorf("Do: %v", err)
				return
			}
			reports[i] = e.Report
		}(i)
	}
	wg.Wait()
	if n := fills.Load(); n != 1 {
		t.Errorf("%d fills, want 1 (singleflight)", n)
	}
	for i, r := range reports {
		if r != reports[0] {
			t.Fatalf("waiter %d got a different report instance", i)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits+st.Coalesced != waiters-1 {
		t.Errorf("stats %+v, want 1 miss and %d shared", st, waiters-1)
	}
}

// TestCacheLRU checks the capacity bound evicts least-recently-used keys.
func TestCacheLRU(t *testing.T) {
	c := NewCache(2)
	fill := func(cost int64) func() (*core.Report, error) {
		return func() (*core.Report, error) { return mkReport(cost), nil }
	}
	ctx := context.Background()
	c.Do(ctx, "a", fill(1))
	c.Do(ctx, "b", fill(2))
	c.Do(ctx, "c", fill(3)) // evicts a
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("stats %+v, want 1 eviction, 2 entries", st)
	}
	if _, hit, _ := c.Do(ctx, "c", fill(3)); !hit {
		t.Error("c missing after insert")
	}
	if _, hit, _ := c.Do(ctx, "a", fill(1)); hit {
		t.Error("a survived past capacity")
	}
	// Touching b made it recent; inserting a again evicted... b was LRU
	// after c,a touches. Verify b is gone and c stays.
	if _, hit, _ := c.Do(ctx, "b", fill(2)); hit {
		t.Error("b not evicted by a's reinsert")
	}
}

// TestCacheUncacheableOutcomes checks wall-clock-dependent failures are
// never stored.
func TestCacheUncacheableOutcomes(t *testing.T) {
	for _, tt := range []struct {
		name      string
		err       error
		cacheable bool
	}{
		{"ok", nil, true},
		{"step-limit", fmt.Errorf("x: %w", core.ErrStepLimit), true},
		{"mem-limit", fmt.Errorf("x: %w", core.ErrMemLimit), true},
		{"runtime", fmt.Errorf("x: %w", core.ErrRuntime), true},
		{"compile", fmt.Errorf("syntax error"), true},
		{"timeout", fmt.Errorf("x: %w", core.ErrDeadline), false},
		{"canceled", fmt.Errorf("x: %w", core.ErrCanceled), false},
		{"panic", &core.PanicError{Val: "boom"}, false},
	} {
		c := NewCache(8)
		var fills int
		fill := func() (*core.Report, error) {
			fills++
			if tt.err != nil {
				return nil, tt.err
			}
			return mkReport(1), nil
		}
		c.Do(context.Background(), "k", fill)
		_, hit, _ := c.Do(context.Background(), "k", fill)
		wantFills := 2
		if tt.cacheable {
			wantFills = 1
		}
		if fills != wantFills || hit != tt.cacheable {
			t.Errorf("%s: fills=%d hit=%v, want fills=%d hit=%v",
				tt.name, fills, hit, wantFills, tt.cacheable)
		}
	}
}

// TestCacheWaiterCancellation checks a canceled waiter unblocks without
// disturbing the fill.
func TestCacheWaiterCancellation(t *testing.T) {
	c := NewCache(8)
	started := make(chan struct{})
	release := make(chan struct{})
	go c.Do(context.Background(), "k", func() (*core.Report, error) {
		close(started)
		<-release
		return mkReport(1), nil
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.Do(ctx, "k", func() (*core.Report, error) {
		t.Error("second fill ran despite singleflight")
		return nil, nil
	})
	if err == nil {
		t.Error("canceled waiter returned nil error")
	}
	close(release)
	// The fill still completed and cached; a new request hits.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, hit, _ := c.Do(context.Background(), "k", func() (*core.Report, error) {
			return mkReport(1), nil
		}); hit {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("fill result never became visible")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestKey checks the content address covers every request dimension.
func TestKey(t *testing.T) {
	base := Key("n", "src", core.Config{Model: core.DOALL}, Budgets{MaxSteps: 1})
	if base != Key("n", "src", core.Config{Model: core.DOALL}, Budgets{MaxSteps: 1}) {
		t.Error("identical requests produced different keys")
	}
	for name, k := range map[string]string{
		"name":    Key("m", "src", core.Config{Model: core.DOALL}, Budgets{MaxSteps: 1}),
		"source":  Key("n", "src2", core.Config{Model: core.DOALL}, Budgets{MaxSteps: 1}),
		"config":  Key("n", "src", core.Config{Model: core.PDOALL}, Budgets{MaxSteps: 1}),
		"budgets": Key("n", "src", core.Config{Model: core.DOALL}, Budgets{MaxSteps: 2}),
	} {
		if k == base {
			t.Errorf("changing %s did not change the key", name)
		}
	}
	// Field boundaries are delimited: ("ab","c") != ("a","bc").
	if Key("ab", "c", core.Config{}, Budgets{}) == Key("a", "bc", core.Config{}, Budgets{}) {
		t.Error("name/source boundary not delimited")
	}
}
