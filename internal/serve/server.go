// Package serve turns the limit-study pipeline into a long-lived analysis
// service: an HTTP server exposing compile+run analysis (POST /v1/analyze),
// benchmark sweeps over the resident harness (POST /v1/sweep), liveness
// (GET /healthz), readiness (GET /readyz), and Prometheus metrics
// (GET /metrics). With a cluster.Coordinator attached it also serves the
// async job API (POST /v1/jobs, GET /v1/jobs/{id}) and the worker-facing
// lease endpoints (POST /v1/cluster/*).
//
// Every analyze request flows through a content-addressed cache (SHA-256
// of name+source+config+budgets, LRU-bounded, singleflight-deduplicated),
// so identical submissions from many clients share one compile+run. Cache
// fills and sweeps pass a server-level concurrency limiter, and every run
// carries the resource budgets (step, heap, wall-clock) clamped to the
// server's caps. Shutdown drains in-flight requests before returning.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"loopapalooza/internal/bench"
	"loopapalooza/internal/cluster"
	"loopapalooza/internal/core"
	"loopapalooza/internal/diag"
)

// Budgets are the per-request resource limits, JSON-addressable so clients
// can tighten (never exceed) the server's caps.
type Budgets struct {
	// MaxSteps bounds the dynamic instruction count (0 = server default).
	MaxSteps int64 `json:"maxSteps,omitempty"`
	// MaxHeapCells bounds the simulated heap in 64-bit cells (0 = server
	// default).
	MaxHeapCells int64 `json:"maxHeapCells,omitempty"`
	// TimeoutMs bounds the run's wall-clock time in milliseconds (0 =
	// server default).
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
}

// Options configures a Server.
type Options struct {
	// DefaultBudgets apply when a request leaves a budget zero.
	DefaultBudgets Budgets
	// MaxBudgets cap what a request may ask for (zero field = uncapped).
	MaxBudgets Budgets
	// MaxConcurrent bounds simultaneous cache fills and sweeps
	// (0 = GOMAXPROCS).
	MaxConcurrent int
	// CacheEntries bounds the result cache (0 = DefaultCacheEntries).
	CacheEntries int
	// TraceCacheBytes bounds the trace tier — recorded event streams that
	// serve novel configurations of already-seen programs by replay
	// instead of re-interpretation (0 = DefaultTraceCacheBytes, negative
	// disables the tier).
	TraceCacheBytes int64
	// TraceDir roots the durable trace tier: checksummed .lptrace files
	// that survive restarts, scrubbed for corruption at startup and
	// every ScrubInterval ("" disables the disk tier).
	TraceDir string
	// ScrubInterval is the period of the trace-store scrubber
	// (0 = DefaultScrubInterval, negative = startup scrub only).
	ScrubInterval time.Duration
	// MaxSourceBytes bounds the request body (0 = 1 MiB).
	MaxSourceBytes int64
	// DefaultConfig is applied when a request omits the configuration
	// ("" = "reduc1-dep1-fn2 HELIX", the best realistic HELIX of Fig. 4).
	DefaultConfig string
	// Engine selects the execution engine for every run this server
	// performs. The zero value is the bytecode VM; EngineTreewalk keeps
	// the tree-walking oracle. Exposed as the lpd_engine_info metric
	// label.
	Engine core.EngineKind
	// Parallelism bounds the fan-out worker pool of every sweep this
	// server performs (0 = one worker per CPU, 1 = serial). Reports are
	// bit-identical at every width. The resolved paper-grid fan-out plan
	// is exposed as the lpd_engine_info "fanout" label.
	Parallelism int
	// Harness is the sweep substrate; nil creates one wired to the
	// server's default budgets and limiter width.
	Harness *bench.Harness
	// Cluster mounts the async job API (POST /v1/jobs, GET
	// /v1/jobs/{id}) and the worker-facing lease endpoints (POST
	// /v1/cluster/*) on this coordinator. Nil serves no cluster surface.
	Cluster *cluster.Coordinator
	// ReadyChecks gate GET /readyz: any check returning an error marks
	// the process NOT-READY with that reason (e.g. a worker role reports
	// its breaker quarantine). Liveness (GET /healthz) is unaffected.
	ReadyChecks []ReadyCheck
	// Log receives structured request logs (nil = discard).
	Log *slog.Logger
}

// ReadyCheck reports a reason the process should not receive traffic
// (nil = ready).
type ReadyCheck func() error

// Server is the analysis service.
type Server struct {
	opts    Options
	cfg0    core.Config // parsed DefaultConfig
	cache   *Cache
	traces  *TraceCache // nil when the trace tier is disabled
	store   *TraceStore // nil when the durable trace tier is disabled
	lim     *Limiter
	harness *bench.Harness
	log     *slog.Logger
	mux     *http.ServeMux
	reg     *Registry
	start   time.Time

	baseCtx  context.Context // outlives requests; canceled by Close
	cancel   context.CancelFunc
	httpSrv  *http.Server
	draining atomic.Bool // set when Shutdown begins; flips /readyz

	readyMu     sync.RWMutex
	readyChecks []ReadyCheck

	// Metrics.
	mRequests   *Counter
	mLatency    *Histogram
	mOutcomes   *Counter
	mTicks      *Counter
	mSweepCells *Counter
}

// New builds a Server from opts.
func New(opts Options) (*Server, error) {
	if opts.DefaultConfig == "" {
		opts.DefaultConfig = "reduc1-dep1-fn2 HELIX"
	}
	cfg0, err := core.ParseConfig(opts.DefaultConfig)
	if err != nil {
		return nil, fmt.Errorf("serve: default config: %w", err)
	}
	if opts.MaxSourceBytes <= 0 {
		opts.MaxSourceBytes = 1 << 20
	}
	log := opts.Log
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	lim := NewLimiter(opts.MaxConcurrent)
	harness := opts.Harness
	if harness == nil {
		harness = bench.NewHarnessWith(bench.HarnessOptions{
			Run: core.RunOptions{
				MaxSteps:     opts.DefaultBudgets.MaxSteps,
				MaxHeapCells: opts.DefaultBudgets.MaxHeapCells,
				Timeout:      time.Duration(opts.DefaultBudgets.TimeoutMs) * time.Millisecond,
				Engine:       opts.Engine,
				Parallelism:  opts.Parallelism,
			},
			Workers: lim.Cap(),
		})
	}
	ctx, cancel := context.WithCancel(context.Background())
	var traces *TraceCache
	if opts.TraceCacheBytes >= 0 {
		traces = NewTraceCache(opts.TraceCacheBytes)
	}
	var store *TraceStore
	if opts.TraceDir != "" {
		store, err = NewTraceStore(opts.TraceDir)
		if err != nil {
			cancel()
			return nil, err
		}
		// Startup scrub: quarantine whatever rotted while we were down,
		// before the first request can read it.
		store.Scrub(log)
	}
	s := &Server{
		opts:    opts,
		cfg0:    cfg0,
		cache:   NewCache(opts.CacheEntries),
		traces:  traces,
		store:   store,
		lim:     lim,
		harness: harness,
		log:     log,
		mux:     http.NewServeMux(),
		reg:     NewRegistry(),
		start:   time.Now(),
		baseCtx: ctx,
		cancel:  cancel,
	}
	s.readyChecks = append(s.readyChecks, opts.ReadyChecks...)
	s.registerMetrics()
	s.routes()
	if store != nil && opts.ScrubInterval >= 0 {
		interval := opts.ScrubInterval
		if interval == 0 {
			interval = DefaultScrubInterval
		}
		go s.scrubLoop(interval)
	}
	// Built here, not in Serve, so Shutdown from another goroutine never
	// races with a lazy assignment.
	s.httpSrv = &http.Server{Handler: s.mux}
	return s, nil
}

func (s *Server) registerMetrics() {
	s.mRequests = s.reg.NewCounter("lpd_requests_total",
		"HTTP requests by path and status code.", "path", "code")
	s.mLatency = s.reg.NewHistogram("lpd_request_seconds",
		"Request latency in seconds by path.", nil, "path")
	s.mOutcomes = s.reg.NewCounter("lpd_analyze_outcomes_total",
		"Analyze results by taxonomy outcome.", "outcome")
	s.mTicks = s.reg.NewCounter("lpd_ticks_simulated_total",
		"Serial IR instructions simulated by completed analyze runs.")
	s.mSweepCells = s.reg.NewCounter("lpd_sweep_cells_total",
		"Sweep cells by taxonomy outcome.", "outcome")
	s.reg.NewGauge("lpd_engine_info",
		"Execution engine and resolved paper-grid fan-out plan of this server (value is always 1).",
		"engine", "fanout").
		Set(1, s.opts.Engine.String(),
			core.PlanFanout(len(core.PaperConfigs()), core.RunOptions{Parallelism: s.opts.Parallelism}).String())
	s.reg.NewCounterFunc("lpd_cache_hits_total",
		"Analyze requests served from a stored cache entry.",
		func() float64 { return float64(s.cache.Stats().Hits) })
	s.reg.NewCounterFunc("lpd_cache_misses_total",
		"Analyze requests that ran their own compile+run.",
		func() float64 { return float64(s.cache.Stats().Misses) })
	s.reg.NewCounterFunc("lpd_cache_coalesced_total",
		"Analyze requests that waited on another request's in-flight run.",
		func() float64 { return float64(s.cache.Stats().Coalesced) })
	s.reg.NewCounterFunc("lpd_cache_evictions_total",
		"Cache entries dropped by the LRU bound.",
		func() float64 { return float64(s.cache.Stats().Evictions) })
	s.reg.NewGaugeFunc("lpd_cache_entries",
		"Entries currently stored in the result cache.",
		func() float64 { return float64(s.cache.Stats().Entries) })
	s.reg.NewGaugeFunc("lpd_inflight_runs",
		"Concurrency-limiter slots currently held.",
		func() float64 { return float64(s.lim.InUse()) })
	s.reg.NewGaugeFunc("lpd_concurrency_limit",
		"Concurrency-limiter capacity.",
		func() float64 { return float64(s.lim.Cap()) })
	s.reg.NewGaugeFunc("lpd_harness_cells",
		"Sweep cells recorded by the resident harness.",
		func() float64 { return float64(s.harness.CellStats().Total) })
	s.reg.NewCounterFunc("lpd_harness_executions_total",
		"Interpreter executions performed by the resident harness.",
		func() float64 { return float64(s.harness.Stats().Executions) })
	s.reg.NewCounterFunc("lpd_harness_executions_saved_total",
		"Executions avoided by sharing one run across a benchmark's sweep configurations.",
		func() float64 { return float64(s.harness.Stats().Saved) })
	if s.opts.Cluster != nil {
		s.opts.Cluster.RegisterMetrics(s.reg)
	}
	if s.traces != nil {
		s.reg.NewCounterFunc("lpd_trace_cache_hits_total",
			"Analyze fills served by replaying a cached event trace.",
			func() float64 { return float64(s.traces.Stats().Hits) })
		s.reg.NewCounterFunc("lpd_trace_cache_misses_total",
			"Trace-tier lookups that fell through to a live run.",
			func() float64 { return float64(s.traces.Stats().Misses) })
		s.reg.NewCounterFunc("lpd_trace_cache_evictions_total",
			"Trace entries dropped by the byte budget.",
			func() float64 { return float64(s.traces.Stats().Evictions) })
		s.reg.NewGaugeFunc("lpd_trace_cache_bytes",
			"Bytes of event traces currently stored.",
			func() float64 { return float64(s.traces.Stats().Bytes) })
		s.reg.NewGaugeFunc("lpd_trace_cache_entries",
			"Event traces currently stored.",
			func() float64 { return float64(s.traces.Stats().Entries) })
	}
	if s.store != nil {
		s.reg.NewCounterFunc("lpd_trace_store_hits_total",
			"Disk-tier reads that returned a verified trace.",
			func() float64 { return float64(s.store.Stats().Hits) })
		s.reg.NewCounterFunc("lpd_trace_store_misses_total",
			"Disk-tier reads with no stored (or no readable) trace.",
			func() float64 { return float64(s.store.Stats().Misses) })
		s.reg.NewCounterFunc("lpd_trace_store_puts_total",
			"Traces written to the disk tier.",
			func() float64 { return float64(s.store.Stats().Puts) })
		s.reg.NewCounterFunc("lpd_scrub_runs_total",
			"Trace-store scrubber passes (startup and periodic).",
			func() float64 { return float64(s.store.Stats().ScrubRuns) })
		s.reg.NewCounterFunc("lpd_scrub_files_total",
			"Stored traces verified by scrubber passes.",
			func() float64 { return float64(s.store.Stats().ScrubFiles) })
		s.reg.NewCounterFunc("lpd_scrub_corrupt_total",
			"Stored traces that failed checksum verification.",
			func() float64 { return float64(s.store.Stats().ScrubCorrupt) })
		s.reg.NewCounterFunc("lpd_scrub_quarantined_total",
			"Trace files moved to quarantine (scrub, read, or replay failures).",
			func() float64 { return float64(s.store.Stats().Quarantined) })
	}
}

func (s *Server) routes() {
	s.mux.Handle("POST /v1/analyze", s.instrument("/v1/analyze", s.handleAnalyze))
	s.mux.Handle("POST /v1/sweep", s.instrument("/v1/sweep", s.handleSweep))
	s.mux.Handle("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	s.mux.Handle("GET /readyz", s.instrument("/readyz", s.handleReadyz))
	s.mux.Handle("GET /metrics", s.instrument("/metrics", s.handleMetrics))
	if s.opts.Cluster != nil {
		s.mux.Handle("POST /v1/jobs", s.instrument("/v1/jobs", s.handleJobSubmit))
		s.mux.Handle("GET /v1/jobs/{id}", s.instrument("/v1/jobs/{id}", s.handleJobStatus))
		s.mux.Handle("GET /v1/cluster/workers", s.instrument("/v1/cluster/workers", s.handleClusterWorkers))
		// The worker-facing lease endpoints (claim/heartbeat/commit/
		// release) come as one subtree from the coordinator.
		s.mux.Handle("POST /v1/cluster/", s.instrument("/v1/cluster/", s.opts.Cluster.Handler().ServeHTTP))
	}
}

// Handler returns the service's HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe serves on addr until Shutdown or a listener error.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Serve serves on l until Shutdown or a listener error. It returns nil
// after a clean Shutdown.
func (s *Server) Serve(l net.Listener) error {
	err := s.httpSrv.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown gracefully drains the server: /readyz flips NOT-READY, the
// coordinator (when present) refuses new submissions and claims, then
// the listener stops accepting and in-flight requests (and their runs)
// complete, up to ctx. Call Close afterwards to cancel any stragglers.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	if s.opts.Cluster != nil {
		s.opts.Cluster.Drain()
	}
	if s.httpSrv == nil {
		return nil
	}
	return s.httpSrv.Shutdown(ctx)
}

// Close cancels the server's base context, aborting any still-running
// analyses (their cells classify as canceled and are not cached).
func (s *Server) Close() { s.cancel() }

// scrubLoop re-verifies the durable trace tier every interval until the
// server closes, quarantining files whose checksums no longer hold.
func (s *Server) scrubLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-t.C:
			if res := s.store.Scrub(s.log); res.Corrupt > 0 {
				s.log.Warn("trace scrub pass", "files", res.Files, "corrupt", res.Corrupt)
			}
		}
	}
}

// statusRecorder captures the status code a handler wrote.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with panic recovery, metrics, and the
// structured request log.
func (s *Server) instrument(path string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			if p := recover(); p != nil {
				s.log.Error("handler panic", "path", path, "panic", fmt.Sprint(p),
					"stack", string(debug.Stack()))
				if rec.status == http.StatusOK {
					writeJSON(rec, http.StatusInternalServerError, ErrorResponse{
						Error:    fmt.Sprintf("internal error: %v", p),
						Outcome:  core.OutcomePanic,
						ExitCode: core.OutcomePanic.ExitCode(),
					})
				}
			}
			dur := time.Since(start)
			s.mRequests.Inc(path, fmt.Sprint(rec.status))
			s.mLatency.Observe(dur.Seconds(), path)
			if path != "/metrics" && path != "/healthz" && path != "/readyz" {
				s.log.Info("request", "method", r.Method, "path", path,
					"status", rec.status, "durMs", dur.Milliseconds())
			}
		}()
		h(rec, r)
	})
}

// decodeJSON decodes a request body bounded by maxBytes into v.
func decodeJSON(w http.ResponseWriter, r *http.Request, maxBytes int64, v any) error {
	return json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBytes)).Decode(v)
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// AnalyzeRequest is the POST /v1/analyze body.
type AnalyzeRequest struct {
	// Name labels the program (diagnostics, report); "" = "<request>".
	Name string `json:"name,omitempty"`
	// Source is the LPC program text.
	Source string `json:"source"`
	// Config is the paper configuration string, e.g. "reduc1-dep1-fn2
	// HELIX" ("" = the server default).
	Config string `json:"config,omitempty"`
	// Budgets tighten the server's per-run resource limits.
	Budgets *Budgets `json:"budgets,omitempty"`
}

// AnalyzeResponse is the POST /v1/analyze success body.
type AnalyzeResponse struct {
	// Report is the completed limit-study report.
	Report *core.Report `json:"report"`
	// Cached reports whether the response was served without running a
	// new compile+run (stored hit or coalesced with an in-flight run).
	Cached bool `json:"cached"`
	// Outcome is "ok" on this path.
	Outcome core.Outcome `json:"outcome"`
	// ElapsedMs is the server-side handling time.
	ElapsedMs int64 `json:"elapsedMs"`
}

// DiagPos is one positioned diagnostic of a rejected program.
type DiagPos struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Severity string `json:"severity"`
	Message  string `json:"message"`
}

func (d DiagPos) String() string {
	return fmt.Sprintf("%s:%d:%d: %s", d.File, d.Line, d.Col, d.Message)
}

// ErrorResponse is the JSON error body of every non-2xx response.
type ErrorResponse struct {
	// Error is the rendered error message.
	Error string `json:"error"`
	// Outcome classifies the failure into the run taxonomy.
	Outcome core.Outcome `json:"outcome"`
	// ExitCode is the lpa exit code the same failure would produce.
	ExitCode int `json:"exitCode"`
	// Diagnostics carry the positioned compile errors, when any.
	Diagnostics []DiagPos `json:"diagnostics,omitempty"`
}

// diagnosticsOf extracts positioned diagnostics from a compile error.
func diagnosticsOf(err error) []DiagPos {
	var out []DiagPos
	add := func(d *diag.Diagnostic) {
		out = append(out, DiagPos{
			File: d.File, Line: d.Pos.Line, Col: d.Pos.Col,
			Severity: d.Sev.String(), Message: d.Msg,
		})
	}
	var l diag.List
	var d *diag.Diagnostic
	switch {
	case errors.As(err, &l):
		for _, d := range l {
			add(d)
		}
	case errors.As(err, &d):
		add(d)
	}
	return out
}

// statusFor maps a run error to the HTTP status: positioned compile errors
// are the client's fault (400), budget trips and guest faults are
// unprocessable programs (422), cancellation means the server is going
// away (503), anything else — ICEs, recovered panics — is ours (500).
func statusFor(err error) int {
	switch o := core.Classify(err); o {
	case core.OutcomeOK:
		return http.StatusOK
	case core.OutcomeStepLimit, core.OutcomeMemLimit, core.OutcomeTimeout,
		core.OutcomeRuntimeError:
		return http.StatusUnprocessableEntity
	case core.OutcomeCanceled:
		return http.StatusServiceUnavailable
	default:
		if len(diagnosticsOf(err)) > 0 {
			return http.StatusBadRequest
		}
		return http.StatusInternalServerError
	}
}

// effectiveBudgets resolves request budgets against the server defaults
// and caps.
func (s *Server) effectiveBudgets(req *Budgets) Budgets {
	b := s.opts.DefaultBudgets
	if req != nil {
		if req.MaxSteps > 0 {
			b.MaxSteps = req.MaxSteps
		}
		if req.MaxHeapCells > 0 {
			b.MaxHeapCells = req.MaxHeapCells
		}
		if req.TimeoutMs > 0 {
			b.TimeoutMs = req.TimeoutMs
		}
	}
	clamp := func(v, max int64) int64 {
		if max > 0 && (v <= 0 || v > max) {
			return max
		}
		return v
	}
	b.MaxSteps = clamp(b.MaxSteps, s.opts.MaxBudgets.MaxSteps)
	b.MaxHeapCells = clamp(b.MaxHeapCells, s.opts.MaxBudgets.MaxHeapCells)
	b.TimeoutMs = clamp(b.TimeoutMs, s.opts.MaxBudgets.TimeoutMs)
	return b
}

// runOptions converts resolved budgets into core run options bound to the
// server's lifetime (not the request's: a coalesced run must complete for
// its other waiters even if one client disconnects).
func (s *Server) runOptions(b Budgets) core.RunOptions {
	return core.RunOptions{
		MaxSteps:     b.MaxSteps,
		MaxHeapCells: b.MaxHeapCells,
		Timeout:      time.Duration(b.TimeoutMs) * time.Millisecond,
		Ctx:          s.baseCtx,
		Engine:       s.opts.Engine,
		Parallelism:  s.opts.Parallelism,
	}
}

// badRequest writes a 400 with an OutcomeError body.
func (s *Server) badRequest(w http.ResponseWriter, format string, args ...any) {
	writeJSON(w, http.StatusBadRequest, ErrorResponse{
		Error:    fmt.Sprintf(format, args...),
		Outcome:  core.OutcomeError,
		ExitCode: core.OutcomeError.ExitCode(),
	})
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req AnalyzeRequest
	if err := decodeJSON(w, r, s.opts.MaxSourceBytes, &req); err != nil {
		s.badRequest(w, "decoding request: %v", err)
		return
	}
	if req.Source == "" {
		s.badRequest(w, "empty source")
		return
	}
	name := req.Name
	if name == "" {
		name = "<request>"
	}
	cfg := s.cfg0
	if req.Config != "" {
		parsed, err := core.ParseConfig(req.Config)
		if err != nil {
			s.badRequest(w, "%v", err)
			return
		}
		cfg = parsed
	}
	budgets := s.effectiveBudgets(req.Budgets)
	key := Key(name, req.Source, cfg, budgets)

	entry, shared, err := s.cache.Do(r.Context(), key, func() (*core.Report, error) {
		if err := s.lim.Acquire(s.baseCtx); err != nil {
			return nil, fmt.Errorf("serve: acquiring run slot: %w", core.ErrCanceled)
		}
		defer s.lim.Release()
		return s.analyzeFill(name, req.Source, cfg, budgets)
	})
	if err != nil {
		// The client went away while waiting on someone else's run.
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{
			Error:    err.Error(),
			Outcome:  core.OutcomeCanceled,
			ExitCode: core.OutcomeCanceled.ExitCode(),
		})
		return
	}

	s.mOutcomes.Inc(entry.Outcome.String())
	if entry.Err != nil {
		diags := diagnosticsOf(entry.Err)
		if len(diags) > 0 {
			// The structured log carries the positions so rejected
			// programs are attributable without re-parsing bodies.
			positions := make([]string, len(diags))
			for i, d := range diags {
				positions[i] = d.String()
			}
			s.log.Info("rejected program", "name", name, "key", key[:12],
				"outcome", entry.Outcome.String(), "diagnostics", positions)
		}
		writeJSON(w, statusFor(entry.Err), ErrorResponse{
			Error:       entry.Err.Error(),
			Outcome:     entry.Outcome,
			ExitCode:    entry.Outcome.ExitCode(),
			Diagnostics: diags,
		})
		return
	}
	if !shared {
		s.mTicks.Add(float64(entry.Report.SerialCost))
	}
	writeJSON(w, http.StatusOK, AnalyzeResponse{
		Report:    entry.Report,
		Cached:    shared,
		Outcome:   core.OutcomeOK,
		ElapsedMs: time.Since(start).Milliseconds(),
	})
}

// analyzeFill is the cache-miss path of one analyze request: replay a
// cached trace of the same (name, source, budgets) when a trace tier has
// one — memory first, then the durable store — otherwise run live,
// recording a trace for the next configuration of this program. Budgets
// are enforced on the live run; a replayed trace was recorded under the
// same budgets (they are part of the trace key).
//
// Both tiers self-heal: a trace that fails to replay is useless for
// every future configuration, so the memory tier drops it and the disk
// tier quarantines the backing file, and the fill falls through to a
// live run that re-records it.
func (s *Server) analyzeFill(name, source string, cfg core.Config, budgets Budgets) (*core.Report, error) {
	if s.traces == nil && s.store == nil {
		return core.RunSource(name, source, cfg, s.runOptions(budgets))
	}
	tkey := TraceKey(name, source, budgets)
	if s.traces != nil {
		if info, trace, ok := s.traces.Get(tkey); ok {
			rep, err := core.ReplayTrace(name, info, cfg, core.RunOptions{}, bytes.NewReader(trace))
			if err == nil {
				return rep, nil
			}
			s.traces.Drop(tkey)
			if s.store != nil {
				// The disk copy is the same bytes (or worse): quarantine
				// it rather than serve the poison again after a restart.
				s.store.Quarantine(tkey)
			}
			s.log.Warn("dropping unreplayable trace", "name", name, "key", tkey[:12], "err", err)
		}
	}
	if s.store != nil {
		if trace, err := s.store.Get(tkey); err != nil {
			s.log.Warn("quarantined corrupt trace file", "name", name, "key", tkey[:12], "err", err)
		} else if trace != nil {
			// The disk tier stores only the event stream; the module
			// analysis replays need is recomputed from source (cheap
			// next to interpretation, and never trusted from disk).
			info, aerr := core.AnalyzeSource(name, source)
			if aerr != nil {
				return nil, aerr
			}
			rep, rerr := core.ReplayTrace(name, info, cfg, core.RunOptions{}, bytes.NewReader(trace))
			if rerr == nil {
				if s.traces != nil {
					s.traces.Put(tkey, info, trace) // promote to memory
				}
				return rep, nil
			}
			s.store.Quarantine(tkey)
			s.log.Warn("quarantined unreplayable trace file", "name", name, "key", tkey[:12], "err", rerr)
		}
	}
	info, err := core.AnalyzeSource(name, source)
	if err != nil {
		return nil, err
	}
	sink := &cappedBuffer{cap: s.traceEntryCap()}
	opts := s.runOptions(budgets)
	opts.Trace = sink
	rep, err := core.Run(info, cfg, opts)
	if err == nil && !sink.overflow {
		if s.traces != nil {
			s.traces.Put(tkey, info, sink.buf)
		}
		if s.store != nil {
			if perr := s.store.Put(tkey, sink.buf); perr != nil {
				s.log.Warn("trace store write failed", "name", name, "key", tkey[:12], "err", perr)
			}
		}
	}
	return rep, err
}

// traceEntryCap bounds a recorded trace: the memory tier's per-entry
// cap when it exists, else the default tier's.
func (s *Server) traceEntryCap() int64 {
	if s.traces != nil {
		return s.traces.EntryCap()
	}
	return DefaultTraceCacheBytes / 4
}

// SweepRequest is the POST /v1/sweep body.
type SweepRequest struct {
	// Benchmarks names registered kernels (empty = every kernel).
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Configs are paper configuration strings (empty = the fourteen
	// paper configurations).
	Configs []string `json:"configs,omitempty"`
	// IncludeReports attaches each completed cell's full report.
	IncludeReports bool `json:"includeReports,omitempty"`
}

// SweepCellJSON is one (benchmark, configuration) cell of a sweep.
type SweepCellJSON struct {
	Bench    string       `json:"bench"`
	Config   core.Config  `json:"config"`
	Outcome  core.Outcome `json:"outcome"`
	Speedup  float64      `json:"speedup,omitempty"`
	Coverage float64      `json:"coverage,omitempty"`
	Error    string       `json:"error,omitempty"`
	Report   *core.Report `json:"report,omitempty"`
}

// SweepResponse is the POST /v1/sweep body: partial results are the
// point, so the response is 200 even when cells failed.
type SweepResponse struct {
	Cells   []SweepCellJSON      `json:"cells"`
	Counts  map[core.Outcome]int `json:"counts"`
	Summary string               `json:"summary"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decodeJSON(w, r, s.opts.MaxSourceBytes, &req); err != nil {
		s.badRequest(w, "decoding request: %v", err)
		return
	}
	benches, cfgs, err := s.resolveSelection(req.Benchmarks, req.Configs)
	if err != nil {
		s.badRequest(w, "%v", err)
		return
	}

	// A sweep is one limiter unit: its internal workers already bound the
	// per-cell parallelism, the slot just keeps sweeps from piling onto
	// analyze traffic.
	if err := s.lim.Acquire(r.Context()); err != nil {
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{
			Error:    "server busy: " + err.Error(),
			Outcome:  core.OutcomeCanceled,
			ExitCode: core.OutcomeCanceled.ExitCode(),
		})
		return
	}
	sr := func() *bench.SweepResult {
		defer s.lim.Release()
		return s.harness.Sweep(r.Context(), benches, cfgs)
	}()

	resp := SweepResponse{
		Counts:  map[core.Outcome]int{},
		Summary: sr.Summary(),
	}
	for _, c := range sr.Cells {
		cell := SweepCellJSON{Bench: c.Bench, Config: c.Config, Outcome: c.Outcome}
		if c.Err != nil {
			cell.Error = c.Err.Error()
		} else if c.Report != nil {
			cell.Speedup = c.Report.Speedup()
			cell.Coverage = c.Report.Coverage()
			if req.IncludeReports {
				cell.Report = c.Report
			}
		}
		resp.Cells = append(resp.Cells, cell)
		resp.Counts[c.Outcome]++
		s.mSweepCells.Inc(c.Outcome.String())
	}
	writeJSON(w, http.StatusOK, resp)
}

// HealthzResponse is the GET /healthz body.
type HealthzResponse struct {
	Status        string `json:"status"`
	UptimeSeconds int64  `json:"uptimeSeconds"`
	CacheEntries  int    `json:"cacheEntries"`
	InflightRuns  int    `json:"inflightRuns"`
}

// handleHealthz is pure liveness: the process is up and can answer.
// It stays 200 through drain and quarantine so orchestrators don't
// restart a process that is merely refusing traffic — readiness lives
// at /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, HealthzResponse{
		Status:        "ok",
		UptimeSeconds: int64(time.Since(s.start).Seconds()),
		CacheEntries:  s.cache.Stats().Entries,
		InflightRuns:  s.lim.InUse(),
	})
}

// AddReadyCheck appends a readiness gate after construction (e.g. for
// workers created once the server exists). Safe to call while serving.
func (s *Server) AddReadyCheck(check ReadyCheck) {
	s.readyMu.Lock()
	s.readyChecks = append(s.readyChecks, check)
	s.readyMu.Unlock()
}

// ReadyzResponse is the GET /readyz body.
type ReadyzResponse struct {
	// Status is "ready" (200) or "not-ready" (503).
	Status string `json:"status"`
	// Reasons lists why the process refuses traffic (empty when ready).
	Reasons []string `json:"reasons,omitempty"`
}

// handleReadyz is readiness: NOT-READY while the server is draining
// toward shutdown and while any configured ReadyCheck fails (a worker
// role quarantined by its circuit breaker, for example).
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	var reasons []string
	if s.draining.Load() {
		reasons = append(reasons, "draining: shutdown in progress")
	}
	s.readyMu.RLock()
	checks := s.readyChecks
	s.readyMu.RUnlock()
	for _, check := range checks {
		if err := check(); err != nil {
			reasons = append(reasons, err.Error())
		}
	}
	if len(reasons) > 0 {
		writeJSON(w, http.StatusServiceUnavailable, ReadyzResponse{Status: "not-ready", Reasons: reasons})
		return
	}
	writeJSON(w, http.StatusOK, ReadyzResponse{Status: "ready"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.Write(w)
}
