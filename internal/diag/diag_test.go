package diag

import (
	"errors"
	"strings"
	"testing"

	"loopapalooza/internal/lang/token"
)

func TestDiagnosticError(t *testing.T) {
	d := New("prog.lpc", token.Pos{Line: 3, Col: 7}, "undefined: %s", "x")
	if got, want := d.Error(), "prog.lpc:3:7: undefined: x"; got != want {
		t.Errorf("Error() = %q, want %q", got, want)
	}
	noPos := New("prog.lpc", token.Pos{}, "no main function")
	if got, want := noPos.Error(), "prog.lpc: no main function"; got != want {
		t.Errorf("Error() = %q, want %q", got, want)
	}
}

func TestListSortAndErr(t *testing.T) {
	l := List{
		New("a.lpc", token.Pos{Line: 5, Col: 1}, "later"),
		New("a.lpc", token.Pos{Line: 2, Col: 9}, "first"),
		New("a.lpc", token.Pos{Line: 2, Col: 9}, "second-at-same-pos"),
	}
	err := l.Err()
	if err == nil {
		t.Fatal("Err() = nil for non-empty list")
	}
	lines := strings.Split(err.Error(), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3", len(lines))
	}
	if !strings.Contains(lines[0], "first") || !strings.Contains(lines[1], "second-at-same-pos") || !strings.Contains(lines[2], "later") {
		t.Errorf("bad order:\n%s", err)
	}
	if (List{}).Err() != nil {
		t.Error("empty list Err() != nil")
	}
}

func TestTruncate(t *testing.T) {
	var l List
	for i := 0; i < MaxDiagnostics+15; i++ {
		l = append(l, New("f.lpc", token.Pos{Line: i + 1, Col: 1}, "e%d", i))
	}
	got := l.Truncate("f.lpc")
	if len(got) != MaxDiagnostics+1 {
		t.Fatalf("len = %d, want %d", len(got), MaxDiagnostics+1)
	}
	if got[len(got)-1].Msg != "too many errors" {
		t.Errorf("last = %q, want marker", got[len(got)-1].Msg)
	}
}

func TestSnippetCaret(t *testing.T) {
	src := "func main() int {\n\tvar x int = y;\n}\n"
	sn := Snippet(src, token.Pos{Line: 2, Col: 14})
	want := "\t\tvar x int = y;\n\t\t            ^"
	if sn != want {
		t.Errorf("Snippet = %q, want %q", sn, want)
	}
	if Snippet(src, token.Pos{Line: 99, Col: 1}) != "" {
		t.Error("out-of-range line should render no snippet")
	}
	if Snippet(src, token.Pos{}) != "" {
		t.Error("zero position should render no snippet")
	}
	// Column past end of line clamps to just after the last byte.
	if sn := Snippet("ab", token.Pos{Line: 1, Col: 50}); !strings.HasSuffix(sn, "  ^") {
		t.Errorf("clamped snippet = %q", sn)
	}
}

func TestFormatList(t *testing.T) {
	src := "var x imt;\n"
	l := List{New("p.lpc", token.Pos{Line: 1, Col: 7}, "expected type, found imt")}
	out := Format(l, src)
	if !strings.Contains(out, "p.lpc:1:7: expected type, found imt") {
		t.Errorf("missing canonical line:\n%s", out)
	}
	if !strings.Contains(out, "^") {
		t.Errorf("missing caret:\n%s", out)
	}
}

func TestICE(t *testing.T) {
	ice := NewICE("p.lpc", "codegen", "func main() {}", "boom")
	if !strings.Contains(ice.Error(), "internal compiler error in codegen: boom") {
		t.Errorf("Error() = %q", ice.Error())
	}
	if ice.Stack == "" {
		t.Error("no stack captured")
	}
	rep := Format(ice, ice.Source)
	if strings.Contains(rep, "goroutine ") {
		t.Errorf("user report leaks a raw stack:\n%s", rep)
	}
	if !strings.Contains(rep, "compiler bug") {
		t.Errorf("report missing triage note:\n%s", rep)
	}
	var asICE *ICE
	if !errors.As(error(ice), &asICE) {
		t.Error("errors.As fails on *ICE")
	}
}
