package diag

import (
	"fmt"
	"runtime/debug"
	"strings"
)

// ICE is a recovered internal compiler error: a panic raised anywhere in
// the front-end pipeline, converted into an ordinary error so the
// compile-and-run surface never crashes. It carries the panic value, the
// goroutine stack at the panic site, and the source text as a reproducer.
type ICE struct {
	// File names the compilation unit being compiled.
	File string
	// Stage names the pipeline stage that panicked
	// ("lexer", "parser", "sema", "codegen", "analysis", ...).
	Stage string
	// Val is the recovered panic value (or the invalid-IR verify error).
	Val any
	// Stack is the goroutine stack captured at recovery.
	Stack string
	// Source is the full source text: the reproducer for bug reports and
	// for minimizing into testdata/crashers/.
	Source string
}

// NewICE builds an ICE from a recovered panic value. Call it from a
// recover() site with the stage that was running.
func NewICE(file, stage string, src string, val any) *ICE {
	return &ICE{
		File:   file,
		Stage:  stage,
		Val:    val,
		Stack:  string(debug.Stack()),
		Source: src,
	}
}

// Error renders the canonical one-line form.
func (e *ICE) Error() string {
	return fmt.Sprintf("%s: internal compiler error in %s: %v", e.File, e.Stage, e.Val)
}

// Report renders the user-facing multi-line form: the error line plus
// triage notes. The raw Go stack is intentionally omitted (it is carried in
// Stack for programmatic use and verbose modes); users see a stable,
// greppable report instead of a goroutine dump.
func (e *ICE) Report() string {
	var b strings.Builder
	b.WriteString(e.Error())
	b.WriteByte('\n')
	b.WriteString("\tnote: this is a compiler bug, not an error in the program\n")
	b.WriteString(fmt.Sprintf("\tnote: reproduce with the %d-byte source above; ", len(e.Source)))
	b.WriteString("minimize and check it into internal/lang/testdata/crashers/\n")
	return b.String()
}
