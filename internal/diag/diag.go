// Package diag defines the positioned diagnostics shared by every stage of
// the LPC front end: lexical, syntax, and type errors carry a file, line,
// and column; multiple diagnostics collect into one error value; and the
// renderer produces the canonical "file:line:col: message" form with a
// caret-marked source snippet.
//
// The package also defines ICE, the recovered internal-compiler-error: a
// panic anywhere in the lexer/parser/sema/codegen pipeline is converted
// into an *ICE carrying the panic value, the goroutine stack, and the
// source text as a reproducer, so no input can crash the compile surface.
package diag

import (
	"fmt"
	"sort"
	"strings"

	"loopapalooza/internal/lang/token"
)

// Severity classifies a diagnostic.
type Severity uint8

// Severities.
const (
	SevError Severity = iota
	SevWarning
)

// String returns the canonical severity label.
func (s Severity) String() string {
	if s == SevWarning {
		return "warning"
	}
	return "error"
}

// Diagnostic is one positioned message.
type Diagnostic struct {
	// File names the compilation unit.
	File string
	// Pos is the 1-based source position (zero when unknown).
	Pos token.Pos
	// Sev is the severity (SevError unless stated otherwise).
	Sev Severity
	// Msg is the message text, without position or severity prefix.
	Msg string
}

// New returns an error-severity diagnostic.
func New(file string, pos token.Pos, format string, args ...any) *Diagnostic {
	return &Diagnostic{File: file, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Error renders the canonical one-line form "file:line:col: message".
// Diagnostics without a position render as "file: message".
func (d *Diagnostic) Error() string {
	if d.Pos.Line == 0 {
		return fmt.Sprintf("%s: %s", d.File, d.Msg)
	}
	return fmt.Sprintf("%s:%d:%d: %s", d.File, d.Pos.Line, d.Pos.Col, d.Msg)
}

// List is an ordered collection of diagnostics. It implements error; a
// non-empty List is returned by each front-end stage in source order.
type List []*Diagnostic

// Error joins the canonical one-line forms with newlines.
func (l List) Error() string {
	msgs := make([]string, len(l))
	for i, d := range l {
		msgs[i] = d.Error()
	}
	return strings.Join(msgs, "\n")
}

// Sort orders the list by (file, line, col), keeping the insertion order of
// diagnostics at the same position (stable).
func (l List) Sort() {
	sort.SliceStable(l, func(i, j int) bool {
		a, b := l[i], l[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pos.Col < b.Pos.Col
	})
}

// Err returns the list as an error: nil when empty, the sorted list
// otherwise.
func (l List) Err() error {
	if len(l) == 0 {
		return nil
	}
	l.Sort()
	return l
}

// MaxDiagnostics bounds how many diagnostics one stage collects before it
// gives up; further errors are dropped and a final "too many errors" entry
// is appended by Truncate.
const MaxDiagnostics = 20

// Truncate caps l at MaxDiagnostics, appending a marker entry when
// anything was dropped.
func (l List) Truncate(file string) List {
	if len(l) <= MaxDiagnostics {
		return l
	}
	out := l[:MaxDiagnostics]
	last := out[len(out)-1]
	return append(out, &Diagnostic{File: file, Pos: last.Pos, Msg: "too many errors"})
}

// Snippet renders the source line at pos with a caret under the column:
//
//	        s = s + x;
//	                ^
//
// Tabs in the source line are preserved in the caret line so the caret
// aligns in any tab width. It returns "" when the position is out of range.
func Snippet(src string, pos token.Pos) string {
	if pos.Line <= 0 {
		return ""
	}
	lines := strings.Split(src, "\n")
	if pos.Line > len(lines) {
		return ""
	}
	line := strings.TrimRight(lines[pos.Line-1], "\r")
	col := pos.Col
	if col < 1 {
		col = 1
	}
	if col > len(line)+1 {
		col = len(line) + 1
	}
	var pad strings.Builder
	for _, c := range []byte(line[:col-1]) {
		if c == '\t' {
			pad.WriteByte('\t')
		} else {
			pad.WriteByte(' ')
		}
	}
	return "\t" + line + "\n\t" + pad.String() + "^"
}

// Format renders err for the user against the source text src. Diagnostic
// lists render one canonical line per entry followed by a caret snippet;
// ICEs render their report form; any other error renders via Error(). The
// result always ends with a newline.
func Format(err error, src string) string {
	var b strings.Builder
	switch e := err.(type) {
	case List:
		for _, d := range e {
			b.WriteString(d.Error())
			b.WriteByte('\n')
			if sn := Snippet(src, d.Pos); sn != "" {
				b.WriteString(sn)
				b.WriteByte('\n')
			}
		}
	case *Diagnostic:
		b.WriteString(e.Error())
		b.WriteByte('\n')
		if sn := Snippet(src, e.Pos); sn != "" {
			b.WriteString(sn)
			b.WriteByte('\n')
		}
	case *ICE:
		b.WriteString(e.Report())
	default:
		b.WriteString(err.Error())
		b.WriteByte('\n')
	}
	return b.String()
}
