// Package metrics is a minimal Prometheus text-format (version 0.0.4)
// instrumentation layer. The repo takes no external dependencies, so this
// package implements the instrument shapes /metrics needs — counters,
// settable and function gauges, and cumulative histograms, each optionally
// labeled — plus a registry that renders them in registration order with
// sorted label series, so scrapes diff stably. It is shared by the serving
// layer (internal/serve) and the sweep cluster (internal/cluster).
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Registry holds the registered instruments and renders them.
type Registry struct {
	mu    sync.Mutex
	order []renderer
}

// renderer is one registered metric family.
type renderer interface {
	render(w io.Writer)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// register appends a family (registration order is render order).
func (r *Registry) register(m renderer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.order = append(r.order, m)
}

// Write renders every family in the Prometheus text exposition format.
func (r *Registry) Write(w io.Writer) {
	r.mu.Lock()
	fams := append([]renderer(nil), r.order...)
	r.mu.Unlock()
	for _, m := range fams {
		m.render(w)
	}
}

// labelKey joins label values into a map key; \xff cannot appear in a
// valid UTF-8 label value byte sequence boundary we care about.
func labelKey(values []string) string { return strings.Join(values, "\xff") }

// renderLabels formats {name="value",...} for one series ("" when the
// family has no labels).
func renderLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		// %q escapes backslash, quote, and newline exactly as the
		// exposition format requires.
		fmt.Fprintf(&b, "%s=%q", n, values[i])
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing family, optionally labeled.
type Counter struct {
	name, help string
	labels     []string

	mu     sync.Mutex
	vals   map[string]float64
	series map[string][]string // key → label values, for rendering
}

// NewCounter registers a counter family.
func (r *Registry) NewCounter(name, help string, labels ...string) *Counter {
	c := &Counter{
		name: name, help: help, labels: labels,
		vals: map[string]float64{}, series: map[string][]string{},
	}
	r.register(c)
	return c
}

// Add increments the series identified by labelValues by v (v must be
// non-negative to keep the counter monotonic).
func (c *Counter) Add(v float64, labelValues ...string) {
	if len(labelValues) != len(c.labels) {
		panic(fmt.Sprintf("metric %s: %d label values for %d labels", c.name, len(labelValues), len(c.labels)))
	}
	k := labelKey(labelValues)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.vals[k]; !ok {
		c.series[k] = append([]string(nil), labelValues...)
	}
	c.vals[k] += v
}

// Inc adds one.
func (c *Counter) Inc(labelValues ...string) { c.Add(1, labelValues...) }

// Value returns the current value of one series (0 when never touched).
func (c *Counter) Value(labelValues ...string) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.vals[labelKey(labelValues)]
}

// Total returns the sum over all series.
func (c *Counter) Total() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var t float64
	for _, v := range c.vals {
		t += v
	}
	return t
}

func (c *Counter) render(w io.Writer) {
	c.mu.Lock()
	keys := make([]string, 0, len(c.vals))
	for k := range c.vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type row struct {
		labels string
		val    float64
	}
	rows := make([]row, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, row{renderLabels(c.labels, c.series[k]), c.vals[k]})
	}
	c.mu.Unlock()

	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", c.name, c.help, c.name)
	if len(rows) == 0 && len(c.labels) == 0 {
		fmt.Fprintf(w, "%s 0\n", c.name)
		return
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%s%s %g\n", c.name, r.labels, r.val)
	}
}

// Gauge is a settable gauge family, optionally labeled (for states owned
// by the instrumented component itself, e.g. a per-worker breaker state).
type Gauge struct {
	name, help string
	labels     []string

	mu     sync.Mutex
	vals   map[string]float64
	series map[string][]string
}

// NewGauge registers a settable gauge family.
func (r *Registry) NewGauge(name, help string, labels ...string) *Gauge {
	g := &Gauge{
		name: name, help: help, labels: labels,
		vals: map[string]float64{}, series: map[string][]string{},
	}
	r.register(g)
	return g
}

// Set pins the series identified by labelValues to v.
func (g *Gauge) Set(v float64, labelValues ...string) {
	if len(labelValues) != len(g.labels) {
		panic(fmt.Sprintf("metric %s: %d label values for %d labels", g.name, len(labelValues), len(g.labels)))
	}
	k := labelKey(labelValues)
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.vals[k]; !ok {
		g.series[k] = append([]string(nil), labelValues...)
	}
	g.vals[k] = v
}

// Value returns the current value of one series (0 when never set).
func (g *Gauge) Value(labelValues ...string) float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.vals[labelKey(labelValues)]
}

func (g *Gauge) render(w io.Writer) {
	g.mu.Lock()
	keys := make([]string, 0, len(g.vals))
	for k := range g.vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type row struct {
		labels string
		val    float64
	}
	rows := make([]row, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, row{renderLabels(g.labels, g.series[k]), g.vals[k]})
	}
	g.mu.Unlock()

	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", g.name, g.help, g.name)
	if len(rows) == 0 && len(g.labels) == 0 {
		fmt.Fprintf(w, "%s 0\n", g.name)
		return
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%s%s %g\n", g.name, r.labels, r.val)
	}
}

// GaugeFunc is an unlabeled gauge whose value is sampled at scrape time.
type GaugeFunc struct {
	name, help string
	fn         func() float64
}

// NewGaugeFunc registers a sampled gauge.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) *GaugeFunc {
	g := &GaugeFunc{name: name, help: help, fn: fn}
	r.register(g)
	return g
}

func (g *GaugeFunc) render(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", g.name, g.help, g.name, g.name, g.fn())
}

// CounterFunc is an unlabeled counter whose cumulative value is sampled at
// scrape time (for monotonic counts owned by another component, e.g. the
// cache's hit/miss tallies).
type CounterFunc struct {
	name, help string
	fn         func() float64
}

// NewCounterFunc registers a sampled counter.
func (r *Registry) NewCounterFunc(name, help string, fn func() float64) *CounterFunc {
	c := &CounterFunc{name: name, help: help, fn: fn}
	r.register(c)
	return c
}

func (c *CounterFunc) render(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", c.name, c.help, c.name, c.name, c.fn())
}

// DefaultLatencyBuckets cover 1ms to 10s, the range an analyze request
// spans between a cache hit and a budget-bounded run.
var DefaultLatencyBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 2.5, 5, 10}

// Histogram is a cumulative histogram family, optionally labeled.
type Histogram struct {
	name, help string
	labels     []string
	buckets    []float64 // upper bounds, ascending; +Inf implied

	mu     sync.Mutex
	series map[string]*histSeries
	order  map[string][]string
}

type histSeries struct {
	counts []uint64 // one per bucket
	sum    float64
	count  uint64
}

// NewHistogram registers a histogram family with the given upper bounds
// (nil = DefaultLatencyBuckets).
func (r *Registry) NewHistogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if buckets == nil {
		buckets = DefaultLatencyBuckets
	}
	h := &Histogram{
		name: name, help: help, labels: labels, buckets: buckets,
		series: map[string]*histSeries{}, order: map[string][]string{},
	}
	r.register(h)
	return h
}

// Observe records one value into the series identified by labelValues.
func (h *Histogram) Observe(v float64, labelValues ...string) {
	if len(labelValues) != len(h.labels) {
		panic(fmt.Sprintf("metric %s: %d label values for %d labels", h.name, len(labelValues), len(h.labels)))
	}
	k := labelKey(labelValues)
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.series[k]
	if s == nil {
		s = &histSeries{counts: make([]uint64, len(h.buckets))}
		h.series[k] = s
		h.order[k] = append([]string(nil), labelValues...)
	}
	for i, ub := range h.buckets {
		if v <= ub {
			s.counts[i]++
		}
	}
	s.sum += v
	s.count++
}

// Count returns the observation count of one series (tests).
func (h *Histogram) Count(labelValues ...string) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if s := h.series[labelKey(labelValues)]; s != nil {
		return s.count
	}
	return 0
}

func (h *Histogram) render(w io.Writer) {
	h.mu.Lock()
	keys := make([]string, 0, len(h.series))
	for k := range h.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name)
	for _, k := range keys {
		s, lvs := h.series[k], h.order[k]
		for i, ub := range h.buckets {
			fmt.Fprintf(w, "%s_bucket%s %d\n", h.name,
				renderLabels(append(h.labels, "le"), append(lvs, fmt.Sprintf("%g", ub))), s.counts[i])
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", h.name,
			renderLabels(append(h.labels, "le"), append(lvs, "+Inf")), s.count)
		fmt.Fprintf(w, "%s_sum%s %g\n", h.name, renderLabels(h.labels, lvs), s.sum)
		fmt.Fprintf(w, "%s_count%s %d\n", h.name, renderLabels(h.labels, lvs), s.count)
	}
	h.mu.Unlock()
}
