package metrics

import (
	"strings"
	"testing"
)

func render(r *Registry) string {
	var b strings.Builder
	r.Write(&b)
	return b.String()
}

func TestCounterRendering(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("t_requests_total", "Requests.", "path", "code")
	c.Inc("/b", "200")
	c.Add(2, "/a", "200")
	c.Inc("/a", "500")
	out := render(r)
	want := `# HELP t_requests_total Requests.
# TYPE t_requests_total counter
t_requests_total{path="/a",code="200"} 2
t_requests_total{path="/a",code="500"} 1
t_requests_total{path="/b",code="200"} 1
`
	if out != want {
		t.Errorf("rendered:\n%s\nwant:\n%s", out, want)
	}
	if c.Value("/a", "200") != 2 || c.Total() != 4 {
		t.Errorf("value %v total %v", c.Value("/a", "200"), c.Total())
	}
}

func TestUnlabeledCounterRendersZero(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("t_ticks_total", "Ticks.")
	if out := render(r); !strings.Contains(out, "t_ticks_total 0\n") {
		t.Errorf("untouched unlabeled counter not rendered as 0:\n%s", out)
	}
}

func TestSettableGauge(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("t_breaker_state", "Breaker state.", "worker")
	g.Set(1, "w1")
	g.Set(2, "w0")
	g.Set(0, "w1") // overwrite, not accumulate
	out := render(r)
	for _, want := range []string{
		"# TYPE t_breaker_state gauge",
		`t_breaker_state{worker="w0"} 2`,
		`t_breaker_state{worker="w1"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if g.Value("w0") != 2 {
		t.Errorf("value %v", g.Value("w0"))
	}
}

func TestGaugeAndCounterFunc(t *testing.T) {
	r := NewRegistry()
	v := 3.0
	r.NewGaugeFunc("t_entries", "Entries.", func() float64 { return v })
	r.NewCounterFunc("t_hits_total", "Hits.", func() float64 { return 7 })
	out := render(r)
	for _, want := range []string{
		"# TYPE t_entries gauge", "t_entries 3",
		"# TYPE t_hits_total counter", "t_hits_total 7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramRendering(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("t_seconds", "Latency.", []float64{0.1, 1}, "path")
	h.Observe(0.05, "/a")
	h.Observe(0.5, "/a")
	h.Observe(5, "/a")
	out := render(r)
	for _, want := range []string{
		"# TYPE t_seconds histogram",
		`t_seconds_bucket{path="/a",le="0.1"} 1`,
		`t_seconds_bucket{path="/a",le="1"} 2`,
		`t_seconds_bucket{path="/a",le="+Inf"} 3`,
		`t_seconds_count{path="/a"} 3`,
		`t_seconds_sum{path="/a"} 5.55`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if h.Count("/a") != 3 {
		t.Errorf("count %d", h.Count("/a"))
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("t_weird_total", "Weird.", "msg")
	c.Inc("a\"b\\c\nd")
	out := render(r)
	if !strings.Contains(out, `t_weird_total{msg="a\"b\\c\nd"} 1`) {
		t.Errorf("label not escaped:\n%s", out)
	}
}
