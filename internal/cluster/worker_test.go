package cluster

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"loopapalooza/internal/bench"
	"loopapalooza/internal/core"
)

// startFleet runs n workers against coord until the returned stop func.
func startFleet(t *testing.T, coord Coordination, n int, hooks func(i int) Hooks) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		h := Hooks{}
		if hooks != nil {
			h = hooks(i)
		}
		w, err := NewWorker(WorkerOptions{
			ID: string(rune('a'+i)) + "-worker", Coordinator: coord,
			Poll: 5 * time.Millisecond, Hooks: h,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx)
		}()
	}
	return func() { cancel(); wg.Wait() }
}

func TestWorkerFleetCompletesJob(t *testing.T) {
	c := NewCoordinator(CoordinatorOptions{Lease: 5 * time.Second, Seed: 1})
	defer c.Close()
	bs := bench.BySuite(bench.SuiteEEMBC)[:2]
	cfgs := []core.Config{core.BestPDOALL(), core.BestHELIX()}

	id, err := c.Submit("acme", bs, cfgs, false)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	stop := startFleet(t, c, 2, nil)
	defer stop()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.Wait(ctx, id); err != nil {
		t.Fatalf("waiting for fleet: %v", err)
	}
	st, _ := c.Status(id)
	if st.State != JobDone || st.Counts[core.OutcomeOK] != 4 {
		t.Fatalf("job finished %s with counts %v, want 4 ok", st.State, st.Counts)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWorkerDrainCommitsCanceledCells(t *testing.T) {
	c := NewCoordinator(CoordinatorOptions{Lease: 5 * time.Second, Seed: 1})
	defer c.Close()
	b := bench.BySuite(bench.SuiteEEMBC)[0]

	claimed := make(chan struct{})
	var once sync.Once
	runCtx, cancelRun := context.WithCancel(context.Background())
	w, err := NewWorker(WorkerOptions{
		ID: "drainer", Coordinator: c, Poll: 5 * time.Millisecond,
		Hooks: Hooks{BeforeExecute: func(ctx context.Context, task *Task) error {
			once.Do(func() { close(claimed) })
			<-ctx.Done() // hold the task until the drain lands
			return nil
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	id, _ := c.Submit("", []*bench.Benchmark{b}, []core.Config{core.BestPDOALL()}, false)
	done := make(chan struct{})
	go func() { defer close(done); w.Run(runCtx) }()

	<-claimed
	w.StartDrain()
	if w.Ready() {
		t.Fatal("draining worker still ready")
	}
	cancelRun()
	<-done

	// The canceled cell was committed back and refunded: still one
	// pending cell, budget uncharged, nothing lost.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := c.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Done == 0 && st.Cells[0].State == CellQueued {
			if st.Cells[0].Attempts != 0 {
				t.Fatalf("drained cell charged %d attempts, want 0", st.Cells[0].Attempts)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drained cell never requeued: %+v", st.Cells[0])
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := c.Stats().RefundedCells; got != 1 {
		t.Fatalf("refunded cells %d, want 1", got)
	}

	// A fresh worker finishes the job.
	stop := startFleet(t, c, 1, nil)
	defer stop()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.Wait(ctx, id); err != nil {
		t.Fatalf("finishing drained job: %v", err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWorkerCrashedHookStopsLoop(t *testing.T) {
	c := NewCoordinator(CoordinatorOptions{Lease: 100 * time.Millisecond, RetryBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond, Seed: 1})
	defer c.Close()
	b := bench.BySuite(bench.SuiteEEMBC)[0]
	id, _ := c.Submit("", []*bench.Benchmark{b}, []core.Config{core.BestPDOALL()}, false)

	w, err := NewWorker(WorkerOptions{
		ID: "mortal", Coordinator: c, Poll: time.Millisecond,
		Hooks: Hooks{BeforeExecute: func(context.Context, *Task) error { return ErrWorkerCrashed }},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(context.Background()); !errors.Is(err, ErrWorkerCrashed) {
		t.Fatalf("Run returned %v, want ErrWorkerCrashed", err)
	}

	// The crashed worker's lease expires and a healthy worker completes
	// the cell on a later attempt.
	stop := startFleet(t, c, 1, nil)
	defer stop()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.Wait(ctx, id); err != nil {
		t.Fatalf("recovering from crash: %v", err)
	}
	st, _ := c.Status(id)
	if st.Counts[core.OutcomeOK] != 1 {
		t.Fatalf("counts %v after crash recovery, want 1 ok", st.Counts)
	}
	if st.Cells[0].Attempts < 2 {
		t.Fatalf("attempts %d, want >= 2 (crash charged the budget)", st.Cells[0].Attempts)
	}
	if c.Stats().LeaseExpiries == 0 {
		t.Fatal("crash never expired a lease")
	}
}

func TestWorkerQuarantinedByBreaker(t *testing.T) {
	c := NewCoordinator(CoordinatorOptions{
		Lease: 5 * time.Second, BreakerThreshold: 1, BreakerCooldown: time.Minute,
		RetryBackoff: time.Millisecond, MaxBackoff: time.Millisecond, Seed: 1,
	})
	defer c.Close()
	b := bench.BySuite(bench.SuiteEEMBC)[0]
	c.Submit("", []*bench.Benchmark{b}, []core.Config{core.BestPDOALL()}, false)

	// Every commit from this worker is corrupted, so its first commit
	// trips the threshold-1 breaker and the next claim quarantines it.
	w, err := NewWorker(WorkerOptions{
		ID: "liar", Coordinator: c, Poll: time.Millisecond,
		Hooks: Hooks{TransformResults: func(task *Task, results []CellResult) []CellResult {
			for i := range results {
				results[i].Report = nil // ok outcome without a report: corrupt
			}
			return results
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); w.Run(ctx) }()

	deadline := time.Now().Add(5 * time.Second)
	for w.Ready() || w.Stats().BreakerRejections == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("worker never quarantined: ready=%v stats=%+v", w.Ready(), w.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	<-done
	if got := c.Stats().CorruptCommits; got == 0 {
		t.Fatal("no corrupt commits recorded")
	}
	for _, wi := range c.Workers() {
		if wi.ID == "liar" && wi.Breaker != BreakerOpen {
			t.Fatalf("liar breaker %s, want open", wi.State)
		}
	}
}

func TestWorkerPanicsBecomePanicResults(t *testing.T) {
	c := NewCoordinator(CoordinatorOptions{Lease: 5 * time.Second, MaxAttempts: 1, RetryBackoff: time.Millisecond, MaxBackoff: time.Millisecond, Seed: 1})
	defer c.Close()
	b := bench.BySuite(bench.SuiteEEMBC)[0]
	id, _ := c.Submit("", []*bench.Benchmark{b}, []core.Config{core.BestPDOALL()}, false)

	// An injected panic mid-task must not kill the worker: it converts
	// to per-cell panic results, which with MaxAttempts=1 park the cell.
	stop := startFleet(t, c, 1, func(int) Hooks {
		return Hooks{TransformResults: func(*Task, []CellResult) []CellResult {
			panic("mid-cell bomb")
		}}
	})
	defer stop()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.Wait(ctx, id); err != nil {
		t.Fatalf("wait: %v", err)
	}
	st, _ := c.Status(id)
	if st.Cells[0].State != CellParked || st.Cells[0].Outcome != core.OutcomePanic {
		t.Fatalf("cell %+v, want parked panic", st.Cells[0])
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWorkerExecuteUnknownBenchmark(t *testing.T) {
	c := NewCoordinator(CoordinatorOptions{Seed: 1})
	defer c.Close()
	w, err := NewWorker(WorkerOptions{ID: "w", Coordinator: c})
	if err != nil {
		t.Fatal(err)
	}
	task := &Task{ID: "t", Job: "j", Bench: "no-such-benchmark",
		Cells: []TaskCell{{Config: core.BestPDOALL(), Attempt: 1}}, LeaseMs: 1000}
	results := w.execute(context.Background(), task)
	if len(results) != 1 || results[0].Outcome != core.OutcomeError {
		t.Fatalf("unknown benchmark results %+v, want one error outcome", results)
	}
}

func TestNewWorkerValidation(t *testing.T) {
	if _, err := NewWorker(WorkerOptions{Coordinator: NewCoordinator(CoordinatorOptions{Seed: 1})}); err == nil {
		t.Fatal("worker without id accepted")
	}
	if _, err := NewWorker(WorkerOptions{ID: "w"}); err == nil {
		t.Fatal("worker without coordinator accepted")
	}
}
