// Package chaos is the fault-injection harness of the sweep cluster.
//
// An Injector hands out cluster.Hooks that fire faults on a seeded
// per-worker schedule — the same five failure modes the coordinator is
// built to survive:
//
//   - panic mid-cell: the worker panics between execution and commit;
//   - crash: the worker process dies without committing (loop exits);
//   - hang: the worker blocks past its lease deadline, then abandons
//     the task without committing;
//   - corrupt: committed reports are tampered with (they fail
//     core.VerifyReport or identity checks at the commit gate);
//   - slow node / dropped heartbeats: execution is delayed, heartbeat
//     ticks are suppressed.
//
// After a run, Verify checks the cluster's safety and liveness
// contract: every job reached a terminal state, no cell was committed
// twice or lost, and every completed cell's report is bit-identical to
// a single-process bench.Harness run of the same (benchmark,
// configuration) — the differential oracle.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"loopapalooza/internal/bench"
	"loopapalooza/internal/cluster"
	"loopapalooza/internal/core"
)

// Fault names one injectable failure mode.
type Fault string

// The injectable faults.
const (
	FaultPanic         Fault = "panic"
	FaultCrash         Fault = "crash"
	FaultHang          Fault = "hang"
	FaultCorrupt       Fault = "corrupt"
	FaultSlow          Fault = "slow"
	FaultDropHeartbeat Fault = "drop-heartbeat"
)

// Profile is one worker's fault schedule: per-task firing probabilities
// (DropHeartbeat is per heartbeat tick). Zero is a healthy worker.
type Profile struct {
	// Panic injects a panic between execution and commit.
	Panic float64
	// Crash kills the worker loop without a commit.
	Crash float64
	// Hang blocks for HangDelay before abandoning the task uncommitted.
	// Set HangDelay beyond the lease to simulate a hung node whose
	// leases expire.
	Hang float64
	// Corrupt tampers with committed reports.
	Corrupt float64
	// Slow delays execution by SlowDelay (the slow-node fault).
	Slow float64
	// DropHeartbeat suppresses one heartbeat tick.
	DropHeartbeat float64

	// SlowDelay is the slow-node delay (0 = 10ms).
	SlowDelay time.Duration
	// HangDelay is how long a hang blocks (0 = 2x the task lease).
	HangDelay time.Duration
}

// Injector builds seeded fault hooks for workers. The schedule is
// deterministic in (seed, worker id, draw order), so a chaos run is
// reproducible modulo goroutine scheduling.
type Injector struct {
	seed     int64
	mu       sync.Mutex
	profiles map[string]Profile
	counts   map[Fault]int
}

// NewInjector returns an injector with the given schedule seed.
func NewInjector(seed int64) *Injector {
	return &Injector{
		seed:     seed,
		profiles: map[string]Profile{},
		counts:   map[Fault]int{},
	}
}

// SetProfile assigns a worker's fault profile.
func (in *Injector) SetProfile(workerID string, p Profile) {
	in.mu.Lock()
	in.profiles[workerID] = p
	in.mu.Unlock()
}

// Counts snapshots how many times each fault fired.
func (in *Injector) Counts() map[Fault]int {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Fault]int, len(in.counts))
	for f, n := range in.counts {
		out[f] = n
	}
	return out
}

func (in *Injector) fired(f Fault) {
	in.mu.Lock()
	in.counts[f]++
	in.mu.Unlock()
}

// rngFor derives the worker's private schedule stream.
func (in *Injector) rngFor(workerID string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(workerID))
	return rand.New(rand.NewSource(in.seed ^ int64(h.Sum64())))
}

// Hooks returns the fault hooks for one worker. The hooks draw from a
// per-worker seeded stream under a mutex (the heartbeat hook runs on a
// different goroutine than the execution hooks).
func (in *Injector) Hooks(workerID string) cluster.Hooks {
	rng := in.rngFor(workerID)
	var mu sync.Mutex
	draw := func(p float64) bool {
		if p <= 0 {
			return false
		}
		mu.Lock()
		defer mu.Unlock()
		return rng.Float64() < p
	}
	profile := func() Profile {
		in.mu.Lock()
		defer in.mu.Unlock()
		return in.profiles[workerID]
	}
	return cluster.Hooks{
		BeforeExecute: func(ctx context.Context, t *cluster.Task) error {
			p := profile()
			if draw(p.Crash) {
				in.fired(FaultCrash)
				return cluster.ErrWorkerCrashed
			}
			if draw(p.Hang) {
				in.fired(FaultHang)
				delay := p.HangDelay
				if delay <= 0 {
					delay = 2 * t.Lease()
				}
				// A hung node does not answer its context either; the
				// timer alone decides when the task is abandoned.
				time.Sleep(delay)
				return fmt.Errorf("chaos: worker %s hung past its lease; abandoning task %s", workerID, t.ID)
			}
			if draw(p.Slow) {
				in.fired(FaultSlow)
				delay := p.SlowDelay
				if delay <= 0 {
					delay = 10 * time.Millisecond
				}
				time.Sleep(delay)
			}
			return nil
		},
		TransformResults: func(t *cluster.Task, results []cluster.CellResult) []cluster.CellResult {
			p := profile()
			if draw(p.Panic) {
				in.fired(FaultPanic)
				panic(fmt.Sprintf("chaos: injected panic on worker %s task %s", workerID, t.ID))
			}
			if draw(p.Corrupt) {
				in.fired(FaultCorrupt)
				return corrupt(results)
			}
			return results
		},
		SuppressHeartbeat: func(*cluster.Task) bool {
			if draw(profile().DropHeartbeat) {
				in.fired(FaultDropHeartbeat)
				return true
			}
			return false
		},
	}
}

// corrupt tampers with every OK report in the batch — on copies, never
// in place, because in-process workers share report pointers with the
// harness cache that later serves as the differential oracle.
func corrupt(results []cluster.CellResult) []cluster.CellResult {
	out := make([]cluster.CellResult, len(results))
	copy(out, results)
	for i := range out {
		if out[i].Outcome != core.OutcomeOK || out[i].Report == nil {
			continue
		}
		bad := *out[i].Report
		bad.ParallelCost = bad.SerialCost + 1 // speedup < 1: impossible
		out[i].Report = &bad
	}
	return out
}

// ErrCoordinatorDown is what a Proxy returns while the coordinator
// behind it is killed: a generic coordination error, so workers back
// off and retry exactly as they would against a crashed remote.
var ErrCoordinatorDown = errors.New("chaos: coordinator down (killed by harness)")

// Proxy is a switchable cluster.Coordination front. Workers keep their
// pointer to the Proxy while the harness SIGKILLs the coordinator
// behind it (Swap(nil)), recovers a replacement from its journal, and
// swaps it in — the fleet reconnects without being restarted, the way
// a real fleet rides out a coordinator redeploy.
type Proxy struct {
	mu sync.RWMutex
	c  cluster.Coordination
}

// NewProxy returns a proxy fronting c.
func NewProxy(c cluster.Coordination) *Proxy { return &Proxy{c: c} }

// Swap replaces the coordinator behind the proxy; nil takes it down.
func (p *Proxy) Swap(c cluster.Coordination) {
	p.mu.Lock()
	p.c = c
	p.mu.Unlock()
}

func (p *Proxy) get() (cluster.Coordination, error) {
	p.mu.RLock()
	c := p.c
	p.mu.RUnlock()
	if c == nil {
		return nil, ErrCoordinatorDown
	}
	return c, nil
}

// Claim implements cluster.Coordination.
func (p *Proxy) Claim(ctx context.Context, req cluster.ClaimRequest) (*cluster.Task, error) {
	c, err := p.get()
	if err != nil {
		return nil, err
	}
	return c.Claim(ctx, req)
}

// Heartbeat implements cluster.Coordination.
func (p *Proxy) Heartbeat(ctx context.Context, req cluster.HeartbeatRequest) error {
	c, err := p.get()
	if err != nil {
		return err
	}
	return c.Heartbeat(ctx, req)
}

// Commit implements cluster.Coordination.
func (p *Proxy) Commit(ctx context.Context, req cluster.CommitRequest) error {
	c, err := p.get()
	if err != nil {
		return err
	}
	return c.Commit(ctx, req)
}

// Release implements cluster.Coordination.
func (p *Proxy) Release(ctx context.Context, req cluster.ReleaseRequest) error {
	c, err := p.get()
	if err != nil {
		return err
	}
	return c.Release(ctx, req)
}

// TearWAL injects a torn write into the tail of the newest journal file
// in dir — the bytes a crash mid-write would leave: a record header
// promising more payload than follows. Recovery must truncate it and
// lose nothing that was synced.
func TearWAL(dir string) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var journals []string
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".wal" {
			journals = append(journals, e.Name())
		}
	}
	if len(journals) == 0 {
		return fmt.Errorf("chaos: no journal in %s to tear", dir)
	}
	sort.Strings(journals)
	f, err := os.OpenFile(filepath.Join(dir, journals[len(journals)-1]), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	// Length claims 4096 payload bytes; only 6 arrive.
	_, err = f.Write([]byte{0x00, 0x10, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 0x13, 0x37, 0x00, 0x42, 0x00, 0x01})
	return err
}

// Verify checks the cluster contract after a chaos run:
//
//  1. liveness — every submitted job reached a terminal state;
//  2. safety — the coordinator's structural invariants hold (no cell
//     double-committed, none lost, bookkeeping consistent);
//  3. correctness — every completed cell's report is bit-identical to
//     a single-process run of the same cell on oracle.
//
// Parked cells are legal (that is the degraded partial-result path);
// their outcomes must be non-OK, which the structural invariants check.
func Verify(c *cluster.Coordinator, jobIDs []string, oracle *bench.Harness) error {
	if err := c.CheckInvariants(); err != nil {
		return err
	}
	for _, id := range jobIDs {
		st, err := c.Status(id)
		if err != nil {
			return fmt.Errorf("chaos verify: %w", err)
		}
		if st.State != cluster.JobDone {
			return fmt.Errorf("chaos verify: job %s did not terminate: %s (%d/%d cells done)",
				id, st.State, st.Done, st.Total)
		}
		for _, cell := range st.Cells {
			if cell.State != cluster.CellDone {
				continue
			}
			b := bench.ByName(cell.Bench)
			if b == nil {
				return fmt.Errorf("chaos verify: job %s committed unknown benchmark %q", id, cell.Bench)
			}
			want, err := oracle.Report(b, cell.Config)
			if err != nil {
				return fmt.Errorf("chaos verify: oracle run of %s under %s: %w", cell.Bench, cell.Config, err)
			}
			got := c.Report(id, cell.Bench, cell.Config)
			if got == nil {
				return fmt.Errorf("chaos verify: done cell %s/%s has no report", cell.Bench, cell.Config)
			}
			if err := core.CompareReports(want, got); err != nil {
				return fmt.Errorf("chaos verify: %s under %s differs from the single-process oracle: %w",
					cell.Bench, cell.Config, err)
			}
		}
	}
	return nil
}
