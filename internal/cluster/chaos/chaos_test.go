package chaos_test

// The chaos suite: seeded fault schedules driven through the real worker
// loop against a real coordinator, checked with Verify's three-part
// contract (liveness, safety, differential oracle). The acceptance test
// runs the full 57-benchmark paper grid through a 3-worker fleet with
// one permanently hung node and requires zero lost cells plus the sick
// worker's breaker OPEN on /metrics.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"loopapalooza/internal/bench"
	"loopapalooza/internal/cluster"
	"loopapalooza/internal/cluster/chaos"
	"loopapalooza/internal/core"
	"loopapalooza/internal/serve"
)

// fleet starts n workers with injector-supplied hooks and returns a stop
// function that cancels and joins them.
func fleet(t *testing.T, surface cluster.Coordination, inj *chaos.Injector, ids []string) func() {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for _, id := range ids {
		w, err := cluster.NewWorker(cluster.WorkerOptions{
			ID:          id,
			Coordinator: surface,
			Poll:        5 * time.Millisecond,
			Hooks:       inj.Hooks(id),
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() { defer wg.Done(); w.Run(ctx) }()
	}
	return func() { cancel(); wg.Wait() }
}

func waitJobs(t *testing.T, c *cluster.Coordinator, timeout time.Duration, jobs ...string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	for _, id := range jobs {
		if err := c.Wait(ctx, id); err != nil {
			st, _ := c.Status(id)
			if st != nil {
				t.Fatalf("job %s did not finish in %v: %s (%d/%d cells)", id, timeout, st.State, st.Done, st.Total)
			}
			t.Fatalf("job %s did not finish in %v: %v", id, timeout, err)
		}
	}
}

// TestChaosMixedFaults drives every fault kind at once through a
// four-worker fleet and checks the full Verify contract. The retry
// budget is sized so transient faults cannot park a cell outright, hence
// every cell must come back OK and bit-identical to the oracle.
func TestChaosMixedFaults(t *testing.T) {
	coord := cluster.NewCoordinator(cluster.CoordinatorOptions{
		Lease:        150 * time.Millisecond,
		MaxAttempts:  8,
		RetryBackoff: 5 * time.Millisecond,
		MaxBackoff:   40 * time.Millisecond,
		// Small batches make many tasks, so the per-task fault schedule
		// gets plenty of draws.
		BatchSize:        4,
		BreakerThreshold: 3,
		BreakerCooldown:  50 * time.Millisecond,
		Seed:             1,
	})
	defer coord.Close()

	inj := chaos.NewInjector(42)
	inj.SetProfile("flaky", chaos.Profile{Panic: 0.5, Slow: 0.5, SlowDelay: 5 * time.Millisecond})
	inj.SetProfile("liar", chaos.Profile{Corrupt: 0.5, DropHeartbeat: 0.5})
	inj.SetProfile("sleepy", chaos.Profile{Hang: 0.3, HangDelay: 300 * time.Millisecond})
	// "steady" keeps the zero profile: the healthy worker that guarantees
	// forward progress while the others misbehave.
	stop := fleet(t, coord, inj, []string{"steady", "flaky", "liar", "sleepy"})
	defer stop()

	bs := bench.BySuite(bench.SuiteEEMBC)[:3]
	var jobs []string
	for i, tenant := range []string{"alice", "bob"} {
		id, err := coord.Submit(tenant, bs[i:i+2], core.PaperConfigs(), false)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, id)
	}
	waitJobs(t, coord, 2*time.Minute, jobs...)
	stop()

	if err := chaos.Verify(coord, jobs, bench.NewHarness()); err != nil {
		t.Fatal(err)
	}
	for _, id := range jobs {
		st, err := coord.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Counts[core.OutcomeOK] != st.Total {
			t.Fatalf("job %s: %s — transient faults must not park cells with attempts to spare", id, st.Summary)
		}
	}
	counts := inj.Counts()
	total := 0
	for _, n := range counts {
		total += n
	}
	if total == 0 {
		t.Fatalf("no faults fired: the schedule %v exercised nothing", counts)
	}
	t.Logf("faults fired: %v; coordinator stats: %+v", counts, coord.Stats())
}

// TestChaosCrashedWorker kills one worker on its first task and checks
// the fleet absorbs the orphaned lease: the cells come back after expiry
// and the job still completes fully OK.
func TestChaosCrashedWorker(t *testing.T) {
	// Lease is generous and the retry budget deep: under a saturated
	// -race run the survivor's heartbeat goroutine can be starved past a
	// tight deadline, and a false expiry must never park cells. The
	// doomed worker's orphaned lease still expires well inside waitJobs.
	coord := cluster.NewCoordinator(cluster.CoordinatorOptions{
		Lease:        time.Second,
		MaxAttempts:  8,
		RetryBackoff: 5 * time.Millisecond,
		Seed:         1,
	})
	defer coord.Close()

	inj := chaos.NewInjector(7)
	inj.SetProfile("doomed", chaos.Profile{Crash: 1})
	stop := fleet(t, coord, inj, []string{"doomed", "survivor"})
	defer stop()

	bs := bench.BySuite(bench.SuiteEEMBC)[:2]
	id, err := coord.Submit("crash", bs, core.PaperConfigs(), false)
	if err != nil {
		t.Fatal(err)
	}
	waitJobs(t, coord, time.Minute, id)
	stop()

	if err := chaos.Verify(coord, []string{id}, bench.NewHarness()); err != nil {
		t.Fatal(err)
	}
	st, err := coord.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Counts[core.OutcomeOK] != st.Total {
		t.Fatalf("job after crash: %s, want all %d cells ok", st.Summary, st.Total)
	}
	if got := inj.Counts()[chaos.FaultCrash]; got != 1 {
		t.Fatalf("crash fault fired %d times, want exactly 1 (the loop must die)", got)
	}
	if s := coord.Stats(); s.LeaseExpiries == 0 {
		t.Fatalf("stats %+v: the crashed worker's lease never expired", s)
	}
}

// TestAcceptanceHungWorkerPaperGrid is the acceptance run from the
// issue: a 3-worker cluster in which one node permanently hangs past its
// lease deadline must complete the full 57-benchmark × 14-configuration
// paper-grid sweep with zero lost cells, and the sick worker's breaker
// must be OPEN in /metrics when the sweep lands.
func TestAcceptanceHungWorkerPaperGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("full paper-grid sweep; skipped with -short")
	}
	coord := cluster.NewCoordinator(cluster.CoordinatorOptions{
		Lease:        400 * time.Millisecond,
		RetryBackoff: 10 * time.Millisecond,
		// Quarantine after two hang cycles (~1s) — well inside the
		// multi-second sweep even on a heavily loaded machine — and one
		// cooldown longer than the test, so once OPEN the breaker stays
		// OPEN for the /metrics assertion.
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
		Seed:             1,
	})
	defer coord.Close()

	s, err := serve.New(serve.Options{Cluster: coord})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	inj := chaos.NewInjector(1)
	inj.SetProfile("sick", chaos.Profile{Hang: 1, HangDelay: 500 * time.Millisecond})
	stop := fleet(t, coord, inj, []string{"healthy-0", "healthy-1", "sick"})
	defer stop()

	grid := bench.All()
	if len(grid) != 57 {
		t.Fatalf("registered %d benchmarks, the paper grid has 57", len(grid))
	}
	id, err := coord.Submit("paper", grid, core.PaperConfigs(), false)
	if err != nil {
		t.Fatal(err)
	}
	waitJobs(t, coord, 5*time.Minute, id)

	st, err := coord.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(grid) * len(core.PaperConfigs())
	if st.Done != wantCells || st.Counts[core.OutcomeOK] != wantCells {
		t.Fatalf("paper grid: %s, want all %d cells ok (zero lost)", st.Summary, wantCells)
	}
	if err := chaos.Verify(coord, []string{id}, bench.NewHarness()); err != nil {
		t.Fatal(err)
	}

	// The sick node must be quarantined, and visibly so on /metrics.
	for _, wi := range coord.Workers() {
		if wi.ID == "sick" && wi.Breaker != cluster.BreakerOpen {
			t.Fatalf("sick worker breaker %s, want open", wi.State)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metricsText := string(raw)
	if !strings.Contains(metricsText, `lpd_cluster_breaker_state{worker="sick"} 1`) {
		t.Fatalf("/metrics missing OPEN breaker gauge for the sick worker:\n%s",
			grepLines(metricsText, "lpd_cluster_breaker_state"))
	}
	t.Logf("hangs fired: %d; stats: %+v", inj.Counts()[chaos.FaultHang], coord.Stats())
}

// waitCommitted polls until the coordinator has committed at least n
// cells (progress gate for mid-run coordinator kills).
func waitCommitted(t *testing.T, c *cluster.Coordinator, n uint64, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if c.Stats().CommittedCells >= n {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("coordinator committed %d cells in %v, want >= %d", c.Stats().CommittedCells, timeout, n)
}

// TestAcceptanceCoordinatorRestartPaperGrid is the durability acceptance
// run: a 3-worker fleet sweeps the full 57×14 paper grid while the
// coordinator is SIGKILLed and restarted twice mid-run, with a torn
// write injected into the journal tail before each recovery. The fleet
// is never restarted — workers ride out the outages through a Proxy —
// and the finished grid must be bit-identical to the single-process
// oracle with zero lost and zero double-committed cells.
func TestAcceptanceCoordinatorRestartPaperGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("full paper-grid sweep; skipped with -short")
	}
	dir := t.TempDir()
	opts := cluster.CoordinatorOptions{
		Lease:        500 * time.Millisecond,
		MaxAttempts:  8,
		RetryBackoff: 10 * time.Millisecond,
		RatePerSec:   -1,
		Seed:         1,
		DataDir:      dir,
	}
	coord, err := cluster.OpenCoordinator(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })

	proxy := chaos.NewProxy(coord)
	// All-zero fault profiles: this run's fault is the coordinator itself.
	inj := chaos.NewInjector(9)
	stop := fleet(t, proxy, inj, []string{"w0", "w1", "w2"})
	defer stop()

	grid := bench.All()
	id, err := coord.Submit("paper", grid, core.PaperConfigs(), false)
	if err != nil {
		t.Fatal(err)
	}
	wantCells := uint64(len(grid) * len(core.PaperConfigs()))

	// Kill the coordinator at ~20% and ~60% of the grid.
	for round, threshold := range []uint64{wantCells / 5, wantCells * 3 / 5} {
		waitCommitted(t, coord, threshold, 2*time.Minute)
		proxy.Swap(nil) // the fleet sees ErrCoordinatorDown and backs off
		coord.Crash()
		if err := chaos.TearWAL(dir); err != nil {
			t.Fatalf("restart %d: tearing WAL: %v", round, err)
		}
		coord, err = cluster.OpenCoordinator(opts)
		if err != nil {
			t.Fatalf("restart %d: recovery: %v", round, err)
		}
		if err := coord.CheckInvariants(); err != nil {
			t.Fatalf("restart %d: invariants after recovery: %v", round, err)
		}
		proxy.Swap(coord)
	}

	waitJobs(t, coord, 5*time.Minute, id)
	stop()

	if err := chaos.Verify(coord, []string{id}, bench.NewHarness()); err != nil {
		t.Fatal(err)
	}
	st, err := coord.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(st.Counts[core.OutcomeOK]) != wantCells {
		t.Fatalf("paper grid across restarts: %s, want all %d cells ok (zero lost)", st.Summary, wantCells)
	}
	ws := coord.WALStats()
	if ws.RecoveredRecords == 0 {
		t.Fatal("final coordinator replayed no journal records")
	}
	if ws.TornBytes == 0 {
		t.Fatal("recovery saw no torn tail despite the injected tear")
	}
	t.Logf("replayed %d records (%d torn bytes truncated); stats: %+v",
		ws.RecoveredRecords, ws.TornBytes, coord.Stats())
}

// TestChaosSmokeRestart is the coordinator-restart wave of
// `make chaos-smoke`: mixed worker faults AND a coordinator kill +
// torn-tail recovery every wave. Gated like TestChaosSmoke.
func TestChaosSmokeRestart(t *testing.T) {
	if os.Getenv("LPD_CHAOS_SMOKE") == "" {
		t.Skip("set LPD_CHAOS_SMOKE=1 (or run `make chaos-smoke`)")
	}
	dir := t.TempDir()
	opts := cluster.CoordinatorOptions{
		Lease:        300 * time.Millisecond,
		MaxAttempts:  8,
		RetryBackoff: 5 * time.Millisecond,
		MaxBackoff:   50 * time.Millisecond,
		RatePerSec:   -1,
		Seed:         1,
		DataDir:      dir,
		// Small threshold so the waves exercise compaction too.
		CompactEvery: 256,
	}
	coord, err := cluster.OpenCoordinator(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	proxy := chaos.NewProxy(coord)

	inj := chaos.NewInjector(2027)
	inj.SetProfile("flaky", chaos.Profile{Panic: 0.2, Slow: 0.3, SlowDelay: 10 * time.Millisecond})
	inj.SetProfile("liar", chaos.Profile{Corrupt: 0.25})
	stop := fleet(t, proxy, inj, []string{"steady", "flaky", "liar"})
	defer stop()

	oracle := bench.NewHarness()
	all := bench.All()
	deadline := time.Now().Add(15 * time.Second)
	wave := 0
	for time.Now().Before(deadline) {
		bs := make([]*bench.Benchmark, 0, 3)
		for i := 0; i < 3; i++ {
			bs = append(bs, all[(wave*3+i)%len(all)])
		}
		before := coord.Stats().CommittedCells
		id, err := coord.Submit(fmt.Sprintf("restart-%d", wave%4), bs, core.PaperConfigs(), false)
		if err != nil {
			t.Fatal(err)
		}
		// Kill mid-wave, tear the tail, recover.
		waitCommitted(t, coord, before+5, time.Minute)
		proxy.Swap(nil)
		coord.Crash()
		if err := chaos.TearWAL(dir); err != nil {
			t.Fatalf("wave %d: %v", wave, err)
		}
		coord, err = cluster.OpenCoordinator(opts)
		if err != nil {
			t.Fatalf("wave %d: recovery: %v", wave, err)
		}
		proxy.Swap(coord)
		waitJobs(t, coord, 2*time.Minute, id)
		if err := chaos.Verify(coord, []string{id}, oracle); err != nil {
			t.Fatalf("wave %d: %v", wave, err)
		}
		wave++
	}
	stop()
	if err := coord.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	t.Logf("%d kill/recover waves survived; faults fired: %v; stats: %+v; wal: %+v",
		wave, inj.Counts(), coord.Stats(), coord.WALStats())
}

func grepLines(s, needle string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, needle) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestChaosSmoke is the `make chaos-smoke` entry point: ~30 seconds of
// seeded mixed-fault waves, each wave verified against the full
// contract. Gated behind LPD_CHAOS_SMOKE=1 so plain `go test ./...`
// stays fast.
func TestChaosSmoke(t *testing.T) {
	if os.Getenv("LPD_CHAOS_SMOKE") == "" {
		t.Skip("set LPD_CHAOS_SMOKE=1 (or run `make chaos-smoke`)")
	}
	coord := cluster.NewCoordinator(cluster.CoordinatorOptions{
		Lease:            200 * time.Millisecond,
		MaxAttempts:      8,
		RetryBackoff:     5 * time.Millisecond,
		MaxBackoff:       50 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  100 * time.Millisecond,
		// Once the worker harnesses warm up, waves land faster than the
		// production admission rate: the smoke is about fault tolerance,
		// not rate limiting.
		RatePerSec: -1,
		Seed:       1,
	})
	defer coord.Close()

	inj := chaos.NewInjector(2026)
	inj.SetProfile("flaky", chaos.Profile{Panic: 0.2, Slow: 0.3, SlowDelay: 10 * time.Millisecond})
	inj.SetProfile("liar", chaos.Profile{Corrupt: 0.25, DropHeartbeat: 0.4})
	inj.SetProfile("sleepy", chaos.Profile{Hang: 0.15, HangDelay: 400 * time.Millisecond})
	inj.SetProfile("steady", chaos.Profile{})
	stop := fleet(t, coord, inj, []string{"steady", "flaky", "liar", "sleepy"})
	defer stop()

	oracle := bench.NewHarness()
	all := bench.All()
	deadline := time.Now().Add(30 * time.Second)
	wave := 0
	for time.Now().Before(deadline) {
		// Rotate through the registry three benchmarks at a time so the
		// waves keep finding fresh interpretation work.
		bs := make([]*bench.Benchmark, 0, 3)
		for i := 0; i < 3; i++ {
			bs = append(bs, all[(wave*3+i)%len(all)])
		}
		id, err := coord.Submit(fmt.Sprintf("smoke-%d", wave%4), bs, core.PaperConfigs(), false)
		if err != nil {
			t.Fatal(err)
		}
		waitJobs(t, coord, 2*time.Minute, id)
		if err := chaos.Verify(coord, []string{id}, oracle); err != nil {
			t.Fatalf("wave %d: %v", wave, err)
		}
		wave++
	}
	stop()
	if err := coord.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	t.Logf("%d waves survived; faults fired: %v; stats: %+v", wave, inj.Counts(), coord.Stats())
}
