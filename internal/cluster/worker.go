package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"loopapalooza/internal/bench"
	"loopapalooza/internal/core"
)

// Hooks intercept the worker loop. They exist for the chaos harness and
// tests: every injectable fault — crash mid-cell, hang past the lease,
// corrupt results, slow node, dropped heartbeats — is expressed through
// them, so the production loop and the loop under fault injection are
// the same code.
type Hooks struct {
	// BeforeExecute runs after a task is claimed, before execution.
	// Returning ErrWorkerCrashed kills the worker loop without a commit
	// (a simulated process death); blocking simulates a hang; sleeping
	// simulates a slow node. Any other error abandons the task.
	BeforeExecute func(ctx context.Context, t *Task) error
	// TransformResults may replace the results before commit (the
	// corrupt-result fault).
	TransformResults func(t *Task, results []CellResult) []CellResult
	// SuppressHeartbeat reports whether to skip a heartbeat tick (the
	// heartbeat-loss fault).
	SuppressHeartbeat func(t *Task) bool
}

// WorkerOptions configures a Worker.
type WorkerOptions struct {
	// ID names the worker to the coordinator (required, stable across
	// its claims).
	ID string
	// Coordinator is the claim/heartbeat/commit surface (required).
	Coordinator Coordination
	// Harness executes claimed cells (nil = a fresh default harness).
	// Its budgets are the worker's cell budgets.
	Harness *bench.Harness
	// Poll is the idle sleep between claims when the queue is empty
	// (0 = 100ms).
	Poll time.Duration
	// CommitTimeout bounds the commit/release RPC after an execution
	// whose context is already canceled, so drain can't wedge on a dead
	// coordinator (0 = 5s).
	CommitTimeout time.Duration
	// Hooks intercept the loop (chaos and tests).
	Hooks Hooks
	// Log receives structured worker logs (nil = discard).
	Log *slog.Logger
}

// WorkerStats counts one worker's traffic.
type WorkerStats struct {
	// Claims counts claim calls; Tasks those that returned work.
	Claims, Tasks uint64
	// Cells counts cells executed (including canceled attempts).
	Cells uint64
	// Commits counts successful commit RPCs; StaleCommits those
	// rejected because the lease was reclaimed first.
	Commits, StaleCommits uint64
	// BreakerRejections counts claims refused by the worker's breaker.
	BreakerRejections uint64
	// HeartbeatMisses counts heartbeats that found the lease gone.
	HeartbeatMisses uint64
}

// Worker claims tasks from a Coordination surface, executes their cells
// on its local harness (sharing one interpretation across a task's
// configurations), heartbeats its leases, and commits per-cell results.
// One worker runs one task at a time; fleet parallelism comes from
// running many workers, cell parallelism from the harness inside a task.
type Worker struct {
	opts WorkerOptions
	log  *slog.Logger

	running     atomic.Bool
	draining    atomic.Bool
	quarantined atomic.Bool // last claim was rejected by the breaker

	mu    sync.Mutex
	stats WorkerStats
}

// NewWorker builds a worker.
func NewWorker(opts WorkerOptions) (*Worker, error) {
	if opts.ID == "" {
		return nil, fmt.Errorf("cluster: worker needs an id")
	}
	if opts.Coordinator == nil {
		return nil, fmt.Errorf("cluster: worker %s needs a coordinator", opts.ID)
	}
	if opts.Harness == nil {
		opts.Harness = bench.NewHarness()
	}
	if opts.Poll <= 0 {
		opts.Poll = 100 * time.Millisecond
	}
	if opts.CommitTimeout <= 0 {
		opts.CommitTimeout = 5 * time.Second
	}
	log := opts.Log
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return &Worker{opts: opts, log: log.With("worker", opts.ID)}, nil
}

// ID returns the worker's id.
func (w *Worker) ID() string { return w.opts.ID }

// Stats snapshots the worker's counters.
func (w *Worker) Stats() WorkerStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// Ready reports whether the worker should receive traffic: running, not
// draining, and not quarantined by its breaker. It is the /readyz
// predicate of the worker role.
func (w *Worker) Ready() bool {
	return w.running.Load() && !w.draining.Load() && !w.quarantined.Load()
}

// StartDrain marks the worker NOT-READY ahead of shutdown, so load
// balancers stop routing before the loop stops claiming.
func (w *Worker) StartDrain() { w.draining.Store(true) }

// Run claims and executes tasks until ctx is canceled. On cancellation
// mid-task the execution is cut short and every unfinished cell is
// committed with a canceled outcome, which the coordinator requeues
// without charging its retry budget — drain never loses cells. Run
// returns nil on a clean drain, or the injected crash error.
func (w *Worker) Run(ctx context.Context) error {
	w.running.Store(true)
	defer w.running.Store(false)
	for {
		if ctx.Err() != nil {
			return nil
		}
		t, err := w.claim(ctx)
		switch {
		case t != nil:
			w.quarantined.Store(false)
			if err := w.runTask(ctx, t); errors.Is(err, ErrWorkerCrashed) {
				w.log.Error("worker crashed", "task", t.ID)
				return err
			}
		case errors.Is(err, ErrBreakerOpen):
			w.quarantined.Store(true)
			w.mu.Lock()
			w.stats.BreakerRejections++
			w.mu.Unlock()
			var boe *BreakerOpenError
			wait := w.opts.Poll
			if errors.As(err, &boe) && boe.RetryAfter > wait {
				wait = boe.RetryAfter
			}
			sleepCtx(ctx, wait)
		case errors.Is(err, ErrNoWork), errors.Is(err, ErrDraining):
			w.quarantined.Store(false)
			sleepCtx(ctx, w.opts.Poll)
		case err != nil && ctx.Err() == nil:
			// Transport trouble: back off a poll and try again.
			w.log.Warn("claim failed", "err", err.Error())
			sleepCtx(ctx, w.opts.Poll)
		}
	}
}

func (w *Worker) claim(ctx context.Context) (*Task, error) {
	w.mu.Lock()
	w.stats.Claims++
	w.mu.Unlock()
	t, err := w.opts.Coordinator.Claim(ctx, ClaimRequest{Worker: w.opts.ID})
	if t != nil {
		w.mu.Lock()
		w.stats.Tasks++
		w.mu.Unlock()
	}
	return t, err
}

// runTask executes one leased task end to end: fault hooks, heartbeat
// keepalive, harness execution, commit.
func (w *Worker) runTask(ctx context.Context, t *Task) error {
	if h := w.opts.Hooks.BeforeExecute; h != nil {
		if err := h(ctx, t); err != nil {
			return err
		}
	}

	// The heartbeat loop keeps the lease alive while the harness works;
	// if the coordinator reports the lease gone, the execution context
	// is canceled so the worker stops burning time on reclaimed cells.
	execCtx, cancelExec := context.WithCancel(ctx)
	defer cancelExec()
	hbStop := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		w.heartbeatLoop(execCtx, t, hbStop, cancelExec)
	}()

	results := w.guardedExecute(execCtx, t)
	close(hbStop)
	hbWG.Wait()

	// Commit on an independent timeout: during drain ctx is already
	// canceled, and the canceled results must still reach the
	// coordinator so the cells requeue immediately instead of waiting
	// out the lease.
	commitCtx, cancel := context.WithTimeout(context.Background(), w.opts.CommitTimeout)
	defer cancel()
	err := w.opts.Coordinator.Commit(commitCtx, CommitRequest{
		Worker: w.opts.ID, Task: t.ID, Results: results,
	})
	w.mu.Lock()
	switch {
	case err == nil:
		w.stats.Commits++
	case errors.Is(err, ErrLeaseExpired):
		w.stats.StaleCommits++
	}
	w.mu.Unlock()
	if err != nil {
		w.log.Warn("commit failed", "task", t.ID, "err", err.Error())
	}
	return nil
}

// heartbeatLoop extends the lease every lease/3 until stop closes. A
// rejected heartbeat cancels the execution.
func (w *Worker) heartbeatLoop(ctx context.Context, t *Task, stop <-chan struct{}, cancelExec context.CancelFunc) {
	interval := t.Lease() / 3
	if interval <= 0 {
		interval = time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ctx.Done():
			return
		case <-tick.C:
			if s := w.opts.Hooks.SuppressHeartbeat; s != nil && s(t) {
				continue
			}
			hbCtx, cancel := context.WithTimeout(context.Background(), interval)
			err := w.opts.Coordinator.Heartbeat(hbCtx, HeartbeatRequest{Worker: w.opts.ID, Task: t.ID})
			cancel()
			if errors.Is(err, ErrLeaseExpired) {
				w.mu.Lock()
				w.stats.HeartbeatMisses++
				w.mu.Unlock()
				cancelExec()
				return
			}
		}
	}
}

// guardedExecute runs execution plus the TransformResults hook under a
// panic guard: a panic anywhere (including an injected one) converts to
// per-cell panic results rather than killing the worker process.
func (w *Worker) guardedExecute(ctx context.Context, t *Task) (results []CellResult) {
	defer func() {
		if p := recover(); p != nil {
			err := fmt.Sprintf("cluster: worker panic: %v\n%s", p, debug.Stack())
			results = results[:0]
			for _, tc := range t.Cells {
				results = append(results, CellResult{
					Config: tc.Config, Outcome: core.OutcomePanic, Error: err,
				})
			}
		}
	}()
	results = w.execute(ctx, t)
	if tr := w.opts.Hooks.TransformResults; tr != nil {
		results = tr(t, results)
	}
	return results
}

// execute runs the task's cells on the local harness. All cells share
// the task's benchmark, so the harness fans one interpretation across
// every configuration; per-cell failures come back as typed outcomes,
// and a panic anywhere in the stack converts to per-cell panic results
// rather than killing the loop.
func (w *Worker) execute(ctx context.Context, t *Task) (results []CellResult) {
	defer func() {
		if p := recover(); p != nil {
			err := fmt.Sprintf("cluster: worker execution panic: %v\n%s", p, debug.Stack())
			results = results[:0]
			for _, tc := range t.Cells {
				results = append(results, CellResult{
					Config: tc.Config, Outcome: core.OutcomePanic, Error: err,
				})
			}
		}
	}()
	w.mu.Lock()
	w.stats.Cells += uint64(len(t.Cells))
	w.mu.Unlock()

	b := bench.ByName(t.Bench)
	if b == nil {
		for _, tc := range t.Cells {
			results = append(results, CellResult{
				Config:  tc.Config,
				Outcome: core.OutcomeError,
				Error:   fmt.Sprintf("cluster: unknown benchmark %q", t.Bench),
			})
		}
		return results
	}
	cfgs := make([]core.Config, len(t.Cells))
	for i, tc := range t.Cells {
		cfgs[i] = tc.Config
	}
	sr := w.opts.Harness.Sweep(ctx, []*bench.Benchmark{b}, cfgs)
	for _, cell := range sr.Cells {
		res := CellResult{Config: cell.Config, Outcome: cell.Outcome, Report: cell.Report}
		if cell.Err != nil {
			res.Error = cell.Err.Error()
		}
		results = append(results, res)
	}
	return results
}

// sleepCtx sleeps d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
