package cluster

// Durability layer: every coordinator state transition becomes a record
// in a write-ahead log (internal/wal), and OpenCoordinator rebuilds the
// full job store — queues, leases, terminal cells, committed reports —
// by replaying snapshot + journal. Recovery re-arms lease deadlines at
// now+Lease so workers holding live tasks simply reconnect: their
// heartbeats and commits land on the replayed task table. At-most-once
// commit holds across a crash: an acked commit was fsynced first, the
// generation scheme never replays a record twice, and the replay
// helpers are idempotent anyway.
//
// Deliberately not persisted (documented volatile state): worker
// breakers and health, tenant token buckets, and the backoff RNG — a
// restart gives every worker a closed breaker and every tenant a full
// bucket, which is the conservative choice after losing the evidence
// that opened them.

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"loopapalooza/internal/core"
	"loopapalooza/internal/wal"
)

// DefaultCompactEvery is the journal-records-since-snapshot threshold
// that triggers compaction.
const DefaultCompactEvery = 4096

// walRec is one journal record: a state transition keyed by K. Unused
// fields stay empty; the record kinds are:
//
//	admit    job admitted (benches × cfgs cells enqueued)
//	lease    task granted (cells leased, attempts charged)
//	taskdone task left the lease table (commit, release, or expiry)
//	commit   cell committed with its verified report
//	park     cell terminally failed
//	retry    cell requeued with backoff (attempt already charged)
//	refund   cell requeued uncharged (cancel/release)
type walRec struct {
	K string `json:"k"`

	Job    string `json:"job,omitempty"`
	Tenant string `json:"tenant,omitempty"`

	// admit
	Include bool          `json:"include,omitempty"`
	Created int64         `json:"created,omitempty"` // UnixNano
	Benches []string      `json:"benches,omitempty"`
	Cfgs    []core.Config `json:"cfgs,omitempty"`

	// lease
	Task   string `json:"task,omitempty"`
	Worker string `json:"worker,omitempty"`

	// cell transitions
	Bench     string       `json:"bench,omitempty"`
	Cfg       *core.Config `json:"cfg,omitempty"`
	Outcome   core.Outcome `json:"outcome,omitempty"`
	Err       string       `json:"err,omitempty"`
	Report    *core.Report `json:"report,omitempty"`
	NotBefore int64        `json:"notBefore,omitempty"` // UnixNano
}

// Snapshot schema: the full coordinator state at compaction time.
type snapState struct {
	JobSeq      int       `json:"jobSeq"`
	TaskSeq     int       `json:"taskSeq"`
	RRIdx       int       `json:"rrIdx"`
	TenantOrder []string  `json:"tenantOrder"`
	Stats       Stats     `json:"stats"`
	Jobs        []snapJob `json:"jobs"`
	// Queues preserves each tenant's FIFO order as (job, cell index)
	// references.
	Queues map[string][]snapRef `json:"queues"`
	Tasks  []snapTask           `json:"tasks"`
}

type snapJob struct {
	ID      string     `json:"id"`
	Tenant  string     `json:"tenant"`
	Include bool       `json:"include,omitempty"`
	Created int64      `json:"created"`
	Started bool       `json:"started,omitempty"`
	Cells   []snapCell `json:"cells"`
}

type snapCell struct {
	Bench     string       `json:"bench"`
	Cfg       core.Config  `json:"cfg"`
	State     CellState    `json:"state"`
	Attempts  int          `json:"attempts,omitempty"`
	NotBefore int64        `json:"notBefore,omitempty"`
	Outcome   core.Outcome `json:"outcome,omitempty"`
	Err       string       `json:"err,omitempty"`
	Report    *core.Report `json:"report,omitempty"`
	Commits   int          `json:"commits,omitempty"`
}

type snapRef struct {
	Job string `json:"job"`
	Idx int    `json:"idx"`
}

type snapTask struct {
	ID     string    `json:"id"`
	Worker string    `json:"worker"`
	Tenant string    `json:"tenant"`
	Bench  string    `json:"bench"`
	Refs   []snapRef `json:"refs"`
}

// OpenCoordinator opens (or creates) a durable coordinator backed by a
// write-ahead log in opts.DataDir, replaying any recovered state before
// the janitor starts. With an empty DataDir it degrades to the
// in-memory NewCoordinator.
func OpenCoordinator(opts CoordinatorOptions) (*Coordinator, error) {
	opts.withDefaults()
	if opts.DataDir == "" {
		return NewCoordinator(opts), nil
	}
	log, err := wal.Open(opts.DataDir)
	if err != nil {
		return nil, err
	}
	c := newCoordinator(opts)
	c.wal = log
	if err := c.recover(log); err != nil {
		log.Close()
		return nil, err
	}
	go c.janitor()
	return c, nil
}

// Crash abandons the coordinator the way SIGKILL would: the janitor
// stops, unsynced journal records are dropped, and no final flush runs.
// Recovery and chaos tests use it; production shutdown is Close.
func (c *Coordinator) Crash() {
	c.mu.Lock()
	select {
	case <-c.janitorStop:
	default:
		close(c.janitorStop)
	}
	if c.wal != nil {
		c.wal.Crash()
	}
	c.mu.Unlock()
	<-c.janitorDone
}

// WALStats snapshots the underlying log counters (zero when the
// coordinator is not durable).
func (c *Coordinator) WALStats() wal.Stats {
	c.mu.Lock()
	log := c.wal
	c.mu.Unlock()
	if log == nil {
		return wal.Stats{}
	}
	return log.Stats()
}

// journalLocked appends one record to the log. It is a no-op without a
// log or during replay; durability waits for the caller's flush.
func (c *Coordinator) journalLocked(rec walRec) {
	if c.wal == nil || c.replaying {
		return
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		c.stats.WALErrors++
		return
	}
	if err := c.wal.Append(payload); err != nil {
		c.stats.WALErrors++
		return
	}
	c.walDirty = true
	c.recSinceSnap++
}

// journalCellLocked appends one cell-transition record.
func (c *Coordinator) journalCellLocked(kind string, rec *cellRec, outcome core.Outcome, errMsg string, report *core.Report, notBefore time.Time) {
	if c.wal == nil || c.replaying {
		return
	}
	cfg := rec.cfg
	wr := walRec{K: kind, Job: rec.job.id, Bench: rec.bench, Cfg: &cfg,
		Outcome: outcome, Err: errMsg, Report: report}
	if !notBefore.IsZero() {
		wr.NotBefore = notBefore.UnixNano()
	}
	c.journalLocked(wr)
}

// flushLocked makes every journaled record durable, compacting when the
// journal has outgrown the snapshot threshold. The sync error (if any)
// propagates so the caller can refuse to ack an unpersisted transition.
func (c *Coordinator) flushLocked() error {
	if c.wal == nil || !c.walDirty {
		return nil
	}
	c.walDirty = false
	if err := c.wal.Sync(); err != nil {
		// After a failed fsync the journal's durable prefix is unknowable
		// (partial writes, dropped pages), and retrying the buffer could
		// persist records for transitions the caller is about to refuse.
		// Abandon the log and degrade to in-memory operation instead of
		// risking a half-true replay.
		c.stats.WALErrors++
		c.wal.Crash()
		c.wal = nil
		return err
	}
	if c.recSinceSnap >= c.opts.CompactEvery {
		c.compactLocked()
	}
	return nil
}

// flushBestEffortLocked flushes where an error must not fail the caller
// (janitor ticks, heartbeats, no-work claims).
func (c *Coordinator) flushBestEffortLocked() {
	c.flushLocked()
}

// compactLocked folds the live state into a new snapshot generation.
// Failure is not fatal — the journal keeps growing and the next flush
// tries again.
func (c *Coordinator) compactLocked() {
	snap, err := json.Marshal(c.snapshotLocked())
	if err != nil {
		c.stats.WALErrors++
		return
	}
	if err := c.wal.Compact(snap); err != nil {
		c.stats.WALErrors++
		return
	}
	c.recSinceSnap = 0
}

// snapshotLocked serializes the coordinator state.
func (c *Coordinator) snapshotLocked() *snapState {
	st := &snapState{
		JobSeq:      c.jobSeq,
		TaskSeq:     c.taskSeq,
		RRIdx:       c.rrIdx,
		TenantOrder: append([]string(nil), c.tenantOrder...),
		Stats:       c.stats,
		Queues:      map[string][]snapRef{},
	}
	cellIdx := map[*cellRec]snapRef{}
	jobIDs := make([]string, 0, len(c.jobs))
	for id := range c.jobs {
		jobIDs = append(jobIDs, id)
	}
	sort.Strings(jobIDs)
	for _, id := range jobIDs {
		j := c.jobs[id]
		sj := snapJob{ID: j.id, Tenant: j.tenant, Include: j.includeReports,
			Created: j.created.UnixNano(), Started: j.started}
		for i, rec := range j.cells {
			cellIdx[rec] = snapRef{Job: j.id, Idx: i}
			sc := snapCell{
				Bench: rec.bench, Cfg: rec.cfg, State: rec.state,
				Attempts: rec.attempts, Outcome: rec.outcome,
				Err: rec.errMsg, Report: rec.report, Commits: rec.commits,
			}
			if !rec.notBefore.IsZero() {
				sc.NotBefore = rec.notBefore.UnixNano()
			}
			sj.Cells = append(sj.Cells, sc)
		}
		st.Jobs = append(st.Jobs, sj)
	}
	for name, ts := range c.tenants {
		for _, rec := range ts.queue {
			st.Queues[name] = append(st.Queues[name], cellIdx[rec])
		}
	}
	taskIDs := make([]string, 0, len(c.tasks))
	for id := range c.tasks {
		taskIDs = append(taskIDs, id)
	}
	sort.Strings(taskIDs)
	for _, id := range taskIDs {
		t := c.tasks[id]
		snt := snapTask{ID: t.id, Worker: t.worker, Tenant: t.tenant, Bench: t.bench}
		for _, rec := range t.cells {
			snt.Refs = append(snt.Refs, cellIdx[rec])
		}
		st.Tasks = append(st.Tasks, snt)
	}
	return st
}

// recover rebuilds the coordinator from a freshly opened log: restore
// the snapshot, replay the journal, then re-arm every recovered lease
// at now+Lease and recompute derived state.
func (c *Coordinator) recover(log *wal.Log) error {
	now := c.opts.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.replaying = true
	defer func() { c.replaying = false }()

	if snap := log.Snapshot(); len(snap) > 0 {
		var st snapState
		if err := json.Unmarshal(snap, &st); err != nil {
			return fmt.Errorf("cluster: corrupt snapshot: %w", err)
		}
		if err := c.restoreSnapshotLocked(&st, now); err != nil {
			return err
		}
	}
	// The recovered journal's records count against the compaction
	// threshold, so a journal that outgrew it while down compacts at the
	// first post-recovery flush instead of growing without bound across
	// restarts.
	c.recSinceSnap = len(log.Records())
	for _, raw := range log.Records() {
		var rec walRec
		if err := json.Unmarshal(raw, &rec); err != nil {
			// The framing CRC passed, so this is a version skew or writer
			// bug, not bit-rot; dropping the record (and everything it
			// implies) is worse than failing loudly.
			return fmt.Errorf("cluster: undecodable journal record: %w", err)
		}
		c.applyLocked(&rec, now)
	}

	// Derived state: lease deadlines, job completion, per-tenant active
	// job counts, and worker inflight all recompute from the replayed
	// truth rather than trusting persisted copies.
	for _, t := range c.tasks {
		t.deadline = now.Add(c.opts.Lease)
		ws := c.workerLocked(t.worker)
		ws.inflight++
		ws.lastSeen = now
	}
	for _, ts := range c.tenants {
		ts.activeJobs = 0
	}
	for _, j := range c.jobs {
		remaining := 0
		for _, rec := range j.cells {
			if rec.state == CellQueued || rec.state == CellLeased {
				remaining++
			}
		}
		j.remaining = remaining
		if remaining == 0 {
			select {
			case <-j.done:
			default:
				close(j.done)
			}
		} else {
			c.tenantLocked(j.tenant).activeJobs++
		}
	}
	return nil
}

func (c *Coordinator) restoreSnapshotLocked(st *snapState, now time.Time) error {
	c.jobSeq, c.taskSeq = st.JobSeq, st.TaskSeq
	c.stats = st.Stats
	for _, name := range st.TenantOrder {
		c.tenantLocked(name)
	}
	if len(c.tenantOrder) > 0 {
		c.rrIdx = st.RRIdx % len(c.tenantOrder)
	}
	for i := range st.Jobs {
		sj := &st.Jobs[i]
		j := &job{
			id: sj.ID, tenant: sj.Tenant, includeReports: sj.Include,
			created: time.Unix(0, sj.Created), started: sj.Started,
			done: make(chan struct{}),
		}
		for _, sc := range sj.Cells {
			rec := &cellRec{
				job: j, bench: sc.Bench, cfg: sc.Cfg, state: sc.State,
				attempts: sc.Attempts, outcome: sc.Outcome,
				errMsg: sc.Err, report: sc.Report, commits: sc.Commits,
			}
			if sc.NotBefore != 0 {
				rec.notBefore = time.Unix(0, sc.NotBefore)
				if max := now.Add(c.opts.MaxBackoff); rec.notBefore.After(max) {
					rec.notBefore = max
				}
			}
			if sc.State == CellQueued || sc.State == CellLeased {
				j.remaining++
			}
			j.cells = append(j.cells, rec)
		}
		c.jobs[j.id] = j
	}
	resolve := func(ref snapRef) (*cellRec, error) {
		j := c.jobs[ref.Job]
		if j == nil || ref.Idx < 0 || ref.Idx >= len(j.cells) {
			return nil, fmt.Errorf("cluster: snapshot references unknown cell %s[%d]", ref.Job, ref.Idx)
		}
		return j.cells[ref.Idx], nil
	}
	for name, refs := range st.Queues {
		ts := c.tenantLocked(name)
		for _, ref := range refs {
			rec, err := resolve(ref)
			if err != nil {
				return err
			}
			ts.queue = append(ts.queue, rec)
		}
	}
	for i := range st.Tasks {
		snt := &st.Tasks[i]
		t := &task{id: snt.ID, worker: snt.Worker, tenant: snt.Tenant, bench: snt.Bench}
		for _, ref := range snt.Refs {
			rec, err := resolve(ref)
			if err != nil {
				return err
			}
			t.cells = append(t.cells, rec)
		}
		c.tasks[t.id] = t
	}
	return nil
}

// applyLocked replays one journal record. Replay is defensive: a record
// that no longer matches the state (terminal cell, vanished task) is
// skipped rather than double-applied, so replay is idempotent even
// though the generation scheme never presents a record twice.
func (c *Coordinator) applyLocked(rec *walRec, now time.Time) {
	switch rec.K {
	case "admit":
		if c.jobs[rec.Job] != nil {
			return
		}
		j := &job{
			id: rec.Job, tenant: rec.Tenant, includeReports: rec.Include,
			created: time.Unix(0, rec.Created), done: make(chan struct{}),
			remaining: len(rec.Benches) * len(rec.Cfgs),
		}
		ts := c.tenantLocked(j.tenant)
		for _, b := range rec.Benches {
			for _, cfg := range rec.Cfgs {
				cr := &cellRec{job: j, bench: b, cfg: cfg, state: CellQueued}
				j.cells = append(j.cells, cr)
				ts.queue = append(ts.queue, cr)
			}
		}
		c.jobs[j.id] = j
		bumpSeq(&c.jobSeq, rec.Job, "job-")

	case "lease":
		if c.tasks[rec.Task] != nil {
			return
		}
		j := c.jobs[rec.Job]
		if j == nil {
			return
		}
		t := &task{id: rec.Task, worker: rec.Worker, tenant: rec.Tenant, bench: rec.Bench}
		taken := map[*cellRec]bool{}
		for _, cfg := range rec.Cfgs {
			cr := findCell(j, rec.Bench, cfg)
			if cr == nil || cr.state != CellQueued {
				continue
			}
			cr.state = CellLeased
			cr.owner = rec.Worker
			cr.attempts++
			j.started = true
			t.cells = append(t.cells, cr)
			taken[cr] = true
		}
		if len(t.cells) == 0 {
			return
		}
		ts := c.tenantLocked(rec.Tenant)
		kept := ts.queue[:0]
		for _, cr := range ts.queue {
			if !taken[cr] {
				kept = append(kept, cr)
			}
		}
		for i := len(kept); i < len(ts.queue); i++ {
			ts.queue[i] = nil
		}
		ts.queue = kept
		c.tasks[t.id] = t
		bumpSeq(&c.taskSeq, rec.Task, "task-")

	case "taskdone":
		if t := c.tasks[rec.Task]; t != nil {
			delete(c.tasks, rec.Task)
		}

	case "commit":
		if cr := c.findCellRec(rec); cr != nil {
			c.commitCellLocked(cr, rec.Report)
		}

	case "park":
		if cr := c.findCellRec(rec); cr != nil {
			c.parkLocked(cr, rec.Outcome, rec.Err)
		}

	case "retry":
		cr := c.findCellRec(rec)
		if cr == nil || cr.state != CellLeased {
			return
		}
		c.stats.Retries++
		cr.state = CellQueued
		cr.owner = ""
		cr.notBefore = time.Unix(0, rec.NotBefore)
		if max := now.Add(c.opts.MaxBackoff); cr.notBefore.After(max) {
			cr.notBefore = max
		}
		c.tenantLocked(cr.job.tenant).queue = append(c.tenantLocked(cr.job.tenant).queue, cr)

	case "refund":
		cr := c.findCellRec(rec)
		if cr == nil || cr.state != CellLeased {
			return
		}
		c.stats.RefundedCells++
		if cr.attempts > 0 {
			cr.attempts--
		}
		cr.state = CellQueued
		cr.owner = ""
		cr.notBefore = now
		c.tenantLocked(cr.job.tenant).queue = append(c.tenantLocked(cr.job.tenant).queue, cr)
	}
}

// findCellRec resolves a cell-transition record to its live cell.
func (c *Coordinator) findCellRec(rec *walRec) *cellRec {
	j := c.jobs[rec.Job]
	if j == nil || rec.Cfg == nil {
		return nil
	}
	return findCell(j, rec.Bench, *rec.Cfg)
}

func findCell(j *job, bench string, cfg core.Config) *cellRec {
	for _, cr := range j.cells {
		if cr.bench == bench && cr.cfg == cfg {
			return cr
		}
	}
	return nil
}

// bumpSeq keeps a sequence counter ahead of every replayed id so new
// ids never collide with recovered ones.
func bumpSeq(seq *int, id, prefix string) {
	n, err := strconv.Atoi(strings.TrimPrefix(id, prefix))
	if err == nil && n > *seq {
		*seq = n
	}
}
