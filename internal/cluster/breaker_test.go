package cluster

import (
	"testing"
	"time"
)

func TestBreakerTripsAfterThreshold(t *testing.T) {
	now := time.Unix(1000, 0)
	b := breaker{threshold: 3, cooldown: 5 * time.Second}
	for i := 0; i < 2; i++ {
		b.failure(now)
		if _, ok := b.allow(now); !ok {
			t.Fatalf("breaker open after %d failures (threshold 3)", i+1)
		}
	}
	b.failure(now)
	if b.state != BreakerOpen {
		t.Fatalf("state %v after threshold failures, want open", b.state)
	}
	wait, ok := b.allow(now)
	if ok || wait != 5*time.Second {
		t.Fatalf("allow during cooldown: ok=%v wait=%v", ok, wait)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	now := time.Unix(1000, 0)
	b := breaker{threshold: 1, cooldown: time.Second}
	b.failure(now)
	if _, ok := b.allow(now); ok {
		t.Fatal("open breaker admitted a claim")
	}

	// Cooldown over: exactly one probe admitted.
	now = now.Add(time.Second)
	if _, ok := b.allow(now); !ok {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.state != BreakerHalfOpen {
		t.Fatalf("state %v, want half-open", b.state)
	}
	b.granted()
	if _, ok := b.allow(now); ok {
		t.Fatal("second probe admitted while first in flight")
	}

	// Probe failure reopens immediately.
	b.failure(now)
	if b.state != BreakerOpen {
		t.Fatalf("state %v after probe failure, want open", b.state)
	}

	// Next probe succeeds and closes the circuit.
	now = now.Add(time.Second)
	if _, ok := b.allow(now); !ok {
		t.Fatal("second cooldown refused the probe")
	}
	b.granted()
	b.success()
	if b.state != BreakerClosed || b.fails != 0 {
		t.Fatalf("state %v fails %d after success, want closed/0", b.state, b.fails)
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	now := time.Unix(1000, 0)
	b := breaker{threshold: 3, cooldown: time.Second}
	b.failure(now)
	b.failure(now)
	b.success()
	b.failure(now)
	b.failure(now)
	if b.state != BreakerClosed {
		t.Fatalf("state %v: success did not reset the failure streak", b.state)
	}
}

func TestBreakerStateString(t *testing.T) {
	for s, want := range map[BreakerState]string{
		BreakerClosed: "closed", BreakerOpen: "open", BreakerHalfOpen: "half-open", BreakerState(9): "unknown",
	} {
		if got := s.String(); got != want {
			t.Errorf("state %d renders %q, want %q", s, got, want)
		}
	}
}

func TestTokenBucket(t *testing.T) {
	now := time.Unix(1000, 0)
	tb := tokenBucket{rate: 1, burst: 2}
	if !tb.allow(now) || !tb.allow(now) {
		t.Fatal("burst of 2 not admitted")
	}
	if tb.allow(now) {
		t.Fatal("third immediate submission admitted past burst")
	}
	if !tb.allow(now.Add(time.Second)) {
		t.Fatal("refilled token not admitted")
	}
	// Refill never exceeds burst.
	now = now.Add(time.Hour)
	tb.allow(now)
	tb.allow(now)
	if tb.allow(now) {
		t.Fatal("bucket refilled past burst")
	}
}

func TestTokenBucketUnlimited(t *testing.T) {
	tb := tokenBucket{rate: -1}
	for i := 0; i < 100; i++ {
		if !tb.allow(time.Unix(1000, 0)) {
			t.Fatal("disabled rate limit refused a submission")
		}
	}
}
