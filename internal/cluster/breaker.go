package cluster

import "time"

// The per-worker circuit breaker. A worker that keeps failing — leases
// expiring (crash, hang, heartbeat loss), corrupt or unverifiable
// commits, recovered panics — trips from CLOSED to OPEN and stops
// receiving work, so one sick node can't keep eating cells and burning
// their retry budgets while the rest of the fleet drains the queue.
// After a cooldown the breaker admits exactly one probe task
// (HALF-OPEN); a successful commit closes it, any failure reopens it.
//
// The state machine is driven entirely by the coordinator under its
// lock; the breaker itself is not safe for concurrent use.

// BreakerState is the circuit state of one worker.
type BreakerState uint8

// The breaker states, in the order they are exported as the
// lpd_cluster_breaker_state gauge value.
const (
	// BreakerClosed: healthy, claims admitted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: quarantined, claims rejected until the cooldown ends.
	BreakerOpen
	// BreakerHalfOpen: cooldown over, exactly one probe task admitted.
	BreakerHalfOpen
)

var breakerNames = [...]string{
	BreakerClosed:   "closed",
	BreakerOpen:     "open",
	BreakerHalfOpen: "half-open",
}

func (s BreakerState) String() string {
	if int(s) < len(breakerNames) {
		return breakerNames[s]
	}
	return "unknown"
}

// breaker is one worker's circuit.
type breaker struct {
	threshold int           // consecutive failures that trip CLOSED → OPEN
	cooldown  time.Duration // OPEN dwell before the HALF-OPEN probe

	state   BreakerState
	fails   int       // consecutive failures
	until   time.Time // OPEN: when the probe may be admitted
	probing bool      // HALF-OPEN: probe task in flight
}

// allow reports whether a claim may be admitted now, advancing
// OPEN → HALF-OPEN when the cooldown has passed. When rejected, the
// returned duration is the suggested retry delay.
func (b *breaker) allow(now time.Time) (time.Duration, bool) {
	switch b.state {
	case BreakerOpen:
		if now.Before(b.until) {
			return b.until.Sub(now), false
		}
		b.state = BreakerHalfOpen
		b.probing = false
		fallthrough
	case BreakerHalfOpen:
		if b.probing {
			return b.cooldown, false
		}
		return 0, true
	default:
		return 0, true
	}
}

// granted records that a task was handed out (marks the HALF-OPEN probe
// in flight).
func (b *breaker) granted() {
	if b.state == BreakerHalfOpen {
		b.probing = true
	}
}

// success records a clean commit: the circuit closes and the failure
// streak resets.
func (b *breaker) success() {
	b.state = BreakerClosed
	b.fails = 0
	b.probing = false
}

// failure records one failure attributable to the worker. A HALF-OPEN
// probe failure reopens immediately; a CLOSED streak of threshold
// failures trips the circuit.
func (b *breaker) failure(now time.Time) {
	b.fails++
	if b.state == BreakerHalfOpen || b.fails >= b.threshold {
		b.state = BreakerOpen
		b.until = now.Add(b.cooldown)
		b.probing = false
	}
}
