package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"loopapalooza/internal/bench"
	"loopapalooza/internal/core"
	"loopapalooza/internal/metrics"
	"loopapalooza/internal/wal"
)

// Coordinator defaults.
const (
	// DefaultLease is the claim lease duration.
	DefaultLease = 10 * time.Second
	// DefaultMaxAttempts is the per-cell retry budget (executions, not
	// retries: 3 = one run plus two retries).
	DefaultMaxAttempts = 3
	// DefaultRetryBackoff is the base of the exponential retry backoff.
	DefaultRetryBackoff = 100 * time.Millisecond
	// DefaultMaxBackoff caps the exponential backoff.
	DefaultMaxBackoff = 5 * time.Second
	// DefaultBatchSize bounds cells per task; it exceeds the fourteen
	// paper configurations so a full paper-grid row is one execution.
	DefaultBatchSize = 16
	// DefaultBreakerThreshold trips a worker's breaker after this many
	// consecutive failures.
	DefaultBreakerThreshold = 3
	// DefaultBreakerCooldown is the OPEN dwell before a probe.
	DefaultBreakerCooldown = 5 * time.Second
	// DefaultMaxQueuedJobs is the per-tenant admission-control cap on
	// non-terminal jobs.
	DefaultMaxQueuedJobs = 32
	// DefaultRatePerSec and DefaultRateBurst shape the per-tenant
	// token-bucket submission limit.
	DefaultRatePerSec = 10
	DefaultRateBurst  = 20
)

// CoordinatorOptions configures a Coordinator. Zero fields take the
// defaults above.
type CoordinatorOptions struct {
	// Lease is the claim lease duration; a task not heartbeaten within
	// it is reclaimed and its cells retried.
	Lease time.Duration
	// MaxAttempts is the per-cell retry budget.
	MaxAttempts int
	// RetryBackoff and MaxBackoff shape the exponential backoff (with
	// jitter) between attempts of one cell.
	RetryBackoff time.Duration
	MaxBackoff   time.Duration
	// BatchSize bounds cells per task.
	BatchSize int
	// BreakerThreshold and BreakerCooldown shape the per-worker circuit
	// breaker.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// MaxQueuedJobs is the per-tenant cap on non-terminal jobs.
	MaxQueuedJobs int
	// RatePerSec and RateBurst shape the per-tenant submission rate
	// limit (RatePerSec < 0 disables it).
	RatePerSec float64
	RateBurst  float64
	// Seed seeds the backoff jitter (0 = time-seeded). Fixed seeds make
	// retry schedules reproducible in tests and chaos runs.
	Seed int64
	// Now overrides the clock (tests).
	Now func() time.Time
	// DataDir, when set, makes the coordinator durable: state transitions
	// are journaled to a write-ahead log under it and OpenCoordinator
	// replays them on startup. NewCoordinator ignores it.
	DataDir string
	// CompactEvery is the journal-records-since-snapshot threshold that
	// triggers log compaction.
	CompactEvery int
}

func (o *CoordinatorOptions) withDefaults() {
	if o.Lease <= 0 {
		o.Lease = DefaultLease
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = DefaultMaxAttempts
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = DefaultRetryBackoff
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = DefaultMaxBackoff
	}
	if o.BatchSize <= 0 {
		o.BatchSize = DefaultBatchSize
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = DefaultBreakerThreshold
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = DefaultBreakerCooldown
	}
	if o.MaxQueuedJobs <= 0 {
		o.MaxQueuedJobs = DefaultMaxQueuedJobs
	}
	if o.RatePerSec == 0 {
		o.RatePerSec = DefaultRatePerSec
	}
	if o.RateBurst <= 0 {
		o.RateBurst = DefaultRateBurst
	}
	if o.Seed == 0 {
		o.Seed = time.Now().UnixNano()
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.CompactEvery <= 0 {
		o.CompactEvery = DefaultCompactEvery
	}
}

// cellRec is the coordinator's record of one cell.
type cellRec struct {
	job       *job
	bench     string
	cfg       core.Config
	state     CellState
	attempts  int // executions started (lease grants)
	notBefore time.Time
	owner     string // worker holding the lease (CellLeased)

	// Terminal fields.
	outcome core.Outcome
	errMsg  string
	report  *core.Report
	commits int // accepted commits; the no-double-commit invariant is commits <= 1
}

// job is one submitted sweep.
type job struct {
	id             string
	tenant         string
	includeReports bool
	created        time.Time
	cells          []*cellRec
	remaining      int           // non-terminal cells
	started        bool          // any cell ever leased
	done           chan struct{} // closed when remaining hits 0
}

// task is one live lease.
type task struct {
	id       string
	worker   string
	tenant   string
	bench    string
	cells    []*cellRec
	deadline time.Time
}

// tenantState is one tenant's queue, admission state, and rate limit.
type tenantState struct {
	queue      []*cellRec // CellQueued cells, FIFO (retries append)
	activeJobs int
	bucket     tokenBucket
}

// workerState is the coordinator's view of one worker.
type workerState struct {
	id       string
	br       breaker
	lastSeen time.Time
	inflight int // live tasks
}

// Stats is a snapshot of coordinator traffic and state.
type Stats struct {
	// QueueDepth counts queued cells across all tenants.
	QueueDepth int
	// Leased counts cells under a live lease.
	Leased int
	// ActiveJobs and DoneJobs count non-terminal and terminal jobs.
	ActiveJobs, DoneJobs int
	// Workers counts registered workers; OpenBreakers those currently
	// quarantined.
	Workers, OpenBreakers int
	// LeaseExpiries counts reclaimed leases.
	LeaseExpiries uint64
	// Retries counts cell attempts requeued with backoff.
	Retries uint64
	// ParkedCells counts cells terminally failed.
	ParkedCells uint64
	// CommittedCells counts cells committed with a verified report.
	CommittedCells uint64
	// StaleCommits counts whole-task commits rejected because the lease
	// was gone — the double-commit defense firing.
	StaleCommits uint64
	// DoubleCommitRejected counts per-cell commits rejected because the
	// cell was already terminal (must stay 0; StaleCommits is the outer
	// guard).
	DoubleCommitRejected uint64
	// CorruptCommits counts committed reports that failed verification.
	CorruptCommits uint64
	// RefundedCells counts canceled/released attempts requeued without
	// charging the retry budget.
	RefundedCells uint64
	// RejectedJobs counts submissions refused by admission control or
	// rate limiting.
	RejectedJobs uint64
	// WALErrors counts journal appends, syncs, or compactions that
	// failed (the coordinator keeps serving; durability degrades).
	WALErrors uint64
}

// coordMetrics are the push-updated cluster series (see RegisterMetrics).
type coordMetrics struct {
	breakerState *metrics.Gauge
	committed    *metrics.Counter // by outcome
	parked       *metrics.Counter // by outcome
}

// Coordinator owns the job store, the per-tenant queues, the leases, and
// the per-worker breakers. All methods are safe for concurrent use.
type Coordinator struct {
	opts CoordinatorOptions

	mu          sync.Mutex
	rng         *rand.Rand
	jobs        map[string]*job
	jobSeq      int
	tenants     map[string]*tenantState
	tenantOrder []string
	rrIdx       int
	tasks       map[string]*task
	taskSeq     int
	workers     map[string]*workerState
	draining    bool
	stats       Stats
	m           *coordMetrics

	// Durability (nil/false without a DataDir; see journal.go).
	wal          *wal.Log
	replaying    bool
	walDirty     bool
	recSinceSnap int

	janitorStop chan struct{}
	janitorDone chan struct{}
}

// NewCoordinator returns a running in-memory coordinator; call Close to
// stop its lease janitor. For a durable coordinator use OpenCoordinator.
func NewCoordinator(opts CoordinatorOptions) *Coordinator {
	opts.withDefaults()
	c := newCoordinator(opts)
	go c.janitor()
	return c
}

func newCoordinator(opts CoordinatorOptions) *Coordinator {
	return &Coordinator{
		opts:        opts,
		rng:         rand.New(rand.NewSource(opts.Seed)),
		jobs:        map[string]*job{},
		tenants:     map[string]*tenantState{},
		tasks:       map[string]*task{},
		workers:     map[string]*workerState{},
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
}

// janitor reclaims expired leases even when no worker is calling in (the
// hung-fleet case).
func (c *Coordinator) janitor() {
	defer close(c.janitorDone)
	interval := c.opts.Lease / 4
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.janitorStop:
			return
		case <-t.C:
			c.mu.Lock()
			c.reclaimExpiredLocked(c.opts.Now())
			c.flushBestEffortLocked()
			c.mu.Unlock()
		}
	}
}

// Close stops the janitor and cleanly closes the journal (a final sync,
// so the next OpenCoordinator recovers everything). Jobs and queues
// stay readable.
func (c *Coordinator) Close() {
	c.mu.Lock()
	select {
	case <-c.janitorStop:
	default:
		close(c.janitorStop)
	}
	c.mu.Unlock()
	<-c.janitorDone
	c.mu.Lock()
	if c.wal != nil {
		c.wal.Close()
	}
	c.mu.Unlock()
}

// Drain refuses new submissions and claims; in-flight tasks may still
// heartbeat, commit, and release.
func (c *Coordinator) Drain() {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
}

// RegisterMetrics exports the cluster series on reg. Gauges sample the
// coordinator at scrape time; the breaker gauge and per-outcome counters
// are pushed on transitions.
func (c *Coordinator) RegisterMetrics(reg *metrics.Registry) {
	reg.NewGaugeFunc("lpd_cluster_queue_depth",
		"Sweep cells queued across all tenants.",
		func() float64 { return float64(c.Stats().QueueDepth) })
	reg.NewGaugeFunc("lpd_cluster_leased_cells",
		"Sweep cells under a live lease.",
		func() float64 { return float64(c.Stats().Leased) })
	reg.NewGaugeFunc("lpd_cluster_jobs_active",
		"Jobs not yet terminal.",
		func() float64 { return float64(c.Stats().ActiveJobs) })
	reg.NewCounterFunc("lpd_cluster_jobs_done_total",
		"Jobs that reached a terminal state.",
		func() float64 { return float64(c.Stats().DoneJobs) })
	reg.NewGaugeFunc("lpd_cluster_workers",
		"Workers ever registered with the coordinator.",
		func() float64 { return float64(c.Stats().Workers) })
	reg.NewCounterFunc("lpd_cluster_lease_expiries_total",
		"Leases reclaimed after missing their deadline.",
		func() float64 { return float64(c.Stats().LeaseExpiries) })
	reg.NewCounterFunc("lpd_cluster_retries_total",
		"Cell attempts requeued with backoff.",
		func() float64 { return float64(c.Stats().Retries) })
	reg.NewCounterFunc("lpd_cluster_stale_commits_total",
		"Task commits rejected because the lease was already reclaimed.",
		func() float64 { return float64(c.Stats().StaleCommits) })
	reg.NewCounterFunc("lpd_cluster_corrupt_commits_total",
		"Committed reports that failed invariant verification.",
		func() float64 { return float64(c.Stats().CorruptCommits) })
	reg.NewCounterFunc("lpd_cluster_refunded_cells_total",
		"Canceled or released attempts requeued without charge.",
		func() float64 { return float64(c.Stats().RefundedCells) })
	reg.NewCounterFunc("lpd_cluster_rejected_jobs_total",
		"Submissions refused by admission control or rate limiting.",
		func() float64 { return float64(c.Stats().RejectedJobs) })
	c.mu.Lock()
	durable := c.wal != nil
	c.mu.Unlock()
	if durable {
		reg.NewCounterFunc("lpd_wal_records_total",
			"Journal records appended.",
			func() float64 { return float64(c.WALStats().Appended) })
		reg.NewCounterFunc("lpd_wal_syncs_total",
			"Explicit journal fsync points.",
			func() float64 { return float64(c.WALStats().Syncs) })
		reg.NewCounterFunc("lpd_wal_bytes_written_total",
			"Framed journal bytes written.",
			func() float64 { return float64(c.WALStats().BytesWritten) })
		reg.NewCounterFunc("lpd_wal_compactions_total",
			"Snapshot + log compaction cycles.",
			func() float64 { return float64(c.WALStats().Compactions) })
		reg.NewCounterFunc("lpd_wal_replayed_records_total",
			"Journal records replayed at startup recovery.",
			func() float64 { return float64(c.WALStats().RecoveredRecords) })
		reg.NewCounterFunc("lpd_wal_torn_bytes_total",
			"Torn journal tail bytes truncated at recovery.",
			func() float64 { return float64(c.WALStats().TornBytes) })
		reg.NewGaugeFunc("lpd_wal_size_bytes",
			"Current journal file size.",
			func() float64 { return float64(c.WALStats().SizeBytes) })
		reg.NewCounterFunc("lpd_wal_errors_total",
			"Failed journal appends, syncs, or compactions.",
			func() float64 { return float64(c.Stats().WALErrors) })
	}
	m := &coordMetrics{
		breakerState: reg.NewGauge("lpd_cluster_breaker_state",
			"Per-worker breaker state (0 closed, 1 open, 2 half-open).", "worker"),
		committed: reg.NewCounter("lpd_cluster_committed_cells_total",
			"Cells committed, by outcome.", "outcome"),
		parked: reg.NewCounter("lpd_cluster_parked_cells_total",
			"Cells terminally failed, by outcome.", "outcome"),
	}
	c.mu.Lock()
	c.m = m
	c.mu.Unlock()
}

// Stats snapshots the coordinator.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	for _, ts := range c.tenants {
		st.QueueDepth += len(ts.queue)
		st.ActiveJobs += ts.activeJobs
	}
	for _, t := range c.tasks {
		st.Leased += len(t.cells)
	}
	st.Workers = len(c.workers)
	for _, ws := range c.workers {
		if ws.br.state == BreakerOpen {
			st.OpenBreakers++
		}
	}
	return st
}

// WorkerInfo is one worker's coordinator-side state.
type WorkerInfo struct {
	ID       string       `json:"id"`
	Breaker  BreakerState `json:"-"`
	State    string       `json:"breaker"`
	Failures int          `json:"failures"`
	Inflight int          `json:"inflight"`
}

// Workers lists registered workers, sorted by id.
func (c *Coordinator) Workers() []WorkerInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WorkerInfo, 0, len(c.workers))
	for _, ws := range c.workers {
		out = append(out, WorkerInfo{
			ID: ws.id, Breaker: ws.br.state, State: ws.br.state.String(),
			Failures: ws.br.fails, Inflight: ws.inflight,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Submit enqueues one job of benches × cfgs cells for tenant, applying
// admission control and the tenant rate limit. It returns the job id.
func (c *Coordinator) Submit(tenant string, benches []*bench.Benchmark, cfgs []core.Config, includeReports bool) (string, error) {
	if tenant == "" {
		tenant = "default"
	}
	if len(benches) == 0 || len(cfgs) == 0 {
		return "", fmt.Errorf("cluster: empty job (%d benchmarks × %d configs)", len(benches), len(cfgs))
	}
	now := c.opts.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		return "", ErrDraining
	}
	ts := c.tenantLocked(tenant)
	if ts.activeJobs >= c.opts.MaxQueuedJobs {
		c.stats.RejectedJobs++
		return "", fmt.Errorf("%w: %d active jobs (cap %d)", ErrQueueFull, ts.activeJobs, c.opts.MaxQueuedJobs)
	}
	if !ts.bucket.allow(now) {
		c.stats.RejectedJobs++
		return "", ErrRateLimited
	}
	c.jobSeq++
	j := &job{
		id:             fmt.Sprintf("job-%06d", c.jobSeq),
		tenant:         tenant,
		includeReports: includeReports,
		created:        now,
		remaining:      len(benches) * len(cfgs),
		done:           make(chan struct{}),
	}
	// Journal-first: the admission is durable before any state mutates,
	// so an acked job id survives a crash and a refused one leaves no
	// trace to replay.
	if c.wal != nil {
		names := make([]string, len(benches))
		for i, b := range benches {
			names[i] = b.Name
		}
		c.journalLocked(walRec{K: "admit", Job: j.id, Tenant: tenant,
			Include: includeReports, Created: now.UnixNano(),
			Benches: names, Cfgs: cfgs})
		if err := c.flushLocked(); err != nil {
			c.jobSeq--
			return "", fmt.Errorf("cluster: journaling admission: %w", err)
		}
	}
	for _, b := range benches {
		for _, cfg := range cfgs {
			rec := &cellRec{job: j, bench: b.Name, cfg: cfg, state: CellQueued}
			j.cells = append(j.cells, rec)
			ts.queue = append(ts.queue, rec)
		}
	}
	c.jobs[j.id] = j
	ts.activeJobs++
	return j.id, nil
}

func (c *Coordinator) tenantLocked(name string) *tenantState {
	ts := c.tenants[name]
	if ts == nil {
		ts = &tenantState{bucket: tokenBucket{rate: c.opts.RatePerSec, burst: c.opts.RateBurst}}
		c.tenants[name] = ts
		c.tenantOrder = append(c.tenantOrder, name)
	}
	return ts
}

func (c *Coordinator) workerLocked(id string) *workerState {
	ws := c.workers[id]
	if ws == nil {
		ws = &workerState{id: id, br: breaker{
			threshold: c.opts.BreakerThreshold,
			cooldown:  c.opts.BreakerCooldown,
		}}
		c.workers[id] = ws
		c.publishBreakerLocked(ws)
	}
	return ws
}

func (c *Coordinator) publishBreakerLocked(ws *workerState) {
	if c.m != nil {
		c.m.breakerState.Set(float64(ws.br.state), ws.id)
	}
}

// Claim implements Coordination.
func (c *Coordinator) Claim(_ context.Context, req ClaimRequest) (*Task, error) {
	if req.Worker == "" {
		return nil, fmt.Errorf("cluster: claim without worker id")
	}
	now := c.opts.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reclaimExpiredLocked(now)
	if c.draining {
		return nil, ErrDraining
	}
	ws := c.workerLocked(req.Worker)
	ws.lastSeen = now
	if wait, ok := ws.br.allow(now); !ok {
		c.publishBreakerLocked(ws)
		return nil, &BreakerOpenError{RetryAfter: wait}
	}
	c.publishBreakerLocked(ws) // OPEN may have advanced to HALF-OPEN

	for i := range c.tenantOrder {
		name := c.tenantOrder[(c.rrIdx+i)%len(c.tenantOrder)]
		ts := c.tenants[name]
		cells := c.takeBatchLocked(ts, now)
		if len(cells) == 0 {
			continue
		}
		c.rrIdx = (c.rrIdx + i + 1) % len(c.tenantOrder)
		c.taskSeq++
		t := &task{
			id:       fmt.Sprintf("task-%08d", c.taskSeq),
			worker:   ws.id,
			tenant:   name,
			bench:    cells[0].bench,
			cells:    cells,
			deadline: now.Add(c.opts.Lease),
		}
		c.tasks[t.id] = t
		ws.inflight++
		ws.br.granted()
		wire := &Task{
			ID: t.id, Job: cells[0].job.id, Bench: t.bench,
			LeaseMs: c.opts.Lease.Milliseconds(),
		}
		leased := make([]core.Config, 0, len(cells))
		for _, rec := range cells {
			rec.state = CellLeased
			rec.owner = ws.id
			rec.attempts++
			rec.job.started = true
			wire.Cells = append(wire.Cells, TaskCell{Config: rec.cfg, Attempt: rec.attempts})
			leased = append(leased, rec.cfg)
		}
		c.journalLocked(walRec{K: "lease", Task: t.id, Worker: ws.id,
			Job: cells[0].job.id, Tenant: name, Bench: t.bench, Cfgs: leased})
		if err := c.flushLocked(); err != nil {
			// The grant is not durable: refuse it. The leased cells are
			// reclaimed when the never-delivered lease expires.
			return nil, fmt.Errorf("cluster: journaling lease: %w", err)
		}
		return wire, nil
	}
	c.flushBestEffortLocked() // reclaim records from the top of the call
	return nil, ErrNoWork
}

// takeBatchLocked pops the next batch: the first eligible cell of the
// tenant queue plus every other eligible cell of the same job and
// benchmark, up to BatchSize. Cells of one benchmark batch together so
// the worker shares a single execution across their configurations.
func (c *Coordinator) takeBatchLocked(ts *tenantState, now time.Time) []*cellRec {
	var head *cellRec
	for _, rec := range ts.queue {
		if rec.state == CellQueued && !now.Before(rec.notBefore) {
			head = rec
			break
		}
	}
	if head == nil {
		return nil
	}
	var batch []*cellRec
	kept := ts.queue[:0]
	for _, rec := range ts.queue {
		if len(batch) < c.opts.BatchSize &&
			rec.state == CellQueued && !now.Before(rec.notBefore) &&
			rec.job == head.job && rec.bench == head.bench {
			batch = append(batch, rec)
			continue
		}
		kept = append(kept, rec)
	}
	// Zero the freed tail so dropped cells don't leak through the
	// backing array.
	for i := len(kept); i < len(ts.queue); i++ {
		ts.queue[i] = nil
	}
	ts.queue = kept
	return batch
}

// Heartbeat implements Coordination.
func (c *Coordinator) Heartbeat(_ context.Context, req HeartbeatRequest) error {
	now := c.opts.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reclaimExpiredLocked(now)
	c.flushBestEffortLocked()
	t := c.tasks[req.Task]
	if t == nil || t.worker != req.Worker {
		return ErrLeaseExpired
	}
	t.deadline = now.Add(c.opts.Lease)
	if ws := c.workers[req.Worker]; ws != nil {
		ws.lastSeen = now
	}
	return nil
}

// Commit implements Coordination. A commit for a reclaimed lease is
// rejected wholesale: its cells were already requeued, so accepting any
// of it could commit a cell twice.
func (c *Coordinator) Commit(_ context.Context, req CommitRequest) error {
	now := c.opts.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reclaimExpiredLocked(now)
	t := c.tasks[req.Task]
	if t == nil || t.worker != req.Worker {
		c.stats.StaleCommits++
		return ErrLeaseExpired
	}
	c.finishTaskLocked(t)

	byCfg := make(map[string]*CellResult, len(req.Results))
	for i := range req.Results {
		byCfg[req.Results[i].Config.String()] = &req.Results[i]
	}
	ws := c.workerLocked(t.worker)
	workerFailed := false
	for _, rec := range t.cells {
		res := byCfg[rec.cfg.String()]
		switch {
		case res == nil:
			// The worker dropped the cell: charge the attempt and retry.
			workerFailed = true
			c.retryLocked(rec, core.OutcomeError, "cluster: worker returned no result for cell", now)
		case res.Outcome == core.OutcomeOK:
			if err := c.verifyResult(t, rec, res); err != nil {
				workerFailed = true
				c.stats.CorruptCommits++
				c.retryLocked(rec, core.OutcomeError, err.Error(), now)
				continue
			}
			c.commitCellLocked(rec, res.Report)
		case res.Outcome == core.OutcomeCanceled:
			// Not the cell's fault (worker drain, sweep cancel): requeue
			// without charging the retry budget.
			c.refundLocked(rec, now)
		case res.Outcome == core.OutcomePanic:
			workerFailed = true
			c.retryLocked(rec, res.Outcome, res.Error, now)
		case res.Outcome == core.OutcomeTimeout:
			// Possibly a slow node rather than a long program: retryable.
			c.retryLocked(rec, res.Outcome, res.Error, now)
		default:
			// Deterministic failures (step/mem budget, guest fault,
			// compile error) park immediately: a retry would fail the
			// same way and burn fleet time.
			c.parkLocked(rec, res.Outcome, res.Error)
		}
	}
	if workerFailed {
		ws.br.failure(now)
	} else {
		ws.br.success()
	}
	c.publishBreakerLocked(ws)
	// The commit is acked only once durable: a crash after a returned nil
	// replays every committed report; a crash before loses the unsynced
	// records and the cells simply re-execute (deterministic cells make
	// the recomputed reports bit-identical).
	if err := c.flushLocked(); err != nil {
		return fmt.Errorf("cluster: journaling commit: %w", err)
	}
	return nil
}

// verifyResult is the commit integrity gate: the report must exist,
// belong to this cell, and satisfy the engine invariants.
func (c *Coordinator) verifyResult(t *task, rec *cellRec, res *CellResult) error {
	r := res.Report
	if r == nil {
		return fmt.Errorf("cluster: ok result without report for %s under %s", rec.bench, rec.cfg)
	}
	if r.Benchmark != rec.bench || r.Config != rec.cfg {
		return fmt.Errorf("cluster: report identity mismatch: got (%s, %s), want (%s, %s)",
			r.Benchmark, r.Config, rec.bench, rec.cfg)
	}
	if err := core.VerifyReport(r); err != nil {
		return fmt.Errorf("cluster: corrupt report for %s under %s: %v", rec.bench, rec.cfg, err)
	}
	return nil
}

// Release implements Coordination.
func (c *Coordinator) Release(_ context.Context, req ReleaseRequest) error {
	now := c.opts.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.tasks[req.Task]
	if t == nil || t.worker != req.Worker {
		return ErrLeaseExpired
	}
	c.finishTaskLocked(t)
	for _, rec := range t.cells {
		c.refundLocked(rec, now)
	}
	if err := c.flushLocked(); err != nil {
		return fmt.Errorf("cluster: journaling release: %w", err)
	}
	return nil
}

// finishTaskLocked removes a live task from the lease table.
func (c *Coordinator) finishTaskLocked(t *task) {
	delete(c.tasks, t.id)
	if ws := c.workers[t.worker]; ws != nil && ws.inflight > 0 {
		ws.inflight--
	}
	c.journalLocked(walRec{K: "taskdone", Task: t.id})
}

// reclaimExpiredLocked requeues the cells of every expired lease and
// charges the owning worker's breaker (crash, hang, or heartbeat loss
// all land here).
func (c *Coordinator) reclaimExpiredLocked(now time.Time) {
	for _, t := range c.tasks {
		if now.Before(t.deadline) {
			continue
		}
		c.finishTaskLocked(t)
		c.stats.LeaseExpiries++
		for _, rec := range t.cells {
			c.retryLocked(rec, core.OutcomeTimeout,
				fmt.Sprintf("cluster: lease %s on worker %s expired", t.id, t.worker), now)
		}
		if ws := c.workers[t.worker]; ws != nil {
			ws.br.failure(now)
			c.publishBreakerLocked(ws)
		}
	}
}

// retryLocked requeues one failed attempt with exponential backoff and
// jitter, or parks the cell when its retry budget is exhausted.
func (c *Coordinator) retryLocked(rec *cellRec, outcome core.Outcome, msg string, now time.Time) {
	if rec.attempts >= c.opts.MaxAttempts {
		c.parkLocked(rec, outcome,
			fmt.Sprintf("%s (retry budget exhausted after %d attempts)", msg, rec.attempts))
		return
	}
	c.stats.Retries++
	rec.state = CellQueued
	rec.owner = ""
	rec.notBefore = now.Add(c.backoffLocked(rec.attempts))
	c.tenantLocked(rec.job.tenant).queue = append(c.tenantLocked(rec.job.tenant).queue, rec)
	c.journalCellLocked("retry", rec, outcome, msg, nil, rec.notBefore)
}

// refundLocked requeues a canceled or released attempt without charging
// the retry budget.
func (c *Coordinator) refundLocked(rec *cellRec, now time.Time) {
	c.stats.RefundedCells++
	if rec.attempts > 0 {
		rec.attempts--
	}
	rec.state = CellQueued
	rec.owner = ""
	rec.notBefore = now
	c.tenantLocked(rec.job.tenant).queue = append(c.tenantLocked(rec.job.tenant).queue, rec)
	c.journalCellLocked("refund", rec, core.OutcomeCanceled, "", nil, time.Time{})
}

// backoffLocked computes the delay before attempt n+1: exponential in the
// attempts already burned, capped, with half jitter.
func (c *Coordinator) backoffLocked(attempts int) time.Duration {
	d := c.opts.RetryBackoff << (attempts - 1)
	if d > c.opts.MaxBackoff || d <= 0 {
		d = c.opts.MaxBackoff
	}
	half := d / 2
	return half + time.Duration(c.rng.Int63n(int64(half)+1))
}

// commitCellLocked records one verified report. The commits counter is
// the no-double-commit invariant: it can never pass 1 because a cell is
// only ever leased by one live task and stale tasks are rejected
// wholesale.
func (c *Coordinator) commitCellLocked(rec *cellRec, r *core.Report) {
	if rec.commits > 0 || rec.state == CellDone || rec.state == CellParked {
		// During journal replay a re-presented commit is idempotent, not
		// an invariant breach — the live guard below stays strict.
		if !c.replaying {
			c.stats.DoubleCommitRejected++
		}
		return
	}
	rec.commits++
	rec.state = CellDone
	rec.owner = ""
	rec.outcome = core.OutcomeOK
	rec.report = r
	rec.errMsg = ""
	c.stats.CommittedCells++
	if c.m != nil {
		c.m.committed.Inc(core.OutcomeOK.String())
	}
	c.journalCellLocked("commit", rec, core.OutcomeOK, "", r, time.Time{})
	c.cellTerminalLocked(rec)
}

// parkLocked records one terminal failure.
func (c *Coordinator) parkLocked(rec *cellRec, outcome core.Outcome, msg string) {
	if rec.state == CellDone || rec.state == CellParked {
		if !c.replaying {
			c.stats.DoubleCommitRejected++
		}
		return
	}
	rec.state = CellParked
	rec.owner = ""
	rec.outcome = outcome
	rec.errMsg = msg
	c.stats.ParkedCells++
	if c.m != nil {
		c.m.parked.Inc(outcome.String())
	}
	c.journalCellLocked("park", rec, outcome, msg, nil, time.Time{})
	c.cellTerminalLocked(rec)
}

// cellTerminalLocked advances the owning job's completion state.
func (c *Coordinator) cellTerminalLocked(rec *cellRec) {
	j := rec.job
	j.remaining--
	if j.remaining == 0 {
		close(j.done)
		c.stats.DoneJobs++
		if ts := c.tenants[j.tenant]; ts != nil && ts.activeJobs > 0 {
			ts.activeJobs--
		}
	}
}

// Status reports one job.
func (c *Coordinator) Status(id string) (*JobStatus, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j := c.jobs[id]
	if j == nil {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	st := &JobStatus{
		ID: j.id, Tenant: j.tenant,
		Total:  len(j.cells),
		Counts: map[core.Outcome]int{},
	}
	for _, rec := range j.cells {
		cs := CellStatus{
			Bench: rec.bench, Config: rec.cfg, State: rec.state,
			Outcome: rec.outcome, Attempts: rec.attempts, Error: rec.errMsg,
		}
		switch {
		case rec.state == CellDone || rec.state == CellParked:
			st.Done++
			st.Counts[rec.outcome]++
		case rec.state == CellQueued && rec.attempts > 0,
			rec.state == CellLeased && rec.attempts > 1:
			// A burned attempt on a non-terminal cell: the retry machinery
			// is working on it, as opposed to a parked cell it gave up on.
			st.Retrying++
		}
		if rec.report != nil {
			cs.Speedup = rec.report.Speedup()
			cs.Coverage = rec.report.Coverage()
			if j.includeReports {
				cs.Report = rec.report
			}
		}
		if rec.state == CellParked {
			st.Parked = append(st.Parked, cs)
		}
		st.Cells = append(st.Cells, cs)
	}
	switch {
	case j.remaining == 0:
		st.State = JobDone
	case j.started:
		st.State = JobRunning
	default:
		st.State = JobQueued
	}
	st.Summary = summarize(st)
	return st, nil
}

// summarize renders the job's aggregate line in the sweep style, e.g.
// "796/798 cells ok (2 timeout)" plus the in-flight tail while running.
func summarize(st *JobStatus) string {
	var parts []string
	for o := core.OutcomeStepLimit; o <= core.OutcomeError; o++ {
		if n := st.Counts[o]; n > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", n, o))
		}
	}
	s := fmt.Sprintf("%d/%d cells ok", st.Counts[core.OutcomeOK], st.Total)
	if len(parts) > 0 {
		s += " (" + strings.Join(parts, ", ") + ")"
	}
	if pending := st.Total - st.Done; pending > 0 {
		s += fmt.Sprintf("; %d in flight or queued", pending)
		if st.Retrying > 0 {
			s += fmt.Sprintf(" (%d retrying)", st.Retrying)
		}
	}
	return s
}

// Report returns the committed report of one cell (nil when the cell is
// not done). It is the differential-oracle hook of the chaos suite.
func (c *Coordinator) Report(jobID, benchName string, cfg core.Config) *core.Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	j := c.jobs[jobID]
	if j == nil {
		return nil
	}
	for _, rec := range j.cells {
		if rec.bench == benchName && rec.cfg == cfg {
			return rec.report
		}
	}
	return nil
}

// Wait blocks until the job is terminal or ctx is done.
func (c *Coordinator) Wait(ctx context.Context, id string) error {
	c.mu.Lock()
	j := c.jobs[id]
	c.mu.Unlock()
	if j == nil {
		return fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// CheckInvariants verifies the coordinator's structural invariants:
// every cell committed at most once, terminal bookkeeping consistent,
// and no cell lost (every cell is queued, leased by a live task, or
// terminal). The chaos suite calls it after every run.
func (c *Coordinator) CheckInvariants() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	leased := map[*cellRec]bool{}
	for _, t := range c.tasks {
		for _, rec := range t.cells {
			leased[rec] = true
		}
	}
	queued := map[*cellRec]bool{}
	for name, ts := range c.tenants {
		for _, rec := range ts.queue {
			if rec == nil {
				return fmt.Errorf("cluster invariant: nil cell in tenant %s queue", name)
			}
			if queued[rec] {
				return fmt.Errorf("cluster invariant: cell %s/%s queued twice", rec.bench, rec.cfg)
			}
			queued[rec] = true
		}
	}
	if c.stats.DoubleCommitRejected != 0 {
		return fmt.Errorf("cluster invariant: %d double commits reached a terminal cell", c.stats.DoubleCommitRejected)
	}
	for id, j := range c.jobs {
		remaining := 0
		for _, rec := range j.cells {
			if rec.commits > 1 {
				return fmt.Errorf("cluster invariant: cell %s/%s committed %d times", rec.bench, rec.cfg, rec.commits)
			}
			switch rec.state {
			case CellDone:
				if rec.commits != 1 || rec.report == nil {
					return fmt.Errorf("cluster invariant: done cell %s/%s has commits=%d report=%v",
						rec.bench, rec.cfg, rec.commits, rec.report != nil)
				}
			case CellParked:
				if rec.outcome == core.OutcomeOK {
					return fmt.Errorf("cluster invariant: parked cell %s/%s with ok outcome", rec.bench, rec.cfg)
				}
			case CellQueued:
				if !queued[rec] {
					return fmt.Errorf("cluster invariant: queued cell %s/%s missing from its tenant queue", rec.bench, rec.cfg)
				}
				remaining++
			case CellLeased:
				if !leased[rec] {
					return fmt.Errorf("cluster invariant: leased cell %s/%s has no live task (lost)", rec.bench, rec.cfg)
				}
				remaining++
			default:
				return fmt.Errorf("cluster invariant: cell %s/%s in unknown state %q", rec.bench, rec.cfg, rec.state)
			}
		}
		if remaining != j.remaining {
			return fmt.Errorf("cluster invariant: job %s remaining=%d but %d non-terminal cells", id, j.remaining, remaining)
		}
	}
	return nil
}
