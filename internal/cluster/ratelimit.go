package cluster

import "time"

// tokenBucket is the per-tenant job-submission rate limit: rate tokens
// per second up to burst, one token per submission. It is driven under
// the coordinator's lock and refills lazily from the injected clock, so
// tests with a fake clock are deterministic.
type tokenBucket struct {
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
}

// allow takes one token if available.
func (tb *tokenBucket) allow(now time.Time) bool {
	if tb.rate <= 0 { // unlimited
		return true
	}
	if tb.last.IsZero() {
		tb.tokens = tb.burst
	} else if dt := now.Sub(tb.last).Seconds(); dt > 0 {
		tb.tokens += dt * tb.rate
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
	}
	tb.last = now
	if tb.tokens >= 1 {
		tb.tokens--
		return true
	}
	return false
}
