package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"loopapalooza/internal/bench"
	"loopapalooza/internal/core"
)

func newTestServer(t *testing.T, opts CoordinatorOptions) (*Coordinator, *Client) {
	t.Helper()
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	c := NewCoordinator(opts)
	t.Cleanup(c.Close)
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	return c, NewClient(srv.URL, srv.Client())
}

func TestTransportRoundTrip(t *testing.T) {
	c, client := newTestServer(t, CoordinatorOptions{})
	b, cfgs := testBench(t)
	ctx := context.Background()
	id, _ := c.Submit("", []*bench.Benchmark{b}, cfgs, false)

	// Empty-queue claim maps 204 → ErrNoWork once the job is taken.
	task, err := client.Claim(ctx, ClaimRequest{Worker: "remote"})
	if err != nil {
		t.Fatalf("claim over HTTP: %v", err)
	}
	if task.Bench != b.Name || len(task.Cells) != 2 || task.Lease() <= 0 {
		t.Fatalf("wire task %+v", task)
	}
	if _, err := client.Claim(ctx, ClaimRequest{Worker: "remote"}); !errors.Is(err, ErrNoWork) {
		t.Fatalf("second claim: %v, want ErrNoWork", err)
	}

	if err := client.Heartbeat(ctx, HeartbeatRequest{Worker: "remote", Task: task.ID}); err != nil {
		t.Fatalf("heartbeat over HTTP: %v", err)
	}
	if err := client.Commit(ctx, CommitRequest{Worker: "remote", Task: task.ID, Results: okResults(t, task)}); err != nil {
		t.Fatalf("commit over HTTP: %v", err)
	}
	st, _ := c.Status(id)
	if st.State != JobDone || st.Counts[core.OutcomeOK] != 2 {
		t.Fatalf("after remote commit: %s %v", st.State, st.Counts)
	}
	// Reports survive the JSON hop bit-identically (the oracle relies
	// on this).
	local, err := bench.NewHarness().Report(b, cfgs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := core.CompareReports(local, c.Report(id, b.Name, cfgs[0])); err != nil {
		t.Fatalf("remote-committed report differs from local run: %v", err)
	}
}

func TestTransportTypedErrors(t *testing.T) {
	c, client := newTestServer(t, CoordinatorOptions{BreakerThreshold: 1, BreakerCooldown: time.Minute, Lease: 50 * time.Millisecond, RetryBackoff: time.Millisecond, MaxBackoff: time.Millisecond})
	b, cfgs := testBench(t)
	ctx := context.Background()
	c.Submit("", []*bench.Benchmark{b}, cfgs[:1], false)

	// Expire a lease to trip the threshold-1 breaker, then check the
	// 503 breaker-open mapping carries Retry-After.
	task, err := client.Claim(ctx, ClaimRequest{Worker: "flaky"})
	if err != nil {
		t.Fatalf("claim: %v", err)
	}
	time.Sleep(80 * time.Millisecond) // lease expires; janitor reclaims

	_, err = client.Claim(ctx, ClaimRequest{Worker: "flaky"})
	var boe *BreakerOpenError
	if !errors.As(err, &boe) || !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("claim with open breaker: %v, want BreakerOpenError", err)
	}
	if boe.RetryAfter <= 0 {
		t.Fatalf("Retry-After %v, want > 0", boe.RetryAfter)
	}

	// Stale commit maps 410 → ErrLeaseExpired.
	err = client.Commit(ctx, CommitRequest{Worker: "flaky", Task: task.ID, Results: okResults(t, task)})
	if !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("stale remote commit: %v, want ErrLeaseExpired", err)
	}
	// Heartbeat for the dead lease too.
	if err := client.Heartbeat(ctx, HeartbeatRequest{Worker: "flaky", Task: task.ID}); !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("stale heartbeat: %v, want ErrLeaseExpired", err)
	}

	// Draining maps 503 code "draining" → ErrDraining.
	c.Drain()
	if _, err := client.Claim(ctx, ClaimRequest{Worker: "fresh"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("claim while draining: %v, want ErrDraining", err)
	}
}

func TestTransportBadRequest(t *testing.T) {
	c := NewCoordinator(CoordinatorOptions{Seed: 1})
	defer c.Close()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/cluster/claim", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed claim body: status %d, want 400", resp.StatusCode)
	}
	// Claim without a worker id is a 500-class coordinator error.
	resp, err = http.Post(srv.URL+"/v1/cluster/claim", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("claim without worker: status %d, want 500", resp.StatusCode)
	}
}

func TestRemoteWorkerFleet(t *testing.T) {
	c, client := newTestServer(t, CoordinatorOptions{Lease: 5 * time.Second})
	b := bench.BySuite(bench.SuiteEEMBC)[0]
	id, _ := c.Submit("", []*bench.Benchmark{b}, core.PaperConfigs(), false)

	stop := startFleet(t, client, 2, nil)
	defer stop()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := c.Wait(ctx, id); err != nil {
		t.Fatalf("remote fleet: %v", err)
	}
	st, _ := c.Status(id)
	if st.Counts[core.OutcomeOK] != len(core.PaperConfigs()) {
		t.Fatalf("counts %v, want %d ok", st.Counts, len(core.PaperConfigs()))
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
