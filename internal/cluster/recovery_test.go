package cluster

import (
	"context"
	"errors"
	"testing"
	"time"

	"loopapalooza/internal/bench"
	"loopapalooza/internal/core"
)

// openTestCoordinator opens a durable coordinator over dir with the
// shared fake clock, so a crash + reopen pair sees one timeline.
func openTestCoordinator(t *testing.T, dir string, clk *fakeClock, opts CoordinatorOptions) *Coordinator {
	t.Helper()
	opts.DataDir = dir
	opts.Now = clk.Now
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Lease == 0 {
		opts.Lease = time.Minute
	}
	c, err := OpenCoordinator(opts)
	if err != nil {
		t.Fatalf("OpenCoordinator: %v", err)
	}
	return c
}

func TestRecoverJobsAndQueueOrder(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	c := openTestCoordinator(t, dir, clk, CoordinatorOptions{})
	b, cfgs := testBench(t)
	ctx := context.Background()

	// Job A committed before the crash; jobs B and C still queued.
	idA, err := c.Submit("acme", []*bench.Benchmark{b}, cfgs, true)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	task, err := c.Claim(ctx, ClaimRequest{Worker: "w1"})
	if err != nil {
		t.Fatalf("claim: %v", err)
	}
	results := okResults(t, task)
	if err := c.Commit(ctx, CommitRequest{Worker: "w1", Task: task.ID, Results: results}); err != nil {
		t.Fatalf("commit: %v", err)
	}
	idB, _ := c.Submit("acme", []*bench.Benchmark{b}, cfgs, false)
	idC, _ := c.Submit("acme", []*bench.Benchmark{b}, cfgs, false)
	preStats := c.Stats()
	c.Crash()

	c2 := openTestCoordinator(t, dir, clk, CoordinatorOptions{})
	defer c2.Close()
	if err := c2.CheckInvariants(); err != nil {
		t.Fatalf("invariants after recovery: %v", err)
	}

	// Job A recovered terminal, with its committed reports intact.
	st, err := c2.Status(idA)
	if err != nil || st.State != JobDone || st.Counts[core.OutcomeOK] != 2 {
		t.Fatalf("job A after recovery: %+v, %v", st, err)
	}
	waitCtx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	if err := c2.Wait(waitCtx, idA); err != nil {
		t.Fatalf("wait on recovered done job: %v", err)
	}
	for _, res := range results {
		got := c2.Report(idA, b.Name, res.Config)
		if got == nil {
			t.Fatalf("recovered job lost report for %s", res.Config)
		}
		if err := core.CompareReports(res.Report, got); err != nil {
			t.Fatalf("recovered report differs: %v", err)
		}
	}

	// Jobs B and C recovered queued, FIFO order preserved: the next
	// claim must lease job B's cells, not job C's.
	for _, id := range []string{idB, idC} {
		if st, err := c2.Status(id); err != nil || st.State != JobQueued {
			t.Fatalf("job %s after recovery: %+v, %v", id, st, err)
		}
	}
	task2, err := c2.Claim(ctx, ClaimRequest{Worker: "w1"})
	if err != nil {
		t.Fatalf("claim after recovery: %v", err)
	}
	if task2.Job != idB {
		t.Fatalf("recovered queue leased %s first, want FIFO head %s", task2.Job, idB)
	}

	// Stats counters survive (modulo volatile worker state).
	if got := c2.Stats(); got.CommittedCells != preStats.CommittedCells {
		t.Fatalf("CommittedCells %d after recovery, want %d", got.CommittedCells, preStats.CommittedCells)
	}

	// New submissions never collide with recovered ids.
	idD, err := c2.Submit("acme", []*bench.Benchmark{b}, cfgs, false)
	if err != nil {
		t.Fatalf("submit after recovery: %v", err)
	}
	if idD == idA || idD == idB || idD == idC {
		t.Fatalf("recovered coordinator reused job id %s", idD)
	}
}

func TestRecoverReArmsLiveLease(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	c := openTestCoordinator(t, dir, clk, CoordinatorOptions{Lease: 10 * time.Second})
	b, cfgs := testBench(t)
	ctx := context.Background()

	id, _ := c.Submit("", []*bench.Benchmark{b}, cfgs, false)
	task, err := c.Claim(ctx, ClaimRequest{Worker: "w1"})
	if err != nil {
		t.Fatalf("claim: %v", err)
	}
	results := okResults(t, task)

	// Coordinator dies 9s into the 10s lease; recovery re-arms the
	// deadline at now+Lease, so the worker's heartbeat and commit —
	// issued well past the original deadline — still land.
	clk.Advance(9 * time.Second)
	c.Crash()
	c2 := openTestCoordinator(t, dir, clk, CoordinatorOptions{Lease: 10 * time.Second})
	defer c2.Close()
	clk.Advance(8 * time.Second)

	if err := c2.Heartbeat(ctx, HeartbeatRequest{Worker: "w1", Task: task.ID}); err != nil {
		t.Fatalf("heartbeat on recovered lease: %v", err)
	}
	if err := c2.Commit(ctx, CommitRequest{Worker: "w1", Task: task.ID, Results: results}); err != nil {
		t.Fatalf("commit on recovered lease: %v", err)
	}
	st, _ := c2.Status(id)
	if st.State != JobDone || st.Counts[core.OutcomeOK] != 2 {
		t.Fatalf("after recovered commit: %+v", st)
	}
	// The same commit again is stale, not a double commit.
	err = c2.Commit(ctx, CommitRequest{Worker: "w1", Task: task.ID, Results: results})
	if !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("re-commit after commit: %v, want ErrLeaseExpired", err)
	}
	if err := c2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverStaleCommitStillRejected(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	opts := CoordinatorOptions{Lease: 10 * time.Second, RetryBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}
	c := openTestCoordinator(t, dir, clk, opts)
	b, cfgs := testBench(t)
	ctx := context.Background()

	id, _ := c.Submit("", []*bench.Benchmark{b}, cfgs, false)
	task, err := c.Claim(ctx, ClaimRequest{Worker: "w1"})
	if err != nil {
		t.Fatalf("claim: %v", err)
	}
	results := okResults(t, task)

	// The lease expires and is reclaimed (journaled) before the crash.
	clk.Advance(11 * time.Second)
	if _, err := c.Claim(ctx, ClaimRequest{Worker: "w2"}); err != nil && !errors.Is(err, ErrNoWork) {
		t.Fatalf("reclaim-triggering claim: %v", err)
	}
	c.Crash()

	c2 := openTestCoordinator(t, dir, clk, opts)
	defer c2.Close()
	// The zombie worker's commit of the reclaimed task must still be
	// rejected wholesale after recovery.
	err = c2.Commit(ctx, CommitRequest{Worker: "w1", Task: task.ID, Results: results})
	if !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("stale commit after recovery: %v, want ErrLeaseExpired", err)
	}
	if got := c2.Stats().StaleCommits; got != 1 {
		t.Fatalf("StaleCommits %d, want 1", got)
	}
	// The reclaimed cells are requeued with their attempt charged.
	clk.Advance(time.Second)
	task2, err := c2.Claim(ctx, ClaimRequest{Worker: "w2"})
	if err != nil {
		t.Fatalf("claim of reclaimed cells: %v", err)
	}
	for _, tc := range task2.Cells {
		if tc.Attempt != 2 {
			t.Fatalf("reclaimed cell on attempt %d after recovery, want 2", tc.Attempt)
		}
	}
	if err := c2.Commit(ctx, CommitRequest{Worker: "w2", Task: task2.ID, Results: okResults(t, task2)}); err != nil {
		t.Fatalf("commit: %v", err)
	}
	st, _ := c2.Status(id)
	if st.State != JobDone || st.Counts[core.OutcomeOK] != 2 {
		t.Fatalf("after requeue lifecycle: %+v", st)
	}
	if err := c2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverFromSnapshotAfterCompaction(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	// CompactEvery=1 forces a snapshot on virtually every flush, so
	// recovery exercises the snapshot restore path, not just replay.
	opts := CoordinatorOptions{CompactEvery: 1}
	c := openTestCoordinator(t, dir, clk, opts)
	b, cfgs := testBench(t)
	ctx := context.Background()

	id, _ := c.Submit("acme", []*bench.Benchmark{b}, cfgs, false)
	task, err := c.Claim(ctx, ClaimRequest{Worker: "w1"})
	if err != nil {
		t.Fatalf("claim: %v", err)
	}
	if err := c.Commit(ctx, CommitRequest{Worker: "w1", Task: task.ID, Results: okResults(t, task)}); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if c.WALStats().Compactions == 0 {
		t.Fatal("no compaction happened despite CompactEvery=1")
	}
	c.Crash()

	c2 := openTestCoordinator(t, dir, clk, opts)
	defer c2.Close()
	st, err := c2.Status(id)
	if err != nil || st.State != JobDone || st.Counts[core.OutcomeOK] != 2 {
		t.Fatalf("snapshot-recovered job: %+v, %v", st, err)
	}
	if err := c2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverRetryingExposedInStatus(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	opts := CoordinatorOptions{MaxAttempts: 3, RetryBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}
	c := openTestCoordinator(t, dir, clk, opts)
	defer c.Close()
	b, cfgs := testBench(t)
	ctx := context.Background()

	id, _ := c.Submit("", []*bench.Benchmark{b}, cfgs, false)
	task, _ := c.Claim(ctx, ClaimRequest{Worker: "w1"})
	// One cell panics (retryable), one exceeds a deterministic budget
	// (parks immediately).
	res := []CellResult{
		{Config: task.Cells[0].Config, Outcome: core.OutcomePanic, Error: "injected panic"},
		{Config: task.Cells[1].Config, Outcome: core.OutcomeStepLimit, Error: "step budget"},
	}
	if err := c.Commit(ctx, CommitRequest{Worker: "w1", Task: task.ID, Results: res}); err != nil {
		t.Fatalf("commit: %v", err)
	}
	st, _ := c.Status(id)
	if st.Retrying != 1 {
		t.Fatalf("Retrying = %d, want 1: %+v", st.Retrying, st)
	}
	if len(st.Parked) != 1 || st.Parked[0].Outcome != core.OutcomeStepLimit || st.Parked[0].Error == "" {
		t.Fatalf("Parked = %+v, want the step-limit cell with its error", st.Parked)
	}
}
