package cluster

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"loopapalooza/internal/bench"
	"loopapalooza/internal/core"
)

// fakeClock is an injectable coordinator clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// testBench returns a small real benchmark and two configurations.
func testBench(t *testing.T) (*bench.Benchmark, []core.Config) {
	t.Helper()
	bs := bench.BySuite(bench.SuiteEEMBC)
	if len(bs) == 0 {
		t.Fatal("no EEMBC benchmarks registered")
	}
	return bs[0], []core.Config{
		{Model: core.DOALL, Reduc: 1, Dep: 0, Fn: 0},
		core.BestHELIX(),
	}
}

// okResults executes the task's cells for real and returns verified
// results.
func okResults(t *testing.T, task *Task) []CellResult {
	t.Helper()
	b := bench.ByName(task.Bench)
	if b == nil {
		t.Fatalf("unknown benchmark %q", task.Bench)
	}
	var out []CellResult
	for _, tc := range task.Cells {
		r, err := b.Run(tc.Config)
		if err != nil {
			t.Fatalf("running %s under %s: %v", task.Bench, tc.Config, err)
		}
		out = append(out, CellResult{Config: tc.Config, Outcome: core.OutcomeOK, Report: r})
	}
	return out
}

func failResults(task *Task, o core.Outcome, msg string) []CellResult {
	var out []CellResult
	for _, tc := range task.Cells {
		out = append(out, CellResult{Config: tc.Config, Outcome: o, Error: msg})
	}
	return out
}

func newTestCoordinator(t *testing.T, opts CoordinatorOptions) (*Coordinator, *fakeClock) {
	t.Helper()
	clk := newFakeClock()
	opts.Now = clk.Now
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Lease == 0 {
		opts.Lease = time.Minute // janitor stays quiet; tests drive reclaim via calls
	}
	c := NewCoordinator(opts)
	t.Cleanup(c.Close)
	return c, clk
}

func TestSubmitClaimCommitLifecycle(t *testing.T) {
	c, _ := newTestCoordinator(t, CoordinatorOptions{})
	b, cfgs := testBench(t)
	ctx := context.Background()

	id, err := c.Submit("acme", []*bench.Benchmark{b}, cfgs, false)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st, err := c.Status(id)
	if err != nil || st.State != JobQueued || st.Total != 2 {
		t.Fatalf("status after submit: %+v, %v", st, err)
	}

	task, err := c.Claim(ctx, ClaimRequest{Worker: "w1"})
	if err != nil {
		t.Fatalf("claim: %v", err)
	}
	if task.Bench != b.Name || len(task.Cells) != 2 {
		t.Fatalf("task batches %d cells of %s, want 2 of %s", len(task.Cells), task.Bench, b.Name)
	}
	if st, _ := c.Status(id); st.State != JobRunning {
		t.Fatalf("state %s while leased, want running", st.State)
	}

	if err := c.Commit(ctx, CommitRequest{Worker: "w1", Task: task.ID, Results: okResults(t, task)}); err != nil {
		t.Fatalf("commit: %v", err)
	}
	st, _ = c.Status(id)
	if st.State != JobDone || st.Counts[core.OutcomeOK] != 2 {
		t.Fatalf("after commit: state %s counts %v", st.State, st.Counts)
	}
	if st.Cells[0].Speedup <= 0 {
		t.Fatalf("committed cell carries no speedup: %+v", st.Cells[0])
	}
	if r := c.Report(id, b.Name, cfgs[0]); r == nil {
		t.Fatal("Report returned nil for a done cell")
	}

	waitCtx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	if err := c.Wait(waitCtx, id); err != nil {
		t.Fatalf("wait on done job: %v", err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLeaseExpiryRequeuesCells(t *testing.T) {
	c, clk := newTestCoordinator(t, CoordinatorOptions{Lease: 10 * time.Second, MaxBackoff: time.Millisecond, RetryBackoff: time.Millisecond})
	b, cfgs := testBench(t)
	ctx := context.Background()
	id, _ := c.Submit("", []*bench.Benchmark{b}, cfgs, false)

	task1, err := c.Claim(ctx, ClaimRequest{Worker: "sick"})
	if err != nil {
		t.Fatalf("claim: %v", err)
	}
	clk.Advance(11 * time.Second) // past the lease; next call reclaims
	if _, err := c.Claim(ctx, ClaimRequest{Worker: "healthy"}); !errors.Is(err, ErrNoWork) {
		t.Fatalf("claim during retry backoff: %v, want ErrNoWork", err)
	}
	clk.Advance(time.Second) // past the retry backoff

	task2, err := c.Claim(ctx, ClaimRequest{Worker: "healthy"})
	if err != nil {
		t.Fatalf("claim after expiry: %v", err)
	}
	if task2.Cells[0].Attempt != 2 {
		t.Fatalf("reclaimed cell attempt %d, want 2", task2.Cells[0].Attempt)
	}
	if got := c.Stats().LeaseExpiries; got != 1 {
		t.Fatalf("lease expiries %d, want 1", got)
	}

	// The sick worker's late commit must be rejected wholesale.
	err = c.Commit(ctx, CommitRequest{Worker: "sick", Task: task1.ID, Results: okResults(t, task1)})
	if !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("stale commit error %v, want ErrLeaseExpired", err)
	}
	if got := c.Stats().StaleCommits; got != 1 {
		t.Fatalf("stale commits %d, want 1", got)
	}

	// The healthy worker commits; nothing is double-committed.
	if err := c.Commit(ctx, CommitRequest{Worker: "healthy", Task: task2.ID, Results: okResults(t, task2)}); err != nil {
		t.Fatalf("healthy commit: %v", err)
	}
	st, _ := c.Status(id)
	if st.State != JobDone || st.Counts[core.OutcomeOK] != 2 {
		t.Fatalf("job not completed cleanly: %s %v", st.State, st.Counts)
	}
	if c.Stats().DoubleCommitRejected != 0 {
		t.Fatal("a double commit reached a terminal cell")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRetryBudgetParksCell(t *testing.T) {
	c, clk := newTestCoordinator(t, CoordinatorOptions{MaxAttempts: 2, RetryBackoff: time.Millisecond, MaxBackoff: time.Millisecond})
	b, cfgs := testBench(t)
	ctx := context.Background()
	id, _ := c.Submit("", []*bench.Benchmark{b}, cfgs[:1], false)

	for attempt := 1; attempt <= 2; attempt++ {
		clk.Advance(time.Second) // clear any retry backoff
		task, err := c.Claim(ctx, ClaimRequest{Worker: "w1"})
		if err != nil {
			t.Fatalf("claim attempt %d: %v", attempt, err)
		}
		if task.Cells[0].Attempt != attempt {
			t.Fatalf("attempt %d, want %d", task.Cells[0].Attempt, attempt)
		}
		if err := c.Commit(ctx, CommitRequest{Worker: "w1", Task: task.ID,
			Results: failResults(task, core.OutcomePanic, "boom")}); err != nil {
			t.Fatalf("commit attempt %d: %v", attempt, err)
		}
	}

	st, _ := c.Status(id)
	if st.State != JobDone {
		t.Fatalf("job state %s after budget exhaustion, want done", st.State)
	}
	cell := st.Cells[0]
	if cell.State != CellParked || cell.Outcome != core.OutcomePanic {
		t.Fatalf("cell %+v, want parked/panic", cell)
	}
	if c.Stats().ParkedCells != 1 || c.Stats().Retries != 1 {
		t.Fatalf("stats %+v, want 1 parked, 1 retry", c.Stats())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicFailureParksImmediately(t *testing.T) {
	c, _ := newTestCoordinator(t, CoordinatorOptions{})
	b, cfgs := testBench(t)
	ctx := context.Background()
	id, _ := c.Submit("", []*bench.Benchmark{b}, cfgs[:1], false)
	task, _ := c.Claim(ctx, ClaimRequest{Worker: "w1"})
	if err := c.Commit(ctx, CommitRequest{Worker: "w1", Task: task.ID,
		Results: failResults(task, core.OutcomeStepLimit, "step budget")}); err != nil {
		t.Fatalf("commit: %v", err)
	}
	st, _ := c.Status(id)
	if st.Cells[0].State != CellParked || st.Cells[0].Attempts != 1 {
		t.Fatalf("deterministic failure retried: %+v", st.Cells[0])
	}
	if st.Counts[core.OutcomeStepLimit] != 1 {
		t.Fatalf("counts %v", st.Counts)
	}
}

func TestCanceledResultRefundsAttempt(t *testing.T) {
	c, _ := newTestCoordinator(t, CoordinatorOptions{})
	b, cfgs := testBench(t)
	ctx := context.Background()
	c.Submit("", []*bench.Benchmark{b}, cfgs[:1], false)
	task, _ := c.Claim(ctx, ClaimRequest{Worker: "w1"})
	if err := c.Commit(ctx, CommitRequest{Worker: "w1", Task: task.ID,
		Results: failResults(task, core.OutcomeCanceled, "drain")}); err != nil {
		t.Fatalf("commit: %v", err)
	}
	task2, err := c.Claim(ctx, ClaimRequest{Worker: "w2"})
	if err != nil {
		t.Fatalf("reclaim after refund: %v", err)
	}
	if task2.Cells[0].Attempt != 1 {
		t.Fatalf("refunded cell attempt %d, want 1 (budget uncharged)", task2.Cells[0].Attempt)
	}
	if c.Stats().RefundedCells != 1 {
		t.Fatalf("refunded %d, want 1", c.Stats().RefundedCells)
	}
}

func TestCorruptCommitRetriesAndChargesBreaker(t *testing.T) {
	c, clk := newTestCoordinator(t, CoordinatorOptions{BreakerThreshold: 1, RetryBackoff: time.Millisecond, MaxBackoff: time.Millisecond})
	b, cfgs := testBench(t)
	ctx := context.Background()
	c.Submit("", []*bench.Benchmark{b}, cfgs[:1], false)
	task, _ := c.Claim(ctx, ClaimRequest{Worker: "lying"})
	res := okResults(t, task)
	tampered := *res[0].Report
	tampered.ParallelCost = tampered.SerialCost + 1 // speedup < 1: impossible
	res[0].Report = &tampered
	if err := c.Commit(ctx, CommitRequest{Worker: "lying", Task: task.ID, Results: res}); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if got := c.Stats().CorruptCommits; got != 1 {
		t.Fatalf("corrupt commits %d, want 1", got)
	}
	// The lying worker tripped its breaker (threshold 1).
	_, err := c.Claim(ctx, ClaimRequest{Worker: "lying"})
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("claim after corrupt commit: %v, want breaker open", err)
	}
	// An honest worker picks the retried cell up once its backoff passes.
	clk.Advance(time.Second)
	task2, err := c.Claim(ctx, ClaimRequest{Worker: "honest"})
	if err != nil {
		t.Fatalf("honest claim: %v", err)
	}
	if task2.Cells[0].Attempt != 2 {
		t.Fatalf("attempt %d, want 2", task2.Cells[0].Attempt)
	}
}

func TestReportIdentityMismatchIsCorrupt(t *testing.T) {
	c, _ := newTestCoordinator(t, CoordinatorOptions{})
	b, cfgs := testBench(t)
	ctx := context.Background()
	c.Submit("", []*bench.Benchmark{b}, cfgs, false)
	task, _ := c.Claim(ctx, ClaimRequest{Worker: "w1"})
	res := okResults(t, task)
	// Swap the two reports: each is valid but belongs to the other cell.
	res[0].Report, res[1].Report = res[1].Report, res[0].Report
	if err := c.Commit(ctx, CommitRequest{Worker: "w1", Task: task.ID, Results: res}); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if got := c.Stats().CorruptCommits; got != 2 {
		t.Fatalf("corrupt commits %d, want 2", got)
	}
}

func TestAdmissionControlQueueFull(t *testing.T) {
	c, _ := newTestCoordinator(t, CoordinatorOptions{MaxQueuedJobs: 1})
	b, cfgs := testBench(t)
	if _, err := c.Submit("acme", []*bench.Benchmark{b}, cfgs, false); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	_, err := c.Submit("acme", []*bench.Benchmark{b}, cfgs, false)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("second submit: %v, want ErrQueueFull", err)
	}
	// Another tenant is unaffected.
	if _, err := c.Submit("other", []*bench.Benchmark{b}, cfgs, false); err != nil {
		t.Fatalf("other tenant submit: %v", err)
	}
	if c.Stats().RejectedJobs != 1 {
		t.Fatalf("rejected %d, want 1", c.Stats().RejectedJobs)
	}
}

func TestRateLimitPerTenant(t *testing.T) {
	c, clk := newTestCoordinator(t, CoordinatorOptions{RatePerSec: 1, RateBurst: 1})
	b, cfgs := testBench(t)
	if _, err := c.Submit("acme", []*bench.Benchmark{b}, cfgs, false); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	if _, err := c.Submit("acme", []*bench.Benchmark{b}, cfgs, false); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("burst-exceeding submit: %v, want ErrRateLimited", err)
	}
	clk.Advance(time.Second)
	if _, err := c.Submit("acme", []*bench.Benchmark{b}, cfgs, false); err != nil {
		t.Fatalf("submit after refill: %v", err)
	}
}

func TestTenantRoundRobin(t *testing.T) {
	c, _ := newTestCoordinator(t, CoordinatorOptions{BatchSize: 1})
	b, cfgs := testBench(t)
	ctx := context.Background()
	c.Submit("a", []*bench.Benchmark{b}, cfgs, false)
	c.Submit("b", []*bench.Benchmark{b}, cfgs, false)
	seen := map[string]int{}
	for i := 0; i < 4; i++ {
		task, err := c.Claim(ctx, ClaimRequest{Worker: "w1"})
		if err != nil {
			t.Fatalf("claim %d: %v", i, err)
		}
		seen[task.Job]++
	}
	if seen["job-000001"] != 2 || seen["job-000002"] != 2 {
		t.Fatalf("claims not round-robined across tenants: %v", seen)
	}
}

func TestDrainRefusesNewWork(t *testing.T) {
	c, _ := newTestCoordinator(t, CoordinatorOptions{})
	b, cfgs := testBench(t)
	ctx := context.Background()
	c.Submit("", []*bench.Benchmark{b}, cfgs, false)
	task, _ := c.Claim(ctx, ClaimRequest{Worker: "w1"})
	c.Drain()
	if _, err := c.Submit("", []*bench.Benchmark{b}, cfgs, false); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining: %v", err)
	}
	if _, err := c.Claim(ctx, ClaimRequest{Worker: "w2"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("claim while draining: %v", err)
	}
	// In-flight tasks still commit.
	if err := c.Commit(ctx, CommitRequest{Worker: "w1", Task: task.ID, Results: okResults(t, task)}); err != nil {
		t.Fatalf("commit while draining: %v", err)
	}
}

func TestReleaseRequeuesWithoutCharge(t *testing.T) {
	c, _ := newTestCoordinator(t, CoordinatorOptions{})
	b, cfgs := testBench(t)
	ctx := context.Background()
	c.Submit("", []*bench.Benchmark{b}, cfgs, false)
	task, _ := c.Claim(ctx, ClaimRequest{Worker: "w1"})
	if err := c.Release(ctx, ReleaseRequest{Worker: "w1", Task: task.ID}); err != nil {
		t.Fatalf("release: %v", err)
	}
	task2, err := c.Claim(ctx, ClaimRequest{Worker: "w2"})
	if err != nil {
		t.Fatalf("claim after release: %v", err)
	}
	if task2.Cells[0].Attempt != 1 {
		t.Fatalf("released cell attempt %d, want 1", task2.Cells[0].Attempt)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHeartbeatExtendsLease(t *testing.T) {
	c, clk := newTestCoordinator(t, CoordinatorOptions{Lease: 10 * time.Second})
	b, cfgs := testBench(t)
	ctx := context.Background()
	c.Submit("", []*bench.Benchmark{b}, cfgs, false)
	task, _ := c.Claim(ctx, ClaimRequest{Worker: "w1"})
	for i := 0; i < 5; i++ {
		clk.Advance(8 * time.Second)
		if err := c.Heartbeat(ctx, HeartbeatRequest{Worker: "w1", Task: task.ID}); err != nil {
			t.Fatalf("heartbeat %d: %v", i, err)
		}
	}
	if err := c.Commit(ctx, CommitRequest{Worker: "w1", Task: task.ID, Results: okResults(t, task)}); err != nil {
		t.Fatalf("commit after 40s of heartbeats: %v", err)
	}
	if c.Stats().LeaseExpiries != 0 {
		t.Fatal("heartbeaten lease expired anyway")
	}
	// A heartbeat for a finished task reports the lease gone.
	if err := c.Heartbeat(ctx, HeartbeatRequest{Worker: "w1", Task: task.ID}); !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("heartbeat on finished task: %v, want ErrLeaseExpired", err)
	}
}

func TestWorkersSnapshot(t *testing.T) {
	c, _ := newTestCoordinator(t, CoordinatorOptions{})
	b, cfgs := testBench(t)
	ctx := context.Background()
	c.Submit("", []*bench.Benchmark{b}, cfgs, false)
	c.Claim(ctx, ClaimRequest{Worker: "w2"})
	c.Claim(ctx, ClaimRequest{Worker: "w1"})
	ws := c.Workers()
	if len(ws) != 2 || ws[0].ID != "w1" || ws[1].ID != "w2" {
		t.Fatalf("workers %+v", ws)
	}
	if ws[1].Inflight != 1 {
		t.Fatalf("w2 inflight %d, want 1", ws[1].Inflight)
	}
}
