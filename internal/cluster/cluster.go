// Package cluster turns the single-process sweep surface into a
// fault-tolerant coordinator + worker fleet.
//
// The coordinator owns the async job API: a submitted job is a set of
// sweep cells — (benchmark, configuration) pairs, the same unit the bench
// harness executes — fanned into per-tenant FIFO queues behind admission
// control and token-bucket rate limits. Workers claim batches of cells
// under a lease: each lease carries a deadline, is kept alive by
// heartbeats, and is reclaimed when it expires, so a crashed or hung
// worker can never strand work. Reclaimed and failed cells are retried
// with exponential backoff plus jitter up to a retry budget, then parked
// as a typed core.Outcome failure — a job always reaches a terminal
// state, degrading to partial results instead of wedging.
//
// Every worker is watched by a CLOSED/OPEN/HALF-OPEN circuit breaker on
// the coordinator: consecutive lease expiries, recovered panics, or
// corrupt commits quarantine the worker (claims rejected) while the rest
// of the fleet drains the queue; after a cooldown one probe task decides
// whether it rejoins.
//
// Cells are idempotent and deterministic (a report depends only on the
// benchmark, the configuration, and the harness budgets), so a retried
// cell commits a bit-identical report wherever it lands; committed
// reports are validated with core.VerifyReport and a cell is never
// committed twice. The chaos subpackage proves these properties under a
// seeded fault schedule.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"time"

	"loopapalooza/internal/core"
)

// Typed coordination errors. The HTTP transport maps them onto status
// codes and back, so errors.Is works identically in-process and over the
// wire.
var (
	// ErrNoWork: the queues hold no eligible cell for this worker.
	ErrNoWork = errors.New("cluster: no work available")
	// ErrDraining: the coordinator is shutting down and refuses new work.
	ErrDraining = errors.New("cluster: coordinator draining")
	// ErrQueueFull: the tenant's admission-control job cap is reached.
	ErrQueueFull = errors.New("cluster: tenant queue full")
	// ErrRateLimited: the tenant's token bucket is empty.
	ErrRateLimited = errors.New("cluster: tenant rate limited")
	// ErrLeaseExpired: the task is no longer held by this worker (lease
	// reclaimed, already committed, or never granted).
	ErrLeaseExpired = errors.New("cluster: lease expired or not held")
	// ErrUnknownJob: no job with that id.
	ErrUnknownJob = errors.New("cluster: unknown job")
	// ErrBreakerOpen: the worker's circuit breaker rejects claims.
	ErrBreakerOpen = errors.New("cluster: worker breaker open")
	// ErrWorkerCrashed is returned by an injected fault to simulate a
	// worker process dying mid-task (the loop exits without committing).
	ErrWorkerCrashed = errors.New("cluster: worker crashed (injected)")
)

// BreakerOpenError rejects a claim from a quarantined worker and carries
// when a retry may be admitted. errors.Is(err, ErrBreakerOpen) matches it.
type BreakerOpenError struct {
	// RetryAfter is the remaining cooldown.
	RetryAfter time.Duration
}

func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("cluster: worker breaker open (retry after %s)", e.RetryAfter.Round(time.Millisecond))
}

func (e *BreakerOpenError) Unwrap() error { return ErrBreakerOpen }

// TaskCell is one leased cell of a task.
type TaskCell struct {
	// Config is the cell's configuration (the benchmark is task-wide).
	Config core.Config `json:"config"`
	// Attempt is the 1-based execution attempt this lease represents.
	Attempt int `json:"attempt"`
}

// Task is one unit of claimed work: a batch of cells of a single
// benchmark under one lease. Batching cells of one benchmark lets the
// worker's harness share one execution across every configuration
// (core.MultiRun), while the cell stays the unit of commit and retry.
type Task struct {
	// ID identifies the lease.
	ID string `json:"id"`
	// Job is the owning job's id.
	Job string `json:"job"`
	// Bench is the benchmark every cell of the task belongs to.
	Bench string `json:"bench"`
	// Cells are the leased cells.
	Cells []TaskCell `json:"cells"`
	// LeaseMs is the lease duration; the worker must heartbeat well
	// within it (every LeaseMs/3 by default).
	LeaseMs int64 `json:"leaseMs"`
}

// Lease returns the task's lease duration.
func (t *Task) Lease() time.Duration { return time.Duration(t.LeaseMs) * time.Millisecond }

// CellResult is one cell's outcome as committed by a worker.
type CellResult struct {
	// Config identifies the cell within the task.
	Config core.Config `json:"config"`
	// Outcome classifies the execution.
	Outcome core.Outcome `json:"outcome"`
	// Report is the completed report (nil unless Outcome is ok).
	Report *core.Report `json:"report,omitempty"`
	// Error is the rendered per-cell error ("" on success).
	Error string `json:"error,omitempty"`
}

// ClaimRequest asks for a task.
type ClaimRequest struct {
	// Worker identifies the claimant (registers it on first contact).
	Worker string `json:"worker"`
}

// HeartbeatRequest extends a lease.
type HeartbeatRequest struct {
	Worker string `json:"worker"`
	Task   string `json:"task"`
}

// CommitRequest reports a task's per-cell results.
type CommitRequest struct {
	Worker  string       `json:"worker"`
	Task    string       `json:"task"`
	Results []CellResult `json:"results"`
}

// ReleaseRequest returns a task's cells to the queue uncharged (graceful
// worker drain).
type ReleaseRequest struct {
	Worker string `json:"worker"`
	Task   string `json:"task"`
}

// Coordination is the worker-facing surface of the coordinator. The
// *Coordinator implements it directly (in-process fleets) and *Client
// implements it over HTTP (remote fleets), so a Worker is transport-
// agnostic.
type Coordination interface {
	// Claim returns the next task for the worker, ErrNoWork when the
	// queues are empty, a *BreakerOpenError while the worker is
	// quarantined, or ErrDraining during coordinator shutdown.
	Claim(ctx context.Context, req ClaimRequest) (*Task, error)
	// Heartbeat extends the task's lease; ErrLeaseExpired means the task
	// was reclaimed and the worker should abandon it.
	Heartbeat(ctx context.Context, req HeartbeatRequest) error
	// Commit delivers the task's results. ErrLeaseExpired means the
	// lease was reclaimed first and every result was discarded (the
	// cells are already requeued — nothing is lost and nothing is
	// double-committed).
	Commit(ctx context.Context, req CommitRequest) error
	// Release returns the task's cells to the queue without charging
	// their retry budgets, each recorded as a canceled attempt.
	Release(ctx context.Context, req ReleaseRequest) error
}

// CellState is the lifecycle state of one cell.
type CellState string

// The cell lifecycle. Queued and leased cells are non-terminal; done and
// parked cells are terminal.
const (
	// CellQueued: waiting in the tenant queue (possibly in backoff).
	CellQueued CellState = "queued"
	// CellLeased: held by a worker under a live lease.
	CellLeased CellState = "leased"
	// CellDone: committed with a verified report.
	CellDone CellState = "done"
	// CellParked: terminally failed — deterministic failure or retry
	// budget exhausted — with a typed outcome.
	CellParked CellState = "parked"
)

// JobState is the lifecycle state of one job.
type JobState string

// The job lifecycle.
const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	// JobDone: every cell is terminal (done or parked).
	JobDone JobState = "done"
)

// CellStatus is one cell of a job status report.
type CellStatus struct {
	Bench    string       `json:"bench"`
	Config   core.Config  `json:"config"`
	State    CellState    `json:"state"`
	Outcome  core.Outcome `json:"outcome"`
	Attempts int          `json:"attempts"`
	Speedup  float64      `json:"speedup,omitempty"`
	Coverage float64      `json:"coverage,omitempty"`
	Error    string       `json:"error,omitempty"`
	Report   *core.Report `json:"report,omitempty"`
}

// JobStatus is the GET /v1/jobs/{id} body.
type JobStatus struct {
	ID     string   `json:"id"`
	Tenant string   `json:"tenant"`
	State  JobState `json:"state"`
	// Done and Total count terminal cells vs all cells.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Counts tallies terminal cells by outcome.
	Counts map[core.Outcome]int `json:"counts"`
	// Retrying counts non-terminal cells with at least one failed
	// attempt behind them — the retry machinery is still working on
	// them, unlike the Parked cells it gave up on.
	Retrying int `json:"retrying"`
	// Parked lists the terminally failed cells with their typed
	// outcomes, so a client can tell "gave up" from "retrying" without
	// scraping metrics or walking Cells.
	Parked []CellStatus `json:"parked,omitempty"`
	// Summary is the human line, e.g. "796/798 cells ok (2 timeout)".
	Summary string       `json:"summary"`
	Cells   []CellStatus `json:"cells"`
}
