package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// The HTTP transport of the Coordination interface. Status codes carry
// the typed errors across the wire so errors.Is works identically
// in-process and remotely:
//
//	204 on claim            → ErrNoWork
//	503 code "draining"     → ErrDraining
//	503 code "breaker-open" → *BreakerOpenError (Retry-After honored)
//	410                     → ErrLeaseExpired
//
// Handlers mount under /v1/cluster/ (see Handler); Client is the
// worker-side implementation.

// transportError is the JSON error body of the cluster endpoints.
type transportError struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// Handler returns the coordinator's worker-facing HTTP surface:
//
//	POST /v1/cluster/claim      ClaimRequest → Task | 204
//	POST /v1/cluster/heartbeat  HeartbeatRequest → 204
//	POST /v1/cluster/commit     CommitRequest → 204
//	POST /v1/cluster/release    ReleaseRequest → 204
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cluster/claim", func(w http.ResponseWriter, r *http.Request) {
		var req ClaimRequest
		if !decodeBody(w, r, &req) {
			return
		}
		t, err := c.Claim(r.Context(), req)
		if err != nil {
			writeClusterError(w, err)
			return
		}
		writeClusterJSON(w, http.StatusOK, t)
	})
	mux.HandleFunc("POST /v1/cluster/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if !decodeBody(w, r, &req) {
			return
		}
		if err := c.Heartbeat(r.Context(), req); err != nil {
			writeClusterError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /v1/cluster/commit", func(w http.ResponseWriter, r *http.Request) {
		var req CommitRequest
		if !decodeBody(w, r, &req) {
			return
		}
		if err := c.Commit(r.Context(), req); err != nil {
			writeClusterError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /v1/cluster/release", func(w http.ResponseWriter, r *http.Request) {
		var req ReleaseRequest
		if !decodeBody(w, r, &req) {
			return
		}
		if err := c.Release(r.Context(), req); err != nil {
			writeClusterError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(v); err != nil {
		writeClusterJSON(w, http.StatusBadRequest, transportError{
			Error: fmt.Sprintf("decoding request: %v", err), Code: "bad-request",
		})
		return false
	}
	return true
}

func writeClusterJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeClusterError maps a typed coordination error to its wire shape.
func writeClusterError(w http.ResponseWriter, err error) {
	var boe *BreakerOpenError
	switch {
	case errors.Is(err, ErrNoWork):
		w.WriteHeader(http.StatusNoContent)
	case errors.As(err, &boe):
		secs := int64(boe.RetryAfter.Seconds() + 0.999)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		writeClusterJSON(w, http.StatusServiceUnavailable, transportError{Error: err.Error(), Code: "breaker-open"})
	case errors.Is(err, ErrDraining):
		writeClusterJSON(w, http.StatusServiceUnavailable, transportError{Error: err.Error(), Code: "draining"})
	case errors.Is(err, ErrLeaseExpired):
		writeClusterJSON(w, http.StatusGone, transportError{Error: err.Error(), Code: "lease-expired"})
	default:
		writeClusterJSON(w, http.StatusInternalServerError, transportError{Error: err.Error(), Code: "internal"})
	}
}

// Client implements Coordination against a remote coordinator.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the coordinator at base (e.g.
// "http://coordinator:8080"). hc nil uses a client with sane timeouts
// for small control-plane RPCs.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

func (c *Client) post(ctx context.Context, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("cluster client: encoding %s: %w", path, err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := c.hc.Do(hreq)
	if err != nil {
		return fmt.Errorf("cluster client: %s: %w", path, err)
	}
	defer hresp.Body.Close()
	switch hresp.StatusCode {
	case http.StatusOK:
		if resp == nil {
			io.Copy(io.Discard, hresp.Body)
			return nil
		}
		return json.NewDecoder(hresp.Body).Decode(resp)
	case http.StatusNoContent:
		if resp != nil {
			return ErrNoWork
		}
		return nil
	case http.StatusGone:
		return ErrLeaseExpired
	case http.StatusServiceUnavailable:
		var te transportError
		_ = json.NewDecoder(hresp.Body).Decode(&te)
		if te.Code == "breaker-open" {
			retry := 0 * time.Second
			if s := hresp.Header.Get("Retry-After"); s != "" {
				if secs, err := strconv.ParseInt(s, 10, 64); err == nil {
					retry = time.Duration(secs) * time.Second
				}
			}
			return &BreakerOpenError{RetryAfter: retry}
		}
		return ErrDraining
	default:
		var te transportError
		_ = json.NewDecoder(hresp.Body).Decode(&te)
		if te.Error == "" {
			te.Error = hresp.Status
		}
		return fmt.Errorf("cluster client: %s: %s", path, te.Error)
	}
}

// Claim implements Coordination.
func (c *Client) Claim(ctx context.Context, req ClaimRequest) (*Task, error) {
	var t Task
	if err := c.post(ctx, "/v1/cluster/claim", req, &t); err != nil {
		return nil, err
	}
	return &t, nil
}

// Heartbeat implements Coordination.
func (c *Client) Heartbeat(ctx context.Context, req HeartbeatRequest) error {
	return c.post(ctx, "/v1/cluster/heartbeat", req, nil)
}

// Commit implements Coordination.
func (c *Client) Commit(ctx context.Context, req CommitRequest) error {
	return c.post(ctx, "/v1/cluster/commit", req, nil)
}

// Release implements Coordination.
func (c *Client) Release(ctx context.Context, req ReleaseRequest) error {
	return c.post(ctx, "/v1/cluster/release", req, nil)
}

// Interface conformance.
var (
	_ Coordination = (*Coordinator)(nil)
	_ Coordination = (*Client)(nil)
)
