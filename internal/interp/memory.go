package interp

import (
	"fmt"
	"math"
)

// Memory layout constants (word addresses).
const (
	// NullAddr is the null pointer.
	NullAddr = 0
	// GlobalBase is the first global address.
	GlobalBase = 16
	// HeapBase is the first heap address.
	HeapBase = 1 << 30
	// StackTop is one past the highest stack address; the stack grows
	// down from here.
	StackTop = 1 << 40
	// DefaultStackWords bounds the stack (per execution).
	DefaultStackWords = 1 << 22
	// DefaultHeapWords bounds the heap (per execution).
	DefaultHeapWords = 1 << 26
)

// IsStackAddr reports whether a word address lies in the stack segment.
// The limit-study engine uses this to apply the cactus-stack exemption:
// stack cells in frames younger than the current iteration are private.
func IsStackAddr(addr int64) bool { return addr >= StackTop-DefaultStackWords && addr < StackTop }

// Memory is the simulated flat memory: three segments of 64-bit cells. It
// is shared by both execution engines (the tree-walking interpreter and
// the bytecode VM), so segment bounds, error messages, and the
// zero-on-reuse stack discipline cannot drift between them.
type Memory struct {
	globals    []Val // addresses [GlobalBase, GlobalBase+len)
	heap       []Val // addresses [HeapBase, HeapBase+len)
	heapLimit  int64
	stack      []Val // stack[i] holds address StackTop-1-i
	stackLimit int64
	// SP is the stack pointer: next free stack address + 1 boundary;
	// valid cells are [SP, StackTop). Engines save and restore it around
	// guest calls (frame pop is a plain SP restore).
	SP int64
}

// NewMemory returns a fresh memory with a zeroed global segment of
// globalWords cells and the given heap budget (0 = DefaultHeapWords).
func NewMemory(globalWords, heapLimit int64) *Memory {
	if heapLimit <= 0 {
		heapLimit = DefaultHeapWords
	}
	return &Memory{
		globals:    make([]Val, globalWords),
		heapLimit:  heapLimit,
		stackLimit: DefaultStackWords,
		SP:         StackTop,
	}
}

// SetGlobal writes the global cell at offset i (word GlobalBase+i) during
// initializer application.
func (m *Memory) SetGlobal(i int64, v Val) { m.globals[i] = v }

// Reset returns the memory to its initial state while keeping the
// allocated segments for reuse: the heap empties, the stack pointer
// returns to the top, and the global segment is re-initialized from img
// (which must have the global segment's length; pass nil for none).
func (m *Memory) Reset(img []Val) {
	m.heap = m.heap[:0]
	m.SP = StackTop
	if len(img) != len(m.globals) {
		m.globals = make([]Val, len(img))
	}
	copy(m.globals, img)
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }

// Load reads the cell at addr.
func (m *Memory) Load(addr int64) (Val, error) {
	switch {
	case addr >= GlobalBase && addr < GlobalBase+int64(len(m.globals)):
		return m.globals[addr-GlobalBase], nil
	case addr >= HeapBase && addr < HeapBase+int64(len(m.heap)):
		return m.heap[addr-HeapBase], nil
	case addr >= m.SP && addr < StackTop:
		return m.stack[StackTop-1-addr], nil
	case addr == NullAddr:
		return Val{}, fmt.Errorf("null pointer load")
	default:
		return Val{}, fmt.Errorf("load from unmapped address %#x", addr)
	}
}

// Store writes the cell at addr.
func (m *Memory) Store(addr int64, v Val) error {
	switch {
	case addr >= GlobalBase && addr < GlobalBase+int64(len(m.globals)):
		m.globals[addr-GlobalBase] = v
		return nil
	case addr >= HeapBase && addr < HeapBase+int64(len(m.heap)):
		m.heap[addr-HeapBase] = v
		return nil
	case addr >= m.SP && addr < StackTop:
		m.stack[StackTop-1-addr] = v
		return nil
	case addr == NullAddr:
		return fmt.Errorf("null pointer store")
	default:
		return fmt.Errorf("store to unmapped address %#x", addr)
	}
}

// Alloca reserves n stack cells and returns the base address.
func (m *Memory) Alloca(n int64) (int64, error) {
	if n < 0 {
		return 0, fmt.Errorf("negative alloca size %d", n)
	}
	newSP := m.SP - n
	if StackTop-newSP > m.stackLimit {
		return 0, fmt.Errorf("stack overflow (%d words, budget %d): %w", StackTop-newSP, m.stackLimit, ErrMemLimit)
	}
	for int64(len(m.stack)) < StackTop-newSP {
		m.stack = append(m.stack, Val{})
	}
	// Zero the reused region (stack frames are reused across calls).
	for a := newSP; a < m.SP; a++ {
		m.stack[StackTop-1-a] = Val{}
	}
	m.SP = newSP
	return newSP, nil
}

// HeapAlloc reserves n heap cells (never freed) and returns the base.
func (m *Memory) HeapAlloc(n int64) (int64, error) {
	if n < 0 {
		return 0, fmt.Errorf("negative alloc size %d", n)
	}
	base := HeapBase + int64(len(m.heap))
	need := int64(len(m.heap)) + n
	if need > m.heapLimit {
		return 0, fmt.Errorf("heap exhausted (%d cells, budget %d): %w", need, m.heapLimit, ErrMemLimit)
	}
	// Grow in place when a Reset left capacity behind, zeroing the
	// reused cells; fall back to append for first-time growth.
	if need <= int64(cap(m.heap)) {
		old := len(m.heap)
		m.heap = m.heap[:need]
		clear(m.heap[old:])
	} else {
		m.heap = append(m.heap, make([]Val, n)...)
	}
	return base, nil
}
