package interp

import (
	"fmt"
	"math"
)

// Memory layout constants (word addresses).
const (
	// NullAddr is the null pointer.
	NullAddr = 0
	// GlobalBase is the first global address.
	GlobalBase = 16
	// HeapBase is the first heap address.
	HeapBase = 1 << 30
	// StackTop is one past the highest stack address; the stack grows
	// down from here.
	StackTop = 1 << 40
	// DefaultStackWords bounds the stack (per execution).
	DefaultStackWords = 1 << 22
	// DefaultHeapWords bounds the heap (per execution).
	DefaultHeapWords = 1 << 26
)

// IsStackAddr reports whether a word address lies in the stack segment.
// The limit-study engine uses this to apply the cactus-stack exemption:
// stack cells in frames younger than the current iteration are private.
func IsStackAddr(addr int64) bool { return addr >= StackTop-DefaultStackWords && addr < StackTop }

// memory is the simulated flat memory: three segments of 64-bit cells.
type memory struct {
	globals    []Val // addresses [GlobalBase, GlobalBase+len)
	heap       []Val // addresses [HeapBase, HeapBase+len)
	heapLimit  int64
	stack      []Val // stack[i] holds address StackTop-1-i
	stackLimit int64
	sp         int64 // next free stack address + 1 boundary; valid cells are [sp, StackTop)
}

func newMemory(globalWords, heapLimit int64) *memory {
	if heapLimit <= 0 {
		heapLimit = DefaultHeapWords
	}
	return &memory{
		globals:    make([]Val, globalWords),
		heapLimit:  heapLimit,
		stackLimit: DefaultStackWords,
		sp:         StackTop,
	}
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }

// load reads the cell at addr.
func (m *memory) load(addr int64) (Val, error) {
	switch {
	case addr >= GlobalBase && addr < GlobalBase+int64(len(m.globals)):
		return m.globals[addr-GlobalBase], nil
	case addr >= HeapBase && addr < HeapBase+int64(len(m.heap)):
		return m.heap[addr-HeapBase], nil
	case addr >= m.sp && addr < StackTop:
		return m.stack[StackTop-1-addr], nil
	case addr == NullAddr:
		return Val{}, fmt.Errorf("null pointer load")
	default:
		return Val{}, fmt.Errorf("load from unmapped address %#x", addr)
	}
}

// store writes the cell at addr.
func (m *memory) store(addr int64, v Val) error {
	switch {
	case addr >= GlobalBase && addr < GlobalBase+int64(len(m.globals)):
		m.globals[addr-GlobalBase] = v
		return nil
	case addr >= HeapBase && addr < HeapBase+int64(len(m.heap)):
		m.heap[addr-HeapBase] = v
		return nil
	case addr >= m.sp && addr < StackTop:
		m.stack[StackTop-1-addr] = v
		return nil
	case addr == NullAddr:
		return fmt.Errorf("null pointer store")
	default:
		return fmt.Errorf("store to unmapped address %#x", addr)
	}
}

// alloca reserves n stack cells and returns the base address.
func (m *memory) alloca(n int64) (int64, error) {
	if n < 0 {
		return 0, fmt.Errorf("negative alloca size %d", n)
	}
	newSP := m.sp - n
	if StackTop-newSP > m.stackLimit {
		return 0, fmt.Errorf("stack overflow (%d words, budget %d): %w", StackTop-newSP, m.stackLimit, ErrMemLimit)
	}
	for int64(len(m.stack)) < StackTop-newSP {
		m.stack = append(m.stack, Val{})
	}
	// Zero the reused region (stack frames are reused across calls).
	for a := newSP; a < m.sp; a++ {
		m.stack[StackTop-1-a] = Val{}
	}
	m.sp = newSP
	return newSP, nil
}

// heapAlloc reserves n heap cells (never freed) and returns the base.
func (m *memory) heapAlloc(n int64) (int64, error) {
	if n < 0 {
		return 0, fmt.Errorf("negative alloc size %d", n)
	}
	base := HeapBase + int64(len(m.heap))
	if int64(len(m.heap))+n > m.heapLimit {
		return 0, fmt.Errorf("heap exhausted (%d cells, budget %d): %w", int64(len(m.heap))+n, m.heapLimit, ErrMemLimit)
	}
	m.heap = append(m.heap, make([]Val, n)...)
	return base, nil
}
