package interp

import (
	"context"
	"errors"
	"testing"
	"time"

	"loopapalooza/internal/analysis"
	"loopapalooza/internal/lang"
)

func compileForBudget(t *testing.T, src string) *analysis.ModuleInfo {
	t.Helper()
	m, err := lang.Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := analysis.AnalyzeModule(m)
	if err != nil {
		t.Fatal(err)
	}
	return info
}

const spinSrc = `func main() int { while (true) { } return 0; }`

func TestStepLimitTyped(t *testing.T) {
	info := compileForBudget(t, spinSrc)
	_, err := New(info, Config{MaxSteps: 1000}).Run("main")
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("errors.Is(err, ErrStepLimit) = false for %v", err)
	}
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("errors.As LimitError failed for %v", err)
	}
	if le.Kind != ErrStepLimit || le.Limit != 1000 || le.Step <= 1000 {
		t.Errorf("LimitError = %+v, want step-limit kind with budget 1000", le)
	}
	// The other classes must not match.
	for _, wrong := range []error{ErrMemLimit, ErrDeadline, ErrCanceled, ErrRuntime} {
		if errors.Is(err, wrong) {
			t.Errorf("step-limit error also matches %v", wrong)
		}
	}
}

func TestHeapBudgetTyped(t *testing.T) {
	info := compileForBudget(t, `
func main() int {
	var p *int = alloc(1000);
	return *p;
}`)
	_, err := New(info, Config{MaxHeapCells: 64}).Run("main")
	if !errors.Is(err, ErrMemLimit) {
		t.Fatalf("errors.Is(err, ErrMemLimit) = false for %v", err)
	}
	if errors.Is(err, ErrRuntime) || errors.Is(err, ErrStepLimit) {
		t.Errorf("mem-limit error matches a foreign class: %v", err)
	}
	// Under the default budget the same program completes.
	if _, err := New(info, Config{}).Run("main"); err != nil {
		t.Errorf("default heap budget: %v", err)
	}
}

func TestStackOverflowIsMemLimit(t *testing.T) {
	info := compileForBudget(t, `
func grow(n int) int {
	var pad [4096]int;
	pad[0] = n;
	if (n <= 0) { return pad[0]; }
	return grow(n - 1) + pad[0];
}
func main() int { return grow(100000); }`)
	_, err := New(info, Config{}).Run("main")
	if !errors.Is(err, ErrMemLimit) {
		t.Fatalf("stack overflow should classify as ErrMemLimit, got %v", err)
	}
}

func TestDeadlineTyped(t *testing.T) {
	info := compileForBudget(t, spinSrc)
	_, err := New(info, Config{Deadline: time.Now().Add(-time.Second)}).Run("main")
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("errors.Is(err, ErrDeadline) = false for %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("deadline error should also match context.DeadlineExceeded: %v", err)
	}
}

func TestContextDeadlineTyped(t *testing.T) {
	info := compileForBudget(t, spinSrc)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := New(info, Config{Ctx: ctx}).Run("main")
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("context deadline should classify as ErrDeadline, got %v", err)
	}
}

// cancelHooks cancels a context after a fixed number of ticks — a
// deterministic mid-run cancellation.
type cancelHooks struct {
	NopHooks
	after  int64
	ticks  int64
	cancel context.CancelFunc
}

func (c *cancelHooks) Tick(n int64) {
	c.ticks += n
	if c.ticks >= c.after {
		c.cancel()
	}
}

func TestMidRunCancelTyped(t *testing.T) {
	info := compileForBudget(t, spinSrc)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h := &cancelHooks{after: 10_000, cancel: cancel}
	_, err := New(info, Config{Ctx: ctx, Hooks: h}).Run("main")
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("errors.Is(err, ErrCanceled) = false for %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("canceled error should also match context.Canceled: %v", err)
	}
	// Cancellation is amortized: it must land within one poll interval of
	// the trigger.
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("errors.As LimitError failed for %v", err)
	}
	if le.Step < h.after || le.Step > h.after+2*PollInterval {
		t.Errorf("canceled at step %d, want within a poll interval of %d", le.Step, h.after)
	}
}

func TestRuntimeFaultTyped(t *testing.T) {
	info := compileForBudget(t, `
func main() int {
	var z int = 0;
	return 1 / z;
}`)
	_, err := New(info, Config{}).Run("main")
	if !errors.Is(err, ErrRuntime) {
		t.Fatalf("errors.Is(err, ErrRuntime) = false for %v", err)
	}
	var re *RuntimeError
	if !errors.As(err, &re) || re.Msg == "" {
		t.Fatalf("errors.As RuntimeError failed for %v", err)
	}
}

// TestBudgetFailureLeavesModuleReusable: a budget-tripped run must not
// corrupt the shared analysis — a fresh interpreter over the same module
// still produces the correct result.
func TestBudgetFailureLeavesModuleReusable(t *testing.T) {
	info := compileForBudget(t, `
const N = 64;
var a [N]int;
func main() int {
	var i int;
	for (i = 0; i < N; i = i + 1) { a[i] = i; }
	return a[N-1];
}`)
	if _, err := New(info, Config{MaxSteps: 10}).Run("main"); !errors.Is(err, ErrStepLimit) {
		t.Fatalf("want step-limit, got %v", err)
	}
	res, err := New(info, Config{}).Run("main")
	if err != nil {
		t.Fatalf("fresh run after budget failure: %v", err)
	}
	if res.Ret.I != 63 {
		t.Errorf("ret = %d, want 63", res.Ret.I)
	}
}
