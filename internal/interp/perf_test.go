package interp

import (
	"testing"

	"loopapalooza/internal/analysis"
	"loopapalooza/internal/lang"
)

// dispatchSrc is a small compute kernel exercising the interpreter's
// dispatch loop: integer and float arithmetic, memory traffic, calls, and
// nested loops — no I/O, so NopHooks measures raw dispatch cost.
const dispatchSrc = `
const N = 64;
var a [N]int;
var b [N]float;

func mix(x int, y int) int {
	return (x * 31 + y) % 8191;
}

func main() int {
	var acc int = 0;
	var f float = 0.0;
	var r int;
	for (r = 0; r < 200; r = r + 1) {
		var i int;
		for (i = 0; i < N; i = i + 1) {
			a[i] = mix(a[i], i + r);
			b[i] = b[i] * 0.5 + float(a[i]) * 0.25;
			acc = mix(acc, a[i]);
		}
		f = f + b[r % N];
	}
	return acc + int(f);
}
`

// BenchmarkInterpDispatch measures pure interpreter throughput (flat
// register frames, pooled activation records, batched ticks) with no
// instrumentation attached. The custom metric is dynamic IR instructions
// per second.
func BenchmarkInterpDispatch(b *testing.B) {
	m, err := lang.Compile("dispatch", dispatchSrc)
	if err != nil {
		b.Fatal(err)
	}
	info, err := analysis.AnalyzeModule(m)
	if err != nil {
		b.Fatal(err)
	}
	var steps int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := New(info, Config{})
		res, err := in.Run("main")
		if err != nil {
			b.Fatal(err)
		}
		steps += res.Steps
	}
	b.StopTimer()
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "instrs/sec")
	}
	b.ReportMetric(float64(steps)/float64(b.N), "instrs/run")
}
