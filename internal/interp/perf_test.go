package interp_test

import (
	"testing"

	"loopapalooza/internal/analysis"
	"loopapalooza/internal/bytecode"
	"loopapalooza/internal/interp"
	"loopapalooza/internal/lang"
)

// dispatchSrc is a small compute kernel exercising the interpreter's
// dispatch loop: integer and float arithmetic, memory traffic, calls, and
// nested loops — no I/O, so NopHooks measures raw dispatch cost.
const dispatchSrc = `
const N = 64;
var a [N]int;
var b [N]float;

func mix(x int, y int) int {
	return (x * 31 + y) % 8191;
}

func main() int {
	var acc int = 0;
	var f float = 0.0;
	var r int;
	for (r = 0; r < 200; r = r + 1) {
		var i int;
		for (i = 0; i < N; i = i + 1) {
			a[i] = mix(a[i], i + r);
			b[i] = b[i] * 0.5 + float(a[i]) * 0.25;
			acc = mix(acc, a[i]);
		}
		f = f + b[r % N];
	}
	return acc + int(f);
}
`

func dispatchInfo(b *testing.B) *analysis.ModuleInfo {
	b.Helper()
	m, err := lang.Compile("dispatch", dispatchSrc)
	if err != nil {
		b.Fatal(err)
	}
	info, err := analysis.AnalyzeModule(m)
	if err != nil {
		b.Fatal(err)
	}
	return info
}

func reportThroughput(b *testing.B, steps int64) {
	b.Helper()
	b.StopTimer()
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "instrs/sec")
	}
	b.ReportMetric(float64(steps)/float64(b.N), "instrs/run")
}

// BenchmarkInterpDispatch measures pure execution throughput with no
// instrumentation attached, for both engines. The bytecode sub-benchmark
// is the production configuration — one VM reused across runs via Reset,
// which the steady-state allocation test below pins at zero — while the
// treewalk sub-benchmark keeps the oracle's original shape (a fresh
// interpreter per run). The custom metric is dynamic IR instructions per
// second.
func BenchmarkInterpDispatch(b *testing.B) {
	info := dispatchInfo(b)

	b.Run("bytecode", func(b *testing.B) {
		prog, err := bytecode.For(info)
		if err != nil {
			b.Fatal(err)
		}
		vm := bytecode.NewVM(prog, interp.Config{})
		var steps int64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			vm.Reset()
			res, err := vm.Run("main")
			if err != nil {
				b.Fatal(err)
			}
			steps += res.Steps
		}
		reportThroughput(b, steps)
	})

	b.Run("treewalk", func(b *testing.B) {
		var steps int64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			in := interp.New(info, interp.Config{})
			res, err := in.Run("main")
			if err != nil {
				b.Fatal(err)
			}
			steps += res.Steps
		}
		reportThroughput(b, steps)
	})
}

// TestDispatchSteadyStateAllocs pins the production configuration —
// a reused bytecode VM — at zero allocations per run: register frames,
// observation buffers, and the heap image all come from the VM's pools
// after the first run.
func TestDispatchSteadyStateAllocs(t *testing.T) {
	m, err := lang.Compile("dispatch", dispatchSrc)
	if err != nil {
		t.Fatal(err)
	}
	info, err := analysis.AnalyzeModule(m)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := bytecode.For(info)
	if err != nil {
		t.Fatal(err)
	}
	vm := bytecode.NewVM(prog, interp.Config{})
	// Warm the pools: the first run grows frames and scratch buffers.
	vm.Reset()
	if _, err := vm.Run("main"); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		vm.Reset()
		if _, err := vm.Run("main"); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state dispatch allocates %.1f times per run, want 0", allocs)
	}
}
