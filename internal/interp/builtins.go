package interp

import (
	"fmt"
	"io"
	"math"

	"loopapalooza/internal/ir"
)

// RandSeed is the initial state of the deterministic guest rand() LCG.
// Both execution engines start from it so rand-driven programs replay
// identically under either engine.
const RandSeed uint64 = 0x2545F4914F6CDD1D

// EvalBuiltin evaluates the builtin name against the engine-owned library
// state: the simulated memory, the output stream, and the deterministic
// rand state. It is the single implementation shared by the tree-walking
// interpreter and the bytecode VM, so builtin semantics (allocation,
// print formatting, the rand LCG) cannot drift between engines. The
// caller has already charged the call tick and the registry Cost, and has
// validated the name against ir.BuiltinAttr. Memory-budget failures wrap
// ErrMemLimit; any other error is a guest fault described by its text.
func EvalBuiltin(name string, args []Val, mem *Memory, out io.Writer, randState *uint64) (Val, error) {
	switch name {
	case "sqrt":
		return FloatVal(math.Sqrt(args[0].F)), nil
	case "sin":
		return FloatVal(math.Sin(args[0].F)), nil
	case "cos":
		return FloatVal(math.Cos(args[0].F)), nil
	case "exp":
		return FloatVal(math.Exp(args[0].F)), nil
	case "log":
		return FloatVal(math.Log(args[0].F)), nil
	case "pow":
		return FloatVal(math.Pow(args[0].F, args[1].F)), nil
	case "floor":
		return FloatVal(math.Floor(args[0].F)), nil
	case "fabs":
		return FloatVal(math.Abs(args[0].F)), nil
	case "fmin":
		return FloatVal(math.Min(args[0].F, args[1].F)), nil
	case "fmax":
		return FloatVal(math.Max(args[0].F, args[1].F)), nil
	case "abs":
		v := args[0].I
		if v < 0 {
			v = -v
		}
		return IntVal(v), nil
	case "min":
		a, b := args[0].I, args[1].I
		if b < a {
			a = b
		}
		return IntVal(a), nil
	case "max":
		a, b := args[0].I, args[1].I
		if b > a {
			a = b
		}
		return IntVal(a), nil
	case "alloc", "allocf":
		base, err := mem.HeapAlloc(args[0].I)
		if err != nil {
			return Val{}, err
		}
		return PtrVal(base), nil
	case "rand":
		// Deterministic 64-bit LCG (Knuth), hidden library state:
		// exactly the kind of non-re-entrant function fn2 excludes.
		*randState = *randState*6364136223846793005 + 1442695040888963407
		return IntVal(int64(*randState>>33) & 0x7fffffff), nil
	case "srand":
		*randState = uint64(args[0].I)*2862933555777941757 + 3037000493
		return Val{}, nil
	case "print_i64":
		fmt.Fprintf(out, "%d\n", args[0].I)
		return Val{}, nil
	case "print_f64":
		fmt.Fprintf(out, "%g\n", args[0].F)
		return Val{}, nil
	}
	return Val{}, fmt.Errorf("builtin %q not implemented", name)
}

// execBuiltin evaluates a builtin call. Builtins charge their registry Cost
// in dynamic instructions, standing in for their uninstrumented bodies
// (paper §III-D).
func (in *Interp) execBuiltin(fr *frame, i *ir.Instr) Val {
	bi, ok := ir.BuiltinAttr(i.Builtin)
	if !ok {
		in.fail("unknown builtin %q", i.Builtin)
	}
	// The call instruction itself already cost 1 tick; add the body.
	in.tick(bi.Cost)
	var buf [2]Val
	n := len(i.Args)
	if n > len(buf) {
		n = len(buf) // no registered builtin takes more than two args
	}
	for k := 0; k < n; k++ {
		buf[k] = in.val(fr, i.Args[k])
	}
	ret, err := EvalBuiltin(i.Builtin, buf[:n], in.mem, in.out, &in.randState)
	if err != nil {
		in.failMem(err)
	}
	return ret
}
