package interp

import (
	"fmt"
	"math"

	"loopapalooza/internal/ir"
)

// execBuiltin evaluates a builtin call. Builtins charge their registry Cost
// in dynamic instructions, standing in for their uninstrumented bodies
// (paper §III-D).
func (in *Interp) execBuiltin(fr *frame, i *ir.Instr) Val {
	bi, ok := ir.BuiltinAttr(i.Builtin)
	if !ok {
		in.fail("unknown builtin %q", i.Builtin)
	}
	// The call instruction itself already cost 1 tick; add the body.
	in.tick(bi.Cost)
	arg := func(k int) Val { return in.val(fr, i.Args[k]) }
	switch i.Builtin {
	case "sqrt":
		return FloatVal(math.Sqrt(arg(0).F))
	case "sin":
		return FloatVal(math.Sin(arg(0).F))
	case "cos":
		return FloatVal(math.Cos(arg(0).F))
	case "exp":
		return FloatVal(math.Exp(arg(0).F))
	case "log":
		return FloatVal(math.Log(arg(0).F))
	case "pow":
		return FloatVal(math.Pow(arg(0).F, arg(1).F))
	case "floor":
		return FloatVal(math.Floor(arg(0).F))
	case "fabs":
		return FloatVal(math.Abs(arg(0).F))
	case "fmin":
		return FloatVal(math.Min(arg(0).F, arg(1).F))
	case "fmax":
		return FloatVal(math.Max(arg(0).F, arg(1).F))
	case "abs":
		v := arg(0).I
		if v < 0 {
			v = -v
		}
		return IntVal(v)
	case "min":
		a, b := arg(0).I, arg(1).I
		if b < a {
			a = b
		}
		return IntVal(a)
	case "max":
		a, b := arg(0).I, arg(1).I
		if b > a {
			a = b
		}
		return IntVal(a)
	case "alloc", "allocf":
		base, err := in.mem.heapAlloc(arg(0).I)
		if err != nil {
			in.failMem(err)
		}
		return PtrVal(base)
	case "rand":
		// Deterministic 64-bit LCG (Knuth), hidden library state:
		// exactly the kind of non-re-entrant function fn2 excludes.
		in.randState = in.randState*6364136223846793005 + 1442695040888963407
		return IntVal(int64(in.randState>>33) & 0x7fffffff)
	case "srand":
		in.randState = uint64(arg(0).I)*2862933555777941757 + 3037000493
		return Val{}
	case "print_i64":
		fmt.Fprintf(in.out, "%d\n", arg(0).I)
		return Val{}
	case "print_f64":
		fmt.Fprintf(in.out, "%g\n", arg(0).F)
		return Val{}
	}
	in.fail("builtin %q not implemented", i.Builtin)
	return Val{}
}
