package interp

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"loopapalooza/internal/analysis"
	"loopapalooza/internal/ir"
)

// Config controls one execution.
type Config struct {
	// Out receives print_* output. Nil discards it.
	Out io.Writer
	// MaxSteps bounds the dynamic instruction count (0 = default).
	MaxSteps int64
	// MaxHeapCells bounds the simulated heap, in 64-bit cells
	// (0 = DefaultHeapWords). Exceeding it fails the run with ErrMemLimit.
	MaxHeapCells int64
	// Ctx, when non-nil, cancels the run: the interpreter polls it every
	// PollInterval steps and fails with ErrCanceled (or ErrDeadline when
	// the context carries a deadline that expired).
	Ctx context.Context
	// Deadline, when nonzero, bounds wall-clock time; exceeding it fails
	// the run with ErrDeadline. Polled together with Ctx.
	Deadline time.Time
	// Hooks receives instrumentation events. Nil disables them.
	Hooks Hooks
}

// DefaultMaxSteps bounds runaway executions.
const DefaultMaxSteps = 2_000_000_000

// MaxCallDepth bounds guest call nesting. Guest calls recurse on the host
// stack, so without this cap a deeply recursive guest program would
// exhaust the Go stack long before DefaultMaxSteps trips. Exceeding it
// fails the run with ErrMemLimit (it is a stack-space budget).
const MaxCallDepth = 10_000

// PollInterval is the step granularity of cancellation/deadline polling:
// budgets stay amortized so the hot interpreter loop pays one integer
// comparison per instruction, not a time.Now or channel check.
const PollInterval = 32 * 1024

// Result summarizes one execution.
type Result struct {
	// Ret is main's return value.
	Ret Val
	// Steps is the dynamic IR instruction count (the paper's sequential
	// time metric).
	Steps int64
}

// Interp executes one analyzed module.
type Interp struct {
	info  *analysis.ModuleInfo
	mod   *ir.Module
	hooks Hooks
	out   io.Writer

	mem        *Memory
	globalAddr map[*ir.Global]int64

	clock     int64
	pending   int64 // ticks accumulated since the last hooks.Tick flush
	maxSteps  int64
	depth     int // live guest call nesting, capped at MaxCallDepth
	ctx       context.Context
	deadline  time.Time
	nextPoll  int64
	randState uint64

	// initErr defers module-shape faults found during New (which cannot
	// fail) to the first Run call.
	initErr error

	// Zero-allocation steady state: returned frames are reused by later
	// calls, and the loop-event observation slices are scratch buffers
	// (hooks must not retain them — see Hooks).
	frames  []*frame
	obsBuf  []LCDObs
	initBuf []Val
}

// runtimeErr carries execution errors through panic/recover.
type runtimeErr struct{ err error }

// fail aborts the run with a guest-program fault (ErrRuntime class).
func (in *Interp) fail(format string, args ...any) {
	in.failErr(&RuntimeError{Msg: fmt.Sprintf(format, args...), Step: in.clock})
}

// failErr aborts the run with an already-classified error.
func (in *Interp) failErr(err error) {
	panic(runtimeErr{err: err})
}

// failMem aborts the run with a memory-subsystem error, preserving the
// budget classification when present and downgrading everything else to a
// runtime fault.
func (in *Interp) failMem(err error) {
	if errors.Is(err, ErrMemLimit) {
		in.failErr(fmt.Errorf("%w (at step %d)", err, in.clock))
	}
	in.fail("%v", err)
}

// New prepares an interpreter for an analyzed module: it lays out globals,
// applies initializers, and ensures every function has dense register
// numbering for the flat frames.
func New(info *analysis.ModuleInfo, cfg Config) *Interp {
	in := &Interp{
		info:       info,
		mod:        info.Mod,
		hooks:      cfg.Hooks,
		out:        cfg.Out,
		globalAddr: map[*ir.Global]int64{},
		maxSteps:   cfg.MaxSteps,
		ctx:        cfg.Ctx,
		deadline:   cfg.Deadline,
		randState:  RandSeed,
	}
	// The analysis pipeline numbers every function; cover hand-built
	// modules (tests) that skip it. Single-threaded by construction —
	// concurrent executions always share a ModuleInfo that was numbered
	// once, up front, by AnalyzeModule.
	for _, f := range in.mod.Funcs {
		if !f.Numbered() {
			f.NumberValues()
		}
	}
	if in.hooks == nil {
		in.hooks = NopHooks{}
	}
	if in.out == nil {
		in.out = io.Discard
	}
	if in.maxSteps == 0 {
		in.maxSteps = DefaultMaxSteps
	}
	// Arm amortized polling only when there is something to poll, so
	// budget-free runs pay nothing beyond the step-limit comparison.
	if in.ctx != nil || !in.deadline.IsZero() {
		in.nextPoll = PollInterval
	} else {
		in.nextPoll = math.MaxInt64
	}
	// The global segment is allocated eagerly, so bound it by the same
	// budget as the heap: an adversarial (or fuzzer-generated) module
	// cannot make New allocate unbounded host memory. Overflow-safe: per-
	// global sizes are validated by ir.Verify, but hand-built modules may
	// skip it, so saturate instead of trusting the sum.
	globalCap := cfg.MaxHeapCells
	if globalCap <= 0 {
		globalCap = DefaultHeapWords
	}
	total := int64(0)
	for _, g := range in.mod.Globals {
		in.globalAddr[g] = GlobalBase + total
		if g.Size < 0 || total > globalCap-g.Size {
			in.initErr = fmt.Errorf("globals exceed the memory budget: %w",
				&LimitError{Kind: ErrMemLimit, Limit: globalCap})
			in.mem = NewMemory(0, cfg.MaxHeapCells)
			return in
		}
		total += g.Size
	}
	in.mem = NewMemory(total, cfg.MaxHeapCells)
	for _, g := range in.mod.Globals {
		base := in.globalAddr[g] - GlobalBase
		for i, v := range g.InitInt {
			k := g.Elem.Kind()
			in.mem.SetGlobal(base+int64(i), Val{K: k, I: v})
		}
		for i, v := range g.InitFloat {
			in.mem.SetGlobal(base+int64(i), FloatVal(v))
		}
	}
	return in
}

// Run executes fn ("main" by convention) with the given arguments and
// returns its result and the dynamic instruction count.
func (in *Interp) Run(fnName string, args ...Val) (res Result, err error) {
	if in.initErr != nil {
		return Result{}, fmt.Errorf("interp: %w", in.initErr)
	}
	fn := in.mod.Func(fnName)
	if fn == nil {
		return Result{}, fmt.Errorf("interp: no function %q", fnName)
	}
	if len(args) != len(fn.Params) {
		return Result{}, fmt.Errorf("interp: %s takes %d args, got %d", fnName, len(fn.Params), len(args))
	}
	defer func() {
		if r := recover(); r != nil {
			re, ok := r.(runtimeErr)
			if !ok {
				panic(r)
			}
			// The unwind skipped the call-site decrements; reset so a
			// reused interpreter starts from a clean depth.
			in.depth = 0
			err = fmt.Errorf("interp: %w", re.err)
		}
	}()
	ret := in.call(fn, args)
	in.flushTicks()
	return Result{Ret: ret, Steps: in.clock}, nil
}

// Clock returns the current dynamic instruction count.
func (in *Interp) Clock() int64 { return in.clock }

func (in *Interp) tick(n int64) {
	in.clock += n
	in.pending += n
	if in.clock > in.maxSteps {
		in.failErr(&LimitError{Kind: ErrStepLimit, Limit: in.maxSteps, Step: in.clock})
	}
	if in.clock >= in.nextPoll {
		in.poll()
	}
}

// flushTicks forwards the accumulated instruction count to the hooks. It
// runs before every other hook event and at the end of the run, so hooks
// observe a clock that is exact at every event boundary while the per-
// instruction hot path stays free of dynamic dispatch.
func (in *Interp) flushTicks() {
	if in.pending != 0 {
		in.hooks.Tick(in.pending)
		in.pending = 0
	}
}

// poll performs the amortized cancellation and deadline checks.
func (in *Interp) poll() {
	in.nextPoll = in.clock + PollInterval
	in.flushTicks()
	if in.ctx != nil {
		if err := in.ctx.Err(); err != nil {
			kind := ErrCanceled
			if errors.Is(err, context.DeadlineExceeded) {
				kind = ErrDeadline
			}
			in.failErr(&LimitError{Kind: kind, Step: in.clock})
		}
	}
	if !in.deadline.IsZero() && time.Now().After(in.deadline) {
		in.failErr(&LimitError{Kind: ErrDeadline, Step: in.clock})
	}
}

// frame is one activation record. Registers are indexed by the dense slots
// Function.NumberValues assigned (params first, then result-producing
// instructions).
type frame struct {
	fn       *ir.Function
	regs     []Val
	defTicks []int64
	savedSP  int64
	loops    []*analysis.LoopMeta // loop instances entered in this frame
	fi       *analysis.FuncInfo
}

func (in *Interp) val(fr *frame, v ir.Value) Val {
	switch x := v.(type) {
	case *ir.IntConst:
		return IntVal(x.V)
	case *ir.FloatConst:
		return FloatVal(x.V)
	case *ir.BoolConst:
		return BoolVal(x.V)
	case *ir.NullConst:
		return PtrVal(NullAddr)
	case *ir.Global:
		return PtrVal(in.globalAddr[x])
	case *ir.Param:
		return fr.regs[x.Index]
	case *ir.Instr:
		return fr.regs[x.Slot]
	}
	in.fail("unknown value %T", v)
	return Val{}
}

// defTickOf returns when v became available, or -1 for values available at
// iteration start (constants, params, loop-invariants).
func (in *Interp) defTickOf(fr *frame, v ir.Value) int64 {
	if i, ok := v.(*ir.Instr); ok {
		return fr.defTicks[i.Slot]
	}
	return -1
}

// newFrame readies an activation record for fn, reusing a returned frame
// when one is available. Register and def-tick slots are zeroed.
func (in *Interp) newFrame(fn *ir.Function) *frame {
	n := fn.NumRegs()
	var fr *frame
	if l := len(in.frames); l > 0 {
		fr = in.frames[l-1]
		in.frames = in.frames[:l-1]
		if cap(fr.regs) < n {
			fr.regs = make([]Val, n)
			fr.defTicks = make([]int64, n)
		} else {
			fr.regs = fr.regs[:n]
			fr.defTicks = fr.defTicks[:n]
			clear(fr.regs)
			clear(fr.defTicks)
		}
		fr.loops = fr.loops[:0]
	} else {
		fr = &frame{regs: make([]Val, n), defTicks: make([]int64, n)}
	}
	fr.fn, fr.savedSP, fr.fi = fn, in.mem.SP, in.info.Funcs[fn]
	return fr
}

// freeFrame returns a finished frame to the pool.
func (in *Interp) freeFrame(fr *frame) { in.frames = append(in.frames, fr) }

func (in *Interp) call(fn *ir.Function, args []Val) Val {
	if in.depth++; in.depth > MaxCallDepth {
		in.failErr(&LimitError{Kind: ErrMemLimit, Limit: MaxCallDepth, Step: in.clock})
	}
	fr := in.newFrame(fn)
	copy(fr.regs, args)
	ret := in.exec(fr)
	in.freeFrame(fr)
	in.depth--
	return ret
}

// exec runs fr's function to completion and returns its result.
func (in *Interp) exec(fr *frame) Val {
	fn := fr.fn
	cur := fn.Entry()
	var prev *ir.Block
	for {
		// Loop events fire on the edge BEFORE the phi copies commit:
		// back-edge observations must read the producers' definition
		// times from the just-finished iteration, not the refreshed
		// phi timestamps.
		if fr.fi != nil {
			in.loopEvents(fr, cur, prev)
		}
		// Phi copies: evaluate all incoming values first (parallel
		// assignment semantics), then commit.
		nPhi := cur.FirstNonPhi()
		if nPhi > 0 && prev != nil {
			in.execPhis(fr, cur, prev, nPhi)
		}

		next, retVal, returned := in.execBody(fr, cur, nPhi)
		if returned {
			// Leaving the function exits any loops still active in
			// this frame.
			if len(fr.loops) > 0 {
				in.flushTicks()
				for i := len(fr.loops) - 1; i >= 0; i-- {
					in.hooks.ExitLoop(fr.loops[i])
				}
			}
			in.mem.SP = fr.savedSP
			return retVal
		}
		prev, cur = cur, next
	}
}

// execPhis performs the parallel phi assignment for an edge prev->cur.
func (in *Interp) execPhis(fr *frame, cur, prev *ir.Block, nPhi int) {
	const maxStackPhis = 8
	var buf [maxStackPhis]Val
	var tmp []Val
	if nPhi <= maxStackPhis {
		tmp = buf[:nPhi]
	} else {
		tmp = make([]Val, nPhi)
	}
	for k := 0; k < nPhi; k++ {
		phi := cur.Instrs[k]
		inc := phi.PhiIncoming(prev)
		if inc == nil {
			in.fail("phi %%%s has no incoming from .%s", phi.Nm, prev.Name)
		}
		tmp[k] = in.val(fr, inc)
	}
	for k := 0; k < nPhi; k++ {
		slot := cur.Instrs[k].Slot
		fr.regs[slot] = tmp[k]
		fr.defTicks[slot] = in.clock
		in.tick(1)
	}
}

// loopEvents fires Enter/Iterate/Exit events for a control transfer
// prev->cur within fr's function.
func (in *Interp) loopEvents(fr *frame, cur, prev *ir.Block) {
	// Exits: pop loops that do not contain the target.
	for len(fr.loops) > 0 {
		top := fr.loops[len(fr.loops)-1]
		if top.Loop.Contains(cur) {
			break
		}
		in.flushTicks()
		in.hooks.ExitLoop(top)
		fr.loops = fr.loops[:len(fr.loops)-1]
	}
	var lm *analysis.LoopMeta
	if mb := fr.fi.MetaByBlock; cur.Index < len(mb) {
		lm = mb[cur.Index]
	} else {
		lm = fr.fi.HeaderMeta[cur] // hand-built FuncInfo without the dense index
	}
	if lm == nil {
		return
	}
	if len(fr.loops) > 0 && fr.loops[len(fr.loops)-1] == lm {
		// Back edge: observe the next iteration's LCD values from the
		// latch incomings (the phis have not been reassigned yet, so
		// producer timestamps belong to the finished iteration). The
		// observation slice is scratch, valid only during the call.
		if cap(in.obsBuf) < len(lm.Observed) {
			in.obsBuf = make([]LCDObs, len(lm.Observed))
		}
		obs := in.obsBuf[:len(lm.Observed)]
		for k, inc := range lm.ObservedLatch {
			obs[k] = LCDObs{Val: in.val(fr, inc), DefTick: in.defTickOf(fr, inc)}
		}
		in.flushTicks()
		in.hooks.IterLoop(lm, in.mem.SP, obs)
		return
	}
	// First arrival: loop entry. The iteration-zero values are the phi
	// incomings along the entry edge. Scratch slice, as above.
	fr.loops = append(fr.loops, lm)
	if cap(in.initBuf) < len(lm.Observed) {
		in.initBuf = make([]Val, len(lm.Observed))
	}
	init := in.initBuf[:len(lm.Observed)]
	clear(init)
	for k, phi := range lm.Observed {
		if prev != nil {
			if inc := phi.PhiIncoming(prev); inc != nil {
				init[k] = in.val(fr, inc)
			}
		}
	}
	in.flushTicks()
	in.hooks.EnterLoop(lm, in.mem.SP, init)
}

// execBody runs the non-phi instructions of a block. It returns the next
// block, or the return value when the function returns.
func (in *Interp) execBody(fr *frame, b *ir.Block, from int) (next *ir.Block, ret Val, returned bool) {
	for k := from; k < len(b.Instrs); k++ {
		i := b.Instrs[k]
		switch i.Op {
		case ir.OpJmp:
			in.tick(1)
			return i.Blocks[0], Val{}, false
		case ir.OpBr:
			in.tick(1)
			if in.val(fr, i.Args[0]).I != 0 {
				return i.Blocks[0], Val{}, false
			}
			return i.Blocks[1], Val{}, false
		case ir.OpRet:
			in.tick(1)
			if len(i.Args) == 1 {
				return nil, in.val(fr, i.Args[0]), true
			}
			return nil, Val{}, true
		default:
			in.execInstr(fr, i)
		}
	}
	in.fail("block .%s fell off the end", b.Name)
	return nil, Val{}, false
}

func (in *Interp) setReg(fr *frame, i *ir.Instr, v Val) {
	fr.regs[i.Slot] = v
	fr.defTicks[i.Slot] = in.clock
}

func (in *Interp) execInstr(fr *frame, i *ir.Instr) {
	in.tick(1)
	switch i.Op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr:
		a, b := in.val(fr, i.Args[0]), in.val(fr, i.Args[1])
		in.setReg(fr, i, in.intArith(i.Op, a, b))
	case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv:
		a, b := in.val(fr, i.Args[0]), in.val(fr, i.Args[1])
		in.setReg(fr, i, in.floatArith(i.Op, a.F, b.F))
	case ir.OpNeg:
		in.setReg(fr, i, IntVal(-in.val(fr, i.Args[0]).I))
	case ir.OpFNeg:
		in.setReg(fr, i, FloatVal(-in.val(fr, i.Args[0]).F))
	case ir.OpNot:
		in.setReg(fr, i, BoolVal(in.val(fr, i.Args[0]).I == 0))
	case ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
		in.setReg(fr, i, in.compare(i.Op, in.val(fr, i.Args[0]), in.val(fr, i.Args[1])))
	case ir.OpIntToFloat:
		in.setReg(fr, i, FloatVal(float64(in.val(fr, i.Args[0]).I)))
	case ir.OpFloatToInt:
		in.setReg(fr, i, IntVal(int64(in.val(fr, i.Args[0]).F)))
	case ir.OpAlloca:
		n := in.val(fr, i.Args[0]).I
		addr, err := in.mem.Alloca(n)
		if err != nil {
			in.failMem(err)
		}
		in.setReg(fr, i, PtrVal(addr))
	case ir.OpLoad:
		addr := in.val(fr, i.Args[0]).I
		in.flushTicks()
		in.hooks.Load(addr)
		v, err := in.mem.Load(addr)
		if err != nil {
			in.failMem(err)
		}
		// Retag loads through typed pointers so uninitialized cells
		// read back as zero values of the right kind.
		if want := i.Ty.Kind(); v.K == ir.KVoid && want != ir.KVoid {
			v.K = want
		}
		in.setReg(fr, i, v)
	case ir.OpStore:
		addr := in.val(fr, i.Args[0]).I
		in.flushTicks()
		in.hooks.Store(addr)
		if err := in.mem.Store(addr, in.val(fr, i.Args[1])); err != nil {
			in.failMem(err)
		}
	case ir.OpAddPtr:
		base := in.val(fr, i.Args[0])
		idx := in.val(fr, i.Args[1])
		in.setReg(fr, i, PtrVal(base.I+idx.I))
	case ir.OpCall:
		in.execCall(fr, i)
	default:
		in.fail("unhandled opcode %s", i.Op)
	}
}

func (in *Interp) intArith(op ir.Op, a, b Val) Val {
	switch op {
	case ir.OpAdd:
		return IntVal(a.I + b.I)
	case ir.OpSub:
		return IntVal(a.I - b.I)
	case ir.OpMul:
		return IntVal(a.I * b.I)
	case ir.OpDiv:
		if b.I == 0 {
			in.fail("integer division by zero")
		}
		if a.I == -1<<63 && b.I == -1 {
			return IntVal(-1 << 63)
		}
		return IntVal(a.I / b.I)
	case ir.OpRem:
		if b.I == 0 {
			in.fail("integer remainder by zero")
		}
		if a.I == -1<<63 && b.I == -1 {
			return IntVal(0)
		}
		return IntVal(a.I % b.I)
	case ir.OpAnd:
		return IntVal(a.I & b.I)
	case ir.OpOr:
		return IntVal(a.I | b.I)
	case ir.OpXor:
		return IntVal(a.I ^ b.I)
	case ir.OpShl:
		return IntVal(a.I << (uint64(b.I) & 63))
	case ir.OpShr:
		return IntVal(a.I >> (uint64(b.I) & 63))
	}
	in.fail("bad int op %s", op)
	return Val{}
}

func (in *Interp) floatArith(op ir.Op, a, b float64) Val {
	switch op {
	case ir.OpFAdd:
		return FloatVal(a + b)
	case ir.OpFSub:
		return FloatVal(a - b)
	case ir.OpFMul:
		return FloatVal(a * b)
	case ir.OpFDiv:
		return FloatVal(a / b)
	}
	in.fail("bad float op %s", op)
	return Val{}
}

func (in *Interp) compare(op ir.Op, a, b Val) Val {
	var lt, eq bool
	if a.K == ir.KFloat {
		lt, eq = a.F < b.F, a.F == b.F
	} else {
		lt, eq = a.I < b.I, a.I == b.I
	}
	switch op {
	case ir.OpEq:
		return BoolVal(eq)
	case ir.OpNe:
		return BoolVal(!eq)
	case ir.OpLt:
		return BoolVal(lt)
	case ir.OpLe:
		return BoolVal(lt || eq)
	case ir.OpGt:
		return BoolVal(!lt && !eq)
	case ir.OpGe:
		return BoolVal(!lt)
	}
	in.fail("bad compare %s", op)
	return Val{}
}

func (in *Interp) execCall(fr *frame, i *ir.Instr) {
	if i.Callee != nil {
		if in.depth++; in.depth > MaxCallDepth {
			in.failErr(&LimitError{Kind: ErrMemLimit, Limit: MaxCallDepth, Step: in.clock})
		}
		// Evaluate arguments straight into the callee frame: no
		// per-call argument slice.
		nf := in.newFrame(i.Callee)
		for k, a := range i.Args {
			nf.regs[k] = in.val(fr, a)
		}
		ret := in.exec(nf)
		in.freeFrame(nf)
		in.depth--
		if i.Ty.Kind() != ir.KVoid {
			in.setReg(fr, i, ret)
		}
		return
	}
	ret := in.execBuiltin(fr, i)
	if i.Ty.Kind() != ir.KVoid {
		in.setReg(fr, i, ret)
	}
}
