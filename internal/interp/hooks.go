// Package interp executes IR modules in a simulated word-addressed memory
// and fires the instrumentation call-backs the Loopapalooza run-time
// consumes: dynamic IR instruction counts, loop entry/iteration/exit,
// memory access addresses, and per-iteration values of the observed
// loop-carried register dependencies (paper §III-A).
package interp

import (
	"loopapalooza/internal/analysis"
	"loopapalooza/internal/ir"
)

// Val is a runtime value: a tagged 64-bit scalar. Pointers carry the word
// address in I.
type Val struct {
	// K is the value's kind (KInt, KFloat, KBool, or KPtr).
	K ir.Kind
	// I holds integer, boolean (0/1), and pointer payloads.
	I int64
	// F holds float payloads.
	F float64
}

// IntVal returns an integer value.
func IntVal(v int64) Val { return Val{K: ir.KInt, I: v} }

// FloatVal returns a float value.
func FloatVal(v float64) Val { return Val{K: ir.KFloat, F: v} }

// BoolVal returns a boolean value.
func BoolVal(b bool) Val {
	if b {
		return Val{K: ir.KBool, I: 1}
	}
	return Val{K: ir.KBool}
}

// PtrVal returns a pointer value holding a word address.
func PtrVal(addr int64) Val { return Val{K: ir.KPtr, I: addr} }

// Bits returns a canonical 64-bit payload for value prediction: floats are
// their IEEE bit patterns (via the F field's equality), others the I field.
func (v Val) Bits() uint64 {
	if v.K == ir.KFloat {
		return floatBits(v.F)
	}
	return uint64(v.I)
}

// LCDObs is one per-iteration observation of an observed header phi: the
// value produced for the next iteration, and the interpreter clock at which
// its producing instruction executed (-1 when the producer is a constant or
// otherwise available at iteration start).
type LCDObs struct {
	// Val is the value flowing into the phi on the back edge.
	Val Val
	// DefTick is the clock when the producer executed, or -1.
	DefTick int64
}

// Hooks receives instrumentation events during execution. Methods are called
// synchronously from the interpreter loop.
//
// Buffer ownership: the init and obs slices passed to EnterLoop/IterLoop
// are scratch buffers owned by the interpreter and reused across events. A
// hook that retains one observes stale data at the very next loop event —
// interp's ownership-violation test demonstrates exactly that. Consume the
// slices synchronously, or copy their elements before returning. The
// canonical copiers are core's concurrent fan-out tee (which copies each
// event once into pooled chunks so engine goroutines can alias safely) and
// core.TraceWriter (which copies by encoding); everything else, including
// core.Engine and the sequential fan-out tee, consumes in place without
// copying.
type Hooks interface {
	// Tick advances the dynamic IR instruction counter by n. Ticks are
	// batched: the interpreter may deliver several instructions' worth in
	// one call, but always flushes pending ticks before any other event,
	// so the cumulative count is exact at every event boundary.
	Tick(n int64)
	// EnterLoop fires when control first reaches a loop header from its
	// preheader. sp is the current stack pointer; init holds the values
	// of the observed phis for iteration zero.
	EnterLoop(lm *analysis.LoopMeta, sp int64, init []Val)
	// IterLoop fires on every back edge, with one observation per
	// observed phi (values for the next iteration).
	IterLoop(lm *analysis.LoopMeta, sp int64, obs []LCDObs)
	// ExitLoop fires when control leaves the loop (including via
	// return).
	ExitLoop(lm *analysis.LoopMeta)
	// Load fires for every memory read at the given word address.
	Load(addr int64)
	// Store fires for every memory write at the given word address.
	Store(addr int64)
}

// NopHooks is a Hooks implementation that ignores every event.
type NopHooks struct{}

// Tick implements Hooks.
func (NopHooks) Tick(int64) {}

// EnterLoop implements Hooks.
func (NopHooks) EnterLoop(*analysis.LoopMeta, int64, []Val) {}

// IterLoop implements Hooks.
func (NopHooks) IterLoop(*analysis.LoopMeta, int64, []LCDObs) {}

// ExitLoop implements Hooks.
func (NopHooks) ExitLoop(*analysis.LoopMeta) {}

// Load implements Hooks.
func (NopHooks) Load(int64) {}

// Store implements Hooks.
func (NopHooks) Store(int64) {}
