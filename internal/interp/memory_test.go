package interp

import (
	"strings"
	"testing"
	"testing/quick"

	"loopapalooza/internal/analysis"
	"loopapalooza/internal/lang"
)

func wantRunError(t *testing.T, src, substr string) {
	t.Helper()
	wantRunErrorUnder(t, Config{}, src, substr)
}

func wantRunErrorUnder(t *testing.T, cfg Config, src, substr string) {
	t.Helper()
	m, err := lang.Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := analysis.AnalyzeModule(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(info, cfg).Run("main"); err == nil || !strings.Contains(err.Error(), substr) {
		t.Errorf("want error containing %q, got %v", substr, err)
	}
}

func TestNullPointerTraps(t *testing.T) {
	wantRunError(t, `
func main() int {
	var p *int;
	return *p;
}`, "null pointer")
}

func TestUnmappedLoadTraps(t *testing.T) {
	wantRunError(t, `
var a [4]int;
func main() int {
	var p *int = a;
	p = p + 1000000;
	return *p;
}`, "unmapped")
}

func TestDanglingFramePointerTraps(t *testing.T) {
	// leak returns the address of its own local; by the time main
	// dereferences it, the frame is gone.
	wantRunError(t, `
var saved *int;
func leak() {
	var x int = 5;
	saved = &x;
}
func main() int {
	leak();
	return *saved;
}`, "unmapped")
}

func TestStackOverflowTraps(t *testing.T) {
	wantRunError(t, `
func grow(n int) int {
	var pad [4096]int;
	pad[0] = n;
	if (n <= 0) { return pad[0]; }
	return grow(n - 1) + pad[0];
}
func main() int { return grow(100000); }`, "stack overflow")
}

func TestHeapExhaustionTraps(t *testing.T) {
	// Exhausting the default heap budget allocates gigabytes of host
	// memory over ~100s; a reduced budget trips the same exhaustion path.
	wantRunErrorUnder(t, Config{MaxHeapCells: 1 << 22}, `
func main() int {
	var i int;
	var p *int;
	for (i = 0; i < 100000; i = i + 1) {
		p = alloc(1 << 20);
	}
	return *p;
}`, "heap exhausted")
}

func TestNegativeAllocTraps(t *testing.T) {
	wantRunError(t, `
func main() int {
	var n int = 0 - 5;
	var p *int = alloc(n);
	return *p;
}`, "negative")
}

func TestStackFrameReuseIsZeroed(t *testing.T) {
	// leave() dirties its frame; probe() then allocates the same region
	// and must see zeroed memory (the interpreter zeroes reused stack).
	src := `
func dirty() int {
	var buf [8]int;
	var i int;
	for (i = 0; i < 8; i = i + 1) { buf[i] = 77; }
	return buf[0];
}
func probe() int {
	var buf [8]int;
	return buf[3];
}
func main() int {
	var d int = dirty();
	return probe() * 1000 + d;
}`
	m, err := lang.Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := analysis.AnalyzeModule(m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(info, Config{}).Run("main")
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret.I != 77 { // probe() == 0
		t.Errorf("ret = %d, want 77 (uninitialized frame must read 0)", res.Ret.I)
	}
}

func TestPointerToPointer(t *testing.T) {
	src := `
var cell [1]int;
var slot [1]int;
func main() int {
	cell[0] = 41;
	var p *int = cell;
	var q *int = slot;
	*q = *p + 1;   // 42 via two pointers
	return slot[0];
}`
	m, err := lang.Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := analysis.AnalyzeModule(m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(info, Config{}).Run("main")
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret.I != 42 {
		t.Errorf("ret = %d, want 42", res.Ret.I)
	}
}

// TestMemorySegmentsProperty: round-trips through each memory segment
// preserve values for arbitrary payloads.
func TestMemorySegmentsProperty(t *testing.T) {
	f := func(v int64, idx uint16) bool {
		m := NewMemory(64, 0)
		gAddr := GlobalBase + int64(idx%64)
		if err := m.Store(gAddr, IntVal(v)); err != nil {
			return false
		}
		got, err := m.Load(gAddr)
		if err != nil || got.I != v {
			return false
		}
		hBase, err := m.HeapAlloc(128)
		if err != nil {
			return false
		}
		hAddr := hBase + int64(idx%128)
		if err := m.Store(hAddr, IntVal(v)); err != nil {
			return false
		}
		got, err = m.Load(hAddr)
		if err != nil || got.I != v {
			return false
		}
		sBase, err := m.Alloca(128)
		if err != nil {
			return false
		}
		sAddr := sBase + int64(idx%128)
		if err := m.Store(sAddr, IntVal(v)); err != nil {
			return false
		}
		got, err = m.Load(sAddr)
		return err == nil && got.I == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAllocaRestoresOnReturnBoundary(t *testing.T) {
	m := NewMemory(0, 0)
	sp0 := m.SP
	a, err := m.Alloca(10)
	if err != nil {
		t.Fatal(err)
	}
	if a != sp0-10 || m.SP != sp0-10 {
		t.Fatalf("alloca layout wrong: a=%d sp=%d", a, m.SP)
	}
	b, err := m.Alloca(6)
	if err != nil {
		t.Fatal(err)
	}
	if b != a-6 {
		t.Fatalf("second alloca at %d, want %d", b, a-6)
	}
	// Frame pop is a plain sp restore (done by the interpreter).
	m.SP = sp0
	if _, err := m.Load(a); err == nil {
		t.Error("load from popped frame should fail")
	}
}
