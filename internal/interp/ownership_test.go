package interp

import (
	"testing"

	"loopapalooza/internal/analysis"
)

// ownershipSrc: a loop whose observed phi takes a distinct value every
// iteration, so a stale buffer is distinguishable from any real snapshot.
const ownershipSrc = `
const N = 32;
var out [N]int;
func main() int {
	var x int = 1;
	var i int;
	for (i = 0; i < N; i = i + 1) {
		out[i] = x;
		x = x * 3 + 1;
	}
	return x;
}`

// ownershipNestedSrc re-enters the inner loop once per outer iteration, so
// EnterLoop fires repeatedly with distinct init values — the staleness
// probe for the init scratch buffer, which ownershipSrc (one loop, one
// entry) cannot exercise.
const ownershipNestedSrc = `
const N = 8;
var out [4 * N]int;
func main() int {
	var x int;
	var i int;
	var r int;
	for (r = 0; r < 4; r = r + 1) {
		x = r * 5 + 1;
		for (i = 0; i < N; i = i + 1) {
			out[r * N + i] = x;
			x = x * 3 + 1;
		}
	}
	return x;
}`

// retainingHooks violates the Hooks buffer-ownership contract on purpose:
// it keeps the obs/init slice headers instead of copying the elements.
type retainingHooks struct {
	NopHooks
	retained [][]LCDObs // aliased scratch — the bug under test
	copied   [][]LCDObs // correct per-event snapshots

	retainedInit [][]Val // aliased EnterLoop scratch
	copiedInit   [][]Val // correct per-entry snapshots
}

func (h *retainingHooks) IterLoop(lm *analysis.LoopMeta, sp int64, obs []LCDObs) {
	h.retained = append(h.retained, obs)
	h.copied = append(h.copied, append([]LCDObs(nil), obs...))
}

func (h *retainingHooks) EnterLoop(lm *analysis.LoopMeta, sp int64, init []Val) {
	if len(init) == 0 {
		return
	}
	h.retainedInit = append(h.retainedInit, init)
	h.copiedInit = append(h.copiedInit, append([]Val(nil), init...))
}

// TestHooksScratchBufferOwnership pins the documented aliasing hazard: the
// obs slices passed to IterLoop are interpreter-owned scratch reused across
// events, so a hook that retains them MUST observe stale data. If this test
// ever fails, the interpreter started allocating per event — the
// zero-allocation contract (and the reason the fan-out tee copies) is gone.
func TestHooksScratchBufferOwnership(t *testing.T) {
	h := &retainingHooks{}
	run(t, ownershipSrc, Config{Hooks: h})
	if len(h.retained) < 2 {
		t.Fatalf("only %d iteration events, need several", len(h.retained))
	}
	// Every retained header must alias the same backing array…
	first := &h.retained[0][0]
	for i := range h.retained {
		if &h.retained[i][0] != first {
			t.Fatalf("iteration %d got a fresh buffer: the scratch-reuse contract changed", i)
		}
	}
	// …so all retained snapshots collapse to the LAST event's contents,
	// and every earlier one is stale relative to its copied twin.
	stale := 0
	last := len(h.copied) - 1
	for i := 0; i < last; i++ {
		if h.retained[i][0] != h.copied[i][0] {
			stale++
		}
		if h.retained[i][0] != h.copied[last][0] {
			t.Errorf("retained[%d] = %+v, want the final event's data %+v (buffer is shared)",
				i, h.retained[i][0], h.copied[last][0])
		}
	}
	if stale != last {
		t.Errorf("%d/%d retained snapshots stale, want all: retaining scratch must observe stale data", stale, last)
	}
}

// TestHooksScratchBufferOwnershipInit extends the ownership pin to the
// EnterLoop init payload: the init slices are interpreter scratch exactly
// like obs, so a hook retaining them across repeated loop entries must see
// stale data. The init buffer may legitimately reallocate once as a wider
// loop first grows it, so the aliasing assertions apply to the entries
// sharing the final backing array.
func TestHooksScratchBufferOwnershipInit(t *testing.T) {
	h := &retainingHooks{}
	run(t, ownershipNestedSrc, Config{Hooks: h})
	if len(h.retainedInit) < 3 {
		t.Fatalf("only %d loop entries with init payloads, need several", len(h.retainedInit))
	}
	last := len(h.retainedInit) - 1
	back := &h.retainedInit[last][0]
	shared := 0
	stale := 0
	for i := 0; i < last; i++ {
		if &h.retainedInit[i][0] != back {
			continue // pre-reallocation entry: different backing, skip
		}
		shared++
		// Entries on the shared backing collapse to the final entry's
		// contents (over their common prefix)…
		n := min(len(h.retainedInit[i]), len(h.copiedInit[last]))
		for k := 0; k < n; k++ {
			if h.retainedInit[i][k] != h.copiedInit[last][k] {
				t.Errorf("retainedInit[%d][%d] = %+v, want the final entry's %+v (buffer is shared)",
					i, k, h.retainedInit[i][k], h.copiedInit[last][k])
			}
		}
		// …and are stale relative to their own snapshots.
		for k := range h.retainedInit[i] {
			if h.retainedInit[i][k] != h.copiedInit[i][k] {
				stale++
				break
			}
		}
	}
	if shared < 2 {
		t.Fatalf("only %d retained init slices share the final backing, need >= 2: the scratch-reuse contract changed", shared)
	}
	if stale == 0 {
		t.Error("no retained init snapshot went stale: retaining EnterLoop scratch must observe stale data")
	}
}
