package interp

import (
	"testing"

	"loopapalooza/internal/analysis"
)

// ownershipSrc: a loop whose observed phi takes a distinct value every
// iteration, so a stale buffer is distinguishable from any real snapshot.
const ownershipSrc = `
const N = 32;
var out [N]int;
func main() int {
	var x int = 1;
	var i int;
	for (i = 0; i < N; i = i + 1) {
		out[i] = x;
		x = x * 3 + 1;
	}
	return x;
}`

// retainingHooks violates the Hooks buffer-ownership contract on purpose:
// it keeps the obs slice headers instead of copying the elements.
type retainingHooks struct {
	NopHooks
	retained [][]LCDObs // aliased scratch — the bug under test
	copied   [][]LCDObs // correct per-event snapshots
}

func (h *retainingHooks) IterLoop(lm *analysis.LoopMeta, sp int64, obs []LCDObs) {
	h.retained = append(h.retained, obs)
	h.copied = append(h.copied, append([]LCDObs(nil), obs...))
}

// TestHooksScratchBufferOwnership pins the documented aliasing hazard: the
// obs slices passed to IterLoop are interpreter-owned scratch reused across
// events, so a hook that retains them MUST observe stale data. If this test
// ever fails, the interpreter started allocating per event — the
// zero-allocation contract (and the reason the fan-out tee copies) is gone.
func TestHooksScratchBufferOwnership(t *testing.T) {
	h := &retainingHooks{}
	run(t, ownershipSrc, Config{Hooks: h})
	if len(h.retained) < 2 {
		t.Fatalf("only %d iteration events, need several", len(h.retained))
	}
	// Every retained header must alias the same backing array…
	first := &h.retained[0][0]
	for i := range h.retained {
		if &h.retained[i][0] != first {
			t.Fatalf("iteration %d got a fresh buffer: the scratch-reuse contract changed", i)
		}
	}
	// …so all retained snapshots collapse to the LAST event's contents,
	// and every earlier one is stale relative to its copied twin.
	stale := 0
	last := len(h.copied) - 1
	for i := 0; i < last; i++ {
		if h.retained[i][0] != h.copied[i][0] {
			stale++
		}
		if h.retained[i][0] != h.copied[last][0] {
			t.Errorf("retained[%d] = %+v, want the final event's data %+v (buffer is shared)",
				i, h.retained[i][0], h.copied[last][0])
		}
	}
	if stale != last {
		t.Errorf("%d/%d retained snapshots stale, want all: retaining scratch must observe stale data", stale, last)
	}
}
