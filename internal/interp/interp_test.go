package interp

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"loopapalooza/internal/analysis"
	"loopapalooza/internal/lang"
)

func run(t *testing.T, src string, cfg Config) (Result, *analysis.ModuleInfo) {
	t.Helper()
	m, err := lang.Compile("test", src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	info, err := analysis.AnalyzeModule(m)
	if err != nil {
		t.Fatalf("AnalyzeModule: %v", err)
	}
	in := New(info, cfg)
	res, err := in.Run("main")
	if err != nil {
		t.Fatalf("Run: %v\n%s", err, m)
	}
	return res, info
}

func retOf(t *testing.T, src string) int64 {
	t.Helper()
	res, _ := run(t, src, Config{})
	return res.Ret.I
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		expr string
		want int64
	}{
		{"2 + 3 * 4", 14},
		{"(2 + 3) * 4", 20},
		{"17 % 5", 2},
		{"-7 / 2", -3},
		{"1 << 10", 1024},
		{"-16 >> 2", -4},
		{"12 & 10", 8},
		{"12 | 3", 15},
		{"12 ^ 10", 6},
		{"int(3.9)", 3},
		{"int(-3.9)", -3},
		{"int(float(41) + 1.0)", 42},
		{"abs(-5)", 5},
		{"min(3, 9)", 3},
		{"max(3, 9)", 9},
		{"int(sqrt(81.0))", 9},
		{"int(fmax(2.5, 7.5))", 7},
	}
	for _, c := range cases {
		got := retOf(t, "func main() int { return "+c.expr+"; }")
		if got != c.want {
			t.Errorf("%s = %d, want %d", c.expr, got, c.want)
		}
	}
}

func TestBooleansAndControlFlow(t *testing.T) {
	src := `
func main() int {
	var n int = 0;
	if (1 < 2 && 3 < 4) { n = n + 1; }
	if (1 > 2 || 4 > 3) { n = n + 2; }
	if (!(1 == 2)) { n = n + 4; }
	if (1 == 2) { n = n + 100; } else { n = n + 8; }
	return n;
}`
	if got := retOf(t, src); got != 15 {
		t.Errorf("got %d, want 15", got)
	}
}

func TestShortCircuitSkipsSideEffects(t *testing.T) {
	src := `
var hits int = 0;
func bump() bool { hits = hits + 1; return true; }
func main() int {
	if (false && bump()) { }
	if (true || bump()) { }
	return hits;
}`
	if got := retOf(t, src); got != 0 {
		t.Errorf("short-circuit evaluated rhs: hits = %d", got)
	}
}

func TestLoopsAndArrays(t *testing.T) {
	src := `
const N = 10;
var tab [N]int;
func main() int {
	var i int;
	for (i = 0; i < N; i = i + 1) { tab[i] = i * i; }
	var s int = 0;
	for (i = 0; i < N; i = i + 1) { s = s + tab[i]; }
	return s;
}`
	if got := retOf(t, src); got != 285 {
		t.Errorf("sum of squares = %d, want 285", got)
	}
}

func TestWhileBreakContinue(t *testing.T) {
	src := `
func main() int {
	var i int = 0;
	var s int = 0;
	while (true) {
		i = i + 1;
		if (i > 20) { break; }
		if (i % 2 == 0) { continue; }
		s = s + i;
	}
	return s;
}`
	if got := retOf(t, src); got != 100 {
		t.Errorf("odd sum = %d, want 100", got)
	}
}

func TestPointersAndHeap(t *testing.T) {
	src := `
func main() int {
	var p *int = alloc(8);
	var i int;
	for (i = 0; i < 8; i = i + 1) { p[i] = i + 1; }
	var q *int = p + 3;
	*q = 100;
	var s int = 0;
	for (i = 0; i < 8; i = i + 1) { s = s + p[i]; }
	return s;
}`
	// 1+2+3+100+5+6+7+8 = 132
	if got := retOf(t, src); got != 132 {
		t.Errorf("got %d, want 132", got)
	}
}

func TestAddressOfLocal(t *testing.T) {
	src := `
func set(p *int, v int) { *p = v; }
func main() int {
	var x int = 1;
	set(&x, 41);
	return x + 1;
}`
	if got := retOf(t, src); got != 42 {
		t.Errorf("got %d, want 42", got)
	}
}

func TestLocalArrays(t *testing.T) {
	src := `
func main() int {
	var buf [16]int;
	var i int;
	for (i = 0; i < 16; i = i + 1) { buf[i] = i; }
	return buf[15] + buf[1];
}`
	if got := retOf(t, src); got != 16 {
		t.Errorf("got %d, want 16", got)
	}
}

func TestRecursionAndStack(t *testing.T) {
	src := `
func fib(n int) int {
	if (n < 2) { return n; }
	return fib(n-1) + fib(n-2);
}
func main() int { return fib(15); }`
	if got := retOf(t, src); got != 610 {
		t.Errorf("fib(15) = %d, want 610", got)
	}
}

func TestGlobalInitializers(t *testing.T) {
	src := `
var a int = 7;
var b float = 2.5;
var c bool = true;
var d int = -3;
func main() int {
	var n int = 0;
	if (c) { n = a + d; }
	return n + int(b * 2.0);
}`
	if got := retOf(t, src); got != 9 {
		t.Errorf("got %d, want 9", got)
	}
}

func TestFloatMath(t *testing.T) {
	src := `
func main() int {
	var x float = 2.0;
	x = pow(x, 10.0);       // 1024
	x = x / 2.0;            // 512
	x = x - 12.0;           // 500
	x = fabs(-x);           // 500
	x = x + floor(2.9);     // 502
	return int(x);
}`
	if got := retOf(t, src); got != 502 {
		t.Errorf("got %d, want 502", got)
	}
}

func TestPrintOutput(t *testing.T) {
	var buf bytes.Buffer
	src := `
func main() int {
	print_i64(42);
	print_f64(2.5);
	return 0;
}`
	run(t, src, Config{Out: &buf})
	want := "42\n2.5\n"
	if buf.String() != want {
		t.Errorf("output = %q, want %q", buf.String(), want)
	}
}

func TestRandDeterministic(t *testing.T) {
	src := `
func main() int {
	srand(12345);
	var a int = rand();
	var b int = rand();
	if (a == b) { return -1; }
	if (a < 0 || b < 0) { return -2; }
	return a % 1000;
}`
	first := retOf(t, src)
	second := retOf(t, src)
	if first != second {
		t.Errorf("rand not deterministic: %d vs %d", first, second)
	}
	if first < 0 {
		t.Errorf("rand invariants violated: %d", first)
	}
}

func TestDivisionByZeroTraps(t *testing.T) {
	m, err := lang.Compile("t", `func main() int { var z int = 0; return 1 / z; }`)
	if err != nil {
		t.Fatal(err)
	}
	info, err := analysis.AnalyzeModule(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(info, Config{}).Run("main"); err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("want division-by-zero error, got %v", err)
	}
}

func TestStepLimit(t *testing.T) {
	m, err := lang.Compile("t", `func main() int { while (true) { } return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	info, err := analysis.AnalyzeModule(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(info, Config{MaxSteps: 1000}).Run("main"); err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Errorf("want step-limit error, got %v", err)
	}
}

func TestStepsCounted(t *testing.T) {
	res, _ := run(t, `func main() int { return 1 + 2; }`, Config{})
	if res.Steps <= 0 {
		t.Errorf("steps = %d, want > 0", res.Steps)
	}
	// A longer program must cost more.
	res2, _ := run(t, `
func main() int {
	var s int = 0;
	var i int;
	for (i = 0; i < 100; i = i + 1) { s = s + i; }
	return s;
}`, Config{})
	if res2.Ret.I != 4950 {
		t.Errorf("sum = %d, want 4950", res2.Ret.I)
	}
	if res2.Steps < 100 {
		t.Errorf("loop steps = %d, implausibly low", res2.Steps)
	}
}

// recordingHooks counts events for loop-event tests.
type recordingHooks struct {
	NopHooks
	enters, iters, exits int
	loadAddrs            []int64
	lastObs              []LCDObs
}

func (r *recordingHooks) EnterLoop(lm *analysis.LoopMeta, sp int64, init []Val) { r.enters++ }
func (r *recordingHooks) IterLoop(lm *analysis.LoopMeta, sp int64, obs []LCDObs) {
	r.iters++
	r.lastObs = obs
}
func (r *recordingHooks) ExitLoop(lm *analysis.LoopMeta) { r.exits++ }
func (r *recordingHooks) Load(addr int64)                { r.loadAddrs = append(r.loadAddrs, addr) }

func TestLoopEvents(t *testing.T) {
	rh := &recordingHooks{}
	src := `
func main() int {
	var s int = 0;
	var i int;
	for (i = 0; i < 5; i = i + 1) {
		var j int;
		for (j = 0; j < 3; j = j + 1) { s = s + 1; }
	}
	return s;
}`
	res, _ := run(t, src, Config{Hooks: rh})
	if res.Ret.I != 15 {
		t.Fatalf("ret = %d, want 15", res.Ret.I)
	}
	// Every completed iteration ends with a back edge (the final one
	// re-tests the condition before exiting): outer contributes 5 iter
	// events, each of the 5 inner instances contributes 3.
	if rh.enters != 6 {
		t.Errorf("enters = %d, want 6", rh.enters)
	}
	if rh.iters != 5+15 {
		t.Errorf("iters = %d, want 20", rh.iters)
	}
	if rh.exits != 6 {
		t.Errorf("exits = %d, want 6", rh.exits)
	}
}

func TestLoopEventsOnEarlyReturn(t *testing.T) {
	rh := &recordingHooks{}
	src := `
func find(limit int) int {
	var i int;
	for (i = 0; i < 1000; i = i + 1) {
		if (i * i > limit) { return i; }
	}
	return -1;
}
func main() int { return find(100); }`
	res, _ := run(t, src, Config{Hooks: rh})
	if res.Ret.I != 11 {
		t.Fatalf("ret = %d, want 11", res.Ret.I)
	}
	if rh.enters != 1 || rh.exits != 1 {
		t.Errorf("enter/exit = %d/%d, want 1/1 (exit on return)", rh.enters, rh.exits)
	}
}

func TestLCDObservations(t *testing.T) {
	rh := &recordingHooks{}
	// x = tab[x] is a non-computable LCD; its per-iteration values are
	// observed on every back edge.
	src := `
const N = 8;
var next [N]int;
func main() int {
	next[0] = 3; next[3] = 5; next[5] = 1; next[1] = 0;
	var x int = 0;
	var i int;
	for (i = 0; i < 4; i = i + 1) { x = next[x]; }
	return x;
}`
	res, info := run(t, src, Config{Hooks: rh})
	if res.Ret.I != 0 { // 0 -> 3 -> 5 -> 1 -> 0
		t.Fatalf("ret = %d, want 0", res.Ret.I)
	}
	if len(info.Loops) != 1 || len(info.Loops[0].Observed) != 1 {
		t.Fatalf("observed LCDs = %v", info.Loops)
	}
	if len(rh.lastObs) != 1 {
		t.Fatalf("lastObs = %v", rh.lastObs)
	}
	if rh.lastObs[0].Val.I != 0 {
		t.Errorf("final observation = %d, want 0", rh.lastObs[0].Val.I)
	}
	if rh.lastObs[0].DefTick <= 0 {
		t.Errorf("DefTick = %d, want > 0 (produced mid-iteration)", rh.lastObs[0].DefTick)
	}
}

func TestMemoryEventAddresses(t *testing.T) {
	rh := &recordingHooks{}
	src := `
var g [4]int;
func main() int {
	g[2] = 9;
	return g[2];
}`
	res, _ := run(t, src, Config{Hooks: rh})
	if res.Ret.I != 9 {
		t.Fatalf("ret = %d", res.Ret.I)
	}
	found := false
	for _, a := range rh.loadAddrs {
		if a == GlobalBase+2 {
			found = true
		}
	}
	if !found {
		t.Errorf("no load at global address %d; loads = %v", GlobalBase+2, rh.loadAddrs)
	}
}

func TestStackAddressClassification(t *testing.T) {
	if !IsStackAddr(StackTop-1) || IsStackAddr(HeapBase) || IsStackAddr(GlobalBase) {
		t.Error("IsStackAddr misclassifies")
	}
}

func TestMultipleRunsIndependent(t *testing.T) {
	m, err := lang.Compile("t", `
var count int = 0;
func main() int { count = count + 1; return count; }`)
	if err != nil {
		t.Fatal(err)
	}
	info, err := analysis.AnalyzeModule(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		res, err := New(info, Config{}).Run("main")
		if err != nil {
			t.Fatal(err)
		}
		if res.Ret.I != 1 {
			t.Errorf("run %d: count = %d, want 1 (fresh memory per New)", i, res.Ret.I)
		}
	}
}

// TestCallDepthLimit: unbounded guest recursion trips the call-depth budget
// (classified ErrMemLimit) instead of overflowing the host stack.
func TestCallDepthLimit(t *testing.T) {
	src := `
func down(n int) int {
	return down(n + 1);
}
func main() int { return down(0); }`
	m, err := lang.Compile("test", src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	info, err := analysis.AnalyzeModule(m)
	if err != nil {
		t.Fatalf("AnalyzeModule: %v", err)
	}
	in := New(info, Config{})
	_, err = in.Run("main")
	if !errors.Is(err, ErrMemLimit) {
		t.Fatalf("err = %v, want ErrMemLimit", err)
	}
	// The interpreter stays usable after the aborted run.
	in2 := New(info, Config{})
	if _, err := in2.Run("main"); !errors.Is(err, ErrMemLimit) {
		t.Fatalf("second run err = %v", err)
	}
}

// TestGlobalsBoundedByHeapBudget: a module whose globals alone exceed the
// memory budget fails the run with ErrMemLimit instead of making New
// allocate an arbitrarily large host slice.
func TestGlobalsBoundedByHeapBudget(t *testing.T) {
	src := `
var big [1048576]int;
func main() int { return big[0]; }`
	m, err := lang.Compile("test", src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	info, err := analysis.AnalyzeModule(m)
	if err != nil {
		t.Fatalf("AnalyzeModule: %v", err)
	}
	in := New(info, Config{MaxHeapCells: 1 << 10})
	if _, err := in.Run("main"); !errors.Is(err, ErrMemLimit) {
		t.Fatalf("err = %v, want ErrMemLimit", err)
	}
	// Under the default budget the same module runs fine.
	in2 := New(info, Config{})
	if _, err := in2.Run("main"); err != nil {
		t.Fatalf("default-budget run: %v", err)
	}
}
