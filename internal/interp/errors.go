package interp

import (
	"context"
	"errors"
	"fmt"
)

// The execution-failure taxonomy. Every error returned by Run matches
// exactly one of these sentinels under errors.Is, so callers classify
// failures without string matching:
//
//	ErrStepLimit  the dynamic instruction budget (MaxSteps) was exhausted
//	ErrMemLimit   a memory budget tripped (heap cells or stack words)
//	ErrDeadline   the wall-clock deadline passed mid-run
//	ErrCanceled   the run's context was canceled mid-run
//	ErrRuntime    the guest program faulted (division by zero, null or
//	              unmapped access, ...)
//
// ErrDeadline and ErrCanceled additionally match context.DeadlineExceeded
// and context.Canceled respectively, so context-aware callers need no
// special cases.
var (
	ErrStepLimit = errors.New("step limit exceeded")
	ErrMemLimit  = errors.New("memory limit exceeded")
	ErrDeadline  = fmt.Errorf("deadline exceeded: %w", context.DeadlineExceeded)
	ErrCanceled  = fmt.Errorf("execution canceled: %w", context.Canceled)
	ErrRuntime   = errors.New("runtime error")
)

// LimitError reports an exhausted resource budget. errors.Is matches the
// sentinel in Kind (and, for deadline/cancellation, the context errors).
type LimitError struct {
	// Kind is one of ErrStepLimit, ErrMemLimit, ErrDeadline, ErrCanceled.
	Kind error
	// Limit is the configured budget that tripped (steps or heap cells;
	// 0 for deadline and cancellation).
	Limit int64
	// Step is the dynamic instruction count when the budget tripped.
	Step int64
}

func (e *LimitError) Error() string {
	if e.Limit > 0 {
		return fmt.Sprintf("%v (budget %d, at step %d)", e.Kind, e.Limit, e.Step)
	}
	return fmt.Sprintf("%v (at step %d)", e.Kind, e.Step)
}

func (e *LimitError) Unwrap() error { return e.Kind }

// RuntimeError is a guest-program fault. errors.Is(err, ErrRuntime)
// matches it.
type RuntimeError struct {
	// Msg describes the fault.
	Msg string
	// Step is the dynamic instruction count at the fault.
	Step int64
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("runtime error: %s (at step %d)", e.Msg, e.Step)
}

func (e *RuntimeError) Unwrap() error { return ErrRuntime }
