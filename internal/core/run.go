package core

import (
	"context"
	"fmt"
	"io"
	"runtime/debug"
	"time"

	"loopapalooza/internal/analysis"
	"loopapalooza/internal/diag"
	"loopapalooza/internal/interp"
	"loopapalooza/internal/lang"
)

// RunOptions controls one limit-study execution.
type RunOptions struct {
	// Out receives program output (nil discards).
	Out io.Writer
	// MaxSteps bounds execution (0 = interpreter default).
	MaxSteps int64
	// MaxHeapCells bounds the simulated heap in 64-bit cells (0 =
	// interpreter default). Exceeding it fails the run with ErrMemLimit.
	MaxHeapCells int64
	// Ctx, when non-nil, cancels the run mid-execution (ErrCanceled, or
	// ErrDeadline when the context deadline expired).
	Ctx context.Context
	// Timeout, when positive, bounds the run's wall-clock time
	// (ErrDeadline on expiry).
	Timeout time.Duration
	// EntryArgs are passed to main (usually none).
	EntryArgs []interp.Val
	// Tracker selects the dependence-tracking implementation. The zero
	// value is the shadow-memory tracker; TrackerLegacyMap keeps the
	// original map-based write sets (differential-oracle runs).
	Tracker TrackerKind
	// Engine selects the execution engine. The zero value is the bytecode
	// VM; EngineTreewalk keeps the original IR walker
	// (differential-oracle runs).
	Engine EngineKind
	// Trace, when non-nil, receives the binary event trace of the
	// execution (see TraceWriter), which ReplayTrace can later evaluate
	// under any configuration without re-executing. A trace write failure
	// fails the run; the resource budgets above are enforced while
	// recording.
	Trace io.Writer
	// DisableBatch forces MultiRun and trace replay onto the per-event
	// hook dispatch instead of the batched chunk-replay tracker path —
	// the profiling and differential toggle behind the `-batch=false`
	// flags. Reports are bit-identical either way.
	DisableBatch bool
	// Strategy selects the MultiRun fan-out strategy. The zero value is
	// auto: sequential below FanoutThreshold configurations, the chunked
	// tee with a single worker, the class-affinity parallel pool
	// otherwise. See PlanFanout for the resolved decision.
	Strategy FanoutStrategy
	// Parallelism bounds the parallel fan-out's worker pool: 0 (auto)
	// means one worker per available CPU (GOMAXPROCS), 1 pins the run to
	// a single worker, larger values are clamped to the number of
	// coalesced engine classes. Reports and recorded traces are
	// bit-identical at every value.
	Parallelism int
}

// Run executes the analyzed module's main function under one configuration
// and returns the limit-study report. On failure the returned error
// matches exactly one taxonomy sentinel (ErrStepLimit, ErrMemLimit,
// ErrDeadline, ErrCanceled, ErrRuntime) under errors.Is; other failures
// (bad configuration) classify as OutcomeError.
func Run(info *analysis.ModuleInfo, cfg Config, opts RunOptions) (rep *Report, err error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// The interpreter and engine hooks are panic-free by design, but a bug
	// there must not crash the embedding process (CLI, sweep worker,
	// fuzzer): convert any escaping panic into a classified *PanicError.
	defer func() {
		if r := recover(); r != nil {
			rep, err = nil, fmt.Errorf("core: %s: %w", info.Mod.Name,
				&PanicError{Val: r, Stack: string(debug.Stack())})
		}
	}()
	engine := NewEngineTracker(info, cfg, opts.Tracker)
	var hooks interp.Hooks = engine
	tw := traceSink(info, opts)
	if tw != nil {
		hooks = &multiHooks{hs: []interp.Hooks{engine, tw}}
	}
	if err := interpret(info, opts, hooks); err != nil {
		return nil, err
	}
	if tw != nil {
		if err := tw.Close(); err != nil {
			return nil, fmt.Errorf("core: %s: writing trace: %w", info.Mod.Name, err)
		}
	}
	return engine.Report(info.Mod.Name), nil
}

// RunSource compiles LPC source, analyzes it, and runs the limit study —
// the one-call entry point used by the CLI, examples, and benches.
func RunSource(name, src string, cfg Config, opts RunOptions) (*Report, error) {
	info, err := AnalyzeSource(name, src)
	if err != nil {
		return nil, err
	}
	return Run(info, cfg, opts)
}

// AnalyzeSource compiles and canonicalizes LPC source, returning the
// compile-time analysis. Reuse the result across configurations: the
// analysis is configuration-independent.
//
// Like lang.Compile, AnalyzeSource never exits via panic: a panic escaping
// the mid-end pipeline is converted into a *diag.ICE naming the "analysis"
// stage and carrying the source as a reproducer.
func AnalyzeSource(name, src string) (info *analysis.ModuleInfo, err error) {
	m, err := lang.Compile(name, src)
	if err != nil {
		return nil, err
	}
	defer func() {
		if r := recover(); r != nil {
			info, err = nil, diag.NewICE(name, "analysis", src, r)
		}
	}()
	info, aerr := analysis.AnalyzeModule(m)
	if aerr != nil {
		// The module verified after codegen, so a pass breaking it is a
		// compiler bug, not a user error.
		return nil, diag.NewICE(name, "analysis", src, aerr)
	}
	return info, nil
}
