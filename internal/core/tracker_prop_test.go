package core

// Tracker-level differential harness: randomized (depth, region, addr, op)
// streams replayed through the shadow tracker and the legacy map oracle
// side-by-side, comparing every load answer and every batched memRun hit
// list. Unlike the full-suite oracles (which only exercise addresses real
// benchmarks produce), the stream generator deliberately lands on the
// boundaries — region cap edges, growShadowTab doubling and clamp points,
// the overflow-map fallback, stack-filter limits, and generation churn.
// The same driver backs FuzzTrackerDifferential.

import (
	"fmt"
	"math/rand"
	"testing"

	"loopapalooza/internal/analysis"
	"loopapalooza/internal/interp"
	"loopapalooza/internal/ir"
)

// diffGlobalWords sizes the test module's global segment: an odd,
// non-power-of-two regLow cap (GlobalBase+100 = 116) so geometric table
// growth from minShadowTab=64 must clamp (64 → 128 → 116).
const diffGlobalWords = 100

// diffGlobalEnd is the resulting regLow flat cap.
const diffGlobalEnd = int64(interp.GlobalBase + diffGlobalWords)

// trackerDiffInfo builds the module the differential trackers run against.
func trackerDiffInfo() *analysis.ModuleInfo {
	m := ir.NewModule("tracker-diff")
	m.Globals = append(m.Globals, &ir.Global{Nm: "g", Size: diffGlobalWords, Elem: ir.Int})
	return &analysis.ModuleInfo{Mod: m}
}

// diffHeapCap / diffStackCap are the shrunken flat-table caps the
// differential driver installs on its shadow tracker. The production caps
// put the flat/overflow boundary megabytes in (heapFlatCap = 1<<24 words),
// so landing streams on it would allocate hundred-MB tables per trial; the
// boundary LOGIC is cap-relative, so a small cap exercises the identical
// paths — growth clamped at the cap, the last flat cell, the first
// overflow cell — at unit-test cost. The map oracle has no caps at all,
// which is exactly why the differential stays valid under the override.
const (
	diffHeapCap  = int64(1) << 12
	diffStackCap = int64(1) << 10
)

// diffAddr maps two selector bytes to an address, biased so every region
// boundary the shadow tracker special-cases is reachable: flat-table
// interiors, the minShadowTab doubling edge, region cap edges (flat vs
// overflow), the gaps between segments, negative wild pointers, and both
// ends of the stack window.
func diffAddr(sel, lo byte) int64 {
	const stackBase = int64(interp.StackTop) - interp.DefaultStackWords
	o := int64(lo)
	switch sel % 12 {
	case 0:
		return o - 8 // negative and tiny low addresses
	case 1:
		return diffGlobalEnd - 1 - o%4 // regLow clamp edge (last flat cells)
	case 2:
		return diffGlobalEnd + o // just past the regLow cap: overflow
	case 3:
		return int64(interp.HeapBase) - 1 - o // gap below heap: overflow
	case 4:
		return int64(interp.HeapBase) + o // first heap table
	case 5:
		return int64(interp.HeapBase) + minShadowTab - 1 + o%3 // doubling edge
	case 6:
		return int64(interp.HeapBase) + o*257 // growth ladder crossing the cap
	case 7:
		return int64(interp.HeapBase) + diffHeapCap - 1 - o%2 // inside the flat cap
	case 8:
		return int64(interp.HeapBase) + diffHeapCap + o // heap overflow
	case 9:
		return int64(interp.StackTop) - 1 - o // stack top (idx 0..)
	case 10:
		// Straddles the stack flat/overflow boundary: o < 128 lands just
		// past the cap (overflow), o >= 128 in the last flat cells.
		return int64(interp.StackTop) - diffStackCap - 128 + o
	default:
		return stackBase - 1 - o // below the stack: huge heap offset, overflow
	}
}

// runTrackerDiff decodes ops as a scripted stream of tracker operations
// (4 bytes each: op, depth/span selector, address family, offset) and
// replays it through a shadow tracker and the map oracle in lockstep,
// failing on the first divergence. Op streams of any content are safe;
// invalid prefixes simply decode to no-ops.
func runTrackerDiff(tb testing.TB, ops []byte) {
	tb.Helper()
	info := trackerDiffInfo()
	sh := newShadowTracker(info)
	sh.caps[regHeap] = diffHeapCap
	sh.caps[regStack] = diffStackCap
	mp := mapTracker{}
	const maxDepth = 4
	shInst := make([]*instance, maxDepth)
	mpInst := make([]*instance, maxDepth)
	for d := range shInst {
		shInst[d] = &instance{depth: d}
		mpInst[d] = &instance{depth: d}
	}
	const maxSpan = 32
	shIdx := make([]int32, maxSpan)
	shRec := make([]writeRec, maxSpan)
	mpIdx := make([]int32, maxSpan)
	mpRec := make([]writeRec, maxSpan)
	active := 0
	for i, step := 0, 0; i+3 < len(ops); i, step = i+4, step+1 {
		op, sel, fam, off := ops[i], ops[i+1], ops[i+2], ops[i+3]
		switch op % 8 {
		case 0: // enter the next nesting level
			if active < maxDepth {
				sh.enter(shInst[active])
				mp.enter(mpInst[active])
				active++
			}
		case 1: // drop the deepest level
			if active > 0 {
				active--
				sh.drop(shInst[active])
				mp.drop(mpInst[active])
			}
		case 2, 3: // store at a random live depth
			if active == 0 {
				continue
			}
			d := int(sel) % active
			addr := diffAddr(fam, off)
			r, idx := region(addr)
			rec := writeRec{iter: int64(sel % 7), off: int64(off)}
			sh.storeAt(shInst[d], r, idx, addr, rec)
			mp.storeAt(mpInst[d], r, idx, addr, rec)
		case 4, 5: // load and compare
			if active == 0 {
				continue
			}
			d := int(sel) % active
			addr := diffAddr(fam, off)
			r, idx := region(addr)
			sr, sok := sh.loadAt(shInst[d], r, idx, addr)
			mr, mok := mp.loadAt(mpInst[d], r, idx, addr)
			if sok != mok || sr != mr {
				tb.Fatalf("step %d: loadAt(depth %d, addr %#x) diverged: shadow (%+v, %v) vs map (%+v, %v)",
					step, d, addr, sr, sok, mr, mok)
			}
		default: // batched memRun span
			if active == 0 {
				continue
			}
			d := int(sel) % active
			// The span contents derive from the op bytes via a local PRNG,
			// so the fuzzer steers them deterministically.
			rng := rand.New(rand.NewSource(int64(sel)<<16 | int64(fam)<<8 | int64(off)))
			n := 1 + int(fam)%16
			evs := make([]memEv, 0, n)
			tick := int64(0)
			for j := 0; j < n; j++ {
				addr := diffAddr(byte(rng.Intn(256)), byte(rng.Intn(256)))
				r, idx := region(addr)
				evs = append(evs, memEv{idx: idx, addr: addr, tick: tick,
					kind: uint8(rng.Intn(2)), reg: int8(r)})
				tick += int64(rng.Intn(5))
			}
			iter, offBase := int64(off%9), int64(sel)
			var spLimit int64
			if off%2 == 0 {
				// Exercise the cactus-stack filter boundary: addresses in
				// [spLimit, StackTop) are tracked, below it skipped.
				spLimit = int64(interp.StackTop) - 1 - int64(fam)
			}
			// Two of three spans run through the shared span summary
			// (exercising the skip and store-only fast paths), one without
			// — the oracle ignores the summary either way, so a divergence
			// convicts the summary logic specifically.
			var sum *spanSum
			if off%3 != 0 {
				s := summarizeSpan(evs)
				sum = &s
			}
			ns := sh.memRun(shInst[d], evs, iter, offBase, spLimit, shIdx, shRec, sum)
			nm := mp.memRun(mpInst[d], evs, iter, offBase, spLimit, mpIdx, mpRec, sum)
			if ns != nm {
				tb.Fatalf("step %d: memRun(depth %d, %d evs) hit count diverged: shadow %d vs map %d",
					step, d, len(evs), ns, nm)
			}
			for h := 0; h < ns; h++ {
				if shIdx[h] != mpIdx[h] || shRec[h] != mpRec[h] {
					tb.Fatalf("step %d: memRun hit %d diverged: shadow (ev %d, %+v) vs map (ev %d, %+v)",
						step, h, shIdx[h], shRec[h], mpIdx[h], mpRec[h])
				}
			}
		}
	}
}

// TestTrackerDifferentialProperty replays randomized operation streams
// through both trackers — the unit-level counterpart of the full-suite
// differential oracles, reaching boundary addresses real benchmarks never
// produce.
func TestTrackerDifferentialProperty(t *testing.T) {
	for trial := 0; trial < 32; trial++ {
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(0x10ad + int64(trial)))
			ops := make([]byte, 4*(200+rng.Intn(400)))
			rng.Read(ops)
			runTrackerDiff(t, ops)
		})
	}
}

// TestGrowShadowTabClamp pins growShadowTab's edges: geometric doubling
// from the minimum table, the exact doubling trigger (n <= idx), and the
// clamp at a non-power-of-two region cap.
func TestGrowShadowTabClamp(t *testing.T) {
	cases := []struct{ n, idx, cap64, want int64 }{
		{0, 0, 1 << 20, minShadowTab},      // first touch: minimum table
		{0, 63, 1 << 20, 64},               // last index of the minimum table
		{0, 64, 1 << 20, 128},              // one past: doubles once
		{64, 64, 1 << 20, 128},             // doubling triggers at n == idx
		{64, 255, 1 << 20, 256},            // two doublings
		{128, 100, 1 << 20, 128},           // already covered: unchanged
		{0, 100, diffGlobalEnd, 116},       // doubling overshoots odd cap: clamp
		{64, 115, diffGlobalEnd, 116},      // last legal index under the cap
		{0, 5, 10, 10},                     // cap below the minimum table size
		{0, heapFlatCap - 1, heapFlatCap, heapFlatCap}, // top of the heap table
	}
	for _, c := range cases {
		got := growShadowTab(c.n, c.idx, c.cap64)
		if got != c.want {
			t.Errorf("growShadowTab(%d, %d, %d) = %d, want %d", c.n, c.idx, c.cap64, got, c.want)
		}
		// The contract callers rely on: for idx < cap the grown table
		// covers idx without exceeding the cap.
		if got <= c.idx || got > c.cap64 {
			t.Errorf("growShadowTab(%d, %d, %d) = %d violates idx < n <= cap", c.n, c.idx, c.cap64, got)
		}
	}
}

// TestShadowOverflowPruneBounded pins the overflow-map prune on generation
// bump: 10k enter/drop cycles, each storing fresh wild addresses, must not
// accumulate stale records. Before the prune, every cycle's overflow
// entries outlived their instance forever; now a bump clears any map past
// overflowPruneLimit, so retention is bounded by limit + one cycle's
// writes regardless of churn.
func TestShadowOverflowPruneBounded(t *testing.T) {
	sh := newShadowTracker(trackerDiffInfo())
	inst := &instance{depth: 0}
	const cycles, perCycle = 10000, 8
	for c := 0; c < cycles; c++ {
		sh.enter(inst)
		// Fresh overflow addresses every cycle: beyond the heap flat cap.
		base := int64(interp.HeapBase) + heapFlatCap + int64(c*perCycle)
		for j := int64(0); j < perCycle; j++ {
			addr := base + j
			r, idx := region(addr)
			sh.storeAt(inst, r, idx, addr, writeRec{iter: int64(c), off: j})
			// The live instance still sees its own overflow writes.
			if rec, ok := sh.loadAt(inst, r, idx, addr); !ok || rec.iter != int64(c) {
				t.Fatalf("cycle %d: own overflow write invisible (ok=%v rec=%+v)", c, ok, rec)
			}
		}
		sh.drop(inst)
	}
	if n := len(sh.levels[0].over); n > overflowPruneLimit+perCycle {
		t.Fatalf("overflow map retains %d records after %d enter/drop cycles, want <= %d: stale entries accumulate across generations",
			n, cycles, overflowPruneLimit+perCycle)
	}
}
