package core

import (
	"fmt"

	"loopapalooza/internal/analysis"
	"loopapalooza/internal/bytecode"
	"loopapalooza/internal/interp"
)

// EngineKind selects the execution engine that produces the
// instrumentation event stream. The two engines are semantically
// identical — the tree-walker is kept as the differential oracle for the
// bytecode VM — so the choice only affects performance.
type EngineKind int

const (
	// EngineBytecode is the default: each function lowers once (cached on
	// the ModuleInfo) to register-based bytecode with type-specialized
	// opcodes and fused superinstructions, executed by a flat dispatch
	// loop.
	EngineBytecode EngineKind = iota
	// EngineTreewalk is the original per-instruction walk over the IR,
	// retained as the correctness oracle.
	EngineTreewalk
)

// String names the engine kind.
func (k EngineKind) String() string {
	if k == EngineTreewalk {
		return "treewalk"
	}
	return "bytecode"
}

// ParseEngineKind maps a CLI flag value to an EngineKind.
func ParseEngineKind(s string) (EngineKind, error) {
	switch s {
	case "bytecode", "":
		return EngineBytecode, nil
	case "treewalk":
		return EngineTreewalk, nil
	}
	return 0, fmt.Errorf("unknown engine %q (want bytecode or treewalk)", s)
}

// execute runs main under the selected engine. Both paths construct their
// execution context fresh (globals laid out under the memory budget) and
// fire the identical hook stream into hooks.
func execute(info *analysis.ModuleInfo, kind EngineKind, cfg interp.Config, args []interp.Val) (interp.Result, error) {
	if kind == EngineTreewalk {
		return interp.New(info, cfg).Run("main", args...)
	}
	prog, err := bytecode.For(info)
	if err != nil {
		return interp.Result{}, err
	}
	return bytecode.NewVM(prog, cfg).Run("main", args...)
}
