// Package core implements the Loopapalooza run-time component: the
// limit-study engine that consumes instrumentation events, tracks
// loop-carried dependencies, applies the DOALL / Partial-DOALL /
// HELIX-style execution models, and computes limit speedups and coverage
// (paper §III-B).
package core

import (
	"fmt"
	"strings"
)

// Model selects the parallel execution model (paper §II-C, Figure 1).
type Model uint8

// Execution models.
const (
	// DOALL: any cross-iteration conflict marks the loop sequential;
	// otherwise the loop costs its slowest iteration.
	DOALL Model = iota
	// PDOALL (Partial-DOALL): conflicts split execution into phases;
	// each phase costs its slowest iteration; loops whose iterations
	// conflict more than ConflictIterLimit of the time are sequential.
	PDOALL
	// HELIX: generalized DOACROSS; frequent dependencies are satisfied
	// by inter-iteration synchronization with cost
	// iter_slowest + delta_largest * num_iter.
	HELIX
)

var modelNames = [...]string{DOALL: "DOALL", PDOALL: "PDOALL", HELIX: "HELIX"}

// String returns the model name.
func (m Model) String() string { return modelNames[m] }

// ConflictIterLimit is the Partial-DOALL give-up threshold: if more than
// this fraction of iterations conflict, the loop is marked sequential
// (paper §III-B: 80%).
const ConflictIterLimit = 0.8

// FrequentLCDThreshold classifies a dynamic dependency as "frequent" when
// it manifests in at least this fraction of iterations (Table I reporting).
const FrequentLCDThreshold = 0.5

// Config is one limit-study configuration: an execution model plus the
// Table II relaxation flags.
type Config struct {
	// Model is the parallel execution model.
	Model Model
	// Reduc: 0 = reductions are treated as non-computable LCDs;
	// 1 = reductions are considered parallel with no overhead.
	Reduc int
	// Dep: 0 = non-computable register LCDs are not parallelizable;
	// 1 = lowered to memory and synchronized (HELIX only);
	// 2 = accelerated with realistic value prediction;
	// 3 = accelerated with perfect value prediction.
	Dep int
	// Fn: 0 = loops with any calls are sequential; 1 = only pure calls
	// allowed; 2 = pure + thread-safe + instrumented calls allowed;
	// 3 = all calls allowed.
	Fn int
	// AmortizeHelixDelta is an ABLATION knob, not part of Table II: when
	// set, a manifesting LCD's HELIX delta is divided by the iteration
	// distance between producer and consumer ((p-c)/(j-i)) instead of
	// the paper's literal p-c. The amortized variant models perfectly
	// elastic pipelining and is strictly more optimistic for HELIX; the
	// ablation (BenchmarkAblationHelixDelta, TestAblationHelixDelta)
	// shows it inflates HELIX on distant-dependence loops and flips
	// Figure 4 winners toward HELIX.
	AmortizeHelixDelta bool
}

// String renders the paper's configuration naming, e.g.
// "reduc1-dep1-fn2 HELIX".
func (c Config) String() string {
	return fmt.Sprintf("reduc%d-dep%d-fn%d %s", c.Reduc, c.Dep, c.Fn, c.Model)
}

// Validate rejects flag combinations the models cannot express
// (paper §IV: dep1–dep3 are incompatible with DOALL; dep1 lowers register
// LCDs to memory, which only HELIX synchronization supports).
func (c Config) Validate() error {
	if c.Reduc < 0 || c.Reduc > 1 {
		return fmt.Errorf("core: reduc flag %d out of range", c.Reduc)
	}
	if c.Dep < 0 || c.Dep > 3 {
		return fmt.Errorf("core: dep flag %d out of range", c.Dep)
	}
	if c.Fn < 0 || c.Fn > 3 {
		return fmt.Errorf("core: fn flag %d out of range", c.Fn)
	}
	if c.Model == DOALL && c.Dep != 0 {
		return fmt.Errorf("core: DOALL does not support non-computable register LCDs (dep%d)", c.Dep)
	}
	if c.Dep == 1 && c.Model != HELIX {
		return fmt.Errorf("core: dep1 (lower register LCDs to memory) requires HELIX synchronization")
	}
	return nil
}

// ParseConfig parses "reduc1-dep1-fn2 HELIX" (case-insensitive; the model
// may also come first, or be separated by ':' or '@').
func ParseConfig(s string) (Config, error) {
	fields := strings.FieldsFunc(strings.TrimSpace(s), func(r rune) bool {
		return r == ' ' || r == ':' || r == '@'
	})
	var cfg Config
	modelSet, flagsSet := false, false
	for _, f := range fields {
		switch strings.ToUpper(f) {
		case "DOALL":
			cfg.Model, modelSet = DOALL, true
			continue
		case "PDOALL", "PARTIAL-DOALL", "PARTIALDOALL":
			cfg.Model, modelSet = PDOALL, true
			continue
		case "HELIX", "DOACROSS":
			cfg.Model, modelSet = HELIX, true
			continue
		}
		var r, d, fn int
		if _, err := fmt.Sscanf(strings.ToLower(f), "reduc%d-dep%d-fn%d", &r, &d, &fn); err != nil {
			return Config{}, fmt.Errorf("core: cannot parse configuration field %q", f)
		}
		cfg.Reduc, cfg.Dep, cfg.Fn = r, d, fn
		flagsSet = true
	}
	if !modelSet || !flagsSet {
		return Config{}, fmt.Errorf("core: configuration %q must name a model and reducR-depD-fnF flags", s)
	}
	return cfg, cfg.Validate()
}

// PaperConfigs returns, in presentation order, the configurations of
// Figures 2 and 3 (bottom to top).
func PaperConfigs() []Config {
	return []Config{
		{Model: DOALL, Reduc: 0, Dep: 0, Fn: 0},
		{Model: DOALL, Reduc: 1, Dep: 0, Fn: 0},
		{Model: PDOALL, Reduc: 0, Dep: 0, Fn: 0},
		{Model: PDOALL, Reduc: 0, Dep: 2, Fn: 0},
		{Model: PDOALL, Reduc: 1, Dep: 2, Fn: 0},
		{Model: PDOALL, Reduc: 0, Dep: 0, Fn: 2},
		{Model: PDOALL, Reduc: 0, Dep: 2, Fn: 2},
		{Model: PDOALL, Reduc: 1, Dep: 2, Fn: 2},
		{Model: PDOALL, Reduc: 0, Dep: 3, Fn: 2},
		{Model: PDOALL, Reduc: 0, Dep: 3, Fn: 3},
		{Model: HELIX, Reduc: 0, Dep: 0, Fn: 2},
		{Model: HELIX, Reduc: 1, Dep: 0, Fn: 2},
		{Model: HELIX, Reduc: 0, Dep: 1, Fn: 2},
		{Model: HELIX, Reduc: 1, Dep: 1, Fn: 2},
	}
}

// BestPDOALL is the best realistic Partial-DOALL configuration of Figure 4.
func BestPDOALL() Config { return Config{Model: PDOALL, Reduc: 1, Dep: 2, Fn: 2} }

// BestHELIX is the best realistic HELIX configuration of Figure 4.
func BestHELIX() Config { return Config{Model: HELIX, Reduc: 1, Dep: 1, Fn: 2} }
