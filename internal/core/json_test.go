package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// allOutcomes enumerates every defined taxonomy value.
func allOutcomes() []Outcome {
	var out []Outcome
	for o := OutcomeOK; o <= OutcomeError; o++ {
		out = append(out, o)
	}
	return out
}

// TestOutcomeStringRoundTrip pins the label of every taxonomy value and
// checks ParseOutcome inverts String exactly.
func TestOutcomeStringRoundTrip(t *testing.T) {
	want := map[Outcome]string{
		OutcomeOK:           "ok",
		OutcomeStepLimit:    "step-limit",
		OutcomeMemLimit:     "mem-limit",
		OutcomeTimeout:      "timeout",
		OutcomeCanceled:     "canceled",
		OutcomePanic:        "panic",
		OutcomeRuntimeError: "runtime-error",
		OutcomeError:        "error",
	}
	if len(want) != len(allOutcomes()) {
		t.Fatalf("taxonomy drifted: %d values, test pins %d", len(allOutcomes()), len(want))
	}
	for o, label := range want {
		if got := o.String(); got != label {
			t.Errorf("%d.String() = %q, want %q", o, got, label)
		}
		parsed, err := ParseOutcome(label)
		if err != nil {
			t.Errorf("ParseOutcome(%q): %v", label, err)
		}
		if parsed != o {
			t.Errorf("ParseOutcome(%q) = %v, want %v", label, parsed, o)
		}
	}
	if _, err := ParseOutcome("no-such-outcome"); err == nil {
		t.Error("ParseOutcome accepted an unknown label")
	}
	if got := Outcome(200).String(); got != "outcome(200)" {
		t.Errorf("out-of-range String() = %q", got)
	}
}

// TestOutcomeJSONRoundTrip checks every taxonomy value survives a JSON
// round trip, both as a value and as a map key.
func TestOutcomeJSONRoundTrip(t *testing.T) {
	for _, o := range allOutcomes() {
		b, err := json.Marshal(o)
		if err != nil {
			t.Fatalf("marshal %v: %v", o, err)
		}
		if want := fmt.Sprintf("%q", o.String()); string(b) != want {
			t.Errorf("marshal %v = %s, want %s", o, b, want)
		}
		var back Outcome
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if back != o {
			t.Errorf("round trip %v = %v", o, back)
		}
	}
	// Map keys (the sweep endpoint's Counts) use the same labels.
	counts := map[Outcome]int{OutcomeOK: 3, OutcomeStepLimit: 1}
	b, err := json.Marshal(counts)
	if err != nil {
		t.Fatal(err)
	}
	var back map[Outcome]int
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(counts, back) {
		t.Errorf("map round trip: got %v, want %v", back, counts)
	}
	if _, err := json.Marshal(Outcome(200)); err == nil {
		t.Error("marshal accepted an out-of-range outcome")
	}
}

// TestOutcomeExitCode pins the exit-code contract shared by lpa and the
// serve layer: every taxonomy value maps to its documented code.
func TestOutcomeExitCode(t *testing.T) {
	tests := []struct {
		outcome Outcome
		code    int
	}{
		{OutcomeOK, 0},
		{OutcomeRuntimeError, 3},
		{OutcomeStepLimit, 4},
		{OutcomeMemLimit, 5},
		{OutcomeTimeout, 6},
		{OutcomeCanceled, 7},
		{OutcomePanic, 1},
		{OutcomeError, 1},
	}
	if len(tests) != len(allOutcomes()) {
		t.Fatalf("taxonomy drifted: %d values, test pins %d", len(allOutcomes()), len(tests))
	}
	for _, tt := range tests {
		if got := tt.outcome.ExitCode(); got != tt.code {
			t.Errorf("%v.ExitCode() = %d, want %d", tt.outcome, got, tt.code)
		}
	}
}

// TestClassifyExitCode walks error → Classify → ExitCode, the exact path
// the lpa process boundary and the serve error bodies take.
func TestClassifyExitCode(t *testing.T) {
	wrap := func(err error) error { return fmt.Errorf("core: prog: %w", err) }
	tests := []struct {
		name string
		err  error
		code int
	}{
		{"nil", nil, 0},
		{"runtime", wrap(ErrRuntime), 3},
		{"steps", wrap(ErrStepLimit), 4},
		{"mem", wrap(ErrMemLimit), 5},
		{"deadline", wrap(ErrDeadline), 6},
		{"ctx-deadline", context.DeadlineExceeded, 6},
		{"canceled", wrap(ErrCanceled), 7},
		{"ctx-canceled", context.Canceled, 7},
		{"panic", wrap(&PanicError{Val: "boom"}), 1},
		{"other", errors.New("bad config"), 1},
	}
	for _, tt := range tests {
		if got := Classify(tt.err).ExitCode(); got != tt.code {
			t.Errorf("%s: exit code %d, want %d", tt.name, got, tt.code)
		}
	}
}

// TestConfigJSONRoundTrip checks Config encodes as its paper string and
// parses back, for every paper configuration.
func TestConfigJSONRoundTrip(t *testing.T) {
	for _, cfg := range PaperConfigs() {
		b, err := json.Marshal(cfg)
		if err != nil {
			t.Fatalf("marshal %v: %v", cfg, err)
		}
		if want := fmt.Sprintf("%q", cfg.String()); string(b) != want {
			t.Errorf("marshal %v = %s, want %s", cfg, b, want)
		}
		var back Config
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if back != cfg {
			t.Errorf("round trip %v = %v", cfg, back)
		}
	}
	var bad Config
	if err := json.Unmarshal([]byte(`"reduc9-dep9-fn9 NOPE"`), &bad); err == nil {
		t.Error("unmarshal accepted an invalid configuration")
	}
}

// TestModelSerialReasonText pins the enum text encodings.
func TestModelSerialReasonText(t *testing.T) {
	for _, m := range []Model{DOALL, PDOALL, HELIX} {
		b, err := m.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Model
		if err := back.UnmarshalText(b); err != nil {
			t.Fatal(err)
		}
		if back != m {
			t.Errorf("model round trip %v = %v", m, back)
		}
	}
	var m Model
	if err := m.UnmarshalText([]byte("doacross")); err != nil || m != HELIX {
		t.Errorf("DOACROSS alias: %v, %v", m, err)
	}
	if err := m.UnmarshalText([]byte("SIMD")); err == nil {
		t.Error("unmarshal accepted an unknown model")
	}
	for r := SerialNone; r <= SerialNoGain; r++ {
		b, err := r.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back SerialReason
		if err := back.UnmarshalText(b); err != nil {
			t.Fatal(err)
		}
		if back != r {
			t.Errorf("reason round trip %v = %v", r, back)
		}
	}
	var r SerialReason
	if err := r.UnmarshalText([]byte("cosmic rays")); err == nil {
		t.Error("unmarshal accepted an unknown serial reason")
	}
}

// TestDepCensusJSONRoundTrip checks the census object encoding.
func TestDepCensusJSONRoundTrip(t *testing.T) {
	var c DepCensus
	c.Add(DepComputable, 4)
	c.Add(DepMemFrequent, 2)
	c.Add(DepStructural, 1)
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	// Every category is present, slug-keyed.
	for _, cat := range Categories() {
		if !strings.Contains(string(b), fmt.Sprintf("%q", cat.Slug())) {
			t.Errorf("census JSON missing category %q: %s", cat.Slug(), b)
		}
	}
	var back DepCensus
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != c {
		t.Errorf("census round trip: got %+v, want %+v", back, c)
	}
	if err := json.Unmarshal([]byte(`{"quantum":1}`), &back); err == nil {
		t.Error("unmarshal accepted an unknown category")
	}
}

// TestReportJSONRoundTrip runs a real program and round-trips its report,
// checking the derived fields are present on the wire.
func TestReportJSONRoundTrip(t *testing.T) {
	const src = `
const N = 200;
var tab [N]int;
func main() int {
	var i int;
	for (i = 0; i < N; i = i + 1) { tab[i] = i * 3 % 17; }
	var sum int = 0;
	for (i = 0; i < N; i = i + 1) { sum = sum + tab[i]; }
	return sum;
}`
	rep, err := RunSource("jsonprog", src, Config{Model: HELIX, Reduc: 1, Fn: 2}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"benchmark"`, `"config"`, `"speedup"`, `"coverage"`, `"loops"`, `"census"`, `"anomalies"`} {
		if !strings.Contains(string(b), key) {
			t.Errorf("report JSON missing %s:\n%s", key, b)
		}
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Benchmark != rep.Benchmark || back.Config != rep.Config ||
		back.SerialCost != rep.SerialCost || back.ParallelCost != rep.ParallelCost ||
		back.CoveredTicks != rep.CoveredTicks || back.Census != rep.Census ||
		back.Anomalies != rep.Anomalies || !reflect.DeepEqual(back.Loops, rep.Loops) {
		t.Errorf("report round trip mismatch:\ngot  %+v\nwant %+v", back, *rep)
	}
	if back.Speedup() != rep.Speedup() {
		t.Errorf("derived speedup drifted: %v vs %v", back.Speedup(), rep.Speedup())
	}
}
