package core

// Run-once / evaluate-many: one interpretation of a program feeds any
// number of per-configuration engines. The instrumentation event stream is
// configuration-independent (paper §III-A separates instrumentation from
// the run-time models of §III-B), so sweeping the Table II grid does not
// need to re-interpret the benchmark once per configuration — MultiRun
// amortizes the expensive producer (the interpreter) across N cheap
// consumers (the engines).
//
// Three fan-out strategies, selected by RunOptions.Strategy (PlanFanout
// resolves the auto default from configuration count and the Parallelism
// knob):
//
//   - Sequential tee (multiHooks): every event is forwarded to each engine
//     on the interpreting goroutine. Engines consume events synchronously
//     and never retain the interpreter's scratch slices, so no copying is
//     needed and the zero-allocation hot path is preserved.
//   - Class-affinity worker pool (multiRunPool/startWorkers): each event
//     is copied ONCE into a pooled, fixed-size event chunk (flat records
//     plus flat Val/LCDObs payload arrays — no per-event allocation), and
//     full sealed chunks are published to one buffered channel per WORKER.
//     Each worker owns a fixed round-robin subset of the coalesced engine
//     classes (a class — and therefore its core-local shadow tracker —
//     never migrates between workers, so no locks guard the SoA level
//     slices), and replays chunks read-only; a reference count returns
//     each chunk to the pool after the last worker. This is the one
//     documented place that copies the interpreter's scratch buffers (see
//     interp.Hooks), which is what makes the aliasing safe. The classic
//     one-goroutine-per-engine fan-out (MultiRunConcurrent) is the
//     workers == consumers special case.
//   - Chunked batched tee (chunkTee): the single-goroutine variant for
//     machines without spare CPUs — events buffer into the same chunks,
//     and each sealed chunk replays into every engine through the batched
//     tracker path (Engine.replayChunkBatched) instead of the per-event
//     hook dispatch.
//
// Sealing a chunk (evChunk.seal) classifies every memory address into its
// shadow region once, partitions the records into loop-event singletons
// and memory spans — maximal stretches of loads, stores, and interleaved
// ticks, with each record's intra-span clock offset precomputed — and
// summarizes each memory span's conflict structure (spanSum: per-region
// load-index intervals, homogeneous-kind flags, the self-conflict marker).
// The plan is built once per chunk and shared read-only by every consumer,
// so N engines split the classification AND summarization cost N ways:
// each feeds whole spans to the tracker's batched memRun method, which
// consults the shared summary to skip provably hit-free probing.
//
// The contract, enforced differentially against the golden suite: the
// reports of MultiRun(info, cfgs, opts) are bit-identical to running
// Run(info, cfg, opts) once per configuration.

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"loopapalooza/internal/analysis"
	"loopapalooza/internal/interp"
)

// FanoutThreshold is the configuration count at or above which MultiRun
// switches from the sequential tee to per-engine goroutines. Below it the
// per-chunk synchronization costs more than the sequential engine work.
const FanoutThreshold = 4

// evKind tags one flattened instrumentation event.
type evKind uint8

const (
	evTick evKind = iota
	evEnter
	evIter
	evExit
	evLoad
	evStore
)

// evRec is one instrumentation event in flattened form. Variable-length
// payloads (EnterLoop init values, IterLoop observations) live in the
// owning chunk's flat arrays, referenced by [off, off+n).
type evRec struct {
	kind evKind
	lm   *analysis.LoopMeta // enter/iter/exit
	a    int64              // Tick n; Enter/Iter sp; Load/Store addr
	off  int32              // payload start in the chunk's vals/obs
	n    int32              // payload length
}

// chunkRecs is the record capacity of one event chunk. At 32 bytes per
// record a chunk is ~128 KiB of hot, reused memory — large enough that
// channel synchronization amortizes to well under a nanosecond per event.
const chunkRecs = 4096

// evChunk is one batch of events plus the copied payloads. Consumers read
// it strictly read-only; refs counts consumers that have not released it.
type evChunk struct {
	recs []evRec
	vals []interp.Val
	obs  []interp.LCDObs
	refs atomic.Int32

	// Batched-replay plan, built once per chunk by seal and shared
	// read-only by every consumer: the chunk's partition into spans, the
	// dense memory-record array the spans index (kind, region
	// classification, and intra-span tick offsets, in record order), and
	// one conflict summary per memory span (flat, parallel slice indexed
	// by runSpan.sumIdx) that every engine class consults before probing.
	spans []runSpan
	mem   []memEv
	sums  []spanSum
}

// evMemSpan tags a runSpan covering a memory run: a maximal stretch of
// load, store, and tick records between loop events. It is a span kind
// only, never a record kind.
const evMemSpan evKind = 0xFF

// runSpan is one element of a sealed chunk's replay plan. Loop events
// (enter/iter/exit) are singleton spans addressing recs[rec]; everything
// between them — loads, stores, and the ticks interleaved with them — is
// one memory span addressing the chunk's dense m-arrays [mstart, mend),
// with sum the total clock advance inside the span.
type runSpan struct {
	kind         evKind
	rec          int32 // record index, for loop-event spans
	mstart, mend int32 // m-array range, for memory spans
	sumIdx       int32 // conflict-summary index in the chunk's sums, for memory spans
	sum          int64 // Σ tick payloads, for memory spans
}

// reset readies a recycled chunk for refilling.
func (c *evChunk) reset() {
	c.recs = c.recs[:0]
	c.vals = c.vals[:0]
	c.obs = c.obs[:0]
	c.spans = c.spans[:0]
	c.mem = c.mem[:0]
	c.sums = c.sums[:0]
}

// seal builds the chunk's batched-replay plan. Every load/store address is
// classified into its shadow region exactly once — all consumers share the
// result — and the record sequence is partitioned into loop-event
// singletons and memory spans. Ticks are folded INTO memory spans: the
// producer interleaves a tick flush before nearly every memory event, so
// same-kind record runs are almost always length one, but a memory span
// only needs each record's clock offset (mTick) to replay stores and
// conflict offsets exactly — which is what lets spans grow to hundreds of
// records and the tracker amortize its dispatch across them.
func (c *evChunk) seal() {
	n := len(c.recs)
	c.spans = c.spans[:0]
	c.mem = c.mem[:0]
	c.sums = c.sums[:0]
	for i := 0; i < n; {
		switch k := c.recs[i].kind; k {
		case evEnter, evIter, evExit:
			c.spans = append(c.spans, runSpan{kind: k, rec: int32(i)})
			i++
		default: // tick/load/store: one memory span
			ms := int32(len(c.mem))
			var sum int64
		run:
			for ; i < n; i++ {
				r := &c.recs[i]
				switch r.kind {
				case evTick:
					sum += r.a
				case evLoad, evStore:
					reg, idx := region(r.a)
					c.mem = append(c.mem, memEv{
						idx: idx, addr: r.a, tick: sum,
						kind: uint8(r.kind - evLoad), // memLoad / memStore
						reg:  int8(reg),
					})
				default:
					break run
				}
			}
			// The span-level precomputation: summarize once here, on the
			// producer, so the N consumer classes share one conflict
			// summary instead of each re-deriving what the span can hit.
			si := int32(len(c.sums))
			c.sums = append(c.sums, summarizeSpan(c.mem[ms:]))
			c.spans = append(c.spans, runSpan{
				kind: evMemSpan, mstart: ms, mend: int32(len(c.mem)), sumIdx: si, sum: sum,
			})
		}
	}
}

// replayChunk applies one chunk of events, in order, to a synchronous
// hooks consumer. The payload sub-slices alias the chunk; consumers follow
// the interp.Hooks contract and do not retain them.
func replayChunk(h interp.Hooks, c *evChunk) {
	for i := range c.recs {
		r := &c.recs[i]
		switch r.kind {
		case evTick:
			h.Tick(r.a)
		case evEnter:
			h.EnterLoop(r.lm, r.a, c.vals[r.off:r.off+r.n])
		case evIter:
			h.IterLoop(r.lm, r.a, c.obs[r.off:r.off+r.n])
		case evExit:
			h.ExitLoop(r.lm)
		case evLoad:
			h.Load(r.a)
		case evStore:
			h.Store(r.a)
		}
	}
}

// replayChunkBatched applies one SEALED chunk to an engine through the
// batched tracker path, the per-config compiled evaluator of the chunked
// strategies:
//
//   - each memory span makes ONE tracker dispatch per live loop instance
//     (Engine.memSpan → depTracker.memRun) instead of one per event, with
//     the precomputed intra-span tick offsets keeping every store's clock
//     stamp and every conflict offset exact;
//   - the span's tick sum collapses to a single clock add (Tick only
//     accumulates, so the precomputed sum is exact — and the coalescing is
//     strictly consumer-side, leaving recorded trace bytes untouched);
//   - payloads dead under this configuration's evalPlan (IterLoop
//     observations under dep0, EnterLoop init values without predictors)
//     are skipped wholesale instead of being sliced and dispatched into
//     code that discards them.
//
// The result is bit-identical to replayChunk feeding Engine's per-event
// hooks; the oracle suites pin that equivalence.
func (e *Engine) replayChunkBatched(c *evChunk) {
	for si := range c.spans {
		s := &c.spans[si]
		switch s.kind {
		case evMemSpan:
			if s.mend > s.mstart {
				e.memSpan(c.mem[s.mstart:s.mend], &c.sums[s.sumIdx])
			}
			e.clock += s.sum
		case evEnter:
			r := &c.recs[s.rec]
			var init []interp.Val
			if e.plan.initLive {
				init = c.vals[r.off : r.off+r.n]
			}
			e.EnterLoop(r.lm, r.a, init)
		case evIter:
			r := &c.recs[s.rec]
			var obs []interp.LCDObs
			if e.plan.obsLive {
				obs = c.obs[r.off : r.off+r.n]
			}
			e.IterLoop(r.lm, r.a, obs)
		case evExit:
			e.ExitLoop(c.recs[s.rec].lm)
		}
	}
}

// multiHooks is the sequential fan-out tee: events forward to every
// consumer on the interpreting goroutine, scratch slices included — safe
// because consumers are synchronous and non-retaining.
type multiHooks struct{ hs []interp.Hooks }

func (m *multiHooks) Tick(n int64) {
	for _, h := range m.hs {
		h.Tick(n)
	}
}

func (m *multiHooks) EnterLoop(lm *analysis.LoopMeta, sp int64, init []interp.Val) {
	for _, h := range m.hs {
		h.EnterLoop(lm, sp, init)
	}
}

func (m *multiHooks) IterLoop(lm *analysis.LoopMeta, sp int64, obs []interp.LCDObs) {
	for _, h := range m.hs {
		h.IterLoop(lm, sp, obs)
	}
}

func (m *multiHooks) ExitLoop(lm *analysis.LoopMeta) {
	for _, h := range m.hs {
		h.ExitLoop(lm)
	}
}

func (m *multiHooks) Load(addr int64) {
	for _, h := range m.hs {
		h.Load(addr)
	}
}

func (m *multiHooks) Store(addr int64) {
	for _, h := range m.hs {
		h.Store(addr)
	}
}

// chunkWriter accumulates hook events into the current chunk and invokes
// onFull when it fills — the shared producer half of both chunked
// strategies (concurrent fan-out and single-goroutine batched tee). It
// runs on the interpreting goroutine; copying the scratch payload slices
// into the chunk's flat arrays is the one copy of the fan-out.
type chunkWriter struct {
	cur    *evChunk
	onFull func()
}

// rec appends one record, handing off the chunk when full.
func (w *chunkWriter) rec(r evRec) {
	c := w.cur
	c.recs = append(c.recs, r)
	if len(c.recs) == cap(c.recs) {
		w.onFull()
	}
}

// Tick implements interp.Hooks.
func (w *chunkWriter) Tick(n int64) { w.rec(evRec{kind: evTick, a: n}) }

// EnterLoop implements interp.Hooks: the init scratch slice is copied into
// the chunk's flat payload array (the single copy of the fan-out).
func (w *chunkWriter) EnterLoop(lm *analysis.LoopMeta, sp int64, init []interp.Val) {
	c := w.cur
	off := int32(len(c.vals))
	c.vals = append(c.vals, init...)
	w.rec(evRec{kind: evEnter, lm: lm, a: sp, off: off, n: int32(len(init))})
}

// IterLoop implements interp.Hooks: the obs scratch slice is copied into
// the chunk's flat payload array (the single copy of the fan-out).
func (w *chunkWriter) IterLoop(lm *analysis.LoopMeta, sp int64, obs []interp.LCDObs) {
	c := w.cur
	off := int32(len(c.obs))
	c.obs = append(c.obs, obs...)
	w.rec(evRec{kind: evIter, lm: lm, a: sp, off: off, n: int32(len(obs))})
}

// ExitLoop implements interp.Hooks.
func (w *chunkWriter) ExitLoop(lm *analysis.LoopMeta) { w.rec(evRec{kind: evExit, lm: lm}) }

// Load implements interp.Hooks.
func (w *chunkWriter) Load(addr int64) { w.rec(evRec{kind: evLoad, a: addr}) }

// Store implements interp.Hooks.
func (w *chunkWriter) Store(addr int64) { w.rec(evRec{kind: evStore, a: addr}) }

// chunkFanout is the concurrent fan-out producer: it copies each event
// into the current chunk and publishes sealed full chunks to every
// consumer channel. It runs on the interpreting goroutine.
type chunkFanout struct {
	chunkWriter
	outs []chan *evChunk
	pool chan *evChunk
}

// fanoutPoolSize bounds the chunk free list. With consumer channels of
// depth fanoutChanDepth, the producer can run at most
// pool+depth+2 chunks ahead of the slowest consumer.
const (
	fanoutPoolSize  = 8
	fanoutChanDepth = 4
)

func newChunkFanout(n int) *chunkFanout {
	f := &chunkFanout{
		outs: make([]chan *evChunk, n),
		pool: make(chan *evChunk, fanoutPoolSize),
	}
	for i := range f.outs {
		f.outs[i] = make(chan *evChunk, fanoutChanDepth)
	}
	f.cur = f.newChunk()
	f.onFull = f.flush
	return f
}

func (f *chunkFanout) newChunk() *evChunk {
	select {
	case c := <-f.pool:
		c.reset()
		return c
	default:
		return &evChunk{recs: make([]evRec, 0, chunkRecs)}
	}
}

// release returns a chunk whose last consumer finished to the pool.
func (f *chunkFanout) release(c *evChunk) {
	select {
	case f.pool <- c:
	default: // pool full: let the GC have it
	}
}

// flush seals and publishes the current (non-empty) chunk to every
// consumer. Sealing happens once here, on the producer, so the N consumers
// share one classification pass.
func (f *chunkFanout) flush() {
	c := f.cur
	if len(c.recs) == 0 {
		return
	}
	c.seal()
	c.refs.Store(int32(len(f.outs)))
	for _, ch := range f.outs {
		ch <- c
	}
	f.cur = f.newChunk()
}

// close flushes the tail chunk and closes every consumer channel.
func (f *chunkFanout) close() {
	f.flush()
	for _, ch := range f.outs {
		close(ch)
	}
}

// chunkTee is the single-goroutine batched fan-out: events buffer into one
// chunk, and every engine consumes each full chunk through the batched
// tracker path. Because its only consumers are batched engines — per-event
// hooks like the trace writer tee off the producer directly, see
// MultiRunChunked — the tee builds the SEALED plan at write time: ticks
// fold straight into the open memory span's sum, loads and stores append
// classified memEv records, and only loop events materialize as evRecs.
// The per-event record array and the separate seal pass of the concurrent
// fan-out never exist on this path. One chunk is reused for the whole run;
// there is no channel, no pool, no goroutine.
type chunkTee struct {
	engines []*Engine
	cur     *evChunk
	sum     int64 // Σ tick payloads of the open memory span
	mstart  int32 // start of the open memory span in cur.mem
}

func newChunkTee(engines []*Engine) *chunkTee {
	return &chunkTee{
		engines: engines,
		cur: &evChunk{
			recs: make([]evRec, 0, chunkRecs),
			mem:  make([]memEv, 0, chunkRecs),
		},
	}
}

// closeMemSpan ends the open memory span, emitting it — with its shared
// conflict summary — if it observed any tick or memory record.
func (t *chunkTee) closeMemSpan() {
	c := t.cur
	if t.sum != 0 || int32(len(c.mem)) > t.mstart {
		si := int32(len(c.sums))
		c.sums = append(c.sums, summarizeSpan(c.mem[t.mstart:]))
		c.spans = append(c.spans, runSpan{
			kind: evMemSpan, mstart: t.mstart, mend: int32(len(c.mem)), sumIdx: si, sum: t.sum,
		})
		t.sum = 0
		t.mstart = int32(len(c.mem))
	}
}

// loopRec appends one loop-event record plus its singleton span, flushing
// when the chunk fills.
func (t *chunkTee) loopRec(r evRec) {
	t.closeMemSpan()
	c := t.cur
	c.spans = append(c.spans, runSpan{kind: r.kind, rec: int32(len(c.recs))})
	c.recs = append(c.recs, r)
	if len(c.recs) >= chunkRecs {
		t.flush()
	}
}

// Tick implements interp.Hooks: ticks only accumulate, so they fold into
// the open span's sum without materializing a record.
func (t *chunkTee) Tick(n int64) { t.sum += n }

// Load implements interp.Hooks.
func (t *chunkTee) Load(addr int64) {
	r, idx := region(addr)
	c := t.cur
	c.mem = append(c.mem, memEv{idx: idx, addr: addr, tick: t.sum, kind: memLoad, reg: int8(r)})
	if len(c.mem) >= chunkRecs {
		t.flush()
	}
}

// Store implements interp.Hooks.
func (t *chunkTee) Store(addr int64) {
	r, idx := region(addr)
	c := t.cur
	c.mem = append(c.mem, memEv{idx: idx, addr: addr, tick: t.sum, kind: memStore, reg: int8(r)})
	if len(c.mem) >= chunkRecs {
		t.flush()
	}
}

// EnterLoop implements interp.Hooks: the init scratch slice is copied into
// the chunk's flat payload array.
func (t *chunkTee) EnterLoop(lm *analysis.LoopMeta, sp int64, init []interp.Val) {
	c := t.cur
	off := int32(len(c.vals))
	c.vals = append(c.vals, init...)
	t.loopRec(evRec{kind: evEnter, lm: lm, a: sp, off: off, n: int32(len(init))})
}

// IterLoop implements interp.Hooks: the obs scratch slice is copied into
// the chunk's flat payload array.
func (t *chunkTee) IterLoop(lm *analysis.LoopMeta, sp int64, obs []interp.LCDObs) {
	c := t.cur
	off := int32(len(c.obs))
	c.obs = append(c.obs, obs...)
	t.loopRec(evRec{kind: evIter, lm: lm, a: sp, off: off, n: int32(len(obs))})
}

// ExitLoop implements interp.Hooks.
func (t *chunkTee) ExitLoop(lm *analysis.LoopMeta) { t.loopRec(evRec{kind: evExit, lm: lm}) }

// flush replays the buffered plan into every engine and resets the chunk
// for refilling. A memory span interrupted by a flush simply splits in
// two, which is exact: the engine adds the first part's tick sum to its
// clock before the second part computes offsets against the updated
// clock. Call once more after the producer finishes to drain the partial
// tail.
func (t *chunkTee) flush() {
	t.closeMemSpan()
	c := t.cur
	if len(c.spans) == 0 {
		return
	}
	for _, e := range t.engines {
		e.replayChunkBatched(c)
	}
	c.reset()
	t.mstart = 0
}

// MultiRun executes the analyzed module's main function ONCE and evaluates
// every configuration against the shared event stream, returning one
// report per configuration, in order. The reports are bit-identical to
// running Run once per configuration; an execution failure (budget trip,
// guest fault, cancellation) is returned once and applies to every
// configuration, exactly as N identical executions would each have failed.
//
// The strategy is opts.Strategy, resolved by PlanFanout: under the auto
// default, small configuration sets (< FanoutThreshold) evaluate
// sequentially on the interpreting goroutine, larger sets use the chunked
// batched tee when only one worker is available (goroutine fan-out adds
// synchronization without parallelism there), and otherwise shard sealed
// chunks across the class-affinity worker pool, opts.Parallelism workers
// wide. opts.DisableBatch forces the per-event hook dispatch everywhere
// (profiling/differential toggle).
func MultiRun(info *analysis.ModuleInfo, cfgs []Config, opts RunOptions) ([]*Report, error) {
	switch plan := PlanFanout(len(cfgs), opts); plan.Strategy {
	case StrategySequential:
		return MultiRunSequential(info, cfgs, opts)
	case StrategyChunked:
		return MultiRunChunked(info, cfgs, opts)
	default:
		return multiRunPool(info, cfgs, opts, plan.Parallelism)
	}
}

// interpret runs main under the selected execution engine with the given
// hooks and the RunOptions budgets.
func interpret(info *analysis.ModuleInfo, opts RunOptions, hooks interp.Hooks) error {
	var deadline time.Time
	if opts.Timeout > 0 {
		deadline = time.Now().Add(opts.Timeout)
	}
	cfg := interp.Config{
		Out:          opts.Out,
		MaxSteps:     opts.MaxSteps,
		MaxHeapCells: opts.MaxHeapCells,
		Ctx:          opts.Ctx,
		Deadline:     deadline,
		Hooks:        hooks,
	}
	if _, err := execute(info, opts.Engine, cfg, opts.EntryArgs); err != nil {
		return fmt.Errorf("core: %s: %w", info.Mod.Name, err)
	}
	return nil
}

// traceSink wraps the optional opts.Trace writer into a fan-out consumer,
// returning the hook to append (nil when tracing is off).
func traceSink(info *analysis.ModuleInfo, opts RunOptions) *TraceWriter {
	if opts.Trace == nil {
		return nil
	}
	return NewTraceWriter(opts.Trace, info)
}

// MultiRunSequential is MultiRun restricted to the sequential tee: every
// engine consumes events on the interpreting goroutine. Exported so the
// differential oracle can pin both fan-out strategies explicitly.
func MultiRunSequential(info *analysis.ModuleInfo, cfgs []Config, opts RunOptions) (reps []*Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			reps, err = nil, fmt.Errorf("core: %s: %w", info.Mod.Name,
				&PanicError{Val: r, Stack: string(debug.Stack())})
		}
	}()
	set, err := prepareEngines(info, cfgs, opts.Tracker)
	if err != nil {
		return nil, err
	}
	hooks := make([]interp.Hooks, len(set.engines))
	for i, e := range set.engines {
		hooks[i] = e
	}
	tw := traceSink(info, opts)
	if tw != nil {
		hooks = append(hooks, tw)
	}
	if err := interpret(info, opts, &multiHooks{hs: hooks}); err != nil {
		return nil, err
	}
	if tw != nil {
		if err := tw.Close(); err != nil {
			return nil, fmt.Errorf("core: %s: writing trace: %w", info.Mod.Name, err)
		}
	}
	return set.reports(cfgs, info.Mod.Name), nil
}

// MultiRunChunked is MultiRun restricted to the single-goroutine batched
// tee: events buffer into chunks on the interpreting goroutine, and every
// engine consumes each sealed chunk through the batched tracker path. The
// default for large configuration sets on single-CPU machines; exported so
// the differential oracle can pin this strategy explicitly.
func MultiRunChunked(info *analysis.ModuleInfo, cfgs []Config, opts RunOptions) (reps []*Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			reps, err = nil, fmt.Errorf("core: %s: %w", info.Mod.Name,
				&PanicError{Val: r, Stack: string(debug.Stack())})
		}
	}()
	set, err := prepareEngines(info, cfgs, opts.Tracker)
	if err != nil {
		return nil, err
	}
	t := newChunkTee(set.engines)
	var hooks interp.Hooks = t
	tw := traceSink(info, opts)
	if tw != nil {
		// The trace writer needs the per-event stream; it tees off the
		// producer directly, ahead of the batched tee, so recorded bytes
		// are identical to every other strategy's.
		hooks = &multiHooks{hs: []interp.Hooks{t, tw}}
	}
	if err := interpret(info, opts, hooks); err != nil {
		return nil, err
	}
	t.flush() // drain the partial tail chunk
	if tw != nil {
		if err := tw.Close(); err != nil {
			return nil, fmt.Errorf("core: %s: writing trace: %w", info.Mod.Name, err)
		}
	}
	return set.reports(cfgs, info.Mod.Name), nil
}

// startWorkers launches the class-affinity worker pool: one goroutine per
// consumer group, each replaying every published chunk into its group's
// consumers IN GROUP ORDER — engines through the batched path when batch
// is set, everything else through the generic per-event dispatch. A
// consumer belongs to exactly one worker for the whole run, so its state
// (in particular an engine's core-local shadow tracker) is only ever
// touched from one goroutine and needs no locks; determinism follows
// because each worker's channel delivers chunks in publication order
// regardless of how the workers interleave.
//
// The returned wait function blocks until every channel is drained (call
// it after f.close()) and reports the first worker panic, if any, as a
// typed *PanicError. A panicked worker keeps draining its channel without
// applying events, so the producer never blocks on it, the sibling
// workers keep running, and chunk reference counts stay balanced.
func startWorkers(f *chunkFanout, groups [][]interp.Hooks, batch bool) (wait func() *PanicError) {
	var wg sync.WaitGroup
	var workerPanic atomic.Pointer[PanicError]
	for i, group := range groups {
		wg.Add(1)
		engs := make([]*Engine, len(group))
		if batch {
			for j, h := range group {
				engs[j], _ = h.(*Engine)
			}
		}
		go func(group []interp.Hooks, engs []*Engine, ch chan *evChunk) {
			defer wg.Done()
			dead := false // after a panic, drain without applying
			for c := range ch {
				if !dead {
					func() {
						defer func() {
							if r := recover(); r != nil {
								dead = true
								workerPanic.CompareAndSwap(nil,
									&PanicError{Val: r, Stack: string(debug.Stack())})
							}
						}()
						for j, h := range group {
							if engs[j] != nil {
								engs[j].replayChunkBatched(c)
							} else {
								replayChunk(h, c)
							}
						}
					}()
				}
				if c.refs.Add(-1) == 0 {
					f.release(c)
				}
			}
		}(group, engs, f.outs[i])
	}
	return func() *PanicError {
		wg.Wait()
		return workerPanic.Load()
	}
}

// affinityGroups partitions the consumers round-robin across at most
// workers groups: consumer i is pinned to group i%workers for the whole
// run. The consumers are the coalesced engine classes (plus the optional
// trace writer), so the assignment is the pool's class affinity — a class
// never migrates between workers.
func affinityGroups(consumers []interp.Hooks, workers int) [][]interp.Hooks {
	if workers > len(consumers) {
		workers = len(consumers)
	}
	if workers < 1 {
		workers = 1
	}
	groups := make([][]interp.Hooks, workers)
	for i, h := range consumers {
		groups[i%workers] = append(groups[i%workers], h)
	}
	return groups
}

// multiRunPool is the shared body of the pooled strategies: interpret once
// on the calling goroutine, fan sealed chunks out to workers many groups
// of consumers. workers <= 0 means one worker per consumer (the classic
// concurrent fan-out).
func multiRunPool(info *analysis.ModuleInfo, cfgs []Config, opts RunOptions, workers int) (reps []*Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			reps, err = nil, fmt.Errorf("core: %s: %w", info.Mod.Name,
				&PanicError{Val: r, Stack: string(debug.Stack())})
		}
	}()
	set, err := prepareEngines(info, cfgs, opts.Tracker)
	if err != nil {
		return nil, err
	}
	consumers := make([]interp.Hooks, len(set.engines))
	for i, e := range set.engines {
		consumers[i] = e
	}
	tw := traceSink(info, opts)
	if tw != nil {
		consumers = append(consumers, tw)
	}
	if workers <= 0 {
		workers = len(consumers)
	}

	groups := affinityGroups(consumers, workers)
	f := newChunkFanout(len(groups))
	wait := startWorkers(f, groups, !opts.DisableBatch)

	runErr := interpret(info, opts, f)
	f.close()

	if p := wait(); p != nil {
		return nil, fmt.Errorf("core: %s: %w", info.Mod.Name, p)
	}
	if runErr != nil {
		return nil, runErr
	}
	if tw != nil {
		if err := tw.Close(); err != nil {
			return nil, fmt.Errorf("core: %s: writing trace: %w", info.Mod.Name, err)
		}
	}
	return set.reports(cfgs, info.Mod.Name), nil
}

// MultiRunParallel is MultiRun restricted to the class-affinity worker
// pool: opts.Parallelism workers (0 = one per available CPU), each owning
// a fixed subset of the coalesced engine classes, fed by pooled sealed
// chunks. Reports and recorded traces are bit-identical at every worker
// count. Exported so the differential oracles and the determinism tests
// can pin the strategy and the worker count explicitly.
func MultiRunParallel(info *analysis.ModuleInfo, cfgs []Config, opts RunOptions) ([]*Report, error) {
	return multiRunPool(info, cfgs, opts, resolveParallelism(opts.Parallelism))
}

// MultiRunConcurrent is MultiRun restricted to the widest pool: one worker
// per engine class, fed by pooled event chunks — the historical concurrent
// fan-out, now the workers == consumers special case of multiRunPool.
// Exported so the differential oracle and the race stress test can pin
// this strategy regardless of configuration count.
func MultiRunConcurrent(info *analysis.ModuleInfo, cfgs []Config, opts RunOptions) ([]*Report, error) {
	return multiRunPool(info, cfgs, opts, 0)
}
