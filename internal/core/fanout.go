package core

// Run-once / evaluate-many: one interpretation of a program feeds any
// number of per-configuration engines. The instrumentation event stream is
// configuration-independent (paper §III-A separates instrumentation from
// the run-time models of §III-B), so sweeping the Table II grid does not
// need to re-interpret the benchmark once per configuration — MultiRun
// amortizes the expensive producer (the interpreter) across N cheap
// consumers (the engines).
//
// Two fan-out strategies, chosen by configuration count:
//
//   - Sequential tee (multiHooks): every event is forwarded to each engine
//     on the interpreting goroutine. Engines consume events synchronously
//     and never retain the interpreter's scratch slices, so no copying is
//     needed and the zero-allocation hot path is preserved.
//   - Chunked concurrent fan-out: each event is copied ONCE into a pooled,
//     fixed-size event chunk (flat records plus flat Val/LCDObs payload
//     arrays — no per-event allocation), and full chunks are published to
//     one buffered channel per engine. Engine goroutines replay chunks
//     read-only; a reference count returns each chunk to the pool after
//     the last consumer. This is the one documented place that copies the
//     interpreter's scratch buffers (see interp.Hooks), which is what
//     makes the aliasing safe.
//
// The contract, enforced differentially against the golden suite: the
// reports of MultiRun(info, cfgs, opts) are bit-identical to running
// Run(info, cfg, opts) once per configuration.

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"loopapalooza/internal/analysis"
	"loopapalooza/internal/interp"
)

// FanoutThreshold is the configuration count at or above which MultiRun
// switches from the sequential tee to per-engine goroutines. Below it the
// per-chunk synchronization costs more than the sequential engine work.
const FanoutThreshold = 4

// evKind tags one flattened instrumentation event.
type evKind uint8

const (
	evTick evKind = iota
	evEnter
	evIter
	evExit
	evLoad
	evStore
)

// evRec is one instrumentation event in flattened form. Variable-length
// payloads (EnterLoop init values, IterLoop observations) live in the
// owning chunk's flat arrays, referenced by [off, off+n).
type evRec struct {
	kind evKind
	lm   *analysis.LoopMeta // enter/iter/exit
	a    int64              // Tick n; Enter/Iter sp; Load/Store addr
	off  int32              // payload start in the chunk's vals/obs
	n    int32              // payload length
}

// chunkRecs is the record capacity of one event chunk. At 32 bytes per
// record a chunk is ~128 KiB of hot, reused memory — large enough that
// channel synchronization amortizes to well under a nanosecond per event.
const chunkRecs = 4096

// evChunk is one batch of events plus the copied payloads. Consumers read
// it strictly read-only; refs counts consumers that have not released it.
type evChunk struct {
	recs []evRec
	vals []interp.Val
	obs  []interp.LCDObs
	refs atomic.Int32
}

// reset readies a recycled chunk for refilling.
func (c *evChunk) reset() {
	c.recs = c.recs[:0]
	c.vals = c.vals[:0]
	c.obs = c.obs[:0]
}

// replayChunk applies one chunk of events, in order, to a synchronous
// hooks consumer. The payload sub-slices alias the chunk; consumers follow
// the interp.Hooks contract and do not retain them.
func replayChunk(h interp.Hooks, c *evChunk) {
	for i := range c.recs {
		r := &c.recs[i]
		switch r.kind {
		case evTick:
			h.Tick(r.a)
		case evEnter:
			h.EnterLoop(r.lm, r.a, c.vals[r.off:r.off+r.n])
		case evIter:
			h.IterLoop(r.lm, r.a, c.obs[r.off:r.off+r.n])
		case evExit:
			h.ExitLoop(r.lm)
		case evLoad:
			h.Load(r.a)
		case evStore:
			h.Store(r.a)
		}
	}
}

// multiHooks is the sequential fan-out tee: events forward to every
// consumer on the interpreting goroutine, scratch slices included — safe
// because consumers are synchronous and non-retaining.
type multiHooks struct{ hs []interp.Hooks }

func (m *multiHooks) Tick(n int64) {
	for _, h := range m.hs {
		h.Tick(n)
	}
}

func (m *multiHooks) EnterLoop(lm *analysis.LoopMeta, sp int64, init []interp.Val) {
	for _, h := range m.hs {
		h.EnterLoop(lm, sp, init)
	}
}

func (m *multiHooks) IterLoop(lm *analysis.LoopMeta, sp int64, obs []interp.LCDObs) {
	for _, h := range m.hs {
		h.IterLoop(lm, sp, obs)
	}
}

func (m *multiHooks) ExitLoop(lm *analysis.LoopMeta) {
	for _, h := range m.hs {
		h.ExitLoop(lm)
	}
}

func (m *multiHooks) Load(addr int64) {
	for _, h := range m.hs {
		h.Load(addr)
	}
}

func (m *multiHooks) Store(addr int64) {
	for _, h := range m.hs {
		h.Store(addr)
	}
}

// chunkFanout is the concurrent fan-out producer: it copies each event
// into the current chunk and publishes full chunks to every consumer
// channel. It runs on the interpreting goroutine.
type chunkFanout struct {
	outs []chan *evChunk
	pool chan *evChunk
	cur  *evChunk
}

// fanoutPoolSize bounds the chunk free list. With consumer channels of
// depth fanoutChanDepth, the producer can run at most
// pool+depth+2 chunks ahead of the slowest consumer.
const (
	fanoutPoolSize  = 8
	fanoutChanDepth = 4
)

func newChunkFanout(n int) *chunkFanout {
	f := &chunkFanout{
		outs: make([]chan *evChunk, n),
		pool: make(chan *evChunk, fanoutPoolSize),
	}
	for i := range f.outs {
		f.outs[i] = make(chan *evChunk, fanoutChanDepth)
	}
	f.cur = f.newChunk()
	return f
}

func (f *chunkFanout) newChunk() *evChunk {
	select {
	case c := <-f.pool:
		c.reset()
		return c
	default:
		return &evChunk{recs: make([]evRec, 0, chunkRecs)}
	}
}

// release returns a chunk whose last consumer finished to the pool.
func (f *chunkFanout) release(c *evChunk) {
	select {
	case f.pool <- c:
	default: // pool full: let the GC have it
	}
}

// rec appends one record, publishing the chunk when full.
func (f *chunkFanout) rec(r evRec) {
	c := f.cur
	c.recs = append(c.recs, r)
	if len(c.recs) == cap(c.recs) {
		f.flush()
	}
}

// flush publishes the current (non-empty) chunk to every consumer.
func (f *chunkFanout) flush() {
	c := f.cur
	if len(c.recs) == 0 {
		return
	}
	c.refs.Store(int32(len(f.outs)))
	for _, ch := range f.outs {
		ch <- c
	}
	f.cur = f.newChunk()
}

// close flushes the tail chunk and closes every consumer channel.
func (f *chunkFanout) close() {
	f.flush()
	for _, ch := range f.outs {
		close(ch)
	}
}

// Tick implements interp.Hooks.
func (f *chunkFanout) Tick(n int64) { f.rec(evRec{kind: evTick, a: n}) }

// EnterLoop implements interp.Hooks: the init scratch slice is copied into
// the chunk's flat payload array (the single copy of the fan-out).
func (f *chunkFanout) EnterLoop(lm *analysis.LoopMeta, sp int64, init []interp.Val) {
	c := f.cur
	off := int32(len(c.vals))
	c.vals = append(c.vals, init...)
	f.rec(evRec{kind: evEnter, lm: lm, a: sp, off: off, n: int32(len(init))})
}

// IterLoop implements interp.Hooks: the obs scratch slice is copied into
// the chunk's flat payload array (the single copy of the fan-out).
func (f *chunkFanout) IterLoop(lm *analysis.LoopMeta, sp int64, obs []interp.LCDObs) {
	c := f.cur
	off := int32(len(c.obs))
	c.obs = append(c.obs, obs...)
	f.rec(evRec{kind: evIter, lm: lm, a: sp, off: off, n: int32(len(obs))})
}

// ExitLoop implements interp.Hooks.
func (f *chunkFanout) ExitLoop(lm *analysis.LoopMeta) { f.rec(evRec{kind: evExit, lm: lm}) }

// Load implements interp.Hooks.
func (f *chunkFanout) Load(addr int64) { f.rec(evRec{kind: evLoad, a: addr}) }

// Store implements interp.Hooks.
func (f *chunkFanout) Store(addr int64) { f.rec(evRec{kind: evStore, a: addr}) }

// MultiRun executes the analyzed module's main function ONCE and evaluates
// every configuration against the shared event stream, returning one
// report per configuration, in order. The reports are bit-identical to
// running Run once per configuration; an execution failure (budget trip,
// guest fault, cancellation) is returned once and applies to every
// configuration, exactly as N identical executions would each have failed.
//
// Small configuration sets (< FanoutThreshold) evaluate sequentially on
// the interpreting goroutine; larger sets fan out to one goroutine per
// engine fed by copied event chunks.
func MultiRun(info *analysis.ModuleInfo, cfgs []Config, opts RunOptions) ([]*Report, error) {
	if len(cfgs) >= FanoutThreshold {
		return MultiRunConcurrent(info, cfgs, opts)
	}
	return MultiRunSequential(info, cfgs, opts)
}

// prepareEngines validates every configuration and builds its engine.
func prepareEngines(info *analysis.ModuleInfo, cfgs []Config, kind TrackerKind) ([]*Engine, error) {
	engines := make([]*Engine, len(cfgs))
	for i, cfg := range cfgs {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		engines[i] = NewEngineTracker(info, cfg, kind)
	}
	return engines, nil
}

// interpret runs main under the selected execution engine with the given
// hooks and the RunOptions budgets.
func interpret(info *analysis.ModuleInfo, opts RunOptions, hooks interp.Hooks) error {
	var deadline time.Time
	if opts.Timeout > 0 {
		deadline = time.Now().Add(opts.Timeout)
	}
	cfg := interp.Config{
		Out:          opts.Out,
		MaxSteps:     opts.MaxSteps,
		MaxHeapCells: opts.MaxHeapCells,
		Ctx:          opts.Ctx,
		Deadline:     deadline,
		Hooks:        hooks,
	}
	if _, err := execute(info, opts.Engine, cfg, opts.EntryArgs); err != nil {
		return fmt.Errorf("core: %s: %w", info.Mod.Name, err)
	}
	return nil
}

// reports finalizes one report per engine.
func reports(engines []*Engine, name string) []*Report {
	out := make([]*Report, len(engines))
	for i, e := range engines {
		out[i] = e.Report(name)
	}
	return out
}

// traceSink wraps the optional opts.Trace writer into a fan-out consumer,
// returning the hook to append (nil when tracing is off).
func traceSink(info *analysis.ModuleInfo, opts RunOptions) *TraceWriter {
	if opts.Trace == nil {
		return nil
	}
	return NewTraceWriter(opts.Trace, info)
}

// MultiRunSequential is MultiRun restricted to the sequential tee: every
// engine consumes events on the interpreting goroutine. Exported so the
// differential oracle can pin both fan-out strategies explicitly.
func MultiRunSequential(info *analysis.ModuleInfo, cfgs []Config, opts RunOptions) (reps []*Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			reps, err = nil, fmt.Errorf("core: %s: %w", info.Mod.Name,
				&PanicError{Val: r, Stack: string(debug.Stack())})
		}
	}()
	engines, err := prepareEngines(info, cfgs, opts.Tracker)
	if err != nil {
		return nil, err
	}
	hooks := make([]interp.Hooks, len(engines))
	for i, e := range engines {
		hooks[i] = e
	}
	tw := traceSink(info, opts)
	if tw != nil {
		hooks = append(hooks, tw)
	}
	if err := interpret(info, opts, &multiHooks{hs: hooks}); err != nil {
		return nil, err
	}
	if tw != nil {
		if err := tw.Close(); err != nil {
			return nil, fmt.Errorf("core: %s: writing trace: %w", info.Mod.Name, err)
		}
	}
	return reports(engines, info.Mod.Name), nil
}

// startConsumers launches one goroutine per consumer, each replaying the
// chunks published on its channel. The returned wait function blocks until
// every channel is drained (call it after f.close()) and reports the first
// consumer panic, if any. A panicked consumer keeps draining its channel
// without applying events, so the producer never blocks on it, and chunk
// reference counts stay balanced.
func startConsumers(f *chunkFanout, consumers []interp.Hooks) (wait func() *PanicError) {
	var wg sync.WaitGroup
	var consumerPanic atomic.Pointer[PanicError]
	for i, h := range consumers {
		wg.Add(1)
		go func(h interp.Hooks, ch chan *evChunk) {
			defer wg.Done()
			dead := false // after a panic, drain without applying
			for c := range ch {
				if !dead {
					func() {
						defer func() {
							if r := recover(); r != nil {
								dead = true
								consumerPanic.CompareAndSwap(nil,
									&PanicError{Val: r, Stack: string(debug.Stack())})
							}
						}()
						replayChunk(h, c)
					}()
				}
				if c.refs.Add(-1) == 0 {
					f.release(c)
				}
			}
		}(h, f.outs[i])
	}
	return func() *PanicError {
		wg.Wait()
		return consumerPanic.Load()
	}
}

// MultiRunConcurrent is MultiRun restricted to the chunked concurrent
// fan-out: one goroutine per engine, fed by pooled event chunks. Exported
// so the differential oracle and the race stress test can pin this
// strategy regardless of configuration count.
func MultiRunConcurrent(info *analysis.ModuleInfo, cfgs []Config, opts RunOptions) (reps []*Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			reps, err = nil, fmt.Errorf("core: %s: %w", info.Mod.Name,
				&PanicError{Val: r, Stack: string(debug.Stack())})
		}
	}()
	engines, err := prepareEngines(info, cfgs, opts.Tracker)
	if err != nil {
		return nil, err
	}
	consumers := make([]interp.Hooks, len(engines))
	for i, e := range engines {
		consumers[i] = e
	}
	tw := traceSink(info, opts)
	if tw != nil {
		consumers = append(consumers, tw)
	}

	f := newChunkFanout(len(consumers))
	wait := startConsumers(f, consumers)

	runErr := interpret(info, opts, f)
	f.close()

	if p := wait(); p != nil {
		return nil, fmt.Errorf("core: %s: %w", info.Mod.Name, p)
	}
	if runErr != nil {
		return nil, runErr
	}
	if tw != nil {
		if err := tw.Close(); err != nil {
			return nil, fmt.Errorf("core: %s: writing trace: %w", info.Mod.Name, err)
		}
	}
	return reports(engines, info.Mod.Name), nil
}
