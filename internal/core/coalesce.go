package core

// Configuration coalescing: the run-once / evaluate-many amortization of
// fanout.go, taken one step further. Two Table II configurations often
// compile to the SAME evaluator for a given module — reduc0 vs reduc1 is
// meaningless for a program with no reductions, fn flags only act through
// the static serialization verdicts, dep flags only act through loops that
// both survive the static constraints and carry observed register LCDs.
// Since every engine consumes the identical event stream, two
// configurations whose behavior-relevant parameters coincide evolve
// through identical states and produce identical reports (modulo the
// echoed Config field).
//
// MultiRun therefore groups the configuration grid into behavior classes
// per module and runs ONE engine per class; each member configuration's
// report is regenerated from the shared engine (Engine.Report is pure)
// with its own Config stamped in. The differential oracles pin the
// bit-identity of this collapse against per-configuration Run across the
// full benchmark suite.

import (
	"loopapalooza/internal/analysis"
)

// configClass is the behavioral signature of one configuration against one
// module: two configurations with equal classes drive the engine through
// identical state evolution on any event stream the module can produce.
//
// Fields are normalized so that parameters without a behavioral outlet
// collapse to a sentinel: dep is -1 unless some statically-parallelizable
// loop carries observed LCDs (the only place the dep flag acts at run
// time), and reduc is -1 unless such a loop carries reduction observations
// AND dep is nonzero (constrained() is only consulted when observations
// are handled). Static effects of all flags are captured exactly by the
// per-loop reason vector.
type configClass struct {
	model    Model
	amortize bool
	dep      int
	reduc    int
	// reasons is the static serialization verdict per loop, in module
	// order — one byte per loop.
	reasons string
}

// classOf computes cfg's behavior class for the module. It mirrors the
// engine's cfg reads exactly: staticReason covers newStat, the dep/reduc
// sentinels cover IterLoop's observation handling and predictor
// construction on loops that can ever be tracked (dynamic serialization
// only shrinks the statically-parallelizable set), and model/amortize
// cover the per-model policy switches.
func classOf(info *analysis.ModuleInfo, cfg Config) configClass {
	c := configClass{model: cfg.Model, amortize: cfg.AmortizeHelixDelta, dep: -1, reduc: -1}
	reasons := make([]byte, len(info.Loops))
	hasObs, hasReducObs := false, false
	for i, lm := range info.Loops {
		r := staticReason(cfg, lm)
		reasons[i] = byte('0' + int(r))
		if r != SerialNone {
			continue
		}
		if n := len(lm.Observed); n > 0 {
			hasObs = true
			if n > lm.NumObservedNonComputable() {
				hasReducObs = true
			}
		}
	}
	c.reasons = string(reasons)
	if hasObs {
		c.dep = cfg.Dep
	}
	if hasReducObs && cfg.Dep != 0 {
		c.reduc = cfg.Reduc
	}
	return c
}

// engineSet is the coalesced engine pool of one MultiRun: one engine per
// distinct behavior class, plus the configuration-to-engine assignment.
type engineSet struct {
	engines []*Engine
	assign  []int // cfgs index → engines index
}

// prepareEngines validates every configuration and builds one engine per
// behavior class, assigning each configuration to its class representative.
func prepareEngines(info *analysis.ModuleInfo, cfgs []Config, kind TrackerKind) (*engineSet, error) {
	s := &engineSet{assign: make([]int, len(cfgs))}
	classes := map[configClass]int{}
	for i, cfg := range cfgs {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		cl := classOf(info, cfg)
		if j, ok := classes[cl]; ok {
			s.assign[i] = j
			continue
		}
		classes[cl] = len(s.engines)
		s.assign[i] = len(s.engines)
		s.engines = append(s.engines, NewEngineTracker(info, cfg, kind))
	}
	return s, nil
}

// reports finalizes one report per configuration. Members of a shared
// class re-derive the report from the class engine — Engine.Report reads
// engine state without mutating it — with the member's own Config echoed.
func (s *engineSet) reports(cfgs []Config, name string) []*Report {
	out := make([]*Report, len(cfgs))
	for i, cfg := range cfgs {
		r := s.engines[s.assign[i]].Report(name)
		r.Config = cfg
		out[i] = r
	}
	return out
}
