package core

import (
	"fmt"
	"sort"
	"strings"

	"loopapalooza/internal/predict"
)

// LoopReport summarizes one static loop under one configuration.
type LoopReport struct {
	// ID is "function:header".
	ID string `json:"id"`
	// Depth is the nesting depth (1 = outermost).
	Depth int `json:"depth"`
	// Parallel reports whether the loop ended the run still considered
	// parallelizable.
	Parallel bool `json:"parallel"`
	// Reason explains serialization (SerialNone when parallel).
	Reason SerialReason `json:"reason"`
	// StaticallySerial distinguishes Table II rejections from dynamic
	// discoveries.
	StaticallySerial bool `json:"staticallySerial"`
	// Instances / ParallelInstances / Iters / ConflictIters /
	// SerialTicks aggregate dynamic behaviour.
	Instances         int64 `json:"instances"`
	ParallelInstances int64 `json:"parallelInstances"`
	Iters             int64 `json:"iters"`
	ConflictIters     int64 `json:"conflictIters"`
	SerialTicks       int64 `json:"serialTicks"`
	// Computable / Reductions / NonComputable are the static register
	// LCD counts (Table I).
	Computable    int `json:"computable"`
	Reductions    int `json:"reductions"`
	NonComputable int `json:"nonComputable"`
	// PredHitRate is the hybrid predictor hit rate over the loop's
	// observed LCDs (NaN-free: 0 when nothing was observed).
	PredHitRate float64 `json:"predHitRate"`
	// Delta and Slowest echo the engine's HELIX diagnostics.
	Delta   int64 `json:"delta"`
	Slowest int64 `json:"slowest"`
}

// ConflictIterRate returns the fraction of iterations that conflicted.
func (lr *LoopReport) ConflictIterRate() float64 {
	if lr.Iters == 0 {
		return 0
	}
	return float64(lr.ConflictIters) / float64(lr.Iters)
}

// Report is the outcome of one limit-study run.
type Report struct {
	// Benchmark names the program.
	Benchmark string `json:"benchmark"`
	// Config is the configuration that produced the report.
	Config Config `json:"config"`
	// SerialCost is the dynamic IR instruction count of the sequential
	// execution (the baseline).
	SerialCost int64 `json:"serialCost"`
	// ParallelCost is the limit-study parallel time.
	ParallelCost int64 `json:"parallelCost"`
	// CoveredTicks is the serial time spent inside parallel loops.
	CoveredTicks int64 `json:"coveredTicks"`
	// Loops reports every static loop, outer first.
	Loops []LoopReport `json:"loops"`
	// Census tallies Table I dependency categories.
	Census DepCensus `json:"census"`
	// Anomalies counts loop hook events the engine could not attribute
	// (mismatched or underflowing Enter/Iter/Exit sequences). All zero on
	// a healthy run.
	Anomalies LoopEventAnomalies `json:"anomalies"`
}

// Speedup returns SerialCost / ParallelCost.
func (r *Report) Speedup() float64 {
	if r.ParallelCost <= 0 {
		return 1
	}
	return float64(r.SerialCost) / float64(r.ParallelCost)
}

// Coverage returns the fraction of dynamic instructions executed within
// parallel loops (Figure 5's metric).
func (r *Report) Coverage() float64 {
	if r.SerialCost <= 0 {
		return 0
	}
	return float64(r.CoveredTicks) / float64(r.SerialCost)
}

// Report builds the final report after the run completed.
func (e *Engine) Report(benchmark string) *Report {
	r := &Report{
		Benchmark:    benchmark,
		Config:       e.cfg,
		SerialCost:   e.SerialCost(),
		ParallelCost: e.ParallelCost(),
		CoveredTicks: e.CoveredTicks(),
		Anomalies:    e.anomalies,
	}
	metas := e.info.Loops
	for _, lm := range metas {
		st := e.stats[lm]
		if st == nil {
			continue
		}
		lr := LoopReport{
			ID:                lm.ID(),
			Depth:             lm.Loop.Depth,
			Parallel:          st.Reason == SerialNone,
			Reason:            st.Reason,
			StaticallySerial:  st.StaticallySerial,
			Instances:         st.Instances,
			ParallelInstances: st.ParallelInstances,
			Iters:             st.Iters,
			ConflictIters:     st.ConflictIters,
			SerialTicks:       st.SerialTicks,
			Computable:        len(lm.Computable),
			Reductions:        len(lm.Reductions),
			NonComputable:     len(lm.NonComputable),
			Delta:             st.LastDelta,
			Slowest:           st.LastSlowest,
		}
		// Predictor hit rate across this loop's observed LCDs.
		var correct, total int64
		for _, p := range st.preds {
			if h, ok := p.(*predict.Hybrid); ok {
				c, t := h.Stats()
				correct += c
				total += t
			}
		}
		if total > 0 {
			lr.PredHitRate = float64(correct) / float64(total)
		}
		r.Loops = append(r.Loops, lr)

		// Table I census.
		r.Census.Add(DepComputable, int64(len(lm.Computable)))
		r.Census.Add(DepReduction, int64(len(lm.Reductions)))
		if len(lm.NonComputable) > 0 {
			if lr.PredHitRate >= PredictableHitRate {
				r.Census.Add(DepPredictableReg, int64(len(lm.NonComputable)))
			} else {
				r.Census.Add(DepUnpredictableReg, int64(len(lm.NonComputable)))
			}
		}
		if st.ConflictIters > 0 && st.Iters > 0 {
			if float64(st.ConflictIters) >= FrequentLCDThreshold*float64(st.Iters) {
				r.Census.Add(DepMemFrequent, 1)
			} else {
				r.Census.Add(DepMemInfrequent, 1)
			}
		}
		if lm.HasCall {
			r.Census.Add(DepStructural, 1)
		}
	}
	sort.SliceStable(r.Loops, func(i, j int) bool { return r.Loops[i].SerialTicks > r.Loops[j].SerialTicks })
	return r
}

// String renders a human-readable report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s under %s\n", r.Benchmark, r.Config)
	fmt.Fprintf(&b, "  serial cost   %12d IR instructions\n", r.SerialCost)
	fmt.Fprintf(&b, "  parallel cost %12d IR instructions\n", r.ParallelCost)
	fmt.Fprintf(&b, "  speedup       %12.2fx\n", r.Speedup())
	fmt.Fprintf(&b, "  coverage      %11.1f%% of dynamic instructions in parallel loops\n", 100*r.Coverage())
	if n := r.Anomalies.Total(); n > 0 {
		fmt.Fprintf(&b, "  WARNING: %d unattributable loop events (iter %d/%d, exit %d/%d mismatch/underflow)\n",
			n, r.Anomalies.IterMismatch, r.Anomalies.IterNoActive,
			r.Anomalies.ExitMismatch, r.Anomalies.ExitNoActive)
	}
	if len(r.Loops) > 0 {
		fmt.Fprintf(&b, "  loops (by serial weight):\n")
		for i, lr := range r.Loops {
			if i == 12 {
				fmt.Fprintf(&b, "    ... %d more\n", len(r.Loops)-i)
				break
			}
			status := "parallel"
			if !lr.Parallel {
				status = "serial: " + lr.Reason.String()
			}
			fmt.Fprintf(&b, "    %-28s d%d %10d ticks %8d iters  conflicts %5.1f%%  pred %4.0f%%  delta %3d/%-3d  %s\n",
				lr.ID, lr.Depth, lr.SerialTicks, lr.Iters,
				100*lr.ConflictIterRate(), 100*lr.PredHitRate, lr.Delta, lr.Slowest, status)
		}
	}
	return b.String()
}
