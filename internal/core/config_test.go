package core

import (
	"strings"
	"testing"
)

func TestConfigFlags(t *testing.T) {
	// Table II: every paper configuration must validate and round-trip
	// through the parser.
	for _, cfg := range PaperConfigs() {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg, err)
		}
		parsed, err := ParseConfig(cfg.String())
		if err != nil {
			t.Errorf("ParseConfig(%q): %v", cfg.String(), err)
			continue
		}
		if parsed != cfg {
			t.Errorf("round trip %s -> %s", cfg, parsed)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Model: DOALL, Dep: 1},
		{Model: DOALL, Dep: 2},
		{Model: DOALL, Dep: 3},
		{Model: PDOALL, Dep: 1}, // dep1 needs HELIX
		{Model: HELIX, Dep: 4},
		{Model: HELIX, Reduc: 2},
		{Model: HELIX, Fn: 9},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%+v validated but should not", c)
		}
	}
	good := []Config{
		{Model: HELIX, Dep: 1, Fn: 2},
		{Model: PDOALL, Dep: 3, Fn: 3},
		{Model: HELIX, Dep: 2, Fn: 0},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c, err)
		}
	}
}

func TestParseConfigForms(t *testing.T) {
	want := Config{Model: HELIX, Reduc: 1, Dep: 1, Fn: 2}
	for _, s := range []string{
		"reduc1-dep1-fn2 HELIX",
		"HELIX reduc1-dep1-fn2",
		"helix:reduc1-dep1-fn2",
		"REDUC1-DEP1-FN2 helix",
		"doacross@reduc1-dep1-fn2",
	} {
		got, err := ParseConfig(s)
		if err != nil {
			t.Errorf("ParseConfig(%q): %v", s, err)
			continue
		}
		if got != want {
			t.Errorf("ParseConfig(%q) = %s, want %s", s, got, want)
		}
	}
	for _, s := range []string{"", "helix", "reduc1-dep1-fn2", "bogus stuff", "doall:reduc0-dep2-fn0"} {
		if _, err := ParseConfig(s); err == nil {
			t.Errorf("ParseConfig(%q) succeeded, want error", s)
		}
	}
}

func TestConfigString(t *testing.T) {
	c := Config{Model: PDOALL, Reduc: 1, Dep: 2, Fn: 2}
	if got := c.String(); got != "reduc1-dep2-fn2 PDOALL" {
		t.Errorf("String = %q", got)
	}
}

func TestBestConfigs(t *testing.T) {
	if BestPDOALL().String() != "reduc1-dep2-fn2 PDOALL" {
		t.Errorf("BestPDOALL = %s", BestPDOALL())
	}
	if BestHELIX().String() != "reduc1-dep1-fn2 HELIX" {
		t.Errorf("BestHELIX = %s", BestHELIX())
	}
}

func TestTableICategories(t *testing.T) {
	cats := Categories()
	if len(cats) != 8 {
		t.Fatalf("Table I categories = %d, want 8", len(cats))
	}
	var c DepCensus
	c.Add(DepComputable, 3)
	c.Add(DepMemFrequent, 1)
	if c.Count(DepComputable) != 3 || c.Count(DepMemFrequent) != 1 || c.Count(DepReduction) != 0 {
		t.Error("census bookkeeping wrong")
	}
	for _, cat := range cats {
		if cat.String() == "" || strings.HasPrefix(cat.String(), "kind(") {
			t.Errorf("category %d lacks a name", cat)
		}
	}
}
