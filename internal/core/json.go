package core

// JSON and text encodings of the report surface. The serve layer and the
// golden-report fixtures depend on these round-tripping exactly: every
// enum encodes as its canonical label, Config as its paper string
// ("reduc1-dep1-fn2 HELIX"), and Report gains derived speedup/coverage
// fields on the wire. Changing any encoding here is a wire-format break:
// regenerate the golden fixtures and bump the serve docs.

import (
	"encoding/json"
	"fmt"
	"strings"
)

// MarshalText encodes the model as its name (DOALL, PDOALL, HELIX).
func (m Model) MarshalText() ([]byte, error) {
	if int(m) >= len(modelNames) {
		return nil, fmt.Errorf("core: model %d out of range", m)
	}
	return []byte(modelNames[m]), nil
}

// UnmarshalText parses a model name, accepting the same case-insensitive
// aliases as ParseConfig (PARTIAL-DOALL, DOACROSS, ...).
func (m *Model) UnmarshalText(b []byte) error {
	switch strings.ToUpper(string(b)) {
	case "DOALL":
		*m = DOALL
	case "PDOALL", "PARTIAL-DOALL", "PARTIALDOALL":
		*m = PDOALL
	case "HELIX", "DOACROSS":
		*m = HELIX
	default:
		return fmt.Errorf("core: unknown model %q", b)
	}
	return nil
}

// MarshalText encodes the configuration as its paper string, e.g.
// "reduc1-dep1-fn2 HELIX".
func (c Config) MarshalText() ([]byte, error) { return []byte(c.String()), nil }

// UnmarshalText parses a paper configuration string via ParseConfig.
func (c *Config) UnmarshalText(b []byte) error {
	cfg, err := ParseConfig(string(b))
	if err != nil {
		return err
	}
	*c = cfg
	return nil
}

// MarshalText encodes the serialization reason as its label
// ("parallel", "register LCD", ...).
func (r SerialReason) MarshalText() ([]byte, error) {
	if int(r) >= len(serialReasonNames) {
		return nil, fmt.Errorf("core: serial reason %d out of range", r)
	}
	return []byte(serialReasonNames[r]), nil
}

// UnmarshalText parses a serialization-reason label.
func (r *SerialReason) UnmarshalText(b []byte) error {
	for i, name := range serialReasonNames {
		if string(b) == name {
			*r = SerialReason(i)
			return nil
		}
	}
	return fmt.Errorf("core: unknown serial reason %q", b)
}

// MarshalText encodes the outcome as its taxonomy label ("step-limit").
func (o Outcome) MarshalText() ([]byte, error) {
	if int(o) >= len(outcomeNames) {
		return nil, fmt.Errorf("core: outcome %d out of range", o)
	}
	return []byte(outcomeNames[o]), nil
}

// UnmarshalText parses a taxonomy label via ParseOutcome.
func (o *Outcome) UnmarshalText(b []byte) error {
	parsed, err := ParseOutcome(string(b))
	if err != nil {
		return err
	}
	*o = parsed
	return nil
}

// ParseOutcome maps a taxonomy label ("ok", "step-limit", ...) back to its
// Outcome — the inverse of Outcome.String over the defined values.
func ParseOutcome(s string) (Outcome, error) {
	for i, name := range outcomeNames {
		if s == name {
			return Outcome(i), nil
		}
	}
	return OutcomeError, fmt.Errorf("core: unknown outcome %q", s)
}

// ExitCode maps the outcome to the CLI exit-code contract shared by lpa
// and the serve layer's error bodies:
//
//	0  success
//	3  guest runtime fault
//	4  step budget exhausted
//	5  memory budget exhausted
//	6  deadline/timeout exceeded
//	7  canceled
//	1  everything else (compile, configuration, panic, ...)
func (o Outcome) ExitCode() int {
	switch o {
	case OutcomeOK:
		return 0
	case OutcomeRuntimeError:
		return 3
	case OutcomeStepLimit:
		return 4
	case OutcomeMemLimit:
		return 5
	case OutcomeTimeout:
		return 6
	case OutcomeCanceled:
		return 7
	default:
		return 1
	}
}

// depCategorySlugs are the wire labels of the Table I categories: stable,
// space-free keys for JSON objects and metric labels.
var depCategorySlugs = [...]string{
	DepComputable:       "computable",
	DepReduction:        "reduction",
	DepPredictableReg:   "predictable-reg",
	DepUnpredictableReg: "unpredictable-reg",
	DepMemFrequent:      "mem-frequent",
	DepMemInfrequent:    "mem-infrequent",
	DepFalse:            "false-dep",
	DepStructural:       "structural",
}

// Slug returns the stable wire label of the category.
func (c DepCategory) Slug() string {
	if int(c) < len(depCategorySlugs) {
		return depCategorySlugs[c]
	}
	return fmt.Sprintf("category-%d", c)
}

// MarshalText encodes the category as its slug.
func (c DepCategory) MarshalText() ([]byte, error) { return []byte(c.Slug()), nil }

// UnmarshalText parses a category slug.
func (c *DepCategory) UnmarshalText(b []byte) error {
	for i, slug := range depCategorySlugs {
		if string(b) == slug {
			*c = DepCategory(i)
			return nil
		}
	}
	return fmt.Errorf("core: unknown dependency category %q", b)
}

// MarshalJSON encodes the census as a slug-keyed object with every Table I
// category present (zeros included, so fixtures diff stably).
func (c DepCensus) MarshalJSON() ([]byte, error) {
	m := make(map[string]int64, len(c.counts))
	for _, cat := range Categories() {
		m[cat.Slug()] = c.counts[cat]
	}
	return json.Marshal(m)
}

// UnmarshalJSON decodes a slug-keyed census object.
func (c *DepCensus) UnmarshalJSON(b []byte) error {
	var m map[string]int64
	if err := json.Unmarshal(b, &m); err != nil {
		return err
	}
	*c = DepCensus{}
	for slug, n := range m {
		var cat DepCategory
		if err := cat.UnmarshalText([]byte(slug)); err != nil {
			return err
		}
		c.counts[cat] = n
	}
	return nil
}

// reportJSON mirrors Report on the wire, adding the derived speedup and
// coverage so clients need not recompute them.
type reportJSON struct {
	*reportAlias
	Speedup  float64 `json:"speedup"`
	Coverage float64 `json:"coverage"`
}

// reportAlias strips Report's methods to avoid marshal recursion.
type reportAlias Report

// MarshalJSON encodes the report with derived speedup/coverage fields.
func (r *Report) MarshalJSON() ([]byte, error) {
	return json.Marshal(reportJSON{
		reportAlias: (*reportAlias)(r),
		Speedup:     r.Speedup(),
		Coverage:    r.Coverage(),
	})
}

// UnmarshalJSON decodes a report, ignoring the derived fields (they are
// recomputable from the costs).
func (r *Report) UnmarshalJSON(b []byte) error {
	aux := reportJSON{reportAlias: (*reportAlias)(r)}
	return json.Unmarshal(b, &aux)
}
