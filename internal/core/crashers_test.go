package core

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestCrasherReplayRun replays the checked-in crashers end to end — parse,
// check, lower, analyze, execute under tight budgets. Inputs that fail to
// compile must fail with a diagnostic; inputs that compile must either run
// or fail inside the documented error taxonomy. Nothing may panic, hang,
// or allocate outside the budgets (the huge-globals and deep-recursion
// crashers did exactly that before their fixes).
func TestCrasherReplayRun(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "lang", "testdata", "crashers", "*.lpc"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no crashers checked in under internal/lang/testdata/crashers")
	}
	opts := RunOptions{MaxSteps: 1_000_000, MaxHeapCells: 1 << 20}
	cfg := Config{Model: PDOALL, Reduc: 1, Dep: 2, Fn: 2}
	for _, p := range paths {
		p := p
		t.Run(filepath.Base(p), func(t *testing.T) {
			src, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			_, rerr := RunSource(filepath.Base(p), string(src), cfg, opts)
			if rerr == nil {
				return
			}
			if errors.Is(rerr, ErrPanic) {
				t.Fatalf("crasher regressed to a panic: %v", rerr)
			}
			for _, sentinel := range []error{ErrStepLimit, ErrMemLimit, ErrDeadline, ErrCanceled, ErrRuntime} {
				if errors.Is(rerr, sentinel) {
					return // classified execution failure: fine
				}
			}
			// Otherwise it must be a compile-time diagnostic; the compile
			// surface's own replay test (internal/lang) checks its shape.
		})
	}
}
