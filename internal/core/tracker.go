package core

import (
	"loopapalooza/internal/analysis"
	"loopapalooza/internal/interp"
)

// TrackerKind selects the dependence-tracking data structure behind the
// engine. The two trackers are semantically identical — the legacy map
// tracker is kept as a differential oracle for the shadow memory — so the
// choice only affects performance.
type TrackerKind int

const (
	// TrackerShadow is the default: a flat, generation-stamped shadow
	// memory. Load/Store cost one array index plus a generation compare
	// per active loop level, and clearing an instance is a generation
	// bump instead of a map drop.
	TrackerShadow TrackerKind = iota
	// TrackerLegacyMap is the original per-instance map[int64]writeRec
	// write set, retained as the correctness oracle.
	TrackerLegacyMap
)

// String names the tracker kind.
func (k TrackerKind) String() string {
	if k == TrackerLegacyMap {
		return "legacy-map"
	}
	return "shadow"
}

// depTracker stores, per active loop instance, the last cross-iteration
// write to each address. The engine owns all policy (cactus-stack
// exemption, same-iteration and committed-phase filtering, conflict
// handling); the tracker is pure storage.
type depTracker interface {
	// enter prepares (or resets) storage for an instance that begins
	// tracking. inst.depth is its nesting level, unique among active
	// instances.
	enter(inst *instance)
	// load returns the recorded write covering addr for inst, if any.
	load(inst *instance, addr int64) (writeRec, bool)
	// store records a write at addr for inst.
	store(inst *instance, addr int64, rec writeRec)
	// drop discards inst's write set (the instance serialized or exited).
	drop(inst *instance)
}

// mapTracker is the legacy write-set representation: one map per instance.
type mapTracker struct{}

func (mapTracker) enter(inst *instance) { inst.writes = map[int64]writeRec{} }
func (mapTracker) drop(inst *instance)  { inst.writes = nil }
func (mapTracker) load(inst *instance, addr int64) (writeRec, bool) {
	rec, ok := inst.writes[addr]
	return rec, ok
}
func (mapTracker) store(inst *instance, addr int64, rec writeRec) {
	inst.writes[addr] = rec
}

// Shadow-memory geometry. Guest addresses split into three dense regions
// (low/global, heap, stack); each region of each nesting level is a flat
// table indexed by the region offset, grown geometrically as addresses are
// touched. Addresses outside a region's flat cap (wild pointers, or heaps
// larger than the flat budget) fall back to a per-level overflow map, so a
// given address is *always* flat or *always* overflow for the whole run.
const (
	// regLow covers [0, HeapBase): null, globals, and any stray low
	// address. Its flat cap is the exact end of the global segment.
	regLow = 0
	// regHeap covers [HeapBase, StackTop-DefaultStackWords).
	regHeap = 1
	// regStack covers the stack segment (IsStackAddr).
	regStack = 2

	// heapFlatCap bounds the flat heap table per level; heap offsets at
	// or above it use the overflow map. 1<<24 entries * 24 B = 384 MiB
	// worst case per fully-touched level, reached only geometrically.
	heapFlatCap = int64(1) << 24

	// minShadowTab is the initial flat-table size on first touch.
	minShadowTab = 64
)

// shadowRec is one shadow-memory entry: a generation stamp plus the write
// record. Entries whose gen differs from the level's current generation are
// stale leftovers of earlier instances and read as absent.
type shadowRec struct {
	gen uint64
	writeRec
}

// shadowLevel is the shadow memory of one loop-nesting level. Exactly one
// active instance occupies a level at a time (levels are stack depths), so
// a single generation counter distinguishes the current instance's writes
// from stale ones.
type shadowLevel struct {
	gen  uint64
	tabs [3][]shadowRec      // flat tables, indexed by region offset
	over map[int64]shadowRec // addresses beyond the flat caps, by address
}

// shadowTracker implements depTracker with generation-stamped flat tables.
type shadowTracker struct {
	levels []*shadowLevel
	caps   [3]int64 // flat-table cap per region
}

func newShadowTracker(info *analysis.ModuleInfo) *shadowTracker {
	t := &shadowTracker{}
	globalEnd := int64(interp.GlobalBase)
	if info != nil && info.Mod != nil {
		for _, g := range info.Mod.Globals {
			globalEnd += g.Size
		}
	}
	t.caps[regLow] = globalEnd
	t.caps[regHeap] = heapFlatCap
	t.caps[regStack] = interp.DefaultStackWords
	return t
}

// region maps an address to its region and dense offset. Offsets outside
// [0, caps[r]) are stored in the level's overflow map.
func region(addr int64) (r int, idx int64) {
	if interp.IsStackAddr(addr) {
		return regStack, interp.StackTop - 1 - addr
	}
	if addr >= interp.HeapBase {
		return regHeap, addr - interp.HeapBase
	}
	return regLow, addr
}

func (t *shadowTracker) enter(inst *instance) {
	for int(inst.depth) >= len(t.levels) {
		t.levels = append(t.levels, &shadowLevel{})
	}
	// One bump invalidates every record the previous occupant of this
	// level left behind, across all regions and the overflow map.
	t.levels[inst.depth].gen++
}

func (t *shadowTracker) drop(inst *instance) {
	// Stale records are invalidated by the next occupant's generation
	// bump; nothing to clear now.
}

func (t *shadowTracker) load(inst *instance, addr int64) (writeRec, bool) {
	lvl := t.levels[inst.depth]
	r, idx := region(addr)
	if idx < 0 || idx >= t.caps[r] {
		rec, ok := lvl.over[addr]
		if !ok || rec.gen != lvl.gen {
			return writeRec{}, false
		}
		return rec.writeRec, true
	}
	tab := lvl.tabs[r]
	if idx >= int64(len(tab)) {
		return writeRec{}, false
	}
	rec := tab[idx]
	if rec.gen != lvl.gen {
		return writeRec{}, false
	}
	return rec.writeRec, true
}

func (t *shadowTracker) store(inst *instance, addr int64, rec writeRec) {
	lvl := t.levels[inst.depth]
	r, idx := region(addr)
	if idx < 0 || idx >= t.caps[r] {
		if lvl.over == nil {
			lvl.over = map[int64]shadowRec{}
		}
		lvl.over[addr] = shadowRec{gen: lvl.gen, writeRec: rec}
		return
	}
	tab := lvl.tabs[r]
	if idx >= int64(len(tab)) {
		tab = growShadowTab(tab, idx, t.caps[r])
		lvl.tabs[r] = tab
	}
	tab[idx] = shadowRec{gen: lvl.gen, writeRec: rec}
}

// growShadowTab extends a flat table to cover idx: geometric doubling from
// minShadowTab, clamped to the region cap. Stale prefixes keep their old
// generation stamps, so no clearing is needed.
func growShadowTab(tab []shadowRec, idx, cap64 int64) []shadowRec {
	n := int64(len(tab))
	if n < minShadowTab {
		n = minShadowTab
	}
	for n <= idx {
		n *= 2
	}
	if n > cap64 {
		n = cap64
	}
	grown := make([]shadowRec, n)
	copy(grown, tab)
	return grown
}

// newTracker builds the tracker for a kind.
func newTracker(kind TrackerKind, info *analysis.ModuleInfo) depTracker {
	if kind == TrackerLegacyMap {
		return mapTracker{}
	}
	return newShadowTracker(info)
}
