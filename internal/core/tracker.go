package core

import (
	"math"

	"loopapalooza/internal/analysis"
	"loopapalooza/internal/interp"
)

// TrackerKind selects the dependence-tracking data structure behind the
// engine. The two trackers are semantically identical — the legacy map
// tracker is kept as a differential oracle for the shadow memory — so the
// choice only affects performance.
type TrackerKind int

const (
	// TrackerShadow is the default: a flat, generation-stamped shadow
	// memory. Load/Store cost one array index plus a generation compare
	// per active loop level, and clearing an instance is a generation
	// bump instead of a map drop.
	TrackerShadow TrackerKind = iota
	// TrackerLegacyMap is the original per-instance map[int64]writeRec
	// write set, retained as the correctness oracle.
	TrackerLegacyMap
)

// String names the tracker kind.
func (k TrackerKind) String() string {
	if k == TrackerLegacyMap {
		return "legacy-map"
	}
	return "shadow"
}

// depTracker stores, per active loop instance, the last cross-iteration
// write to each address. The engine owns all policy (cactus-stack
// exemption, same-iteration and committed-phase filtering, conflict
// handling); the tracker is pure storage.
//
// All access methods take the address's region classification (r, idx)
// alongside the raw address: callers classify with region() ONCE per event
// (or once per address run, on the batched paths) and the tracker never
// re-derives it — the region branch is hoisted out of the per-event call.
type depTracker interface {
	// enter prepares (or resets) storage for an instance that begins
	// tracking. inst.depth is its nesting level, unique among active
	// instances.
	enter(inst *instance)
	// loadAt returns the recorded write covering addr for inst, if any.
	// (r, idx) must be region(addr).
	loadAt(inst *instance, r int, idx int64, addr int64) (writeRec, bool)
	// storeAt records a write at addr for inst. (r, idx) must be
	// region(addr).
	storeAt(inst *instance, r int, idx int64, addr int64, rec writeRec)
	// memRun resolves a whole run of mixed load/store records for inst in
	// ONE call — the batched chunk-replay hot path. Each memEv carries its
	// kind, region classification, and the clock advance accumulated
	// inside the run before it (the engine applies the run's total to its
	// clock afterwards; no other event can occur inside a run).
	//
	// Stores record writeRec{iter: iter, off: offBase + ev.tick} — iter
	// and offBase are run constants because iteration boundaries end a
	// run. Loads that find a record append (record index, record) to
	// hitIdx/hitRecs; memRun returns the hit count and the engine applies
	// the RAW policy afterwards, in record order (loads are pure, and
	// hits are rare, so deferring policy keeps this loop branch-light).
	//
	// Records with reg == regStack and addr < spLimit are skipped
	// wholesale: the engine pre-resolves its cactus-stack exemption
	// (frames pushed after the current iteration began, i.e. addresses
	// below the iteration-start SP, are iteration-private) into that one
	// bound so the filter costs a compare here instead of a callback.
	//
	// sum, when non-nil, is the span's shared conflict summary
	// (summarizeSpan of evs). It is purely an optimization hint: the hit
	// list and every state change MUST be identical to memRun with a nil
	// summary — implementations may use it only to skip work whose
	// absence of effect the summary proves.
	memRun(inst *instance, evs []memEv,
		iter, offBase, spLimit int64, hitIdx []int32, hitRecs []writeRec, sum *spanSum) int
	// drop discards inst's write set (the instance serialized or exited).
	drop(inst *instance)
}

// memRun record kinds.
const (
	memLoad  uint8 = 0
	memStore uint8 = 1
)

// spanSum flag bits.
const (
	// sumHasLoad / sumHasStore are the homogeneous-kind markers: a span
	// without loads never probes, a span without stores never records.
	sumHasLoad uint8 = 1 << iota
	sumHasStore
	// sumSelfConflict is set when some load's dense index falls inside
	// the index interval of the stores PRECEDING it in the same span —
	// i.e. the span may read an address it wrote itself. Clear means no
	// in-span store can satisfy any in-span load, which is what lets the
	// tracker answer loads from pre-span state alone.
	sumSelfConflict
)

// spanSum is the producer-computed conflict summary of one memory span:
// per-region min/max dense load indices, homogeneous-kind flags, and the
// self-conflict marker. It is computed ONCE per sealed chunk on the
// producing goroutine (seal / chunkTee) and consulted read-only by every
// coalesced engine class before probing, so N classes stop re-probing
// address runs that provably cannot hit. Summaries live in a flat slice
// parallel to the chunk's span plan (evChunk.sums); the interval compare
// against a level's store bounds is three branch-free min/max pairs.
//
// The summary is conservative by construction: it is computed without
// knowledge of any instance's stack-filter bound (spLimit), so the load
// intervals cover loads the filter would skip, and skipping is only ever
// based on provable disjointness. Passing a nil or zero summary degrades
// to the exact unsummarized behavior.
type spanSum struct {
	loadMin [3]int64 // per-region min dense load index (MaxInt64 = none)
	loadMax [3]int64 // per-region max dense load index (MinInt64 = none)
	flags   uint8
}

// noIdxMin / noIdxMax are the empty-interval sentinels for index-bound
// tracking: min starts above every index, max below, so an empty interval
// can never satisfy min <= idx <= max.
const (
	noIdxMin = int64(math.MaxInt64)
	noIdxMax = int64(math.MinInt64)
)

// summarizeSpan computes the conflict summary of one memory span. The
// dense index is a bijection of the address within its region (region()),
// so interval disjointness over (reg, idx) proves address disjointness —
// including addresses that land in the overflow maps.
func summarizeSpan(evs []memEv) spanSum {
	s := spanSum{
		loadMin: [3]int64{noIdxMin, noIdxMin, noIdxMin},
		loadMax: [3]int64{noIdxMax, noIdxMax, noIdxMax},
	}
	stMin := [3]int64{noIdxMin, noIdxMin, noIdxMin}
	stMax := [3]int64{noIdxMax, noIdxMax, noIdxMax}
	for i := range evs {
		ev := &evs[i]
		r, idx := int(ev.reg), ev.idx
		if ev.kind == memStore {
			s.flags |= sumHasStore
			if idx < stMin[r] {
				stMin[r] = idx
			}
			if idx > stMax[r] {
				stMax[r] = idx
			}
			continue
		}
		s.flags |= sumHasLoad
		if idx < s.loadMin[r] {
			s.loadMin[r] = idx
		}
		if idx > s.loadMax[r] {
			s.loadMax[r] = idx
		}
		if idx >= stMin[r] && idx <= stMax[r] {
			s.flags |= sumSelfConflict
		}
	}
	return s
}

// memEv is one memory record of a sealed chunk's memory span: the address
// with its region classification precomputed (reg, idx), the record kind,
// and the clock advance accumulated inside the span before this record.
// One 32-byte record per event keeps the batched tracker loop on a single
// sequential stream.
type memEv struct {
	idx  int64 // dense region offset: region(addr)
	addr int64
	tick int64 // Σ tick payloads inside the span before this record
	kind uint8 // memLoad or memStore
	reg  int8  // region: regLow, regHeap, regStack
}

// mapTracker is the legacy write-set representation: one map per instance.
// Its batch methods are the naive loops — the oracle stays obviously
// correct while the shadow tracker specializes.
type mapTracker struct{}

func (mapTracker) enter(inst *instance) { inst.writes = map[int64]writeRec{} }
func (mapTracker) drop(inst *instance)  { inst.writes = nil }
func (mapTracker) loadAt(inst *instance, _ int, _ int64, addr int64) (writeRec, bool) {
	rec, ok := inst.writes[addr]
	return rec, ok
}
func (mapTracker) storeAt(inst *instance, _ int, _ int64, addr int64, rec writeRec) {
	inst.writes[addr] = rec
}
func (mapTracker) memRun(inst *instance, evs []memEv,
	iter, offBase, spLimit int64, hitIdx []int32, hitRecs []writeRec, _ *spanSum) int {
	nh := 0
	for i := range evs {
		ev := &evs[i]
		if ev.reg == regStack && ev.addr < spLimit {
			continue
		}
		if ev.kind == memStore {
			inst.writes[ev.addr] = writeRec{iter: iter, off: offBase + ev.tick}
			continue
		}
		if rec, ok := inst.writes[ev.addr]; ok {
			hitIdx[nh], hitRecs[nh] = int32(i), rec
			nh++
		}
	}
	return nh
}

// Shadow-memory geometry. Guest addresses split into three dense regions
// (low/global, heap, stack); each region of each nesting level is a flat
// table indexed by the region offset, grown geometrically as addresses are
// touched. Addresses outside a region's flat cap (wild pointers, or heaps
// larger than the flat budget) fall back to a per-level overflow map, so a
// given address is *always* flat or *always* overflow for the whole run.
const (
	// regLow covers [0, HeapBase): null, globals, and any stray low
	// address. Its flat cap is the exact end of the global segment.
	regLow = 0
	// regHeap covers [HeapBase, StackTop-DefaultStackWords).
	regHeap = 1
	// regStack covers the stack segment (IsStackAddr).
	regStack = 2

	// heapFlatCap bounds the flat heap table per level; heap offsets at
	// or above it use the overflow map. 1<<24 entries * 24 B = 384 MiB
	// worst case per fully-touched level, reached only geometrically.
	heapFlatCap = int64(1) << 24

	// minShadowTab is the initial flat-table size on first touch.
	minShadowTab = 64

	// overflowPruneLimit bounds how many stale overflow records a level
	// may retain across generations. A generation bump invalidates every
	// overflow entry at once, so a map that grew past this limit is
	// cleared wholesale on the next bump instead of haunting deep-nesting
	// runs forever (small maps are cheaper to keep than to rebuild).
	overflowPruneLimit = 64
)

// shadowRec is one overflow-map entry: a generation stamp plus the write
// record. Entries whose gen differs from the level's current generation
// are stale leftovers of earlier instances and read as absent.
type shadowRec struct {
	gen uint64
	writeRec
}

// shadowLevel is the shadow memory of one loop-nesting level. Exactly one
// active instance occupies a level at a time (levels are stack depths), so
// a single generation counter distinguishes the current instance's writes
// from stale ones.
//
// The flat tables use a structure-of-arrays layout: generation stamps live
// in their own densely-packed uint64 arrays (gens), the write records in
// parallel arrays (recs). The common miss — a stale generation — touches
// only the 8-byte stamp, so one cache line answers eight addresses instead
// of the two it covered when stamp and record were interleaved.
type shadowLevel struct {
	gen  uint64
	gens [3][]uint64   // generation stamps, indexed by region offset
	recs [3][]writeRec // write records, parallel to gens
	over map[int64]shadowRec

	// stMin/stMax bound the dense indices of every write recorded in the
	// CURRENT generation, per region (flat and overflow alike — the dense
	// index is a bijection of the address, so the interval is meaningful
	// for both). A memory span whose load-index intervals are disjoint
	// from these bounds provably cannot hit, which is what the spanSum
	// fast paths in memRun test. The bounds only ever widen within a
	// generation; bump resets them to the empty interval.
	stMin, stMax [3]int64
}

// bump starts a new generation, invalidating every record the previous
// occupant of this level left behind, and prunes an oversized overflow
// map (whose entries are now all stale) so dead records do not accumulate
// across enter/drop cycles.
func (lvl *shadowLevel) bump() {
	lvl.gen++
	if len(lvl.over) > overflowPruneLimit {
		clear(lvl.over)
	}
	lvl.stMin = [3]int64{noIdxMin, noIdxMin, noIdxMin}
	lvl.stMax = [3]int64{noIdxMax, noIdxMax, noIdxMax}
}

// note records a write at (r, idx) in the level's store bounds.
func (lvl *shadowLevel) note(r int, idx int64) {
	if idx < lvl.stMin[r] {
		lvl.stMin[r] = idx
	}
	if idx > lvl.stMax[r] {
		lvl.stMax[r] = idx
	}
}

// disjoint reports whether the span's per-region load intervals are
// provably disjoint from every write recorded this generation.
func (lvl *shadowLevel) disjoint(sum *spanSum) bool {
	for r := 0; r < 3; r++ {
		if sum.loadMax[r] >= lvl.stMin[r] && sum.loadMin[r] <= lvl.stMax[r] {
			return false
		}
	}
	return true
}

// shadowTracker implements depTracker with generation-stamped flat tables.
type shadowTracker struct {
	levels []*shadowLevel
	caps   [3]int64 // flat-table cap per region
}

func newShadowTracker(info *analysis.ModuleInfo) *shadowTracker {
	t := &shadowTracker{}
	globalEnd := int64(interp.GlobalBase)
	if info != nil && info.Mod != nil {
		for _, g := range info.Mod.Globals {
			globalEnd += g.Size
		}
	}
	t.caps[regLow] = globalEnd
	t.caps[regHeap] = heapFlatCap
	t.caps[regStack] = interp.DefaultStackWords
	return t
}

// region maps an address to its region and dense offset. Offsets outside
// [0, caps[r]) are stored in the level's overflow map.
func region(addr int64) (r int, idx int64) {
	if interp.IsStackAddr(addr) {
		return regStack, interp.StackTop - 1 - addr
	}
	if addr >= interp.HeapBase {
		return regHeap, addr - interp.HeapBase
	}
	return regLow, addr
}

func (t *shadowTracker) enter(inst *instance) {
	for int(inst.depth) >= len(t.levels) {
		t.levels = append(t.levels, &shadowLevel{})
	}
	t.levels[inst.depth].bump()
}

func (t *shadowTracker) drop(inst *instance) {
	// Stale records are invalidated (and oversized overflow maps pruned)
	// by the next occupant's generation bump; nothing to clear now.
}

func (t *shadowTracker) loadAt(inst *instance, r int, idx int64, addr int64) (writeRec, bool) {
	lvl := t.levels[inst.depth]
	if idx < 0 || idx >= t.caps[r] {
		rec, ok := lvl.over[addr]
		if !ok || rec.gen != lvl.gen {
			return writeRec{}, false
		}
		return rec.writeRec, true
	}
	gens := lvl.gens[r]
	if idx >= int64(len(gens)) || gens[idx] != lvl.gen {
		return writeRec{}, false
	}
	return lvl.recs[r][idx], true
}

func (t *shadowTracker) storeAt(inst *instance, r int, idx int64, addr int64, rec writeRec) {
	lvl := t.levels[inst.depth]
	lvl.note(r, idx)
	if idx < 0 || idx >= t.caps[r] {
		if lvl.over == nil {
			lvl.over = map[int64]shadowRec{}
		}
		lvl.over[addr] = shadowRec{gen: lvl.gen, writeRec: rec}
		return
	}
	gens := lvl.gens[r]
	if idx >= int64(len(gens)) {
		lvl.grow(r, idx, t.caps[r])
		gens = lvl.gens[r]
	}
	gens[idx] = lvl.gen
	lvl.recs[r][idx] = rec
}

// memRun is the shadow fast path for a mixed load/store run: the level and
// its generation are hoisted out of the per-record loop, so the common
// case — a dense store, or a dense load missing on a stale generation —
// costs one region-array index plus one stamp compare. Thanks to the SoA
// layout, a miss touches only the 8-byte stamp.
//
// When the span's shared summary proves its loads cannot hit — the span is
// self-conflict-free and its load-index intervals are disjoint from every
// write this generation recorded — the whole probe side is skipped: a
// load-only span returns immediately, a mixed span falls to storeRun. The
// result (hit list, recorded state) is identical to the unsummarized walk;
// the differential property harness pins that equivalence.
func (t *shadowTracker) memRun(inst *instance, evs []memEv,
	iter, offBase, spLimit int64, hitIdx []int32, hitRecs []writeRec, sum *spanSum) int {
	lvl := t.levels[inst.depth]
	if sum != nil {
		if sum.flags&sumHasLoad == 0 {
			return t.storeRun(lvl, evs, iter, offBase, spLimit)
		}
		if sum.flags&sumSelfConflict == 0 && lvl.disjoint(sum) {
			if sum.flags&sumHasStore == 0 {
				return 0 // pure loads, provably no recorded write in range
			}
			return t.storeRun(lvl, evs, iter, offBase, spLimit)
		}
	}
	gen := lvl.gen
	nh := 0
	for i := range evs {
		ev := &evs[i]
		r := int(ev.reg)
		idx := ev.idx
		if r == regStack && ev.addr < spLimit {
			continue
		}
		gens := lvl.gens[r]
		if ev.kind == memStore {
			lvl.note(r, idx)
			rec := writeRec{iter: iter, off: offBase + ev.tick}
			if uint64(idx) < uint64(len(gens)) {
				gens[idx] = gen
				lvl.recs[r][idx] = rec
				continue
			}
			if idx >= 0 && idx < t.caps[r] { // dense but not yet grown
				lvl.grow(r, idx, t.caps[r])
				lvl.gens[r][idx] = gen
				lvl.recs[r][idx] = rec
				continue
			}
			if lvl.over == nil {
				lvl.over = map[int64]shadowRec{}
			}
			lvl.over[ev.addr] = shadowRec{gen: gen, writeRec: rec}
			continue
		}
		// Load.
		if uint64(idx) < uint64(len(gens)) {
			if gens[idx] != gen {
				continue
			}
			hitIdx[nh], hitRecs[nh] = int32(i), lvl.recs[r][idx]
			nh++
			continue
		}
		if idx >= 0 && idx < t.caps[r] { // dense but not yet grown
			continue
		}
		rec, ok := lvl.over[ev.addr]
		if !ok || rec.gen != gen {
			continue
		}
		hitIdx[nh], hitRecs[nh] = int32(i), rec.writeRec
		nh++
	}
	return nh
}

// storeRun is memRun restricted to the span's stores: taken when the
// shared span summary proves no load of the span can hit (or the span has
// none), so the probe side — generation compares, overflow lookups, hit
// bookkeeping — vanishes and only the recording writes remain. Loads cost
// a single predictable branch.
func (t *shadowTracker) storeRun(lvl *shadowLevel, evs []memEv,
	iter, offBase, spLimit int64) int {
	gen := lvl.gen
	for i := range evs {
		ev := &evs[i]
		if ev.kind != memStore {
			continue
		}
		r := int(ev.reg)
		if r == regStack && ev.addr < spLimit {
			continue
		}
		idx := ev.idx
		lvl.note(r, idx)
		rec := writeRec{iter: iter, off: offBase + ev.tick}
		gens := lvl.gens[r]
		if uint64(idx) < uint64(len(gens)) {
			gens[idx] = gen
			lvl.recs[r][idx] = rec
			continue
		}
		if idx >= 0 && idx < t.caps[r] { // dense but not yet grown
			lvl.grow(r, idx, t.caps[r])
			lvl.gens[r][idx] = gen
			lvl.recs[r][idx] = rec
			continue
		}
		if lvl.over == nil {
			lvl.over = map[int64]shadowRec{}
		}
		lvl.over[ev.addr] = shadowRec{gen: gen, writeRec: rec}
	}
	return 0
}

// grow extends a region's flat tables to cover idx: geometric doubling
// from minShadowTab, clamped to the region cap. Stale prefixes keep their
// old generation stamps, so no clearing is needed. The gens and recs
// arrays grow in lockstep to stay parallel.
func (lvl *shadowLevel) grow(r int, idx, cap64 int64) {
	n := growShadowTab(int64(len(lvl.gens[r])), idx, cap64)
	gens := make([]uint64, n)
	copy(gens, lvl.gens[r])
	lvl.gens[r] = gens
	recs := make([]writeRec, n)
	copy(recs, lvl.recs[r])
	lvl.recs[r] = recs
}

// growShadowTab computes the grown table size covering idx: geometric
// doubling from minShadowTab, clamped to the region cap.
func growShadowTab(n, idx, cap64 int64) int64 {
	if n < minShadowTab {
		n = minShadowTab
	}
	for n <= idx {
		n *= 2
	}
	if n > cap64 {
		n = cap64
	}
	return n
}

// newTracker builds the tracker for a kind.
func newTracker(kind TrackerKind, info *analysis.ModuleInfo) depTracker {
	if kind == TrackerLegacyMap {
		return mapTracker{}
	}
	return newShadowTracker(info)
}
