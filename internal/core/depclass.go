package core

// This file realizes Table I of the paper: the categorization of ordering
// constraints and loop-carried dependencies (LCDs) that restrict parallel
// execution of loop iterations. The static portion of the classification
// comes from the analysis package (SCEV / reductions / purity); the dynamic
// portion (frequency, predictability) is measured by the engine.

// DepCategory names one row of Table I.
type DepCategory uint8

// Table I categories.
const (
	// DepComputable: (mutual) induction variables — true register RAW
	// LCDs with a compile-time scalar evolution; never a constraint.
	DepComputable DepCategory = iota
	// DepReduction: reduction accumulators — frequent true register RAW
	// LCDs with a decouplable update pattern.
	DepReduction
	// DepPredictableReg: non-computable register LCDs that run-time
	// value prediction captures; effectively infrequent.
	DepPredictableReg
	// DepUnpredictableReg: non-computable, unpredictable register LCDs —
	// frequent true register RAW; only DOACROSS/HELIX-style
	// synchronization supports them.
	DepUnpredictableReg
	// DepMemFrequent: dynamically manifesting memory RAW LCDs occurring
	// in most iterations.
	DepMemFrequent
	// DepMemInfrequent: dynamically manifesting memory RAW LCDs
	// occurring rarely (aliasing or rare control paths).
	DepMemInfrequent
	// DepFalse: WAW/WAR through registers or memory — assumed resolved
	// by lazy versioning with in-order commit (§II-D); never tracked.
	DepFalse
	// DepStructural: call-stack reuse across iterations — assumed
	// resolved by cactus-stack-style frame versioning (§II-E).
	DepStructural
)

var depCategoryNames = [...]string{
	DepComputable:       "computable (IV/MIV)",
	DepReduction:        "reduction accumulator",
	DepPredictableReg:   "predictable register LCD",
	DepUnpredictableReg: "unpredictable register LCD",
	DepMemFrequent:      "frequent memory LCD",
	DepMemInfrequent:    "infrequent memory LCD",
	DepFalse:            "false dependency (WAW/WAR)",
	DepStructural:       "structural (call stack)",
}

// String returns the category name.
func (c DepCategory) String() string { return depCategoryNames[c] }

// PredictableHitRate is the hit-rate threshold above which a non-computable
// register LCD counts as "predictable" in the Table I census.
const PredictableHitRate = 0.9

// DepCensus counts, per program run, how many static dependencies landed in
// each Table I category.
type DepCensus struct {
	counts [DepStructural + 1]int64
}

// Add increments a category.
func (c *DepCensus) Add(cat DepCategory, n int64) { c.counts[cat] += n }

// Count returns the tally for one category.
func (c *DepCensus) Count(cat DepCategory) int64 { return c.counts[cat] }

// Categories lists every category in Table I order.
func Categories() []DepCategory {
	return []DepCategory{
		DepComputable, DepReduction, DepPredictableReg, DepUnpredictableReg,
		DepMemFrequent, DepMemInfrequent, DepFalse, DepStructural,
	}
}

// SerialReason explains why a loop ended up sequential under a
// configuration.
type SerialReason uint8

// Reasons a loop is serialized.
const (
	// SerialNone: the loop ran parallel.
	SerialNone SerialReason = iota
	// SerialRegLCD: non-computable register LCDs present and the dep
	// flag does not relax them.
	SerialRegLCD
	// SerialReduction: reductions present under reduc0 with a dep flag
	// that does not relax them.
	SerialReduction
	// SerialCall: a call the fn flag does not admit.
	SerialCall
	// SerialConflict: DOALL conflict, or PDOALL over the 80% limit.
	SerialConflict
	// SerialNoGain: HELIX synchronized cost exceeded serial cost.
	SerialNoGain
)

var serialReasonNames = [...]string{
	SerialNone:      "parallel",
	SerialRegLCD:    "register LCD",
	SerialReduction: "reduction (reduc0)",
	SerialCall:      "function call",
	SerialConflict:  "memory conflicts",
	SerialNoGain:    "sync cost >= serial",
}

// String returns the reason name.
func (r SerialReason) String() string { return serialReasonNames[r] }
