package core

import (
	"fmt"
	"reflect"
)

// This file states the metamorphic invariants of the limit study as
// checkable predicates. They encode facts the paper's model guarantees by
// construction — a limit study never slows a program down, partial DOALL
// subsumes DOALL, dependence tracking is implementation-independent — so
// any run that violates one has hit an engine bug, not an interesting
// program. The fuzzing harness and the metamorphic test suite call these
// after every successful run.

// VerifyReport checks the internal consistency of one completed report:
//
//   - speedup ≥ 1: ParallelCost never exceeds SerialCost (the engine's
//     serial fallback guarantees a limit study cannot lose to serial);
//   - costs and coverage are non-negative, and covered time is bounded by
//     serial time;
//   - per-loop tallies are consistent (conflicting iterations are a subset
//     of iterations, parallel instances a subset of instances, predictor
//     hit rates are proper fractions);
//   - Anomalies is zero: every loop hook event was attributed.
//
// It returns the first violated invariant as an error, nil if all hold.
func VerifyReport(r *Report) error {
	if r == nil {
		return fmt.Errorf("invariant: nil report")
	}
	if r.SerialCost < 0 || r.ParallelCost < 0 {
		return fmt.Errorf("invariant: negative cost (serial %d, parallel %d)", r.SerialCost, r.ParallelCost)
	}
	if r.ParallelCost > r.SerialCost {
		return fmt.Errorf("invariant: speedup < 1: parallel cost %d exceeds serial cost %d",
			r.ParallelCost, r.SerialCost)
	}
	if r.CoveredTicks < 0 || r.CoveredTicks > r.SerialCost {
		return fmt.Errorf("invariant: covered ticks %d outside [0, serial %d]", r.CoveredTicks, r.SerialCost)
	}
	if n := r.Anomalies.Total(); n != 0 {
		return fmt.Errorf("invariant: %d unattributed loop events: %+v", n, r.Anomalies)
	}
	for i := range r.Loops {
		lr := &r.Loops[i]
		if lr.Iters < 0 || lr.Instances < 0 || lr.SerialTicks < 0 {
			return fmt.Errorf("invariant: loop %s has negative tallies: %+v", lr.ID, lr)
		}
		if lr.ConflictIters < 0 || lr.ConflictIters > lr.Iters {
			return fmt.Errorf("invariant: loop %s conflict iters %d outside [0, %d]",
				lr.ID, lr.ConflictIters, lr.Iters)
		}
		if lr.ParallelInstances < 0 || lr.ParallelInstances > lr.Instances {
			return fmt.Errorf("invariant: loop %s parallel instances %d outside [0, %d]",
				lr.ID, lr.ParallelInstances, lr.Instances)
		}
		if lr.PredHitRate < 0 || lr.PredHitRate > 1 {
			return fmt.Errorf("invariant: loop %s predictor hit rate %v outside [0, 1]",
				lr.ID, lr.PredHitRate)
		}
	}
	return nil
}

// CompareReports checks that two reports for the same (benchmark,
// configuration) cell are bit-identical. It is the differential oracle for
// the dependence trackers: the shadow-memory tracker and the legacy map
// tracker must produce byte-for-byte equal reports on every program.
func CompareReports(a, b *Report) error {
	if a == nil || b == nil {
		return fmt.Errorf("invariant: nil report in comparison (%v, %v)", a == nil, b == nil)
	}
	if !reflect.DeepEqual(a, b) {
		return fmt.Errorf("invariant: reports differ for %s under %s:\n--- a ---\n%s\n--- b ---\n%s",
			a.Benchmark, a.Config, a, b)
	}
	return nil
}

// CheckModelOrdering checks the model-dominance invariant: under identical
// reduc/dep/fn flags, partial DOALL subsumes DOALL — every loop DOALL can
// parallelize, PDOALL parallelizes at least as well — so PDOALL's parallel
// cost never exceeds DOALL's. The two reports must come from the same
// program run under configurations differing only in Model.
func CheckModelOrdering(doall, pdoall *Report) error {
	if doall == nil || pdoall == nil {
		return fmt.Errorf("invariant: nil report in ordering check")
	}
	if doall.Config.Model != DOALL || pdoall.Config.Model != PDOALL {
		return fmt.Errorf("invariant: ordering check wants DOALL vs PDOALL, got %s vs %s",
			doall.Config, pdoall.Config)
	}
	df, pf := doall.Config, pdoall.Config
	if df.Reduc != pf.Reduc || df.Dep != pf.Dep || df.Fn != pf.Fn {
		return fmt.Errorf("invariant: ordering check flags differ: %s vs %s", df, pf)
	}
	if doall.SerialCost != pdoall.SerialCost {
		return fmt.Errorf("invariant: serial cost differs across models: %d vs %d (nondeterministic run?)",
			doall.SerialCost, pdoall.SerialCost)
	}
	if pdoall.ParallelCost > doall.ParallelCost {
		return fmt.Errorf("invariant: PDOALL parallel cost %d exceeds DOALL's %d under flags %s",
			pdoall.ParallelCost, doall.ParallelCost, df)
	}
	return nil
}
