package core

import (
	"strings"
	"testing"
)

func study(t *testing.T, src string, cfg Config) *Report {
	t.Helper()
	r, err := RunSource("prog", src, cfg, RunOptions{})
	if err != nil {
		t.Fatalf("RunSource(%s): %v", cfg, err)
	}
	return r
}

// doallSrc: perfectly independent iterations.
const doallSrc = `
const N = 256;
var a [N]int;
var b [N]int;
func main() int {
	var i int;
	for (i = 0; i < N; i = i + 1) {
		b[i] = a[i] * 3 + 7;
	}
	return b[N-1];
}`

func TestEndToEndDOALLParallel(t *testing.T) {
	r := study(t, doallSrc, Config{Model: DOALL})
	if s := r.Speedup(); s < 20 {
		t.Errorf("DOALL speedup = %.2f, want large (independent iterations)", s)
	}
	if len(r.Loops) != 1 || !r.Loops[0].Parallel {
		t.Errorf("loop not parallel: %+v", r.Loops)
	}
	if c := r.Coverage(); c < 0.5 {
		t.Errorf("coverage = %.2f, want mostly covered", c)
	}
}

// recurrenceSrc: a[i] depends on a[i-1]: a frequent memory LCD.
const recurrenceSrc = `
const N = 256;
var a [N]int;
func main() int {
	var i int;
	a[0] = 1;
	for (i = 1; i < N; i = i + 1) {
		a[i] = a[i-1] + i;
	}
	return a[N-1];
}`

func TestEndToEndFrequentMemoryLCD(t *testing.T) {
	// DOALL: first conflict serializes.
	r := study(t, recurrenceSrc, Config{Model: DOALL})
	if s := r.Speedup(); s > 1.05 {
		t.Errorf("DOALL speedup = %.2f on serial chain, want ~1", s)
	}
	// PDOALL: nearly every iteration conflicts -> over the 80%% limit.
	r = study(t, recurrenceSrc, Config{Model: PDOALL})
	if s := r.Speedup(); s > 1.05 {
		t.Errorf("PDOALL speedup = %.2f on frequent LCD, want ~1", s)
	}
	reason := r.Loops[0].Reason
	if reason != SerialConflict && reason != SerialNoGain {
		t.Errorf("reason = %s", reason)
	}
	// HELIX: synchronization tolerates the frequent LCD; the producer
	// (store) sits near the consumer (load), so slope is small and some
	// overlap survives.
	r = study(t, recurrenceSrc, Config{Model: HELIX})
	if s := r.Speedup(); s < 1.2 {
		t.Errorf("HELIX speedup = %.2f on frequent memory LCD, want > 1.2", s)
	}
}

// infrequentSrc: a conflict on ~6%% of iterations (every 16th).
const infrequentSrc = `
const N = 512;
var a [N]int;
var acc [40]int;
func main() int {
	var i int;
	for (i = 1; i < N; i = i + 1) {
		a[i] = a[i] * 2 + 1;
		if (i % 16 == 0) {
			acc[3] = acc[3] + a[i];     // rare cross-iteration RAW chain
		}
	}
	return acc[3];
}`

func TestEndToEndInfrequentConflicts(t *testing.T) {
	rDoall := study(t, infrequentSrc, Config{Model: DOALL})
	rPdoall := study(t, infrequentSrc, Config{Model: PDOALL})
	if s := rDoall.Speedup(); s > 1.05 {
		t.Errorf("DOALL speedup = %.2f, want ~1 (any conflict kills it)", s)
	}
	if s := rPdoall.Speedup(); s < 3 {
		t.Errorf("PDOALL speedup = %.2f, want substantial (infrequent conflicts)", s)
	}
	lr := rPdoall.Loops[0]
	rate := lr.ConflictIterRate()
	if rate <= 0 || rate > 0.2 {
		t.Errorf("conflict rate = %.3f, want small nonzero", rate)
	}
}

// reductionSrc: the only LCD is a sum accumulator.
const reductionSrc = `
const N = 256;
var a [N]int;
func main() int {
	var s int = 0;
	var i int;
	for (i = 0; i < N; i = i + 1) {
		s = s + a[i] + i;
	}
	return s;
}`

func TestEndToEndReductionFlags(t *testing.T) {
	// reduc0-dep0: the reduction is an unrelaxed non-computable LCD.
	r := study(t, reductionSrc, Config{Model: PDOALL, Reduc: 0, Dep: 0})
	if s := r.Speedup(); s > 1.05 {
		t.Errorf("reduc0-dep0 speedup = %.2f, want ~1", s)
	}
	if got := r.Loops[0].Reason; got != SerialReduction {
		t.Errorf("reason = %s, want reduction", got)
	}
	// reduc1: the reduction is free.
	r = study(t, reductionSrc, Config{Model: PDOALL, Reduc: 1, Dep: 0})
	if s := r.Speedup(); s < 10 {
		t.Errorf("reduc1 speedup = %.2f, want large", s)
	}
	if r.Census.Count(DepReduction) != 1 {
		t.Errorf("census reductions = %d, want 1", r.Census.Count(DepReduction))
	}
}

// predictableSrc: x evolves by a loop-invariant value loaded from memory —
// non-computable for SCEV (the step is a load) but trivially predictable.
const predictableSrc = `
const N = 256;
var step [1]int;
var out [N]int;
func main() int {
	step[0] = 3;
	var x int = 0;
	var i int;
	for (i = 0; i < N; i = i + 1) {
		out[i] = x;
		x = x + step[0];
	}
	return x;
}`

func TestEndToEndValuePrediction(t *testing.T) {
	// dep0: the register LCD bars parallelization.
	r := study(t, predictableSrc, Config{Model: PDOALL, Dep: 0})
	if got := r.Loops[0].Reason; got != SerialRegLCD {
		t.Errorf("dep0 reason = %s, want register LCD", got)
	}
	// dep2: the stride predictor captures x.
	r = study(t, predictableSrc, Config{Model: PDOALL, Dep: 2})
	if s := r.Speedup(); s < 10 {
		t.Errorf("dep2 speedup = %.2f, want large (predictable LCD)", s)
	}
	if hr := r.Loops[0].PredHitRate; hr < 0.9 {
		t.Errorf("hit rate = %.2f, want >= 0.9", hr)
	}
	if r.Census.Count(DepPredictableReg) != 1 {
		t.Errorf("census predictable = %d, want 1", r.Census.Count(DepPredictableReg))
	}
}

// unpredictableSrc: x chases pseudo-random table contents.
const unpredictableSrc = `
const N = 509;
var next [N]int;
var sink [N]int;
func main() int {
	var i int;
	for (i = 0; i < N; i = i + 1) {
		next[i] = (i * 293 + 71) % N;
	}
	var x int = 1;
	for (i = 0; i < 2000; i = i + 1) {
		sink[x % N] = i;
		x = (next[x] + i) % N;    // aperiodic: FCM cannot learn it
	}
	return x;
}`

func TestEndToEndUnpredictableLCD(t *testing.T) {
	r := study(t, unpredictableSrc, Config{Model: PDOALL, Dep: 2})
	var chase *LoopReport
	for i := range r.Loops {
		if r.Loops[i].NonComputable > 0 {
			chase = &r.Loops[i]
		}
	}
	if chase == nil {
		t.Fatalf("no loop with a non-computable LCD: %+v", r.Loops)
	}
	if chase.PredHitRate > 0.6 {
		t.Errorf("hit rate = %.2f on pointer chase, want low", chase.PredHitRate)
	}
	// dep3 (perfect prediction) must beat dep2 here.
	r3 := study(t, unpredictableSrc, Config{Model: PDOALL, Dep: 3})
	if r3.Speedup() < r.Speedup() {
		t.Errorf("dep3 (%.2f) should not lose to dep2 (%.2f)", r3.Speedup(), r.Speedup())
	}
}

// dep1Src: a frequent unpredictable register LCD that HELIX-dep1 lowers to
// memory. The producer executes early in the iteration, so sync is cheap.
const dep1Src = `
const N = 509;
var next [N]int;
var work [64]float;
func main() int {
	var i int;
	for (i = 0; i < N; i = i + 1) {
		next[i] = (i * 293 + 71) % N;
	}
	var x int = 1;
	var acc float = 0.0;
	for (i = 0; i < 1000; i = i + 1) {
		x = (next[x] + i) % N;    // aperiodic handoff, produced early

		var j int;
		var t float = 0.0;
		for (j = 0; j < 16; j = j + 1) {
			t = t + float(x + j) * 0.5;
		}
		acc = acc + t;
	}
	return int(acc) + x;
}`

func TestEndToEndHELIXDep1(t *testing.T) {
	// PDOALL-dep2 fails: x is unpredictable and manifests each iteration.
	r2 := study(t, dep1Src, Config{Model: PDOALL, Reduc: 1, Dep: 2, Fn: 2})
	// HELIX-dep1 synchronizes the x hand-off early in each iteration.
	r1 := study(t, dep1Src, Config{Model: HELIX, Reduc: 1, Dep: 1, Fn: 2})
	if r1.Speedup() < 1.5 {
		t.Errorf("HELIX dep1 speedup = %.2f, want > 1.5", r1.Speedup())
	}
	if r1.Speedup() <= r2.Speedup() {
		t.Errorf("HELIX dep1 (%.2f) should beat PDOALL dep2 (%.2f) on frequent unpredictable LCDs",
			r1.Speedup(), r2.Speedup())
	}
}

// callSrc: loops whose bodies call functions of each purity class.
const callSrc = `
const N = 128;
var a [N]int;
var state [1]int;
func pure_sq(x int) int { return x * x; }
func impure_touch(x int) int { state[0] = x; return state[0]; }
func main() int {
	var i int;
	var s1 int = 0;
	for (i = 0; i < N; i = i + 1) { a[i] = pure_sq(i); }
	for (i = 0; i < N; i = i + 1) { a[i] = a[i] + rand() % 3; }
	return a[5];
}`

func TestEndToEndFnFlags(t *testing.T) {
	// fn0: both loops have calls -> both serial.
	r := study(t, callSrc, Config{Model: PDOALL, Fn: 0})
	for _, lr := range r.Loops {
		if lr.Parallel {
			t.Errorf("fn0: loop %s parallel despite calls", lr.ID)
		}
	}
	// fn1: the pure_sq loop unlocks; the rand loop stays serial.
	r = study(t, callSrc, Config{Model: PDOALL, Fn: 1})
	var parallel, serial int
	for _, lr := range r.Loops {
		if lr.Parallel {
			parallel++
		} else if lr.Reason == SerialCall {
			serial++
		}
	}
	if parallel != 1 || serial != 1 {
		t.Errorf("fn1: parallel/serial = %d/%d, want 1/1", parallel, serial)
	}
	// fn2: rand is a non-re-entrant library call -> still serial.
	r = study(t, callSrc, Config{Model: PDOALL, Fn: 2})
	foundSerialRand := false
	for _, lr := range r.Loops {
		if !lr.Parallel && lr.Reason == SerialCall {
			foundSerialRand = true
		}
	}
	if !foundSerialRand {
		t.Error("fn2: rand loop should stay serial")
	}
	// fn3: everything unlocked.
	r = study(t, callSrc, Config{Model: PDOALL, Fn: 3})
	for _, lr := range r.Loops {
		if lr.Reason == SerialCall {
			t.Errorf("fn3: loop %s still serialized by calls", lr.ID)
		}
	}
}

// stackSrc: each iteration calls a helper that fills a local scratch array.
// Under fn2 the reused stack frames must not read as conflicts (§II-E).
const stackSrc = `
const N = 128;
var out [N]int;
func scratch_work(seed int) int {
	var buf [8]int;
	var j int;
	for (j = 0; j < 8; j = j + 1) { buf[j] = seed + j; }
	var s int = 0;
	for (j = 0; j < 8; j = j + 1) { s = s + buf[j] * buf[j]; }
	return s;
}
func main() int {
	var i int;
	for (i = 0; i < N; i = i + 1) {
		out[i] = scratch_work(i);
	}
	return out[N-1];
}`

func TestEndToEndCactusStack(t *testing.T) {
	r := study(t, stackSrc, Config{Model: PDOALL, Reduc: 1, Dep: 2, Fn: 2})
	var outer *LoopReport
	for i := range r.Loops {
		if strings.HasPrefix(r.Loops[i].ID, "main:") {
			outer = &r.Loops[i]
		}
	}
	if outer == nil {
		t.Fatalf("outer loop missing: %+v", r.Loops)
	}
	if !outer.Parallel {
		t.Errorf("outer loop serialized (%s): stack frames must be iteration-private", outer.Reason)
	}
	if s := r.Speedup(); s < 5 {
		t.Errorf("speedup = %.2f, want large", s)
	}
}

func TestReportString(t *testing.T) {
	r := study(t, doallSrc, Config{Model: DOALL})
	s := r.String()
	for _, want := range []string{"DOALL", "speedup", "coverage", "parallel"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

// TestDeterminism: identical runs produce identical reports.
func TestDeterminism(t *testing.T) {
	a := study(t, dep1Src, BestHELIX())
	b := study(t, dep1Src, BestHELIX())
	if a.SerialCost != b.SerialCost || a.ParallelCost != b.ParallelCost || a.CoveredTicks != b.CoveredTicks {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

// TestAblationHelixDelta: with the gap-amortized delta variant (not the
// paper's formula), HELIX becomes strictly more optimistic and the
// rare-conflict kernel stops preferring PDOALL — evidence for which formula
// the paper implemented (EXPERIMENTS.md, deviation 4).
func TestAblationHelixDelta(t *testing.T) {
	// Ring-buffer dependence at a fixed distance of 4 iterations: the
	// read lands early, the write late, and no adjacent-iteration
	// conflict ever manifests, so the two delta formulas diverge by ~4x.
	src := `
const N = 2000;
var ring [8]int;
var outv [N]int;
func main() int {
	var i int;
	for (i = 0; i < 8; i = i + 1) { ring[i] = i + 1; }
	for (i = 0; i < N; i = i + 1) {
		var x int = ring[(i + 4) % 8];
		var k int;
		for (k = 0; k < 10; k = k + 1) { x = (x * 3 + k) % 997; }
		outv[i] = x;
		ring[i % 8] = x;
	}
	return ring[3];
}`
	info, err := AnalyzeSource("ablate", src)
	if err != nil {
		t.Fatal(err)
	}
	paper, err := Run(info, Config{Model: HELIX, Reduc: 1, Dep: 1, Fn: 2}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	amort, err := Run(info, Config{Model: HELIX, Reduc: 1, Dep: 1, Fn: 2, AmortizeHelixDelta: true}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if amort.Speedup() < paper.Speedup() {
		t.Errorf("amortized delta (%.2f) should never be slower than the paper formula (%.2f)",
			amort.Speedup(), paper.Speedup())
	}
	if amort.Speedup() < paper.Speedup()*1.5 {
		t.Errorf("ablation effect too small on rare-late-update loop: paper %.2f vs amortized %.2f",
			paper.Speedup(), amort.Speedup())
	}
}
