package core

import (
	"bytes"
	"testing"

	"loopapalooza/internal/lang/lpcgen"
)

// FuzzBytecodeDifferential is the coverage-guided arm of the bytecode
// VM's differential oracle: generator-derived programs (type-correct by
// construction) run under both execution engines, and the runs must be
// indistinguishable — same Report bits, same typed failure, same error
// text, same program output. The generator reaches deep loop nests,
// reductions, calls, and pointer chases, so this exercises lowering paths
// (fusion, phi shuffles, static loop events) no hand-written test
// enumerates.
func FuzzBytecodeDifferential(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte{0})
	f.Add([]byte{255, 1, 128, 7})
	f.Add([]byte("loopapalooza"))
	f.Add([]byte("bytecode vs treewalk"))
	f.Add([]byte{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1})
	f.Add([]byte{42, 17, 99, 3, 250, 11, 64, 128, 5, 5, 5, 5})

	cfgs := []Config{
		{Model: DOALL, Reduc: 1, Dep: 0, Fn: 2},
		{Model: PDOALL, Reduc: 1, Dep: 2, Fn: 2},
		BestHELIX(),
	}

	f.Fuzz(func(t *testing.T, seed []byte) {
		src := lpcgen.Program(seed)
		info, err := AnalyzeSource("fuzz.lpc", src)
		if err != nil {
			t.Fatalf("generated program failed to compile: %v\nsource:\n%s", err, src)
		}
		for _, cfg := range cfgs {
			optsT := fuzzRunOpts(TrackerShadow)
			optsT.Engine = EngineTreewalk
			var outT bytes.Buffer
			optsT.Out = &outT
			repT, errT := Run(info, cfg, optsT)

			optsB := fuzzRunOpts(TrackerShadow)
			optsB.Engine = EngineBytecode
			var outB bytes.Buffer
			optsB.Out = &outB
			repB, errB := Run(info, cfg, optsB)

			classifyRunErr(t, errT, src)
			classifyRunErr(t, errB, src)
			if (errT == nil) != (errB == nil) {
				t.Fatalf("engines disagree on failure under %s: treewalk=%v bytecode=%v\nsource:\n%s",
					cfg, errT, errB, src)
			}
			if errT != nil {
				if errT.Error() != errB.Error() {
					t.Fatalf("error text divergence under %s:\ntreewalk: %v\nbytecode: %v\nsource:\n%s",
						cfg, errT, errB, src)
				}
				if Classify(errT) != Classify(errB) {
					t.Fatalf("outcome divergence under %s: %v vs %v\nsource:\n%s",
						cfg, Classify(errT), Classify(errB), src)
				}
			} else {
				if cerr := CompareReports(repT, repB); cerr != nil {
					t.Fatalf("%v under %s\nsource:\n%s", cerr, cfg, src)
				}
			}
			if !bytes.Equal(outT.Bytes(), outB.Bytes()) {
				t.Fatalf("program output divergence under %s:\ntreewalk: %q\nbytecode: %q\nsource:\n%s",
					cfg, outT.String(), outB.String(), src)
			}
		}
	})
}
