package core

import (
	"loopapalooza/internal/analysis"
	"loopapalooza/internal/interp"
	"loopapalooza/internal/predict"
)

// Engine is the limit-study run-time: it implements interp.Hooks, tracks
// dynamic loop-carried dependencies, applies one execution model under one
// configuration, and produces limit speedups via an adjusted clock.
//
// Time accounting. The serial clock advances one unit per dynamic IR
// instruction. When a loop instance exits and its model cost is lower than
// its serial cost, the difference is added to a global savings counter; the
// *adjusted* clock (serial − savings) is the program's parallel execution
// time. Because enclosing loops measure their iteration lengths on the
// adjusted clock, inner-loop speedups propagate outward — the paper's
// bottom-up cost propagation, and SWARM/T4-style multi-level nested
// parallelism, realized online.
//
// Dependence storage lives behind a depTracker: the default shadow memory
// (flat generation-stamped tables) or the legacy per-instance maps kept as
// a differential oracle (see TrackerKind).
type Engine struct {
	info *analysis.ModuleInfo
	cfg  Config
	tr   depTracker
	// sh is tr when it is the default shadow tracker, letting the batched
	// hot path (memSpan) make a direct call instead of an interface
	// dispatch; nil under the legacy-map oracle.
	sh   *shadowTracker
	plan evalPlan

	clock   int64 // serial time: dynamic IR instructions
	savings int64 // Σ (serial − model cost) over parallel loop instances

	stack []*instance
	// live are the stack's tracked, not-yet-serialized instances — the
	// only ones Load/Store must visit. Kept in stack order.
	live []*instance
	// statSeq resolves LoopMeta→LoopStat by the meta's dense Seq ordinal
	// (one slice index instead of a map probe on every EnterLoop); stats
	// remains as the fallback for hand-built metas and for Stats().
	statSeq    []*LoopStat
	stats      map[*analysis.LoopMeta]*LoopStat
	coveredTop int64 // serial ticks inside outermost parallel instances

	anomalies LoopEventAnomalies

	freeInsts []*instance // instance pool

	// Scratch buffers for the batched chunk-replay path (memSpan): load
	// hits collected by depTracker.memRun, sized to the longest run seen
	// and reused across runs and chunks.
	hitIdx  []int32
	hitRecs []writeRec
}

// evalPlan is the per-configuration compiled event evaluator: which event
// payloads can possibly affect this configuration's report. It is derived
// once at engine construction from Config invariants (Validate guarantees
// DOALL ⟹ Dep==0), so the chunk-replay loop can skip dead payload work
// wholesale instead of dispatching it into code that discards it.
type evalPlan struct {
	// obsLive: IterLoop observations matter (Dep != 0). Under dep0 the
	// observation loop is dead code — no predictors exist and no register
	// LCD is synchronized — so the batched path passes a nil obs slice.
	obsLive bool
	// initLive: EnterLoop init values train predictors (Dep 2 or 3).
	// Otherwise LoopStat.preds is nil and the init slice is never read.
	initLive bool
}

// LoopEventAnomalies counts loop hook sequences that violate the expected
// LIFO discipline (an IterLoop or ExitLoop whose loop is not the innermost
// active instance, or with no active instance at all). The engine skips
// such events — they cannot be attributed — but counts them so broken
// frontends or hook wiring surface on the Report instead of vanishing.
type LoopEventAnomalies struct {
	// IterNoActive counts IterLoop events with an empty instance stack.
	IterNoActive int64 `json:"iterNoActive"`
	// IterMismatch counts IterLoop events whose loop is not the top of
	// the instance stack.
	IterMismatch int64 `json:"iterMismatch"`
	// ExitNoActive counts ExitLoop events with an empty instance stack.
	ExitNoActive int64 `json:"exitNoActive"`
	// ExitMismatch counts ExitLoop events whose loop is not the top of
	// the instance stack.
	ExitMismatch int64 `json:"exitMismatch"`
}

// Total sums all anomaly counters.
func (a LoopEventAnomalies) Total() int64 {
	return a.IterNoActive + a.IterMismatch + a.ExitNoActive + a.ExitMismatch
}

// LoopStat aggregates one static loop's behaviour over the whole run.
type LoopStat struct {
	// Meta is the loop's compile-time record.
	Meta *analysis.LoopMeta
	// Reason is SerialNone while the loop is considered parallelizable;
	// any other value permanently serializes future instances ("mark
	// the loop as suitable for serial execution only", §III-B).
	Reason SerialReason
	// StaticallySerial marks loops rejected before execution (Table II
	// flag constraints), as opposed to dynamically discovered reasons.
	StaticallySerial bool
	// Instances counts dynamic loop instances.
	Instances int64
	// ParallelInstances counts instances that finished with a parallel
	// model cost.
	ParallelInstances int64
	// Iters counts back edges over all instances.
	Iters int64
	// ConflictIters counts iterations that manifested a conflict.
	ConflictIters int64
	// SerialTicks sums the serial time spent inside the loop.
	SerialTicks int64
	// LastDelta records the HELIX delta_largest of the most recent
	// tracked instance (diagnostics).
	LastDelta int64
	// LastSlowest records the slowest iteration of the most recent
	// tracked instance (diagnostics).
	LastSlowest int64
	// preds are the per-observed-LCD value predictors (nil under dep
	// flags that do not predict).
	preds []predict.Observer
}

// instance is one dynamic execution of a loop.
type instance struct {
	meta *analysis.LoopMeta
	stat *LoopStat
	// serialized: this instance contributes no savings.
	serialized bool
	// tracked: dependence tracking active (false when serialized).
	tracked bool
	// depth is the instance's position in the engine stack at entry: its
	// shadow-memory nesting level, unique among active instances.
	depth int
	// liveIdx is the instance's position in the engine's live list, or
	// -1 when not live.
	liveIdx int

	enterAdj        int64
	enterSerial     int64
	iterStartAdj    int64
	iterStartSerial int64
	iterStartSP     int64
	iters           int64 // completed back edges; also the 0-based index
	// of the current iteration

	slowestIter    int64
	phaseSlowest   int64
	parallelAcc    int64 // PDOALL: closed phases
	phaseFirstIter int64 // PDOALL: first iteration of the current phase
	deltaLargest   int64 // HELIX: largest per-iteration sync slope

	conflictIters     int64
	curIterConflicted bool

	// writes is the legacy map tracker's write set (nil under the shadow
	// tracker, which stores records in its own level tables).
	writes map[int64]writeRec

	// coveredChildren accumulates covered serial ticks reported by
	// child instances, consumed if this instance ends up serial.
	coveredChildren int64
}

type writeRec struct {
	iter int64 // writer iteration index
	off  int64 // adjusted offset of the write within its iteration
}

// NewEngine prepares an engine for one run of one configuration, using the
// default shadow-memory tracker. The configuration must Validate.
func NewEngine(info *analysis.ModuleInfo, cfg Config) *Engine {
	return NewEngineTracker(info, cfg, TrackerShadow)
}

// NewEngineTracker is NewEngine with an explicit dependence-tracker choice;
// the differential-oracle tests use it to compare both implementations.
func NewEngineTracker(info *analysis.ModuleInfo, cfg Config, kind TrackerKind) *Engine {
	e := &Engine{
		info:  info,
		cfg:   cfg,
		tr:    newTracker(kind, info),
		stats: map[*analysis.LoopMeta]*LoopStat{},
		plan: evalPlan{
			obsLive:  cfg.Dep != 0,
			initLive: cfg.Dep == 2 || cfg.Dep == 3,
		},
	}
	e.sh, _ = e.tr.(*shadowTracker)
	e.statSeq = make([]*LoopStat, len(info.Loops))
	for _, lm := range info.Loops {
		st := e.newStat(lm)
		e.stats[lm] = st
		if lm.Seq >= 0 && lm.Seq < len(e.statSeq) && e.statSeq[lm.Seq] == nil {
			e.statSeq[lm.Seq] = st
		}
	}
	return e
}

// staticReason applies the static Table II constraints of one configuration
// to one loop: the serialization verdict available before execution. Both
// engine construction (newStat) and configuration coalescing (classOf) use
// this single definition, so the behavioral signature cannot drift from the
// engine.
func staticReason(cfg Config, lm *analysis.LoopMeta) SerialReason {
	// fn flags: calls the configuration does not admit.
	switch cfg.Fn {
	case 0:
		if lm.HasCall {
			return SerialCall
		}
	case 1:
		if lm.HasNonPureCall {
			return SerialCall
		}
	case 2:
		if lm.HasUnsafeOrIOCall {
			return SerialCall
		}
	}
	// dep flags: non-computable register LCDs (and reductions under
	// reduc0) bar parallelization when dep0.
	if cfg.Dep == 0 {
		if len(lm.NonComputable) > 0 {
			return SerialRegLCD
		}
		if cfg.Reduc == 0 && len(lm.Reductions) > 0 {
			return SerialReduction
		}
	}
	return SerialNone
}

// newStat applies the static Table II constraints to one loop.
func (e *Engine) newStat(lm *analysis.LoopMeta) *LoopStat {
	st := &LoopStat{Meta: lm}
	st.Reason = staticReason(e.cfg, lm)
	st.StaticallySerial = st.Reason != SerialNone

	// Predictors for the constrained observations (dep2 realistic,
	// dep3 perfect).
	n := len(lm.Observed)
	if n > 0 && (e.cfg.Dep == 2 || e.cfg.Dep == 3) {
		st.preds = make([]predict.Observer, n)
		for i := range st.preds {
			if e.cfg.Dep == 3 {
				st.preds[i] = &predict.Perfect{}
			} else {
				st.preds[i] = predict.NewHybrid()
			}
		}
	}
	return st
}

// statOf resolves the stat record for a meta: one slice index on the hot
// path, with the map as fallback for metas outside the module's dense Seq
// numbering (hand-built test metas).
func (e *Engine) statOf(lm *analysis.LoopMeta) *LoopStat {
	if s := lm.Seq; s >= 0 && s < len(e.statSeq) {
		if st := e.statSeq[s]; st != nil && st.Meta == lm {
			return st
		}
	}
	st := e.stats[lm]
	if st == nil {
		st = e.newStat(lm)
		e.stats[lm] = st
	}
	return st
}

// constrained reports whether observed-LCD index k restricts parallelism
// under the configuration: plain non-computable LCDs always do, reduction
// phis only under reduc0.
func (e *Engine) constrained(lm *analysis.LoopMeta, k int) bool {
	if k < lm.NumObservedNonComputable() {
		return true
	}
	return e.cfg.Reduc == 0
}

func (e *Engine) adj() int64 { return e.clock - e.savings }

// Tick implements interp.Hooks.
func (e *Engine) Tick(n int64) { e.clock += n }

// newInstance returns a zeroed instance, reusing a pooled record.
func (e *Engine) newInstance() *instance {
	if l := len(e.freeInsts); l > 0 {
		inst := e.freeInsts[l-1]
		e.freeInsts = e.freeInsts[:l-1]
		*inst = instance{}
		return inst
	}
	return &instance{}
}

// unlive removes inst from the live list, preserving order.
func (e *Engine) unlive(inst *instance) {
	i := inst.liveIdx
	if i < 0 {
		return
	}
	copy(e.live[i:], e.live[i+1:])
	e.live = e.live[:len(e.live)-1]
	for j := i; j < len(e.live); j++ {
		e.live[j].liveIdx = j
	}
	inst.liveIdx = -1
}

// EnterLoop implements interp.Hooks.
func (e *Engine) EnterLoop(lm *analysis.LoopMeta, sp int64, init []interp.Val) {
	st := e.statOf(lm)
	st.Instances++
	inst := e.newInstance()
	inst.meta, inst.stat = lm, st
	inst.liveIdx = -1
	if st.Reason != SerialNone {
		inst.serialized = true
	} else {
		inst.tracked = true
		inst.depth = len(e.stack)
		now, ser := e.adj(), e.clock
		inst.enterAdj, inst.enterSerial = now, ser
		inst.iterStartAdj, inst.iterStartSerial = now, ser
		inst.iterStartSP = sp
		e.tr.enter(inst)
		inst.liveIdx = len(e.live)
		e.live = append(e.live, inst)
		// Train predictors on the live-in values (iteration 0 values
		// are available at entry; no prediction needed for them).
		if st.preds != nil {
			for k, v := range init {
				st.preds[k].Observe(v.Bits())
			}
		}
	}
	e.stack = append(e.stack, inst)
}

// IterLoop implements interp.Hooks.
func (e *Engine) IterLoop(lm *analysis.LoopMeta, sp int64, obs []interp.LCDObs) {
	if len(e.stack) == 0 {
		e.anomalies.IterNoActive++
		return
	}
	inst := e.stack[len(e.stack)-1]
	if inst.meta != lm {
		e.anomalies.IterMismatch++
		return
	}
	inst.iters++
	if !inst.tracked {
		return
	}
	now := e.adj()
	iterLen := now - inst.iterStartAdj
	if iterLen > inst.slowestIter {
		inst.slowestIter = iterLen
	}
	if iterLen > inst.phaseSlowest {
		inst.phaseSlowest = iterLen
	}

	// Register LCD handling for the next iteration's values.
	nextConflicted := false
	for k, o := range obs {
		if !e.constrained(lm, k) {
			continue
		}
		switch e.cfg.Dep {
		case 2, 3:
			hit := inst.stat.preds[k].Observe(o.Val.Bits())
			if hit {
				continue
			}
			// Mispredicted: the consumer (next iteration, offset 0)
			// must wait for the producer in the just-finished
			// iteration.
			switch e.cfg.Model {
			case PDOALL:
				nextConflicted = true
			case HELIX:
				e.regSlope(inst, o, iterLen)
			}
		case 1: // HELIX-only: lowered to memory, synchronized always.
			e.regSlope(inst, o, iterLen)
		}
	}

	if nextConflicted {
		// The upcoming iteration starts conflicted: close the phase
		// ending with the just-finished iteration. (curIterConflicted
		// only deduplicates conflicts within one iteration; a new
		// iteration always opens fresh.)
		inst.parallelAcc += inst.phaseSlowest
		inst.phaseSlowest = 0
		inst.phaseFirstIter = inst.iters
		inst.conflictIters++
	}
	inst.curIterConflicted = nextConflicted

	inst.iterStartAdj = now
	inst.iterStartSerial = e.clock
	inst.iterStartSP = sp
}

// regSlope records the HELIX synchronization slope for a register LCD whose
// producer executed at serial tick DefTick within the just-finished
// iteration.
func (e *Engine) regSlope(inst *instance, o interp.LCDObs, iterLen int64) {
	var off int64
	if o.DefTick >= 0 {
		off = o.DefTick - inst.iterStartSerial
	}
	if off < 0 {
		off = 0
	}
	// Serial offsets can exceed the adjusted iteration length when nested
	// parallel loops compressed the iteration; clamp conservatively.
	if off > iterLen {
		off = iterLen
	}
	if off > inst.deltaLargest {
		inst.deltaLargest = off
	}
}

// ExitLoop implements interp.Hooks.
func (e *Engine) ExitLoop(lm *analysis.LoopMeta) {
	if len(e.stack) == 0 {
		e.anomalies.ExitNoActive++
		return
	}
	inst := e.stack[len(e.stack)-1]
	if inst.meta != lm {
		e.anomalies.ExitMismatch++
		return
	}
	e.stack = e.stack[:len(e.stack)-1]
	st := inst.stat

	var covered int64
	if inst.tracked {
		now, ser := e.adj(), e.clock
		// The trailing header-only segment counts as the final
		// (partial) iteration of the last phase.
		tail := now - inst.iterStartAdj
		if tail > inst.slowestIter {
			inst.slowestIter = tail
		}
		if tail > inst.phaseSlowest {
			inst.phaseSlowest = tail
		}
		serialAdj := now - inst.enterAdj

		var parallel int64
		switch e.cfg.Model {
		case DOALL:
			parallel = inst.slowestIter
		case PDOALL:
			if inst.iters > 0 && float64(inst.conflictIters) > ConflictIterLimit*float64(inst.iters) {
				inst.serialized = true
				st.Reason = SerialConflict
				parallel = serialAdj
			} else {
				parallel = inst.parallelAcc + inst.phaseSlowest
			}
		case HELIX:
			parallel = inst.slowestIter + inst.deltaLargest*inst.iters
			st.LastDelta = inst.deltaLargest
			st.LastSlowest = inst.slowestIter
			if parallel >= serialAdj {
				inst.serialized = true
				st.Reason = SerialNoGain
				parallel = serialAdj
			}
		}
		if parallel > serialAdj {
			parallel = serialAdj
		}
		if parallel < 1 && serialAdj > 0 {
			parallel = 1
		}
		if !inst.serialized {
			e.savings += serialAdj - parallel
			covered = ser - inst.enterSerial
			st.ParallelInstances++
		} else {
			covered = inst.coveredChildren
		}
		st.SerialTicks += ser - inst.enterSerial
		e.unlive(inst)
		e.tr.drop(inst)
	} else {
		// Untracked instances were measured by an enclosing tracked
		// instance (or by nobody); they only forward covered ticks.
		covered = inst.coveredChildren
	}
	st.Iters += inst.iters
	st.ConflictIters += inst.conflictIters

	if len(e.stack) > 0 {
		e.stack[len(e.stack)-1].coveredChildren += covered
	} else {
		e.coveredTop += covered
	}
	e.freeInsts = append(e.freeInsts, inst)
}

// Load implements interp.Hooks: RAW detection against earlier-iteration
// writes, per live (tracked, unserialized) loop instance. The address is
// classified once; the tracker call takes the pre-computed region.
func (e *Engine) Load(addr int64) {
	if len(e.live) == 0 {
		return
	}
	r, ri := region(addr)
	onStack := r == regStack
	// Innermost-first, matching the historical stack walk; DOALL
	// serialization may unlive the instance under the cursor, which is
	// safe on a descending index.
	for idx := len(e.live) - 1; idx >= 0; idx-- {
		inst := e.live[idx]
		if onStack && addr < inst.iterStartSP {
			// Cactus-stack exemption (§II-E): frames pushed after
			// this iteration began are iteration-private.
			continue
		}
		rec, ok := e.tr.loadAt(inst, r, ri, addr)
		if !ok {
			continue
		}
		e.loadHit(inst, rec, e.adj()-inst.iterStartAdj)
	}
}

// loadHit applies the per-model RAW policy to one recorded write found for
// a load: same-iteration and committed-phase reads are not violations;
// everything else is a manifesting conflict. c is the load's adjusted
// offset within the instance's current iteration (HELIX slope input).
func (e *Engine) loadHit(inst *instance, rec writeRec, c int64) {
	if rec.iter >= inst.iters {
		return // no cross-iteration RAW for this loop
	}
	if e.cfg.Model == PDOALL && rec.iter < inst.phaseFirstIter {
		// The writer belongs to an already-committed phase: its
		// value is architecturally visible, so the read is not a
		// violation (§II-C: execution restarts after the
		// conflict is resolved).
		return
	}
	e.memConflict(inst, rec, c)
}

// memConflict applies one manifesting memory RAW LCD to an instance. c is
// the consuming load's adjusted offset within the instance's current
// iteration (only HELIX reads it).
func (e *Engine) memConflict(inst *instance, rec writeRec, c int64) {
	switch e.cfg.Model {
	case DOALL:
		// First conflict marks the loop sequential for good (§III-B).
		inst.serialized = true
		inst.stat.Reason = SerialConflict
		if !inst.curIterConflicted {
			inst.curIterConflicted = true
			inst.conflictIters++
		}
		e.unlive(inst)
		e.tr.drop(inst)
	case PDOALL:
		if inst.curIterConflicted {
			return
		}
		inst.curIterConflicted = true
		inst.conflictIters++
		// Delay this iteration to the end of the slowest iteration
		// of the conflict-free phase that just ended; the new phase
		// begins with this (restarted) iteration.
		inst.parallelAcc += inst.phaseSlowest
		inst.phaseSlowest = 0
		inst.phaseFirstIter = inst.iters
	case HELIX:
		// Paper §III-B: assuming all iterations start at the same
		// time-stamp, record the largest producer-consumer offset
		// delta of any manifesting LCD. Note the delta is NOT
		// amortized over the iteration distance — HELIX synchronizes
		// every neighboring pair of iterations, which is exactly why
		// rare-conflict loops can prefer PDOALL (paper §IV).
		gap := inst.iters - rec.iter
		if gap <= 0 {
			return
		}
		slope := rec.off - c
		if e.cfg.AmortizeHelixDelta {
			slope = slope / gap
		}
		if slope < 0 {
			slope = 0
		}
		if slope > inst.deltaLargest {
			inst.deltaLargest = slope
		}
		if !inst.curIterConflicted {
			inst.curIterConflicted = true
			inst.conflictIters++
		}
	}
}

// Store implements interp.Hooks: record the write for RAW detection. The
// address is classified once; the tracker call takes the region.
func (e *Engine) Store(addr int64) {
	if len(e.live) == 0 {
		return
	}
	r, ri := region(addr)
	onStack := r == regStack
	now := e.adj()
	for idx := len(e.live) - 1; idx >= 0; idx-- {
		inst := e.live[idx]
		if onStack && addr < inst.iterStartSP {
			continue
		}
		e.tr.storeAt(inst, r, ri, addr, writeRec{iter: inst.iters, off: now - inst.iterStartAdj})
	}
}

// memSpan applies one run of mixed load/store/tick records — a sealed
// chunk's memory span — through the batched tracker path.
//
// The run is processed instance-major: each live instance resolves the
// whole run in ONE depTracker.memRun call, then the engine applies the RAW
// policy to the (rare) load hits in record order. This is bit-identical to
// the per-event walk because, between loop events, there is no data flow
// between instances: loads are pure, stores touch only the instance's own
// write set, conflicts mutate only the conflicting instance, and the clock
// evolution inside the run is data-independent (ticks[i] gives the exact
// clock advance before record i, and savings cannot change inside a run).
// Per-instance policy state (phaseFirstIter, curIterConflicted) is read
// and written in the same record order as per-event dispatch.
//
// A DOALL conflict serializes the instance mid-run; per-event dispatch
// would stop consulting the tracker for it, so the policy loop stops
// applying hits (the tracker already resolved the whole run, but its state
// for a dropped instance is invalidated by the next generation bump, and
// the discarded hits match exactly what per-event dispatch never saw).
//
// sum is the span's shared conflict summary (nil when the producer did not
// compute one); it lets the tracker skip provably hit-free probe work and
// never changes the hit list.
func (e *Engine) memSpan(evs []memEv, sum *spanSum) {
	if len(e.live) == 0 {
		return
	}
	if cap(e.hitIdx) < len(evs) {
		e.hitIdx = make([]int32, len(evs))
		e.hitRecs = make([]writeRec, len(evs))
	}
	hitIdx, hitRecs := e.hitIdx, e.hitRecs
	adj0 := e.adj()
	for li := len(e.live) - 1; li >= 0; li-- {
		inst := e.live[li]
		offBase := adj0 - inst.iterStartAdj
		var nh int
		if sh := e.sh; sh != nil { // direct call on the default tracker
			nh = sh.memRun(inst, evs, inst.iters, offBase, inst.iterStartSP, hitIdx, hitRecs, sum)
		} else {
			nh = e.tr.memRun(inst, evs, inst.iters, offBase, inst.iterStartSP, hitIdx, hitRecs, sum)
		}
		for h := 0; h < nh; h++ {
			e.loadHit(inst, hitRecs[h], offBase+evs[hitIdx[h]].tick)
			if inst.liveIdx < 0 {
				break
			}
		}
	}
}

// SerialCost returns the total dynamic IR instruction count (serial time).
func (e *Engine) SerialCost() int64 { return e.clock }

// ParallelCost returns the adjusted (limit parallel) time.
func (e *Engine) ParallelCost() int64 { return e.adj() }

// CoveredTicks returns the serial ticks spent inside parallel loops.
func (e *Engine) CoveredTicks() int64 { return e.coveredTop }

// Anomalies returns the loop-event anomaly counters.
func (e *Engine) Anomalies() LoopEventAnomalies { return e.anomalies }

// Stats exposes the per-loop statistics (keyed by loop metadata).
func (e *Engine) Stats() map[*analysis.LoopMeta]*LoopStat { return e.stats }
