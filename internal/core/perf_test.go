package core

import (
	"testing"

	"loopapalooza/internal/analysis"
	"loopapalooza/internal/interp"
)

func loopInfo(metas ...*analysis.LoopMeta) *analysis.ModuleInfo {
	return &analysis.ModuleInfo{Loops: metas}
}

// BenchmarkEngineLoadStore measures the dependence-tracking hot path: one
// store plus one load per op against a live loop instance, cycling through
// a heap working set, with an iteration boundary every 1024 ops and a
// fresh dynamic instance every window (the realistic lifecycle: loops
// re-enter constantly). The access pattern is conflict-free (each load
// reads its own iteration's write), so the instance stays live and every
// op pays full tracking cost. Instance turnover is where the legacy
// tracker allocates (a fresh map per instance, regrown to the working
// set) and the shadow tracker bumps a generation. Compare the
// shadow/legacy sub-benchmarks with benchstat.
func BenchmarkEngineLoadStore(b *testing.B) {
	const window = 4096 // heap working set, words; also the instance length
	for _, kind := range []TrackerKind{TrackerShadow, TrackerLegacyMap} {
		b.Run(kind.String(), func(b *testing.B) {
			lm := fakeMeta()
			e := NewEngineTracker(loopInfo(lm), Config{Model: DOALL}, kind)
			e.EnterLoop(lm, interp.StackTop, nil)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				addr := int64(interp.HeapBase) + int64(i&(window-1))
				e.Tick(1)
				e.Store(addr)
				e.Load(addr)
				switch i & (window - 1) {
				case window - 1:
					e.ExitLoop(lm)
					e.EnterLoop(lm, interp.StackTop, nil)
				case 1023, 2047, 3071:
					e.IterLoop(lm, interp.StackTop, nil)
				}
			}
			b.StopTimer()
			e.Tick(1)
			e.ExitLoop(lm)
			if st := e.Stats()[lm]; st.Reason != SerialNone {
				b.Fatalf("benchmark loop serialized (%v): access pattern is broken", st.Reason)
			}
		})
	}
}

// BenchmarkEngineNestedLoadStore is the same hot path under three nested
// live instances — the per-level cost of the tracker walk.
func BenchmarkEngineNestedLoadStore(b *testing.B) {
	const window = 4096
	for _, kind := range []TrackerKind{TrackerShadow, TrackerLegacyMap} {
		b.Run(kind.String(), func(b *testing.B) {
			metas := []*analysis.LoopMeta{fakeMeta(), fakeMeta(), fakeMeta()}
			e := NewEngineTracker(loopInfo(metas...), Config{Model: DOALL}, kind)
			for _, lm := range metas {
				e.EnterLoop(lm, interp.StackTop, nil)
			}
			inner := metas[len(metas)-1]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				addr := int64(interp.HeapBase) + int64(i&(window-1))
				e.Tick(1)
				e.Store(addr)
				e.Load(addr)
				if i&1023 == 1023 {
					e.IterLoop(inner, interp.StackTop, nil)
				}
			}
		})
	}
}

// BenchmarkEngineEnterExit measures instance setup/teardown: pooled
// instance records and generation-bump clearing vs per-instance map
// allocation. Each op is one enter/store/iterate/exit cycle.
func BenchmarkEngineEnterExit(b *testing.B) {
	for _, kind := range []TrackerKind{TrackerShadow, TrackerLegacyMap} {
		b.Run(kind.String(), func(b *testing.B) {
			lm := fakeMeta()
			e := NewEngineTracker(loopInfo(lm), Config{Model: DOALL}, kind)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.EnterLoop(lm, interp.StackTop, nil)
				e.Tick(3)
				e.Store(int64(interp.HeapBase) + int64(i&63))
				e.IterLoop(lm, interp.StackTop, nil)
				e.Tick(3)
				e.ExitLoop(lm)
			}
		})
	}
}
