package core

import "testing"

// FuzzTrackerDifferential feeds arbitrary (depth, region, addr, op)
// streams to the shadow-vs-legacy tracker differential driver: any
// divergence between the SoA shadow memory and the map oracle — a wrong
// hit, a stale-generation leak, a mis-clamped table, a dropped overflow
// record — fails immediately. The seed corpus (testdata/fuzz plus the
// f.Add entries below) starts the search at the region-cap and
// generation-churn boundaries; `make fuzz-smoke` runs this coverage-guided
// for a few seconds per CI pass.
func FuzzTrackerDifferential(f *testing.F) {
	// Store/load at the regLow clamp edge, a memory span, then drop,
	// re-enter, and reload: the stale record must be invisible.
	f.Add([]byte("\x00\x00\x00\x00\x02\x00\x01\x00\x04\x00\x01\x00" +
		"\x06\x01\x05\x02\x01\x00\x00\x00\x00\x00\x00\x00\x04\x00\x01\x00"))
	// Four nesting levels storing and loading across overflow families
	// (heap past the flat cap, the global gap, below the stack), with
	// partial unwinding in between.
	f.Add([]byte("\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00" +
		"\x02\x00\x08\x07\x02\x03\x02\x09\x02\x02\x0b\x05" +
		"\x04\x00\x08\x07\x04\x03\x02\x09\x04\x02\x0b\x05" +
		"\x01\x00\x00\x00\x01\x00\x00\x00\x00\x00\x00\x00\x04\x01\x08\x07"))
	// Batched memRun spans back to back, alternating the cactus-stack
	// filter on and off (even/odd trailing byte).
	f.Add([]byte("\x00\x00\x00\x00\x06\x05\x0f\x04\x07\x02\x09\x02" +
		"\x06\x01\x03\x06\x07\x00\x0c\x08"))
	f.Fuzz(func(t *testing.T, ops []byte) {
		// Bound the stream so a pathological input stays unit-test cheap.
		if len(ops) > 4096 {
			ops = ops[:4096]
		}
		runTrackerDiff(t, ops)
	})
}
