package core

// Tests for the class-affinity worker pool and the explicit strategy
// knobs: plan resolution, bit-identical determinism across worker counts
// and shuffled chunk-arrival timing, concurrent read-only sharing of one
// chunk's span summaries (the -race gate of the precomputation pass), and
// the memRun summary contract.

import (
	"bytes"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"loopapalooza/internal/interp"
)

// TestPlanFanout pins the resolved strategy decision: the auto crossover,
// the explicit overrides, and the Parallelism knob.
func TestPlanFanout(t *testing.T) {
	ncpu := runtime.GOMAXPROCS(0)
	cases := []struct {
		name  string
		nCfgs int
		opts  RunOptions
		want  FanoutPlan
	}{
		{"auto-small", 2, RunOptions{}, FanoutPlan{StrategySequential, 1}},
		{"auto-p1", 14, RunOptions{Parallelism: 1}, FanoutPlan{StrategyChunked, 1}},
		{"auto-p4", 14, RunOptions{Parallelism: 4}, FanoutPlan{StrategyParallel, 4}},
		{"auto-p0", 14, RunOptions{}, func() FanoutPlan {
			if ncpu == 1 {
				return FanoutPlan{StrategyChunked, 1}
			}
			return FanoutPlan{StrategyParallel, ncpu}
		}()},
		{"auto-p1-nobatch", 14, RunOptions{Parallelism: 1, DisableBatch: true},
			FanoutPlan{StrategyParallel, 1}},
		{"force-sequential", 14, RunOptions{Strategy: StrategySequential, Parallelism: 8},
			FanoutPlan{StrategySequential, 1}},
		{"force-chunked", 14, RunOptions{Strategy: StrategyChunked},
			FanoutPlan{StrategyChunked, 1}},
		{"force-parallel-small", 2, RunOptions{Strategy: StrategyParallel, Parallelism: 3},
			FanoutPlan{StrategyParallel, 3}},
	}
	for _, c := range cases {
		if got := PlanFanout(c.nCfgs, c.opts); got != c.want {
			t.Errorf("%s: PlanFanout(%d, %+v) = %v, want %v", c.name, c.nCfgs, c.opts, got, c.want)
		}
	}
	for _, s := range []FanoutStrategy{StrategyAuto, StrategySequential, StrategyChunked, StrategyParallel} {
		back, err := ParseFanoutStrategy(s.String())
		if err != nil || back != s {
			t.Errorf("ParseFanoutStrategy(%q) = (%v, %v), want (%v, nil)", s, back, err, s)
		}
	}
	if _, err := ParseFanoutStrategy("bogus"); err == nil {
		t.Error("ParseFanoutStrategy accepted a bogus strategy")
	}
	if got := (FanoutPlan{StrategyParallel, 4}).String(); got != "parallel(p=4)" {
		t.Errorf("plan string = %q, want parallel(p=4)", got)
	}
}

// TestMultiRunStrategyOverride: forcing each strategy through
// RunOptions.Strategy routes MultiRun itself (not just the exported
// entry points) and stays bit-identical.
func TestMultiRunStrategyOverride(t *testing.T) {
	info, err := AnalyzeSource("override", infrequentSrc)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := PaperConfigs()
	want, err := MultiRunSequential(info, cfgs, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []FanoutStrategy{StrategySequential, StrategyChunked, StrategyParallel} {
		got, err := MultiRun(info, cfgs, RunOptions{Strategy: s, Parallelism: 2})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		for i := range cfgs {
			if err := CompareReports(want[i], got[i]); err != nil {
				t.Errorf("%v/%s: %v", s, cfgs[i], err)
			}
		}
	}
}

// TestParallelDeterminism is the pool's determinism gate: reports AND
// recorded binary traces must be bit-identical across Parallelism ∈
// {1, 2, NumCPU} and across repeated runs (repeats reshuffle goroutine
// scheduling, i.e. the relative timing with which workers pick chunks up).
func TestParallelDeterminism(t *testing.T) {
	cfgs := PaperConfigs()
	widths := []int{1, 2, runtime.NumCPU()}
	for name, src := range map[string]string{
		"infrequent": infrequentSrc,
		"stack":      stackSrc,
		"dep1":       dep1Src,
	} {
		info, err := AnalyzeSource(name, src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var wantTrace bytes.Buffer
		want := make([]*Report, len(cfgs))
		for i, cfg := range cfgs {
			opts := RunOptions{}
			if i == 0 {
				opts.Trace = &wantTrace
			}
			if want[i], err = Run(info, cfg, opts); err != nil {
				t.Fatalf("%s/%s: %v", name, cfg, err)
			}
		}
		for _, p := range widths {
			for rep := 0; rep < 3; rep++ {
				var trace bytes.Buffer
				got, err := MultiRunParallel(info, cfgs, RunOptions{Parallelism: p, Trace: &trace})
				if err != nil {
					t.Fatalf("%s p=%d rep=%d: %v", name, p, rep, err)
				}
				for i := range cfgs {
					if err := CompareReports(want[i], got[i]); err != nil {
						t.Errorf("%s p=%d rep=%d %s: %v", name, p, rep, cfgs[i], err)
					}
				}
				if !bytes.Equal(wantTrace.Bytes(), trace.Bytes()) {
					t.Errorf("%s p=%d rep=%d: recorded trace differs from the per-config reference (%d vs %d bytes)",
						name, p, rep, trace.Len(), wantTrace.Len())
				}
			}
		}
	}
}

// jitterLog is an eventLog whose consumer sleeps pseudo-randomly, so the
// workers of a pool pick chunks up in a deliberately shuffled order
// relative to each other.
type jitterLog struct {
	eventLog
	rng *rand.Rand
}

func (j *jitterLog) Tick(n int64) {
	if j.rng.Intn(64) == 0 {
		time.Sleep(time.Duration(j.rng.Intn(50)) * time.Microsecond)
	}
	j.eventLog.Tick(n)
}

// TestWorkerPoolShuffledArrival drives the pool machinery directly with
// consumers that stall at random: however the workers interleave, each
// consumer must observe the exact event sequence, in order.
func TestWorkerPoolShuffledArrival(t *testing.T) {
	info, err := AnalyzeSource("shuffle", doallSrc)
	if err != nil {
		t.Fatal(err)
	}
	lm := info.Loops[0]
	emit := func(h interp.Hooks) {
		for i := 0; i < 2*chunkRecs+257; i++ {
			switch i % 4 {
			case 0:
				h.Tick(int64(i))
			case 1:
				h.EnterLoop(lm, int64(i), nil)
			case 2:
				h.Load(int64(i * 8))
			case 3:
				h.Store(int64(i * 8))
			}
		}
		h.ExitLoop(lm)
	}
	var want eventLog
	emit(&want)

	logs := []*jitterLog{
		{rng: rand.New(rand.NewSource(1))},
		{rng: rand.New(rand.NewSource(2))},
		{rng: rand.New(rand.NewSource(3))},
		{rng: rand.New(rand.NewSource(4))},
		{rng: rand.New(rand.NewSource(5))},
	}
	// 2 workers over 5 consumers: groups of 3 and 2, shuffling both the
	// inter-worker timing and the intra-group replay interleaving.
	groups := affinityGroups([]interp.Hooks{logs[0], logs[1], logs[2], logs[3], logs[4]}, 2)
	f := newChunkFanout(len(groups))
	wait := startWorkers(f, groups, false)
	emit(f)
	f.close()
	if p := wait(); p != nil {
		t.Fatalf("unexpected worker panic: %v", p)
	}
	for i, l := range logs {
		if len(l.events) != len(want.events) {
			t.Fatalf("consumer %d: %d events, want %d", i, len(l.events), len(want.events))
		}
		for j := range want.events {
			if l.events[j] != want.events[j] {
				t.Fatalf("consumer %d event %d: got %s, want %s", i, j, l.events[j], want.events[j])
			}
		}
	}
}

// TestSpanSummarySharedRace is the -race gate of the span-level
// precomputation pass: one sealed chunk — spans, memory records, and
// conflict summaries — is replayed concurrently by every coalesced engine
// class of the paper grid, each with its own tracker. The summaries are
// computed once on this goroutine and consulted read-only by all engines;
// any write to shared chunk state is a race-detector failure, and every
// engine must still match a serially-replayed twin bit-for-bit.
func TestSpanSummarySharedRace(t *testing.T) {
	info, err := AnalyzeSource("race", doallSrc)
	if err != nil {
		t.Fatal(err)
	}
	lm := info.Loops[0]

	// A chunk with dense load/store spans across regions, including
	// stack addresses under the cactus filter and pure-store and
	// pure-load stretches the summary fast paths trigger on.
	c := &evChunk{recs: make([]evRec, 0, chunkRecs)}
	w := chunkWriter{cur: c, onFull: func() {}}
	w.EnterLoop(lm, int64(interp.StackTop)-64, nil)
	for iter := 0; iter < 24; iter++ {
		w.IterLoop(lm, int64(interp.StackTop)-64, nil)
		base := int64(interp.HeapBase) + int64(iter%3)*512
		for j := int64(0); j < 40; j++ {
			w.Tick(1)
			w.Store(base + j)
		}
		for j := int64(0); j < 40; j++ {
			w.Tick(1)
			w.Load(base + 4096 + j) // disjoint: the skip path
		}
		for j := int64(0); j < 8; j++ {
			w.Tick(1)
			w.Load(base + j) // overlapping: the probe path
		}
	}
	w.ExitLoop(lm)
	c.seal()

	cfgs := PaperConfigs()
	serial := make([]*Engine, len(cfgs))
	for i, cfg := range cfgs {
		serial[i] = NewEngineTracker(info, cfg, TrackerShadow)
		serial[i].replayChunkBatched(c)
	}

	var wg sync.WaitGroup
	concurrent := make([]*Engine, len(cfgs))
	for i, cfg := range cfgs {
		wg.Add(1)
		go func(i int, cfg Config) {
			defer wg.Done()
			e := NewEngineTracker(info, cfg, TrackerShadow)
			for rep := 0; rep < 4; rep++ {
				if rep == 0 {
					e.replayChunkBatched(c)
				} else {
					// Fresh engine per repetition; only the last survives.
					e = NewEngineTracker(info, cfg, TrackerShadow)
					e.replayChunkBatched(c)
				}
			}
			concurrent[i] = e
		}(i, cfg)
	}
	wg.Wait()
	for i := range cfgs {
		want := serial[i].Report("race")
		got := concurrent[i].Report("race")
		if err := CompareReports(want, got); err != nil {
			t.Errorf("%s: concurrent summary readers diverged from serial replay: %v", cfgs[i], err)
		}
	}
}

// TestMemRunSummaryContract: for spans engineered onto each fast path —
// pure stores, disjoint pure loads, disjoint mixed, overlapping, and
// self-conflicting — memRun with the span's summary must return the
// exact hit list memRun without a summary returns, on identical state.
func TestMemRunSummaryContract(t *testing.T) {
	info := trackerDiffInfo()
	heap := int64(interp.HeapBase)
	spans := map[string][]memEv{
		"pure-store": {
			mkEv(heap+10, memStore, 0), mkEv(heap+11, memStore, 1),
		},
		"disjoint-loads": {
			mkEv(heap+500, memLoad, 0), mkEv(heap+501, memLoad, 1),
		},
		"disjoint-mixed": {
			mkEv(heap+600, memStore, 0), mkEv(heap+900, memLoad, 1),
		},
		"overlapping-loads": {
			mkEv(heap+10, memLoad, 0), mkEv(heap+11, memLoad, 1),
		},
		"self-conflict": {
			mkEv(heap+700, memStore, 0), mkEv(heap+700, memLoad, 1),
		},
	}
	for name, evs := range spans {
		runFor := func(sum *spanSum) (int, []int32, []writeRec) {
			sh := newShadowTracker(info)
			inst := &instance{depth: 0}
			sh.enter(inst)
			// Pre-span state: writes at heap+10..heap+19 from iteration 0.
			for j := int64(0); j < 10; j++ {
				r, idx := region(heap + 10 + j)
				sh.storeAt(inst, r, idx, heap+10+j, writeRec{iter: 0, off: j})
			}
			hitIdx := make([]int32, len(evs))
			hitRecs := make([]writeRec, len(evs))
			n := sh.memRun(inst, evs, 2, 100, 0, hitIdx, hitRecs, sum)
			return n, hitIdx[:n], hitRecs[:n]
		}
		sum := summarizeSpan(evs)
		nWant, idxWant, recWant := runFor(nil)
		nGot, idxGot, recGot := runFor(&sum)
		if nWant != nGot {
			t.Errorf("%s: hit count %d with summary, %d without", name, nGot, nWant)
			continue
		}
		for h := 0; h < nWant; h++ {
			if idxWant[h] != idxGot[h] || recWant[h] != recGot[h] {
				t.Errorf("%s: hit %d diverged under summary: (%d,%+v) vs (%d,%+v)",
					name, h, idxGot[h], recGot[h], idxWant[h], recWant[h])
			}
		}
	}
}

// mkEv builds one memory record with its region classification.
func mkEv(addr int64, kind uint8, tick int64) memEv {
	r, idx := region(addr)
	return memEv{idx: idx, addr: addr, tick: tick, kind: kind, reg: int8(r)}
}
