package core

import (
	"bytes"
	"strings"
	"testing"

	"loopapalooza/internal/analysis"
)

// record runs src once with a trace sink and returns the trace bytes plus
// the per-config reference reports.
func record(t *testing.T, name, src string, cfgs []Config) (*analysis.ModuleInfo, []byte, []*Report) {
	t.Helper()
	info, err := AnalyzeSource(name, src)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	want := make([]*Report, len(cfgs))
	for i, cfg := range cfgs {
		opts := RunOptions{}
		if i == 0 {
			opts.Trace = &buf // record alongside the first reference run
		}
		if want[i], err = Run(info, cfg, opts); err != nil {
			t.Fatalf("%s/%s: %v", name, cfg, err)
		}
	}
	return info, buf.Bytes(), want
}

// TestTraceRoundTrip: write → read → replay must reproduce every
// configuration's report bit-identically, for every sample program, across
// the full paper grid.
func TestTraceRoundTrip(t *testing.T) {
	cfgs := PaperConfigs()
	for name, src := range fanoutSamples {
		info, trace, want := record(t, name, src, cfgs)
		if len(trace) == 0 {
			t.Fatalf("%s: empty trace", name)
		}
		// One decode, every config (the replay-side fan-out).
		got, err := ReplayTraceMulti(name, info, cfgs, RunOptions{}, bytes.NewReader(trace))
		if err != nil {
			t.Fatalf("%s: ReplayTraceMulti: %v", name, err)
		}
		for i := range cfgs {
			if err := CompareReports(want[i], got[i]); err != nil {
				t.Errorf("%s/%s: %v", name, cfgs[i], err)
			}
		}
		// Single-config replay entry point.
		one, err := ReplayTrace(name, info, cfgs[3], RunOptions{}, bytes.NewReader(trace))
		if err != nil {
			t.Fatalf("%s: ReplayTrace: %v", name, err)
		}
		if err := CompareReports(want[3], one); err != nil {
			t.Errorf("%s: single replay: %v", name, err)
		}
	}
}

// TestTraceReaderHeader covers header metadata and validation.
func TestTraceReaderHeader(t *testing.T) {
	info, trace, _ := record(t, "hdr", doallSrc, []Config{{Model: DOALL}})
	tr, err := NewTraceReader(bytes.NewReader(trace), info)
	if err != nil {
		t.Fatal(err)
	}
	if tr.ModuleName() != "hdr" {
		t.Errorf("module name = %q, want hdr", tr.ModuleName())
	}
	// A module with a different loop count rejects the trace.
	other, err := AnalyzeSource("other", callSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTraceReader(bytes.NewReader(trace), other); err == nil ||
		!strings.Contains(err.Error(), "stale trace") {
		t.Errorf("mismatched module accepted: %v", err)
	}
}

// TestTraceTruncation: cutting the trace at any point must fail replay
// loudly — never silently produce a report from a partial stream.
func TestTraceTruncation(t *testing.T) {
	info, trace, _ := record(t, "trunc", infrequentSrc, []Config{{Model: DOALL}})
	// Sample cut points across the whole stream, including one byte short.
	for _, cut := range []int{len(trace) - 1, len(trace) / 2, len(trace) / 3, 20} {
		_, err := ReplayTrace("trunc", info, BestPDOALL(), RunOptions{}, bytes.NewReader(trace[:cut]))
		if err == nil {
			t.Errorf("cut at %d/%d bytes: replay succeeded on truncated trace", cut, len(trace))
		}
	}
	// Header-only truncation fails at construction.
	if _, err := NewTraceReader(bytes.NewReader(trace[:3]), info); err == nil {
		t.Error("3-byte trace accepted")
	}
}

// TestTraceCorruption covers the structured corruption checks: magic,
// version, opcodes, loop ordinals, and the tick checksum.
func TestTraceCorruption(t *testing.T) {
	info, trace, _ := record(t, "corrupt", doallSrc, []Config{{Model: DOALL}})
	replay := func(b []byte) error {
		_, err := ReplayTrace("corrupt", info, Config{Model: DOALL}, RunOptions{}, bytes.NewReader(b))
		return err
	}
	mut := func(i int, b byte) []byte {
		c := append([]byte(nil), trace...)
		c[i] = b
		return c
	}
	if err := replay(mut(0, 'X')); err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Errorf("bad magic: %v", err)
	}
	if err := replay(mut(4, 0xFF)); err == nil || !strings.Contains(err.Error(), "unsupported version") {
		t.Errorf("bad version: %v", err)
	}
	// Locate the first record byte: magic(4) + version(1) + nameLen(1) +
	// name + loopCount(1) for this small module.
	body := 4 + 1 + 1 + len("corrupt") + 1
	if err := replay(mut(body, 0x7F)); err == nil || !strings.Contains(err.Error(), "unknown opcode") {
		t.Errorf("unknown opcode: %v", err)
	}
	// Flipping a tick count breaks the end-record checksum.
	if trace[body] != opTick {
		t.Fatalf("first record is %#x, expected a tick", trace[body])
	}
	if err := replay(mut(body+1, trace[body+1]^1)); err == nil ||
		!strings.Contains(err.Error(), "checksum") {
		t.Errorf("tick checksum: %v", err)
	}
}

// TestTraceWriterUnaddressableLoop: hand-built loop metas (outside the
// module's dense Seq numbering) poison the trace instead of encoding a
// bogus ordinal.
func TestTraceWriterUnaddressableLoop(t *testing.T) {
	info, err := AnalyzeSource("unaddr", doallSrc)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf, info)
	tw.ExitLoop(&analysis.LoopMeta{Seq: 0}) // right ordinal, wrong identity
	if err := tw.Close(); err == nil || !strings.Contains(err.Error(), "not addressable") {
		t.Errorf("Close = %v, want unaddressable-loop error", err)
	}
}

// TestTraceWriterStickyError: the first sink failure is reported at Close
// even when later writes would have succeeded.
func TestTraceWriterStickyError(t *testing.T) {
	tw := NewTraceWriter(&failWriter{n: 2}, mustAnalyze(t, "sticky", doallSrc))
	for i := 0; i < 1<<16; i++ { // overflow the bufio buffer to hit the sink
		tw.Tick(1)
	}
	if err := tw.Close(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Errorf("Close = %v, want sticky disk full", err)
	}
}

func mustAnalyze(t *testing.T, name, src string) *analysis.ModuleInfo {
	t.Helper()
	info, err := AnalyzeSource(name, src)
	if err != nil {
		t.Fatal(err)
	}
	return info
}

// TestReplayBudgetsIgnored: replay consumes a recorded stream; the
// recording budgets don't apply (documented contract), so a tiny MaxSteps
// in the replay options must not fail it.
func TestReplayBudgetsIgnored(t *testing.T) {
	info, trace, want := record(t, "nobudget", doallSrc, []Config{BestPDOALL()})
	got, err := ReplayTrace("nobudget", info, BestPDOALL(), RunOptions{MaxSteps: 1}, bytes.NewReader(trace))
	if err != nil {
		t.Fatalf("replay with tiny budget: %v", err)
	}
	if err := CompareReports(want[0], got); err != nil {
		t.Error(err)
	}
}
