package core

import (
	"testing"

	"loopapalooza/internal/analysis"
	"loopapalooza/internal/interp"
)

// bothTrackers runs a subtest under the shadow and the legacy map tracker:
// every scenario must behave identically under both.
func bothTrackers(t *testing.T, fn func(t *testing.T, kind TrackerKind)) {
	t.Helper()
	for _, kind := range []TrackerKind{TrackerShadow, TrackerLegacyMap} {
		t.Run(kind.String(), func(t *testing.T) { fn(t, kind) })
	}
}

func newTrackerEngine(t *testing.T, cfg Config, kind TrackerKind) (*Engine, *analysis.LoopMeta) {
	t.Helper()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	lm := fakeMeta()
	info := &analysis.ModuleInfo{Loops: []*analysis.LoopMeta{lm}}
	return NewEngineTracker(info, cfg, kind), lm
}

// TestCactusStackBoundary pins the off-by-one of the cactus-stack
// exemption: a stack cell at exactly iterStartSP existed when the iteration
// began and is tracked; the cell one below (a younger frame) is
// iteration-private and exempt.
func TestCactusStackBoundary(t *testing.T) {
	iterSP := int64(interp.StackTop - 64)
	cases := []struct {
		name     string
		addr     int64
		conflict bool
	}{
		{"at-sp-tracked", iterSP, true},
		{"below-sp-exempt", iterSP - 1, false},
		{"above-sp-tracked", iterSP + 1, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bothTrackers(t, func(t *testing.T, kind TrackerKind) {
				e, lm := newTrackerEngine(t, Config{Model: DOALL}, kind)
				e.EnterLoop(lm, iterSP, nil)
				e.Tick(5)
				e.Store(tc.addr)
				e.Tick(5)
				// The callee frames popped; the next iteration starts at
				// the same sp.
				e.IterLoop(lm, iterSP, nil)
				e.Tick(3)
				e.Load(tc.addr)
				e.Tick(7)
				e.IterLoop(lm, iterSP, nil)
				e.Tick(1)
				e.ExitLoop(lm)

				st := e.Stats()[lm]
				if tc.conflict {
					if st.Reason != SerialConflict {
						t.Errorf("reason = %v, want SerialConflict (addr %#x must be tracked)", st.Reason, tc.addr)
					}
				} else {
					if st.Reason != SerialNone {
						t.Errorf("reason = %v, want SerialNone (addr %#x is iteration-private)", st.Reason, tc.addr)
					}
				}
			})
		})
	}
}

// TestCactusStackExemptSameIteration: a younger-frame write and read within
// one loop (the classic callee-local temp) never conflicts even across
// iterations, because both accesses are below iterStartSP.
func TestCactusStackExemptSameIteration(t *testing.T) {
	bothTrackers(t, func(t *testing.T, kind TrackerKind) {
		e, lm := newTrackerEngine(t, Config{Model: DOALL}, kind)
		sp := int64(interp.StackTop - 16)
		calleeCell := sp - 8 // inside a frame pushed during the iteration
		e.EnterLoop(lm, sp, nil)
		for i := 0; i < 3; i++ {
			e.Tick(2)
			e.Store(calleeCell)
			e.Tick(2)
			e.Load(calleeCell)
			e.Tick(2)
			e.IterLoop(lm, sp, nil)
		}
		e.Tick(1)
		e.ExitLoop(lm)
		if st := e.Stats()[lm]; st.Reason != SerialNone {
			t.Errorf("reason = %v, want SerialNone", st.Reason)
		}
	})
}

// TestPDOALLPhaseCommitVisibility pins the committed-phase rule: after a
// conflict closes a phase, reads of values written in *earlier, committed*
// phases are architecturally visible and must not re-conflict, while reads
// of the current phase's writes still do.
func TestPDOALLPhaseCommitVisibility(t *testing.T) {
	addrA := int64(interp.HeapBase + 10)
	addrC := int64(interp.HeapBase + 20)
	bothTrackers(t, func(t *testing.T, kind TrackerKind) {
		e, lm := newTrackerEngine(t, Config{Model: PDOALL}, kind)
		e.EnterLoop(lm, interp.StackTop, nil)
		// iter 0: write A; phase 0.
		e.Tick(10)
		e.Store(addrA)
		e.IterLoop(lm, interp.StackTop, nil)
		// iter 1: read A -> conflict closes phase 0 (slowest 10); write C.
		e.Tick(4)
		e.Load(addrA)
		e.Tick(2)
		e.Store(addrC)
		e.Tick(4)
		e.IterLoop(lm, interp.StackTop, nil)
		// iter 2: read A again -> writer is in the committed phase, NO new
		// conflict; read C -> writer is in the current phase, conflict.
		e.Tick(3)
		e.Load(addrA)
		got := e.Stats()[lm] // same pointer before/after exit
		if got.Meta != lm {
			t.Fatal("stat lookup broken")
		}
		e.Load(addrC)
		e.Tick(7)
		e.IterLoop(lm, interp.StackTop, nil)
		e.Tick(1)
		e.ExitLoop(lm)

		st := e.Stats()[lm]
		if st.ConflictIters != 2 {
			t.Errorf("conflict iters = %d, want 2 (committed-phase read must not conflict)", st.ConflictIters)
		}
		if st.Reason != SerialNone {
			t.Fatalf("reason = %v, want SerialNone (2/3 < ConflictIterLimit)", st.Reason)
		}
		// Phases: {iter0}=10, {iter1}=10, {iter2 restarted}=10, tail 1.
		// parallel = 10 + 10 + 10 = 30, serial = 31, savings = 1.
		if e.SerialCost() != 31 {
			t.Fatalf("serial = %d, want 31", e.SerialCost())
		}
		if e.ParallelCost() != 30 {
			t.Errorf("parallel = %d, want 30", e.ParallelCost())
		}
	})
}

// TestSameIterationWritesInvisible: a read of an address written earlier in
// the SAME iteration is not a cross-iteration dependence.
func TestSameIterationWritesInvisible(t *testing.T) {
	addr := int64(interp.HeapBase + 5)
	bothTrackers(t, func(t *testing.T, kind TrackerKind) {
		e, lm := newTrackerEngine(t, Config{Model: DOALL}, kind)
		e.EnterLoop(lm, interp.StackTop, nil)
		for i := 0; i < 2; i++ {
			e.Tick(5)
			e.Store(addr)
			e.Tick(1)
			e.Load(addr) // same iteration: fine
			e.Tick(4)
			e.IterLoop(lm, interp.StackTop, nil)
		}
		e.Tick(1)
		e.ExitLoop(lm)
		// Every iteration re-stores before loading, so the load always
		// sees its own iteration's write.
		if st := e.Stats()[lm]; st.Reason != SerialNone {
			t.Errorf("reason = %v, want SerialNone", st.Reason)
		}
	})
}

// TestShadowWildAddresses drives accesses outside every flat region cap
// (negative, between globals and heap, far beyond the heap flat cap): the
// overflow map must keep RAW detection exact, identically to the oracle.
func TestShadowWildAddresses(t *testing.T) {
	wilds := []int64{
		-3,                                    // negative (guest bug)
		int64(interp.HeapBase) - 1000,         // gap between globals and heap
		int64(interp.HeapBase) + (1<<24 + 77), // beyond the heap flat cap
	}
	for _, addr := range wilds {
		bothTrackers(t, func(t *testing.T, kind TrackerKind) {
			e, lm := newTrackerEngine(t, Config{Model: DOALL}, kind)
			e.EnterLoop(lm, interp.StackTop, nil)
			e.Tick(5)
			e.Store(addr)
			e.Tick(5)
			e.IterLoop(lm, interp.StackTop, nil)
			e.Tick(3)
			e.Load(addr)
			e.Tick(7)
			e.IterLoop(lm, interp.StackTop, nil)
			e.Tick(1)
			e.ExitLoop(lm)
			if st := e.Stats()[lm]; st.Reason != SerialConflict {
				t.Errorf("addr %#x: reason = %v, want SerialConflict", addr, st.Reason)
			}
		})
	}
}

// TestShadowGenerationIsolation: writes of an earlier instance at the same
// nesting depth must be invisible to a later instance (the generation bump
// replaces map clearing).
func TestShadowGenerationIsolation(t *testing.T) {
	addr := int64(interp.HeapBase + 40)
	bothTrackers(t, func(t *testing.T, kind TrackerKind) {
		e, lm := newTrackerEngine(t, Config{Model: DOALL}, kind)
		// Instance 1 writes addr in iteration 0 and exits cleanly.
		e.EnterLoop(lm, interp.StackTop, nil)
		e.Tick(5)
		e.Store(addr)
		e.Tick(5)
		e.IterLoop(lm, interp.StackTop, nil)
		e.Tick(1)
		e.ExitLoop(lm)
		// Instance 2 at the same depth reads addr in iteration 1: the
		// stale record must NOT conflict.
		e.EnterLoop(lm, interp.StackTop, nil)
		e.Tick(5)
		e.IterLoop(lm, interp.StackTop, nil)
		e.Tick(2)
		e.Load(addr)
		e.Tick(3)
		e.IterLoop(lm, interp.StackTop, nil)
		e.Tick(1)
		e.ExitLoop(lm)
		if st := e.Stats()[lm]; st.Reason != SerialNone {
			t.Errorf("reason = %v, want SerialNone (stale cross-instance record leaked)", st.Reason)
		}
	})
}

// TestLoopEventAnomalies: mismatched or underflowing Iter/Exit events are
// counted on the engine and surfaced on the Report, never silently dropped.
func TestLoopEventAnomalies(t *testing.T) {
	lmA, lmB := fakeMeta(), fakeMeta()
	info := &analysis.ModuleInfo{Loops: []*analysis.LoopMeta{lmA, lmB}}
	e := NewEngine(info, Config{Model: DOALL})

	e.IterLoop(lmA, interp.StackTop, nil) // empty stack
	e.ExitLoop(lmA)                       // empty stack
	e.EnterLoop(lmA, interp.StackTop, nil)
	e.IterLoop(lmB, interp.StackTop, nil) // wrong loop
	e.ExitLoop(lmB)                       // wrong loop
	e.ExitLoop(lmA)

	a := e.Anomalies()
	want := LoopEventAnomalies{IterNoActive: 1, ExitNoActive: 1, IterMismatch: 1, ExitMismatch: 1}
	if a != want {
		t.Errorf("anomalies = %+v, want %+v", a, want)
	}
	r := e.Report("anomalous")
	if r.Anomalies != want {
		t.Errorf("report anomalies = %+v, want %+v", r.Anomalies, want)
	}
	if r.Anomalies.Total() != 4 {
		t.Errorf("total = %d, want 4", r.Anomalies.Total())
	}
}

// TestAnomalyFreeRun: a well-formed hook sequence reports zero anomalies.
func TestAnomalyFreeRun(t *testing.T) {
	e, lm := newTrackerEngine(t, Config{Model: DOALL}, TrackerShadow)
	e.EnterLoop(lm, interp.StackTop, nil)
	e.Tick(5)
	e.IterLoop(lm, interp.StackTop, nil)
	e.Tick(1)
	e.ExitLoop(lm)
	if n := e.Anomalies().Total(); n != 0 {
		t.Errorf("anomalies = %d, want 0", n)
	}
}

// TestInstancePoolReuse: engine behaviour is independent of instance
// recycling — many sequential instances through the pool keep exact costs.
func TestInstancePoolReuse(t *testing.T) {
	e, lm := newTrackerEngine(t, Config{Model: DOALL}, TrackerShadow)
	for k := 0; k < 100; k++ {
		e.EnterLoop(lm, interp.StackTop, nil)
		for _, cost := range []int64{10, 20, 10, 15} {
			e.Tick(cost)
			e.IterLoop(lm, interp.StackTop, nil)
		}
		e.Tick(1)
		e.ExitLoop(lm)
	}
	// Per instance: serial 56, parallel 20 (Figure 1a).
	if got, want := e.SerialCost(), int64(100*56); got != want {
		t.Fatalf("serial = %d, want %d", got, want)
	}
	if got, want := e.ParallelCost(), int64(100*20); got != want {
		t.Errorf("parallel = %d, want %d", got, want)
	}
	st := e.Stats()[lm]
	if st.Instances != 100 || st.ParallelInstances != 100 {
		t.Errorf("instances = %d/%d, want 100/100", st.ParallelInstances, st.Instances)
	}
}
