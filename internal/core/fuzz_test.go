package core

import (
	"errors"
	"testing"

	"loopapalooza/internal/lang/lpcgen"
)

// fuzzRunOpts is the tight execution budget for fuzz runs: big enough that
// generated loop nests finish, small enough that a pathological input
// costs milliseconds, not the fuzzer's whole budget.
func fuzzRunOpts(tracker TrackerKind) RunOptions {
	return RunOptions{
		MaxSteps:     400_000,
		MaxHeapCells: 1 << 20,
		Tracker:      tracker,
	}
}

// classifyRunErr fails the test unless err fits the documented taxonomy.
// An unclassified error — above all a recovered panic — is a bug in the
// compile-and-run surface, reported with the generating source.
func classifyRunErr(t *testing.T, err error, src string) {
	t.Helper()
	if err == nil {
		return
	}
	if errors.Is(err, ErrPanic) {
		t.Fatalf("engine or interpreter panic: %v\nreproducer:\n%s", err, src)
	}
	for _, sentinel := range []error{ErrStepLimit, ErrMemLimit, ErrDeadline, ErrCanceled, ErrRuntime} {
		if errors.Is(err, sentinel) {
			return
		}
	}
	t.Fatalf("error outside the taxonomy: %v\nreproducer:\n%s", err, src)
}

// FuzzCompileAndRun drives the whole surface — lexer, parser, sema,
// codegen, analysis pipeline, interpreter, limit-study engine — on
// generator-derived programs that are type-correct by construction, then
// checks the metamorphic invariants on every successful run:
//
//   - report self-consistency incl. speedup ≥ 1 (VerifyReport);
//   - tracker independence: shadow-memory and legacy-map reports are
//     bit-identical (CompareReports);
//   - model dominance: PDOALL never loses to DOALL under equal flags
//     (CheckModelOrdering).
func FuzzCompileAndRun(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte{0})
	f.Add([]byte{255, 1, 128, 7})
	f.Add([]byte("loopapalooza"))
	f.Add([]byte{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1})

	f.Fuzz(func(t *testing.T, seed []byte) {
		src := lpcgen.Program(seed)
		info, err := AnalyzeSource("fuzz.lpc", src)
		if err != nil {
			// The generator emits type-correct programs; any compile
			// failure (including an ICE) is a front-end or generator bug.
			t.Fatalf("generated program failed to compile: %v\nsource:\n%s", err, src)
		}

		doallCfg := Config{Model: DOALL, Reduc: 1, Dep: 0, Fn: 2}
		pdoallCfg := Config{Model: PDOALL, Reduc: 1, Dep: 0, Fn: 2}

		reports := map[Model]*Report{}
		for _, cfg := range []Config{doallCfg, pdoallCfg, BestHELIX()} {
			rep, err := Run(info, cfg, fuzzRunOpts(TrackerShadow))
			repMap, errMap := Run(info, cfg, fuzzRunOpts(TrackerLegacyMap))
			classifyRunErr(t, err, src)
			classifyRunErr(t, errMap, src)
			if (err == nil) != (errMap == nil) {
				t.Fatalf("trackers disagree on failure under %s: shadow=%v map=%v\nsource:\n%s",
					cfg, err, errMap, src)
			}
			if err != nil {
				continue
			}
			if verr := VerifyReport(rep); verr != nil {
				t.Fatalf("%v under %s\nsource:\n%s", verr, cfg, src)
			}
			if cerr := CompareReports(rep, repMap); cerr != nil {
				t.Fatalf("%v\nsource:\n%s", cerr, src)
			}
			reports[cfg.Model] = rep
		}
		if d, p := reports[DOALL], reports[PDOALL]; d != nil && p != nil {
			if oerr := CheckModelOrdering(d, p); oerr != nil {
				t.Fatalf("%v\nsource:\n%s", oerr, src)
			}
		}
	})
}
