package core

import (
	"testing"

	"loopapalooza/internal/analysis"
	"loopapalooza/internal/interp"
	"loopapalooza/internal/ir"
)

// fakeMeta builds a minimal canonical loop record so engine cost semantics
// can be driven directly through the hook interface (the Figure 1 golden
// tests).
func fakeMeta() *analysis.LoopMeta {
	m := ir.NewModule("golden")
	f := m.AddFunction("f", ir.Void)
	entry := ir.NewBuilder(f)
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	entry.Jmp(head)
	entry.SetBlock(head)
	entry.Br(ir.ConstBool(true), body, exit)
	entry.SetBlock(body)
	entry.Jmp(head)
	entry.SetBlock(exit)
	entry.Ret(nil)
	f.Renumber()
	l := &analysis.Loop{
		Header:    head,
		Latch:     body,
		Preheader: f.Entry(),
		Blocks:    map[*ir.Block]bool{head: true, body: true},
		Depth:     1,
	}
	return &analysis.LoopMeta{Loop: l}
}

func newGoldenEngine(t *testing.T, cfg Config) (*Engine, *analysis.LoopMeta) {
	t.Helper()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	lm := fakeMeta()
	info := &analysis.ModuleInfo{Loops: []*analysis.LoopMeta{lm}}
	return NewEngine(info, cfg), lm
}

const heapAddr = int64(interp.HeapBase + 100)

// TestFigure1DOALL: iterations of cost 10/20/10/15 with no conflicts cost
// the slowest iteration (Figure 1a).
func TestFigure1DOALL(t *testing.T) {
	e, lm := newGoldenEngine(t, Config{Model: DOALL})
	e.EnterLoop(lm, interp.StackTop, nil)
	for _, cost := range []int64{10, 20, 10, 15} {
		e.Tick(cost)
		e.IterLoop(lm, interp.StackTop, nil)
	}
	e.Tick(1) // exit test in the header
	e.ExitLoop(lm)

	if e.SerialCost() != 56 {
		t.Fatalf("serial = %d, want 56", e.SerialCost())
	}
	if e.ParallelCost() != 56-36 {
		t.Errorf("parallel = %d, want 20 (slowest iteration)", e.ParallelCost())
	}
}

// TestFigure1DOALLConflict: one cross-iteration RAW serializes the whole
// loop and marks it sequential for good.
func TestFigure1DOALLConflict(t *testing.T) {
	e, lm := newGoldenEngine(t, Config{Model: DOALL})
	e.EnterLoop(lm, interp.StackTop, nil)
	e.Tick(5)
	e.Store(heapAddr)
	e.Tick(5)
	e.IterLoop(lm, interp.StackTop, nil)
	e.Tick(3)
	e.Load(heapAddr) // iteration 1 reads iteration 0's write
	e.Tick(7)
	e.IterLoop(lm, interp.StackTop, nil)
	e.Tick(1)
	e.ExitLoop(lm)

	if e.ParallelCost() != e.SerialCost() {
		t.Errorf("parallel = %d, want serial %d", e.ParallelCost(), e.SerialCost())
	}
	st := e.Stats()[lm]
	if st.Reason != SerialConflict {
		t.Errorf("reason = %s, want memory conflicts", st.Reason)
	}
	// The mark is sticky: a second, conflict-free instance stays serial.
	e.EnterLoop(lm, interp.StackTop, nil)
	e.Tick(10)
	e.IterLoop(lm, interp.StackTop, nil)
	e.Tick(10)
	e.IterLoop(lm, interp.StackTop, nil)
	e.ExitLoop(lm)
	if e.ParallelCost() != e.SerialCost() {
		t.Errorf("sticky serialization violated: parallel %d, serial %d", e.ParallelCost(), e.SerialCost())
	}
}

// TestFigure1PDOALL: a conflict splits execution into two phases, each
// costing its slowest iteration (Figure 1b).
func TestFigure1PDOALL(t *testing.T) {
	e, lm := newGoldenEngine(t, Config{Model: PDOALL})
	e.EnterLoop(lm, interp.StackTop, nil)
	// Iteration 0 (cost 10) writes.
	e.Tick(4)
	e.Store(heapAddr)
	e.Tick(6)
	e.IterLoop(lm, interp.StackTop, nil)
	// Iteration 1 (cost 20), clean.
	e.Tick(20)
	e.IterLoop(lm, interp.StackTop, nil)
	// Iteration 2 (cost 10) reads iteration 0's value: phase break.
	e.Tick(2)
	e.Load(heapAddr)
	e.Tick(8)
	e.IterLoop(lm, interp.StackTop, nil)
	// Iteration 3 (cost 15), clean.
	e.Tick(15)
	e.IterLoop(lm, interp.StackTop, nil)
	e.Tick(1)
	e.ExitLoop(lm)

	serial := int64(10 + 20 + 10 + 15 + 1)
	if e.SerialCost() != serial {
		t.Fatalf("serial = %d, want %d", e.SerialCost(), serial)
	}
	// Phase 1 = max(10, 20) = 20; phase 2 = max(10, 15, 1) = 15.
	wantParallel := int64(20 + 15)
	if got := e.ParallelCost(); got != wantParallel {
		t.Errorf("parallel = %d, want %d", got, wantParallel)
	}
	st := e.Stats()[lm]
	if st.ConflictIters != 1 {
		t.Errorf("conflict iterations = %d, want 1", st.ConflictIters)
	}
	if st.Reason != SerialNone {
		t.Errorf("loop serialized: %s", st.Reason)
	}
}

// TestPDOALLGivesUpOver80Percent: conflicts in >80% of iterations mark the
// loop sequential (§III-B).
func TestPDOALLGivesUpOver80Percent(t *testing.T) {
	e, lm := newGoldenEngine(t, Config{Model: PDOALL})
	e.EnterLoop(lm, interp.StackTop, nil)
	// Iteration 0 writes; every later iteration reads and rewrites:
	// 9 of 10 iterations conflict.
	e.Store(heapAddr)
	e.Tick(10)
	e.IterLoop(lm, interp.StackTop, nil)
	for i := 0; i < 9; i++ {
		e.Load(heapAddr)
		e.Store(heapAddr)
		e.Tick(10)
		e.IterLoop(lm, interp.StackTop, nil)
	}
	e.Tick(1)
	e.ExitLoop(lm)

	if e.ParallelCost() != e.SerialCost() {
		t.Errorf("parallel = %d, want serial %d", e.ParallelCost(), e.SerialCost())
	}
	if got := e.Stats()[lm].Reason; got != SerialConflict {
		t.Errorf("reason = %s, want memory conflicts", got)
	}
}

// TestFigure1HELIX: frequent dependencies are satisfied by synchronization:
// cost = iter_slowest + delta_largest * num_iter (Figure 1c, §III-B).
func TestFigure1HELIX(t *testing.T) {
	e, lm := newGoldenEngine(t, Config{Model: HELIX})
	e.EnterLoop(lm, interp.StackTop, nil)
	// Every iteration costs 10: writes at offset 4, reads at offset 2
	// the value of the previous iteration => slope (4-2)/1 = 2.
	e.Tick(4)
	e.Store(heapAddr)
	e.Tick(6)
	e.IterLoop(lm, interp.StackTop, nil)
	for i := 0; i < 3; i++ {
		e.Tick(2)
		e.Load(heapAddr)
		e.Tick(2)
		e.Store(heapAddr)
		e.Tick(6)
		e.IterLoop(lm, interp.StackTop, nil)
	}
	e.Tick(1)
	e.ExitLoop(lm)

	serial := int64(4*10 + 1)
	if e.SerialCost() != serial {
		t.Fatalf("serial = %d, want %d", e.SerialCost(), serial)
	}
	// iter_slowest = 10, delta_largest = 2, num_iter = 4 => 18.
	if got := e.ParallelCost(); got != 18 {
		t.Errorf("parallel = %d, want 18", got)
	}
}

// TestHELIXNoGainFallsBackToSerial: when the synchronized cost reaches the
// serial cost the loop is recorded as serial.
func TestHELIXNoGainFallsBackToSerial(t *testing.T) {
	e, lm := newGoldenEngine(t, Config{Model: HELIX})
	e.EnterLoop(lm, interp.StackTop, nil)
	// Producer at the very end of each iteration, consumer at the very
	// start: slope == iteration length. Sync saves nothing.
	e.Tick(1)
	e.Store(heapAddr)
	e.IterLoop(lm, interp.StackTop, nil)
	for i := 0; i < 3; i++ {
		e.Load(heapAddr)
		e.Tick(10)
		e.Store(heapAddr)
		e.IterLoop(lm, interp.StackTop, nil)
	}
	e.ExitLoop(lm)

	if e.ParallelCost() != e.SerialCost() {
		t.Errorf("parallel = %d, want serial %d", e.ParallelCost(), e.SerialCost())
	}
	if got := e.Stats()[lm].Reason; got != SerialNoGain {
		t.Errorf("reason = %s, want sync-no-gain", got)
	}
}

// TestCactusStackExemption: stack writes in frames pushed after iteration
// start must not count as cross-iteration conflicts (§II-E).
func TestCactusStackExemption(t *testing.T) {
	e, lm := newGoldenEngine(t, Config{Model: DOALL})
	frameAddr := int64(interp.StackTop - 50) // below the iteration-start SP
	sp := int64(interp.StackTop - 10)
	e.EnterLoop(lm, sp, nil)
	// Iteration 0 calls a function whose frame writes frameAddr.
	e.Tick(5)
	e.Store(frameAddr)
	e.Tick(5)
	e.IterLoop(lm, sp, nil)
	// Iteration 1's callee reuses the same stack cell: a RAW would
	// manifest without the exemption.
	e.Tick(5)
	e.Load(frameAddr)
	e.Tick(5)
	e.IterLoop(lm, sp, nil)
	e.Tick(1)
	e.ExitLoop(lm)

	if got := e.Stats()[lm].Reason; got != SerialNone {
		t.Errorf("stack reuse serialized the loop: %s", got)
	}
	if e.ParallelCost() >= e.SerialCost() {
		t.Errorf("no speedup: parallel %d, serial %d", e.ParallelCost(), e.SerialCost())
	}
}

// TestNestedSavingsPropagate: an inner parallel loop shrinks the enclosing
// iteration on the adjusted clock, and the outer loop parallelizes on top
// (multi-level nested parallelism).
func TestNestedSavingsPropagate(t *testing.T) {
	e, outer := newGoldenEngine(t, Config{Model: DOALL})
	inner := fakeMeta()
	e.info.Loops = append(e.info.Loops, inner)

	runInner := func() {
		e.EnterLoop(inner, interp.StackTop, nil)
		for i := 0; i < 10; i++ {
			e.Tick(10)
			e.IterLoop(inner, interp.StackTop, nil)
		}
		e.ExitLoop(inner) // cost 100 -> 10
	}
	e.EnterLoop(outer, interp.StackTop, nil)
	for i := 0; i < 4; i++ {
		runInner()
		e.Tick(5)
		e.IterLoop(outer, interp.StackTop, nil)
	}
	e.ExitLoop(outer)

	// Serial: 4 * 105 = 420. Inner instances compress to 10 each, so
	// each outer iteration is 15 adjusted; outer slowest = 15.
	if e.SerialCost() != 420 {
		t.Fatalf("serial = %d, want 420", e.SerialCost())
	}
	if got := e.ParallelCost(); got != 15 {
		t.Errorf("parallel = %d, want 15 (nested parallelism)", got)
	}
}

// TestCoverageAccounting: coverage counts serial ticks inside parallel
// loops once, preferring the outermost parallel instance.
func TestCoverageAccounting(t *testing.T) {
	e, lm := newGoldenEngine(t, Config{Model: DOALL})
	e.Tick(50) // outside any loop: uncovered
	e.EnterLoop(lm, interp.StackTop, nil)
	for i := 0; i < 5; i++ {
		e.Tick(10)
		e.IterLoop(lm, interp.StackTop, nil)
	}
	e.ExitLoop(lm)
	e.Tick(50)

	r := e.Report("golden")
	if r.SerialCost != 150 {
		t.Fatalf("serial = %d", r.SerialCost)
	}
	if r.CoveredTicks != 50 {
		t.Errorf("covered = %d, want 50", r.CoveredTicks)
	}
	if got := r.Coverage(); got < 0.33 || got > 0.34 {
		t.Errorf("coverage = %f, want ~1/3", got)
	}
}

// TestStaticPremarks checks the Table II static rejections.
func TestStaticPremarks(t *testing.T) {
	lm := fakeMeta()
	lm.HasCall = true
	cases := []struct {
		cfg  Config
		want SerialReason
	}{
		{Config{Model: DOALL, Fn: 0}, SerialCall},
		{Config{Model: PDOALL, Fn: 1}, SerialNone}, // pure-only call set empty here
		{Config{Model: PDOALL, Fn: 3}, SerialNone},
	}
	for _, c := range cases {
		info := &analysis.ModuleInfo{Loops: []*analysis.LoopMeta{lm}}
		e := NewEngine(info, c.cfg)
		if got := e.Stats()[lm].Reason; got != c.want {
			t.Errorf("%s: reason = %s, want %s", c.cfg, got, c.want)
		}
	}
}
