package core

// Binary event traces: the instrumentation stream of one execution
// (paper §III-A) serialized to a compact varint format, so a program
// recorded once can be replayed into any future configuration without
// re-executing. Budgets (steps, heap, wall-clock) are enforced at record
// time by the interpreter; replay consumes the recorded stream and cannot
// fail on them — only successful executions produce complete traces.
//
// Layout (all integers varint unless noted):
//
//	magic "LPTr", version byte
//	uvarint len(module name), name bytes
//	uvarint loop count (must match the replaying module's analysis)
//	records:
//	  0x00 tick   uvarint n
//	  0x01 enter  uvarint seq, uvarint sp, uvarint k, k × val
//	  0x02 iter   uvarint seq, uvarint sp, uvarint k, k × (val, zigzag defTick)
//	  0x03 exit   uvarint seq
//	  0x04 load   zigzag delta from the previous load/store address
//	  0x05 store  zigzag delta from the previous load/store address
//	  0x06 end    uvarint total ticks (truncation + corruption check)
//	val: kind byte; KFloat → 8 bytes little-endian IEEE bits, else zigzag I
//
// Loops are addressed by their stable per-module Seq ordinal, so a trace
// is only meaningful against the module analysis that recorded it (the
// bench harness and the serve trace tier key traces by a source hash to
// guarantee that).

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"runtime/debug"

	"loopapalooza/internal/analysis"
	"loopapalooza/internal/interp"
	"loopapalooza/internal/ir"
)

// traceMagic opens every trace, followed by traceVersion.
var traceMagic = [4]byte{'L', 'P', 'T', 'r'}

// traceVersion is the current format version.
const traceVersion = 1

// Trace opcodes.
const (
	opTick byte = iota
	opEnter
	opIter
	opExit
	opLoad
	opStore
	opEnd
)

// zigzag maps signed to unsigned so small-magnitude deltas stay short.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// TraceWriter serializes the instrumentation event stream. It implements
// interp.Hooks and copies event payloads immediately (by encoding them),
// so it is safe to wire directly to the interpreter or behind the fan-out
// tee. Errors from the underlying writer are sticky and surface at Close.
type TraceWriter struct {
	w     *bufio.Writer
	info  *analysis.ModuleInfo
	err   error
	last  int64 // previous load/store address (delta base)
	ticks int64 // Σ tick n, written by Close as the end-record checksum
	buf   [2 * binary.MaxVarintLen64]byte
}

// NewTraceWriter starts a trace of one execution of info's module,
// writing the header immediately.
func NewTraceWriter(w io.Writer, info *analysis.ModuleInfo) *TraceWriter {
	tw := &TraceWriter{w: bufio.NewWriterSize(w, 1<<16), info: info}
	if _, err := tw.w.Write(traceMagic[:]); err != nil {
		tw.err = err
		return tw
	}
	tw.byte(traceVersion)
	name := info.Mod.Name
	tw.uvarint(uint64(len(name)))
	if tw.err == nil {
		_, tw.err = tw.w.WriteString(name)
	}
	tw.uvarint(uint64(len(info.Loops)))
	return tw
}

func (tw *TraceWriter) byte(b byte) {
	if tw.err == nil {
		tw.err = tw.w.WriteByte(b)
	}
}

func (tw *TraceWriter) uvarint(v uint64) {
	if tw.err != nil {
		return
	}
	n := binary.PutUvarint(tw.buf[:], v)
	_, tw.err = tw.w.Write(tw.buf[:n])
}

func (tw *TraceWriter) svarint(v int64) { tw.uvarint(zigzag(v)) }

// val encodes one runtime value: kind byte, then either the IEEE bits
// (floats, fixed 8 bytes — random mantissas varint badly) or a zigzag
// varint of the integer payload.
func (tw *TraceWriter) val(v interp.Val) {
	tw.byte(byte(v.K))
	if v.K == ir.KFloat {
		if tw.err == nil {
			binary.LittleEndian.PutUint64(tw.buf[:8], math.Float64bits(v.F))
			_, tw.err = tw.w.Write(tw.buf[:8])
		}
		return
	}
	tw.svarint(v.I)
}

// seqOf resolves a loop meta to its trace ordinal, failing the trace for
// metas outside the module's dense numbering (hand-built test metas).
func (tw *TraceWriter) seqOf(lm *analysis.LoopMeta) uint64 {
	if lm.Seq < 0 || lm.Seq >= len(tw.info.Loops) || tw.info.Loops[lm.Seq] != lm {
		if tw.err == nil {
			tw.err = fmt.Errorf("core: trace: loop meta (seq %d) is not addressable in this module", lm.Seq)
		}
		return 0
	}
	return uint64(lm.Seq)
}

// Tick implements interp.Hooks.
func (tw *TraceWriter) Tick(n int64) {
	tw.byte(opTick)
	tw.uvarint(uint64(n))
	tw.ticks += n
}

// EnterLoop implements interp.Hooks.
func (tw *TraceWriter) EnterLoop(lm *analysis.LoopMeta, sp int64, init []interp.Val) {
	seq := tw.seqOf(lm)
	tw.byte(opEnter)
	tw.uvarint(seq)
	tw.uvarint(uint64(sp))
	tw.uvarint(uint64(len(init)))
	for _, v := range init {
		tw.val(v)
	}
}

// IterLoop implements interp.Hooks.
func (tw *TraceWriter) IterLoop(lm *analysis.LoopMeta, sp int64, obs []interp.LCDObs) {
	seq := tw.seqOf(lm)
	tw.byte(opIter)
	tw.uvarint(seq)
	tw.uvarint(uint64(sp))
	tw.uvarint(uint64(len(obs)))
	for _, o := range obs {
		tw.val(o.Val)
		tw.svarint(o.DefTick)
	}
}

// ExitLoop implements interp.Hooks.
func (tw *TraceWriter) ExitLoop(lm *analysis.LoopMeta) {
	seq := tw.seqOf(lm)
	tw.byte(opExit)
	tw.uvarint(seq)
}

// Load implements interp.Hooks.
func (tw *TraceWriter) Load(addr int64) {
	tw.byte(opLoad)
	tw.svarint(addr - tw.last)
	tw.last = addr
}

// Store implements interp.Hooks.
func (tw *TraceWriter) Store(addr int64) {
	tw.byte(opStore)
	tw.svarint(addr - tw.last)
	tw.last = addr
}

// Close writes the end record and flushes, returning the first error the
// trace hit. A trace without a successful Close is truncated and will be
// rejected at replay.
func (tw *TraceWriter) Close() error {
	tw.byte(opEnd)
	tw.uvarint(uint64(tw.ticks))
	if tw.err != nil {
		return tw.err
	}
	return tw.w.Flush()
}

// byteReader adapts any reader for varint decoding while keeping block
// reads for float payloads.
type byteReader interface {
	io.Reader
	io.ByteReader
}

// TraceReader decodes a recorded trace and replays it into any
// interp.Hooks consumer — typically one or more Engines, which then
// produce Reports bit-identical to a live run.
type TraceReader struct {
	r     byteReader
	metas []*analysis.LoopMeta
	name  string
	last  int64
	ticks int64
}

// NewTraceReader validates the trace header against the module analysis
// that will consume the replay.
func NewTraceReader(r io.Reader, info *analysis.ModuleInfo) (*TraceReader, error) {
	br, ok := r.(byteReader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	tr := &TraceReader{r: br, metas: info.Loops}
	var magic [5]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("core: trace: reading header: %w", err)
	}
	if [4]byte(magic[:4]) != traceMagic {
		return nil, fmt.Errorf("core: trace: bad magic %q", magic[:4])
	}
	if magic[4] != traceVersion {
		return nil, fmt.Errorf("core: trace: unsupported version %d (want %d)", magic[4], traceVersion)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil || nameLen > 1<<20 {
		return nil, fmt.Errorf("core: trace: bad module name length (%v)", err)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("core: trace: reading module name: %w", err)
	}
	tr.name = string(name)
	loops, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("core: trace: reading loop count: %w", err)
	}
	if int(loops) != len(info.Loops) {
		return nil, fmt.Errorf("core: trace: recorded against %d loops, module has %d (stale trace?)",
			loops, len(info.Loops))
	}
	return tr, nil
}

// ModuleName returns the module name recorded in the header.
func (tr *TraceReader) ModuleName() string { return tr.name }

func (tr *TraceReader) uvarint() (uint64, error) {
	return binary.ReadUvarint(tr.r)
}

func (tr *TraceReader) svarint() (int64, error) {
	u, err := binary.ReadUvarint(tr.r)
	return unzigzag(u), err
}

// val decodes one runtime value.
func (tr *TraceReader) val() (interp.Val, error) {
	k, err := tr.r.ReadByte()
	if err != nil {
		return interp.Val{}, err
	}
	if ir.Kind(k) > ir.KPtr {
		return interp.Val{}, fmt.Errorf("core: trace: bad value kind %d", k)
	}
	v := interp.Val{K: ir.Kind(k)}
	if v.K == ir.KFloat {
		var bits [8]byte
		if _, err := io.ReadFull(tr.r, bits[:]); err != nil {
			return interp.Val{}, err
		}
		v.F = math.Float64frombits(binary.LittleEndian.Uint64(bits[:]))
		return v, nil
	}
	v.I, err = tr.svarint()
	return v, err
}

// meta resolves a loop ordinal.
func (tr *TraceReader) meta() (*analysis.LoopMeta, error) {
	seq, err := tr.uvarint()
	if err != nil {
		return nil, err
	}
	if seq >= uint64(len(tr.metas)) {
		return nil, fmt.Errorf("core: trace: loop ordinal %d out of range (module has %d)", seq, len(tr.metas))
	}
	return tr.metas[seq], nil
}

// Replay streams every recorded event into h, in order. It fails on a
// truncated or corrupt trace; budgets were enforced at record time, so a
// complete trace always replays to completion. Scratch slices passed to h
// are reused across events, exactly like a live interpreter.
func (tr *TraceReader) Replay(h interp.Hooks) error {
	var vals []interp.Val
	var obs []interp.LCDObs
	for {
		op, err := tr.r.ReadByte()
		if err != nil {
			return fmt.Errorf("core: trace: truncated (missing end record): %w", err)
		}
		switch op {
		case opTick:
			n, err := tr.uvarint()
			if err != nil {
				return fmt.Errorf("core: trace: truncated tick: %w", err)
			}
			tr.ticks += int64(n)
			h.Tick(int64(n))
		case opEnter:
			lm, err := tr.meta()
			if err != nil {
				return err
			}
			sp, err := tr.uvarint()
			if err != nil {
				return fmt.Errorf("core: trace: truncated enter: %w", err)
			}
			k, err := tr.uvarint()
			if err != nil || k > uint64(len(lm.Observed)) {
				return fmt.Errorf("core: trace: bad enter payload count %d for %s (%v)", k, lm.ID(), err)
			}
			vals = vals[:0]
			for i := uint64(0); i < k; i++ {
				v, err := tr.val()
				if err != nil {
					return fmt.Errorf("core: trace: truncated enter value: %w", err)
				}
				vals = append(vals, v)
			}
			h.EnterLoop(lm, int64(sp), vals)
		case opIter:
			lm, err := tr.meta()
			if err != nil {
				return err
			}
			sp, err := tr.uvarint()
			if err != nil {
				return fmt.Errorf("core: trace: truncated iter: %w", err)
			}
			k, err := tr.uvarint()
			if err != nil || k > uint64(len(lm.Observed)) {
				return fmt.Errorf("core: trace: bad iter payload count %d for %s (%v)", k, lm.ID(), err)
			}
			obs = obs[:0]
			for i := uint64(0); i < k; i++ {
				v, err := tr.val()
				if err != nil {
					return fmt.Errorf("core: trace: truncated observation: %w", err)
				}
				dt, err := tr.svarint()
				if err != nil {
					return fmt.Errorf("core: trace: truncated def tick: %w", err)
				}
				obs = append(obs, interp.LCDObs{Val: v, DefTick: dt})
			}
			h.IterLoop(lm, int64(sp), obs)
		case opExit:
			lm, err := tr.meta()
			if err != nil {
				return err
			}
			h.ExitLoop(lm)
		case opLoad:
			d, err := tr.svarint()
			if err != nil {
				return fmt.Errorf("core: trace: truncated load: %w", err)
			}
			tr.last += d
			h.Load(tr.last)
		case opStore:
			d, err := tr.svarint()
			if err != nil {
				return fmt.Errorf("core: trace: truncated store: %w", err)
			}
			tr.last += d
			h.Store(tr.last)
		case opEnd:
			want, err := tr.uvarint()
			if err != nil {
				return fmt.Errorf("core: trace: truncated end record: %w", err)
			}
			if int64(want) != tr.ticks {
				return fmt.Errorf("core: trace: tick checksum mismatch: replayed %d, recorded %d",
					tr.ticks, want)
			}
			return nil
		default:
			return fmt.Errorf("core: trace: unknown opcode %#x", op)
		}
	}
}

// ReplayTrace replays one recorded trace under one configuration and
// returns a report bit-identical to the Run that recorded it. Only
// opts.Tracker is consulted: resource budgets were enforced when the
// trace was recorded.
func ReplayTrace(name string, info *analysis.ModuleInfo, cfg Config, opts RunOptions, r io.Reader) (*Report, error) {
	reps, err := ReplayTraceMulti(name, info, []Config{cfg}, opts, r)
	if err != nil {
		return nil, err
	}
	return reps[0], nil
}

// ReplayTraceMulti decodes a trace once and evaluates every configuration
// against it — the replay-side equivalent of MultiRun. Decoded events
// buffer into chunks and replay through the batched tracker path unless
// opts.DisableBatch forces the per-event sequential tee.
func ReplayTraceMulti(name string, info *analysis.ModuleInfo, cfgs []Config, opts RunOptions, r io.Reader) (reps []*Report, err error) {
	defer func() {
		if p := recover(); p != nil {
			reps, err = nil, fmt.Errorf("core: %s: %w", name,
				&PanicError{Val: p, Stack: string(debug.Stack())})
		}
	}()
	set, err := prepareEngines(info, cfgs, opts.Tracker)
	if err != nil {
		return nil, err
	}
	tr, err := NewTraceReader(r, info)
	if err != nil {
		return nil, err
	}
	if opts.DisableBatch {
		hooks := make([]interp.Hooks, len(set.engines))
		for i, e := range set.engines {
			hooks[i] = e
		}
		if err := tr.Replay(&multiHooks{hs: hooks}); err != nil {
			return nil, err
		}
		return set.reports(cfgs, name), nil
	}
	tee := newChunkTee(set.engines)
	if err := tr.Replay(tee); err != nil {
		return nil, err
	}
	tee.flush() // drain the partial tail chunk
	return set.reports(cfgs, name), nil
}
