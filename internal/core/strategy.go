package core

// Explicit fan-out strategy selection. MultiRun historically keyed its
// strategy off runtime.GOMAXPROCS(0) alone, which made the choice invisible
// to callers and impossible to pin in tests or on the command line. The
// knobs here make it explicit: RunOptions.Strategy names a strategy (zero =
// auto, preserving the historical behavior), RunOptions.Parallelism bounds
// the worker pool, and PlanFanout reports — deterministically, without
// running anything — exactly which strategy and worker count MultiRun will
// use, so CLIs and services can log and export the decision.

import (
	"fmt"
	"runtime"
)

// FanoutStrategy selects how MultiRun fans one execution's event stream
// into the per-configuration engines.
type FanoutStrategy int

const (
	// StrategyAuto (the zero value) picks per the measured crossover:
	// sequential tee below FanoutThreshold configurations, the
	// single-goroutine chunked tee when only one worker is available, and
	// the class-affinity worker pool otherwise.
	StrategyAuto FanoutStrategy = iota
	// StrategySequential forces the sequential tee (multiHooks): every
	// engine consumes events synchronously on the interpreting goroutine.
	StrategySequential
	// StrategyChunked forces the single-goroutine batched tee: events
	// buffer into sealed chunks and every engine replays them through the
	// batched tracker path, still on the interpreting goroutine.
	StrategyChunked
	// StrategyParallel forces the class-affinity worker pool: sealed
	// chunks are published to a bounded pool of workers, each owning a
	// fixed subset of the coalesced engine classes.
	StrategyParallel
)

// String names the strategy as accepted by ParseFanoutStrategy.
func (s FanoutStrategy) String() string {
	switch s {
	case StrategySequential:
		return "sequential"
	case StrategyChunked:
		return "chunked"
	case StrategyParallel:
		return "parallel"
	default:
		return "auto"
	}
}

// ParseFanoutStrategy parses a -strategy flag value.
func ParseFanoutStrategy(s string) (FanoutStrategy, error) {
	switch s {
	case "", "auto":
		return StrategyAuto, nil
	case "sequential":
		return StrategySequential, nil
	case "chunked":
		return StrategyChunked, nil
	case "parallel":
		return StrategyParallel, nil
	default:
		return StrategyAuto, fmt.Errorf("core: unknown fan-out strategy %q (want auto, sequential, chunked, or parallel)", s)
	}
}

// FanoutPlan is the resolved strategy decision for one MultiRun call:
// never StrategyAuto, with Parallelism the worker count the parallel
// strategy would use (1 for the single-goroutine strategies).
type FanoutPlan struct {
	Strategy    FanoutStrategy
	Parallelism int
}

// String renders the plan for log lines and metric labels, e.g.
// "parallel(p=4)" or "chunked".
func (p FanoutPlan) String() string {
	if p.Strategy == StrategyParallel {
		return fmt.Sprintf("parallel(p=%d)", p.Parallelism)
	}
	return p.Strategy.String()
}

// resolveParallelism maps the RunOptions.Parallelism knob to a concrete
// worker count: 0 (auto) means one worker per available CPU.
func resolveParallelism(p int) int {
	if p <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// PlanFanout resolves the strategy MultiRun will use for a configuration
// set of size nCfgs under opts. It is pure: the decision depends only on
// the set size, the options, and GOMAXPROCS, so callers can display the
// plan before (or without) running.
//
// The auto heuristic keeps the measured crossover of the earlier implicit
// switch: below FanoutThreshold configurations, per-chunk synchronization
// costs more than the sequential engine work; with a single worker the
// chunked tee replays batched without any channel handoff; with more, the
// class-affinity pool splits the coalesced engine classes across workers.
// DisableBatch excludes the chunked tee (it exists only in batched form),
// so the pool handles the per-event case at every worker count.
func PlanFanout(nCfgs int, opts RunOptions) FanoutPlan {
	p := resolveParallelism(opts.Parallelism)
	switch opts.Strategy {
	case StrategySequential:
		return FanoutPlan{Strategy: StrategySequential, Parallelism: 1}
	case StrategyChunked:
		return FanoutPlan{Strategy: StrategyChunked, Parallelism: 1}
	case StrategyParallel:
		return FanoutPlan{Strategy: StrategyParallel, Parallelism: p}
	}
	if nCfgs < FanoutThreshold {
		return FanoutPlan{Strategy: StrategySequential, Parallelism: 1}
	}
	if !opts.DisableBatch && p == 1 {
		return FanoutPlan{Strategy: StrategyChunked, Parallelism: 1}
	}
	return FanoutPlan{Strategy: StrategyParallel, Parallelism: p}
}
