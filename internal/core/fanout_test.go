package core

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"loopapalooza/internal/analysis"
	"loopapalooza/internal/interp"
	"loopapalooza/internal/ir"
)

// fanoutSamples covers the dependence shapes the engines care about:
// independent iterations, memory recurrences, reductions, predictable and
// unpredictable register LCDs, calls, and stack reuse.
var fanoutSamples = map[string]string{
	"doall":         doallSrc,
	"recurrence":    recurrenceSrc,
	"infrequent":    infrequentSrc,
	"reduction":     reductionSrc,
	"predictable":   predictableSrc,
	"unpredictable": unpredictableSrc,
	"dep1":          dep1Src,
	"call":          callSrc,
	"stack":         stackSrc,
}

// parallelAt pins the class-affinity pool at an explicit worker count.
func parallelAt(p int, disableBatch bool) func(*analysis.ModuleInfo, []Config, RunOptions) ([]*Report, error) {
	return func(info *analysis.ModuleInfo, cfgs []Config, opts RunOptions) ([]*Report, error) {
		opts.Parallelism = p
		opts.DisableBatch = disableBatch
		return MultiRunParallel(info, cfgs, opts)
	}
}

// multiStrategies pins every fan-out strategy regardless of config count
// or GOMAXPROCS, including the worker pool at fixed widths: 1 worker (all
// classes on one goroutine), 2 (classes split), NumCPU (the auto width),
// and a per-event pool variant.
var multiStrategies = map[string]func(*analysis.ModuleInfo, []Config, RunOptions) ([]*Report, error){
	"sequential": MultiRunSequential,
	"concurrent": MultiRunConcurrent,
	"chunked":    MultiRunChunked,
	"concurrent-no-batch": func(info *analysis.ModuleInfo, cfgs []Config, opts RunOptions) ([]*Report, error) {
		opts.DisableBatch = true
		return MultiRunConcurrent(info, cfgs, opts)
	},
	"parallel-p1":          parallelAt(1, false),
	"parallel-p2":          parallelAt(2, false),
	"parallel-pcpu":        parallelAt(runtime.NumCPU(), false),
	"parallel-p3-no-batch": parallelAt(3, true),
}

// TestMultiRunBitIdentical is the in-package differential oracle: for every
// sample program, one MultiRun over the full paper grid must produce
// reports bit-identical to running each configuration separately.
func TestMultiRunBitIdentical(t *testing.T) {
	cfgs := PaperConfigs()
	for name, src := range fanoutSamples {
		info, err := AnalyzeSource(name, src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := make([]*Report, len(cfgs))
		for i, cfg := range cfgs {
			if want[i], err = Run(info, cfg, RunOptions{}); err != nil {
				t.Fatalf("%s/%s: %v", name, cfg, err)
			}
		}
		for strat, run := range multiStrategies {
			got, err := run(info, cfgs, RunOptions{})
			if err != nil {
				t.Fatalf("%s/%s: %v", name, strat, err)
			}
			if len(got) != len(cfgs) {
				t.Fatalf("%s/%s: %d reports, want %d", name, strat, len(got), len(cfgs))
			}
			for i := range cfgs {
				if err := CompareReports(want[i], got[i]); err != nil {
					t.Errorf("%s/%s/%s: %v", name, strat, cfgs[i], err)
				}
			}
		}
	}
}

// TestMultiRunAutoSelect exercises MultiRun's strategy choice on both sides
// of the threshold.
func TestMultiRunAutoSelect(t *testing.T) {
	info, err := AnalyzeSource("auto", infrequentSrc)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfgs := range [][]Config{
		{{Model: DOALL}, BestPDOALL()},                                  // below threshold: sequential tee
		{{Model: DOALL}, {Model: PDOALL}, BestPDOALL(), BestHELIX()},    // at threshold: concurrent
		append(PaperConfigs(), PaperConfigs()...),                       // well above: concurrent
	} {
		got, err := MultiRun(info, cfgs, RunOptions{})
		if err != nil {
			t.Fatalf("MultiRun(%d cfgs): %v", len(cfgs), err)
		}
		for i, cfg := range cfgs {
			want, err := Run(info, cfg, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if err := CompareReports(want, got[i]); err != nil {
				t.Errorf("%d cfgs, cell %d (%s): %v", len(cfgs), i, cfg, err)
			}
		}
	}
}

// TestMultiRunEmptyAndInvalid: zero configurations execute once and return
// zero reports; an invalid configuration anywhere in the set fails the
// whole call before execution.
func TestMultiRunEmptyAndInvalid(t *testing.T) {
	info, err := AnalyzeSource("edge", doallSrc)
	if err != nil {
		t.Fatal(err)
	}
	for strat, run := range multiStrategies {
		reps, err := run(info, nil, RunOptions{})
		if err != nil || len(reps) != 0 {
			t.Errorf("%s: empty cfgs = (%v, %v), want no reports, no error", strat, reps, err)
		}
		bad := []Config{{Model: DOALL}, {Model: DOALL, Dep: 99}}
		if _, err := run(info, bad, RunOptions{}); err == nil {
			t.Errorf("%s: invalid config accepted", strat)
		}
	}
}

// TestMultiRunExecutionError: a budget trip surfaces once, classified
// exactly as a per-config Run would classify it, from both strategies.
func TestMultiRunExecutionError(t *testing.T) {
	info, err := AnalyzeSource("budget", doallSrc)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []Config{{Model: DOALL}, BestPDOALL(), BestHELIX(), {Model: PDOALL}}
	for strat, run := range multiStrategies {
		_, err := run(info, cfgs, RunOptions{MaxSteps: 10})
		if !errors.Is(err, ErrStepLimit) {
			t.Errorf("%s: err = %v, want ErrStepLimit", strat, err)
		}
	}
}

// failWriter fails after n bytes, exercising the sticky trace-error path.
type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if len(p) <= f.n {
		f.n -= len(p)
		return len(p), nil
	}
	n := f.n
	f.n = 0
	return n, errors.New("disk full")
}

// TestMultiRunTraceWriteFailure: a failing trace sink fails the run from
// every entry point that records.
func TestMultiRunTraceWriteFailure(t *testing.T) {
	info, err := AnalyzeSource("sink", doallSrc)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []Config{{Model: DOALL}, BestPDOALL(), BestHELIX(), {Model: PDOALL}}
	for strat, run := range multiStrategies {
		_, err := run(info, cfgs, RunOptions{Trace: &failWriter{n: 100}})
		if err == nil || !strings.Contains(err.Error(), "writing trace") {
			t.Errorf("%s: err = %v, want trace write failure", strat, err)
		}
	}
	if _, err := Run(info, Config{Model: DOALL}, RunOptions{Trace: &failWriter{n: 100}}); err == nil ||
		!strings.Contains(err.Error(), "writing trace") {
		t.Errorf("Run: err = %v, want trace write failure", err)
	}
}

// eventLog records every hook event in a retained, comparable form — the
// reference consumer for the chunk fan-out round trip.
type eventLog struct{ events []string }

func (l *eventLog) Tick(n int64) { l.events = append(l.events, fmt.Sprintf("tick %d", n)) }

func (l *eventLog) EnterLoop(lm *analysis.LoopMeta, sp int64, init []interp.Val) {
	l.events = append(l.events, fmt.Sprintf("enter %s sp=%d init=%v", lm.ID(), sp, init))
}

func (l *eventLog) IterLoop(lm *analysis.LoopMeta, sp int64, obs []interp.LCDObs) {
	l.events = append(l.events, fmt.Sprintf("iter %s sp=%d obs=%v", lm.ID(), sp, obs))
}

func (l *eventLog) ExitLoop(lm *analysis.LoopMeta) {
	l.events = append(l.events, fmt.Sprintf("exit %s", lm.ID()))
}

func (l *eventLog) Load(addr int64)  { l.events = append(l.events, fmt.Sprintf("load %d", addr)) }
func (l *eventLog) Store(addr int64) { l.events = append(l.events, fmt.Sprintf("store %d", addr)) }

// TestChunkFanoutPreservesEventStream drives the chunk machinery directly:
// every consumer must observe the exact event sequence the producer saw,
// across multiple chunk publications and pool reuse, with scratch buffers
// mutated after every event (the aliasing hazard the copy exists for).
func TestChunkFanoutPreservesEventStream(t *testing.T) {
	info, err := AnalyzeSource("chunks", doallSrc)
	if err != nil {
		t.Fatal(err)
	}
	lm := info.Loops[0]

	emit := func(h interp.Hooks) {
		scratchV := make([]interp.Val, 1)
		scratchO := make([]interp.LCDObs, 2)
		// 3 full chunks and a partial tail.
		for i := 0; i < 3*chunkRecs+17; i++ {
			switch i % 5 {
			case 0:
				h.Tick(int64(i))
			case 1:
				scratchV[0] = interp.Val{K: ir.KInt, I: int64(i)}
				h.EnterLoop(lm, int64(1000+i), scratchV)
				scratchV[0] = interp.Val{K: ir.KInt, I: -1} // stale scratch
			case 2:
				scratchO[0] = interp.LCDObs{Val: interp.Val{K: ir.KFloat, F: float64(i) / 3}, DefTick: int64(i)}
				scratchO[1] = interp.LCDObs{Val: interp.Val{K: ir.KBool, I: int64(i % 2)}, DefTick: 7}
				h.IterLoop(lm, int64(i), scratchO)
				scratchO[0], scratchO[1] = interp.LCDObs{}, interp.LCDObs{} // stale scratch
			case 3:
				h.Load(int64(i * 8))
			case 4:
				h.Store(int64(i * 8))
			}
		}
		h.ExitLoop(lm)
	}

	var want eventLog
	emit(&want)

	const consumers = 3
	logs := make([]eventLog, consumers)
	f := newChunkFanout(consumers)
	done := make(chan struct{})
	for i := 0; i < consumers; i++ {
		go func(i int) {
			defer func() { done <- struct{}{} }()
			for c := range f.outs[i] {
				replayChunk(&logs[i], c)
				if c.refs.Add(-1) == 0 {
					f.release(c)
				}
			}
		}(i)
	}
	emit(f)
	f.close()
	for i := 0; i < consumers; i++ {
		<-done
	}

	for i := range logs {
		if len(logs[i].events) != len(want.events) {
			t.Fatalf("consumer %d: %d events, want %d", i, len(logs[i].events), len(want.events))
		}
		for j := range want.events {
			if logs[i].events[j] != want.events[j] {
				t.Fatalf("consumer %d event %d:\n got %s\nwant %s", i, j, logs[i].events[j], want.events[j])
			}
		}
	}
}

// panicHook panics on the nth Tick it sees.
type panicHook struct {
	interp.NopHooks
	ticks, fuse int
}

func (p *panicHook) Tick(int64) {
	p.ticks++
	if p.ticks == p.fuse {
		panic("consumer bug")
	}
}

// TestConsumerPanicRecovery: a panic inside one pool worker must surface
// as a classified *PanicError, workers in other groups must still see the
// full stream, and the producer must never deadlock (the sick worker keeps
// draining its channel). Exercised at both pool shapes: one consumer per
// worker (the classic concurrent fan-out) and multiple consumers sharing
// the sick worker's group.
func TestConsumerPanicRecovery(t *testing.T) {
	for name, groups := range map[string]func(bad interp.Hooks, healthy *eventLog) [][]interp.Hooks{
		"one-per-worker": func(bad interp.Hooks, healthy *eventLog) [][]interp.Hooks {
			return [][]interp.Hooks{{bad}, {healthy}}
		},
		"shared-group": func(bad interp.Hooks, healthy *eventLog) [][]interp.Hooks {
			// The sick worker owns another consumer too; only the healthy
			// worker's group is guaranteed the full stream.
			return [][]interp.Hooks{{bad, &eventLog{}}, {healthy}}
		},
	} {
		t.Run(name, func(t *testing.T) {
			var healthy eventLog
			bad := &panicHook{fuse: 2}
			g := groups(bad, &healthy)
			f := newChunkFanout(len(g))
			wait := startWorkers(f, g, false)

			// Far more events than the channel depth holds: without
			// draining, the producer would block on the dead worker's
			// channel.
			total := (fanoutPoolSize + fanoutChanDepth + 4) * chunkRecs
			for i := 0; i < total; i++ {
				f.Tick(1)
			}
			f.close()

			p := wait()
			if p == nil || p.Val != "consumer bug" {
				t.Fatalf("panic = %+v, want recovered consumer bug", p)
			}
			var pe *PanicError
			if !errors.As(error(p), &pe) {
				t.Fatalf("worker panic %T does not unwrap as *PanicError", p)
			}
			if len(healthy.events) != total {
				t.Errorf("healthy worker saw %d events, want %d", len(healthy.events), total)
			}
		})
	}
}

// TestRunTraceMatchesUntraced: wiring a trace sink into Run must not
// change the report.
func TestRunTraceMatchesUntraced(t *testing.T) {
	info, err := AnalyzeSource("teed", infrequentSrc)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(info, BestPDOALL(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	traced, err := Run(info, BestPDOALL(), RunOptions{Trace: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if err := CompareReports(plain, traced); err != nil {
		t.Errorf("trace tee changed the report: %v", err)
	}
	if buf.Len() == 0 {
		t.Error("no trace bytes written")
	}
}

// retainingChunkHook violates the replayChunk consumer contract on
// purpose: it keeps the payload sub-slices instead of copying the
// elements.
type retainingChunkHook struct {
	interp.NopHooks
	retainedObs  [][]interp.LCDObs
	retainedVals [][]interp.Val
}

func (h *retainingChunkHook) IterLoop(lm *analysis.LoopMeta, sp int64, obs []interp.LCDObs) {
	h.retainedObs = append(h.retainedObs, obs)
}

func (h *retainingChunkHook) EnterLoop(lm *analysis.LoopMeta, sp int64, init []interp.Val) {
	h.retainedVals = append(h.retainedVals, init)
}

// TestReplayChunkPayloadAliasing is interp's TestHooksScratchBufferOwnership
// transplanted to the batched path: the vals/obs sub-slices replayChunk
// hands to consumers alias the chunk's flat payload arrays, and chunks are
// recycled through the fan-out pool — so a consumer that retains them MUST
// observably read the next filling's data through the stale headers. If
// this test fails, chunk replay started copying per event and the
// zero-allocation contract of the chunked strategies is gone.
func TestReplayChunkPayloadAliasing(t *testing.T) {
	info, err := AnalyzeSource("alias", doallSrc)
	if err != nil {
		t.Fatal(err)
	}
	lm := info.Loops[0]

	// Payload arrays at full capacity up front, as after one pool cycle in
	// production: refills append into the same backing.
	c := &evChunk{
		recs: make([]evRec, 0, chunkRecs),
		vals: make([]interp.Val, 0, chunkRecs),
		obs:  make([]interp.LCDObs, 0, chunkRecs),
	}
	w := chunkWriter{cur: c, onFull: func() {}}
	const events = 4
	fill := func(base int64) {
		scratchV := make([]interp.Val, 1)
		scratchO := make([]interp.LCDObs, 1)
		for i := int64(0); i < events; i++ {
			scratchV[0] = interp.Val{K: ir.KInt, I: base + i}
			w.EnterLoop(lm, 0, scratchV)
			scratchO[0] = interp.LCDObs{DefTick: base + i}
			w.IterLoop(lm, 0, scratchO)
		}
	}
	fill(100)

	h := &retainingChunkHook{}
	replayChunk(h, c)
	if len(h.retainedObs) != events || len(h.retainedVals) != events {
		t.Fatalf("saw %d/%d iter/enter events, want %d each", len(h.retainedObs), len(h.retainedVals), events)
	}
	for i := range h.retainedObs {
		if &h.retainedObs[i][0] != &c.obs[i] || &h.retainedVals[i][0] != &c.vals[i] {
			t.Fatalf("event %d payload does not alias the chunk arrays: replayChunk started copying", i)
		}
	}

	// Pool recycling: the chunk resets and refills with new payloads. Every
	// retained sub-slice must now read the second filling's values.
	c.reset()
	fill(900)
	for i := range h.retainedObs {
		if got := h.retainedObs[i][0].DefTick; got != 900+int64(i) {
			t.Errorf("retained obs[%d].DefTick = %d, want %d (chunk reuse must show through the alias)", i, got, 900+i)
		}
		if got := h.retainedVals[i][0].I; got != 900+int64(i) {
			t.Errorf("retained init[%d].I = %d, want %d (chunk reuse must show through the alias)", i, got, 900+i)
		}
	}
}
