package core

import (
	"context"
	"errors"
	"testing"
	"time"
)

const spinSrc = `func main() int { while (true) { } return 0; }`

func TestRunTypedStepLimit(t *testing.T) {
	_, err := RunSource("spin", spinSrc, Config{Model: DOALL}, RunOptions{MaxSteps: 1000})
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("errors.Is(err, ErrStepLimit) = false for %v", err)
	}
	if got := Classify(err); got != OutcomeStepLimit {
		t.Errorf("Classify = %v, want step-limit", got)
	}
}

func TestRunTypedTimeout(t *testing.T) {
	_, err := RunSource("spin", spinSrc, Config{Model: DOALL}, RunOptions{Timeout: time.Millisecond})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("errors.Is(err, ErrDeadline) = false for %v", err)
	}
	if got := Classify(err); got != OutcomeTimeout {
		t.Errorf("Classify = %v, want timeout", got)
	}
}

func TestRunTypedCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	_, err := RunSource("spin", spinSrc, Config{Model: DOALL}, RunOptions{Ctx: ctx})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("errors.Is(err, ErrCanceled) = false for %v", err)
	}
	if got := Classify(err); got != OutcomeCanceled {
		t.Errorf("Classify = %v, want canceled", got)
	}
}

func TestRunTypedMemLimit(t *testing.T) {
	_, err := RunSource("hog", `
func main() int {
	var p *int = alloc(1000);
	return *p;
}`, Config{Model: DOALL}, RunOptions{MaxHeapCells: 64})
	if !errors.Is(err, ErrMemLimit) {
		t.Fatalf("errors.Is(err, ErrMemLimit) = false for %v", err)
	}
	if got := Classify(err); got != OutcomeMemLimit {
		t.Errorf("Classify = %v, want mem-limit", got)
	}
}

func TestRunTypedRuntimeFault(t *testing.T) {
	_, err := RunSource("div0", `
func main() int {
	var z int = 0;
	return 1 / z;
}`, Config{Model: DOALL}, RunOptions{})
	if !errors.Is(err, ErrRuntime) {
		t.Fatalf("errors.Is(err, ErrRuntime) = false for %v", err)
	}
	if got := Classify(err); got != OutcomeRuntimeError {
		t.Errorf("Classify = %v, want runtime-error", got)
	}
}

func TestClassifyTaxonomy(t *testing.T) {
	cases := []struct {
		err  error
		want Outcome
	}{
		{nil, OutcomeOK},
		{ErrStepLimit, OutcomeStepLimit},
		{ErrMemLimit, OutcomeMemLimit},
		{ErrDeadline, OutcomeTimeout},
		{ErrCanceled, OutcomeCanceled},
		{&PanicError{Val: "boom"}, OutcomePanic},
		{ErrRuntime, OutcomeRuntimeError},
		{errors.New("misc"), OutcomeError},
		{context.Canceled, OutcomeCanceled},
		{context.DeadlineExceeded, OutcomeTimeout},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
	for _, o := range []Outcome{OutcomeOK, OutcomeStepLimit, OutcomeMemLimit, OutcomeTimeout,
		OutcomeCanceled, OutcomePanic, OutcomeRuntimeError, OutcomeError} {
		if o.String() == "" || o.Short() == "" {
			t.Errorf("outcome %d has empty labels", o)
		}
	}
}

// TestBudgetedRunLeavesAnalysisReusable: a failed run must not poison the
// shared ModuleInfo — a later unbudgeted run over the same analysis
// produces a normal report.
func TestBudgetedRunLeavesAnalysisReusable(t *testing.T) {
	info, err := AnalyzeSource("prog", doallSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(info, Config{Model: DOALL}, RunOptions{MaxSteps: 50}); !errors.Is(err, ErrStepLimit) {
		t.Fatalf("want step-limit, got %v", err)
	}
	r, err := Run(info, Config{Model: DOALL}, RunOptions{})
	if err != nil {
		t.Fatalf("run after budget failure: %v", err)
	}
	if r.Speedup() < 20 {
		t.Errorf("speedup = %.2f after budget failure, want the usual large value", r.Speedup())
	}
}
