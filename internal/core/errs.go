package core

// This file is the failure taxonomy of the limit-study run-time. The
// sentinels re-export the interpreter's so that callers depending only on
// core (the bench harness, both CLIs) can classify failures with
// errors.Is/As without importing interp or string-matching messages.

import (
	"context"
	"errors"
	"fmt"

	"loopapalooza/internal/interp"
)

// The execution-failure taxonomy (see interp's doc for the semantics).
// Every error returned by Run/RunSource matches exactly one of these under
// errors.Is; ErrPanic additionally classifies panics recovered by the
// bench sweep engine.
var (
	// ErrStepLimit: the dynamic instruction budget was exhausted.
	ErrStepLimit = interp.ErrStepLimit
	// ErrMemLimit: a memory budget tripped (heap cells or stack words).
	ErrMemLimit = interp.ErrMemLimit
	// ErrDeadline: the wall-clock deadline or timeout passed mid-run.
	ErrDeadline = interp.ErrDeadline
	// ErrCanceled: the run's context was canceled mid-run.
	ErrCanceled = interp.ErrCanceled
	// ErrRuntime: the guest program faulted (division by zero, null or
	// unmapped access, ...).
	ErrRuntime = interp.ErrRuntime
	// ErrPanic: a worker panicked and the sweep engine recovered it.
	ErrPanic = errors.New("worker panic")
)

// PanicError wraps a panic value recovered from a worker goroutine.
// errors.Is(err, ErrPanic) matches it.
type PanicError struct {
	// Val is the recovered panic value.
	Val any
	// Stack is the goroutine stack at the panic site.
	Stack string
}

func (e *PanicError) Error() string { return fmt.Sprintf("worker panic: %v", e.Val) }

func (e *PanicError) Unwrap() error { return ErrPanic }

// Outcome classifies one run of one (benchmark, configuration) cell.
type Outcome uint8

// The per-cell outcomes, in severity order.
const (
	// OutcomeOK: the run completed and produced a report.
	OutcomeOK Outcome = iota
	// OutcomeStepLimit: the step budget was exhausted.
	OutcomeStepLimit
	// OutcomeMemLimit: a memory budget was exhausted.
	OutcomeMemLimit
	// OutcomeTimeout: the deadline or timeout expired.
	OutcomeTimeout
	// OutcomeCanceled: the sweep or run context was canceled.
	OutcomeCanceled
	// OutcomePanic: the worker panicked (recovered by the sweep engine).
	OutcomePanic
	// OutcomeRuntimeError: the guest program faulted.
	OutcomeRuntimeError
	// OutcomeError: any other failure (compile/analysis errors, bad
	// configurations, ...).
	OutcomeError
)

var outcomeNames = [...]string{
	OutcomeOK:           "ok",
	OutcomeStepLimit:    "step-limit",
	OutcomeMemLimit:     "mem-limit",
	OutcomeTimeout:      "timeout",
	OutcomeCanceled:     "canceled",
	OutcomePanic:        "panic",
	OutcomeRuntimeError: "runtime-error",
	OutcomeError:        "error",
}

// String returns the outcome label used in failure summaries.
func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return fmt.Sprintf("outcome(%d)", o)
}

var outcomeShort = [...]string{
	OutcomeOK:           "ok",
	OutcomeStepLimit:    "steps",
	OutcomeMemLimit:     "mem",
	OutcomeTimeout:      "time",
	OutcomeCanceled:     "cancel",
	OutcomePanic:        "panic",
	OutcomeRuntimeError: "fault",
	OutcomeError:        "err",
}

// Short returns a compact label for figure-cell annotations, e.g.
// "n/a(steps)".
func (o Outcome) Short() string {
	if int(o) < len(outcomeShort) {
		return outcomeShort[o]
	}
	return "err"
}

// Classify maps an error to its taxonomy outcome (OutcomeOK for nil).
func Classify(err error) Outcome {
	switch {
	case err == nil:
		return OutcomeOK
	case errors.Is(err, ErrStepLimit):
		return OutcomeStepLimit
	case errors.Is(err, ErrMemLimit):
		return OutcomeMemLimit
	case errors.Is(err, ErrDeadline), errors.Is(err, context.DeadlineExceeded):
		return OutcomeTimeout
	case errors.Is(err, ErrCanceled), errors.Is(err, context.Canceled):
		return OutcomeCanceled
	case errors.Is(err, ErrPanic):
		return OutcomePanic
	case errors.Is(err, ErrRuntime):
		return OutcomeRuntimeError
	default:
		return OutcomeError
	}
}
