package core

import (
	"strings"
	"testing"
)

func okReport() *Report {
	return &Report{
		Benchmark:    "t",
		Config:       Config{Model: PDOALL, Reduc: 1, Dep: 0, Fn: 2},
		SerialCost:   1000,
		ParallelCost: 250,
		CoveredTicks: 800,
		Loops: []LoopReport{{
			ID: "main:L", Instances: 4, ParallelInstances: 4,
			Iters: 64, ConflictIters: 3, PredHitRate: 0.5,
		}},
	}
}

func TestVerifyReportAcceptsHealthy(t *testing.T) {
	if err := VerifyReport(okReport()); err != nil {
		t.Fatalf("healthy report rejected: %v", err)
	}
}

func TestVerifyReportCatchesViolations(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Report)
		want string
	}{
		{"nil", nil, "nil report"},
		{"speedup below one", func(r *Report) { r.ParallelCost = r.SerialCost + 1 }, "speedup < 1"},
		{"negative cost", func(r *Report) { r.SerialCost = -1 }, "negative cost"},
		{"covered exceeds serial", func(r *Report) { r.CoveredTicks = r.SerialCost + 1 }, "covered ticks"},
		{"anomalies", func(r *Report) { r.Anomalies.IterMismatch = 2 }, "unattributed loop events"},
		{"conflict exceeds iters", func(r *Report) { r.Loops[0].ConflictIters = 65 }, "conflict iters"},
		{"parallel instances exceed instances", func(r *Report) { r.Loops[0].ParallelInstances = 5 }, "parallel instances"},
		{"predictor rate out of range", func(r *Report) { r.Loops[0].PredHitRate = 1.5 }, "hit rate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var r *Report
			if tc.mut != nil {
				r = okReport()
				tc.mut(r)
			}
			err := VerifyReport(r)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestCompareReportsDetectsDivergence(t *testing.T) {
	a, b := okReport(), okReport()
	if err := CompareReports(a, b); err != nil {
		t.Fatalf("equal reports compared unequal: %v", err)
	}
	b.Loops[0].ConflictIters++
	if err := CompareReports(a, b); err == nil {
		t.Fatal("divergent reports compared equal")
	}
	if err := CompareReports(a, nil); err == nil {
		t.Fatal("nil report compared equal")
	}
}

func TestCheckModelOrdering(t *testing.T) {
	doall := okReport()
	doall.Config = Config{Model: DOALL, Reduc: 1, Dep: 0, Fn: 2}
	doall.ParallelCost = 500
	pdoall := okReport()

	if err := CheckModelOrdering(doall, pdoall); err != nil {
		t.Fatalf("valid ordering rejected: %v", err)
	}
	worse := okReport()
	worse.ParallelCost = 600
	if err := CheckModelOrdering(doall, worse); err == nil || !strings.Contains(err.Error(), "exceeds DOALL") {
		t.Errorf("dominance violation not caught: %v", err)
	}
	flags := okReport()
	flags.Config.Fn = 0
	if err := CheckModelOrdering(doall, flags); err == nil || !strings.Contains(err.Error(), "flags differ") {
		t.Errorf("flag mismatch not caught: %v", err)
	}
	if err := CheckModelOrdering(pdoall, doall); err == nil {
		t.Error("swapped models not caught")
	}
}
