package lang

import (
	"errors"
	"strings"
	"testing"

	"loopapalooza/internal/analysis"
	"loopapalooza/internal/diag"
	"loopapalooza/internal/ir"
	"loopapalooza/internal/lang/ast"
)

func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := Compile("test", src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return m
}

// TestCompileAndAnalyzeSumLoop runs the full front-end + analysis pipeline on
// a canonical reduction loop and checks the loop classification end to end.
func TestCompileAndAnalyzeSumLoop(t *testing.T) {
	m := compile(t, `
const N = 32;
var tab [N]int;
func main() int {
	var s int = 0;
	for (var i int = 0; i < N; i = i + 1) {
		s = s + tab[i];
	}
	return s;
}`)
	info, err := analysis.AnalyzeModule(m)
	if err != nil {
		t.Fatalf("AnalyzeModule: %v", err)
	}
	if len(info.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(info.Loops))
	}
	lm := info.Loops[0]
	if len(lm.Computable) != 1 {
		t.Errorf("computable = %d, want 1 (i)", len(lm.Computable))
	}
	if len(lm.Reductions) != 1 {
		t.Errorf("reductions = %d, want 1 (s)", len(lm.Reductions))
	}
	if len(lm.NonComputable) != 0 {
		t.Errorf("non-computable = %d, want 0", len(lm.NonComputable))
	}
	if lm.HasCall {
		t.Error("loop should not contain calls")
	}
}

// TestCompilePointerChase: x = tab[x] must be a non-computable register LCD.
func TestCompilePointerChase(t *testing.T) {
	m := compile(t, `
const N = 64;
var next [N]int;
func main() int {
	var x int = 0;
	var i int;
	for (i = 0; i < 100; i = i + 1) {
		x = next[x];
	}
	return x;
}`)
	info, err := analysis.AnalyzeModule(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Loops) != 1 {
		t.Fatalf("loops = %d", len(info.Loops))
	}
	lm := info.Loops[0]
	if len(lm.NonComputable) != 1 {
		t.Errorf("non-computable = %d, want 1 (x)", len(lm.NonComputable))
	}
	if len(lm.Observed) != 1 || len(lm.ObservedLatch) != 1 {
		t.Errorf("observed = %d/%d, want 1/1", len(lm.Observed), len(lm.ObservedLatch))
	}
}

// TestCompileCallClassification: loops calling pure vs I/O functions.
func TestCompileCallClassification(t *testing.T) {
	m := compile(t, `
var acc int;
func square(x int) int { return x * x; }
func log_it(x int) { print_i64(x); }
func main() int {
	var i int;
	for (i = 0; i < 10; i = i + 1) {
		acc = acc + square(i);
	}
	for (i = 0; i < 10; i = i + 1) {
		log_it(i);
	}
	return acc;
}`)
	info, err := analysis.AnalyzeModule(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(info.Loops))
	}
	var pureLoop, ioLoop *analysis.LoopMeta
	for _, lm := range info.Loops {
		if lm.HasUnsafeOrIOCall {
			ioLoop = lm
		} else {
			pureLoop = lm
		}
	}
	if pureLoop == nil || ioLoop == nil {
		t.Fatal("expected one pure-call loop and one IO-call loop")
	}
	if !pureLoop.HasCall || pureLoop.HasNonPureCall {
		t.Error("square(i) loop should have only pure calls")
	}
	if !ioLoop.HasNonPureCall {
		t.Error("log_it loop should have non-pure calls")
	}
}

// TestCompileNestedLoops: matrix multiply produces a depth-3 nest with
// computable IVs everywhere.
func TestCompileNestedLoops(t *testing.T) {
	m := compile(t, `
const N = 8;
var a [64]float;
var b [64]float;
var c [64]float;
func main() int {
	var i int; var j int; var k int;
	for (i = 0; i < N; i = i + 1) {
		for (j = 0; j < N; j = j + 1) {
			var s float = 0.0;
			for (k = 0; k < N; k = k + 1) {
				s = s + a[i*N+k] * b[k*N+j];
			}
			c[i*N+j] = s;
		}
	}
	return 0;
}`)
	info, err := analysis.AnalyzeModule(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Loops) != 3 {
		t.Fatalf("loops = %d, want 3", len(info.Loops))
	}
	depths := map[int]int{}
	for _, lm := range info.Loops {
		depths[lm.Loop.Depth]++
		if len(lm.NonComputable) != 0 {
			t.Errorf("loop %s has %d non-computable LCDs, want 0", lm.ID(), len(lm.NonComputable))
		}
	}
	if depths[1] != 1 || depths[2] != 1 || depths[3] != 1 {
		t.Errorf("depths = %v, want one loop each at 1,2,3", depths)
	}
	// The innermost loop carries the s-reduction.
	found := false
	for _, lm := range info.Loops {
		if lm.Loop.Depth == 3 && len(lm.Reductions) == 1 {
			found = true
		}
	}
	if !found {
		t.Error("innermost loop should carry the float-add reduction")
	}
}

// TestCompileWhileWithBreakContinue exercises multi-latch canonicalization
// through the whole pipeline.
func TestCompileWhileWithBreakContinue(t *testing.T) {
	m := compile(t, `
func main() int {
	var i int = 0;
	var s int = 0;
	while (i < 100) {
		i = i + 1;
		if (i % 3 == 0) { continue; }
		if (i > 50) { break; }
		s = s + i;
	}
	return s;
}`)
	info, err := analysis.AnalyzeModule(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(info.Loops))
	}
	l := info.Loops[0].Loop
	if l.Latch == nil || l.Preheader == nil {
		t.Error("while loop not canonicalized")
	}
	if err := ir.Verify(m); err != nil {
		t.Fatalf("module invalid: %v", err)
	}
}

func TestCompileGlobalPointerVars(t *testing.T) {
	m := compile(t, `
var buf [16]int;
var cur *int;
func main() int {
	cur = buf;
	*cur = 5;
	cur = cur + 1;
	*cur = 7;
	return buf[0] + buf[1];
}`)
	if _, err := analysis.AnalyzeModule(m); err != nil {
		t.Fatal(err)
	}
}

func TestCompileRejectsBadPrograms(t *testing.T) {
	bad := []string{
		`func main() int { return x; }`,
		`func main() int { `,
		`func main() bool { return 1; }`,
	}
	for _, src := range bad {
		if _, err := Compile("bad", src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

// TestCompileICERecovery: a panic escaping a front-end stage becomes a
// *diag.ICE naming the stage — Compile never exits via panic.
func TestCompileICERecovery(t *testing.T) {
	orig := checkFn
	checkFn = func(f *ast.File) error { panic("injected sema bug") }
	defer func() { checkFn = orig }()

	src := "func main() int { return 0; }\n"
	m, err := Compile("ice.lpc", src)
	if m != nil || err == nil {
		t.Fatalf("Compile = %v, %v; want nil module and ICE", m, err)
	}
	var ice *diag.ICE
	if !errors.As(err, &ice) {
		t.Fatalf("error is %T, want *diag.ICE: %v", err, err)
	}
	if ice.Stage != "sema" {
		t.Errorf("Stage = %q, want sema", ice.Stage)
	}
	if ice.Source != src {
		t.Errorf("Source reproducer not captured")
	}
	if !strings.Contains(ice.Error(), "internal compiler error in sema: injected sema bug") {
		t.Errorf("Error() = %q", ice.Error())
	}
	if ice.Stack == "" {
		t.Error("no stack captured for triage")
	}
}

// TestCompileUserErrorsAreNotICE: ordinary front-end faults stay diag.List.
func TestCompileUserErrorsAreNotICE(t *testing.T) {
	_, err := Compile("bad.lpc", "func f() int { return q; }\n")
	if err == nil {
		t.Fatal("no error")
	}
	var ice *diag.ICE
	if errors.As(err, &ice) {
		t.Fatalf("user error reported as ICE: %v", err)
	}
	var l diag.List
	if !errors.As(err, &l) {
		t.Fatalf("error is %T, want diag.List", err)
	}
}
