// Package token defines the lexical tokens of LPC, the C-like benchmark
// language of the Loopapalooza reproduction, together with source positions.
package token

import "fmt"

// Kind identifies a lexical token class.
type Kind uint8

// Token kinds.
const (
	EOF Kind = iota
	ILLEGAL

	IDENT // main, x
	INT   // 123, 0x1f
	FLOAT // 1.5, 2e9

	// Operators and delimiters.
	ADD // +
	SUB // -
	MUL // *
	QUO // /
	REM // %

	AND // &
	OR  // |
	XOR // ^
	SHL // <<
	SHR // >>

	LAND // &&
	LOR  // ||
	NOT  // !

	EQL // ==
	NEQ // !=
	LSS // <
	LEQ // <=
	GTR // >
	GEQ // >=

	ASSIGN // =

	LPAREN // (
	RPAREN // )
	LBRACK // [
	RBRACK // ]
	LBRACE // {
	RBRACE // }

	COMMA // ,
	SEMI  // ;

	// Keywords.
	KwFunc
	KwVar
	KwConst
	KwIf
	KwElse
	KwWhile
	KwFor
	KwBreak
	KwContinue
	KwReturn
	KwInt
	KwFloat
	KwBool
	KwTrue
	KwFalse
)

var names = map[Kind]string{
	EOF: "EOF", ILLEGAL: "ILLEGAL", IDENT: "identifier", INT: "int literal",
	FLOAT: "float literal",
	ADD:   "+", SUB: "-", MUL: "*", QUO: "/", REM: "%",
	AND: "&", OR: "|", XOR: "^", SHL: "<<", SHR: ">>",
	LAND: "&&", LOR: "||", NOT: "!",
	EQL: "==", NEQ: "!=", LSS: "<", LEQ: "<=", GTR: ">", GEQ: ">=",
	ASSIGN: "=",
	LPAREN: "(", RPAREN: ")", LBRACK: "[", RBRACK: "]", LBRACE: "{", RBRACE: "}",
	COMMA: ",", SEMI: ";",
	KwFunc: "func", KwVar: "var", KwConst: "const", KwIf: "if", KwElse: "else",
	KwWhile: "while", KwFor: "for", KwBreak: "break", KwContinue: "continue",
	KwReturn: "return", KwInt: "int", KwFloat: "float", KwBool: "bool",
	KwTrue: "true", KwFalse: "false",
}

// String returns a human-readable spelling of the kind.
func (k Kind) String() string {
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Keywords maps keyword spellings to kinds.
var Keywords = map[string]Kind{
	"func": KwFunc, "var": KwVar, "const": KwConst, "if": KwIf,
	"else": KwElse, "while": KwWhile, "for": KwFor, "break": KwBreak,
	"continue": KwContinue, "return": KwReturn, "int": KwInt,
	"float": KwFloat, "bool": KwBool, "true": KwTrue, "false": KwFalse,
}

// Pos is a source position.
type Pos struct {
	// Line is 1-based.
	Line int
	// Col is 1-based, counted in bytes.
	Col int
}

// String renders "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	// Kind is the token class.
	Kind Kind
	// Lit is the literal text for IDENT/INT/FLOAT tokens.
	Lit string
	// Pos is the position of the token's first byte.
	Pos Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	if t.Lit != "" {
		return fmt.Sprintf("%s(%s)", t.Kind, t.Lit)
	}
	return t.Kind.String()
}
