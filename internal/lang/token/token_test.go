package token

import "testing"

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{
		EOF: "EOF", IDENT: "identifier", ADD: "+", SHR: ">>",
		LAND: "&&", NEQ: "!=", KwFunc: "func", KwFloat: "float",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestKeywordsTable(t *testing.T) {
	if Keywords["while"] != KwWhile || Keywords["true"] != KwTrue {
		t.Error("keyword table wrong")
	}
	if _, ok := Keywords["main"]; ok {
		t.Error("main should not be a keyword")
	}
}

func TestTokenAndPosStrings(t *testing.T) {
	tok := Token{Kind: IDENT, Lit: "x", Pos: Pos{Line: 3, Col: 7}}
	if tok.String() != "identifier(x)" {
		t.Errorf("token string = %q", tok.String())
	}
	if tok.Pos.String() != "3:7" {
		t.Errorf("pos string = %q", tok.Pos.String())
	}
	if (Token{Kind: SEMI}).String() != ";" {
		t.Error("literal-less token string wrong")
	}
}
