// Package lexer turns LPC source text into a token stream.
//
// The lexer never fails hard: every lexical fault (stray byte, string
// literal, unterminated comment, malformed number) produces a positioned
// diagnostic plus an ILLEGAL token, and scanning continues. At end of input
// Next returns EOF forever, so a parser can never hang on a bad input.
package lexer

import (
	"unicode/utf8"

	"loopapalooza/internal/diag"
	"loopapalooza/internal/lang/token"
)

// Lexer scans LPC source text.
type Lexer struct {
	src   string
	off   int
	line  int
	col   int
	diags diag.List
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns the lexical diagnostics encountered so far. The File
// field is left empty: the parser (which knows the unit name) stamps it.
func (l *Lexer) Errors() diag.List { return l.diags }

func (l *Lexer) errorf(pos token.Pos, format string, args ...any) {
	if len(l.diags) < diag.MaxDiagnostics {
		l.diags = append(l.diags, diag.New("", pos, format, args...))
	}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() token.Pos { return token.Pos{Line: l.line, Col: l.col} }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
func isLetter(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			pos := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(pos, "unterminated block comment")
			}
		default:
			return
		}
	}
}

// Next returns the next token. At end of input it returns EOF forever.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	pos := l.pos()
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: pos}
	}
	c := l.peek()
	switch {
	case isLetter(c):
		return l.ident(pos)
	case isDigit(c):
		return l.number(pos)
	}
	l.advance()
	two := func(next byte, yes, no token.Kind) token.Token {
		if l.peek() == next {
			l.advance()
			return token.Token{Kind: yes, Pos: pos}
		}
		return token.Token{Kind: no, Pos: pos}
	}
	switch c {
	case '+':
		return token.Token{Kind: token.ADD, Pos: pos}
	case '-':
		return token.Token{Kind: token.SUB, Pos: pos}
	case '*':
		return token.Token{Kind: token.MUL, Pos: pos}
	case '/':
		return token.Token{Kind: token.QUO, Pos: pos}
	case '%':
		return token.Token{Kind: token.REM, Pos: pos}
	case '^':
		return token.Token{Kind: token.XOR, Pos: pos}
	case '&':
		return two('&', token.LAND, token.AND)
	case '|':
		return two('|', token.LOR, token.OR)
	case '<':
		if l.peek() == '<' {
			l.advance()
			return token.Token{Kind: token.SHL, Pos: pos}
		}
		return two('=', token.LEQ, token.LSS)
	case '>':
		if l.peek() == '>' {
			l.advance()
			return token.Token{Kind: token.SHR, Pos: pos}
		}
		return two('=', token.GEQ, token.GTR)
	case '=':
		return two('=', token.EQL, token.ASSIGN)
	case '!':
		return two('=', token.NEQ, token.NOT)
	case '(':
		return token.Token{Kind: token.LPAREN, Pos: pos}
	case ')':
		return token.Token{Kind: token.RPAREN, Pos: pos}
	case '[':
		return token.Token{Kind: token.LBRACK, Pos: pos}
	case ']':
		return token.Token{Kind: token.RBRACK, Pos: pos}
	case '{':
		return token.Token{Kind: token.LBRACE, Pos: pos}
	case '}':
		return token.Token{Kind: token.RBRACE, Pos: pos}
	case ',':
		return token.Token{Kind: token.COMMA, Pos: pos}
	case ';':
		return token.Token{Kind: token.SEMI, Pos: pos}
	case '"', '\'':
		return l.quotedLit(pos, c)
	}
	if c >= utf8.RuneSelf {
		// Consume the whole rune so one stray multi-byte character
		// yields one diagnostic, not one per continuation byte.
		r, size := utf8.DecodeRuneInString(l.src[l.off-1:])
		for i := 1; i < size; i++ {
			l.advance()
		}
		l.errorf(pos, "unexpected character %q", r)
		return token.Token{Kind: token.ILLEGAL, Lit: string(r), Pos: pos}
	}
	l.errorf(pos, "unexpected character %q", c)
	return token.Token{Kind: token.ILLEGAL, Lit: string(c), Pos: pos}
}

// quotedLit scans a string or character literal (neither exists in LPC) so
// the whole literal becomes one positioned diagnostic and one ILLEGAL
// token instead of a cascade of stray-byte errors. The opening quote has
// already been consumed. A literal left open at a newline or at end of
// input reports "unterminated".
func (l *Lexer) quotedLit(pos token.Pos, quote byte) token.Token {
	start := l.off - 1
	kind := "string"
	if quote == '\'' {
		kind = "character"
	}
	for l.off < len(l.src) && l.peek() != '\n' {
		c := l.advance()
		if c == quote {
			l.errorf(pos, "%s literals are not supported in LPC", kind)
			return token.Token{Kind: token.ILLEGAL, Lit: l.src[start:l.off], Pos: pos}
		}
		if c == '\\' && l.off < len(l.src) && l.peek() != '\n' {
			l.advance() // an escaped quote does not close the literal
		}
	}
	l.errorf(pos, "unterminated %s literal", kind)
	return token.Token{Kind: token.ILLEGAL, Lit: l.src[start:l.off], Pos: pos}
}

func (l *Lexer) ident(pos token.Pos) token.Token {
	start := l.off
	for l.off < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
		l.advance()
	}
	lit := l.src[start:l.off]
	if kw, ok := token.Keywords[lit]; ok {
		return token.Token{Kind: kw, Lit: lit, Pos: pos}
	}
	return token.Token{Kind: token.IDENT, Lit: lit, Pos: pos}
}

func (l *Lexer) number(pos token.Pos) token.Token {
	start := l.off
	// Hex.
	if l.peek() == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
		l.advance()
		l.advance()
		n := 0
		for l.off < len(l.src) && isHexDigit(l.peek()) {
			l.advance()
			n++
		}
		if n == 0 {
			l.errorf(pos, "hex literal has no digits")
			return token.Token{Kind: token.ILLEGAL, Lit: l.src[start:l.off], Pos: pos}
		}
		return token.Token{Kind: token.INT, Lit: l.src[start:l.off], Pos: pos}
	}
	for l.off < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	isFloat := false
	if l.peek() == '.' && isDigit(l.peek2()) {
		isFloat = true
		l.advance()
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		saveOff, saveCol := l.off, l.col
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		if isDigit(l.peek()) {
			isFloat = true
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		} else {
			// Not an exponent after all (e.g. "1else"): rewind.
			l.off, l.col = saveOff, saveCol
		}
	}
	kind := token.INT
	if isFloat {
		kind = token.FLOAT
	}
	return token.Token{Kind: kind, Lit: l.src[start:l.off], Pos: pos}
}

// All scans the entire input, returning every token up to and including EOF.
func (l *Lexer) All() []token.Token {
	var out []token.Token
	for {
		t := l.Next()
		out = append(out, t)
		if t.Kind == token.EOF {
			return out
		}
	}
}
