// Package lexer turns LPC source text into a token stream.
package lexer

import (
	"fmt"

	"loopapalooza/internal/lang/token"
)

// Lexer scans LPC source text.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
	errs []error
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns the lexical errors encountered so far.
func (l *Lexer) Errors() []error { return l.errs }

func (l *Lexer) errorf(pos token.Pos, format string, args ...any) {
	l.errs = append(l.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() token.Pos { return token.Pos{Line: l.line, Col: l.col} }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
func isLetter(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			pos := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(pos, "unterminated block comment")
			}
		default:
			return
		}
	}
}

// Next returns the next token. At end of input it returns EOF forever.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	pos := l.pos()
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: pos}
	}
	c := l.peek()
	switch {
	case isLetter(c):
		return l.ident(pos)
	case isDigit(c):
		return l.number(pos)
	}
	l.advance()
	two := func(next byte, yes, no token.Kind) token.Token {
		if l.peek() == next {
			l.advance()
			return token.Token{Kind: yes, Pos: pos}
		}
		return token.Token{Kind: no, Pos: pos}
	}
	switch c {
	case '+':
		return token.Token{Kind: token.ADD, Pos: pos}
	case '-':
		return token.Token{Kind: token.SUB, Pos: pos}
	case '*':
		return token.Token{Kind: token.MUL, Pos: pos}
	case '/':
		return token.Token{Kind: token.QUO, Pos: pos}
	case '%':
		return token.Token{Kind: token.REM, Pos: pos}
	case '^':
		return token.Token{Kind: token.XOR, Pos: pos}
	case '&':
		return two('&', token.LAND, token.AND)
	case '|':
		return two('|', token.LOR, token.OR)
	case '<':
		if l.peek() == '<' {
			l.advance()
			return token.Token{Kind: token.SHL, Pos: pos}
		}
		return two('=', token.LEQ, token.LSS)
	case '>':
		if l.peek() == '>' {
			l.advance()
			return token.Token{Kind: token.SHR, Pos: pos}
		}
		return two('=', token.GEQ, token.GTR)
	case '=':
		return two('=', token.EQL, token.ASSIGN)
	case '!':
		return two('=', token.NEQ, token.NOT)
	case '(':
		return token.Token{Kind: token.LPAREN, Pos: pos}
	case ')':
		return token.Token{Kind: token.RPAREN, Pos: pos}
	case '[':
		return token.Token{Kind: token.LBRACK, Pos: pos}
	case ']':
		return token.Token{Kind: token.RBRACK, Pos: pos}
	case '{':
		return token.Token{Kind: token.LBRACE, Pos: pos}
	case '}':
		return token.Token{Kind: token.RBRACE, Pos: pos}
	case ',':
		return token.Token{Kind: token.COMMA, Pos: pos}
	case ';':
		return token.Token{Kind: token.SEMI, Pos: pos}
	}
	l.errorf(pos, "unexpected character %q", c)
	return token.Token{Kind: token.ILLEGAL, Lit: string(c), Pos: pos}
}

func (l *Lexer) ident(pos token.Pos) token.Token {
	start := l.off
	for l.off < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
		l.advance()
	}
	lit := l.src[start:l.off]
	if kw, ok := token.Keywords[lit]; ok {
		return token.Token{Kind: kw, Lit: lit, Pos: pos}
	}
	return token.Token{Kind: token.IDENT, Lit: lit, Pos: pos}
}

func (l *Lexer) number(pos token.Pos) token.Token {
	start := l.off
	// Hex.
	if l.peek() == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
		l.advance()
		l.advance()
		for l.off < len(l.src) && isHexDigit(l.peek()) {
			l.advance()
		}
		return token.Token{Kind: token.INT, Lit: l.src[start:l.off], Pos: pos}
	}
	for l.off < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	isFloat := false
	if l.peek() == '.' && isDigit(l.peek2()) {
		isFloat = true
		l.advance()
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		saveOff, saveCol := l.off, l.col
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		if isDigit(l.peek()) {
			isFloat = true
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		} else {
			// Not an exponent after all (e.g. "1else"): rewind.
			l.off, l.col = saveOff, saveCol
		}
	}
	kind := token.INT
	if isFloat {
		kind = token.FLOAT
	}
	return token.Token{Kind: kind, Lit: l.src[start:l.off], Pos: pos}
}

// All scans the entire input, returning every token up to and including EOF.
func (l *Lexer) All() []token.Token {
	var out []token.Token
	for {
		t := l.Next()
		out = append(out, t)
		if t.Kind == token.EOF {
			return out
		}
	}
}
