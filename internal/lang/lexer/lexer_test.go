package lexer

import (
	"strings"
	"testing"

	"loopapalooza/internal/lang/token"
)

func kinds(src string) []token.Kind {
	l := New(src)
	var out []token.Kind
	for _, t := range l.All() {
		out = append(out, t.Kind)
	}
	return out
}

func TestOperators(t *testing.T) {
	got := kinds("+ - * / % & | ^ << >> && || ! == != < <= > >= = ( ) [ ] { } , ;")
	want := []token.Kind{
		token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.AND, token.OR, token.XOR, token.SHL, token.SHR,
		token.LAND, token.LOR, token.NOT,
		token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
		token.ASSIGN,
		token.LPAREN, token.RPAREN, token.LBRACK, token.RBRACK,
		token.LBRACE, token.RBRACE, token.COMMA, token.SEMI, token.EOF,
	}
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestKeywordsAndIdents(t *testing.T) {
	l := New("func main xy_1 while true")
	toks := l.All()
	if toks[0].Kind != token.KwFunc {
		t.Errorf("func -> %s", toks[0])
	}
	if toks[1].Kind != token.IDENT || toks[1].Lit != "main" {
		t.Errorf("main -> %s", toks[1])
	}
	if toks[2].Kind != token.IDENT || toks[2].Lit != "xy_1" {
		t.Errorf("xy_1 -> %s", toks[2])
	}
	if toks[3].Kind != token.KwWhile || toks[4].Kind != token.KwTrue {
		t.Errorf("keywords wrong: %v", toks)
	}
}

func TestNumbers(t *testing.T) {
	l := New("0 42 0x1F 3.25 1e9 2.5e-3 7e")
	toks := l.All()
	wantKind := []token.Kind{token.INT, token.INT, token.INT, token.FLOAT, token.FLOAT, token.FLOAT, token.INT}
	wantLit := []string{"0", "42", "0x1F", "3.25", "1e9", "2.5e-3", "7"}
	for i := range wantKind {
		if toks[i].Kind != wantKind[i] || toks[i].Lit != wantLit[i] {
			t.Errorf("token %d = %s, want %s(%s)", i, toks[i], wantKind[i], wantLit[i])
		}
	}
	// "7e" should leave "e" as an identifier.
	if toks[7].Kind != token.IDENT || toks[7].Lit != "e" {
		t.Errorf("trailing token = %s, want IDENT(e)", toks[7])
	}
}

func TestComments(t *testing.T) {
	l := New("a // line comment\nb /* block\ncomment */ c")
	toks := l.All()
	if len(toks) != 4 { // a b c EOF
		t.Fatalf("tokens = %v", toks)
	}
	if toks[2].Lit != "c" || toks[2].Pos.Line != 3 {
		t.Errorf("c at %v", toks[2].Pos)
	}
}

func TestUnterminatedComment(t *testing.T) {
	l := New("a /* never closed")
	l.All()
	if len(l.Errors()) == 0 {
		t.Error("expected unterminated-comment error")
	}
}

func TestPositions(t *testing.T) {
	l := New("ab\n  cd")
	toks := l.All()
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("ab at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("cd at %v", toks[1].Pos)
	}
}

func TestIllegalChar(t *testing.T) {
	l := New("a $ b")
	toks := l.All()
	found := false
	for _, tk := range toks {
		if tk.Kind == token.ILLEGAL {
			found = true
		}
	}
	if !found || len(l.Errors()) == 0 {
		t.Error("expected ILLEGAL token and error for $")
	}
}

// TestEOFEdgeCases scans inputs that end mid-construct. Every case must
// terminate (All() returns), produce the expected positioned diagnostic,
// and never fabricate a bogus non-ILLEGAL token for the broken construct.
func TestEOFEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		wantMsg string // substring of the first diagnostic ("" = no error)
		wantPos string // "line:col" of the first diagnostic
	}{
		{"unterminated block comment", "a /* never closed", "unterminated block comment", "1:3"},
		{"block comment ends at star", "/* closed almost *", "unterminated block comment", "1:1"},
		{"unterminated string", `x = "abc`, "unterminated string literal", "1:5"},
		{"string closed by newline", "\"abc\ndef", "unterminated string literal", "1:1"},
		{"closed string still rejected", `"abc"`, "string literals are not supported", "1:1"},
		{"escaped quote then EOF", `"ab\"`, "unterminated string literal", "1:1"},
		{"unterminated char", "'a", "unterminated character literal", "1:1"},
		{"closed char rejected", "'a'", "character literals are not supported", "1:1"},
		{"hex prefix only", "0x", "hex literal has no digits", "1:1"},
		{"hex prefix then op", "0x+1", "hex literal has no digits", "1:1"},
		{"stray byte at EOF", "a@", `unexpected character '@'`, "1:2"},
		{"stray utf8 rune", "π", "unexpected character 'π'", "1:1"},
		{"nul byte", "a\x00b", `unexpected character '\x00'`, "1:2"},
		{"line comment at EOF", "a // trailing", "", ""},
		{"lone slash at EOF", "a /", "", ""},
		{"exponent rewind at EOF", "7e", "", ""},
		{"dot without digits", "1.", "", ""}, // "1" INT, then "." is a stray byte
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := New(tc.src)
			toks := l.All() // must terminate
			if toks[len(toks)-1].Kind != token.EOF {
				t.Fatal("All() did not end with EOF")
			}
			errs := l.Errors()
			if tc.wantMsg == "" {
				if tc.name == "dot without digits" {
					return // "." is a stray byte; only termination matters here
				}
				if len(errs) != 0 {
					t.Fatalf("unexpected diagnostics: %v", errs)
				}
				return
			}
			if len(errs) == 0 {
				t.Fatalf("no diagnostic, want %q", tc.wantMsg)
			}
			if got := errs[0].Msg; !strings.Contains(got, tc.wantMsg) {
				t.Errorf("diagnostic = %q, want substring %q", got, tc.wantMsg)
			}
			if got := errs[0].Pos.String(); got != tc.wantPos {
				t.Errorf("position = %s, want %s", got, tc.wantPos)
			}
		})
	}
}

// TestEOFForever: after end of input, Next keeps returning EOF (a parser
// that over-reads can never hang or read garbage).
func TestEOFForever(t *testing.T) {
	l := New("x")
	l.Next()
	for i := 0; i < 10; i++ {
		if tk := l.Next(); tk.Kind != token.EOF {
			t.Fatalf("Next() after EOF = %s", tk)
		}
	}
}

// TestErrorCap: a pathological input stops collecting diagnostics at the
// cap instead of building an unbounded error list.
func TestErrorCap(t *testing.T) {
	src := ""
	for i := 0; i < 1000; i++ {
		src += "$ "
	}
	l := New(src)
	l.All()
	if n := len(l.Errors()); n > 64 {
		t.Errorf("diagnostics = %d, want capped", n)
	}
}

