package lexer

import (
	"testing"

	"loopapalooza/internal/lang/token"
)

func kinds(src string) []token.Kind {
	l := New(src)
	var out []token.Kind
	for _, t := range l.All() {
		out = append(out, t.Kind)
	}
	return out
}

func TestOperators(t *testing.T) {
	got := kinds("+ - * / % & | ^ << >> && || ! == != < <= > >= = ( ) [ ] { } , ;")
	want := []token.Kind{
		token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.AND, token.OR, token.XOR, token.SHL, token.SHR,
		token.LAND, token.LOR, token.NOT,
		token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
		token.ASSIGN,
		token.LPAREN, token.RPAREN, token.LBRACK, token.RBRACK,
		token.LBRACE, token.RBRACE, token.COMMA, token.SEMI, token.EOF,
	}
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestKeywordsAndIdents(t *testing.T) {
	l := New("func main xy_1 while true")
	toks := l.All()
	if toks[0].Kind != token.KwFunc {
		t.Errorf("func -> %s", toks[0])
	}
	if toks[1].Kind != token.IDENT || toks[1].Lit != "main" {
		t.Errorf("main -> %s", toks[1])
	}
	if toks[2].Kind != token.IDENT || toks[2].Lit != "xy_1" {
		t.Errorf("xy_1 -> %s", toks[2])
	}
	if toks[3].Kind != token.KwWhile || toks[4].Kind != token.KwTrue {
		t.Errorf("keywords wrong: %v", toks)
	}
}

func TestNumbers(t *testing.T) {
	l := New("0 42 0x1F 3.25 1e9 2.5e-3 7e")
	toks := l.All()
	wantKind := []token.Kind{token.INT, token.INT, token.INT, token.FLOAT, token.FLOAT, token.FLOAT, token.INT}
	wantLit := []string{"0", "42", "0x1F", "3.25", "1e9", "2.5e-3", "7"}
	for i := range wantKind {
		if toks[i].Kind != wantKind[i] || toks[i].Lit != wantLit[i] {
			t.Errorf("token %d = %s, want %s(%s)", i, toks[i], wantKind[i], wantLit[i])
		}
	}
	// "7e" should leave "e" as an identifier.
	if toks[7].Kind != token.IDENT || toks[7].Lit != "e" {
		t.Errorf("trailing token = %s, want IDENT(e)", toks[7])
	}
}

func TestComments(t *testing.T) {
	l := New("a // line comment\nb /* block\ncomment */ c")
	toks := l.All()
	if len(toks) != 4 { // a b c EOF
		t.Fatalf("tokens = %v", toks)
	}
	if toks[2].Lit != "c" || toks[2].Pos.Line != 3 {
		t.Errorf("c at %v", toks[2].Pos)
	}
}

func TestUnterminatedComment(t *testing.T) {
	l := New("a /* never closed")
	l.All()
	if len(l.Errors()) == 0 {
		t.Error("expected unterminated-comment error")
	}
}

func TestPositions(t *testing.T) {
	l := New("ab\n  cd")
	toks := l.All()
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("ab at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("cd at %v", toks[1].Pos)
	}
}

func TestIllegalChar(t *testing.T) {
	l := New("a $ b")
	toks := l.All()
	found := false
	for _, tk := range toks {
		if tk.Kind == token.ILLEGAL {
			found = true
		}
	}
	if !found || len(l.Errors()) == 0 {
		t.Error("expected ILLEGAL token and error for $")
	}
}
