// Package lang is the front-end façade: it compiles LPC source text to IR by
// chaining the lexer, parser, type checker, and code generator.
//
// LPC ("Loopapalooza C") is the small C-like language used to express the
// benchmark programs of this reproduction. It has 64-bit ints and floats,
// bools, one-level pointers, fixed-size arrays, functions, and the usual
// structured control flow. See the package documentation of
// internal/lang/parser for the grammar.
//
// Compile never panics: a panic escaping any front-end stage is converted
// into a *diag.ICE carrying the stage name, the offending source, and the
// captured stack, so tools built on this package can always render a
// diagnostic instead of crashing.
package lang

import (
	"loopapalooza/internal/diag"
	"loopapalooza/internal/ir"
	"loopapalooza/internal/lang/codegen"
	"loopapalooza/internal/lang/parser"
	"loopapalooza/internal/lang/sema"
)

// checkFn is the type-checking stage; a variable so tests can inject a
// panicking stage and exercise the ICE recovery path.
var checkFn = sema.Check

// Compile parses, checks, and lowers one LPC compilation unit. The returned
// module verifies but has not been canonicalized; run
// analysis.AnalyzeModule on it before interpretation.
//
// User-level faults come back as diag.List (positioned, multi-error);
// compiler bugs — a panic in any stage, or codegen emitting IR that fails
// verification — come back as *diag.ICE. Compile never exits via panic.
func Compile(name, src string) (mod *ir.Module, err error) {
	stage := "lexer/parser"
	defer func() {
		if r := recover(); r != nil {
			mod, err = nil, diag.NewICE(name, stage, src, r)
		}
	}()

	file, perr := parser.Parse(name, src)
	if perr != nil {
		return nil, perr
	}

	stage = "sema"
	if serr := checkFn(file); serr != nil {
		return nil, serr
	}

	stage = "codegen"
	mod, gerr := codegen.Generate(file)
	if gerr != nil {
		// Generate only fails when the emitted module does not verify.
		// Sema already accepted the program, so this is a compiler bug,
		// not a user error: report it as an ICE with a reproducer.
		return nil, diag.NewICE(name, "codegen", src, gerr)
	}
	return mod, nil
}
