// Package lang is the front-end façade: it compiles LPC source text to IR by
// chaining the lexer, parser, type checker, and code generator.
//
// LPC ("Loopapalooza C") is the small C-like language used to express the
// benchmark programs of this reproduction. It has 64-bit ints and floats,
// bools, one-level pointers, fixed-size arrays, functions, and the usual
// structured control flow. See the package documentation of
// internal/lang/parser for the grammar.
package lang

import (
	"loopapalooza/internal/ir"
	"loopapalooza/internal/lang/codegen"
	"loopapalooza/internal/lang/parser"
	"loopapalooza/internal/lang/sema"
)

// Compile parses, checks, and lowers one LPC compilation unit. The returned
// module verifies but has not been canonicalized; run
// analysis.AnalyzeModule on it before interpretation.
func Compile(name, src string) (*ir.Module, error) {
	file, err := parser.Parse(name, src)
	if err != nil {
		return nil, err
	}
	if err := sema.Check(file); err != nil {
		return nil, err
	}
	return codegen.Generate(file)
}
