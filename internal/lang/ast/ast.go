// Package ast defines the abstract syntax tree of LPC and its source-level
// type system.
package ast

import (
	"fmt"

	"loopapalooza/internal/lang/token"
)

// TypeKind enumerates the source-level type constructors.
type TypeKind uint8

// Source type kinds.
const (
	TInt TypeKind = iota
	TFloat
	TBool
	TPtr   // *T where T is int or float
	TArray // [N]T where T is int or float
	TVoid
)

// Type is an LPC type. Types are compared with Equal.
type Type struct {
	Kind TypeKind
	// Elem is the element kind for TPtr and TArray (TInt or TFloat).
	Elem TypeKind
	// Len is the length of a TArray.
	Len int64
}

// Predefined types.
var (
	IntType   = Type{Kind: TInt}
	FloatType = Type{Kind: TFloat}
	BoolType  = Type{Kind: TBool}
	VoidType  = Type{Kind: TVoid}
)

// PtrType returns *elem.
func PtrType(elem TypeKind) Type { return Type{Kind: TPtr, Elem: elem} }

// ArrayType returns [n]elem.
func ArrayType(n int64, elem TypeKind) Type { return Type{Kind: TArray, Elem: elem, Len: n} }

// Equal reports type identity.
func (t Type) Equal(o Type) bool { return t == o }

// IsNumeric reports int or float.
func (t Type) IsNumeric() bool { return t.Kind == TInt || t.Kind == TFloat }

// String spells the type in source syntax.
func (t Type) String() string {
	switch t.Kind {
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TBool:
		return "bool"
	case TVoid:
		return "void"
	case TPtr:
		return "*" + Type{Kind: t.Elem}.String()
	case TArray:
		return fmt.Sprintf("[%d]%s", t.Len, Type{Kind: t.Elem})
	}
	return "badtype"
}

// Node is any AST node.
type Node interface {
	// Pos returns the node's source position.
	Pos() token.Pos
}

// ---- Expressions ----

// Expr is an expression node. The checker fills in Type() via SetType.
type Expr interface {
	Node
	// Type returns the checked type (valid after sema).
	Type() Type
	// SetType records the checked type.
	SetType(Type)
}

// exprBase carries position and checked type.
type exprBase struct {
	P  token.Pos
	Ty Type
}

func (e *exprBase) Pos() token.Pos { return e.P }
func (e *exprBase) Type() Type     { return e.Ty }
func (e *exprBase) SetType(t Type) { e.Ty = t }

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	Value int64
}

// FloatLit is a float literal.
type FloatLit struct {
	exprBase
	Value float64
}

// BoolLit is true/false.
type BoolLit struct {
	exprBase
	Value bool
}

// Ident is a name use. Sema resolves it to a declaration.
type Ident struct {
	exprBase
	Name string
	// Decl is filled by sema: *VarDecl, *ConstDecl, or *ParamDecl.
	Decl any
}

// Unary is -x, !x, *p (deref), &lv (address-of).
type Unary struct {
	exprBase
	Op token.Kind // SUB, NOT, MUL (deref), AND (address-of)
	X  Expr
}

// Binary is a binary operation, including comparisons and && / ||.
type Binary struct {
	exprBase
	Op   token.Kind
	L, R Expr
}

// Index is a[i] where a is an array variable or a pointer.
type Index struct {
	exprBase
	X   Expr
	Idx Expr
}

// Call is f(args) — a user function, a builtin, or the conversions
// int(x) / float(x).
type Call struct {
	exprBase
	Name string
	Args []Expr
	// Builtin is set by sema when the callee is a runtime builtin.
	Builtin bool
	// Conv is set by sema for int()/float() conversions.
	Conv bool
	// FuncDecl is the resolved user function, when not builtin/conv.
	FuncDecl *FuncDecl
}

// ---- Statements ----

// Stmt is a statement node.
type Stmt interface{ Node }

// VarDecl declares a local or global variable. It doubles as the
// declaration object referenced by Ident.Decl.
type VarDecl struct {
	P      token.Pos
	Name   string
	DeclTy Type
	// Init is the optional initializer (scalars only).
	Init Expr
	// Global marks module-level variables.
	Global bool
}

// Pos implements Node.
func (d *VarDecl) Pos() token.Pos { return d.P }

// ConstDecl declares a compile-time integer constant.
type ConstDecl struct {
	P     token.Pos
	Name  string
	Value int64
}

// Pos implements Node.
func (d *ConstDecl) Pos() token.Pos { return d.P }

// ParamDecl declares a function parameter.
type ParamDecl struct {
	P      token.Pos
	Name   string
	DeclTy Type
}

// Pos implements Node.
func (d *ParamDecl) Pos() token.Pos { return d.P }

// Assign is lv = rhs.
type Assign struct {
	P   token.Pos
	LHS Expr // Ident, Index, or Unary deref
	RHS Expr
}

// Pos implements Node.
func (s *Assign) Pos() token.Pos { return s.P }

// ExprStmt evaluates an expression for its effects (calls).
type ExprStmt struct {
	P token.Pos
	X Expr
}

// Pos implements Node.
func (s *ExprStmt) Pos() token.Pos { return s.P }

// Block is { stmts }.
type Block struct {
	P     token.Pos
	Stmts []Stmt
}

// Pos implements Node.
func (s *Block) Pos() token.Pos { return s.P }

// If is if (cond) then [else els].
type If struct {
	P    token.Pos
	Cond Expr
	Then *Block
	Else Stmt // *Block, *If, or nil
}

// Pos implements Node.
func (s *If) Pos() token.Pos { return s.P }

// While is while (cond) body.
type While struct {
	P    token.Pos
	Cond Expr
	Body *Block
}

// Pos implements Node.
func (s *While) Pos() token.Pos { return s.P }

// For is for (init; cond; post) body. Init/Post may be nil; Cond may be nil
// (infinite loop).
type For struct {
	P    token.Pos
	Init Stmt // *Assign, *VarDecl, *ExprStmt, or nil
	Cond Expr
	Post Stmt
	Body *Block
}

// Pos implements Node.
func (s *For) Pos() token.Pos { return s.P }

// Break exits the innermost loop.
type Break struct{ P token.Pos }

// Pos implements Node.
func (s *Break) Pos() token.Pos { return s.P }

// Continue jumps to the innermost loop's next iteration.
type Continue struct{ P token.Pos }

// Pos implements Node.
func (s *Continue) Pos() token.Pos { return s.P }

// Return is return [expr].
type Return struct {
	P token.Pos
	X Expr // nil for void
}

// Pos implements Node.
func (s *Return) Pos() token.Pos { return s.P }

// ---- Declarations ----

// FuncDecl is a function definition.
type FuncDecl struct {
	P      token.Pos
	Name   string
	Params []*ParamDecl
	Ret    Type
	Body   *Block
}

// Pos implements Node.
func (d *FuncDecl) Pos() token.Pos { return d.P }

// File is one parsed compilation unit.
type File struct {
	// Name identifies the unit (benchmark name or path).
	Name string
	// Consts are module-level constants.
	Consts []*ConstDecl
	// Globals are module-level variables.
	Globals []*VarDecl
	// Funcs are the function definitions.
	Funcs []*FuncDecl
}
