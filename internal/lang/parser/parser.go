// Package parser builds LPC syntax trees from source text.
//
// The grammar is C-flavoured with Go operator precedence:
//
//	1 (loosest): ||
//	2:           &&
//	3:           == != < <= > >=
//	4:           + - | ^
//	5 (tightest):* / % << >> &
//
// Unary operators: - ! * (deref) & (address-of).
//
// The parser collects every syntax error it can attribute independently:
// a fault inside a statement resynchronizes to the next statement boundary
// (the following ';' or the enclosing '}'), and a fault inside a
// declaration resynchronizes to the next top-level 'func', 'var', or
// 'const', so one bad statement no longer hides the rest of the file.
// Parse returns a diag.List of positioned diagnostics in source order.
package parser

import (
	"strconv"

	"loopapalooza/internal/diag"
	"loopapalooza/internal/lang/ast"
	"loopapalooza/internal/lang/lexer"
	"loopapalooza/internal/lang/token"
)

// maxNestingDepth bounds expression and statement nesting so adversarial
// inputs (e.g. one megabyte of '(') cannot overflow the host stack through
// the recursive-descent parser, the checker, or codegen.
const maxNestingDepth = 200

// Parse parses one LPC compilation unit named name. On failure it returns
// a diag.List with every independently attributable error, sorted by
// position; the partial syntax tree is discarded.
func Parse(name, src string) (f *ast.File, err error) {
	p := &parser{lex: lexer.New(src), name: name, consts: map[string]int64{}}
	p.next()
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(bailout); !ok {
					panic(r)
				}
				// Too many errors: the file-level loop stopped early.
			}
		}()
		f = p.parseFile(name)
	}()
	for _, d := range p.lex.Errors() {
		d.File = name
		p.diags = append(p.diags, d)
	}
	if err := p.diags.Truncate(name).Err(); err != nil {
		return nil, err
	}
	return f, nil
}

// bailout unwinds the parser to the nearest recovery point (statement,
// declaration, or — when the error budget is exhausted — Parse itself).
type bailout struct{}

type parser struct {
	lex    *lexer.Lexer
	name   string
	tok    token.Token
	nread  int // tokens consumed; used to guarantee resync progress
	consts map[string]int64 // module-level integer constants
	diags  diag.List
	depth  int // combined statement/expression nesting depth
}

func (p *parser) next() {
	p.nread++
	for {
		p.tok = p.lex.Next()
		// Skip ILLEGAL tokens: the lexer already diagnosed them, and
		// letting them reach the grammar would only cascade
		// "expected X, found ILLEGAL" noise.
		if p.tok.Kind != token.ILLEGAL {
			return
		}
	}
}

// errorf records a positioned diagnostic and unwinds to the nearest
// recovery point.
func (p *parser) errorf(pos token.Pos, format string, args ...any) {
	if len(p.diags) < diag.MaxDiagnostics {
		p.diags = append(p.diags, diag.New(p.name, pos, format, args...))
	}
	panic(bailout{})
}

// enter guards recursion depth; the returned func must be deferred.
func (p *parser) enter() func() {
	p.depth++
	if p.depth > maxNestingDepth {
		p.errorf(p.tok.Pos, "program nesting too deep (more than %d levels)", maxNestingDepth)
	}
	return func() { p.depth-- }
}

func (p *parser) expect(k token.Kind) token.Token {
	if p.tok.Kind != k {
		p.errorf(p.tok.Pos, "expected %s, found %s", k, p.tok)
	}
	t := p.tok
	p.next()
	return t
}

func (p *parser) accept(k token.Kind) bool {
	if p.tok.Kind == k {
		p.next()
		return true
	}
	return false
}

// atEOF reports whether the parser ran off the end of the input. The error
// budget doubles as a hard stop: once exhausted, recovery points must not
// keep parsing.
func (p *parser) exhausted() bool {
	return p.tok.Kind == token.EOF || len(p.diags) >= diag.MaxDiagnostics
}

// syncTopLevel skips tokens until the start of a plausible next top-level
// declaration ('func', 'var', 'const') or end of input. It always consumes
// at least one token when not at EOF, so file-level recovery cannot loop.
func (p *parser) syncTopLevel(nreadAtError int) {
	for {
		switch p.tok.Kind {
		case token.EOF:
			return
		case token.KwFunc, token.KwVar, token.KwConst:
			if p.nread > nreadAtError {
				return
			}
		}
		p.next()
	}
}

// syncStmt skips to the next statement boundary: past the next ';', or to
// (not past) the enclosing '}' / a token that can start a statement. It
// always makes progress relative to nreadAtError.
func (p *parser) syncStmt(nreadAtError int) {
	for {
		switch p.tok.Kind {
		case token.EOF, token.RBRACE:
			return
		case token.SEMI:
			p.next()
			return
		case token.KwIf, token.KwWhile, token.KwFor, token.KwReturn,
			token.KwBreak, token.KwContinue, token.KwVar, token.LBRACE:
			if p.nread > nreadAtError {
				return
			}
		}
		p.next()
	}
}

func (p *parser) parseFile(name string) *ast.File {
	f := &ast.File{Name: name}
	for !p.exhausted() {
		mark := p.nread
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(bailout); !ok {
						panic(r)
					}
					p.syncTopLevel(mark)
				}
			}()
			switch p.tok.Kind {
			case token.KwConst:
				f.Consts = append(f.Consts, p.parseConstDecl())
			case token.KwVar:
				d := p.parseVarDecl()
				d.Global = true
				f.Globals = append(f.Globals, d)
			case token.KwFunc:
				f.Funcs = append(f.Funcs, p.parseFuncDecl())
			default:
				p.errorf(p.tok.Pos, "expected declaration, found %s", p.tok)
			}
		}()
	}
	return f
}

// parseConstDecl parses: const NAME = const-expr ;
func (p *parser) parseConstDecl() *ast.ConstDecl {
	pos := p.tok.Pos
	p.expect(token.KwConst)
	name := p.expect(token.IDENT).Lit
	p.expect(token.ASSIGN)
	v := p.constExpr()
	p.expect(token.SEMI)
	if _, dup := p.consts[name]; dup {
		p.errorf(pos, "constant %s redeclared", name)
	}
	p.consts[name] = v
	return &ast.ConstDecl{P: pos, Name: name, Value: v}
}

// constExpr parses and folds an integer constant expression.
func (p *parser) constExpr() int64 {
	e := p.parseExpr()
	v, ok := p.evalConst(e)
	if !ok {
		p.errorf(e.Pos(), "expression is not an integer constant")
	}
	return v
}

func (p *parser) evalConst(e ast.Expr) (int64, bool) {
	switch x := e.(type) {
	case *ast.IntLit:
		return x.Value, true
	case *ast.Ident:
		v, ok := p.consts[x.Name]
		return v, ok
	case *ast.Unary:
		v, ok := p.evalConst(x.X)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case token.SUB:
			return -v, true
		}
		return 0, false
	case *ast.Binary:
		l, ok1 := p.evalConst(x.L)
		r, ok2 := p.evalConst(x.R)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch x.Op {
		case token.ADD:
			return l + r, true
		case token.SUB:
			return l - r, true
		case token.MUL:
			return l * r, true
		case token.QUO:
			if r == 0 {
				return 0, false
			}
			return l / r, true
		case token.REM:
			if r == 0 {
				return 0, false
			}
			return l % r, true
		case token.SHL:
			return l << uint(r&63), true
		case token.SHR:
			return l >> uint(r&63), true
		case token.AND:
			return l & r, true
		case token.OR:
			return l | r, true
		case token.XOR:
			return l ^ r, true
		}
	}
	return 0, false
}

// parseVarDecl parses: var NAME type ( = expr )? ;
func (p *parser) parseVarDecl() *ast.VarDecl {
	pos := p.tok.Pos
	p.expect(token.KwVar)
	name := p.expect(token.IDENT).Lit
	ty := p.parseType()
	d := &ast.VarDecl{P: pos, Name: name, DeclTy: ty}
	if p.accept(token.ASSIGN) {
		d.Init = p.parseExpr()
	}
	p.expect(token.SEMI)
	return d
}

// maxArrayLen bounds declared array lengths: a single declaration may not
// outsize the interpreter's whole default heap, so pathological sources
// fail with a positioned diagnostic instead of an allocation blow-up.
const maxArrayLen = 1 << 26

func (p *parser) parseType() ast.Type {
	switch p.tok.Kind {
	case token.KwInt:
		p.next()
		return ast.IntType
	case token.KwFloat:
		p.next()
		return ast.FloatType
	case token.KwBool:
		p.next()
		return ast.BoolType
	case token.MUL:
		p.next()
		elem := p.parseElemKind()
		return ast.PtrType(elem)
	case token.LBRACK:
		pos := p.tok.Pos
		p.next()
		n := p.constExpr()
		p.expect(token.RBRACK)
		elem := p.parseElemKind()
		if n <= 0 {
			p.errorf(pos, "array length must be positive, got %d", n)
		}
		if n > maxArrayLen {
			p.errorf(pos, "array length %d exceeds the maximum %d", n, int64(maxArrayLen))
		}
		return ast.ArrayType(n, elem)
	}
	p.errorf(p.tok.Pos, "expected type, found %s", p.tok)
	return ast.VoidType
}

func (p *parser) parseElemKind() ast.TypeKind {
	switch p.tok.Kind {
	case token.KwInt:
		p.next()
		return ast.TInt
	case token.KwFloat:
		p.next()
		return ast.TFloat
	}
	p.errorf(p.tok.Pos, "pointer/array element must be int or float, found %s", p.tok)
	return ast.TInt
}

func (p *parser) parseFuncDecl() *ast.FuncDecl {
	pos := p.tok.Pos
	p.expect(token.KwFunc)
	name := p.expect(token.IDENT).Lit
	p.expect(token.LPAREN)
	var params []*ast.ParamDecl
	for p.tok.Kind != token.RPAREN {
		if p.tok.Kind == token.EOF {
			p.errorf(p.tok.Pos, "unexpected end of input in parameter list of %s", name)
		}
		if len(params) > 0 {
			p.expect(token.COMMA)
		}
		ppos := p.tok.Pos
		pname := p.expect(token.IDENT).Lit
		pty := p.parseType()
		if pty.Kind == ast.TArray {
			p.errorf(ppos, "array parameters are not supported; pass a pointer")
		}
		params = append(params, &ast.ParamDecl{P: ppos, Name: pname, DeclTy: pty})
	}
	p.expect(token.RPAREN)
	ret := ast.VoidType
	if p.tok.Kind != token.LBRACE {
		ret = p.parseType()
		if ret.Kind == ast.TArray {
			p.errorf(pos, "functions cannot return arrays")
		}
	}
	body := p.parseBlock()
	return &ast.FuncDecl{P: pos, Name: name, Params: params, Ret: ret, Body: body}
}

func (p *parser) parseBlock() *ast.Block {
	defer p.enter()()
	pos := p.expect(token.LBRACE).Pos
	b := &ast.Block{P: pos}
	for p.tok.Kind != token.RBRACE {
		if p.exhausted() {
			p.errorf(p.tok.Pos, "unexpected end of input: missing }")
		}
		mark := p.nread
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(bailout); !ok {
						panic(r)
					}
					p.syncStmt(mark)
				}
			}()
			b.Stmts = append(b.Stmts, p.parseStmt())
		}()
	}
	p.expect(token.RBRACE)
	return b
}

func (p *parser) parseStmt() ast.Stmt {
	defer p.enter()()
	switch p.tok.Kind {
	case token.KwVar:
		return p.parseVarDecl()
	case token.KwIf:
		return p.parseIf()
	case token.KwWhile:
		pos := p.tok.Pos
		p.next()
		p.expect(token.LPAREN)
		cond := p.parseExpr()
		p.expect(token.RPAREN)
		body := p.parseBlock()
		return &ast.While{P: pos, Cond: cond, Body: body}
	case token.KwFor:
		return p.parseFor()
	case token.KwBreak:
		pos := p.tok.Pos
		p.next()
		p.expect(token.SEMI)
		return &ast.Break{P: pos}
	case token.KwContinue:
		pos := p.tok.Pos
		p.next()
		p.expect(token.SEMI)
		return &ast.Continue{P: pos}
	case token.KwReturn:
		pos := p.tok.Pos
		p.next()
		var x ast.Expr
		if p.tok.Kind != token.SEMI {
			x = p.parseExpr()
		}
		p.expect(token.SEMI)
		return &ast.Return{P: pos, X: x}
	case token.LBRACE:
		return p.parseBlock()
	default:
		s := p.parseSimpleStmt()
		p.expect(token.SEMI)
		return s
	}
}

func (p *parser) parseIf() ast.Stmt {
	pos := p.tok.Pos
	p.expect(token.KwIf)
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	then := p.parseBlock()
	var els ast.Stmt
	if p.accept(token.KwElse) {
		if p.tok.Kind == token.KwIf {
			els = p.parseIf()
		} else {
			els = p.parseBlock()
		}
	}
	return &ast.If{P: pos, Cond: cond, Then: then, Else: els}
}

func (p *parser) parseFor() ast.Stmt {
	pos := p.tok.Pos
	p.expect(token.KwFor)
	p.expect(token.LPAREN)
	var init ast.Stmt
	if p.tok.Kind != token.SEMI {
		if p.tok.Kind == token.KwVar {
			init = p.parseVarDecl() // consumes its own semicolon
		} else {
			init = p.parseSimpleStmt()
			p.expect(token.SEMI)
		}
	} else {
		p.expect(token.SEMI)
	}
	var cond ast.Expr
	if p.tok.Kind != token.SEMI {
		cond = p.parseExpr()
	}
	p.expect(token.SEMI)
	var post ast.Stmt
	if p.tok.Kind != token.RPAREN {
		post = p.parseSimpleStmt()
	}
	p.expect(token.RPAREN)
	body := p.parseBlock()
	return &ast.For{P: pos, Init: init, Cond: cond, Post: post, Body: body}
}

// parseSimpleStmt parses an assignment or expression statement (no
// terminating semicolon).
func (p *parser) parseSimpleStmt() ast.Stmt {
	pos := p.tok.Pos
	lhs := p.parseExpr()
	if p.accept(token.ASSIGN) {
		rhs := p.parseExpr()
		return &ast.Assign{P: pos, LHS: lhs, RHS: rhs}
	}
	return &ast.ExprStmt{P: pos, X: lhs}
}

// ---- Expressions ----

func binaryPrec(k token.Kind) int {
	switch k {
	case token.LOR:
		return 1
	case token.LAND:
		return 2
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		return 3
	case token.ADD, token.SUB, token.OR, token.XOR:
		return 4
	case token.MUL, token.QUO, token.REM, token.SHL, token.SHR, token.AND:
		return 5
	}
	return 0
}

func (p *parser) parseExpr() ast.Expr { return p.parseBinary(1) }

func (p *parser) parseBinary(minPrec int) ast.Expr {
	lhs := p.parseUnary()
	for {
		prec := binaryPrec(p.tok.Kind)
		if prec < minPrec {
			return lhs
		}
		op := p.tok.Kind
		pos := p.tok.Pos
		p.next()
		rhs := p.parseBinary(prec + 1)
		b := &ast.Binary{Op: op, L: lhs, R: rhs}
		b.P = pos
		lhs = b
	}
}

func (p *parser) parseUnary() ast.Expr {
	defer p.enter()()
	switch p.tok.Kind {
	case token.SUB, token.NOT, token.MUL, token.AND:
		op := p.tok.Kind
		pos := p.tok.Pos
		p.next()
		x := p.parseUnary()
		u := &ast.Unary{Op: op, X: x}
		u.P = pos
		return u
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() ast.Expr {
	x := p.parsePrimary()
	for {
		switch p.tok.Kind {
		case token.LBRACK:
			pos := p.tok.Pos
			p.next()
			idx := p.parseExpr()
			p.expect(token.RBRACK)
			ix := &ast.Index{X: x, Idx: idx}
			ix.P = pos
			x = ix
		case token.LPAREN:
			id, ok := x.(*ast.Ident)
			if !ok {
				p.errorf(p.tok.Pos, "call target must be a function name")
			}
			pos := p.tok.Pos
			p.next()
			var args []ast.Expr
			for p.tok.Kind != token.RPAREN {
				if p.tok.Kind == token.EOF {
					p.errorf(p.tok.Pos, "unexpected end of input in argument list")
				}
				if len(args) > 0 {
					p.expect(token.COMMA)
				}
				args = append(args, p.parseExpr())
			}
			p.expect(token.RPAREN)
			c := &ast.Call{Name: id.Name, Args: args}
			c.P = pos
			x = c
		default:
			return x
		}
	}
}

func (p *parser) parsePrimary() ast.Expr {
	defer p.enter()()
	tok := p.tok
	switch tok.Kind {
	case token.INT:
		p.next()
		v, err := strconv.ParseInt(tok.Lit, 0, 64)
		if err != nil {
			p.errorf(tok.Pos, "bad integer literal %q: %v", tok.Lit, err)
		}
		e := &ast.IntLit{Value: v}
		e.P = tok.Pos
		return e
	case token.FLOAT:
		p.next()
		v, err := strconv.ParseFloat(tok.Lit, 64)
		if err != nil {
			p.errorf(tok.Pos, "bad float literal %q: %v", tok.Lit, err)
		}
		e := &ast.FloatLit{Value: v}
		e.P = tok.Pos
		return e
	case token.KwTrue, token.KwFalse:
		p.next()
		e := &ast.BoolLit{Value: tok.Kind == token.KwTrue}
		e.P = tok.Pos
		return e
	case token.IDENT:
		p.next()
		e := &ast.Ident{Name: tok.Lit}
		e.P = tok.Pos
		return e
	case token.KwInt, token.KwFloat:
		// Conversion: int(x) / float(x).
		p.next()
		p.expect(token.LPAREN)
		arg := p.parseExpr()
		p.expect(token.RPAREN)
		name := "int"
		if tok.Kind == token.KwFloat {
			name = "float"
		}
		c := &ast.Call{Name: name, Args: []ast.Expr{arg}, Conv: true}
		c.P = tok.Pos
		return c
	case token.LPAREN:
		p.next()
		e := p.parseExpr()
		p.expect(token.RPAREN)
		return e
	}
	p.errorf(tok.Pos, "expected expression, found %s", tok)
	return nil
}
