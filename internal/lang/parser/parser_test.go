package parser

import (
	"errors"
	"strings"
	"testing"

	"loopapalooza/internal/diag"

	"loopapalooza/internal/lang/ast"
	"loopapalooza/internal/lang/token"
)

func mustParse(t *testing.T, src string) *ast.File {
	t.Helper()
	f, err := Parse("test", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return f
}

func TestParseDeclarations(t *testing.T) {
	f := mustParse(t, `
const N = 64;
const M = N * 2 + 1;
var g int;
var pi float = 3.14;
var tab [N]int;
var w [M]float;
func main() int { return 0; }
func helper(x int, p *float) { }
`)
	if len(f.Consts) != 2 || f.Consts[1].Value != 129 {
		t.Fatalf("consts = %+v", f.Consts)
	}
	if len(f.Globals) != 4 {
		t.Fatalf("globals = %d", len(f.Globals))
	}
	if f.Globals[2].DeclTy.Kind != ast.TArray || f.Globals[2].DeclTy.Len != 64 {
		t.Errorf("tab type = %s", f.Globals[2].DeclTy)
	}
	if len(f.Funcs) != 2 {
		t.Fatalf("funcs = %d", len(f.Funcs))
	}
	if f.Funcs[0].Ret != ast.IntType || f.Funcs[1].Ret != ast.VoidType {
		t.Error("return types wrong")
	}
	if f.Funcs[1].Params[1].DeclTy != ast.PtrType(ast.TFloat) {
		t.Errorf("param type = %s", f.Funcs[1].Params[1].DeclTy)
	}
}

func TestParsePrecedence(t *testing.T) {
	f := mustParse(t, `func f() int { return 1 + 2 * 3; }`)
	ret := f.Funcs[0].Body.Stmts[0].(*ast.Return)
	add, ok := ret.X.(*ast.Binary)
	if !ok || add.Op != token.ADD {
		t.Fatalf("top op = %+v", ret.X)
	}
	mul, ok := add.R.(*ast.Binary)
	if !ok || mul.Op != token.MUL {
		t.Fatalf("rhs = %+v", add.R)
	}
}

func TestParseComparisonBindsLooser(t *testing.T) {
	f := mustParse(t, `func f() bool { return 1 + 2 < 3 * 4 && true; }`)
	ret := f.Funcs[0].Body.Stmts[0].(*ast.Return)
	land := ret.X.(*ast.Binary)
	if land.Op != token.LAND {
		t.Fatalf("top = %s", land.Op)
	}
	cmp := land.L.(*ast.Binary)
	if cmp.Op != token.LSS {
		t.Fatalf("left of && = %s", cmp.Op)
	}
}

func TestParseControlFlow(t *testing.T) {
	f := mustParse(t, `
func f(n int) int {
	var s int = 0;
	for (var i int = 0; i < n; i = i + 1) {
		if (i % 2 == 0) { s = s + i; } else if (i > 10) { break; } else { continue; }
	}
	while (s > 100) { s = s - 7; }
	return s;
}`)
	body := f.Funcs[0].Body.Stmts
	if _, ok := body[1].(*ast.For); !ok {
		t.Fatalf("stmt 1 = %T", body[1])
	}
	forStmt := body[1].(*ast.For)
	if _, ok := forStmt.Init.(*ast.VarDecl); !ok {
		t.Errorf("for init = %T", forStmt.Init)
	}
	ifStmt := forStmt.Body.Stmts[0].(*ast.If)
	elseIf, ok := ifStmt.Else.(*ast.If)
	if !ok {
		t.Fatalf("else-if = %T", ifStmt.Else)
	}
	if _, ok := elseIf.Else.(*ast.Block); !ok {
		t.Errorf("final else = %T", elseIf.Else)
	}
	if _, ok := body[2].(*ast.While); !ok {
		t.Errorf("stmt 2 = %T", body[2])
	}
}

func TestParsePointersAndIndexing(t *testing.T) {
	f := mustParse(t, `
var a [8]int;
func f(p *int) int {
	*p = a[3];
	p[1] = *p + 1;
	return *(p + 2);
}`)
	stmts := f.Funcs[0].Body.Stmts
	as := stmts[0].(*ast.Assign)
	if u, ok := as.LHS.(*ast.Unary); !ok || u.Op != token.MUL {
		t.Errorf("deref assign lhs = %T", as.LHS)
	}
	as2 := stmts[1].(*ast.Assign)
	if _, ok := as2.LHS.(*ast.Index); !ok {
		t.Errorf("index assign lhs = %T", as2.LHS)
	}
}

func TestParseCallsAndConversions(t *testing.T) {
	f := mustParse(t, `func f(x float) int { return int(x) + min(1, 2); }`)
	ret := f.Funcs[0].Body.Stmts[0].(*ast.Return)
	add := ret.X.(*ast.Binary)
	conv := add.L.(*ast.Call)
	if !conv.Conv || conv.Name != "int" {
		t.Errorf("conversion = %+v", conv)
	}
	call := add.R.(*ast.Call)
	if call.Name != "min" || len(call.Args) != 2 {
		t.Errorf("call = %+v", call)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`func f() int { return ; `,  // missing brace
		`func f() { x = ; }`,        // missing expr
		`var x [0]int;`,             // zero-length array
		`const N = x;`,              // non-constant
		`func f() { 1(2); }`,        // call of non-name
		`func f(a [4]int) { }`,      // array param
		`garbage`,                   // not a declaration
		`const N = 1; const N = 2;`, // const redeclared
		`func f() { for (;; { } }`,  // bad for
	}
	for _, src := range cases {
		if _, err := Parse("bad", src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestParseErrorMentionsPosition(t *testing.T) {
	_, err := Parse("pos", "func f() {\n  ?\n}")
	if err == nil || !strings.Contains(err.Error(), "2:") {
		t.Errorf("error lacks line info: %v", err)
	}
}

// TestParseMultiErrorResync is the resynchronization gate: a file with two
// independent faults in two different functions must report both, in
// source order, with exact positions.
func TestParseMultiErrorResync(t *testing.T) {
	src := `func a() int {
	var x int = ;
	return 0;
}
func b() int {
	return 1 + ;
}
`
	_, err := Parse("re.lpc", src)
	if err == nil {
		t.Fatal("no error")
	}
	var l diag.List
	if !errors.As(err, &l) {
		t.Fatalf("error is %T, want diag.List", err)
	}
	if len(l) < 2 {
		t.Fatalf("diagnostics = %d, want >= 2 (resync failed):\n%v", len(l), err)
	}
	// Golden: exact canonical lines for the two faults.
	want := []string{
		"re.lpc:2:14: expected expression, found ;",
		"re.lpc:6:13: expected expression, found ;",
	}
	for i, w := range want {
		if got := l[i].Error(); got != w {
			t.Errorf("diag[%d] = %q, want %q", i, got, w)
		}
	}
}

// TestParseMultiErrorSameFunction: statement-level resync reports several
// faults inside one body.
func TestParseMultiErrorSameFunction(t *testing.T) {
	src := `func f() {
	x = ;
	y = 1;
	z = ;
}
`
	_, err := Parse("st.lpc", src)
	var l diag.List
	if !errors.As(err, &l) {
		t.Fatalf("error = %v", err)
	}
	if len(l) != 2 {
		t.Fatalf("diagnostics = %d, want 2:\n%v", len(l), err)
	}
	if l[0].Pos.Line != 2 || l[1].Pos.Line != 4 {
		t.Errorf("positions = %v, %v; want lines 2 and 4", l[0].Pos, l[1].Pos)
	}
}

// TestParseResyncTopLevel: a broken declaration header skips to the next
// top-level declaration instead of aborting the file.
func TestParseResyncTopLevel(t *testing.T) {
	src := `var broken [;
func ok() int { return 1; }
var alsobroken = ;
func ok2() int { return 2; }
`
	_, err := Parse("tl.lpc", src)
	var l diag.List
	if !errors.As(err, &l) {
		t.Fatalf("error = %v", err)
	}
	if len(l) < 2 {
		t.Fatalf("diagnostics = %d, want >= 2:\n%v", len(l), err)
	}
	if l[0].Pos.Line != 1 || l[1].Pos.Line != 3 {
		t.Errorf("positions = %v, %v; want lines 1 and 3", l[0].Pos, l[1].Pos)
	}
}

// TestParseErrorOrdering: diagnostics come out sorted by position even
// when lexer errors interleave with parser errors.
func TestParseErrorOrdering(t *testing.T) {
	src := "func f() {\n\tx = $;\n\ty = ;\n}\n"
	_, err := Parse("ord.lpc", src)
	var l diag.List
	if !errors.As(err, &l) {
		t.Fatalf("error = %v", err)
	}
	for i := 1; i < len(l); i++ {
		a, b := l[i-1].Pos, l[i].Pos
		if a.Line > b.Line || (a.Line == b.Line && a.Col > b.Col) {
			t.Errorf("diagnostics out of order: %v before %v\n%v", a, b, err)
		}
	}
	// The lexical error for '$' must be present and carry the file name.
	found := false
	for _, d := range l {
		if strings.Contains(d.Msg, "unexpected character") {
			found = true
			if d.File != "ord.lpc" {
				t.Errorf("lexer diagnostic file = %q", d.File)
			}
		}
	}
	if !found {
		t.Errorf("missing lexical diagnostic:\n%v", err)
	}
}

// TestParseDeepNesting: pathological nesting fails with a diagnostic, not
// a host stack overflow.
func TestParseDeepNesting(t *testing.T) {
	src := "func f() int { return " + strings.Repeat("(", 100000) + "1" +
		strings.Repeat(")", 100000) + "; }"
	_, err := Parse("deep.lpc", src)
	if err == nil {
		t.Fatal("no error for 100k-deep nesting")
	}
	if !strings.Contains(err.Error(), "nesting too deep") {
		t.Errorf("error = %v", err)
	}

	blocks := "func f() { " + strings.Repeat("{", 100000) + strings.Repeat("}", 100000) + " }"
	if _, err := Parse("deep2.lpc", blocks); err == nil || !strings.Contains(err.Error(), "nesting too deep") {
		t.Errorf("block nesting error = %v", err)
	}
}

// TestParseErrorCap: an input with hundreds of faults stops at the
// diagnostic budget.
func TestParseErrorCap(t *testing.T) {
	src := "func f() {\n" + strings.Repeat("\tx = ;\n", 500) + "}\n"
	_, err := Parse("cap.lpc", src)
	var l diag.List
	if !errors.As(err, &l) {
		t.Fatalf("error = %v", err)
	}
	if len(l) > diag.MaxDiagnostics+1 {
		t.Errorf("diagnostics = %d, want <= %d", len(l), diag.MaxDiagnostics+1)
	}
}

// TestParseArrayLengthBounds: absurd array lengths are rejected at parse
// time with a position.
func TestParseArrayLengthBounds(t *testing.T) {
	_, err := Parse("big.lpc", "var g [99999999999]int;")
	if err == nil || !strings.Contains(err.Error(), "exceeds the maximum") {
		t.Errorf("error = %v", err)
	}
}

func TestParseHexAndNegativeConsts(t *testing.T) {
	f := mustParse(t, `const A = 0xff; const B = -8; const C = 1 << 10;`)
	if f.Consts[0].Value != 255 || f.Consts[1].Value != -8 || f.Consts[2].Value != 1024 {
		t.Errorf("consts = %+v", f.Consts)
	}
}
