package codegen

import (
	"strings"
	"testing"

	"loopapalooza/internal/ir"
	"loopapalooza/internal/lang/parser"
	"loopapalooza/internal/lang/sema"
)

func genMod(t *testing.T, src string) *ir.Module {
	t.Helper()
	f, err := parser.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := sema.Check(f); err != nil {
		t.Fatal(err)
	}
	m, err := Generate(f)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestAllocasInEntry: every alloca must land in the entry block, including
// for variables declared inside loops (the clang invariant mem2reg needs).
func TestAllocasInEntry(t *testing.T) {
	m := genMod(t, `
func main() int {
	var i int;
	for (i = 0; i < 4; i = i + 1) {
		var inner int = i;
		var buf [4]int;
		buf[0] = inner;
	}
	return 0;
}`)
	f := m.Func("main")
	for bi, b := range f.Blocks {
		for _, ins := range b.Instrs {
			if ins.Op == ir.OpAlloca && bi != 0 {
				t.Errorf("alloca %%%s in non-entry block .%s", ins.Nm, b.Name)
			}
		}
	}
	// And the entry does hold them.
	n := 0
	for _, ins := range f.Entry().Instrs {
		if ins.Op == ir.OpAlloca {
			n++
		}
	}
	if n != 3 { // i, inner, buf
		t.Errorf("entry allocas = %d, want 3", n)
	}
}

// TestShortCircuitControlFlow: && in a condition must produce a branch
// structure, not an eager And instruction.
func TestShortCircuitControlFlow(t *testing.T) {
	m := genMod(t, `
func f(a int, b int) int {
	if (a > 0 && b > 0) { return 1; }
	return 0;
}`)
	f := m.Func("f")
	for _, b := range f.Blocks {
		for _, ins := range b.Instrs {
			if ins.Op == ir.OpAnd {
				t.Error("&& lowered to eager OpAnd (no short circuit)")
			}
		}
	}
	if len(f.Blocks) < 4 {
		t.Errorf("short-circuit if produced only %d blocks", len(f.Blocks))
	}
}

// TestShortCircuitValueContext: && used as a value materializes a phi.
func TestShortCircuitValueContext(t *testing.T) {
	m := genMod(t, `
func f(a int, b int) bool {
	var r bool = a > 0 && b > 0;
	return r;
}`)
	f := m.Func("f")
	phis := 0
	for _, b := range f.Blocks {
		phis += len(b.Phis())
	}
	if phis == 0 {
		t.Error("value-context && produced no phi")
	}
}

// TestParamsSpilled: parameters are assignable because they are spilled to
// slots at entry.
func TestParamsSpilled(t *testing.T) {
	m := genMod(t, `
func halve(n int) int {
	n = n / 2;
	return n;
}
func main() int { return halve(10); }`)
	s := m.String()
	if !strings.Contains(s, "n.addr") {
		t.Errorf("no parameter spill slot in:\n%s", s)
	}
}

// TestGlobalInitializers: scalar global initializers populate the
// module-level allocation.
func TestGlobalInitializers(t *testing.T) {
	m := genMod(t, `
var a int = 7;
var b float = -2.5;
var c bool = true;
var d int = -3;
func main() int { return a; }`)
	ga := m.Global("a")
	if len(ga.InitInt) != 1 || ga.InitInt[0] != 7 {
		t.Errorf("a init = %v", ga.InitInt)
	}
	gb := m.Global("b")
	if len(gb.InitFloat) != 1 || gb.InitFloat[0] != -2.5 {
		t.Errorf("b init = %v", gb.InitFloat)
	}
	gc := m.Global("c")
	if len(gc.InitInt) != 1 || gc.InitInt[0] != 1 {
		t.Errorf("c init = %v", gc.InitInt)
	}
	gd := m.Global("d")
	if len(gd.InitInt) != 1 || gd.InitInt[0] != -3 {
		t.Errorf("d init = %v", gd.InitInt)
	}
}

// TestImplicitReturns: non-void functions falling off the end return zero
// values, and every block ends terminated.
func TestImplicitReturns(t *testing.T) {
	m := genMod(t, `
func weird(c bool) int {
	if (c) { return 1; }
	var x int = 2;
	x = x + 1;
}
func main() int { return weird(false); }`)
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			if b.Terminator() == nil {
				t.Errorf("@%s.%s unterminated", f.Name, b.Name)
			}
		}
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
}

// TestPointerArithmeticLowering: p + k and p - k lower to AddPtr.
func TestPointerArithmeticLowering(t *testing.T) {
	m := genMod(t, `
var a [8]int;
func main() int {
	var p *int = a;
	p = p + 3;
	p = p - 1;
	p = 1 + p;
	return *p;
}`)
	f := m.Func("main")
	addptrs := 0
	for _, b := range f.Blocks {
		for _, ins := range b.Instrs {
			if ins.Op == ir.OpAddPtr {
				addptrs++
			}
		}
	}
	if addptrs < 3 {
		t.Errorf("addptr count = %d, want >= 3", addptrs)
	}
}
