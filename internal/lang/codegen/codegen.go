// Package codegen lowers checked LPC syntax trees to IR.
//
// Locals (including parameters) are given single-cell stack slots and
// accessed through loads and stores; the analysis pipeline's mem2reg pass
// subsequently promotes them to SSA registers, exactly as clang -O relies on
// LLVM's mem2reg. Local arrays become multi-cell allocas; globals become
// module-level allocations.
package codegen

import (
	"fmt"

	"loopapalooza/internal/ir"
	"loopapalooza/internal/lang/ast"
	"loopapalooza/internal/lang/token"
)

// Generate lowers a checked file to a fresh IR module. Check must have been
// run (and returned no error) first.
func Generate(f *ast.File) (*ir.Module, error) {
	g := &gen{
		mod:     ir.NewModule(f.Name),
		globals: map[*ast.VarDecl]*ir.Global{},
		funcs:   map[*ast.FuncDecl]*ir.Function{},
	}
	for _, d := range f.Globals {
		g.declareGlobal(d)
	}
	// Declare all functions first so calls can reference them.
	for _, fn := range f.Funcs {
		params := make([]*ir.Param, len(fn.Params))
		for i, p := range fn.Params {
			params[i] = &ir.Param{Nm: p.Name, Ty: irType(p.DeclTy)}
		}
		g.funcs[fn] = g.mod.AddFunction(fn.Name, irType(fn.Ret), params...)
	}
	for _, fn := range f.Funcs {
		g.genFunc(fn)
	}
	if err := ir.Verify(g.mod); err != nil {
		return nil, fmt.Errorf("codegen produced invalid IR for %s: %w", f.Name, err)
	}
	return g.mod, nil
}

// irType maps a source type to an IR type. Arrays map to the type of one
// element; allocation sites use arraySize for the cell count.
func irType(t ast.Type) ir.Type {
	switch t.Kind {
	case ast.TInt:
		return ir.Int
	case ast.TFloat:
		return ir.Float
	case ast.TBool:
		return ir.Bool
	case ast.TVoid:
		return ir.Void
	case ast.TPtr, ast.TArray:
		if t.Elem == ast.TFloat {
			return ir.PtrTo(ir.Float)
		}
		return ir.PtrTo(ir.Int)
	}
	panic("codegen: bad type " + t.String())
}

// elemType returns the cell type of an array/pointer source type.
func elemType(t ast.Type) ir.Type {
	if t.Elem == ast.TFloat {
		return ir.Float
	}
	return ir.Int
}

type gen struct {
	mod     *ir.Module
	globals map[*ast.VarDecl]*ir.Global
	funcs   map[*ast.FuncDecl]*ir.Function

	// Per-function state.
	fn        *ir.Function
	bld       *ir.Builder
	slots     map[any]ir.Value // *ast.VarDecl / *ast.ParamDecl -> alloca (or global)
	breaks    []*ir.Block
	conts     []*ir.Block
	allocaIdx int // insertion cursor for entry-block allocas
}

// newSlot allocates a stack slot in the entry block, regardless of the
// current insertion point. Keeping every alloca in the entry block (as clang
// does) makes slots promotable and prevents repeated allocation inside
// loops.
func (g *gen) newSlot(elem ir.Type, size int64, name string) *ir.Instr {
	entry := g.fn.Entry()
	i := &ir.Instr{
		Op: ir.OpAlloca, Ty: ir.PtrTo(elem),
		Nm: g.fn.NextName(name), Args: []ir.Value{ir.ConstInt(size)},
	}
	entry.InsertBefore(g.allocaIdx, i)
	i.Parent = entry
	g.allocaIdx++
	return i
}

func (g *gen) declareGlobal(d *ast.VarDecl) {
	size := int64(1)
	elem := ir.Int
	switch d.DeclTy.Kind {
	case ast.TArray:
		size = d.DeclTy.Len
		elem = elemType(d.DeclTy)
	case ast.TFloat:
		elem = ir.Float
	case ast.TBool:
		elem = ir.Bool
	case ast.TPtr:
		elem = irType(d.DeclTy)
	}
	gl := g.mod.AddGlobal(d.Name, elem, size)
	if d.Init != nil {
		switch v := d.Init.(type) {
		case *ast.IntLit:
			gl.InitInt = []int64{v.Value}
		case *ast.FloatLit:
			gl.InitFloat = []float64{v.Value}
		case *ast.BoolLit:
			b := int64(0)
			if v.Value {
				b = 1
			}
			gl.InitInt = []int64{b}
		case *ast.Unary: // -literal, validated by sema
			switch lit := v.X.(type) {
			case *ast.IntLit:
				gl.InitInt = []int64{-lit.Value}
			case *ast.FloatLit:
				gl.InitFloat = []float64{-lit.Value}
			}
		}
	}
	g.globals[d] = gl
}

func (g *gen) genFunc(fn *ast.FuncDecl) {
	g.fn = g.funcs[fn]
	g.bld = ir.NewBuilder(g.fn)
	g.slots = map[any]ir.Value{}
	g.breaks, g.conts = nil, nil
	g.allocaIdx = 0

	// Spill parameters into slots so they are assignable; mem2reg will
	// promote them straight back when they are not address-taken.
	for i, p := range fn.Params {
		slot := g.newSlot(irType(p.DeclTy), 1, p.Name+".addr")
		g.bld.Store(slot, g.fn.Params[i])
		g.slots[p] = slot
	}
	g.genBlock(fn.Body)

	// Fall-through return.
	if g.bld.Block.Terminator() == nil {
		switch g.fn.Ret.Kind() {
		case ir.KVoid:
			g.bld.Ret(nil)
		case ir.KFloat:
			g.bld.Ret(ir.ConstFloat(0))
		case ir.KBool:
			g.bld.Ret(ir.ConstBool(false))
		default:
			g.bld.Ret(ir.ConstInt(0))
		}
	}
	// Other unterminated blocks (after break/continue/return) may exist
	// if the source had trailing unreachable code paths; terminate them.
	for _, b := range g.fn.Blocks {
		if b.Terminator() == nil {
			g.bld.SetBlock(b)
			switch g.fn.Ret.Kind() {
			case ir.KVoid:
				g.bld.Ret(nil)
			case ir.KFloat:
				g.bld.Ret(ir.ConstFloat(0))
			case ir.KBool:
				g.bld.Ret(ir.ConstBool(false))
			default:
				g.bld.Ret(ir.ConstInt(0))
			}
		}
	}
}

func (g *gen) genBlock(b *ast.Block) {
	for _, s := range b.Stmts {
		g.genStmt(s)
		if g.bld.Block.Terminator() != nil {
			return // rest of the block is unreachable
		}
	}
}

func (g *gen) genStmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.VarDecl:
		g.genVarDecl(st)
	case *ast.Assign:
		addr := g.genAddr(st.LHS)
		v := g.genExpr(st.RHS)
		g.bld.Store(addr, v)
	case *ast.ExprStmt:
		g.genExpr(st.X)
	case *ast.Block:
		g.genBlock(st)
	case *ast.If:
		g.genIf(st)
	case *ast.While:
		g.genWhile(st)
	case *ast.For:
		g.genFor(st)
	case *ast.Break:
		g.bld.Jmp(g.breaks[len(g.breaks)-1])
	case *ast.Continue:
		g.bld.Jmp(g.conts[len(g.conts)-1])
	case *ast.Return:
		if st.X == nil {
			g.bld.Ret(nil)
		} else {
			g.bld.Ret(g.genExpr(st.X))
		}
	default:
		panic(fmt.Sprintf("codegen: unhandled statement %T", s))
	}
}

func (g *gen) genVarDecl(d *ast.VarDecl) {
	size := int64(1)
	elem := irType(d.DeclTy)
	if d.DeclTy.Kind == ast.TArray {
		size = d.DeclTy.Len
		elem = elemType(d.DeclTy)
	}
	slot := g.newSlot(elem, size, d.Name)
	g.slots[d] = slot
	if d.Init != nil {
		g.bld.Store(slot, g.genExpr(d.Init))
	}
}

func (g *gen) genIf(st *ast.If) {
	then := g.fn.NewBlock("if.then")
	done := g.fn.NewBlock("if.done")
	els := done
	if st.Else != nil {
		els = g.fn.NewBlock("if.else")
	}
	g.genCondBr(st.Cond, then, els)

	g.bld.SetBlock(then)
	g.genBlock(st.Then)
	if g.bld.Block.Terminator() == nil {
		g.bld.Jmp(done)
	}
	if st.Else != nil {
		g.bld.SetBlock(els)
		g.genStmt(st.Else)
		if g.bld.Block.Terminator() == nil {
			g.bld.Jmp(done)
		}
	}
	g.bld.SetBlock(done)
}

func (g *gen) genWhile(st *ast.While) {
	head := g.fn.NewBlock("while.head")
	body := g.fn.NewBlock("while.body")
	done := g.fn.NewBlock("while.done")
	g.bld.Jmp(head)

	g.bld.SetBlock(head)
	g.genCondBr(st.Cond, body, done)

	g.breaks = append(g.breaks, done)
	g.conts = append(g.conts, head)
	g.bld.SetBlock(body)
	g.genBlock(st.Body)
	if g.bld.Block.Terminator() == nil {
		g.bld.Jmp(head)
	}
	g.breaks = g.breaks[:len(g.breaks)-1]
	g.conts = g.conts[:len(g.conts)-1]

	g.bld.SetBlock(done)
}

func (g *gen) genFor(st *ast.For) {
	if st.Init != nil {
		g.genStmt(st.Init)
	}
	head := g.fn.NewBlock("for.head")
	body := g.fn.NewBlock("for.body")
	post := g.fn.NewBlock("for.post")
	done := g.fn.NewBlock("for.done")
	g.bld.Jmp(head)

	g.bld.SetBlock(head)
	if st.Cond != nil {
		g.genCondBr(st.Cond, body, done)
	} else {
		g.bld.Jmp(body)
	}

	g.breaks = append(g.breaks, done)
	g.conts = append(g.conts, post)
	g.bld.SetBlock(body)
	g.genBlock(st.Body)
	if g.bld.Block.Terminator() == nil {
		g.bld.Jmp(post)
	}
	g.breaks = g.breaks[:len(g.breaks)-1]
	g.conts = g.conts[:len(g.conts)-1]

	g.bld.SetBlock(post)
	if st.Post != nil {
		g.genStmt(st.Post)
	}
	g.bld.Jmp(head)

	g.bld.SetBlock(done)
}

// genCondBr emits control flow for a condition, short-circuiting && and ||.
func (g *gen) genCondBr(e ast.Expr, yes, no *ir.Block) {
	switch x := e.(type) {
	case *ast.Binary:
		switch x.Op {
		case token.LAND:
			mid := g.fn.NewBlock("and.rhs")
			g.genCondBr(x.L, mid, no)
			g.bld.SetBlock(mid)
			g.genCondBr(x.R, yes, no)
			return
		case token.LOR:
			mid := g.fn.NewBlock("or.rhs")
			g.genCondBr(x.L, yes, mid)
			g.bld.SetBlock(mid)
			g.genCondBr(x.R, yes, no)
			return
		}
	case *ast.Unary:
		if x.Op == token.NOT {
			g.genCondBr(x.X, no, yes)
			return
		}
	}
	g.bld.Br(g.genExpr(e), yes, no)
}

// genAddr computes the address of an lvalue.
func (g *gen) genAddr(e ast.Expr) ir.Value {
	switch x := e.(type) {
	case *ast.Ident:
		switch d := x.Decl.(type) {
		case *ast.VarDecl:
			if d.Global {
				return g.globals[d]
			}
			return g.slots[d]
		case *ast.ParamDecl:
			return g.slots[d]
		}
		panic("codegen: address of non-variable " + x.Name)
	case *ast.Index:
		base := g.genExpr(x.X) // arrays evaluate to their base address
		idx := g.genExpr(x.Idx)
		return g.bld.AddPtr(base, idx)
	case *ast.Unary:
		if x.Op == token.MUL {
			return g.genExpr(x.X)
		}
	}
	panic(fmt.Sprintf("codegen: not an lvalue: %T", e))
}

func (g *gen) genExpr(e ast.Expr) ir.Value {
	switch x := e.(type) {
	case *ast.IntLit:
		return ir.ConstInt(x.Value)
	case *ast.FloatLit:
		return ir.ConstFloat(x.Value)
	case *ast.BoolLit:
		return ir.ConstBool(x.Value)
	case *ast.Ident:
		switch d := x.Decl.(type) {
		case *ast.ConstDecl:
			return ir.ConstInt(d.Value)
		case *ast.VarDecl:
			if d.DeclTy.Kind == ast.TArray {
				// Array-to-pointer decay: the value is the base.
				if d.Global {
					return g.globals[d]
				}
				return g.slots[d]
			}
			if d.Global {
				return g.bld.Load(g.globals[d])
			}
			return g.bld.Load(g.slots[d].(*ir.Instr))
		case *ast.ParamDecl:
			return g.bld.Load(g.slots[d].(*ir.Instr))
		}
		panic("codegen: unresolved ident " + x.Name)
	case *ast.Unary:
		return g.genUnary(x)
	case *ast.Binary:
		return g.genBinary(x)
	case *ast.Index:
		return g.bld.Load(g.genAddr(x))
	case *ast.Call:
		return g.genCall(x)
	}
	panic(fmt.Sprintf("codegen: unhandled expression %T", e))
}

func (g *gen) genUnary(x *ast.Unary) ir.Value {
	switch x.Op {
	case token.SUB:
		v := g.genExpr(x.X)
		if x.Type() == ast.FloatType {
			return g.bld.FNeg(v)
		}
		return g.bld.Neg(v)
	case token.NOT:
		return g.bld.Not(g.genExpr(x.X))
	case token.MUL:
		return g.bld.Load(g.genExpr(x.X))
	case token.AND:
		return g.genAddr(x.X)
	}
	panic("codegen: bad unary op " + x.Op.String())
}

var intOps = map[token.Kind]ir.Op{
	token.ADD: ir.OpAdd, token.SUB: ir.OpSub, token.MUL: ir.OpMul,
	token.QUO: ir.OpDiv, token.REM: ir.OpRem, token.AND: ir.OpAnd,
	token.OR: ir.OpOr, token.XOR: ir.OpXor, token.SHL: ir.OpShl,
	token.SHR: ir.OpShr,
}

var floatOps = map[token.Kind]ir.Op{
	token.ADD: ir.OpFAdd, token.SUB: ir.OpFSub,
	token.MUL: ir.OpFMul, token.QUO: ir.OpFDiv,
}

var cmpOps = map[token.Kind]ir.Op{
	token.EQL: ir.OpEq, token.NEQ: ir.OpNe, token.LSS: ir.OpLt,
	token.LEQ: ir.OpLe, token.GTR: ir.OpGt, token.GEQ: ir.OpGe,
}

func (g *gen) genBinary(x *ast.Binary) ir.Value {
	switch x.Op {
	case token.LAND, token.LOR:
		// Value context: materialize the short-circuit result as a phi.
		yes := g.fn.NewBlock("bool.true")
		no := g.fn.NewBlock("bool.false")
		done := g.fn.NewBlock("bool.done")
		g.genCondBr(x, yes, no)
		g.bld.SetBlock(yes)
		g.bld.Jmp(done)
		g.bld.SetBlock(no)
		g.bld.Jmp(done)
		g.bld.SetBlock(done)
		phi := g.bld.Phi(ir.Bool, "sc")
		phi.SetPhiIncoming(yes, ir.ConstBool(true))
		phi.SetPhiIncoming(no, ir.ConstBool(false))
		return phi
	}
	if op, ok := cmpOps[x.Op]; ok {
		return g.bld.Compare(op, g.genExpr(x.L), g.genExpr(x.R))
	}

	l := g.genExpr(x.L)
	r := g.genExpr(x.R)
	// Pointer arithmetic.
	if x.Type().Kind == ast.TPtr {
		if l.Type().IsPtr() {
			if x.Op == token.SUB {
				r = g.bld.Neg(r)
			}
			return g.bld.AddPtr(l, r)
		}
		return g.bld.AddPtr(r, l) // int + ptr
	}
	if x.Type() == ast.FloatType {
		return g.bld.Binary(floatOps[x.Op], l, r)
	}
	return g.bld.Binary(intOps[x.Op], l, r)
}

func (g *gen) genCall(x *ast.Call) ir.Value {
	if x.Conv {
		v := g.genExpr(x.Args[0])
		if x.Name == "int" {
			if v.Type().Kind() == ir.KInt {
				return v
			}
			return g.bld.FloatToInt(v)
		}
		if v.Type().Kind() == ir.KFloat {
			return v
		}
		return g.bld.IntToFloat(v)
	}
	args := make([]ir.Value, len(x.Args))
	for i, a := range x.Args {
		args[i] = g.genExpr(a)
	}
	if x.FuncDecl != nil {
		return g.bld.Call(g.funcs[x.FuncDecl], args...)
	}
	bi := ir.Builtins[x.Name]
	return g.bld.CallBuiltin(x.Name, bi.Ret, args...)
}
