// Package sema type-checks LPC files: it resolves names, computes and
// records expression types, validates assignments, calls, conversions, and
// control flow, and rejects ill-formed programs before code generation.
package sema

import (
	"loopapalooza/internal/diag"
	"loopapalooza/internal/ir"
	"loopapalooza/internal/lang/ast"
	"loopapalooza/internal/lang/token"
)

// Check type-checks f in place, annotating expression types and resolving
// identifiers. It returns every error found (up to the diagnostic budget)
// as a diag.List sorted by source position.
func Check(f *ast.File) error {
	c := &checker{
		file:    f,
		funcs:   map[string]*ast.FuncDecl{},
		globals: map[string]*ast.VarDecl{},
		consts:  map[string]*ast.ConstDecl{},
	}
	for _, d := range f.Consts {
		c.consts[d.Name] = d
	}
	for _, g := range f.Globals {
		if c.globals[g.Name] != nil || c.consts[g.Name] != nil {
			c.errorf(g.Pos(), "%s redeclared at module scope", g.Name)
		}
		c.globals[g.Name] = g
		if g.Init != nil {
			if g.DeclTy.Kind == ast.TArray {
				c.errorf(g.Pos(), "array globals cannot have initializers")
			}
			c.checkExpr(g.Init)
			if !constLit(g.Init) {
				c.errorf(g.Pos(), "global initializer must be a constant literal")
			} else if !assignable(g.DeclTy, g.Init.Type()) {
				c.errorf(g.Pos(), "cannot initialize %s %s with %s", g.Name, g.DeclTy, g.Init.Type())
			}
		}
	}
	for _, fn := range f.Funcs {
		if c.funcs[fn.Name] != nil {
			c.errorf(fn.Pos(), "function %s redeclared", fn.Name)
		}
		if _, isBuiltin := ir.Builtins[fn.Name]; isBuiltin {
			c.errorf(fn.Pos(), "function %s shadows a builtin", fn.Name)
		}
		c.funcs[fn.Name] = fn
	}
	for _, fn := range f.Funcs {
		c.checkFunc(fn)
	}
	return c.errs.Truncate(f.Name).Err()
}

type checker struct {
	file    *ast.File
	funcs   map[string]*ast.FuncDecl
	globals map[string]*ast.VarDecl
	consts  map[string]*ast.ConstDecl
	errs    diag.List

	fn     *ast.FuncDecl
	scopes []map[string]any // *ast.VarDecl or *ast.ParamDecl
	loops  int
}

func (c *checker) errorf(pos token.Pos, format string, args ...any) {
	if len(c.errs) <= diag.MaxDiagnostics {
		c.errs = append(c.errs, diag.New(c.file.Name, pos, format, args...))
	}
}

func (c *checker) push() { c.scopes = append(c.scopes, map[string]any{}) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }
func (c *checker) declare(n string, d any, pos token.Pos) {
	top := c.scopes[len(c.scopes)-1]
	if top[n] != nil {
		c.errorf(pos, "%s redeclared in this scope", n)
	}
	top[n] = d
}

func (c *checker) lookup(n string) any {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if d := c.scopes[i][n]; d != nil {
			return d
		}
	}
	if d := c.consts[n]; d != nil {
		return d
	}
	if d := c.globals[n]; d != nil {
		return d
	}
	return nil
}

func (c *checker) checkFunc(fn *ast.FuncDecl) {
	c.fn = fn
	c.push()
	defer c.pop()
	for _, p := range fn.Params {
		c.declare(p.Name, p, p.Pos())
	}
	c.checkBlock(fn.Body)
}

func (c *checker) checkBlock(b *ast.Block) {
	c.push()
	defer c.pop()
	for _, s := range b.Stmts {
		c.checkStmt(s)
	}
}

func (c *checker) checkStmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.VarDecl:
		if st.Init != nil {
			if st.DeclTy.Kind == ast.TArray {
				c.errorf(st.Pos(), "array variables cannot have initializers")
			} else {
				c.checkExpr(st.Init)
				if !assignable(st.DeclTy, st.Init.Type()) {
					c.errorf(st.Pos(), "cannot initialize %s %s with %s", st.Name, st.DeclTy, st.Init.Type())
				}
			}
		}
		c.declare(st.Name, st, st.Pos())
	case *ast.Assign:
		c.checkExpr(st.RHS)
		c.checkLValue(st.LHS)
		if st.LHS.Type().Kind == ast.TArray {
			c.errorf(st.Pos(), "cannot assign to an array")
		} else if !assignable(st.LHS.Type(), st.RHS.Type()) {
			c.errorf(st.Pos(), "cannot assign %s to %s", st.RHS.Type(), st.LHS.Type())
		}
	case *ast.ExprStmt:
		c.checkExpr(st.X)
		if _, ok := st.X.(*ast.Call); !ok {
			c.errorf(st.Pos(), "expression statement must be a call")
		}
	case *ast.Block:
		c.checkBlock(st)
	case *ast.If:
		c.checkExpr(st.Cond)
		if st.Cond.Type() != ast.BoolType {
			c.errorf(st.Cond.Pos(), "if condition must be bool, got %s", st.Cond.Type())
		}
		c.checkBlock(st.Then)
		if st.Else != nil {
			c.checkStmt(st.Else)
		}
	case *ast.While:
		c.checkExpr(st.Cond)
		if st.Cond.Type() != ast.BoolType {
			c.errorf(st.Cond.Pos(), "while condition must be bool, got %s", st.Cond.Type())
		}
		c.loops++
		c.checkBlock(st.Body)
		c.loops--
	case *ast.For:
		c.push()
		if st.Init != nil {
			c.checkStmt(st.Init)
		}
		if st.Cond != nil {
			c.checkExpr(st.Cond)
			if st.Cond.Type() != ast.BoolType {
				c.errorf(st.Cond.Pos(), "for condition must be bool, got %s", st.Cond.Type())
			}
		}
		if st.Post != nil {
			c.checkStmt(st.Post)
		}
		c.loops++
		c.checkBlock(st.Body)
		c.loops--
		c.pop()
	case *ast.Break:
		if c.loops == 0 {
			c.errorf(st.Pos(), "break outside loop")
		}
	case *ast.Continue:
		if c.loops == 0 {
			c.errorf(st.Pos(), "continue outside loop")
		}
	case *ast.Return:
		if st.X == nil {
			if c.fn.Ret.Kind != ast.TVoid {
				c.errorf(st.Pos(), "missing return value (function returns %s)", c.fn.Ret)
			}
			return
		}
		c.checkExpr(st.X)
		if c.fn.Ret.Kind == ast.TVoid {
			c.errorf(st.Pos(), "void function returns a value")
		} else if !assignable(c.fn.Ret, st.X.Type()) {
			c.errorf(st.Pos(), "cannot return %s as %s", st.X.Type(), c.fn.Ret)
		}
	default:
		c.errorf(s.Pos(), "unhandled statement %T", s)
	}
}

// checkLValue checks an assignable expression.
func (c *checker) checkLValue(e ast.Expr) {
	switch x := e.(type) {
	case *ast.Ident:
		c.checkExpr(e)
		if _, isConst := x.Decl.(*ast.ConstDecl); isConst {
			c.errorf(e.Pos(), "cannot assign to constant %s", x.Name)
		}
	case *ast.Index:
		c.checkExpr(e)
	case *ast.Unary:
		if x.Op != token.MUL {
			c.errorf(e.Pos(), "cannot assign to this expression")
		}
		c.checkExpr(e)
	default:
		c.errorf(e.Pos(), "cannot assign to this expression")
		c.checkExpr(e)
	}
}

// assignable reports whether src can be assigned to dst, with array-to-
// pointer decay.
func assignable(dst, src ast.Type) bool {
	if dst.Equal(src) {
		return true
	}
	if dst.Kind == ast.TPtr && src.Kind == ast.TArray && dst.Elem == src.Elem {
		return true
	}
	return false
}

func constLit(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.IntLit, *ast.FloatLit, *ast.BoolLit:
		return true
	case *ast.Unary:
		return x.Op == token.SUB && constLit(x.X)
	}
	return false
}

func (c *checker) checkExpr(e ast.Expr) {
	switch x := e.(type) {
	case *ast.IntLit:
		x.SetType(ast.IntType)
	case *ast.FloatLit:
		x.SetType(ast.FloatType)
	case *ast.BoolLit:
		x.SetType(ast.BoolType)
	case *ast.Ident:
		d := c.lookup(x.Name)
		if d == nil {
			c.errorf(x.Pos(), "undefined: %s", x.Name)
			x.SetType(ast.IntType)
			return
		}
		x.Decl = d
		switch dd := d.(type) {
		case *ast.VarDecl:
			x.SetType(dd.DeclTy)
		case *ast.ParamDecl:
			x.SetType(dd.DeclTy)
		case *ast.ConstDecl:
			x.SetType(ast.IntType)
		}
	case *ast.Unary:
		c.checkUnary(x)
	case *ast.Binary:
		c.checkBinary(x)
	case *ast.Index:
		c.checkExpr(x.X)
		c.checkExpr(x.Idx)
		if x.Idx.Type() != ast.IntType {
			c.errorf(x.Idx.Pos(), "index must be int, got %s", x.Idx.Type())
		}
		t := x.X.Type()
		switch t.Kind {
		case ast.TArray, ast.TPtr:
			if t.Elem == ast.TInt {
				x.SetType(ast.IntType)
			} else {
				x.SetType(ast.FloatType)
			}
		default:
			c.errorf(x.Pos(), "cannot index %s", t)
			x.SetType(ast.IntType)
		}
	case *ast.Call:
		c.checkCall(x)
	default:
		c.errorf(e.Pos(), "unhandled expression %T", e)
	}
}

func (c *checker) checkUnary(x *ast.Unary) {
	c.checkExpr(x.X)
	t := x.X.Type()
	switch x.Op {
	case token.SUB:
		if !t.IsNumeric() {
			c.errorf(x.Pos(), "cannot negate %s", t)
		}
		x.SetType(t)
	case token.NOT:
		if t != ast.BoolType {
			c.errorf(x.Pos(), "! requires bool, got %s", t)
		}
		x.SetType(ast.BoolType)
	case token.MUL: // deref
		if t.Kind != ast.TPtr {
			c.errorf(x.Pos(), "cannot dereference %s", t)
			x.SetType(ast.IntType)
			return
		}
		if t.Elem == ast.TInt {
			x.SetType(ast.IntType)
		} else {
			x.SetType(ast.FloatType)
		}
	case token.AND: // address-of
		switch lv := x.X.(type) {
		case *ast.Ident:
			if _, isConst := lv.Decl.(*ast.ConstDecl); isConst {
				c.errorf(x.Pos(), "cannot take address of constant")
			}
		case *ast.Index:
		default:
			c.errorf(x.Pos(), "cannot take address of this expression")
		}
		switch t.Kind {
		case ast.TInt:
			x.SetType(ast.PtrType(ast.TInt))
		case ast.TFloat:
			x.SetType(ast.PtrType(ast.TFloat))
		case ast.TArray:
			x.SetType(ast.PtrType(t.Elem))
		default:
			c.errorf(x.Pos(), "cannot take address of %s", t)
			x.SetType(ast.PtrType(ast.TInt))
		}
	}
}

func (c *checker) checkBinary(x *ast.Binary) {
	c.checkExpr(x.L)
	c.checkExpr(x.R)
	lt, rt := x.L.Type(), x.R.Type()
	// Array operands decay to pointers in arithmetic/comparison contexts.
	decay := func(t ast.Type) ast.Type {
		if t.Kind == ast.TArray {
			return ast.PtrType(t.Elem)
		}
		return t
	}
	lt, rt = decay(lt), decay(rt)

	switch x.Op {
	case token.LAND, token.LOR:
		if lt != ast.BoolType || rt != ast.BoolType {
			c.errorf(x.Pos(), "%s requires bool operands, got %s and %s", x.Op, lt, rt)
		}
		x.SetType(ast.BoolType)
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		if !lt.Equal(rt) {
			c.errorf(x.Pos(), "comparison of %s with %s", lt, rt)
		}
		if (x.Op != token.EQL && x.Op != token.NEQ) && lt == ast.BoolType {
			c.errorf(x.Pos(), "bools are not ordered")
		}
		x.SetType(ast.BoolType)
	case token.ADD, token.SUB:
		switch {
		case lt.Kind == ast.TPtr && rt == ast.IntType:
			x.SetType(lt) // pointer arithmetic
		case x.Op == token.ADD && lt == ast.IntType && rt.Kind == ast.TPtr:
			x.SetType(rt)
		case lt.IsNumeric() && lt.Equal(rt):
			x.SetType(lt)
		default:
			c.errorf(x.Pos(), "invalid operands to %s: %s and %s", x.Op, lt, rt)
			x.SetType(ast.IntType)
		}
	case token.MUL, token.QUO:
		if !lt.IsNumeric() || !lt.Equal(rt) {
			c.errorf(x.Pos(), "invalid operands to %s: %s and %s", x.Op, lt, rt)
		}
		x.SetType(lt)
	case token.REM, token.SHL, token.SHR, token.AND, token.OR, token.XOR:
		if lt != ast.IntType || rt != ast.IntType {
			c.errorf(x.Pos(), "%s requires int operands, got %s and %s", x.Op, lt, rt)
		}
		x.SetType(ast.IntType)
	default:
		c.errorf(x.Pos(), "unhandled operator %s", x.Op)
		x.SetType(ast.IntType)
	}
}

func (c *checker) checkCall(x *ast.Call) {
	for _, a := range x.Args {
		c.checkExpr(a)
	}
	// Conversions.
	if x.Conv {
		if len(x.Args) != 1 {
			c.errorf(x.Pos(), "conversion takes exactly one argument")
			x.SetType(ast.IntType)
			return
		}
		at := x.Args[0].Type()
		if !at.IsNumeric() {
			c.errorf(x.Pos(), "cannot convert %s", at)
		}
		if x.Name == "int" {
			x.SetType(ast.IntType)
		} else {
			x.SetType(ast.FloatType)
		}
		return
	}
	// User function.
	if fd := c.funcs[x.Name]; fd != nil {
		x.FuncDecl = fd
		if len(x.Args) != len(fd.Params) {
			c.errorf(x.Pos(), "%s takes %d arguments, got %d", x.Name, len(fd.Params), len(x.Args))
		} else {
			for i, a := range x.Args {
				if !assignable(fd.Params[i].DeclTy, a.Type()) {
					c.errorf(a.Pos(), "argument %d of %s: cannot use %s as %s", i+1, x.Name, a.Type(), fd.Params[i].DeclTy)
				}
			}
		}
		x.SetType(fd.Ret)
		return
	}
	// Builtin.
	if bi, ok := ir.Builtins[x.Name]; ok {
		x.Builtin = true
		if len(x.Args) != len(bi.Params) {
			c.errorf(x.Pos(), "%s takes %d arguments, got %d", x.Name, len(bi.Params), len(x.Args))
		} else {
			for i, a := range x.Args {
				want := irToAst(bi.Params[i])
				if !assignable(want, a.Type()) {
					c.errorf(a.Pos(), "argument %d of %s: cannot use %s as %s", i+1, x.Name, a.Type(), want)
				}
			}
		}
		x.SetType(irToAst(bi.Ret))
		return
	}
	c.errorf(x.Pos(), "undefined function %s", x.Name)
	x.SetType(ast.IntType)
}

// irToAst maps a builtin signature type to the source type system.
func irToAst(t ir.Type) ast.Type {
	switch t.Kind() {
	case ir.KInt:
		return ast.IntType
	case ir.KFloat:
		return ast.FloatType
	case ir.KBool:
		return ast.BoolType
	case ir.KPtr:
		if t.Base == ir.KFloat {
			return ast.PtrType(ast.TFloat)
		}
		return ast.PtrType(ast.TInt)
	default:
		return ast.VoidType
	}
}
