package sema

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"loopapalooza/internal/diag"
	"loopapalooza/internal/lang/ast"
	"loopapalooza/internal/lang/parser"
)

func check(t *testing.T, src string) error {
	t.Helper()
	f, err := parser.Parse("test", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return Check(f)
}

func wantErr(t *testing.T, src, substr string) {
	t.Helper()
	err := check(t, src)
	if err == nil {
		t.Fatalf("no error for %q (want %q)", src, substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("error %q does not mention %q", err, substr)
	}
}

func TestSemaAcceptsValidProgram(t *testing.T) {
	err := check(t, `
const N = 16;
var tab [N]int;
var sum int = 0;
func fill(p *int, n int) {
	for (var i int = 0; i < n; i = i + 1) { p[i] = i * i; }
}
func total(n int) int {
	var s int;
	s = 0;
	for (var i int = 0; i < n; i = i + 1) { s = s + tab[i]; }
	return s;
}
func main() int {
	fill(tab, N);
	sum = total(N);
	if (sum > 100 && sum < 10000) { print_i64(sum); }
	var x float = float(sum);
	x = x * 2.0 + sqrt(x);
	return int(x) % 256;
}`)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestSemaTypeErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`func f() { var x int = 1.5; }`, "cannot initialize"},
		{`func f() { var x int; x = true; }`, "cannot assign"},
		{`func f() { if (1) { } }`, "must be bool"},
		{`func f() { while (2.0) { } }`, "must be bool"},
		{`func f() int { return 1.5; }`, "cannot return"},
		{`func f() { return 1; }`, "void function returns"},
		{`func f() int { return; }`, "missing return value"},
		{`func f() { var x int = 1 + 2.0; }`, "invalid operands"},
		{`func f() { var b bool = 1 < 2.0; }`, "comparison of"},
		{`func f() { var b bool = true < false; }`, "not ordered"},
		{`func f() { var x float = 1.5 % 2.0; }`, "requires int"},
		{`func f() { var x int = y; }`, "undefined: y"},
		{`func f() { g(); }`, "undefined function"},
		{`func f() { break; }`, "break outside loop"},
		{`func f() { continue; }`, "continue outside loop"},
		{`func f() { 1 + 2; }`, "must be a call"},
		{`const N = 1; func f() { N = 2; }`, "cannot assign to constant"},
		{`func f() { var x int; x(); }`, "undefined function"},
		{`func f(x int) { f(1, 2); }`, "takes 1 arguments"},
		{`func f(x float) { f(1); }`, "cannot use int as float"},
		{`func f() { min(1.0, 2.0); }`, "cannot use float as int"},
		{`func f() { var p *int; var x float = *p; }`, "cannot initialize"},
		{`func f() { var x int = *x; }`, "cannot dereference"},
		{`func f() { var x int; var p *float = &x; }`, "cannot initialize"},
		{`func f() { var b bool = !1; }`, "requires bool"},
		{`var a [4]int; func f() { a = a; }`, "cannot assign to an array"},
		{`var a [4]int; var b [4]float; func f() { a[0] = b[0]; }`, "cannot assign"},
		{`func f() { var x bool = float(true) > 0.0; }`, "cannot convert"},
		{`func sqrt(x float) float { return x; }`, "shadows a builtin"},
		{`func f() { } func f() { }`, "redeclared"},
		{`var g int; var g int;`, "redeclared"},
		{`func f() { var x int; var x int; }`, "redeclared in this scope"},
		{`var g int = 1 + 2;`, "must be a constant literal"},
		{`func f(p *int) { var q *float = p; }`, "cannot initialize"},
	}
	for _, c := range cases {
		wantErr(t, c.src, c.want)
	}
}

func TestSemaScoping(t *testing.T) {
	// Inner scopes may shadow; uses resolve innermost-first.
	err := check(t, `
var x int = 1;
func f() int {
	var x float;
	x = 2.5;
	{
		var x bool;
		x = true;
	}
	return 0;
}`)
	if err != nil {
		t.Fatalf("shadowing should be legal: %v", err)
	}
}

func TestSemaArrayDecay(t *testing.T) {
	err := check(t, `
var a [8]float;
func g(p *float, n int) float { return p[n-1]; }
func f() float {
	var local [4]float;
	return g(a, 8) + g(local, 4) + g(&a[2], 2);
}`)
	if err != nil {
		t.Fatalf("array decay should typecheck: %v", err)
	}
}

func TestSemaPointerArithmetic(t *testing.T) {
	err := check(t, `
var a [8]int;
func f() int {
	var p *int = a;
	p = p + 3;
	p = p - 1;
	p = 1 + p;
	if (p == &a[3] || p != a) { return *p; }
	return p[0];
}`)
	if err != nil {
		t.Fatalf("pointer arithmetic should typecheck: %v", err)
	}
}

func TestSemaIdentTypesAnnotated(t *testing.T) {
	f, err := parser.Parse("t", `var v float; func f() float { return v; }`)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(f); err != nil {
		t.Fatal(err)
	}
	ret := f.Funcs[0].Body.Stmts[0].(*ast.Return)
	if ret.X.Type() != ast.FloatType {
		t.Errorf("v type = %s, want float", ret.X.Type())
	}
	id := ret.X.(*ast.Ident)
	if id.Decl != f.Globals[0] {
		t.Error("ident not resolved to global decl")
	}
}

// TestSemaGoldenDiagnostics pins the canonical rendering of representative
// type errors: file, position, and message text.
func TestSemaGoldenDiagnostics(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // exact first diagnostic line
	}{
		{
			"undefined",
			"func f() int {\n\treturn x;\n}\n",
			"test:2:9: undefined: x",
		},
		{
			"bad return type",
			"func f() bool {\n\treturn 1;\n}\n",
			"test:2:2: cannot return int as bool",
		},
		{
			"condition not bool",
			"func f() {\n\tif (1) { }\n}\n",
			"test:2:6: if condition must be bool, got int",
		},
		{
			"assign type mismatch",
			"func f() {\n\tvar x int;\n\tx = 1.5;\n}\n",
			"test:3:2: cannot assign float to int",
		},
		{
			"redeclared in scope",
			"func f() {\n\tvar x int;\n\tvar x int;\n}\n",
			"test:3:2: x redeclared in this scope",
		},
		{
			"break outside loop",
			"func f() {\n\tbreak;\n}\n",
			"test:2:2: break outside loop",
		},
		{
			"call arity",
			"func g(a int) int { return a; }\nfunc f() int {\n\treturn g(1, 2);\n}\n",
			"test:3:10: g takes 1 arguments, got 2",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := check(t, tc.src)
			if err == nil {
				t.Fatalf("no error for %q", tc.src)
			}
			var l diag.List
			if !errors.As(err, &l) {
				t.Fatalf("error is %T, want diag.List", err)
			}
			if got := l[0].Error(); got != tc.want {
				t.Errorf("diag = %q, want %q", got, tc.want)
			}
		})
	}
}

// TestSemaMultiErrorOrdering: several independent type errors all surface,
// sorted by source position.
func TestSemaMultiErrorOrdering(t *testing.T) {
	src := `func f() int {
	var a bool = 1;
	return q;
}
func g() {
	break;
}
`
	err := check(t, src)
	var l diag.List
	if !errors.As(err, &l) {
		t.Fatalf("error = %v", err)
	}
	if len(l) != 3 {
		t.Fatalf("diagnostics = %d, want 3:\n%v", len(l), err)
	}
	wantLines := []int{2, 3, 6}
	for i, w := range wantLines {
		if l[i].Pos.Line != w {
			t.Errorf("diag[%d] at line %d, want %d (%s)", i, l[i].Pos.Line, w, l[i])
		}
	}
}

// TestSemaErrorCap: sema stops collecting at the diagnostic budget.
func TestSemaErrorCap(t *testing.T) {
	var b strings.Builder
	b.WriteString("func f() {\n")
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&b, "\tq%d = 1;\n", i)
	}
	b.WriteString("}\n")
	err := check(t, b.String())
	var l diag.List
	if !errors.As(err, &l) {
		t.Fatalf("error = %v", err)
	}
	if len(l) > diag.MaxDiagnostics+2 {
		t.Errorf("diagnostics = %d, want capped near %d", len(l), diag.MaxDiagnostics)
	}
}
