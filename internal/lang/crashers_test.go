package lang

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"loopapalooza/internal/diag"
)

// TestCrasherReplayCompile replays every checked-in crasher through the
// full front end. These inputs each crashed (or hung) some stage of the
// compile surface before the corresponding fix; the suite pins the fixes
// as unit tests so the crashers cannot regress silently between fuzzing
// sessions. Compile must terminate without panicking, and any failure must
// be an ordinary positioned diagnostic — an ICE here means a fixed crash
// came back.
func TestCrasherReplayCompile(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "crashers", "*.lpc"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no crashers checked in under testdata/crashers")
	}
	for _, p := range paths {
		p := p
		t.Run(filepath.Base(p), func(t *testing.T) {
			src, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			_, cerr := Compile(filepath.Base(p), string(src))
			if cerr == nil {
				return // compiles fine now — still a valid no-crash check
			}
			var ice *diag.ICE
			if errors.As(cerr, &ice) {
				t.Fatalf("crasher regressed to an ICE (stage %s): %v", ice.Stage, ice.Val)
			}
			var l diag.List
			if !errors.As(cerr, &l) {
				t.Fatalf("crasher error is %T, want diag.List: %v", cerr, cerr)
			}
		})
	}
}
