package lang

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"loopapalooza/internal/diag"
	"loopapalooza/internal/lang/lexer"
	"loopapalooza/internal/lang/parser"
	"loopapalooza/internal/lang/token"
)

// addCorpus seeds a fuzz target with every checked-in corpus file
// (testdata/corpus) and every past crasher (testdata/crashers).
func addCorpus(f *testing.F) {
	f.Helper()
	n := 0
	for _, dir := range []string{"corpus", "crashers"} {
		paths, err := filepath.Glob(filepath.Join("testdata", dir, "*"))
		if err != nil {
			f.Fatal(err)
		}
		for _, p := range paths {
			b, err := os.ReadFile(p)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(string(b))
			n++
		}
	}
	if n == 0 {
		f.Fatal("no seed corpus under testdata/corpus — the seeds must be checked in")
	}
}

// FuzzLexer: scanning any byte string terminates, ends in EOF, keeps every
// diagnostic position valid, and bounds the diagnostic list.
func FuzzLexer(f *testing.F) {
	addCorpus(f)
	f.Fuzz(func(t *testing.T, src string) {
		l := lexer.New(src)
		toks := l.All()
		if len(toks) == 0 || toks[len(toks)-1].Kind != token.EOF {
			t.Fatalf("token stream does not end in EOF")
		}
		for _, tk := range toks[:len(toks)-1] {
			if tk.Pos.Line < 1 || tk.Pos.Col < 1 {
				t.Fatalf("token %s has invalid position %v", tk.Kind, tk.Pos)
			}
		}
		errs := l.Errors()
		if len(errs) > diag.MaxDiagnostics {
			t.Fatalf("diagnostics unbounded: %d", len(errs))
		}
		for _, d := range errs {
			if d.Pos.Line < 1 || d.Pos.Col < 1 {
				t.Fatalf("diagnostic %q has invalid position %v", d.Msg, d.Pos)
			}
		}
	})
}

// FuzzParse: parsing any byte string terminates without panicking; every
// failure is a positioned, sorted, bounded diag.List that renders cleanly.
func FuzzParse(f *testing.F) {
	addCorpus(f)
	f.Fuzz(func(t *testing.T, src string) {
		file, err := parser.Parse("fuzz.lpc", src)
		if err == nil {
			if file == nil {
				t.Fatal("nil file with nil error")
			}
			return
		}
		if file != nil {
			t.Fatal("non-nil file with error")
		}
		var l diag.List
		if !errors.As(err, &l) {
			t.Fatalf("parse error is %T, want diag.List: %v", err, err)
		}
		if len(l) == 0 || len(l) > diag.MaxDiagnostics+1 {
			t.Fatalf("diagnostic count %d outside (0, %d]", len(l), diag.MaxDiagnostics+1)
		}
		for i, d := range l {
			if d.File != "fuzz.lpc" {
				t.Fatalf("diagnostic %d not stamped with unit name: %q", i, d.File)
			}
			if i > 0 && d.Msg != "too many errors" {
				a, b := l[i-1].Pos, d.Pos
				if a.Line > b.Line || (a.Line == b.Line && a.Col > b.Col) {
					t.Fatalf("diagnostics out of order: %v before %v", a, b)
				}
			}
		}
		if out := diag.Format(err, src); out == "" {
			t.Fatal("Format rendered nothing for a parse error")
		}
	})
}

// FuzzCompile: the whole front end accepts any byte string without
// panicking. A *diag.ICE here IS the crash — Compile converts stage panics
// into ICEs precisely so the fuzzer can report them with a reproducer.
func FuzzCompile(f *testing.F) {
	addCorpus(f)
	f.Fuzz(func(t *testing.T, src string) {
		m, err := Compile("fuzz.lpc", src)
		if err == nil {
			if m == nil {
				t.Fatal("nil module with nil error")
			}
			return
		}
		var ice *diag.ICE
		if errors.As(err, &ice) {
			t.Fatalf("internal compiler error (stage %s): %v\nreproducer:\n%s", ice.Stage, ice.Val, src)
		}
		var l diag.List
		if !errors.As(err, &l) {
			t.Fatalf("compile error is %T, want diag.List: %v", err, err)
		}
		if out := diag.Format(err, src); out == "" {
			t.Fatal("Format rendered nothing for a compile error")
		}
	})
}
