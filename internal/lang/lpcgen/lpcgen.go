// Package lpcgen derives structurally valid LPC programs from a byte seed.
//
// A raw-bytes fuzzer spends almost all of its budget inside the lexer and
// parser: random bytes essentially never form a type-correct program, so
// sema, codegen, the analysis pipeline, and the interpreter go unexercised.
// Program closes that gap. It treats the seed as a decision stream and emits
// a program that is type-correct by construction — loop nests over global
// arrays, reductions, conditionals, helper calls — so a fuzz target built on
// it drives the whole compile-and-run surface on every input.
//
// Program is deterministic: the same seed always yields the same source, so
// fuzzer crashers reproduce and can be checked in as regression inputs.
package lpcgen

import (
	"fmt"
	"strings"
)

// Generation limits. Small enough that any generated program compiles in
// microseconds and runs within a tight step budget; large enough to build
// nests the analysis pipeline finds interesting.
const (
	maxLoopDepth = 3 // nesting depth of generated loop nests
	maxBodyLen   = 4 // statements per block
	maxExprDepth = 3 // expression tree depth
)

// arrayLen is the length of the generated global arrays. A power of two, so
// indices can be clamped with a mask — in-range for any int value, including
// negatives, under two's-complement AND.
const arrayLen = 16

// gen consumes seed bytes as a decision stream. An exhausted stream reads
// as zero, so every prefix of a seed is itself a valid seed: byte-level
// fuzzer mutations (truncation, extension, flips) all map to programs.
type gen struct {
	seed []byte
	off  int
	b    strings.Builder

	loopVars []string // loop variables in scope, innermost last
	loopSeq  int      // next loop-variable ordinal
}

func (g *gen) next() int {
	if g.off >= len(g.seed) {
		return 0
	}
	v := int(g.seed[g.off])
	g.off++
	return v
}

// pick returns a decision in [0, n).
func (g *gen) pick(n int) int { return g.next() % n }

func (g *gen) printf(format string, args ...any) {
	fmt.Fprintf(&g.b, format, args...)
}

// Program derives one type-correct LPC program from seed.
func Program(seed []byte) string {
	g := &gen{seed: seed}
	g.printf("const N = %d;\n", arrayLen)
	g.printf("var a [N]int;\nvar b [N]int;\nvar f [N]float;\n")
	g.printf("var s int;\nvar t float;\n\n")

	g.printf("func helper(x int) int {\n")
	g.printf("\tif (x > %d) { return x - %d; }\n", g.pick(64), g.pick(8))
	g.printf("\treturn x * %d + 1;\n}\n\n", 1+g.pick(4))

	g.printf("func main() int {\n")
	g.initArrays()
	n := 1 + g.pick(maxBodyLen)
	for i := 0; i < n; i++ {
		g.stmt(1, 0)
	}
	g.printf("\treturn s + a[0] + b[N-1] + int(t);\n}\n")
	return g.b.String()
}

// initArrays gives the arrays seed-dependent contents so dependence
// patterns vary across inputs.
func (g *gen) initArrays() {
	c1, c2 := g.pick(7), 1+g.pick(5)
	g.printf("\tfor (var i0 int = 0; i0 < N; i0 = i0 + 1) {\n")
	g.printf("\t\ta[i0] = i0 * %d + %d;\n", c2, c1)
	g.printf("\t\tb[i0] = i0 - %d;\n", g.pick(9))
	g.printf("\t\tf[i0] = float(i0) * 0.5;\n")
	g.printf("\t}\n")
}

func (g *gen) indent(depth int) string { return strings.Repeat("\t", depth) }

// stmt emits one statement at the given block depth with loopDepth
// enclosing generated loops.
func (g *gen) stmt(depth, loopDepth int) {
	ind := g.indent(depth)
	choice := g.pick(8)
	if loopDepth >= maxLoopDepth && choice < 2 {
		choice += 2 // out of loop budget: degrade to a straight-line form
	}
	switch choice {
	case 0: // counted for loop
		v := fmt.Sprintf("i%d", g.loopSeq)
		g.loopSeq++
		step := 1 + g.pick(3)
		g.printf("%sfor (var %s int = 0; %s < N; %s = %s + %d) {\n", ind, v, v, v, v, step)
		g.loopVars = append(g.loopVars, v)
		n := 1 + g.pick(maxBodyLen)
		for i := 0; i < n; i++ {
			g.stmt(depth+1, loopDepth+1)
		}
		g.loopVars = g.loopVars[:len(g.loopVars)-1]
		g.printf("%s}\n", ind)
	case 1: // bounded while loop
		v := fmt.Sprintf("w%d", g.loopSeq)
		g.loopSeq++
		g.printf("%svar %s int = %d;\n", ind, v, 1+g.pick(24))
		g.printf("%swhile (%s > 0) {\n", ind, v)
		g.loopVars = append(g.loopVars, v)
		n := 1 + g.pick(2)
		for i := 0; i < n; i++ {
			g.stmt(depth+1, loopDepth+1)
		}
		g.loopVars = g.loopVars[:len(g.loopVars)-1]
		g.printf("%s%s = %s - 1;\n", g.indent(depth+1), v, v)
		g.printf("%s}\n", ind)
	case 2: // array store (masked index: in range for any value)
		g.printf("%s%s[%s] = %s;\n", ind, g.pickArray(), g.index(), g.intExpr(maxExprDepth))
	case 3: // scalar reduction
		g.printf("%ss = s + %s;\n", ind, g.intExpr(maxExprDepth))
	case 4: // float accumulation
		g.printf("%st = t + f[%s] * %d.25;\n", ind, g.index(), g.pick(3))
	case 5: // conditional
		g.printf("%sif (%s) {\n", ind, g.cond())
		g.stmt(depth+1, loopDepth)
		if g.pick(2) == 1 {
			g.printf("%s} else {\n", ind)
			g.stmt(depth+1, loopDepth)
		}
		g.printf("%s}\n", ind)
	case 6: // helper call feeding the reduction
		g.printf("%ss = s + helper(%s);\n", ind, g.intExpr(2))
	default: // cross-array copy with independent indices
		g.printf("%sa[%s] = b[%s] + %d;\n", ind, g.index(), g.index(), g.pick(16))
	}
}

func (g *gen) pickArray() string {
	if g.pick(2) == 0 {
		return "a"
	}
	return "b"
}

// index yields an always-in-range index expression.
func (g *gen) index() string {
	return fmt.Sprintf("(%s) & (N - 1)", g.intExpr(2))
}

func (g *gen) cond() string {
	l, r := g.intExpr(2), g.intExpr(2)
	switch g.pick(4) {
	case 0:
		return fmt.Sprintf("%s < %s", l, r)
	case 1:
		return fmt.Sprintf("%s == %s", l, r)
	case 2:
		return fmt.Sprintf("%s >= %s", l, r)
	default:
		return fmt.Sprintf("%s != %s && s < %d", l, r, 1000+g.pick(1000))
	}
}

// intExpr yields an int-typed expression of bounded depth. Division and
// modulus keep nonzero constant divisors, so generated programs fault only
// through genuinely interesting paths, not trivial div-by-zero.
func (g *gen) intExpr(depth int) string {
	if depth <= 0 || g.pick(3) == 0 {
		return g.intLeaf()
	}
	l, r := g.intExpr(depth-1), g.intLeaf()
	switch g.pick(6) {
	case 0:
		return fmt.Sprintf("(%s + %s)", l, r)
	case 1:
		return fmt.Sprintf("(%s - %s)", l, r)
	case 2:
		return fmt.Sprintf("(%s * %s)", l, r)
	case 3:
		return fmt.Sprintf("(%s / %d)", l, 1+g.pick(7))
	case 4:
		return fmt.Sprintf("(%s %% %d)", l, 2+g.pick(6))
	default:
		return fmt.Sprintf("(%s ^ %s)", l, r)
	}
}

func (g *gen) intLeaf() string {
	if len(g.loopVars) > 0 && g.pick(2) == 0 {
		return g.loopVars[g.pick(len(g.loopVars))]
	}
	switch g.pick(4) {
	case 0:
		return fmt.Sprintf("%d", g.pick(64))
	case 1:
		return "s"
	case 2:
		return fmt.Sprintf("a[(%d) & (N - 1)]", g.pick(64))
	default:
		return fmt.Sprintf("b[(%d) & (N - 1)]", g.pick(64))
	}
}
