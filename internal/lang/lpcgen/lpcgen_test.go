package lpcgen

import (
	"testing"

	"loopapalooza/internal/lang"
)

// TestProgramCompiles: generated programs are type-correct by construction
// — every seed must survive the full front end.
func TestProgramCompiles(t *testing.T) {
	seeds := [][]byte{
		nil,
		{},
		{0},
		{255},
		{1, 2, 3, 4, 5, 6, 7, 8},
		[]byte("the quick brown fox jumps over the lazy dog"),
	}
	// A spread of pseudo-random seeds via a fixed LCG (deterministic).
	x := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < 50; i++ {
		var s []byte
		n := int(x%61) + 1
		for j := 0; j < n; j++ {
			x = x*6364136223846793005 + 1442695040888963407
			s = append(s, byte(x>>33))
		}
		seeds = append(seeds, s)
	}
	for i, seed := range seeds {
		src := Program(seed)
		if _, err := lang.Compile("gen.lpc", src); err != nil {
			t.Errorf("seed %d: generated program does not compile: %v\n%s", i, err, src)
		}
	}
}

// TestProgramDeterministic: same seed, same program — crashers reproduce.
func TestProgramDeterministic(t *testing.T) {
	seed := []byte{9, 42, 7, 0, 255, 13}
	if Program(seed) != Program(seed) {
		t.Error("Program is not deterministic")
	}
}

// TestProgramPrefixClosed: an exhausted seed reads as zeros, so truncating
// a seed still yields a valid program (mutation friendliness).
func TestProgramPrefixClosed(t *testing.T) {
	seed := []byte{200, 100, 50, 25, 12, 6, 3, 1}
	for n := 0; n <= len(seed); n++ {
		src := Program(seed[:n])
		if _, err := lang.Compile("gen.lpc", src); err != nil {
			t.Errorf("prefix %d: %v\n%s", n, err, src)
		}
	}
}
