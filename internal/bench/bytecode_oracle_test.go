package bench

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"loopapalooza/internal/core"
)

// TestBytecodeDifferentialOracle is the acceptance gate of the bytecode
// VM: every benchmark of the suite, under the DOALL/PDOALL/HELIX oracle
// grid, must produce Reports bit-identical to the tree-walking
// interpreter — through the plain Run path, both fan-out strategies, and
// a recorded-trace replay. Any divergence in instruction semantics, tick
// accounting, loop-event placement, or memory behavior shows up as a
// report diff.
func TestBytecodeDifferentialOracle(t *testing.T) {
	benchmarks := All()
	if len(benchmarks) == 0 {
		t.Fatal("no registered benchmarks")
	}
	cfgs := oracleConfigs(testing.Short())
	for _, b := range benchmarks {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			info, err := b.Analyze()
			if err != nil {
				t.Fatal(err)
			}
			// Reference: the tree-walker, one isolated execution per
			// configuration, recording its event trace alongside the first.
			var twTrace bytes.Buffer
			want := make([]*core.Report, len(cfgs))
			for i, cfg := range cfgs {
				opts := core.RunOptions{Engine: core.EngineTreewalk}
				if i == 0 {
					opts.Trace = &twTrace
				}
				if want[i], err = core.Run(info, cfg, opts); err != nil {
					t.Fatalf("%s: treewalk: %v", cfg, err)
				}
			}
			check := func(kind string, got []*core.Report, err error) {
				t.Helper()
				if err != nil {
					t.Fatalf("%s: %v", kind, err)
				}
				for i := range cfgs {
					if !reflect.DeepEqual(want[i], got[i]) {
						t.Errorf("%s/%s: report diverges from treewalk\ntreewalk: %v\nbytecode: %v",
							kind, cfgs[i], want[i], got[i])
					}
				}
			}
			// The bytecode VM through every execution path.
			var bcTrace bytes.Buffer
			direct := make([]*core.Report, len(cfgs))
			for i, cfg := range cfgs {
				opts := core.RunOptions{Engine: core.EngineBytecode}
				if i == 0 {
					opts.Trace = &bcTrace
				}
				if direct[i], err = core.Run(info, cfg, opts); err != nil {
					t.Fatalf("%s: bytecode: %v", cfg, err)
				}
			}
			check("direct", direct, nil)
			seq, err := core.MultiRunSequential(info, cfgs, core.RunOptions{Engine: core.EngineBytecode})
			check("sequential", seq, err)
			con, err := core.MultiRunConcurrent(info, cfgs, core.RunOptions{Engine: core.EngineBytecode})
			check("concurrent", con, err)
			// A trace recorded under the bytecode engine replays to the
			// treewalk reports — the binary event streams themselves are
			// interchangeable.
			rep, err := core.ReplayTraceMulti(b.Name, info, cfgs,
				core.RunOptions{}, bytes.NewReader(bcTrace.Bytes()))
			check("replay-bytecode-trace", rep, err)
			if !bytes.Equal(twTrace.Bytes(), bcTrace.Bytes()) {
				t.Errorf("binary event traces differ between engines (%d vs %d bytes)",
					twTrace.Len(), bcTrace.Len())
			}
		})
	}
}

// TestBytecodeBudgetExhaustionParity starves every benchmark of steps and
// requires both engines to fail at the same step with the same error text
// and taxonomy outcome. The step budgets deliberately straddle loop
// boundaries so the trip lands mid-iteration, mid-call, and mid-prologue
// across the suite.
func TestBytecodeBudgetExhaustionParity(t *testing.T) {
	benchmarks := All()
	if testing.Short() {
		benchmarks = benchmarks[:min(8, len(benchmarks))]
	}
	cfg := core.Config{Model: core.HELIX, Reduc: 1, Dep: 2, Fn: 2}
	for _, b := range benchmarks {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			info, err := b.Analyze()
			if err != nil {
				t.Fatal(err)
			}
			for _, budget := range []int64{1, 7, 100, 4097, 50_000} {
				tw, errT := core.Run(info, cfg, core.RunOptions{
					Engine: core.EngineTreewalk, MaxSteps: budget})
				bc, errB := core.Run(info, cfg, core.RunOptions{
					Engine: core.EngineBytecode, MaxSteps: budget})
				if (errT == nil) != (errB == nil) {
					t.Fatalf("budget %d: failure divergence: treewalk=%v bytecode=%v", budget, errT, errB)
				}
				if errT != nil {
					if !errors.Is(errB, core.ErrStepLimit) {
						t.Fatalf("budget %d: bytecode error outside taxonomy: %v", budget, errB)
					}
					if errT.Error() != errB.Error() {
						t.Fatalf("budget %d: error text divergence:\ntreewalk: %v\nbytecode: %v",
							budget, errT, errB)
					}
					continue
				}
				if !reflect.DeepEqual(tw, bc) {
					t.Errorf("budget %d: reports diverge", budget)
				}
			}
		})
	}
}

// TestBytecodeTrapParity runs trap-raising programs under both engines
// and requires identical runtime-error text and outcome classification.
func TestBytecodeTrapParity(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"div-zero-in-loop", `
func main() int {
	var acc int = 0;
	for (var i int = 0; i < 10; i = i + 1) {
		acc = acc + 100 / (5 - i);
	}
	return acc;
}`},
		{"null-load", `
func main() int {
	var p *int;
	return *p;
}`},
		{"null-store-in-call", `
func poke(p *int) int { *p = 1; return 0; }
func main() int {
	var a [4]int;
	var s int = 0;
	for (var i int = 0; i < 4; i = i + 1) { a[i] = i; s = s + a[i]; }
	var q *int;
	return s + poke(q);
}`},
		{"rem-zero", `
func main() int {
	var m int = 3;
	for (var i int = 0; i < 8; i = i + 1) { m = m - 1; }
	return 42 % (m + 5);
}`},
	}
	cfg := core.Config{Model: core.PDOALL, Reduc: 1, Dep: 2, Fn: 2}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			info, err := core.AnalyzeSource(tc.name, tc.src)
			if err != nil {
				t.Fatal(err)
			}
			_, errT := core.Run(info, cfg, core.RunOptions{Engine: core.EngineTreewalk})
			_, errB := core.Run(info, cfg, core.RunOptions{Engine: core.EngineBytecode})
			if errT == nil || errB == nil {
				t.Fatalf("expected a trap: treewalk=%v bytecode=%v", errT, errB)
			}
			if !errors.Is(errB, core.ErrRuntime) {
				t.Fatalf("bytecode error outside taxonomy: %v", errB)
			}
			if errT.Error() != errB.Error() {
				t.Fatalf("error text divergence:\ntreewalk: %v\nbytecode: %v", errT, errB)
			}
			if core.Classify(errT) != core.Classify(errB) {
				t.Fatalf("outcome divergence: %v vs %v", core.Classify(errT), core.Classify(errB))
			}
		})
	}
}
