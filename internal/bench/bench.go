// Package bench provides the benchmark substrate of the reproduction: LPC
// kernels modeled on the loop behaviour of the SPEC CPU2000/CPU2006 and
// EEMBC programs the paper evaluates, plus the harness that regenerates
// Figures 2–5.
//
// SPEC and EEMBC are proprietary, so each kernel is a synthetic analog
// that replicates the property the limit study measures for its namesake:
// loop structure, the frequency and kind of loop-carried dependencies,
// reduction and induction patterns, call density and purity, and memory
// access regularity (see DESIGN.md §2 for the substitution argument).
package bench

import (
	"fmt"
	"sort"
	"sync"

	"loopapalooza/internal/analysis"
	"loopapalooza/internal/core"
)

// Suite identifies one benchmark suite of the paper.
type Suite string

// The five suites of Figures 2 and 3.
const (
	SuiteINT2000 Suite = "cint2000"
	SuiteINT2006 Suite = "cint2006"
	SuiteFP2000  Suite = "cfp2000"
	SuiteFP2006  Suite = "cfp2006"
	SuiteEEMBC   Suite = "eembc"
)

// NumericSuites are the Figure 3 suites.
func NumericSuites() []Suite { return []Suite{SuiteEEMBC, SuiteFP2000, SuiteFP2006} }

// NonNumericSuites are the Figure 2 suites.
func NonNumericSuites() []Suite { return []Suite{SuiteINT2000, SuiteINT2006} }

// AllSuites lists every suite.
func AllSuites() []Suite {
	return []Suite{SuiteINT2000, SuiteINT2006, SuiteFP2000, SuiteFP2006, SuiteEEMBC}
}

// Benchmark is one kernel.
type Benchmark struct {
	// Name follows the SPEC naming of the modeled program
	// (e.g. "181.mcf"), or the EEMBC kernel name.
	Name string
	// Suite is the owning suite.
	Suite Suite
	// Modeled describes which behaviour of the namesake the kernel
	// replicates.
	Modeled string
	// Source is the LPC program.
	Source string

	// runHook, when set, replaces RunWith's execution. Test seam for
	// fault injection (panics, synthetic budget errors).
	runHook func(core.Config, core.RunOptions) (*core.Report, error)

	// Analysis once-cell: each benchmark is parsed and analyzed exactly
	// once per process, and the immutable ModuleInfo is shared by every
	// config cell of every sweep. Distinct benchmarks analyze
	// concurrently (no global lock).
	analyzeOnce sync.Once
	analyzeInfo *analysis.ModuleInfo
	analyzeErr  error
}

var registry []*Benchmark

func register(b *Benchmark) {
	registry = append(registry, b)
}

// All returns every benchmark, suite by suite in AllSuites order.
func All() []*Benchmark {
	out := append([]*Benchmark(nil), registry...)
	order := map[Suite]int{}
	for i, s := range AllSuites() {
		order[s] = i
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Suite != out[j].Suite {
			return order[out[i].Suite] < order[out[j].Suite]
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// BySuite returns the benchmarks of one suite, by name.
func BySuite(s Suite) []*Benchmark {
	var out []*Benchmark
	for _, b := range All() {
		if b.Suite == s {
			out = append(out, b)
		}
	}
	return out
}

// ByName returns one benchmark, or nil.
func ByName(name string) *Benchmark {
	for _, b := range registry {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// Analyze compiles and analyzes the benchmark exactly once per process and
// returns the shared, immutable result (the compile-time analysis is
// configuration-independent).
func (b *Benchmark) Analyze() (*analysis.ModuleInfo, error) {
	b.analyzeOnce.Do(func() {
		b.analyzeInfo, b.analyzeErr = core.AnalyzeSource(b.Name, b.Source)
		if b.analyzeErr != nil {
			b.analyzeErr = fmt.Errorf("bench %s: %w", b.Name, b.analyzeErr)
		}
	})
	return b.analyzeInfo, b.analyzeErr
}

// Run executes the limit study for one configuration with no budgets.
func (b *Benchmark) Run(cfg core.Config) (*core.Report, error) {
	return b.RunWith(cfg, core.RunOptions{})
}

// RunWith executes the limit study for one configuration under the given
// budgets and cancellation context.
func (b *Benchmark) RunWith(cfg core.Config, opts core.RunOptions) (*core.Report, error) {
	if b.runHook != nil {
		return b.runHook(cfg, opts)
	}
	info, err := b.Analyze()
	if err != nil {
		return nil, err
	}
	return core.Run(info, cfg, opts)
}
