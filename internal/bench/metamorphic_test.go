package bench

import (
	"fmt"
	"testing"

	"loopapalooza/internal/analysis"
	"loopapalooza/internal/core"
	"loopapalooza/internal/lang"
	"loopapalooza/internal/lang/lpcgen"
)

// The metamorphic invariant suite. Each program — every registered
// benchmark plus a corpus of generator-derived loop nests — is pushed
// through the strict pipeline (ir.Verify after every pass) and executed
// under paired configurations, checking the properties the paper's model
// guarantees by construction:
//
//   - every report is self-consistent and anomaly-free, with speedup ≥ 1
//     (core.VerifyReport);
//   - partial DOALL subsumes DOALL under equal flags
//     (core.CheckModelOrdering);
//   - the dependence trackers are interchangeable: shadow-memory and
//     legacy-map runs produce bit-identical reports (core.CompareReports).

// orderingPairs are the (DOALL, PDOALL) flag pairings checked for model
// dominance. DOALL only validates with dep0, so the pairs span the
// reduc/fn axes.
func orderingPairs() [][2]core.Config {
	return [][2]core.Config{
		{{Model: core.DOALL, Reduc: 0, Dep: 0, Fn: 0}, {Model: core.PDOALL, Reduc: 0, Dep: 0, Fn: 0}},
		{{Model: core.DOALL, Reduc: 1, Dep: 0, Fn: 2}, {Model: core.PDOALL, Reduc: 1, Dep: 0, Fn: 2}},
	}
}

// checkProgram runs the full metamorphic battery on one LPC program.
func checkProgram(t *testing.T, name, src string, opts core.RunOptions) {
	t.Helper()
	m, err := lang.Compile(name, src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	info, err := analysis.AnalyzeModuleStrict(m)
	if err != nil {
		t.Fatalf("strict pipeline: %v", err)
	}

	for _, pair := range orderingPairs() {
		var reports [2]*core.Report
		for i, cfg := range pair {
			rep, err := core.Run(info, cfg, opts)
			if err != nil {
				t.Fatalf("%s: %v", cfg, err)
			}
			if verr := core.VerifyReport(rep); verr != nil {
				t.Errorf("%s: %v", cfg, verr)
			}
			mapOpts := opts
			mapOpts.Tracker = core.TrackerLegacyMap
			repMap, err := core.Run(info, cfg, mapOpts)
			if err != nil {
				t.Fatalf("%s (legacy tracker): %v", cfg, err)
			}
			if cerr := core.CompareReports(rep, repMap); cerr != nil {
				t.Errorf("%s: %v", cfg, cerr)
			}
			reports[i] = rep
		}
		if oerr := core.CheckModelOrdering(reports[0], reports[1]); oerr != nil {
			t.Errorf("%v", oerr)
		}
	}

	// The remaining models have no DOALL counterpart; their reports must
	// still verify.
	for _, cfg := range []core.Config{core.BestPDOALL(), core.BestHELIX()} {
		rep, err := core.Run(info, cfg, opts)
		if err != nil {
			t.Fatalf("%s: %v", cfg, err)
		}
		if verr := core.VerifyReport(rep); verr != nil {
			t.Errorf("%s: %v", cfg, verr)
		}
	}
}

// TestMetamorphicInvariantsSuite runs the battery over every registered
// benchmark.
func TestMetamorphicInvariantsSuite(t *testing.T) {
	benchmarks := All()
	if len(benchmarks) == 0 {
		t.Fatal("no registered benchmarks")
	}
	if testing.Short() {
		benchmarks = benchmarks[:len(benchmarks)/4]
	}
	for _, b := range benchmarks {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			checkProgram(t, b.Name, b.Source, core.RunOptions{})
		})
	}
}

// TestMetamorphicInvariantsGenerated runs the battery over a corpus of
// generator-derived loop nests: programs with index masks, bounded while
// loops, and seed-dependent dependence patterns that the hand-written
// suite does not cover.
func TestMetamorphicInvariantsGenerated(t *testing.T) {
	n := 48
	if testing.Short() {
		n = 8
	}
	opts := core.RunOptions{MaxSteps: 2_000_000, MaxHeapCells: 1 << 20}
	x := uint64(0x243F6A8885A308D3) // fixed: the corpus is deterministic
	for i := 0; i < n; i++ {
		seed := make([]byte, int(x%97)+1)
		for j := range seed {
			x = x*6364136223846793005 + 1442695040888963407
			seed[j] = byte(x >> 33)
		}
		t.Run(fmt.Sprintf("seed%02d", i), func(t *testing.T) {
			t.Parallel()
			checkProgram(t, "gen.lpc", lpcgen.Program(seed), opts)
		})
	}
}
