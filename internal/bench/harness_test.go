package bench

import (
	"math"
	"strings"
	"testing"

	"loopapalooza/internal/core"
)

func TestGeoMean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 1},
		{[]float64{4}, 4},
		{[]float64{1, 4}, 2},
		{[]float64{2, 8}, 4},
		{[]float64{1, 1, 1}, 1},
	}
	for _, c := range cases {
		if got := GeoMean(c.xs); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("GeoMean(%v) = %f, want %f", c.xs, got, c.want)
		}
	}
	if got := GeoMean([]float64{0, 100}); math.IsInf(got, -1) || math.IsNaN(got) {
		t.Errorf("GeoMean with zero = %f, want finite", got)
	}
}

func TestSuitesPartition(t *testing.T) {
	seen := map[string]bool{}
	total := 0
	for _, s := range AllSuites() {
		bs := BySuite(s)
		if len(bs) < 7 {
			t.Errorf("suite %s has only %d benchmarks", s, len(bs))
		}
		for _, b := range bs {
			if seen[b.Name] {
				t.Errorf("benchmark %s in two suites", b.Name)
			}
			seen[b.Name] = true
			total++
		}
	}
	if total != len(All()) {
		t.Errorf("suites cover %d benchmarks, registry has %d", total, len(All()))
	}
	if ByName("181.mcf") == nil || ByName("no-such") != nil {
		t.Error("ByName lookup broken")
	}
}

func TestHarnessCachesReports(t *testing.T) {
	h := NewHarness()
	b := ByName("aifirf")
	cfg := core.Config{Model: core.DOALL}
	r1, err := h.Report(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := h.Report(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("harness did not cache the report")
	}
}

// TestFigureShapes is the reproduction gate: it asserts the qualitative
// "shape" criteria of DESIGN.md §4 against the live harness. It runs the
// full benchmark × configuration sweep, so it is skipped in -short mode.
func TestFigureShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep")
	}
	h := NewHarness()

	get := func(s Suite, cfg core.Config) float64 {
		v, err := h.SuiteSpeedup(s, cfg)
		if err != nil {
			t.Fatalf("%s %s: %v", s, cfg, err)
		}
		return v
	}
	doall := core.Config{Model: core.DOALL}
	doallR1 := core.Config{Model: core.DOALL, Reduc: 1}
	pdD2 := core.Config{Model: core.PDOALL, Dep: 2}
	pdBest := core.BestPDOALL()
	pdD3F3 := core.Config{Model: core.PDOALL, Dep: 3, Fn: 3}
	hxD0F2 := core.Config{Model: core.HELIX, Fn: 2}
	hxBest := core.BestHELIX()

	// Criterion 1: DOALL gains are small for non-numeric, larger for
	// numeric suites.
	for _, s := range NonNumericSuites() {
		if v := get(s, doall); v > 1.5 {
			t.Errorf("%s DOALL = %.2f, want near 1 (paper: 1.1-1.3)", s, v)
		}
	}
	for _, s := range NumericSuites() {
		v := get(s, doall)
		if v < 1.3 || v > 8 {
			t.Errorf("%s DOALL = %.2f, want 1.3-8 (paper: 1.6-3.1)", s, v)
		}
	}

	// Criterion 2: each relaxation is monotone for non-numeric suites:
	// dep2 helps, fn2 helps, HELIX-dep1 helps most.
	for _, s := range NonNumericSuites() {
		base := get(s, doall)
		d2 := get(s, pdD2)
		best := get(s, hxBest)
		if d2 < base {
			t.Errorf("%s: dep2 (%.2f) below DOALL (%.2f)", s, d2, base)
		}
		if best < d2 {
			t.Errorf("%s: best HELIX (%.2f) below PDOALL dep2 (%.2f)", s, best, d2)
		}
		if best < 2 {
			t.Errorf("%s: best HELIX = %.2f, want substantial (paper: 4.6/7.2)", s, best)
		}
	}

	// Criterion 3: reduc1 matters for numeric code.
	for _, s := range NumericSuites() {
		if r0, r1 := get(s, doall), get(s, doallR1); r1 < r0 {
			t.Errorf("%s: reduc1 DOALL (%.2f) below reduc0 (%.2f)", s, r1, r0)
		}
	}

	// Criterion 4: the unrealistic dep3-fn3 dominates every realistic
	// PDOALL configuration, dramatically for numeric suites.
	for _, s := range AllSuites() {
		if d3, best := get(s, pdD3F3), get(s, pdBest); d3 < best*0.99 {
			t.Errorf("%s: dep3-fn3 (%.2f) below realistic PDOALL (%.2f)", s, d3, best)
		}
	}
	for _, s := range NumericSuites() {
		if d3 := get(s, pdD3F3); d3 < 15 {
			t.Errorf("%s: dep3-fn3 = %.2f, want large (paper: 10x-92x)", s, d3)
		}
	}

	// Criterion 5: best-HELIX beats best-PDOALL overall, and coverage
	// explains it (Figure 5's staircase).
	for _, s := range AllSuites() {
		pb, hb := get(s, pdBest), get(s, hxBest)
		if s == SuiteINT2000 || s == SuiteINT2006 {
			if hb < pb {
				t.Errorf("%s: HELIX best (%.2f) below PDOALL best (%.2f)", s, hb, pb)
			}
		}
		covPD, err := h.SuiteCoverage(s, core.Config{Model: core.PDOALL, Fn: 2})
		if err != nil {
			t.Fatal(err)
		}
		covHX0, err := h.SuiteCoverage(s, hxD0F2)
		if err != nil {
			t.Fatal(err)
		}
		covHX1, err := h.SuiteCoverage(s, core.Config{Model: core.HELIX, Dep: 1, Fn: 2})
		if err != nil {
			t.Fatal(err)
		}
		if covHX1 < covHX0 || covHX1 < covPD {
			t.Errorf("%s coverage staircase broken: PDOALL %.1f%%, HELIX-dep0 %.1f%%, HELIX-dep1 %.1f%%",
				s, covPD, covHX0, covHX1)
		}
		if covHX1 < 50 {
			t.Errorf("%s: HELIX-dep1 coverage = %.1f%%, want majority", s, covHX1)
		}
	}

	// Criterion 6: the paper's called-out PDOALL winners (Figure 4).
	rows, err := h.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	winners := map[string]bool{}
	for _, r := range rows {
		winners[r.Name] = r.PDOALLSpeedup > r.HELIXSpeedup
	}
	for _, name := range []string{"179.art", "429.mcf", "482.sphinx3"} {
		if !winners[name] {
			t.Errorf("%s should prefer PDOALL over HELIX (paper §IV)", name)
		}
	}
	helixWinners := 0
	for _, r := range rows {
		if r.Suite == SuiteINT2000 || r.Suite == SuiteINT2006 {
			if !winners[r.Name] {
				helixWinners++
			}
		}
	}
	if helixWinners < 14 {
		t.Errorf("only %d INT benchmarks prefer HELIX; the paper reports consistent HELIX gains", helixWinners)
	}
}

func TestFormatters(t *testing.T) {
	rows := []FigureRow{{Config: core.BestHELIX(), PerSuite: map[Suite]float64{SuiteINT2000: 4.6}}}
	s := FormatSpeedupFigure("Figure 2", NonNumericSuites(), rows)
	if !strings.Contains(s, "Figure 2") || !strings.Contains(s, "4.60x") {
		t.Errorf("speedup table malformed:\n%s", s)
	}
	f4 := FormatFigure4([]Figure4Row{{Name: "181.mcf", Suite: SuiteINT2000, PDOALLSpeedup: 3, HELIXSpeedup: 1.2}})
	if !strings.Contains(f4, "PDOALL") || !strings.Contains(f4, "181.mcf") {
		t.Errorf("figure 4 table malformed:\n%s", f4)
	}
	f5 := FormatFigure5([]Figure5Row{{Config: Figure5Configs()[0], PerSuite: map[Suite]float64{SuiteEEMBC: 42}}})
	if !strings.Contains(f5, "42.0%") {
		t.Errorf("figure 5 table malformed:\n%s", f5)
	}
}
